// bench_shard_driver — fork-per-shard sweep execution in one command.
//
//   bench_shard_driver --shards=K [--out=MERGED.json]
//                      [--check-against=SERIAL.json] [--keep-partials]
//                      -- ./build/bench_table2 [bench args...]
//
// Launches K local processes of the named sweep bench, each owning one
// ShardPlanner slice (`--shard=i/K --shard_json=PART.json` is appended to
// the bench's argument list), waits for all of them, and merges the partial
// reports through the same validation path as tools/bench_merge — so the
// result is byte-identical to the bench's serial `--json` document, which
// `--check-against` verifies directly.  This is the single-machine
// counterpart of the CI shard matrix: process-level parallelism (memory
// isolation, independent address spaces) without a workflow engine.
//
// Partial files are written next to --out (or a bench_shard_driver.* prefix
// in the working directory) and deleted after a successful merge unless
// --keep-partials is given.  Any child failing (non-zero exit, signal, exec
// failure) fails the whole run loudly; partials are kept for inspection.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/shard_merge.hpp"

namespace {

int usage() {
  std::cerr << "usage: bench_shard_driver --shards=K [--out=PATH] "
               "[--check-against=PATH] [--keep-partials] -- "
               "BENCH_BINARY [bench args...]\n";
  return 2;
}

/// Spawn `argv` (null-terminated) as a child process; returns the pid or -1.
pid_t spawn(std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) {
    argv.push_back(arg.data());
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    // Only reached when exec failed (bad path, not executable).
    std::perror("bench_shard_driver: execv");
    ::_exit(127);
  }
  return pid;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned shards = 0;
  std::string out_path;
  std::string check_path;
  bool keep_partials = false;
  std::vector<std::string> bench_args;
  int i = 1;
  for (; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--") == 0) {
      ++i;
      break;
    }
    if (std::strncmp(arg, "--shards=", 9) == 0) {
      const long value = std::strtol(arg + 9, nullptr, 10);
      if (value < 1) {
        std::cerr << "bench_shard_driver: --shards must be >= 1\n";
        return 2;
      }
      shards = static_cast<unsigned>(value);
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--check-against=", 16) == 0) {
      check_path = arg + 16;
    } else if (std::strcmp(arg, "--keep-partials") == 0) {
      keep_partials = true;
    } else {
      std::cerr << "bench_shard_driver: unknown flag '" << arg << "'\n";
      return usage();
    }
  }
  for (; i < argc; ++i) {
    bench_args.emplace_back(argv[i]);
  }
  if (shards == 0 || bench_args.empty()) {
    return usage();
  }

  const std::string prefix =
      out_path.empty() ? std::string("bench_shard_driver") : out_path;
  std::vector<std::string> partial_paths;
  std::vector<pid_t> pids;
  for (unsigned shard = 0; shard < shards; ++shard) {
    std::ostringstream partial;
    partial << prefix << ".shard" << shard << ".part.json";
    partial_paths.push_back(partial.str());

    std::vector<std::string> child_args = bench_args;
    child_args.push_back("--shard=" + std::to_string(shard) + "/" +
                         std::to_string(shards));
    child_args.push_back("--shard_json=" + partial_paths.back());
    const pid_t pid = spawn(std::move(child_args));
    if (pid < 0) {
      std::perror("bench_shard_driver: fork");
      return 1;
    }
    pids.push_back(pid);
  }

  bool children_ok = true;
  for (unsigned shard = 0; shard < shards; ++shard) {
    int status = 0;
    if (::waitpid(pids[shard], &status, 0) < 0) {
      std::perror("bench_shard_driver: waitpid");
      children_ok = false;
      continue;
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::cerr << "bench_shard_driver: shard " << shard << "/" << shards
                << " failed (";
      if (WIFEXITED(status)) {
        std::cerr << "exit code " << WEXITSTATUS(status);
      } else if (WIFSIGNALED(status)) {
        std::cerr << "signal " << WTERMSIG(status);
      } else {
        std::cerr << "status " << status;
      }
      std::cerr << ")\n";
      children_ok = false;
    }
  }
  if (!children_ok) {
    std::cerr << "bench_shard_driver: aborting merge; partial reports kept "
                 "for inspection\n";
    return 1;
  }

  const titan::sim::MergeResult result =
      titan::sim::merge_shard_files(partial_paths);
  if (!result.ok) {
    std::cerr << "bench_shard_driver: merge FAILED: " << result.error << "\n";
    return 1;
  }

  if (!out_path.empty()) {
    if (!titan::sim::write_document(out_path, result.merged)) {
      std::cerr << "bench_shard_driver: cannot write " << out_path << "\n";
      return 1;
    }
  } else if (check_path.empty()) {
    std::cout << result.merged << "\n";
  }

  if (!check_path.empty()) {
    std::ifstream is(check_path);
    if (!is) {
      std::cerr << "bench_shard_driver: cannot read " << check_path << "\n";
      return 1;
    }
    std::ostringstream serial;
    serial << is.rdbuf();
    if (serial.str() != result.merged + "\n") {
      std::cerr << "bench_shard_driver: DETERMINISM CHECK FAILED: merged "
                   "output differs from "
                << check_path << " (" << result.merged.size() + 1 << " vs "
                << serial.str().size() << " bytes)\n";
      return 1;
    }
    std::cerr << "bench_shard_driver: determinism check passed (merged == "
              << check_path << ")\n";
  }

  if (!keep_partials) {
    for (const std::string& path : partial_paths) {
      std::remove(path.c_str());
    }
  }
  std::cerr << "bench_shard_driver: ran " << shards << " shard process(es)"
            << (out_path.empty() ? "" : " -> " + out_path) << "\n";
  return 0;
}

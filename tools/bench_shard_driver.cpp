// bench_shard_driver — fork-per-shard sweep execution in one command.
//
//   bench_shard_driver --shards=K [--out=MERGED.json] [--timeout=SECONDS]
//                      [--check-against=SERIAL.json] [--keep-partials]
//                      [--warm-start]
//                      -- ./build/bench_table2 [bench args...]
//
// Launches K local processes of the named sweep bench, each owning one
// ShardPlanner slice (`--shard=i/K --shard_json=PART.json` is appended to
// the bench's argument list), waits for all of them, and merges the partial
// reports through the same validation path as tools/bench_merge — so the
// result is byte-identical to the bench's serial `--json` document, which
// `--check-against` verifies directly.  This is the single-machine
// counterpart of the CI shard matrix: process-level parallelism (memory
// isolation, independent address spaces) without a workflow engine.
//
// With --warm-start, the parent first runs the bench once with
// `--write_checkpoints=PREFIX.warm.ckpt` — one warm-up prefix simulation
// per grid scenario, captured into a copy-on-write checkpoint bundle — and
// every shard child is then launched with `--warm_start=PREFIX.warm.ckpt`,
// forking its points from the shared bundle instead of re-simulating the
// warm-up K times.  Checkpoints carry the report identity, so the merged
// document is still byte-identical to a cold serial run (--check-against
// holds with or without the flag).  The bundle is deleted with the partials
// unless --keep-partials is given.
//
// Children are supervised, not just awaited: each child's stderr is captured
// through a pipe (drained while the child runs, so a chatty bench cannot
// deadlock on a full pipe), a crash or non-zero exit is retried once (shard
// rows are pure functions of the grid index, so a retry is always safe), and
// `--timeout` bounds each attempt's wall clock (SIGKILL on expiry, which also
// counts as a failed attempt).  A shard that fails both attempts fails the
// whole run loudly — shard index, exit detail, and the captured stderr of
// both attempts.
//
// Partial files are written next to --out (or a bench_shard_driver.* prefix
// in the working directory) and deleted after a successful merge unless
// --keep-partials is given.  On failure, partials are kept for inspection.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/shard_merge.hpp"

namespace {

using Clock = std::chrono::steady_clock;

int usage() {
  std::cerr << "usage: bench_shard_driver --shards=K [--out=PATH] "
               "[--timeout=SECONDS] [--check-against=PATH] [--keep-partials] "
               "[--warm-start] -- BENCH_BINARY [bench args...]\n";
  return 2;
}

/// One spawn attempt of one shard child, with its stderr captured.
struct Attempt {
  pid_t pid = -1;
  int stderr_fd = -1;       ///< Read end of the child's stderr pipe.
  std::string stderr_text;  ///< Everything drained from the pipe so far.
  Clock::time_point started;
  bool running = false;
  bool timed_out = false;
  int wait_status = 0;
};

/// Spawn `args` with stderr redirected into a non-blocking pipe the parent
/// drains.  Returns false when fork/pipe fails.
bool spawn(const std::vector<std::string>& args, Attempt& attempt) {
  int fds[2];
  if (::pipe(fds) != 0) {
    std::perror("bench_shard_driver: pipe");
    return false;
  }
  std::vector<char*> argv;
  std::vector<std::string> writable = args;
  argv.reserve(writable.size() + 1);
  for (std::string& arg : writable) {
    argv.push_back(arg.data());
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("bench_shard_driver: fork");
    ::close(fds[0]);
    ::close(fds[1]);
    return false;
  }
  if (pid == 0) {
    ::close(fds[0]);
    ::dup2(fds[1], STDERR_FILENO);
    ::close(fds[1]);
    ::execv(argv[0], argv.data());
    // Only reached when exec failed (bad path, not executable).
    std::perror("bench_shard_driver: execv");
    ::_exit(127);
  }
  ::close(fds[1]);
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  attempt.pid = pid;
  attempt.stderr_fd = fds[0];
  attempt.stderr_text.clear();
  attempt.started = Clock::now();
  attempt.running = true;
  attempt.timed_out = false;
  return true;
}

/// Pull whatever the child has written so far (never blocks).  Draining
/// while the child runs is what keeps a stderr-heavy bench from wedging on
/// a full 64K pipe.
void drain_stderr(Attempt& attempt) {
  if (attempt.stderr_fd < 0) {
    return;
  }
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(attempt.stderr_fd, buffer, sizeof(buffer));
    if (n > 0) {
      attempt.stderr_text.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {  // Writer side closed: child exited (or exec'd away fds).
      ::close(attempt.stderr_fd);
      attempt.stderr_fd = -1;
    }
    return;  // n < 0: EAGAIN (nothing buffered right now) or closed above.
  }
}

bool attempt_succeeded(const Attempt& attempt) {
  return !attempt.timed_out && WIFEXITED(attempt.wait_status) &&
         WEXITSTATUS(attempt.wait_status) == 0;
}

std::string describe_failure(const Attempt& attempt) {
  std::ostringstream os;
  if (attempt.timed_out) {
    os << "timed out (SIGKILL after --timeout)";
  } else if (WIFEXITED(attempt.wait_status)) {
    os << "exit code " << WEXITSTATUS(attempt.wait_status);
  } else if (WIFSIGNALED(attempt.wait_status)) {
    os << "signal " << WTERMSIG(attempt.wait_status);
  } else {
    os << "status " << attempt.wait_status;
  }
  return os.str();
}

/// Run one child to completion (blocking), draining its stderr throughout.
/// Used for the --warm-start bundle build, which must finish before any
/// shard can fork from it.  Returns false on spawn/exit failure, with the
/// child's stderr echoed either way.
bool run_to_completion(const std::vector<std::string>& args,
                       long timeout_seconds) {
  Attempt attempt;
  if (!spawn(args, attempt)) {
    return false;
  }
  while (attempt.running) {
    drain_stderr(attempt);
    if (timeout_seconds > 0 && !attempt.timed_out &&
        Clock::now() - attempt.started >=
            std::chrono::seconds(timeout_seconds)) {
      attempt.timed_out = true;
      ::kill(attempt.pid, SIGKILL);
    }
    if (::waitpid(attempt.pid, &attempt.wait_status, WNOHANG) ==
        attempt.pid) {
      attempt.running = false;
      break;
    }
    ::usleep(10'000);
  }
  drain_stderr(attempt);
  if (attempt.stderr_fd >= 0) {
    ::close(attempt.stderr_fd);
  }
  std::cerr << attempt.stderr_text;
  if (!attempt_succeeded(attempt)) {
    std::cerr << "bench_shard_driver: checkpoint build "
              << describe_failure(attempt) << "\n";
    return false;
  }
  return true;
}

/// Supervision record for one shard: its argv and up to two attempts.
struct Shard {
  std::vector<std::string> args;
  std::vector<Attempt> attempts;
  bool ok = false;
  bool gave_up = false;

  [[nodiscard]] Attempt* live() {
    return attempts.empty() || !attempts.back().running ? nullptr
                                                        : &attempts.back();
  }
};

}  // namespace

int main(int argc, char** argv) {
  unsigned shards = 0;
  std::string out_path;
  std::string check_path;
  bool keep_partials = false;
  bool warm_start = false;
  long timeout_seconds = 0;  // 0 == unbounded.
  std::vector<std::string> bench_args;
  int i = 1;
  for (; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--") == 0) {
      ++i;
      break;
    }
    if (std::strncmp(arg, "--shards=", 9) == 0) {
      const long value = std::strtol(arg + 9, nullptr, 10);
      if (value < 1) {
        std::cerr << "bench_shard_driver: --shards must be >= 1\n";
        return 2;
      }
      shards = static_cast<unsigned>(value);
    } else if (std::strncmp(arg, "--timeout=", 10) == 0) {
      timeout_seconds = std::strtol(arg + 10, nullptr, 10);
      if (timeout_seconds < 1) {
        std::cerr << "bench_shard_driver: --timeout must be >= 1 second\n";
        return 2;
      }
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--check-against=", 16) == 0) {
      check_path = arg + 16;
    } else if (std::strcmp(arg, "--keep-partials") == 0) {
      keep_partials = true;
    } else if (std::strcmp(arg, "--warm-start") == 0) {
      warm_start = true;
    } else {
      std::cerr << "bench_shard_driver: unknown flag '" << arg << "'\n";
      return usage();
    }
  }
  for (; i < argc; ++i) {
    bench_args.emplace_back(argv[i]);
  }
  if (shards == 0 || bench_args.empty()) {
    return usage();
  }

  const std::string prefix =
      out_path.empty() ? std::string("bench_shard_driver") : out_path;

  // --warm-start: build the checkpoint bundle once, in the parent, before
  // any shard exists; then hand every child the same bundle to fork from.
  std::string bundle_path;
  if (warm_start) {
    bundle_path = prefix + ".warm.ckpt";
    std::vector<std::string> build_args = bench_args;
    build_args.push_back("--write_checkpoints=" + bundle_path);
    if (!run_to_completion(build_args, timeout_seconds)) {
      std::remove(bundle_path.c_str());
      return 1;
    }
    bench_args.push_back("--warm_start=" + bundle_path);
  }

  std::vector<std::string> partial_paths;
  std::vector<Shard> table(shards);
  for (unsigned shard = 0; shard < shards; ++shard) {
    std::ostringstream partial;
    partial << prefix << ".shard" << shard << ".part.json";
    partial_paths.push_back(partial.str());

    table[shard].args = bench_args;
    table[shard].args.push_back("--shard=" + std::to_string(shard) + "/" +
                                std::to_string(shards));
    table[shard].args.push_back("--shard_json=" + partial_paths.back());
    table[shard].attempts.emplace_back();
    if (!spawn(table[shard].args, table[shard].attempts.back())) {
      return 1;
    }
  }

  // Supervision loop: drain stderr pipes, reap with WNOHANG, enforce the
  // per-attempt deadline, and respawn each failed shard exactly once.
  for (;;) {
    bool any_running = false;
    for (unsigned shard = 0; shard < shards; ++shard) {
      Attempt* attempt = table[shard].live();
      if (attempt == nullptr) {
        continue;
      }
      any_running = true;
      drain_stderr(*attempt);
      if (timeout_seconds > 0 && !attempt->timed_out &&
          Clock::now() - attempt->started >=
              std::chrono::seconds(timeout_seconds)) {
        attempt->timed_out = true;
        ::kill(attempt->pid, SIGKILL);  // Reaped by the waitpid below.
      }
      const pid_t reaped =
          ::waitpid(attempt->pid, &attempt->wait_status, WNOHANG);
      if (reaped != attempt->pid) {
        continue;  // Still running (or EINTR); poll again next round.
      }
      attempt->running = false;
      drain_stderr(*attempt);
      if (attempt->stderr_fd >= 0) {
        ::close(attempt->stderr_fd);
        attempt->stderr_fd = -1;
      }
      if (attempt_succeeded(*attempt)) {
        table[shard].ok = true;
        // A bench's normal stderr chatter (shard summary line) passes
        // through so the driver is transparent on the happy path.
        std::cerr << attempt->stderr_text;
        continue;
      }
      if (table[shard].attempts.size() == 1) {
        std::cerr << "bench_shard_driver: shard " << shard << "/" << shards
                  << " attempt 1 failed (" << describe_failure(*attempt)
                  << "); retrying once\n";
        table[shard].attempts.emplace_back();
        if (!spawn(table[shard].args, table[shard].attempts.back())) {
          table[shard].gave_up = true;
        }
      } else {
        table[shard].gave_up = true;
      }
    }
    if (!any_running) {
      break;
    }
    ::usleep(10'000);  // 10ms poll: cheap next to a bench shard's runtime.
  }

  bool children_ok = true;
  for (unsigned shard = 0; shard < shards; ++shard) {
    if (table[shard].ok) {
      continue;
    }
    children_ok = false;
    std::cerr << "bench_shard_driver: shard " << shard << "/" << shards
              << " FAILED after " << table[shard].attempts.size()
              << " attempt(s):\n";
    for (std::size_t n = 0; n < table[shard].attempts.size(); ++n) {
      const Attempt& attempt = table[shard].attempts[n];
      std::cerr << "  attempt " << (n + 1) << ": "
                << describe_failure(attempt) << "\n";
      if (!attempt.stderr_text.empty()) {
        std::cerr << "  --- captured stderr ---\n"
                  << attempt.stderr_text
                  << (attempt.stderr_text.back() == '\n' ? "" : "\n")
                  << "  -----------------------\n";
      }
    }
  }
  if (!children_ok) {
    std::cerr << "bench_shard_driver: aborting merge; partial reports kept "
                 "for inspection\n";
    return 1;
  }

  const titan::sim::MergeResult result =
      titan::sim::merge_shard_files(partial_paths);
  if (!result.ok) {
    std::cerr << "bench_shard_driver: merge FAILED: " << result.error << "\n";
    return 1;
  }

  if (!out_path.empty()) {
    if (!titan::sim::write_document(out_path, result.merged)) {
      std::cerr << "bench_shard_driver: cannot write " << out_path << "\n";
      return 1;
    }
  } else if (check_path.empty()) {
    std::cout << result.merged << "\n";
  }

  if (!check_path.empty()) {
    std::ifstream is(check_path);
    if (!is) {
      std::cerr << "bench_shard_driver: cannot read " << check_path << "\n";
      return 1;
    }
    std::ostringstream serial;
    serial << is.rdbuf();
    if (serial.str() != result.merged + "\n") {
      std::cerr << "bench_shard_driver: DETERMINISM CHECK FAILED: merged "
                   "output differs from "
                << check_path << " (" << result.merged.size() + 1 << " vs "
                << serial.str().size() << " bytes)\n";
      return 1;
    }
    std::cerr << "bench_shard_driver: determinism check passed (merged == "
              << check_path << ")\n";
  }

  if (!keep_partials) {
    for (const std::string& path : partial_paths) {
      std::remove(path.c_str());
    }
    if (!bundle_path.empty()) {
      std::remove(bundle_path.c_str());
    }
  }
  std::cerr << "bench_shard_driver: ran " << shards << " shard process(es)"
            << (out_path.empty() ? "" : " -> " + out_path) << "\n";
  return 0;
}

// titanctl — command-line client for titand (and its batch-mode witness).
//
//   titanctl --port=N ping
//   titanctl --port=N list [--tag=T] [--specs]
//   titanctl --port=N run NAME [--engine=lockstep|event]
//                              [--deadline_ms=MS] [--max_cycles=C]
//   titanctl --port=N run-spec 'scenario{...}'
//   titanctl --port=N metrics                 # GET /metrics, prints the body
//   titanctl --port=N health | ready          # GET /healthz | /readyz
//   titanctl local-run NAME [--engine=...]    # no daemon: batch run_scenario
//
// `run` prints the served report verbatim; `local-run` prints the canonical
// ReportSchema rendering of an in-process batch run.  The two outputs are
// byte-identical for every scenario — that diff is the serving pipeline's
// correctness witness (tests/serve_test.cpp in-process, the CI daemon-smoke
// job across a real socket).  --port_file=PATH reads the port titand wrote.
//
// Production hardening (PR 10): every socket operation is bounded by
// --timeout_ms (connect included), and --retries=N with --backoff_ms=B
// retries an attempt only when it is safe and useful — on transport
// failures (connect refused/timeout, connection closed mid-response) and
// on structured `overloaded` errors from admission control.  The backoff
// is deterministic exponential (B, 2B, 4B, ...); an `overloaded` error
// carrying retry_after_ms raises a too-small computed delay to the
// server's hint.  Application errors (unknown scenario, bad spec,
// deadline_exceeded, ...) never retry: resending cannot change the answer.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.hpp"
#include "api/report_schema.hpp"
#include "api/run.hpp"
#include "api/wire.hpp"
#include "sim/json.hpp"

namespace {

int usage() {
  std::cerr << "usage: titanctl [--host=H] [--port=N | --port_file=PATH]\n"
               "                [--timeout_ms=MS] [--retries=N]\n"
               "                [--backoff_ms=MS]\n"
               "                ping | list [--tag=T] [--specs] |\n"
               "                run NAME [--engine=lockstep|event]\n"
               "                         [--deadline_ms=MS] [--max_cycles=C] |\n"
               "                run-spec SPEC [--engine=...] [--deadline_ms=MS]\n"
               "                              [--max_cycles=C] |\n"
               "                metrics | health | ready |\n"
               "                local-run NAME [--engine=...]\n";
  return 2;
}

/// One attempt over the wire.  `ok` is transport success only — the
/// response may still carry a structured application error.
struct Exchange {
  bool ok = false;
  std::string error;     ///< transport failure description when !ok
  std::string response;  ///< full bytes (HTTP) or first line (JSONL)
};

/// connect(2) bounded by timeout_ms (non-blocking connect + poll).
int connect_with_timeout(const std::string& host, std::uint16_t port,
                         long timeout_ms, std::string* error) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (fd < 0 || inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "cannot resolve " + host;
    if (fd >= 0) {
      close(fd);
    }
    return -1;
  }
  fcntl(fd, F_SETFL, fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (errno != EINPROGRESS) {
      *error = "cannot connect to " + host + ":" + std::to_string(port) +
               ": " + std::strerror(errno);
      close(fd);
      return -1;
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = poll(&pfd, 1, static_cast<int>(timeout_ms));
    int soerr = 0;
    socklen_t len = sizeof soerr;
    if (ready <= 0 ||
        getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
        soerr != 0) {
      *error = "cannot connect to " + host + ":" + std::to_string(port) +
               (ready <= 0 ? ": timed out"
                           : std::string(": ") + std::strerror(soerr));
      close(fd);
      return -1;
    }
  }
  fcntl(fd, F_SETFL, fcntl(fd, F_GETFL, 0) & ~O_NONBLOCK);
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  return fd;
}

/// Connect, send `payload`, and read until `until_eof` (HTTP) or the first
/// newline (one JSONL response).  Never exits: transport failures come
/// back in Exchange::error so the retry policy can decide.
Exchange exchange(const std::string& host, std::uint16_t port,
                  const std::string& payload, bool until_eof,
                  long timeout_ms) {
  Exchange result;
  const int fd = connect_with_timeout(host, port, timeout_ms, &result.error);
  if (fd < 0) {
    return result;
  }
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = send(fd, payload.data() + sent, payload.size() - sent,
                           MSG_NOSIGNAL);
    if (n <= 0) {
      result.error = std::string("send failed: ") + std::strerror(errno);
      close(fd);
      return result;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char chunk[4096];
  while (true) {
    const ssize_t n = recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      result.error = std::string("recv failed: ") +
                     (errno == EAGAIN || errno == EWOULDBLOCK
                          ? "timed out"
                          : std::strerror(errno));
      close(fd);
      return result;
    }
    if (n == 0) {
      break;
    }
    response.append(chunk, static_cast<std::size_t>(n));
    if (!until_eof && response.find('\n') != std::string::npos) {
      break;
    }
  }
  close(fd);
  if (!until_eof) {
    const std::size_t nl = response.find('\n');
    if (nl == std::string::npos) {
      result.error = "connection closed before a full response";
      return result;
    }
    response.resize(nl);
  }
  result.ok = true;
  result.response = std::move(response);
  return result;
}

struct RetryPolicy {
  unsigned retries = 0;
  std::uint64_t backoff_ms = 100;
  long timeout_ms = 10000;
};

/// Exchange with deterministic exponential backoff.  Retries transport
/// failures and structured `overloaded` responses only; every other
/// response (success or application error) is returned as-is.  Exits only
/// when all attempts are exhausted on a retryable failure.
std::string exchange_with_retries(const std::string& host,
                                  std::uint16_t port,
                                  const std::string& payload, bool until_eof,
                                  const RetryPolicy& policy) {
  for (unsigned attempt = 0;; ++attempt) {
    const Exchange result =
        exchange(host, port, payload, until_eof, policy.timeout_ms);
    std::string why;
    std::uint64_t hint_ms = 0;
    if (result.ok) {
      if (until_eof) {
        return result.response;  // HTTP: no structured error envelope
      }
      bool overloaded = false;
      try {
        const titan::sim::JsonValue response =
            titan::sim::JsonValue::parse(result.response);
        const titan::sim::JsonValue* error = response.find("error");
        const titan::sim::JsonValue* code =
            error != nullptr ? error->find("code") : nullptr;
        if (code != nullptr && code->as_string() == "overloaded") {
          overloaded = true;
          const titan::sim::JsonValue* hint =
              error->find("retry_after_ms");
          if (hint != nullptr) {
            hint_ms = static_cast<std::uint64_t>(hint->as_int());
          }
        }
      } catch (const titan::sim::JsonParseError&) {
        // Malformed responses are surfaced to the caller, not retried.
      }
      if (!overloaded) {
        return result.response;
      }
      why = "server overloaded";
    } else {
      why = result.error;
    }
    if (attempt >= policy.retries) {
      if (result.ok) {
        return result.response;  // exhausted: report the overloaded error
      }
      std::cerr << "titanctl: " << why << " (after " << (attempt + 1)
                << " attempt(s))\n";
      std::exit(1);
    }
    std::uint64_t delay_ms = policy.backoff_ms << attempt;
    if (hint_ms > delay_ms) {
      delay_ms = hint_ms;
    }
    std::cerr << "titanctl: " << why << "; retrying in " << delay_ms
              << " ms (attempt " << (attempt + 2) << "/"
              << (policy.retries + 1) << ")\n";
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
}

/// Parse a wire response; exits (printing the structured error) on !ok.
titan::sim::JsonValue expect_ok(const std::string& line) {
  titan::sim::JsonValue response;
  try {
    response = titan::sim::JsonValue::parse(line);
  } catch (const titan::sim::JsonParseError& error) {
    std::cerr << "titanctl: malformed response: " << error.what() << "\n";
    std::exit(1);
  }
  const titan::sim::JsonValue* ok = response.find("ok");
  if (ok == nullptr || !ok->as_bool()) {
    const titan::sim::JsonValue* error = response.find("error");
    if (error != nullptr) {
      std::cerr << "titanctl: server error ["
                << error->find("code")->as_string()
                << "]: " << error->find("message")->as_string() << "\n";
    } else {
      std::cerr << "titanctl: malformed error response\n";
    }
    std::exit(1);
  }
  return response;
}

std::string quoted(std::string_view text) {
  return "\"" + titan::sim::json_escape(text) + "\"";
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = -1;
  std::string command;
  std::string name;  // scenario name or spec operand
  std::string engine;
  std::string tag;
  bool specs = false;
  long long deadline_ms = -1;
  unsigned long long max_cycles = 0;
  RetryPolicy policy;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--host=", 7) == 0) {
      host = arg + 7;
    } else if (std::strncmp(arg, "--port=", 7) == 0) {
      port = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--port_file=", 12) == 0) {
      std::FILE* in = std::fopen(arg + 12, "r");
      if (in == nullptr || std::fscanf(in, "%d", &port) != 1) {
        std::cerr << "titanctl: cannot read port from " << (arg + 12) << "\n";
        return 1;
      }
      std::fclose(in);
    } else if (std::strncmp(arg, "--engine=", 9) == 0) {
      engine = arg + 9;
    } else if (std::strncmp(arg, "--tag=", 6) == 0) {
      tag = arg + 6;
    } else if (std::strncmp(arg, "--deadline_ms=", 14) == 0) {
      deadline_ms = std::atoll(arg + 14);
    } else if (std::strncmp(arg, "--max_cycles=", 13) == 0) {
      max_cycles = std::strtoull(arg + 13, nullptr, 10);
    } else if (std::strncmp(arg, "--timeout_ms=", 13) == 0) {
      policy.timeout_ms = std::max(1LL, std::atoll(arg + 13));
    } else if (std::strncmp(arg, "--retries=", 10) == 0) {
      policy.retries = static_cast<unsigned>(std::max(0, std::atoi(arg + 10)));
    } else if (std::strncmp(arg, "--backoff_ms=", 13) == 0) {
      policy.backoff_ms =
          static_cast<std::uint64_t>(std::max(0LL, std::atoll(arg + 13)));
    } else if (std::strcmp(arg, "--specs") == 0) {
      specs = true;
    } else if (command.empty()) {
      command = arg;
    } else if (name.empty()) {
      name = arg;
    } else {
      std::cerr << "titanctl: unexpected argument '" << arg << "'\n";
      return usage();
    }
  }
  if (command.empty()) {
    return usage();
  }

  if (command == "local-run") {
    if (name.empty()) {
      return usage();
    }
    const titan::api::Scenario* found =
        titan::api::ScenarioRegistry::global().find(name);
    if (found == nullptr) {
      std::cerr << "titanctl: no registered scenario named '" << name << "'\n";
      return 1;
    }
    titan::api::Scenario scenario = *found;
    if (engine == "lockstep") {
      scenario = scenario.with_engine(titan::api::Engine::kLockStep);
    } else if (engine == "event") {
      scenario = scenario.with_engine(titan::api::Engine::kEventDriven);
    } else if (!engine.empty()) {
      std::cerr << "titanctl: unknown engine '" << engine << "'\n";
      return usage();
    }
    std::cout << titan::api::ReportSchema().render(
                     titan::api::run_scenario(scenario))
              << "\n";
    return 0;
  }

  if (port <= 0 || port > 65535) {
    std::cerr << "titanctl: " << command
              << " needs --port=N or --port_file=PATH\n";
    return usage();
  }
  const auto target_port = static_cast<std::uint16_t>(port);

  if (command == "metrics" || command == "health" || command == "ready") {
    const std::string path = command == "metrics"  ? "/metrics"
                             : command == "health" ? "/healthz"
                                                   : "/readyz";
    const std::string response = exchange_with_retries(
        host, target_port,
        "GET " + path + " HTTP/1.1\r\nHost: " + host + "\r\n\r\n",
        /*until_eof=*/true, policy);
    const std::size_t body = response.find("\r\n\r\n");
    if (body == std::string::npos) {
      std::cerr << "titanctl: malformed HTTP response\n";
      return 1;
    }
    std::cout << response.substr(body + 4);
    // health/ready exit non-zero on a non-200 status so scripts (and the
    // CI drain check) can branch on readiness without parsing bodies.
    if (command != "metrics" &&
        response.find("200 OK") == std::string::npos) {
      return 1;
    }
    return 0;
  }

  std::string request = "{\"schema_version\":" +
                        std::to_string(titan::api::kWireSchemaVersion) +
                        ",\"id\":\"ctl\",\"op\":";
  if (command == "ping") {
    request += "\"ping\"}";
  } else if (command == "list") {
    request += "\"list\"";
    if (!tag.empty()) {
      request += ",\"tag\":" + quoted(tag);
    }
    request += "}";
  } else if (command == "run" || command == "run-spec") {
    if (name.empty()) {
      return usage();
    }
    request += "\"run\",";
    request += command == "run" ? "\"scenario\":" : "\"spec\":";
    request += quoted(name);
    if (!engine.empty()) {
      request += ",\"engine\":" + quoted(engine);
    }
    if (deadline_ms >= 0) {
      request += ",\"deadline_ms\":" + std::to_string(deadline_ms);
    }
    if (max_cycles > 0) {
      request += ",\"max_cycles\":" + std::to_string(max_cycles);
    }
    request += "}";
  } else {
    std::cerr << "titanctl: unknown command '" << command << "'\n";
    return usage();
  }

  const titan::sim::JsonValue response = expect_ok(
      exchange_with_retries(host, target_port, request + "\n",
                            /*until_eof=*/false, policy));
  if (command == "ping") {
    std::cout << "pong\n";
  } else if (command == "list") {
    for (const titan::sim::JsonValue& entry :
         response.find("scenarios")->as_array()) {
      std::cout << entry.find("name")->as_string();
      if (specs) {
        std::cout << "\t" << entry.find("spec")->as_string();
      }
      std::cout << "\n";
    }
  } else {
    // The embedded report string holds the canonical ReportSchema bytes;
    // printing it verbatim is what makes `run` diffable against `local-run`.
    std::cout << response.find("report")->as_string() << "\n";
  }
  return 0;
}

// titanctl — command-line client for titand (and its batch-mode witness).
//
//   titanctl --port=N ping
//   titanctl --port=N list [--tag=T] [--specs]
//   titanctl --port=N run NAME [--engine=lockstep|event]
//   titanctl --port=N run-spec 'scenario{...}'
//   titanctl --port=N metrics                 # GET /metrics, prints the body
//   titanctl local-run NAME [--engine=...]    # no daemon: batch run_scenario
//
// `run` prints the served report verbatim; `local-run` prints the canonical
// ReportSchema rendering of an in-process batch run.  The two outputs are
// byte-identical for every scenario — that diff is the serving pipeline's
// correctness witness (tests/serve_test.cpp in-process, the CI daemon-smoke
// job across a real socket).  --port_file=PATH reads the port titand wrote.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/report_schema.hpp"
#include "api/run.hpp"
#include "api/wire.hpp"
#include "sim/json.hpp"

namespace {

int usage() {
  std::cerr << "usage: titanctl [--host=H] [--port=N | --port_file=PATH]\n"
               "                ping | list [--tag=T] [--specs] |\n"
               "                run NAME [--engine=lockstep|event] |\n"
               "                run-spec SPEC [--engine=...] | metrics |\n"
               "                local-run NAME [--engine=...]\n";
  return 2;
}

/// Connect, send `payload`, and read until `until_eof` (HTTP) or the first
/// newline (one JSONL response).  Exits with a message on socket failure.
std::string exchange(const std::string& host, std::uint16_t port,
                     const std::string& payload, bool until_eof) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (fd < 0 || inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
          0) {
    std::cerr << "titanctl: cannot connect to " << host << ":" << port << ": "
              << std::strerror(errno) << "\n";
    std::exit(1);
  }
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = send(fd, payload.data() + sent, payload.size() - sent,
                           MSG_NOSIGNAL);
    if (n <= 0) {
      std::cerr << "titanctl: send failed: " << std::strerror(errno) << "\n";
      std::exit(1);
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char chunk[4096];
  while (true) {
    const ssize_t n = recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      break;
    }
    response.append(chunk, static_cast<std::size_t>(n));
    if (!until_eof && response.find('\n') != std::string::npos) {
      break;
    }
  }
  close(fd);
  if (!until_eof) {
    const std::size_t nl = response.find('\n');
    if (nl == std::string::npos) {
      std::cerr << "titanctl: connection closed before a full response\n";
      std::exit(1);
    }
    response.resize(nl);
  }
  return response;
}

/// Parse a wire response; exits (printing the structured error) on !ok.
titan::sim::JsonValue expect_ok(const std::string& line) {
  titan::sim::JsonValue response;
  try {
    response = titan::sim::JsonValue::parse(line);
  } catch (const titan::sim::JsonParseError& error) {
    std::cerr << "titanctl: malformed response: " << error.what() << "\n";
    std::exit(1);
  }
  const titan::sim::JsonValue* ok = response.find("ok");
  if (ok == nullptr || !ok->as_bool()) {
    const titan::sim::JsonValue* error = response.find("error");
    if (error != nullptr) {
      std::cerr << "titanctl: server error ["
                << error->find("code")->as_string()
                << "]: " << error->find("message")->as_string() << "\n";
    } else {
      std::cerr << "titanctl: malformed error response\n";
    }
    std::exit(1);
  }
  return response;
}

std::string quoted(std::string_view text) {
  return "\"" + titan::sim::json_escape(text) + "\"";
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = -1;
  std::string command;
  std::string name;  // scenario name or spec operand
  std::string engine;
  std::string tag;
  bool specs = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--host=", 7) == 0) {
      host = arg + 7;
    } else if (std::strncmp(arg, "--port=", 7) == 0) {
      port = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--port_file=", 12) == 0) {
      std::FILE* in = std::fopen(arg + 12, "r");
      if (in == nullptr || std::fscanf(in, "%d", &port) != 1) {
        std::cerr << "titanctl: cannot read port from " << (arg + 12) << "\n";
        return 1;
      }
      std::fclose(in);
    } else if (std::strncmp(arg, "--engine=", 9) == 0) {
      engine = arg + 9;
    } else if (std::strncmp(arg, "--tag=", 6) == 0) {
      tag = arg + 6;
    } else if (std::strcmp(arg, "--specs") == 0) {
      specs = true;
    } else if (command.empty()) {
      command = arg;
    } else if (name.empty()) {
      name = arg;
    } else {
      std::cerr << "titanctl: unexpected argument '" << arg << "'\n";
      return usage();
    }
  }
  if (command.empty()) {
    return usage();
  }

  if (command == "local-run") {
    if (name.empty()) {
      return usage();
    }
    const titan::api::Scenario* found =
        titan::api::ScenarioRegistry::global().find(name);
    if (found == nullptr) {
      std::cerr << "titanctl: no registered scenario named '" << name << "'\n";
      return 1;
    }
    titan::api::Scenario scenario = *found;
    if (engine == "lockstep") {
      scenario = scenario.with_engine(titan::api::Engine::kLockStep);
    } else if (engine == "event") {
      scenario = scenario.with_engine(titan::api::Engine::kEventDriven);
    } else if (!engine.empty()) {
      std::cerr << "titanctl: unknown engine '" << engine << "'\n";
      return usage();
    }
    std::cout << titan::api::ReportSchema().render(
                     titan::api::run_scenario(scenario))
              << "\n";
    return 0;
  }

  if (port <= 0 || port > 65535) {
    std::cerr << "titanctl: " << command
              << " needs --port=N or --port_file=PATH\n";
    return usage();
  }
  const auto target_port = static_cast<std::uint16_t>(port);

  if (command == "metrics") {
    const std::string response = exchange(
        host, target_port,
        "GET /metrics HTTP/1.1\r\nHost: " + host + "\r\n\r\n",
        /*until_eof=*/true);
    const std::size_t body = response.find("\r\n\r\n");
    if (body == std::string::npos) {
      std::cerr << "titanctl: malformed HTTP response\n";
      return 1;
    }
    std::cout << response.substr(body + 4);
    return 0;
  }

  std::string request = "{\"schema_version\":" +
                        std::to_string(titan::api::kWireSchemaVersion) +
                        ",\"id\":\"ctl\",\"op\":";
  if (command == "ping") {
    request += "\"ping\"}";
  } else if (command == "list") {
    request += "\"list\"";
    if (!tag.empty()) {
      request += ",\"tag\":" + quoted(tag);
    }
    request += "}";
  } else if (command == "run" || command == "run-spec") {
    if (name.empty()) {
      return usage();
    }
    request += "\"run\",";
    request += command == "run" ? "\"scenario\":" : "\"spec\":";
    request += quoted(name);
    if (!engine.empty()) {
      request += ",\"engine\":" + quoted(engine);
    }
    request += "}";
  } else {
    std::cerr << "titanctl: unknown command '" << command << "'\n";
    return usage();
  }

  const titan::sim::JsonValue response =
      expect_ok(exchange(host, target_port, request + "\n",
                         /*until_eof=*/false));
  if (command == "ping") {
    std::cout << "pong\n";
  } else if (command == "list") {
    for (const titan::sim::JsonValue& entry :
         response.find("scenarios")->as_array()) {
      std::cout << entry.find("name")->as_string();
      if (specs) {
        std::cout << "\t" << entry.find("spec")->as_string();
      }
      std::cout << "\n";
    }
  } else {
    // The embedded report string holds the canonical ReportSchema bytes;
    // printing it verbatim is what makes `run` diffable against `local-run`.
    std::cout << response.find("report")->as_string() << "\n";
  }
  return 0;
}

// attack_corpus_smoke — replay the registry's attack-corpus matrix and
// prove the detection-latency scoring is deterministic and engine-invariant.
//
//   attack_corpus_smoke                    # both engines, field-wise diff
//   attack_corpus_smoke --engine=lockstep --json=A.json
//   attack_corpus_smoke --engine=event    --json=B.json
//
// Default mode runs every scenario tagged "attack_matrix" under BOTH
// co-simulation engines and compares the full RunReport (operator==, which
// covers the attack scoring block) — the adversarial-image extension of the
// engine-equivalence witness.  It also gates on the matrix's designed
// coverage: at least one scenario must *detect* its attack, and at least one
// must report a scored false negative (a hijacked edge that retired
// unflagged — fail-open deep ROP, or a forward-edge escape under the
// shadow-stack-only policy).  A corpus where every miss is silent, or where
// nothing is ever caught, is a broken corpus.  Exit status is non-zero on
// any mismatch or a failed coverage gate.
//
// Single-engine mode writes the canonical full sweep document instead, so
// CI can byte-diff a lock-step scoring document against an event-driven one.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/run.hpp"
#include "api/sweep.hpp"
#include "sim/sweep.hpp"

namespace {

int usage() {
  std::cerr << "usage: attack_corpus_smoke [--engine=lockstep|event] "
               "[--json=PATH]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using titan::api::Engine;
  bool engine_given = false;
  Engine engine = Engine::kEventDriven;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--engine=", 9) == 0) {
      const std::string value = arg + 9;
      if (value == "lockstep") {
        engine = Engine::kLockStep;
      } else if (value == "event") {
        engine = Engine::kEventDriven;
      } else {
        std::cerr << "attack_corpus_smoke: unknown engine '" << value << "'\n";
        return usage();
      }
      engine_given = true;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else {
      std::cerr << "attack_corpus_smoke: unknown flag '" << arg << "'\n";
      return usage();
    }
  }

  titan::api::ScenarioSet matrix =
      titan::api::ScenarioRegistry::global().query("attack_matrix",
                                                   "attack_matrix");
  if (matrix.empty()) {
    std::cerr << "attack_corpus_smoke: registry has no attack_matrix tag\n";
    return 1;
  }

  if (engine_given) {
    // Single-engine scoring-document mode (CI byte-diffs two of these).
    const titan::api::SweepPlan<titan::api::RunReport> plan =
        titan::api::scenario_sweep_plan(matrix.with_engine(engine));
    std::vector<titan::api::RunReport> rows;
    rows.reserve(matrix.size());
    for (std::size_t index = 0; index < matrix.size(); ++index) {
      rows.push_back(plan.point(index));
    }
    const titan::sim::RowEmitter emit_row = [&](titan::sim::JsonWriter& json,
                                                std::size_t index) {
      plan.emit(json, rows[index], index);
    };
    const std::string document =
        titan::sim::render_full_document(plan.header, emit_row);
    if (json_path.empty()) {
      std::cout << document << "\n";
    } else if (!titan::sim::write_document(json_path, document)) {
      std::cerr << "attack_corpus_smoke: cannot write " << json_path << "\n";
      return 1;
    }
    std::cerr << "attack_corpus_smoke: " << matrix.size() << " scenario(s), "
              << (engine == Engine::kLockStep ? "lock-step" : "event-driven")
              << " engine\n";
    return 0;
  }

  // Cross-engine mode: every scenario through both schedulers, field-wise.
  std::printf("%-28s %4s %8s %6s %4s %5s %4s %6s  %s\n", "scenario", "det",
              "latency", "ord", "ret", "flag", "fn", "exit", "engines");
  int mismatches = 0;
  std::size_t detections = 0;
  std::size_t scored_false_negatives = 0;
  for (const titan::api::Scenario& scenario : matrix) {
    const titan::api::RunReport lock_step =
        titan::api::run_scenario(scenario.with_engine(Engine::kLockStep));
    const titan::api::RunReport event_driven =
        titan::api::run_scenario(scenario.with_engine(Engine::kEventDriven));
    const bool match = lock_step == event_driven;
    mismatches += match ? 0 : 1;
    const titan::attacks::AttackStats& attack = event_driven.attack;
    detections += attack.detected ? 1 : 0;
    scored_false_negatives += attack.false_negatives > 0 ? 1 : 0;
    std::printf("%-28s %4s %8llu %6llu %4llu %5llu %4llu %6llu  %s\n",
                scenario.name().c_str(), attack.detected ? "YES" : "-",
                static_cast<unsigned long long>(attack.detection_latency),
                static_cast<unsigned long long>(attack.first_fault_ordinal),
                static_cast<unsigned long long>(attack.hijacks_retired),
                static_cast<unsigned long long>(attack.hijacks_flagged),
                static_cast<unsigned long long>(attack.false_negatives),
                static_cast<unsigned long long>(event_driven.exit_code),
                match ? "bit-exact" : "MISMATCH");
  }
  if (mismatches != 0) {
    std::cerr << "attack_corpus_smoke: " << mismatches
              << " scenario(s) diverge between engines\n";
    return 1;
  }
  if (detections == 0) {
    std::cerr << "attack_corpus_smoke: no scenario detected its attack — "
                 "the corpus is not exercising the CFI policy\n";
    return 1;
  }
  if (scored_false_negatives == 0) {
    std::cerr << "attack_corpus_smoke: no scenario scored a false negative — "
                 "the fail-open / forward-edge coverage rows are broken\n";
    return 1;
  }
  std::cerr << "attack_corpus_smoke: " << matrix.size()
            << " scenario(s) bit-exact across engines (" << detections
            << " detected, " << scored_false_negatives
            << " with scored false negatives)\n";
  return 0;
}

// fault_matrix_smoke — replay the registry's fault-injection matrix and
// prove the resilience machinery is deterministic and engine-invariant.
//
//   fault_matrix_smoke                     # both engines, field-wise diff
//   fault_matrix_smoke --engine=lockstep --json=A.json
//   fault_matrix_smoke --engine=event    --json=B.json
//   fault_matrix_smoke --write_checkpoints=PATH   # warm-up bundle, exit
//   fault_matrix_smoke --engine=... --warm_start=PATH
//
// A checkpoint bundle is engine-invariant: the same file warm-starts the
// matrix under either scheduler (or both at once in default mode), which is
// what lets CI byte-diff a warm event-driven document against a cold
// lock-step witness.
//
// Default mode runs every scenario tagged "fault_matrix" under BOTH
// co-simulation engines and compares the full RunReport (operator==, which
// covers every counter including the resilience block) — the fault-plan
// extension of the engine-equivalence witness.  Exit status is non-zero on
// any mismatch.
//
// Single-engine mode writes the canonical full sweep document instead, so
// CI can byte-diff a lock-step document against an event-driven one (and an
// event-driven rerun against itself for replay determinism).
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "api/checkpoint.hpp"
#include "api/registry.hpp"
#include "api/run.hpp"
#include "api/sweep.hpp"
#include "sim/sweep.hpp"

namespace {

int usage() {
  std::cerr << "usage: fault_matrix_smoke [--engine=lockstep|event] "
               "[--json=PATH] [--warm_start=PATH | --write_checkpoints=PATH]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using titan::api::Engine;
  bool engine_given = false;
  Engine engine = Engine::kEventDriven;
  std::string json_path;
  titan::sim::SweepCli checkpoint_cli;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--engine=", 9) == 0) {
      const std::string value = arg + 9;
      if (value == "lockstep") {
        engine = Engine::kLockStep;
      } else if (value == "event") {
        engine = Engine::kEventDriven;
      } else {
        std::cerr << "fault_matrix_smoke: unknown engine '" << value << "'\n";
        return usage();
      }
      engine_given = true;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strncmp(arg, "--warm_start=", 13) == 0) {
      checkpoint_cli.warm_start_path = arg + 13;
      checkpoint_cli.warm_start_given = true;
    } else if (std::strncmp(arg, "--write_checkpoints=", 20) == 0) {
      checkpoint_cli.write_checkpoints_path = arg + 20;
      checkpoint_cli.write_checkpoints_given = true;
    } else {
      std::cerr << "fault_matrix_smoke: unknown flag '" << arg << "'\n";
      return usage();
    }
  }
  if (checkpoint_cli.warm_start_given && checkpoint_cli.write_checkpoints_given) {
    std::cerr << "fault_matrix_smoke: --warm_start and --write_checkpoints "
                 "are mutually exclusive\n";
    return usage();
  }

  titan::api::ScenarioSet matrix =
      titan::api::ScenarioRegistry::global().query("fault_matrix",
                                                   "fault_matrix");
  if (matrix.empty()) {
    std::cerr << "fault_matrix_smoke: registry has no fault_matrix tag\n";
    return 1;
  }
  // Bundles are captured engine-agnostic and fork under whichever scheduler
  // each run selects below.
  const int checkpoint_rc = titan::api::handle_checkpoint_cli(
      matrix, checkpoint_cli, "fault_matrix_smoke");
  if (checkpoint_rc >= 0) {
    return checkpoint_rc;
  }

  if (engine_given) {
    // Single-engine document mode (CI byte-diffs two of these).
    const titan::api::SweepPlan<titan::api::RunReport> plan =
        titan::api::scenario_sweep_plan(matrix.with_engine(engine));
    std::vector<titan::api::RunReport> rows;
    rows.reserve(matrix.size());
    for (std::size_t index = 0; index < matrix.size(); ++index) {
      rows.push_back(plan.point(index));
    }
    const titan::sim::RowEmitter emit_row = [&](titan::sim::JsonWriter& json,
                                                std::size_t index) {
      plan.emit(json, rows[index], index);
    };
    const std::string document =
        titan::sim::render_full_document(plan.header, emit_row);
    if (json_path.empty()) {
      std::cout << document << "\n";
    } else if (!titan::sim::write_document(json_path, document)) {
      std::cerr << "fault_matrix_smoke: cannot write " << json_path << "\n";
      return 1;
    }
    std::cerr << "fault_matrix_smoke: " << matrix.size() << " scenario(s), "
              << (engine == Engine::kLockStep ? "lock-step" : "event-driven")
              << " engine\n";
    return 0;
  }

  // Cross-engine mode: every scenario through both schedulers, field-wise.
  std::printf("%-28s %6s %4s %4s %4s %6s %9s  %s\n", "scenario", "fault",
              "inj", "det", "fn", "retry", "degraded", "engines");
  int mismatches = 0;
  for (const titan::api::Scenario& scenario : matrix) {
    const titan::api::RunReport lock_step =
        titan::api::run_scenario(scenario.with_engine(Engine::kLockStep));
    const titan::api::RunReport event_driven =
        titan::api::run_scenario(scenario.with_engine(Engine::kEventDriven));
    const bool match = lock_step == event_driven;
    mismatches += match ? 0 : 1;
    const titan::sim::ResilienceStats& res = event_driven.resilience;
    std::printf("%-28s %6s %4llu %4llu %4llu %6llu %9llu  %s\n",
                scenario.name().c_str(), event_driven.cfi_fault ? "YES" : "-",
                static_cast<unsigned long long>(res.total_injected()),
                static_cast<unsigned long long>(res.total_detected()),
                static_cast<unsigned long long>(res.false_negatives),
                static_cast<unsigned long long>(res.doorbell_retries +
                                                res.mac_retries),
                static_cast<unsigned long long>(res.degraded_cycles),
                match ? "bit-exact" : "MISMATCH");
  }
  if (mismatches != 0) {
    std::cerr << "fault_matrix_smoke: " << mismatches
              << " scenario(s) diverge between engines\n";
    return 1;
  }
  std::cerr << "fault_matrix_smoke: " << matrix.size()
            << " scenario(s) bit-exact across engines\n";
  return 0;
}

#!/bin/sh
# Deterministic crash-once wrapper for bench_shard_driver's retry test.
#
#   FLAKY_MARKER_DIR=DIR flaky_bench_once.sh REAL_BENCH [bench args...]
#
# The first invocation that owns shard 0 (tracked by a marker file in
# $FLAKY_MARKER_DIR) aborts with exit 9 before producing any output —
# simulating a bench process that dies mid-shard.  Every other invocation
# (other shards, and shard 0's retry) execs the real bench unchanged, so a
# driver that retries once recovers a byte-identical merged report.
set -u
marker="${FLAKY_MARKER_DIR:?flaky_bench_once.sh: set FLAKY_MARKER_DIR}/crashed_once"
for arg in "$@"; do
  case "$arg" in
    --shard=0/*)
      if [ ! -e "$marker" ]; then
        : > "$marker"
        echo "flaky_bench_once: injected crash on shard 0 (first attempt)" >&2
        exit 9
      fi
      ;;
  esac
done
exec "$@"

#!/bin/sh
# ctest harness for bench_shard_driver's crash-retry path (shard_driver_retry
# in CMakeLists.txt).
#
#   run_shard_driver_retry_test.sh DRIVER FLAKY_WRAPPER REAL_BENCH SCRATCH_DIR
#
# Runs a 2-shard sweep where shard 0's first attempt crashes (exit 9, before
# writing its partial).  The test passes — prints RETRY_TEST_PASS, which the
# ctest PASS_REGULAR_EXPRESSION keys on — only when the driver (a) reported
# the failed attempt and retried it, and (b) still exited 0 with a merged
# document, i.e. the retry actually recovered the run.
set -u
driver="$1"
wrapper="$2"
bench="$3"
scratch="$4"

rm -rf "$scratch"
mkdir -p "$scratch"

out=$(FLAKY_MARKER_DIR="$scratch" "$driver" --shards=2 --timeout=300 \
      --out="$scratch/merged.json" -- "$wrapper" "$bench" 2>&1)
status=$?
echo "$out"

case "$out" in
  *"retrying once"*) retried=yes ;;
  *) retried=no ;;
esac

if [ "$status" -ne 0 ]; then
  echo "RETRY_TEST_FAIL: driver exited $status"
elif [ "$retried" != yes ]; then
  echo "RETRY_TEST_FAIL: no retry was reported (injected crash missing?)"
elif [ ! -s "$scratch/merged.json" ]; then
  echo "RETRY_TEST_FAIL: merged document missing or empty"
else
  echo "RETRY_TEST_PASS"
fi

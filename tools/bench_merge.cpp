// bench_merge — aggregate process-level sweep shards into one report.
//
//   bench_merge --out=MERGED.json shard0.json shard1.json ... shardK-1.json
//   bench_merge --out=MERGED.json --check-against=SERIAL.json shards...
//
// Each input is a partial report written by a sweep bench run with
// `--shard=i/K --shard_json=PATH` (see src/sim/shard_merge.hpp for the
// format).  The manifests are validated — grid hash, config fingerprint,
// point count, exactly-once shard coverage, ShardPlanner-consistent ranges —
// and the rows are spliced in shard order; any inconsistency is a hard
// failure.  The merged document is byte-identical to what a serial
// single-process `--json=PATH` run of the same bench writes, which
// `--check-against` verifies directly (CI diffs the merge of K shards
// against a 1-shard witness).
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/shard_merge.hpp"

namespace {

int usage() {
  std::cerr << "usage: bench_merge [--out=PATH] [--check-against=PATH] "
               "shard0.json ... shardK-1.json\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string check_path;
  std::vector<std::string> shard_paths;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--check-against=", 16) == 0) {
      check_path = arg + 16;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::cerr << "bench_merge: unknown flag '" << arg << "'\n";
      return usage();
    } else {
      shard_paths.emplace_back(arg);
    }
  }
  if (shard_paths.empty()) {
    return usage();
  }

  const titan::sim::MergeResult result =
      titan::sim::merge_shard_files(shard_paths);
  if (!result.ok) {
    std::cerr << "bench_merge: FAILED: " << result.error << "\n";
    return 1;
  }

  if (!out_path.empty()) {
    if (!titan::sim::write_document(out_path, result.merged)) {
      std::cerr << "bench_merge: cannot write " << out_path << "\n";
      return 1;
    }
  } else if (check_path.empty()) {
    std::cout << result.merged << "\n";
  }

  if (!check_path.empty()) {
    std::ifstream is(check_path);
    if (!is) {
      std::cerr << "bench_merge: cannot read " << check_path << "\n";
      return 1;
    }
    std::ostringstream serial;
    serial << is.rdbuf();
    if (serial.str() != result.merged + "\n") {
      std::cerr << "bench_merge: DETERMINISM CHECK FAILED: merged output "
                   "differs from "
                << check_path << " (" << result.merged.size() + 1 << " vs "
                << serial.str().size() << " bytes)\n";
      return 1;
    }
    std::cerr << "bench_merge: determinism check passed (merged == "
              << check_path << ")\n";
  }

  std::cerr << "bench_merge: merged " << shard_paths.size() << " shard(s)"
            << (out_path.empty() ? "" : " into " + out_path) << "\n";
  return 0;
}

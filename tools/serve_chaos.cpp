// serve_chaos — deterministic socket-chaos harness for a live titand.
//
//   serve_chaos --port=N [--seed=S] [--max_inflight=I] [--max_queue=Q]
//               [--retry_after_ms=MS] [--max_frame=BYTES]
//               [--shed_probes=K] [--disconnect_fillers=D]
//               [--pipeline_depth=P] [--budget_cycles=C]
//               [--filler_workload=WL] [--expect_warm] [--skip_ready]
//
// Replays the seeded adversarial schedule from serve::run_chaos against the
// daemon at --port (or --port_file=PATH) and prints the deterministic
// report: operation log, tracked-counter delta table, and a CHAOS
// PASS/FAIL verdict.  Exit status 0 iff every probe behaved and every
// tracked counter moved by exactly its predicted delta.  Two invocations
// with the same seed and flags print byte-identical reports — the CI
// chaos-smoke job diffs them to pin schedule determinism.
//
// The admission flags must mirror the daemon's own --max_inflight /
// --max_queue / --retry_after_ms / --max_frame: the flood phase's shed
// arithmetic is exact, not approximate.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "serve/chaos.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: serve_chaos [--host=H] (--port=N | --port_file=PATH)\n"
         "                   [--seed=S] [--max_inflight=I] [--max_queue=Q]\n"
         "                   [--retry_after_ms=MS] [--max_frame=BYTES]\n"
         "                   [--shed_probes=K] [--disconnect_fillers=D]\n"
         "                   [--pipeline_depth=P] [--budget_cycles=C]\n"
         "                   [--filler_workload=WL] [--expect_warm]\n"
         "                   [--skip_ready]\n";
  return 2;
}

bool flag_value(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  titan::serve::ChaosConfig config;
  int port = -1;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (flag_value(argv[i], "--host", &value)) {
      config.host = value;
    } else if (flag_value(argv[i], "--port", &value)) {
      port = std::atoi(value);
    } else if (flag_value(argv[i], "--port_file", &value)) {
      std::FILE* in = std::fopen(value, "r");
      if (in == nullptr || std::fscanf(in, "%d", &port) != 1) {
        std::cerr << "serve_chaos: cannot read port from " << value << "\n";
        return 1;
      }
      std::fclose(in);
    } else if (flag_value(argv[i], "--seed", &value)) {
      config.seed = std::strtoull(value, nullptr, 10);
    } else if (flag_value(argv[i], "--max_inflight", &value)) {
      config.max_inflight = static_cast<unsigned>(std::atoi(value));
    } else if (flag_value(argv[i], "--max_queue", &value)) {
      config.max_queue = static_cast<std::size_t>(std::atoi(value));
    } else if (flag_value(argv[i], "--retry_after_ms", &value)) {
      config.retry_after_ms = std::strtoull(value, nullptr, 10);
    } else if (flag_value(argv[i], "--max_frame", &value)) {
      config.max_frame = static_cast<std::size_t>(
          std::strtoull(value, nullptr, 10));
    } else if (flag_value(argv[i], "--shed_probes", &value)) {
      config.shed_probes = static_cast<unsigned>(std::atoi(value));
    } else if (flag_value(argv[i], "--disconnect_fillers", &value)) {
      config.disconnect_fillers = static_cast<unsigned>(std::atoi(value));
    } else if (flag_value(argv[i], "--pipeline_depth", &value)) {
      config.pipeline_depth = static_cast<unsigned>(std::atoi(value));
    } else if (flag_value(argv[i], "--budget_cycles", &value)) {
      config.budget_cycles = std::strtoull(value, nullptr, 10);
    } else if (flag_value(argv[i], "--filler_workload", &value)) {
      config.filler_workload = value;
    } else if (std::strcmp(argv[i], "--expect_warm") == 0) {
      config.expect_cold_runs = false;
    } else if (std::strcmp(argv[i], "--skip_ready") == 0) {
      config.check_ready = false;
    } else {
      std::cerr << "serve_chaos: unknown argument '" << argv[i] << "'\n";
      return usage();
    }
  }
  if (port <= 0 || port > 65535) {
    std::cerr << "serve_chaos: needs --port=N or --port_file=PATH\n";
    return usage();
  }
  config.port = static_cast<std::uint16_t>(port);

  const titan::serve::ChaosReport report = titan::serve::run_chaos(config);
  std::cout << report.render();
  return report.ok() ? 0 : 1;
}

#!/usr/bin/env python3
"""Bench regression gate: warn (never fail) when fresh BENCH numbers regress.

Compares the ratio-style fields (speedups, doorbell reduction) of freshly
generated BENCH_*.json reports against the baselines committed in the repo,
with a generous tolerance — the point is to make the perf trajectory visible
per PR, not to make CI flaky on noisy shared runners.  Emits GitHub Actions
`::warning::` annotations and always exits 0 unless an input file is missing
or malformed (a broken gate must be visible).

Usage:
    bench_regression_gate.py BASELINE.json FRESH.json [BASELINE FRESH ...]
                             [--tolerance=0.5]
"""

import json
import sys

# Fresh must reach baseline * (1 - TOLERANCE) before we warn; 0.5 is
# deliberately generous because CI runners vary wildly in per-core speed.
DEFAULT_TOLERANCE = 0.5

# Numeric leaves worth gating: machine-portable ratios, not absolute rates.
GATED_KEY_SUBSTRINGS = ("speedup", "reduction")


def numeric_leaves(node, prefix=""):
    """Yield (dotted_path, value) for every numeric leaf in a JSON tree."""
    if isinstance(node, dict):
        items = node.items()
    elif isinstance(node, list):
        items = enumerate(node)
    else:
        if isinstance(node, (int, float)) and not isinstance(node, bool):
            yield prefix, float(node)
        return
    for key, value in items:
        yield from numeric_leaves(value, f"{prefix}.{key}" if prefix else str(key))


def gated_fields(report):
    return {
        path: value
        for path, value in numeric_leaves(report)
        if any(s in path.rsplit(".", 1)[-1] for s in GATED_KEY_SUBSTRINGS)
    }


def speedup_not_measurable(report):
    """PR2-style reports on 1-hardware-thread hosts can't show sweep speedup
    (see bench_micro --pr2_only): skip sweep.speedup comparison there."""
    if report.get("hw_concurrency", report.get("hardware_threads", 2)) <= 1:
        return True
    sweep = report.get("sweep", {})
    return sweep.get("speedup_meaningful") is False


def compare(baseline_path, fresh_path, tolerance):
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)

    baseline_fields = gated_fields(baseline)
    fresh_fields = gated_fields(fresh)
    skip_sweep = speedup_not_measurable(baseline) or speedup_not_measurable(fresh)

    warned = 0
    for path, base_value in sorted(baseline_fields.items()):
        if path not in fresh_fields:
            print(f"::warning::bench gate: {fresh_path} dropped field "
                  f"'{path}' (baseline {baseline_path} has {base_value:.3g})")
            warned += 1
            continue
        if skip_sweep and path.startswith("sweep.speedup"):
            print(f"  skip  {path}: sweep speedup not measurable on a "
                  f"1-hardware-thread host")
            continue
        fresh_value = fresh_fields[path]
        floor = base_value * (1.0 - tolerance)
        status = "ok"
        if fresh_value < floor:
            print(f"::warning::bench gate: {path} regressed: "
                  f"{fresh_value:.3g} vs baseline {base_value:.3g} "
                  f"(floor {floor:.3g}, tolerance {tolerance:.0%}) "
                  f"[{fresh_path} vs {baseline_path}]")
            warned += 1
            status = "SLOW"
        print(f"  {status:4}  {path}: fresh {fresh_value:.3g} vs "
              f"baseline {base_value:.3g}")
    return warned


def main(argv):
    tolerance = DEFAULT_TOLERANCE
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if not paths or len(paths) % 2 != 0:
        print("usage: bench_regression_gate.py BASELINE FRESH "
              "[BASELINE FRESH ...] [--tolerance=0.5]", file=sys.stderr)
        return 2

    warned = 0
    for baseline_path, fresh_path in zip(paths[0::2], paths[1::2]):
        print(f"== {baseline_path} vs {fresh_path}")
        warned += compare(baseline_path, fresh_path, tolerance)
    print(f"bench gate: {warned} warning(s); perf regressions warn, "
          f"never fail the build")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// titand — the scenario-serving daemon.
//
// Loads the scenario registry once, keeps a warm CheckpointCache across
// requests, and serves scenario runs over the line-delimited JSON protocol
// (api/wire.hpp) plus a minimal HTTP shim (GET /metrics, GET /scenarios,
// POST /run) on one TCP port.  Served reports are byte-identical to what a
// batch run_scenario caller renders — titanctl's `run` vs `local-run` pair
// is the witness, and the CI daemon-smoke job diffs them across the whole
// fault_matrix grid.
//
//   titand                                  # ephemeral port, lazy warm-up
//   titand --port=7621 --threads=8
//   titand --port=0 --port_file=/tmp/titand.port   # CI: kernel picks a port
//   titand --warm_start=BUNDLE.ckpt         # preloaded checkpoints only
//   titand --warm=off                       # every run cold, from cycle 0
//
// Production hardening (PR 10): --max_inflight and --max_queue bound the
// concurrent + waiting run count (excess runs are shed with `overloaded` +
// a --retry_after_ms hint); GET /healthz answers for the whole lifetime and
// GET /readyz flips to 200 only once serving is up (and back to 503 while
// draining); SIGTERM/SIGINT trigger a graceful drain — stop admitting runs,
// let in-flight ones finish for up to --drain_timeout ms, then cancel the
// stragglers through their cooperative cancel tokens and exit cleanly.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "serve/daemon.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: titand [--port=N] [--port_file=PATH] [--threads=N]\n"
         "              [--warm=lazy|off] [--warm_start=BUNDLE.ckpt]\n"
         "              [--warmup=CYCLE] [--max_frame=BYTES]\n"
         "              [--max_inflight=N] [--max_queue=N]\n"
         "              [--retry_after_ms=MS] [--drain_timeout=MS]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  titan::serve::Server::Options server_options;
  titan::serve::ScenarioService::Options service_options;
  std::string port_file;
  std::string bundle_path;
  long drain_timeout_ms = 5000;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--port=", 7) == 0) {
      server_options.port = static_cast<std::uint16_t>(std::atoi(arg + 7));
    } else if (std::strncmp(arg, "--port_file=", 12) == 0) {
      port_file = arg + 12;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      server_options.threads =
          static_cast<unsigned>(std::max(1, std::atoi(arg + 10)));
    } else if (std::strncmp(arg, "--max_frame=", 12) == 0) {
      server_options.max_frame =
          static_cast<std::size_t>(std::atoll(arg + 12));
    } else if (std::strncmp(arg, "--max_inflight=", 15) == 0) {
      server_options.max_inflight =
          static_cast<unsigned>(std::max(0, std::atoi(arg + 15)));
    } else if (std::strncmp(arg, "--max_queue=", 12) == 0) {
      server_options.max_queue =
          static_cast<std::size_t>(std::max(0LL, std::atoll(arg + 12)));
    } else if (std::strncmp(arg, "--retry_after_ms=", 17) == 0) {
      server_options.retry_after_ms =
          static_cast<std::uint64_t>(std::max(0LL, std::atoll(arg + 17)));
    } else if (std::strncmp(arg, "--drain_timeout=", 16) == 0) {
      drain_timeout_ms = std::max(0LL, std::atoll(arg + 16));
    } else if (std::strncmp(arg, "--warmup=", 9) == 0) {
      service_options.warmup =
          static_cast<titan::sim::Cycle>(std::atoll(arg + 9));
    } else if (std::strncmp(arg, "--warm_start=", 13) == 0) {
      bundle_path = arg + 13;
      service_options.warm_mode = titan::serve::WarmMode::kBundle;
    } else if (std::strncmp(arg, "--warm=", 7) == 0) {
      const std::string value = arg + 7;
      if (value == "lazy") {
        service_options.warm_mode = titan::serve::WarmMode::kLazy;
      } else if (value == "off") {
        service_options.warm_mode = titan::serve::WarmMode::kOff;
      } else {
        std::cerr << "titand: unknown warm mode '" << value << "'\n";
        return usage();
      }
    } else {
      std::cerr << "titand: unknown flag '" << arg << "'\n";
      return usage();
    }
  }

  titan::serve::MetricsRegistry metrics;
  titan::serve::ScenarioService service(service_options, metrics);
  if (!bundle_path.empty()) {
    try {
      service.preload_bundle(bundle_path);
    } catch (const std::exception& error) {
      std::cerr << "titand: cannot load bundle " << bundle_path << ": "
                << error.what() << "\n";
      return 1;
    }
  }

  titan::serve::Server server(server_options, service);
  titan::serve::install_shutdown_handlers();
  try {
    server.start();
  } catch (const std::exception& error) {
    std::cerr << "titand: " << error.what() << "\n";
    return 1;
  }
  if (!port_file.empty()) {
    std::FILE* out = std::fopen(port_file.c_str(), "w");
    if (out == nullptr) {
      std::cerr << "titand: cannot write port file " << port_file << "\n";
      server.stop();
      return 1;
    }
    std::fprintf(out, "%u\n", static_cast<unsigned>(server.port()));
    std::fclose(out);
  }
  std::cerr << "titand: serving on " << server_options.host << ":"
            << server.port() << " (" << server_options.threads
            << " thread(s))\n";
  // Registry + bundle are loaded and the socket is accepting: declare
  // readiness (GET /readyz flips to 200).
  server.set_ready();

  const int signum = titan::serve::wait_for_shutdown();
  std::cerr << "titand: signal " << signum << ", draining\n";
  const bool clean =
      server.drain(std::chrono::milliseconds(drain_timeout_ms));
  if (!clean) {
    std::cerr << "titand: drain timeout after " << drain_timeout_ms
              << " ms, cancelled stragglers\n";
  }
  server.stop();
  std::cerr << "titand: clean exit\n";
  return 0;
}

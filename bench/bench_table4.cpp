// Regenerates paper Table IV: hardware resource utilisation of TitanCFI
// versus DExIE [8].
//
// FPGA synthesis is unavailable here; the numbers come from the structural
// area model (src/area), calibrated once against the paper's measured deltas
// and reported next to the published reference values.  The component
// breakdown and queue-depth scaling are the model's own output.
#include <iomanip>
#include <iostream>

#include "area/area_model.hpp"
#include "api/enforce.hpp"

int main() {
  using titan::area::host_delta;
  using titan::area::paper_reference;
  using titan::area::soc_delta;

  const unsigned depth = 1;  // synthesized configuration (Table II setup)

  std::cout << "TABLE IV — Hardware resource utilisation w.r.t. DExIE [8]\n\n";
  std::cout << "  Published reference (paper Table IV):\n";
  std::cout << std::left << std::setw(12) << "  scope" << std::right
            << std::setw(12) << "LUT w/o" << std::setw(12) << "LUT w/"
            << std::setw(12) << "Regs w/o" << std::setw(12) << "Regs w/"
            << std::setw(8) << "BRAM" << "\n";
  for (const auto& row : paper_reference()) {
    std::cout << std::left << std::setw(12) << (std::string("  ") + row.scope)
              << std::right << std::setw(12)
              << static_cast<long>(row.without_cfi_luts) << std::setw(12)
              << static_cast<long>(row.with_cfi_luts) << std::setw(12)
              << static_cast<long>(row.without_cfi_regs) << std::setw(12)
              << static_cast<long>(row.with_cfi_regs) << std::setw(8)
              << static_cast<long>(row.with_cfi_brams - row.without_cfi_brams)
              << "\n";
  }

  const auto host = host_delta(depth);
  const auto soc = soc_delta(depth);
  const auto& reference = paper_reference();

  std::cout << "\n  Structural model (queue depth " << depth << "):\n";
  std::cout << "   Host-core delta components (LUT / Regs / BRAM):\n";
  host.print(std::cout);
  std::cout << "   SoC delta components:\n";
  soc.print(std::cout);

  const auto pct = [](double delta, double base) {
    return 100.0 * delta / base;
  };
  std::cout << "\n  Deltas, model vs paper:\n" << std::fixed << std::setprecision(1);
  std::cout << "    Host: LUT +" << static_cast<long>(host.total().luts)
            << " (paper +1160), Regs +" << static_cast<long>(host.total().regs)
            << " (paper +1770), BRAM +0 (paper +0)\n";
  std::cout << "    SoC:  LUT +" << static_cast<long>(soc.total().luts)
            << " (paper +1330), Regs +" << static_cast<long>(soc.total().regs)
            << " (paper +2190), BRAM +0 (paper +0)\n";
  std::cout << "    Host overhead: LUT +"
            << pct(host.total().luts, reference[0].without_cfi_luts)
            << "% (paper +2.3%), Regs +"
            << pct(host.total().regs, reference[0].without_cfi_regs)
            << "% (paper +5.8%)\n";
  std::cout << "    SoC overhead:  LUT +"
            << pct(soc.total().luts, reference[1].without_cfi_luts)
            << "% (paper +0.3%), Regs +"
            << pct(soc.total().regs, reference[1].without_cfi_regs)
            << "% (paper +0.9%)\n";

  const double dexie_luts =
      reference[2].with_cfi_luts - reference[2].without_cfi_luts;
  const double dexie_regs =
      reference[2].with_cfi_regs - reference[2].without_cfi_regs;
  std::cout << "    vs DExIE: " << std::setprecision(0)
            << 100.0 * (1.0 - soc.total().luts / dexie_luts)
            << "% fewer LUTs (paper: 60% fewer), "
            << 100.0 * (1.0 - soc.total().regs / dexie_regs)
            << "% fewer regs (paper: 2% fewer), 0 BRAM vs +6 BRAM\n";

  std::cout << "\n  Queue-depth scaling (host delta):\n";
  std::cout << "    depth     LUT      Regs\n";
  for (const unsigned d : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto estimate = host_delta(d).total();
    std::cout << "    " << std::setw(5) << d << std::setw(9)
              << static_cast<long>(estimate.luts) << std::setw(9)
              << static_cast<long>(estimate.regs) << "\n";
  }
  return 0;
}

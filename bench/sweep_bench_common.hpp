// Shared report-identity helpers for the sweep benches.
//
// A shard partial may only merge with shards (and the serial witness) that
// ran the same point grid under the same configuration, so every sweep
// bench stamps its documents with a grid hash and a config fingerprint.
// These helpers derive the fingerprinted text from the *live* values the
// bench actually runs with — the OverheadConfig instance, the benchmark
// table rows — so the fingerprint cannot drift from the configuration the
// way a hand-maintained description literal would, which is the whole point
// of the skew check in tools/bench_merge.
#pragma once

#include <sstream>
#include <string>
#include <type_traits>

#include "sim/shard_merge.hpp"
#include "titancfi/overhead_model.hpp"
#include "workloads/embench.hpp"

namespace titan::bench {

/// Grid identity over Table rows (by value or by pointer): the name plus
/// the two published quantities that drive the trace-driven model.
template <typename Range>
[[nodiscard]] std::string benchmark_grid_desc(const Range& rows) {
  std::ostringstream desc;
  for (const auto& row : rows) {
    const workloads::BenchmarkStats& stats = [&]() -> decltype(auto) {
      if constexpr (std::is_pointer_v<std::decay_t<decltype(row)>>) {
        return *row;
      } else {
        return row;
      }
    }();
    desc << stats.name << ':' << stats.cycles << ':' << stats.cf_count << ';';
  }
  return desc.str();
}

/// Config identity of a trace-driven overhead sweep: the queue/transport
/// values of the config instance the bench replays with, plus the three
/// firmware check latencies every row sweeps over.
[[nodiscard]] inline std::string overhead_config_desc(
    const cfi::OverheadConfig& config) {
  std::ostringstream desc;
  desc << "queue_depth=" << config.queue_depth
       << ";transport=" << config.transport_cycles
       << ";lat=" << workloads::kOptimizedLatency << ','
       << workloads::kPollingLatency << ',' << workloads::kIrqLatency;
  return desc.str();
}

/// Document header for an overhead-model sweep over `rows`.
template <typename Range>
[[nodiscard]] sim::SweepDocHeader overhead_sweep_header(
    std::string bench_name, const Range& rows, std::size_t total_points,
    const cfi::OverheadConfig& config) {
  sim::SweepDocHeader header;
  header.bench = std::move(bench_name);
  header.total_points = total_points;
  header.grid_hash = sim::fingerprint_hex(benchmark_grid_desc(rows));
  header.config_fingerprint =
      sim::fingerprint_hex(overhead_config_desc(config));
  return header;
}

}  // namespace titan::bench

// Regenerates paper Fig. 1 as a structural dump: the architecture of
// TitanCFI, emitted from the *live object graph* of a constructed SoC (not a
// hard-coded drawing) — region maps, queue geometry, firmware section
// layout, and the doorbell/completion wiring are all read back from the
// instantiated components.
//
// The liveness proof at the end runs the full (firmware variant x RoT
// fabric x drain burst) configuration grid through sim::SweepRunner — each
// point is an independent co-simulation:
//   bench_fig1 [--threads=N] [--json=PATH]
//   bench_fig1 --shard=i/K --shard_json=PATH [--threads=N]
// A --shard run co-simulates only the ShardPlanner-owned slice of the grid
// and writes a partial report; tools/bench_merge reconstructs the --json
// output byte-for-byte from all K partials.
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "firmware/builder.hpp"
#include "sim/shard_merge.hpp"
#include "sim/sweep.hpp"
#include "titancfi/soc_top.hpp"
#include "workloads/programs.hpp"

namespace {

// Shared by every liveness-grid point and by the report's config
// fingerprint, so the fingerprint tracks the configuration actually run.
constexpr unsigned kQueueDepth = 8;
constexpr int kLivenessFib = 8;

struct LivenessPoint {
  titan::fw::FwVariant variant;
  titan::cfi::RotFabric fabric;
  unsigned burst;
  bool mac;
  const char* label;
};

constexpr LivenessPoint kLivenessGrid[] = {
    {titan::fw::FwVariant::kIrq, titan::cfi::RotFabric::kBaseline, 1, false,
     "irq/baseline/burst1"},
    {titan::fw::FwVariant::kIrq, titan::cfi::RotFabric::kBaseline, 8, false,
     "irq/baseline/burst8"},
    {titan::fw::FwVariant::kIrq, titan::cfi::RotFabric::kBaseline, 8, true,
     "irq/baseline/burst8+mac"},
    {titan::fw::FwVariant::kPolling, titan::cfi::RotFabric::kBaseline, 1,
     false, "polling/baseline/burst1"},
    {titan::fw::FwVariant::kPolling, titan::cfi::RotFabric::kBaseline, 8,
     false, "polling/baseline/burst8"},
    {titan::fw::FwVariant::kPolling, titan::cfi::RotFabric::kBaseline, 8,
     true, "polling/baseline/burst8+mac"},
    {titan::fw::FwVariant::kPolling, titan::cfi::RotFabric::kOptimized, 1,
     false, "polling/optimized/burst1"},
    {titan::fw::FwVariant::kPolling, titan::cfi::RotFabric::kOptimized, 8,
     false, "polling/optimized/burst8"},
};

titan::cfi::SocRunResult run_point(const LivenessPoint& point) {
  titan::fw::FirmwareConfig fw_config;
  fw_config.variant = point.variant;
  fw_config.batch_capacity = point.burst;
  fw_config.batch_mac = point.mac;
  titan::cfi::SocConfig config;
  config.queue_depth = kQueueDepth;
  config.fabric = point.fabric;
  config.drain_burst = point.burst;
  config.mac_batches = point.mac;
  titan::cfi::SocTop soc(config, titan::workloads::fib_recursive(kLivenessFib),
                         titan::fw::build_firmware(fw_config));
  return soc.run();
}

}  // namespace

int main(int argc, char** argv) {
  const titan::sim::SweepCli cli = titan::sim::parse_sweep_cli(argc, argv);
  if (!cli.error.empty()) {
    std::cerr << "bench_fig1: " << cli.error << "\n";
    return 2;
  }
  titan::cfi::SocConfig config;
  config.queue_depth = kQueueDepth;
  titan::fw::FirmwareConfig fw_config;
  const auto firmware = titan::fw::build_firmware(fw_config);
  titan::cfi::SocTop soc(config, titan::workloads::fib_recursive(5), firmware);

  std::cout << "FIG. 1 — Architecture of TitanCFI (structural dump of the "
               "instantiated SoC)\n\n";

  std::cout
      << "  CVA6 (RV64IMC, in-order, dual commit ports)\n"
      << "    commit port 0 ──> CFI Filter0 ─┐\n"
      << "    commit port 1 ──> CFI Filter1 ─┤ (calls / returns / indirect "
         "jumps)\n"
      << "                                   v\n"
      << "    CFI Queue: depth " << soc.queue_controller().queue().depth()
      << ", " << titan::cfi::CommitLog::kBits
      << "-bit commit logs {pc, encoding, next, target}\n"
      << "    Queue Controller: stalls commit on full queue / dual-CF cycle\n"
      << "    CFI Log Writer FSM: pop -> " << titan::cfi::CommitLog::kBeats
      << " x 64-bit AXI beats -> doorbell -> wait -> verdict\n\n";

  std::cout << "  Host AXI crossbar '" << soc.axi().name()
            << "' (hop latency " << soc.axi().hop_latency() << " cycles):\n";
  for (const auto& mapping : soc.axi().mappings()) {
    std::cout << "    0x" << std::hex << std::setw(9) << std::setfill('0')
              << mapping.region.base << std::dec << std::setfill(' ')
              << "  +" << std::setw(8) << mapping.region.size << "  "
              << mapping.label << " (device latency "
              << mapping.device_latency << ")\n";
  }

  std::cout << "\n  CFI Mailbox: " << titan::soc::Mailbox::kDataRegs
            << " x 64-bit data regs, doorbell @+0x" << std::hex
            << titan::soc::Mailbox::kDoorbellOffset << ", completion @+0x"
            << titan::soc::Mailbox::kCompletionOffset << std::dec << "\n"
            << "    doorbell-cfi  ──> RoT PLIC (source "
            << titan::cfi::kCfiDoorbellIrq << ") ──> Ibex ext-irq\n"
            << "    completion-cfi ─> wired directly to the CFI Log Writer "
               "(not the host PLIC)\n";

  std::cout << "\n  OpenTitan RoT TL-UL fabric '" << soc.rot().fabric().name()
            << "' (hop latency " << soc.rot().fabric().hop_latency()
            << " cycles):\n";
  for (const auto& mapping : soc.rot().fabric().mappings()) {
    std::cout << "    0x" << std::hex << std::setw(9) << std::setfill('0')
              << mapping.region.base << std::dec << std::setfill(' ')
              << "  +" << std::setw(8) << mapping.region.size << "  "
              << mapping.label << " (device latency "
              << mapping.device_latency << ")\n";
  }

  std::cout << "\n  Ibex (RV32IMC) firmware image: base 0x" << std::hex
            << firmware.base << std::dec << ", " << firmware.bytes.size()
            << " bytes; sections:\n";
  for (const auto& [name, addr] : firmware.marks) {
    std::cout << "    0x" << std::hex << addr << std::dec << "  " << name
              << "\n";
  }

  // Prove the wiring is live, not cosmetic: run the full configuration grid
  // and show traffic.  Each point is an independent co-simulation, sharded
  // across threads by the sweep engine with index-ordered aggregation.
  titan::sim::SweepOptions sweep_options;
  sweep_options.threads = cli.threads;
  titan::sim::SweepRunner runner(sweep_options);
  const std::size_t grid_size = std::size(kLivenessGrid);

  // Report identity: shards (and the serial witness) must agree on the
  // point grid and the fixed configuration before their rows may be merged.
  std::ostringstream grid_desc;
  for (const LivenessPoint& point : kLivenessGrid) {
    grid_desc << point.label << ';';
  }
  std::ostringstream config_desc;
  config_desc << "workload=fib_recursive(" << kLivenessFib
              << ");queue_depth=" << kQueueDepth;
  titan::sim::SweepDocHeader header;
  header.bench = "fig1";
  header.total_points = grid_size;
  header.grid_hash = titan::sim::fingerprint_hex(grid_desc.str());
  header.config_fingerprint = titan::sim::fingerprint_hex(config_desc.str());

  const titan::sim::ShardPlanner planner(grid_size, cli.shard.count);
  const titan::sim::ShardRange owned = planner.range(cli.shard.index);

  const auto start = std::chrono::steady_clock::now();
  const auto results = runner.run<titan::cfi::SocRunResult>(
      owned.size(), [&owned](std::size_t local) {
        return run_point(kLivenessGrid[owned.begin + local]);
      });
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::cout << "\n  Liveness grid (fib(8) through the full stack; "
            << owned.size() << " of " << grid_size << " points, "
            << runner.threads() << " thread(s), " << std::fixed
            << std::setprecision(2) << seconds << "s):\n";
  std::cout << "    " << std::left << std::setw(28) << "config" << std::right
            << std::setw(8) << "logs" << std::setw(10) << "doorbells"
            << std::setw(9) << "cycles" << std::setw(6) << "viol" << "\n";
  std::uint64_t violations = 0;
  for (std::size_t index = owned.begin; index < owned.end; ++index) {
    const auto& result = results[index - owned.begin];
    std::cout << "    " << std::left << std::setw(28)
              << kLivenessGrid[index].label << std::right << std::setw(8)
              << result.cf_logs << std::setw(10) << result.doorbells
              << std::setw(9) << result.cycles << std::setw(6)
              << result.violations << "\n";
    violations += result.violations;
  }

  const auto emit_row = [&results, &owned](titan::sim::JsonWriter& json,
                                           std::size_t index) {
    const auto& result = results[index - owned.begin];
    json.begin_object()
        .field("config", kLivenessGrid[index].label)
        .field("cf_logs", result.cf_logs)
        .field("doorbells", result.doorbells)
        .field("cycles", static_cast<std::uint64_t>(result.cycles))
        .field("violations", result.violations)
        .end_object();
  };

  if (cli.shard_given) {
    if (!titan::sim::write_document(
            cli.shard_json_path,
            titan::sim::render_shard_document(header, cli.shard, emit_row))) {
      std::cerr << "cannot write " << cli.shard_json_path << "\n";
      return 1;
    }
  } else if (!cli.json_path.empty()) {
    // Canonical deterministic report: header + rows only, byte-identical to
    // what bench_merge reconstructs from K shard partials.
    if (!titan::sim::write_document(
            cli.json_path, titan::sim::render_full_document(header, emit_row))) {
      std::cerr << "cannot write " << cli.json_path << "\n";
      return 1;
    }
  }
  return violations == 0 ? 0 : 1;
}

// Regenerates paper Fig. 1 as a structural dump: the architecture of
// TitanCFI, emitted from the *live object graph* of a constructed SoC (not a
// hard-coded drawing) — region maps, queue geometry, firmware section
// layout, and the doorbell/completion wiring are all read back from the
// instantiated components.
#include <iomanip>
#include <iostream>

#include "firmware/builder.hpp"
#include "titancfi/soc_top.hpp"
#include "workloads/programs.hpp"

int main() {
  titan::cfi::SocConfig config;
  config.queue_depth = 8;
  titan::fw::FirmwareConfig fw_config;
  const auto firmware = titan::fw::build_firmware(fw_config);
  titan::cfi::SocTop soc(config, titan::workloads::fib_recursive(5), firmware);

  std::cout << "FIG. 1 — Architecture of TitanCFI (structural dump of the "
               "instantiated SoC)\n\n";

  std::cout
      << "  CVA6 (RV64IMC, in-order, dual commit ports)\n"
      << "    commit port 0 ──> CFI Filter0 ─┐\n"
      << "    commit port 1 ──> CFI Filter1 ─┤ (calls / returns / indirect "
         "jumps)\n"
      << "                                   v\n"
      << "    CFI Queue: depth " << soc.queue_controller().queue().depth()
      << ", " << titan::cfi::CommitLog::kBits
      << "-bit commit logs {pc, encoding, next, target}\n"
      << "    Queue Controller: stalls commit on full queue / dual-CF cycle\n"
      << "    CFI Log Writer FSM: pop -> " << titan::cfi::CommitLog::kBeats
      << " x 64-bit AXI beats -> doorbell -> wait -> verdict\n\n";

  std::cout << "  Host AXI crossbar '" << soc.axi().name()
            << "' (hop latency " << soc.axi().hop_latency() << " cycles):\n";
  for (const auto& mapping : soc.axi().mappings()) {
    std::cout << "    0x" << std::hex << std::setw(9) << std::setfill('0')
              << mapping.region.base << std::dec << std::setfill(' ')
              << "  +" << std::setw(8) << mapping.region.size << "  "
              << mapping.label << " (device latency "
              << mapping.device_latency << ")\n";
  }

  std::cout << "\n  CFI Mailbox: " << titan::soc::Mailbox::kDataRegs
            << " x 64-bit data regs, doorbell @+0x" << std::hex
            << titan::soc::Mailbox::kDoorbellOffset << ", completion @+0x"
            << titan::soc::Mailbox::kCompletionOffset << std::dec << "\n"
            << "    doorbell-cfi  ──> RoT PLIC (source "
            << titan::cfi::kCfiDoorbellIrq << ") ──> Ibex ext-irq\n"
            << "    completion-cfi ─> wired directly to the CFI Log Writer "
               "(not the host PLIC)\n";

  std::cout << "\n  OpenTitan RoT TL-UL fabric '" << soc.rot().fabric().name()
            << "' (hop latency " << soc.rot().fabric().hop_latency()
            << " cycles):\n";
  for (const auto& mapping : soc.rot().fabric().mappings()) {
    std::cout << "    0x" << std::hex << std::setw(9) << std::setfill('0')
              << mapping.region.base << std::dec << std::setfill(' ')
              << "  +" << std::setw(8) << mapping.region.size << "  "
              << mapping.label << " (device latency "
              << mapping.device_latency << ")\n";
  }

  std::cout << "\n  Ibex (RV32IMC) firmware image: base 0x" << std::hex
            << firmware.base << std::dec << ", " << firmware.bytes.size()
            << " bytes; sections:\n";
  for (const auto& [name, addr] : firmware.marks) {
    std::cout << "    0x" << std::hex << addr << std::dec << "  " << name
              << "\n";
  }

  // Prove the wiring is live, not cosmetic: run the SoC and show traffic.
  const auto result = soc.run();
  std::cout << "\n  Liveness check (fib(5) through the full stack): "
            << result.cf_logs << " commit logs checked, " << result.doorbells
            << " doorbells, " << result.violations
            << " violations, exit code " << result.exit_code << "\n";
  return result.violations == 0 ? 0 : 1;
}

// Regenerates paper Fig. 1 as a structural dump: the architecture of
// TitanCFI, emitted from the *live object graph* of a constructed SoC (not a
// hard-coded drawing) — region maps, queue geometry, firmware section
// layout, and the doorbell/completion wiring are all read back from the
// instantiated components.
//
// The liveness proof at the end runs the registry's "fig1_liveness" scenario
// grid (firmware variant x RoT fabric x drain burst) through the typed sweep
// surface — each point is an independent co-simulation:
//   bench_fig1 [--threads=N] [--json=PATH]
//   bench_fig1 --shard=i/K --shard_json=PATH [--threads=N]
//   bench_fig1 --write_checkpoints=PATH   # capture warm-up bundle, exit
//   bench_fig1 --warm_start=PATH          # fork every point from the bundle
// A --shard run co-simulates only the ShardPlanner-owned slice of the grid
// and writes a partial report; tools/bench_merge (or the one-command
// tools/bench_shard_driver) reconstructs the --json output byte-for-byte
// from all K partials.
#include <iomanip>
#include <iostream>

#include "api/api.hpp"
#include "api/enforce.hpp"

int main(int argc, char** argv) {
  const titan::sim::SweepCli cli = titan::sim::parse_sweep_cli(argc, argv);
  if (!cli.error.empty()) {
    std::cerr << "bench_fig1: " << cli.error << "\n";
    return 2;
  }

  // A representative scenario (grid point 0) instantiated for the
  // structural dump: everything printed below is read back from this object
  // graph, through the Scenario API's one construction path.
  titan::api::ScenarioSet grid =
      titan::api::ScenarioRegistry::global().query("fig1_liveness", "fig1");
  if (grid.empty()) {
    std::cerr << "bench_fig1: registry has no fig1_liveness scenarios\n";
    return 1;
  }
  // --engine=lockstep runs the grid under the per-cycle witness scheduler;
  // the report identity (and therefore every row and fingerprint) is
  // engine-independent, which is what lets CI diff a lock-step witness
  // against event-driven shard partials as an equivalence gate.
  if (cli.engine == "lockstep") {
    grid = grid.with_engine(titan::api::Engine::kLockStep);
  }
  // --write_checkpoints captures the grid's warm-up prefixes and exits;
  // --warm_start forks every point from a previously written bundle.  Either
  // way the report identity is unchanged (warm start is an execution
  // strategy), so warm shard partials merge into cold serial documents.
  const int checkpoint_rc =
      titan::api::handle_checkpoint_cli(grid, cli, "bench_fig1");
  if (checkpoint_rc >= 0) {
    return checkpoint_rc;
  }
  const auto soc = grid[0].make_soc();
  const titan::rv::Image firmware = grid[0].firmware_image();

  std::cout << "FIG. 1 — Architecture of TitanCFI (structural dump of the "
               "instantiated SoC)\n\n";

  std::cout
      << "  CVA6 (RV64IMC, in-order, dual commit ports)\n"
      << "    commit port 0 ──> CFI Filter0 ─┐\n"
      << "    commit port 1 ──> CFI Filter1 ─┤ (calls / returns / indirect "
         "jumps)\n"
      << "                                   v\n"
      << "    CFI Queue: depth " << soc->queue_controller().queue().depth()
      << ", " << titan::cfi::CommitLog::kBits
      << "-bit commit logs {pc, encoding, next, target}\n"
      << "    Queue Controller: stalls commit on full queue / dual-CF cycle\n"
      << "    CFI Log Writer FSM: pop -> " << titan::cfi::CommitLog::kBeats
      << " x 64-bit AXI beats -> doorbell -> wait -> verdict\n\n";

  std::cout << "  Host AXI crossbar '" << soc->axi().name()
            << "' (hop latency " << soc->axi().hop_latency() << " cycles):\n";
  for (const auto& mapping : soc->axi().mappings()) {
    std::cout << "    0x" << std::hex << std::setw(9) << std::setfill('0')
              << mapping.region.base << std::dec << std::setfill(' ')
              << "  +" << std::setw(8) << mapping.region.size << "  "
              << mapping.label << " (device latency "
              << mapping.device_latency << ")\n";
  }

  std::cout << "\n  CFI Mailbox: " << titan::soc::Mailbox::kDataRegs
            << " x 64-bit data regs, doorbell @+0x" << std::hex
            << titan::soc::Mailbox::kDoorbellOffset << ", completion @+0x"
            << titan::soc::Mailbox::kCompletionOffset << std::dec << "\n"
            << "    doorbell-cfi  ──> RoT PLIC (source "
            << titan::cfi::kCfiDoorbellIrq << ") ──> Ibex ext-irq\n"
            << "    completion-cfi ─> wired directly to the CFI Log Writer "
               "(not the host PLIC)\n";

  std::cout << "\n  OpenTitan RoT TL-UL fabric '" << soc->rot().fabric().name()
            << "' (hop latency " << soc->rot().fabric().hop_latency()
            << " cycles):\n";
  for (const auto& mapping : soc->rot().fabric().mappings()) {
    std::cout << "    0x" << std::hex << std::setw(9) << std::setfill('0')
              << mapping.region.base << std::dec << std::setfill(' ')
              << "  +" << std::setw(8) << mapping.region.size << "  "
              << mapping.label << " (device latency "
              << mapping.device_latency << ")\n";
  }

  std::cout << "\n  Ibex (RV32IMC) firmware image: base 0x" << std::hex
            << firmware.base << std::dec << ", " << firmware.bytes.size()
            << " bytes; sections:\n";
  for (const auto& [name, addr] : firmware.marks) {
    std::cout << "    0x" << std::hex << addr << std::dec << "  " << name
              << "\n";
  }

  // Prove the wiring is live, not cosmetic: run the full scenario grid and
  // show traffic.  The typed sweep surface shards the points across threads
  // (and, with --shard, across processes) with index-ordered aggregation.
  const titan::api::SweepPlan<titan::api::RunReport> plan =
      titan::api::scenario_sweep_plan(grid);
  titan::api::SweepOutcome<titan::api::RunReport> outcome;
  const int exit_code = titan::api::run_sweep(plan, cli, &outcome);
  if (exit_code != 0) {
    return exit_code;
  }

  std::cout << "\n  Liveness grid (fib(8) through the full stack; "
            << outcome.owned.size() << " of " << grid.size() << " points, "
            << outcome.threads << " thread(s), " << std::fixed
            << std::setprecision(2) << outcome.seconds << "s):\n";
  std::cout << "    " << std::left << std::setw(28) << "scenario" << std::right
            << std::setw(8) << "logs" << std::setw(10) << "doorbells"
            << std::setw(9) << "cycles" << std::setw(6) << "viol" << "\n";
  std::uint64_t violations = 0;
  for (std::size_t index = outcome.owned.begin; index < outcome.owned.end;
       ++index) {
    const titan::api::RunReport& report = outcome.at_global(index);
    std::cout << "    " << std::left << std::setw(28) << report.scenario
              << std::right << std::setw(8) << report.cf_logs << std::setw(10)
              << report.doorbells << std::setw(9) << report.cycles
              << std::setw(6) << report.violations << "\n";
    violations += report.violations;
  }
  return violations == 0 ? 0 : 1;
}

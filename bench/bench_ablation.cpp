// Ablation studies on TitanCFI's design parameters (DESIGN.md Sec. 4):
//   1. CFI Queue depth sweep — trace model and full co-simulation;
//   2. check-latency sweep — where does the polling-vs-IRQ gap matter;
//   3. dual-CF-commit stall rate — is the single queue write port really
//      "a rare event" (paper Sec. IV-B2)?
//   4. shadow-stack geometry — spill traffic vs on-chip capacity.
//
// The co-simulated sections (A3/A4) run the registry's "ablation_depth" and
// "ablation_ss" scenario grids through the Scenario API.
#include <iomanip>
#include <iostream>

#include "api/api.hpp"
#include "firmware/shadow_stack.hpp"
#include "firmware/zipper_stack.hpp"
#include "api/enforce.hpp"

namespace {

void queue_depth_sweep() {
  std::cout << "A1. Queue-depth sweep (trace model, slowdown %):\n";
  std::cout << "    benchmark        depth:      1       2       4       8"
               "      16      64\n";
  for (const char* name : {"ud", "cubic", "wikisort", "dhrystone", "mm"}) {
    const auto* stats = titan::workloads::find_benchmark(name);
    const auto params = titan::workloads::calibrate(*stats);
    const auto cf = titan::workloads::synthesize_cf_cycles(*stats, params);
    std::cout << "    " << std::left << std::setw(24) << name << std::right;
    for (const std::size_t depth : {1u, 2u, 4u, 8u, 16u, 64u}) {
      titan::cfi::OverheadConfig config;
      config.queue_depth = depth;
      config.check_latency = titan::workloads::kIrqLatency;
      config.transport_cycles = 0;
      const double slowdown =
          titan::cfi::simulate_cf_cycles(
              cf, static_cast<titan::sim::Cycle>(stats->cycles), config)
              .slowdown_percent();
      std::cout << std::setw(8) << std::fixed << std::setprecision(0)
                << slowdown;
    }
    std::cout << "\n";
  }
}

void latency_sweep() {
  std::cout << "\nA2. Check-latency sweep (queue depth 8, slowdown %):\n";
  std::cout << "    latency:";
  for (const std::uint32_t latency : {20u, 73u, 112u, 180u, 267u, 400u}) {
    std::cout << std::setw(8) << latency;
  }
  std::cout << "\n";
  for (const char* name : {"picojpeg", "sglib-combined", "nbody"}) {
    const auto* stats = titan::workloads::find_benchmark(name);
    const auto params = titan::workloads::calibrate(*stats);
    const auto cf = titan::workloads::synthesize_cf_cycles(*stats, params);
    std::cout << "    " << std::left << std::setw(8) << name << std::right;
    for (const std::uint32_t latency : {20u, 73u, 112u, 180u, 267u, 400u}) {
      titan::cfi::OverheadConfig config;
      config.queue_depth = 8;
      config.check_latency = latency;
      config.transport_cycles = 0;
      std::cout << std::setw(8) << std::fixed << std::setprecision(0)
                << titan::cfi::simulate_cf_cycles(
                       cf, static_cast<titan::sim::Cycle>(stats->cycles), config)
                       .slowdown_percent();
    }
    std::cout << "\n";
  }
}

void cosim_cross_check() {
  std::cout << "\nA3. Co-simulation cross-check (fib(9), polling firmware):\n";
  std::cout << "    depth   cycles   full-stalls   dual-CF-stalls   mean-occ\n";
  const titan::api::ScenarioSet grid =
      titan::api::ScenarioRegistry::global().query("ablation_depth",
                                                   "ablation_depth");
  for (const titan::api::Scenario& scenario : grid) {
    const titan::api::RunReport report = titan::api::run_scenario(scenario);
    std::cout << "    " << std::setw(5) << scenario.soc_config().queue_depth
              << std::setw(9) << report.cycles << std::setw(12)
              << report.queue_full_stalls << std::setw(15)
              << report.dual_cf_stalls << std::setw(12) << std::fixed
              << std::setprecision(2) << report.mean_queue_occupancy << "\n";
  }
  std::cout << "    (dual-CF stalls are orders of magnitude rarer than "
               "queue-full stalls — the paper's single-write-port choice is "
               "justified)\n";
}

void shadow_stack_geometry() {
  std::cout << "\nA4. Shadow-stack geometry (call_chain(120), IRQ firmware):\n";
  std::cout << "    capacity  spill-block   hmac-ops   cycles\n";
  const titan::api::ScenarioSet grid =
      titan::api::ScenarioRegistry::global().query("ablation_ss",
                                                   "ablation_ss");
  for (const titan::api::Scenario& scenario : grid) {
    const titan::api::RunReport report = titan::api::run_scenario(scenario);
    std::cout << "    " << std::setw(8)
              << scenario.firmware_config().ss_capacity << std::setw(13)
              << scenario.firmware_config().spill_block << std::setw(11)
              << report.rot_hmac_starts << std::setw(9) << report.cycles
              << (report.violations ? "  VIOLATION?!" : "") << "\n";
  }
  std::cout << "    (larger on-chip capacity trades RoT SRAM for fewer "
               "authenticated spills — paper Sec. VI)\n";
}

void metadata_authentication_schemes() {
  std::cout << "\nA5. Metadata-authentication schemes (golden models, "
               "fib-like call pattern, depth 120):\n";
  std::cout << "    scheme                      MAC-ops   MAC-cycles   "
               "RoT-resident bytes\n";
  // Block-spill shadow stack (the paper's scheme) across geometries.
  for (const auto& [capacity, block] :
       {std::pair{16u, 8u}, {32u, 16u}, {64u, 32u}}) {
    titan::sim::Memory memory;
    titan::fw::ShadowStackConfig config;
    config.capacity = capacity;
    config.spill_block = block;
    titan::fw::ShadowStack stack(config, memory, {'k'});
    for (std::uint64_t i = 0; i < 120; ++i) stack.push(0x8000'0000 + i * 4);
    for (std::uint64_t i = 120; i-- > 0;) {
      (void)stack.pop_and_check(0x8000'0000 + i * 4);
    }
    std::cout << "    block-spill cap=" << std::setw(3) << capacity
              << " blk=" << std::setw(2) << block << std::setw(11)
              << stack.accel().invocations() << std::setw(13)
              << stack.accel().total_cycles() << std::setw(14)
              << capacity * 8 << "\n";
  }
  // Zipper stack: O(1) RoT state, one MAC per call AND per return.
  {
    titan::sim::Memory memory;
    titan::fw::ZipperStack zipper(memory, {'k'});
    for (std::uint64_t i = 0; i < 120; ++i) zipper.push(0x8000'0000 + i * 4);
    for (std::uint64_t i = 120; i-- > 0;) {
      (void)zipper.pop_and_check(0x8000'0000 + i * 4);
    }
    std::cout << "    zipper-stack [15]          " << std::setw(8)
              << zipper.mac_operations() << std::setw(13)
              << zipper.mac_cycles() << std::setw(14) << 32 << "\n";
  }
  std::cout << "    (TitanCFI's block spill amortises MACs over whole "
               "segments and needs none in steady state; Zipper Stack pays "
               "one per CF op but keeps only a 32-byte tag in the RoT — "
               "paper Sec. VI)\n";
}

}  // namespace

int main() {
  std::cout << "TitanCFI ablation studies\n\n";
  queue_depth_sweep();
  latency_sweep();
  cosim_cross_check();
  shadow_stack_geometry();
  metadata_authentication_schemes();
  return 0;
}

// Micro-benchmarks (google-benchmark) for the infrastructure libraries:
// decoder, RVC expansion, assembler, FIFO, SHA-256/HMAC, memory system,
// Ibex/CVA6 ISS throughput, and the trace-driven overhead model.
//
// Besides the google-benchmark suite, this binary emits a machine-readable
// before/after report (BENCH_PR1.json) comparing the PR-1 fast paths against
// the seed code paths, which both survive in-tree behind runtime switches:
//   * sim::Memory::set_fast_path_enabled(false) — one hash probe per byte;
//   * {Cva6Core,IbexCore}::set_decode_cache_enabled(false) — rv::decode on
//     every fetch;
//   * crypto::HmacKey vs. per-call key scheduling — 4 vs 2 compressions.
//
//   bench_micro                  # full google-benchmark suite + JSON reports
//   bench_micro --pr1_only       # PR-1 report only (CI smoke)
//   bench_micro --pr1_json=PATH  # PR-1 report destination (BENCH_PR1.json)
//
// PR-2 report (BENCH_PR2.json): the full Table III sweep run serially and
// through the thread-pooled sweep surface (wall-clock + bitwise determinism
// check), plus the batched commit-log drain before/after on the registry's
// "drain_study" scenarios, and the Table I per-op costs in one-at-a-time
// mode as the reproduction-unchanged witness:
//   bench_micro --pr2_only       # PR-2 report only
//   bench_micro --pr2_json=PATH  # PR-2 report destination (BENCH_PR2.json)
//   bench_micro --threads=N      # sweep worker threads (default: hardware)
//
// PR-5 report (BENCH_PR5.json): end-to-end co-simulation wall-clock of the
// lock-step scheduler vs the event-driven engine (bit-exactness asserted on
// every run), plus the drain_hysteresis registry grid's doorbell/latency
// trade-off:
//   bench_micro --pr5_only       # PR-5 report only
//   bench_micro --pr5_json=PATH  # PR-5 report destination (BENCH_PR5.json)
//
// PR-7 report (BENCH_PR7.json): cold vs warm-start sweep wall-clock over the
// fig1_liveness and fault_matrix registry grids — each point forked from a
// midpoint copy-on-write checkpoint, bit-exactness asserted before any
// timing claim, capture cost and break-even reuse count reported:
//   bench_micro --pr7_only       # PR-7 report only
//   bench_micro --pr7_json=PATH  # PR-7 report destination (BENCH_PR7.json)
//
// Process-level sharding of the typed api::OverheadGrid::micro_sweep() grid:
//   bench_micro --sweep_json=PATH            # canonical deterministic report
//   bench_micro --shard=i/K --shard_json=PATH  # partial report for shard i
// Merging all K partials with tools/bench_merge (or in one command with
// tools/bench_shard_driver) reconstructs the --sweep_json document
// byte-for-byte.  Either flag runs only the sweep grid (no google-benchmark
// suite, no PR reports).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "cva6/core.hpp"
#include "firmware/table1.hpp"
#include "ibex/core.hpp"
#include "rv/assembler.hpp"
#include "rv/decode.hpp"
#include "sim/decode_cache.hpp"
#include "sim/fifo.hpp"
#include "sim/memory.hpp"
#include "sim/rng.hpp"
#include "soc/bus.hpp"
#include "workloads/programs.hpp"
#include "api/enforce.hpp"

namespace {

void BM_Decode32(benchmark::State& state) {
  titan::sim::Rng rng(1);
  std::vector<std::uint32_t> words(4096);
  for (auto& word : words) {
    word = static_cast<std::uint32_t>(rng.next()) | 3;  // uncompressed
  }
  std::size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        titan::rv::decode(words[index++ & 4095], titan::rv::Xlen::k64));
  }
}
BENCHMARK(BM_Decode32);

void BM_DecodeCached(benchmark::State& state) {
  titan::sim::Rng rng(1);
  std::vector<std::uint32_t> words(4096);
  for (auto& word : words) {
    word = static_cast<std::uint32_t>(rng.next()) | 3;
  }
  titan::sim::DecodeCache cache(titan::rv::Xlen::k64);
  std::size_t index = 0;
  for (auto _ : state) {
    const std::size_t i = index++ & 4095;
    benchmark::DoNotOptimize(cache.decode(i * 4, words[i]));
  }
  state.counters["hit_rate"] =
      static_cast<double>(cache.hits()) /
      static_cast<double>(cache.hits() + cache.misses());
}
BENCHMARK(BM_DecodeCached);

void BM_ExpandRvc(benchmark::State& state) {
  std::uint16_t half = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(titan::rv::expand_rvc(half, titan::rv::Xlen::k64));
    half = static_cast<std::uint16_t>(half + 2);  // skip quadrant 3
    if ((half & 3) == 3) half += 2;
  }
}
BENCHMARK(BM_ExpandRvc);

void BM_AssembleFirmware(benchmark::State& state) {
  const titan::api::Scenario scenario = titan::api::ScenarioBuilder()
                                            .name("bm_firmware")
                                            .workload(titan::api::Workload::fib(1))
                                            .build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenario.firmware_image());
  }
}
BENCHMARK(BM_AssembleFirmware);

void BM_FifoPushPop(benchmark::State& state) {
  titan::sim::Fifo<std::uint64_t> fifo(static_cast<std::size_t>(state.range(0)));
  std::uint64_t value = 0;
  for (auto _ : state) {
    if (!fifo.push(value++)) {
      benchmark::DoNotOptimize(fifo.pop());
    }
  }
}
BENCHMARK(BM_FifoPushPop)->Arg(1)->Arg(8)->Arg(64);

// Mixed-width read/write traffic over a working set of a few pages; the
// `fast` arg toggles the single-probe page-cache path vs. the seed
// byte-by-byte hash lookups.
void BM_MemoryMixed(benchmark::State& state) {
  titan::sim::Memory memory;
  memory.set_fast_path_enabled(state.range(0) != 0);
  for (titan::sim::Addr a = 0; a < 8 * titan::sim::Memory::kPageSize; a += 8) {
    memory.write64(a, a);
  }
  titan::sim::Addr addr = 0;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    addr = (addr + 40) & (8 * titan::sim::Memory::kPageSize - 8);
    memory.write64(addr, acc);
    acc += memory.read64(addr);
    acc += memory.read16(addr + 2);
    benchmark::DoNotOptimize(acc);
  }
  state.counters["ops/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 3, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MemoryMixed)->Arg(0)->Arg(1)->ArgNames({"fast"});

void BM_MemoryFetch32(benchmark::State& state) {
  titan::sim::Memory memory;
  for (titan::sim::Addr a = 0; a < titan::sim::Memory::kPageSize; a += 4) {
    memory.write32(a, static_cast<std::uint32_t>(a) | 3);
  }
  titan::sim::Addr pc = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(memory.fetch32(pc));
    pc = (pc + 4) & (titan::sim::Memory::kPageSize - 4);
  }
}
BENCHMARK(BM_MemoryFetch32);

void BM_MemoryBlock(benchmark::State& state) {
  titan::sim::Memory memory;
  std::vector<std::uint8_t> buffer(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    buffer[i] = static_cast<std::uint8_t>(i);
  }
  for (auto _ : state) {
    memory.write_block(0x1000, buffer);
    memory.read_block(0x1000, buffer);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_MemoryBlock)->Arg(4096)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(titan::crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096);

void BM_HmacSha256(benchmark::State& state) {
  const std::vector<std::uint8_t> key(32, 0x11);
  std::vector<std::uint8_t> data(256, 0xCD);
  for (auto _ : state) {
    benchmark::DoNotOptimize(titan::crypto::hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_HmacPreparedKey(benchmark::State& state) {
  const std::vector<std::uint8_t> key(32, 0x11);
  const titan::crypto::HmacKey prepared(key);
  std::vector<std::uint8_t> data(256, 0xCD);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prepared.mac(data));
  }
}
BENCHMARK(BM_HmacPreparedKey);

void BM_Cva6IssFib(benchmark::State& state) {
  const auto image = titan::workloads::fib_recursive(12);
  for (auto _ : state) {
    titan::sim::Memory memory;
    memory.load(image.base, image.bytes);
    memory.set_fast_path_enabled(state.range(0) != 0);
    titan::cva6::Cva6Config config;
    config.reset_pc = image.base;
    titan::cva6::Cva6Core core(config, memory);
    core.set_decode_cache_enabled(state.range(0) != 0);
    core.set_trace_enabled(false);
    benchmark::DoNotOptimize(core.run_baseline());
    state.counters["insts/s"] = benchmark::Counter(
        static_cast<double>(core.instret()), benchmark::Counter::kIsRate);
    state.counters["decodes_avoided"] =
        static_cast<double>(core.decode_cache().decodes_avoided());
  }
}
BENCHMARK(BM_Cva6IssFib)->Arg(0)->Arg(1)->ArgNames({"fast"});

void BM_OverheadModel(benchmark::State& state) {
  const auto* stats = titan::workloads::find_benchmark("mm");
  const auto cf = titan::workloads::synthesize_cf_cycles(
      *stats, titan::workloads::TraceParams{});
  titan::cfi::OverheadConfig config;
  config.queue_depth = 8;
  config.check_latency = 267;
  for (auto _ : state) {
    benchmark::DoNotOptimize(titan::cfi::simulate_cf_cycles(
        cf, static_cast<titan::sim::Cycle>(stats->cycles), config));
  }
  state.counters["cf/s"] = benchmark::Counter(
      static_cast<double>(cf.size()) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OverheadModel);

void BM_TraceCalibration(benchmark::State& state) {
  const auto* stats = titan::workloads::find_benchmark("wikisort");
  for (auto _ : state) {
    benchmark::DoNotOptimize(titan::workloads::calibrate(*stats));
  }
}
BENCHMARK(BM_TraceCalibration);

// ---- PR-1 before/after report ------------------------------------------------

using Clock = std::chrono::steady_clock;

/// Run `body` (which returns a work-unit count) repeatedly for ~budget
/// seconds after one warmup call; return work units per second.
template <typename Body>
double measure_rate(double budget_seconds, Body&& body) {
  (void)body();  // Warmup (page caches, branch predictors, allocators).
  std::uint64_t work = 0;
  const auto start = Clock::now();
  Clock::duration elapsed{};
  do {
    work += body();
    elapsed = Clock::now() - start;
  } while (std::chrono::duration<double>(elapsed).count() < budget_seconds);
  return static_cast<double>(work) /
         std::chrono::duration<double>(elapsed).count();
}

struct Pr1Report {
  double mem_ops_seed = 0, mem_ops_fast = 0;
  double cva6_insts_seed = 0, cva6_insts_fast = 0;
  double ibex_insts_seed = 0, ibex_insts_fast = 0;
  double hmac_macs_seed = 0, hmac_macs_fast = 0;
  std::uint64_t decodes_avoided = 0;
  double decode_hit_rate = 0;
};

double bench_memory(bool fast) {
  titan::sim::Memory memory;
  memory.set_fast_path_enabled(fast);
  for (titan::sim::Addr a = 0; a < 8 * titan::sim::Memory::kPageSize; a += 8) {
    memory.write64(a, a);
  }
  return measure_rate(0.25, [&] {
    std::uint64_t acc = 0;
    titan::sim::Addr addr = 0;
    constexpr int kOpsPerCall = 3;
    constexpr int kIters = 4096;
    for (int i = 0; i < kIters; ++i) {
      addr = (addr + 40) & (8 * titan::sim::Memory::kPageSize - 8);
      memory.write64(addr, acc);
      acc += memory.read64(addr);
      acc += memory.read16(addr + 2);
    }
    benchmark::DoNotOptimize(acc);
    return static_cast<std::uint64_t>(kIters * kOpsPerCall);
  });
}

/// End-to-end CVA6 instruction throughput over the host workload programs
/// the paper's tables sweep (call-dense, memory-dense, and ALU-dense mixes).
double bench_cva6(bool fast, Pr1Report* report) {
  const titan::rv::Image images[] = {
      titan::workloads::fib_recursive(15), titan::workloads::matmul(12),
      titan::workloads::crc32(512), titan::workloads::quicksort(128),
      titan::workloads::indirect_dispatch(100)};
  return measure_rate(0.4, [&] {
    std::uint64_t insts = 0;
    for (const auto& image : images) {
      titan::sim::Memory memory;
      memory.load(image.base, image.bytes);
      memory.set_fast_path_enabled(fast);
      titan::cva6::Cva6Config config;
      config.reset_pc = image.base;
      titan::cva6::Cva6Core core(config, memory);
      core.set_decode_cache_enabled(fast);
      core.set_trace_enabled(false);
      core.run_baseline();
      insts += core.instret();
      if (fast && report != nullptr) {
        report->decodes_avoided += core.decode_cache().decodes_avoided();
        const double lookups = static_cast<double>(
            core.decode_cache().hits() + core.decode_cache().misses());
        if (lookups > 0) {
          report->decode_hit_rate =
              static_cast<double>(core.decode_cache().hits()) / lookups;
        }
      }
    }
    return insts;
  });
}

/// RV32 compute kernel on the Ibex model behind a crossbar (the RoT-side
/// half of every co-simulation).
double bench_ibex(bool fast) {
  using titan::rv::Reg;
  titan::rv::Assembler a(titan::rv::Xlen::k32, 0);
  const auto loop = a.new_label();
  a.li(Reg::kA0, 0);
  a.li(Reg::kT0, 20000);  // iterations
  a.li(Reg::kT1, 0x4000); // buffer base
  a.bind(loop);
  a.sw(Reg::kA0, Reg::kT1, 0);
  a.lw(Reg::kT2, Reg::kT1, 0);
  a.add(Reg::kA0, Reg::kA0, Reg::kT2);
  a.andi(Reg::kT2, Reg::kA0, 0xFC);
  a.add(Reg::kT1, Reg::kT1, Reg::kT2);
  a.li(Reg::kT1, 0x4000);
  a.addi(Reg::kT0, Reg::kT0, -1);
  a.bnez(Reg::kT0, loop);
  a.ecall();
  const titan::rv::Image image = a.finish();

  return measure_rate(0.25, [&] {
    titan::sim::Memory memory;
    memory.load(image.base, image.bytes);
    memory.set_fast_path_enabled(fast);
    titan::soc::MemoryTarget target(memory);
    titan::soc::Crossbar bus("bench", 0);
    bus.map(titan::soc::Region{0, 0x1'0000}, target, 0, "ram");
    titan::ibex::IbexConfig config;
    config.reset_sp = 0x8000;
    titan::ibex::IbexCore core(config, bus);
    core.set_decode_cache_enabled(fast);
    while (!core.halted()) {
      core.step();
    }
    return core.instret();
  });
}

double bench_hmac(bool prepared) {
  std::vector<std::uint8_t> key(32);
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  // One TitanCFI commit log entry is small; 64 bytes models a log + header.
  const std::vector<std::uint8_t> message(64, 0xC3);
  const titan::crypto::HmacKey prepared_key(key);
  return measure_rate(0.2, [&] {
    constexpr int kIters = 512;
    for (int i = 0; i < kIters; ++i) {
      if (prepared) {
        benchmark::DoNotOptimize(prepared_key.mac(message));
      } else {
        // Seed path: full key schedule (ipad+opad compressions) per MAC.
        benchmark::DoNotOptimize(titan::crypto::hmac_sha256(key, message));
      }
    }
    return static_cast<std::uint64_t>(kIters);
  });
}

bool write_pr1_json(const Pr1Report& r, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "[pr1] error: cannot open '" << path << "' for writing\n";
    return false;
  }
  const auto ratio = [](double fast, double seed) {
    return seed > 0 ? fast / seed : 0.0;
  };
  os << "{\n"
     << "  \"pr\": 1,\n"
     << "  \"description\": \"fast-path memory system + decode cache + HMAC midstates\",\n"
     << "  \"memory\": {\n"
     << "    \"ops_per_s_seed\": " << r.mem_ops_seed << ",\n"
     << "    \"ops_per_s_fast\": " << r.mem_ops_fast << ",\n"
     << "    \"speedup\": " << ratio(r.mem_ops_fast, r.mem_ops_seed) << "\n"
     << "  },\n"
     << "  \"cva6_e2e\": {\n"
     << "    \"workloads\": [\"fib\", \"matmul\", \"crc32\", \"quicksort\", \"indirect_dispatch\"],\n"
     << "    \"insts_per_s_seed\": " << r.cva6_insts_seed << ",\n"
     << "    \"insts_per_s_fast\": " << r.cva6_insts_fast << ",\n"
     << "    \"speedup\": " << ratio(r.cva6_insts_fast, r.cva6_insts_seed) << ",\n"
     << "    \"decodes_avoided\": " << r.decodes_avoided << ",\n"
     << "    \"decode_cache_hit_rate\": " << r.decode_hit_rate << "\n"
     << "  },\n"
     << "  \"ibex_e2e\": {\n"
     << "    \"insts_per_s_seed\": " << r.ibex_insts_seed << ",\n"
     << "    \"insts_per_s_fast\": " << r.ibex_insts_fast << ",\n"
     << "    \"speedup\": " << ratio(r.ibex_insts_fast, r.ibex_insts_seed) << "\n"
     << "  },\n"
     << "  \"hmac\": {\n"
     << "    \"macs_per_s_seed\": " << r.hmac_macs_seed << ",\n"
     << "    \"macs_per_s_fast\": " << r.hmac_macs_fast << ",\n"
     << "    \"speedup\": " << ratio(r.hmac_macs_fast, r.hmac_macs_seed) << "\n"
     << "  }\n"
     << "}\n";
  return os.good();
}

bool run_pr1_report(const std::string& path) {
  Pr1Report report;
  std::cerr << "[pr1] measuring memory system (seed vs fast)...\n";
  report.mem_ops_seed = bench_memory(false);
  report.mem_ops_fast = bench_memory(true);
  std::cerr << "[pr1] measuring CVA6 end-to-end (seed vs fast)...\n";
  report.cva6_insts_seed = bench_cva6(false, nullptr);
  report.cva6_insts_fast = bench_cva6(true, &report);
  std::cerr << "[pr1] measuring Ibex end-to-end (seed vs fast)...\n";
  report.ibex_insts_seed = bench_ibex(false);
  report.ibex_insts_fast = bench_ibex(true);
  std::cerr << "[pr1] measuring HMAC (per-call key schedule vs midstates)...\n";
  report.hmac_macs_seed = bench_hmac(false);
  report.hmac_macs_fast = bench_hmac(true);
  if (!write_pr1_json(report, path)) {
    return false;
  }
  std::cerr << "[pr1] memory speedup:  " << report.mem_ops_fast / report.mem_ops_seed
            << "x\n[pr1] cva6 speedup:    "
            << report.cva6_insts_fast / report.cva6_insts_seed
            << "x\n[pr1] ibex speedup:    "
            << report.ibex_insts_fast / report.ibex_insts_seed
            << "x\n[pr1] hmac speedup:    "
            << report.hmac_macs_fast / report.hmac_macs_seed
            << "x\n[pr1] wrote " << path << "\n";
  return true;
}

// ---- PR-2 report: sweep engine + batched drain ------------------------------

/// One Table III point: calibrate the trace generator and replay the three
/// firmware latencies.  This is the unit of work the sweep engine shards.
struct SweepRow {
  double opt = 0, poll = 0, irq = 0;

  bool operator==(const SweepRow&) const = default;
};

SweepRow table_sweep_point(const titan::api::OverheadGrid& grid,
                           std::size_t index) {
  const auto params = titan::workloads::calibrate(grid.row(index));
  SweepRow row;
  row.opt = grid.slowdown(index, params, titan::workloads::kOptimizedLatency);
  row.poll = grid.slowdown(index, params, titan::workloads::kPollingLatency);
  row.irq = grid.slowdown(index, params, titan::workloads::kIrqLatency);
  return row;
}

std::vector<SweepRow> run_table_sweep(const titan::api::OverheadGrid& grid,
                                      unsigned threads, double* seconds) {
  titan::sim::SweepOptions options;
  options.threads = threads;
  titan::sim::SweepRunner runner(options);
  const auto start = Clock::now();
  auto rows = runner.run<SweepRow>(grid.size(), [&grid](std::size_t index) {
    return table_sweep_point(grid, index);
  });
  *seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return rows;
}

// ---- Sharded sweep-grid mode (bench "micro_sweep") --------------------------

int run_sweep_grid_mode(const titan::sim::SweepCli& cli) {
  const titan::api::OverheadGrid grid = titan::api::OverheadGrid::micro_sweep();
  titan::api::SweepPlan<SweepRow> plan;
  plan.header = grid.header();
  plan.point = [&grid](std::size_t index) {
    return table_sweep_point(grid, index);
  };
  plan.emit = [&grid](titan::sim::JsonWriter& json, const SweepRow& row,
                      std::size_t index) {
    json.begin_object()
        .field("name", grid.row(index).name)
        .field("opt", row.opt)
        .field("poll", row.poll)
        .field("irq", row.irq)
        .end_object();
  };
  titan::api::SweepOutcome<SweepRow> outcome;
  const int exit_code = titan::api::run_sweep(plan, cli, &outcome);
  if (exit_code != 0) {
    return exit_code;
  }
  std::cerr << "[micro_sweep] shard " << cli.shard.index << "/"
            << cli.shard.count << ": rows [" << outcome.owned.begin << ","
            << outcome.owned.end << ") of " << grid.size() << " -> "
            << (cli.shard_given ? cli.shard_json_path : cli.json_path) << "\n";
  return 0;
}

struct DrainPoint {
  titan::api::RunReport report;
  std::vector<titan::cfi::CommitLog> stream;
};

DrainPoint run_drain(const titan::api::Scenario& scenario) {
  DrainPoint point;
  titan::api::RunHooks hooks;
  hooks.log_capture = [&point](const titan::cfi::CommitLog& log) {
    point.stream.push_back(log);
  };
  point.report = titan::api::run_scenario(scenario, hooks);
  return point;
}

void emit_drain_point(titan::sim::JsonWriter& json, std::string_view key,
                      const DrainPoint& point) {
  const titan::api::RunReport& r = point.report;
  json.begin_object(key)
      .field("cf_logs", r.cf_logs)
      .field("doorbells", r.doorbells)
      .field("batches", r.batches)
      .field("max_batch", r.max_batch)
      .field("cycles", r.cycles)
      .field("doorbells_per_log", r.doorbells_per_log())
      .end_object();
}

bool run_pr2_report(const std::string& path, unsigned threads) {
  if (threads == 0) {
    threads = titan::sim::SweepRunner::hardware_threads();
  }
  // On a 1-hardware-thread host the parallel sweep cannot beat the serial
  // one; the report records hw_concurrency and withholds the speedup claim
  // so a run on a small container stays honest (CI's multi-core runners
  // show the real gain).
  const unsigned hw_concurrency = titan::sim::SweepRunner::hardware_threads();
  const bool speedup_meaningful = hw_concurrency > 1;
  const titan::api::OverheadGrid grid = titan::api::OverheadGrid::micro_sweep();
  std::cerr << "[pr2] table sweep, serial reference...\n";
  double serial_seconds = 0;
  const auto serial = run_table_sweep(grid, 1, &serial_seconds);
  std::cerr << "[pr2] table sweep, " << threads << " thread(s)...\n";
  double parallel_seconds = 0;
  const auto parallel = run_table_sweep(grid, threads, &parallel_seconds);
  const bool deterministic = serial == parallel;

  std::cerr << "[pr2] batched drain before/after (drain_study scenarios)...\n";
  const auto& registry = titan::api::ScenarioRegistry::global();
  const auto find_drain = [&registry](const char* name) {
    const titan::api::Scenario* scenario = registry.find(name);
    if (scenario == nullptr) {
      std::cerr << "[pr2] error: registry has no '" << name << "' scenario\n";
      std::exit(1);
    }
    return scenario;
  };
  const DrainPoint burst1 = run_drain(*find_drain("drain/burst1"));
  const DrainPoint burst8 = run_drain(*find_drain("drain/burst8"));
  const DrainPoint burst8_mac =
      run_drain(*find_drain("drain/burst8_mac"));
  const bool stream_identical =
      burst1.stream == burst8.stream && burst1.stream == burst8_mac.stream;

  std::cerr << "[pr2] Table I per-op costs (one-at-a-time mode witness)...\n";
  using titan::fw::OpCase;
  using titan::fw::RotVariant;
  const auto op_cycles = [](RotVariant variant, OpCase op) {
    return static_cast<std::uint64_t>(
        titan::fw::measure_policy_cost(variant, op).total().cycles);
  };

  titan::sim::JsonWriter json;
  json.begin_object()
      .field("pr", 2)
      .field("description",
             std::string_view{
                 "batched commit-log drain + thread-pooled sweep engine"})
      .field("hw_concurrency", hw_concurrency);
  json.begin_object("sweep")
      .field("points", static_cast<std::uint64_t>(grid.size()))
      .field("threads", threads)
      .field("serial_seconds", serial_seconds)
      .field("parallel_seconds", parallel_seconds)
      .field("speedup", parallel_seconds > 0
                            ? serial_seconds / parallel_seconds
                            : 0.0)
      .field("speedup_meaningful", speedup_meaningful)
      .field("deterministic", deterministic)
      .end_object();
  json.begin_object("batched_drain")
      .field("workload", std::string_view{"fib_recursive(10)"});
  emit_drain_point(json, "burst1", burst1);
  emit_drain_point(json, "burst8", burst8);
  emit_drain_point(json, "burst8_mac", burst8_mac);
  const double reduction =
      static_cast<double>(burst1.report.doorbells) /
      static_cast<double>(burst8.report.doorbells);
  json.field("doorbell_reduction_burst8", reduction)
      .field("stream_identical", stream_identical)
      .end_object();
  json.begin_object("table1_cycles_single_mode")
      .field("irq_call", op_cycles(RotVariant::kIrq, OpCase::kCall))
      .field("irq_ret", op_cycles(RotVariant::kIrq, OpCase::kReturn))
      .field("polling_call", op_cycles(RotVariant::kPolling, OpCase::kCall))
      .field("polling_ret", op_cycles(RotVariant::kPolling, OpCase::kReturn))
      .field("optimized_call",
             op_cycles(RotVariant::kOptimized, OpCase::kCall))
      .field("optimized_ret",
             op_cycles(RotVariant::kOptimized, OpCase::kReturn))
      .end_object();
  json.end_object();
  if (!json.write_file(path)) {
    std::cerr << "[pr2] error: cannot open '" << path << "' for writing\n";
    return false;
  }
  if (speedup_meaningful) {
    std::cerr << "[pr2] sweep speedup:      "
              << serial_seconds / parallel_seconds << "x on " << threads
              << " thread(s) (deterministic: "
              << (deterministic ? "yes" : "NO") << ")\n";
  } else {
    std::cerr << "[pr2] sweep speedup:      not claimed (1 hardware thread; "
                 "deterministic: "
              << (deterministic ? "yes" : "NO") << ")\n";
  }
  std::cerr << "[pr2] doorbell reduction: " << reduction
            << "x at burst 8 (stream identical: "
            << (stream_identical ? "yes" : "NO") << ")\n"
            << "[pr2] wrote " << path << "\n";
  return deterministic && stream_identical;
}

// ---- PR-5 report: event-driven SoC scheduler before/after -------------------

/// One engine-comparison point: a Table I-class workload co-simulated at
/// burst 1 (where per-cycle scheduler overhead dominates) under both engines.
struct Pr5Point {
  const char* key;
  const char* note;
  titan::api::Scenario scenario;
};

std::vector<Pr5Point> pr5_points() {
  using titan::api::ScenarioBuilder;
  using titan::api::Workload;
  const auto scenario = [](const char* name, Workload workload) {
    return ScenarioBuilder()
        .name(name)
        .workload(std::move(workload))
        .queue_depth(8)
        .build();
  };
  std::vector<Pr5Point> points;
  points.push_back({"stats", "divider-bound (Embench st-class): long-latency "
                             "dead cycles the event engine skips outright",
                    scenario("pr5/stats", Workload::stats(4096))});
  points.push_back({"matmul", "ALU/branch dense, sparse CFI events",
                    scenario("pr5/matmul", Workload::matmul(32))});
  points.push_back({"crc32", "bit-loop dense, sparse CFI events",
                    scenario("pr5/crc32", Workload::crc32(4096))});
  points.push_back({"fib", "call-dense counterpoint (CFI events ~every 10 insts)",
                    scenario("pr5/fib", Workload::fib(12))});
  return points;
}

bool run_pr5_report(const std::string& path) {
  using titan::api::Engine;
  using titan::api::RunReport;
  titan::sim::JsonWriter json;
  json.begin_object()
      .field("pr", 5)
      .field("description",
             std::string_view{"event-driven SoC scheduler: fast-forward the "
                              "host/RoT co-simulation between CFI events"});

  bool all_exact = true;
  double best_speedup = 0;
  json.begin_object("engine_e2e");
  for (const Pr5Point& point : pr5_points()) {
    std::cerr << "[pr5] " << point.key
              << ": lock-step vs event-driven co-simulation...\n";
    // Bit-exactness first (also warms every cache the timed runs touch).
    const RunReport lock_report =
        titan::api::run_scenario(point.scenario.with_engine(Engine::kLockStep));
    const RunReport event_report = titan::api::run_scenario(
        point.scenario.with_engine(Engine::kEventDriven));
    const bool exact = lock_report == event_report;
    all_exact = all_exact && exact;

    // Simulated cycles per wall-second, engine vs engine on the identical
    // scenario (run_scenario includes SoC construction for both sides).
    // Interleaved best-of-two passes so transient host noise (frequency
    // steps, page-cache warmup) cannot systematically favour either engine.
    const auto rate_of = [&point](Engine engine) {
      const titan::api::Scenario variant = point.scenario.with_engine(engine);
      return measure_rate(0.3, [&variant] {
        return titan::api::run_scenario(variant).cycles;
      });
    };
    double lock_rate = 0;
    double event_rate = 0;
    for (int pass = 0; pass < 2; ++pass) {
      lock_rate = std::max(lock_rate, rate_of(Engine::kLockStep));
      event_rate = std::max(event_rate, rate_of(Engine::kEventDriven));
    }
    const double speedup = lock_rate > 0 ? event_rate / lock_rate : 0.0;
    best_speedup = std::max(best_speedup, speedup);
    std::cerr << "[pr5]   " << speedup << "x (" << event_report.cycles
              << " modeled cycles, bit-exact: " << (exact ? "yes" : "NO")
              << ")\n";

    json.begin_object(point.key)
        .field("note", std::string_view{point.note})
        .field("modeled_cycles", event_report.cycles)
        .field("cf_logs", event_report.cf_logs)
        .field("sim_cycles_per_s_lockstep", lock_rate)
        .field("sim_cycles_per_s_event", event_rate)
        .field("speedup", speedup)
        .field("bit_exact", exact)
        .end_object();
  }
  json.field("best_speedup", best_speedup).end_object();

  // Drain hysteresis (wait-for-k-or-timeout) trade-off: fewer doorbells per
  // log at the cost of cycles a pending log may wait for company.
  std::cerr << "[pr5] drain_hysteresis grid (doorbell/latency trade-off)...\n";
  const titan::api::ScenarioSet hysteresis =
      titan::api::ScenarioRegistry::global().query("drain_hysteresis",
                                                   "hysteresis");
  json.begin_object("drain_hysteresis")
      .field("workload", std::string_view{"fib_recursive(10), burst 8"});
  double off_doorbells = 0;
  double best_doorbells = std::numeric_limits<double>::infinity();
  for (const titan::api::Scenario& scenario : hysteresis) {
    const RunReport report = titan::api::run_scenario(scenario);
    if (scenario.name() == "hysteresis/off") {
      off_doorbells = static_cast<double>(report.doorbells);
    }
    best_doorbells =
        std::min(best_doorbells, static_cast<double>(report.doorbells));
    json.begin_object(scenario.name())
        .field("cf_logs", report.cf_logs)
        .field("doorbells", report.doorbells)
        .field("batches", report.batches)
        .field("max_batch", report.max_batch)
        .field("cycles", report.cycles)
        .field("doorbells_per_log", report.doorbells_per_log())
        .field("mean_queue_occupancy", report.mean_queue_occupancy)
        .end_object();
  }
  json.field("doorbell_reduction_vs_immediate",
             best_doorbells > 0 ? off_doorbells / best_doorbells : 0.0)
      .end_object();
  json.end_object();

  if (!json.write_file(path)) {
    std::cerr << "[pr5] error: cannot open '" << path << "' for writing\n";
    return false;
  }
  std::cerr << "[pr5] best engine speedup: " << best_speedup
            << "x (bit-exact on all points: " << (all_exact ? "yes" : "NO")
            << ")\n[pr5] wrote " << path << "\n";
  return all_exact;
}

// ---- PR-7 report: checkpoint/fork warm-start sweeps -------------------------

/// Cold vs warm-start wall clock over one registry grid.  Checkpoints are
/// taken at each point's midpoint cycle (cold cycles / 2), so the warm run
/// skips about half the simulated work — the honest upper bound on the
/// speedup is 1 / (1 - skipped_fraction), and the report records both.
struct Pr7GridReport {
  std::size_t points = 0;
  double capture_seconds = 0;  ///< One-time cost of building the bundle.
  double cold_seconds = 0;     ///< Best-of-2 full-grid sweep, from scratch.
  double warm_seconds = 0;     ///< Best-of-2 full-grid sweep, forked.
  double skipped_fraction = 0; ///< Simulated cycles the fork skips.
  bool bit_exact = true;       ///< Warm RunReport == cold RunReport, per point.
  std::uint64_t cache_hits = 0;    ///< CheckpointCache hits over the grid.
  std::uint64_t cache_misses = 0;  ///< Captures (one per distinct point).
};

Pr7GridReport pr7_measure_grid(const titan::api::ScenarioSet& grid) {
  using titan::api::RunReport;
  using titan::api::Scenario;
  Pr7GridReport r;
  r.points = grid.size();

  // Cold reference runs (also the warmup pass for the timed sweeps below).
  std::vector<RunReport> cold_reports;
  cold_reports.reserve(grid.size());
  for (const Scenario& scenario : grid) {
    cold_reports.push_back(titan::api::run_scenario(scenario));
  }

  // One checkpoint per point at its midpoint cycle, through the same
  // CheckpointCache the daemon serves from; the capture cost is the one-time
  // investment a sweep amortises across every reuse of the bundle, and the
  // hit/miss counters below prove each point was captured exactly once.
  titan::api::CheckpointCache cache;
  std::vector<Scenario> warm;
  warm.reserve(grid.size());
  std::uint64_t skipped_cycles = 0;
  std::uint64_t total_cycles = 0;
  const auto capture_start = Clock::now();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto snapshot = cache.warmed(grid[i], cold_reports[i].cycles / 2);
    skipped_cycles += snapshot->cycle;
    total_cycles += cold_reports[i].cycles;
    warm.push_back(grid[i].with_warm_start(snapshot));
  }
  r.capture_seconds =
      std::chrono::duration<double>(Clock::now() - capture_start).count();
  r.skipped_fraction = total_cycles > 0
                           ? static_cast<double>(skipped_cycles) /
                                 static_cast<double>(total_cycles)
                           : 0.0;

  // Bit-exactness before any timing claim: every forked report must equal
  // its cold reference field-for-field.  Each point re-fetches its snapshot
  // through the cache, so after this loop the counters must read exactly
  // (points hits, points misses) — anything else means the cache captured
  // twice or aliased two scenarios.
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Scenario forked =
        grid[i].with_warm_start(cache.warmed(grid[i], cold_reports[i].cycles / 2));
    r.bit_exact = r.bit_exact &&
                  titan::api::run_scenario(forked) == cold_reports[i];
  }
  r.cache_hits = cache.hits();
  r.cache_misses = cache.misses();

  // Interleaved best-of-2 passes, cold and warm alternating, so transient
  // host noise cannot systematically favour either mode.
  const auto sweep_seconds = [](const std::vector<Scenario>& points) {
    const auto start = Clock::now();
    for (const Scenario& scenario : points) {
      benchmark::DoNotOptimize(titan::api::run_scenario(scenario));
    }
    return std::chrono::duration<double>(Clock::now() - start).count();
  };
  const std::vector<Scenario> cold(grid.begin(), grid.end());
  r.cold_seconds = std::numeric_limits<double>::infinity();
  r.warm_seconds = std::numeric_limits<double>::infinity();
  for (int pass = 0; pass < 2; ++pass) {
    r.cold_seconds = std::min(r.cold_seconds, sweep_seconds(cold));
    r.warm_seconds = std::min(r.warm_seconds, sweep_seconds(warm));
  }
  return r;
}

void emit_pr7_grid(titan::sim::JsonWriter& json, std::string_view key,
                   const Pr7GridReport& r) {
  const double speedup =
      r.warm_seconds > 0 ? r.cold_seconds / r.warm_seconds : 0.0;
  const double saved = r.cold_seconds - r.warm_seconds;
  json.begin_object(key)
      .field("points", static_cast<std::uint64_t>(r.points))
      .field("capture_seconds", r.capture_seconds)
      .field("cold_seconds", r.cold_seconds)
      .field("warm_seconds", r.warm_seconds)
      .field("speedup", speedup)
      .field("skipped_cycle_fraction", r.skipped_fraction)
      // How many warm sweeps repay the one-time capture cost.  A sweep that
      // reuses the bundle fewer times than this is net slower — the report
      // says so instead of hiding the capture behind the timed region.
      .field("break_even_reuses",
             saved > 0 ? r.capture_seconds / saved : 0.0)
      .field("bit_exact", r.bit_exact)
      .field("cache_hits", r.cache_hits)
      .field("cache_misses", r.cache_misses)
      .end_object();
}

bool run_pr7_report(const std::string& path) {
  const auto& registry = titan::api::ScenarioRegistry::global();
  // Wall-clock per point on these grids is milliseconds; a loaded or
  // 1-thread CI host can still jitter short intervals, so the report
  // records hw_concurrency and withholds the speedup claim when the cold
  // sweep is too brief to time honestly (same convention as BENCH_PR2).
  const unsigned hw_concurrency = titan::sim::SweepRunner::hardware_threads();

  std::cerr << "[pr7] fig1_liveness grid: cold vs warm-start sweep...\n";
  const Pr7GridReport fig1 =
      pr7_measure_grid(registry.query("fig1_liveness", "fig1"));
  std::cerr << "[pr7]   " << fig1.cold_seconds / fig1.warm_seconds
            << "x over " << fig1.points << " points (bit-exact: "
            << (fig1.bit_exact ? "yes" : "NO") << "; cache "
            << fig1.cache_misses << " capture(s) / " << fig1.cache_hits
            << " hit(s))\n";
  std::cerr << "[pr7] fault_matrix grid: cold vs warm-start sweep...\n";
  const Pr7GridReport matrix =
      pr7_measure_grid(registry.query("fault_matrix", "fault_matrix"));
  std::cerr << "[pr7]   " << matrix.cold_seconds / matrix.warm_seconds
            << "x over " << matrix.points << " points (bit-exact: "
            << (matrix.bit_exact ? "yes" : "NO") << "; cache "
            << matrix.cache_misses << " capture(s) / " << matrix.cache_hits
            << " hit(s))\n";

  const bool speedup_meaningful =
      fig1.cold_seconds + matrix.cold_seconds > 0.01;
  const double best_speedup =
      std::max(fig1.warm_seconds > 0 ? fig1.cold_seconds / fig1.warm_seconds
                                     : 0.0,
               matrix.warm_seconds > 0
                   ? matrix.cold_seconds / matrix.warm_seconds
                   : 0.0);

  titan::sim::JsonWriter json;
  json.begin_object()
      .field("pr", 7)
      .field("description",
             std::string_view{"checkpoint/fork warm start: sweeps resume "
                              "from copy-on-write mid-run snapshots instead "
                              "of re-simulating the shared prefix"})
      .field("hw_concurrency", hw_concurrency)
      .field("checkpoint_at", std::string_view{"cold cycles / 2, per point"})
      .field("speedup_meaningful", speedup_meaningful);
  emit_pr7_grid(json, "fig1_liveness", fig1);
  emit_pr7_grid(json, "fault_matrix", matrix);
  json.field("best_speedup", best_speedup).end_object();
  if (!json.write_file(path)) {
    std::cerr << "[pr7] error: cannot open '" << path << "' for writing\n";
    return false;
  }
  if (speedup_meaningful) {
    std::cerr << "[pr7] best sweep speedup: " << best_speedup
              << "x (checkpoints at the midpoint cycle of each point)\n";
  } else {
    std::cerr << "[pr7] sweep speedup: not claimed (grids too brief to time "
                 "on this host)\n";
  }
  std::cerr << "[pr7] wrote " << path << "\n";
  return fig1.bit_exact && matrix.bit_exact;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_PR1.json";
  std::string pr2_json_path = "BENCH_PR2.json";
  std::string pr5_json_path = "BENCH_PR5.json";
  std::string pr7_json_path = "BENCH_PR7.json";
  titan::sim::SweepCli sweep_cli;
  sweep_cli.threads = 0;  // 0 = hardware concurrency
  bool pr1_only = false;
  bool pr2_only = false;
  bool pr5_only = false;
  bool pr7_only = false;
  // Peel off our flags; everything else goes to google-benchmark.
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--pr1_only") {
      pr1_only = true;
    } else if (arg == "--pr2_only") {
      pr2_only = true;
    } else if (arg == "--pr5_only") {
      pr5_only = true;
    } else if (arg == "--pr7_only") {
      pr7_only = true;
    } else if (arg.rfind("--pr7_json=", 0) == 0) {
      pr7_json_path = arg.substr(std::strlen("--pr7_json="));
    } else if (arg.rfind("--pr1_json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--pr1_json="));
    } else if (arg.rfind("--pr2_json=", 0) == 0) {
      pr2_json_path = arg.substr(std::strlen("--pr2_json="));
    } else if (arg.rfind("--pr5_json=", 0) == 0) {
      pr5_json_path = arg.substr(std::strlen("--pr5_json="));
    } else if (arg.rfind("--sweep_json=", 0) == 0) {
      sweep_cli.json_path = arg.substr(std::strlen("--sweep_json="));
      sweep_cli.json_given = true;
    } else if (arg.rfind("--shard_json=", 0) == 0) {
      sweep_cli.shard_json_path = arg.substr(std::strlen("--shard_json="));
    } else if (arg.rfind("--shard=", 0) == 0) {
      if (!titan::sim::parse_shard_spec(
              arg.c_str() + std::strlen("--shard="), &sweep_cli.shard)) {
        std::cerr << "bench_micro: malformed --shard value '"
                  << arg.substr(std::strlen("--shard="))
                  << "' (expected i/K with K >= 1 and i < K)\n";
        return 2;
      }
      sweep_cli.shard_given = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      sweep_cli.threads = static_cast<unsigned>(
          std::strtoul(arg.c_str() + std::strlen("--threads="), nullptr, 10));
    } else if (arg.rfind("--engine=", 0) == 0) {
      std::cerr << "bench_micro: --engine only applies to co-simulating "
                   "sweep benches (the --pr5_only report measures both "
                   "engines itself)\n";
      return 2;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (sweep_cli.shard_given != !sweep_cli.shard_json_path.empty()) {
    std::cerr << "bench_micro: --shard=i/K and --shard_json=PATH must be "
                 "given together\n";
    return 2;
  }
  if ((sweep_cli.shard_given || sweep_cli.json_given) &&
      (pr1_only || pr2_only || pr5_only || pr7_only)) {
    std::cerr << "bench_micro: --shard/--sweep_json run only the sweep grid "
                 "and cannot be combined with --pr1_only/--pr2_only/"
                 "--pr5_only/--pr7_only\n";
    return 2;
  }
  if (pr1_only + pr2_only + pr5_only + pr7_only > 1) {
    std::cerr << "bench_micro: pick at most one of --pr1_only/--pr2_only/"
                 "--pr5_only/--pr7_only (no flag runs every report)\n";
    return 2;
  }
  if (sweep_cli.shard_given && sweep_cli.json_given) {
    std::cerr << "bench_micro: --shard writes a partial report via "
                 "--shard_json; --sweep_json is for single-process runs "
                 "(merge shards with tools/bench_merge)\n";
    return 2;
  }
  if (sweep_cli.shard_given || sweep_cli.json_given) {
    return run_sweep_grid_mode(sweep_cli);
  }
  const unsigned threads = sweep_cli.threads;
  int pass_argc = static_cast<int>(passthrough.size());
  if (!pr1_only && !pr2_only && !pr5_only && !pr7_only) {
    ::benchmark::Initialize(&pass_argc, passthrough.data());
    if (::benchmark::ReportUnrecognizedArguments(pass_argc,
                                                 passthrough.data())) {
      return 1;
    }
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
  }
  if (pr2_only) {
    return run_pr2_report(pr2_json_path, threads) ? 0 : 1;
  }
  if (pr1_only) {
    return run_pr1_report(json_path) ? 0 : 1;
  }
  if (pr5_only) {
    return run_pr5_report(pr5_json_path) ? 0 : 1;
  }
  if (pr7_only) {
    return run_pr7_report(pr7_json_path) ? 0 : 1;
  }
  const bool pr1_ok = run_pr1_report(json_path);
  const bool pr2_ok = run_pr2_report(pr2_json_path, threads);
  const bool pr5_ok = run_pr5_report(pr5_json_path);
  const bool pr7_ok = run_pr7_report(pr7_json_path);
  return pr1_ok && pr2_ok && pr5_ok && pr7_ok ? 0 : 1;
}

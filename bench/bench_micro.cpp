// Micro-benchmarks (google-benchmark) for the infrastructure libraries:
// decoder, RVC expansion, assembler, FIFO, SHA-256/HMAC, Ibex/CVA6 ISS
// throughput, and the trace-driven overhead model.
#include <benchmark/benchmark.h>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "cva6/core.hpp"
#include "firmware/builder.hpp"
#include "rv/assembler.hpp"
#include "rv/decode.hpp"
#include "sim/fifo.hpp"
#include "sim/rng.hpp"
#include "titancfi/overhead_model.hpp"
#include "workloads/embench.hpp"
#include "workloads/programs.hpp"

namespace {

void BM_Decode32(benchmark::State& state) {
  titan::sim::Rng rng(1);
  std::vector<std::uint32_t> words(4096);
  for (auto& word : words) {
    word = static_cast<std::uint32_t>(rng.next()) | 3;  // uncompressed
  }
  std::size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        titan::rv::decode(words[index++ & 4095], titan::rv::Xlen::k64));
  }
}
BENCHMARK(BM_Decode32);

void BM_ExpandRvc(benchmark::State& state) {
  std::uint16_t half = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(titan::rv::expand_rvc(half, titan::rv::Xlen::k64));
    half = static_cast<std::uint16_t>(half + 2);  // skip quadrant 3
    if ((half & 3) == 3) half += 2;
  }
}
BENCHMARK(BM_ExpandRvc);

void BM_AssembleFirmware(benchmark::State& state) {
  titan::fw::FirmwareConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(titan::fw::build_firmware(config));
  }
}
BENCHMARK(BM_AssembleFirmware);

void BM_FifoPushPop(benchmark::State& state) {
  titan::sim::Fifo<std::uint64_t> fifo(static_cast<std::size_t>(state.range(0)));
  std::uint64_t value = 0;
  for (auto _ : state) {
    if (!fifo.push(value++)) {
      benchmark::DoNotOptimize(fifo.pop());
    }
  }
}
BENCHMARK(BM_FifoPushPop)->Arg(1)->Arg(8)->Arg(64);

void BM_Sha256(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(titan::crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096);

void BM_HmacSha256(benchmark::State& state) {
  const std::vector<std::uint8_t> key(32, 0x11);
  std::vector<std::uint8_t> data(256, 0xCD);
  for (auto _ : state) {
    benchmark::DoNotOptimize(titan::crypto::hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_Cva6IssFib(benchmark::State& state) {
  const auto image = titan::workloads::fib_recursive(12);
  for (auto _ : state) {
    titan::sim::Memory memory;
    memory.load(image.base, image.bytes);
    titan::cva6::Cva6Config config;
    config.reset_pc = image.base;
    titan::cva6::Cva6Core core(config, memory);
    core.set_trace_enabled(false);
    benchmark::DoNotOptimize(core.run_baseline());
    state.counters["insts/s"] = benchmark::Counter(
        static_cast<double>(core.instret()), benchmark::Counter::kIsRate);
  }
}
BENCHMARK(BM_Cva6IssFib);

void BM_OverheadModel(benchmark::State& state) {
  const auto* stats = titan::workloads::find_benchmark("mm");
  const auto cf = titan::workloads::synthesize_cf_cycles(
      *stats, titan::workloads::TraceParams{});
  titan::cfi::OverheadConfig config;
  config.queue_depth = 8;
  config.check_latency = 267;
  for (auto _ : state) {
    benchmark::DoNotOptimize(titan::cfi::simulate_cf_cycles(
        cf, static_cast<titan::sim::Cycle>(stats->cycles), config));
  }
  state.counters["cf/s"] = benchmark::Counter(
      static_cast<double>(cf.size()) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OverheadModel);

void BM_TraceCalibration(benchmark::State& state) {
  const auto* stats = titan::workloads::find_benchmark("wikisort");
  for (auto _ : state) {
    benchmark::DoNotOptimize(titan::workloads::calibrate(*stats));
  }
}
BENCHMARK(BM_TraceCalibration);

}  // namespace

BENCHMARK_MAIN();

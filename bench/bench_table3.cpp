// Regenerates paper Table III: statistics and slowdowns of the full
// EmBench-IoT suite and RISC-V-Tests at CFI queue depth 8.
//
// Methodology note (see DESIGN.md): per benchmark, the trace generator is
// calibrated so the IRQ column (at depth 8) matches the paper; the Polling
// and Optimized columns are then *predictions* of the model.  The summary at
// the bottom quantifies that cross-validation.
//
// Every benchmark row is an independent (calibrate + replay x3) simulation
// point, so the grid runs through sim::SweepRunner:
//   bench_table3 [--threads=N] [--json=PATH]
//   bench_table3 --shard=i/K --shard_json=PATH [--threads=N]
// Output is printed in table order regardless of thread count (deterministic
// ordered aggregation), and --json adds a machine-readable dump of the rows.
// A --shard run evaluates only the ShardPlanner-owned slice and writes a
// partial report; tools/bench_merge reconstructs the --json output
// byte-for-byte from all K partials.
#include <chrono>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "sim/shard_merge.hpp"
#include "sim/sweep.hpp"
#include "sweep_bench_common.hpp"
#include "titancfi/overhead_model.hpp"
#include "workloads/embench.hpp"

namespace {

using titan::workloads::BenchmarkStats;

std::string fmt(double slowdown) {
  if (slowdown < 0.5) {
    return "-";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.0f", slowdown);
  return buffer;
}

std::string paper_fmt(double value) { return value < 0 ? "-" : fmt(value); }

/// The one OverheadConfig every Table III point replays with (check_latency
/// varies per column); also the source of the report's config fingerprint.
titan::cfi::OverheadConfig base_config() {
  titan::cfi::OverheadConfig config;
  config.queue_depth = 8;
  config.transport_cycles = 0;
  return config;
}

double measure(const BenchmarkStats& stats,
               const titan::workloads::TraceParams& params,
               std::uint32_t latency) {
  const auto cf = titan::workloads::synthesize_cf_cycles(stats, params);
  titan::cfi::OverheadConfig config = base_config();
  config.check_latency = latency;
  return titan::cfi::simulate_cf_cycles(
             cf, static_cast<titan::sim::Cycle>(stats.cycles), config)
      .slowdown_percent();
}

struct Row {
  double opt = 0;
  double poll = 0;
  double irq = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const titan::sim::SweepCli cli = titan::sim::parse_sweep_cli(argc, argv);
  if (!cli.error.empty()) {
    std::cerr << "bench_table3: " << cli.error << "\n";
    return 2;
  }
  titan::sim::SweepOptions sweep_options;
  sweep_options.threads = cli.threads;
  titan::sim::SweepRunner runner(sweep_options);

  const auto& table = titan::workloads::benchmark_table();

  // Report identity: shards (and the serial witness) must agree on the
  // point grid and the live configuration before their rows may be merged.
  const titan::sim::SweepDocHeader header = titan::bench::overhead_sweep_header(
      "table3", table, table.size(), base_config());

  const titan::sim::ShardPlanner planner(table.size(), cli.shard.count);
  const titan::sim::ShardRange owned = planner.range(cli.shard.index);

  const auto start = std::chrono::steady_clock::now();
  const std::vector<Row> rows = runner.run<Row>(
      owned.size(), [&table, &owned](std::size_t local) {
        const BenchmarkStats& stats = table[owned.begin + local];
        const auto params = titan::workloads::calibrate(stats);
        Row row;
        row.opt = measure(stats, params, titan::workloads::kOptimizedLatency);
        row.poll = measure(stats, params, titan::workloads::kPollingLatency);
        row.irq = measure(stats, params, titan::workloads::kIrqLatency);
        return row;
      });
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto emit_row = [&table, &rows, &owned](titan::sim::JsonWriter& json,
                                                std::size_t index) {
    const Row& row = rows[index - owned.begin];
    json.begin_object()
        .field("name", table[index].name)
        .field("opt", row.opt)
        .field("poll", row.poll)
        .field("irq", row.irq)
        .end_object();
  };

  if (cli.shard_given) {
    std::cout << "TABLE III shard " << cli.shard.index << "/"
              << cli.shard.count << ": rows [" << owned.begin << ","
              << owned.end << ") of " << table.size() << " on "
              << runner.threads() << " thread(s) in " << std::fixed
              << std::setprecision(2) << seconds << "s\n";
    if (!titan::sim::write_document(
            cli.shard_json_path,
            titan::sim::render_shard_document(header, cli.shard, emit_row))) {
      std::cerr << "cannot write " << cli.shard_json_path << "\n";
      return 1;
    }
    return 0;
  }

  std::cout << "TABLE III — Statistics and slowdowns of EmBench-IoT and "
               "RISC-V-Tests  (queue depth 8, slowdown %)\n";
  std::cout << "  measured -> paper   ('-' = negligible; IRQ column is the "
               "calibration target, Opt/Poll are predictions)\n\n";
  std::cout << std::left << std::setw(16) << "benchmark" << std::right
            << std::setw(10) << "cycles" << std::setw(10) << "CF"
            << std::setw(14) << "Opt." << std::setw(14) << "Poll."
            << std::setw(16) << "IRQ" << "\n";

  double poll_abs_err = 0;
  double opt_abs_err = 0;
  int scored = 0;
  std::string_view current_suite;

  for (std::size_t index = 0; index < table.size(); ++index) {
    const BenchmarkStats& stats = table[index];
    const Row& row = rows[index];
    if (stats.suite != current_suite) {
      current_suite = stats.suite;
      std::cout << "  [" << current_suite << "]\n";
    }
    std::cout << std::left << std::setw(16) << stats.name << std::right
              << std::setw(10) << static_cast<long long>(stats.cycles)
              << std::setw(10) << static_cast<long long>(stats.cf_count)
              << std::setw(8) << fmt(row.opt) << "->" << std::setw(4)
              << paper_fmt(stats.paper_opt) << std::setw(8) << fmt(row.poll)
              << "->" << std::setw(4) << paper_fmt(stats.paper_poll)
              << std::setw(8) << fmt(row.irq) << "->" << std::setw(5)
              << paper_fmt(stats.paper_irq) << "\n";

    if (stats.paper_poll > 0) {
      poll_abs_err += std::abs(row.poll - stats.paper_poll) / stats.paper_poll;
      opt_abs_err += stats.paper_opt > 0
                         ? std::abs(row.opt - stats.paper_opt) / stats.paper_opt
                         : 0.0;
      ++scored;
    }
  }

  std::cout << "\n  Cross-validation (columns NOT used for calibration):\n"
            << "    mean relative error, Polling: " << std::fixed
            << std::setprecision(1) << 100.0 * poll_abs_err / scored << "%\n"
            << "    mean relative error, Optimized: "
            << 100.0 * opt_abs_err / scored << "%  (over " << scored
            << " benchmarks with published Polling numbers)\n";
  std::cout << "  Headline shape (paper Sec. V-C): most benchmarks show no or "
               "<10% overhead; CF-dense kernels (mm, dhrystone, nbody, cubic, "
               "slre, wikisort) dominate the tail.\n";
  std::cout << "  Sweep: " << table.size() << " points on "
            << runner.threads() << " thread(s) in " << std::setprecision(2)
            << seconds << "s\n";

  if (!cli.json_path.empty()) {
    // Canonical deterministic report: header + rows only (wall-clock and
    // thread count stay on stdout), so a bench_merge of K shards can
    // reconstruct this file byte-for-byte.
    if (!titan::sim::write_document(
            cli.json_path, titan::sim::render_full_document(header, emit_row))) {
      std::cerr << "cannot write " << cli.json_path << "\n";
      return 1;
    }
  }
  return 0;
}

// Regenerates paper Table III: statistics and slowdowns of the full
// EmBench-IoT suite and RISC-V-Tests at CFI queue depth 8.
//
// Methodology note (see DESIGN.md): per benchmark, the trace generator is
// calibrated so the IRQ column (at depth 8) matches the paper; the Polling
// and Optimized columns are then *predictions* of the model.  The summary at
// the bottom quantifies that cross-validation.
//
// The point grid is the typed api::OverheadGrid::table3() — its
// serialization is the report identity — run through the one sweep surface:
//   bench_table3 [--threads=N] [--json=PATH]
//   bench_table3 --shard=i/K --shard_json=PATH [--threads=N]
// Output is printed in table order regardless of thread count (deterministic
// ordered aggregation); a --shard run evaluates only the ShardPlanner-owned
// slice and writes a partial report that tools/bench_merge (or
// tools/bench_shard_driver) splices back byte-for-byte.
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <iostream>

#include "api/api.hpp"
#include "api/enforce.hpp"

namespace {

using titan::workloads::BenchmarkStats;

std::string fmt(double slowdown) {
  if (slowdown < 0.5) {
    return "-";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.0f", slowdown);
  return buffer;
}

std::string paper_fmt(double value) { return value < 0 ? "-" : fmt(value); }

struct Row {
  double opt = 0;
  double poll = 0;
  double irq = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const titan::sim::SweepCli cli = titan::sim::parse_sweep_cli(argc, argv);
  if (!cli.error.empty()) {
    std::cerr << "bench_table3: " << cli.error << "\n";
    return 2;
  }
  if (cli.engine_given) {
    std::cerr << "bench_table3: --engine only applies to co-simulating "
                 "benches (this one replays the trace-driven overhead "
                 "model)\n";
    return 2;
  }

  const titan::api::OverheadGrid grid = titan::api::OverheadGrid::table3();

  titan::api::SweepPlan<Row> plan;
  plan.header = grid.header();
  plan.point = [&grid](std::size_t index) {
    const auto params = titan::workloads::calibrate(grid.row(index));
    Row row;
    row.opt = grid.slowdown(index, params, titan::workloads::kOptimizedLatency);
    row.poll = grid.slowdown(index, params, titan::workloads::kPollingLatency);
    row.irq = grid.slowdown(index, params, titan::workloads::kIrqLatency);
    return row;
  };
  plan.emit = [&grid](titan::sim::JsonWriter& json, const Row& row,
                      std::size_t index) {
    json.begin_object()
        .field("name", grid.row(index).name)
        .field("opt", row.opt)
        .field("poll", row.poll)
        .field("irq", row.irq)
        .end_object();
  };

  titan::api::SweepOutcome<Row> outcome;
  const int exit_code = titan::api::run_sweep(plan, cli, &outcome);
  if (exit_code != 0) {
    return exit_code;
  }

  if (cli.shard_given) {
    std::cout << "TABLE III shard " << cli.shard.index << "/"
              << cli.shard.count << ": rows [" << outcome.owned.begin << ","
              << outcome.owned.end << ") of " << grid.size() << " on "
              << outcome.threads << " thread(s) in " << std::fixed
              << std::setprecision(2) << outcome.seconds << "s\n";
    return 0;
  }

  std::cout << "TABLE III — Statistics and slowdowns of EmBench-IoT and "
               "RISC-V-Tests  (queue depth 8, slowdown %)\n";
  std::cout << "  measured -> paper   ('-' = negligible; IRQ column is the "
               "calibration target, Opt/Poll are predictions)\n\n";
  std::cout << std::left << std::setw(16) << "benchmark" << std::right
            << std::setw(10) << "cycles" << std::setw(10) << "CF"
            << std::setw(14) << "Opt." << std::setw(14) << "Poll."
            << std::setw(16) << "IRQ" << "\n";

  double poll_abs_err = 0;
  double opt_abs_err = 0;
  int scored = 0;
  std::string_view current_suite;

  for (std::size_t index = 0; index < grid.size(); ++index) {
    const BenchmarkStats& stats = grid.row(index);
    const Row& row = outcome.rows[index];
    if (stats.suite != current_suite) {
      current_suite = stats.suite;
      std::cout << "  [" << current_suite << "]\n";
    }
    std::cout << std::left << std::setw(16) << stats.name << std::right
              << std::setw(10) << static_cast<long long>(stats.cycles)
              << std::setw(10) << static_cast<long long>(stats.cf_count)
              << std::setw(8) << fmt(row.opt) << "->" << std::setw(4)
              << paper_fmt(stats.paper_opt) << std::setw(8) << fmt(row.poll)
              << "->" << std::setw(4) << paper_fmt(stats.paper_poll)
              << std::setw(8) << fmt(row.irq) << "->" << std::setw(5)
              << paper_fmt(stats.paper_irq) << "\n";

    if (stats.paper_poll > 0) {
      poll_abs_err += std::abs(row.poll - stats.paper_poll) / stats.paper_poll;
      opt_abs_err += stats.paper_opt > 0
                         ? std::abs(row.opt - stats.paper_opt) / stats.paper_opt
                         : 0.0;
      ++scored;
    }
  }

  std::cout << "\n  Cross-validation (columns NOT used for calibration):\n"
            << "    mean relative error, Polling: " << std::fixed
            << std::setprecision(1) << 100.0 * poll_abs_err / scored << "%\n"
            << "    mean relative error, Optimized: "
            << 100.0 * opt_abs_err / scored << "%  (over " << scored
            << " benchmarks with published Polling numbers)\n";
  std::cout << "  Headline shape (paper Sec. V-C): most benchmarks show no or "
               "<10% overhead; CF-dense kernels (mm, dhrystone, nbody, cubic, "
               "slre, wikisort) dominate the tail.\n";
  std::cout << "  Sweep: " << grid.size() << " points on " << outcome.threads
            << " thread(s) in " << std::setprecision(2) << outcome.seconds
            << "s\n";
  return 0;
}

// Regenerates paper Table III: statistics and slowdowns of the full
// EmBench-IoT suite and RISC-V-Tests at CFI queue depth 8.
//
// Methodology note (see DESIGN.md): per benchmark, the trace generator is
// calibrated so the IRQ column (at depth 8) matches the paper; the Polling
// and Optimized columns are then *predictions* of the model.  The summary at
// the bottom quantifies that cross-validation.
//
// Every benchmark row is an independent (calibrate + replay x3) simulation
// point, so the grid runs through sim::SweepRunner:
//   bench_table3 [--threads=N] [--json=PATH]
// Output is printed in table order regardless of thread count (deterministic
// ordered aggregation), and --json adds a machine-readable dump of the rows.
#include <chrono>
#include <cmath>
#include <iomanip>
#include <iostream>

#include "sim/sweep.hpp"
#include "titancfi/overhead_model.hpp"
#include "workloads/embench.hpp"

namespace {

using titan::workloads::BenchmarkStats;

std::string fmt(double slowdown) {
  if (slowdown < 0.5) {
    return "-";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.0f", slowdown);
  return buffer;
}

std::string paper_fmt(double value) { return value < 0 ? "-" : fmt(value); }

double measure(const BenchmarkStats& stats,
               const titan::workloads::TraceParams& params,
               std::uint32_t latency) {
  const auto cf = titan::workloads::synthesize_cf_cycles(stats, params);
  titan::cfi::OverheadConfig config;
  config.queue_depth = 8;
  config.check_latency = latency;
  config.transport_cycles = 0;
  return titan::cfi::simulate_cf_cycles(
             cf, static_cast<titan::sim::Cycle>(stats.cycles), config)
      .slowdown_percent();
}

struct Row {
  double opt = 0;
  double poll = 0;
  double irq = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const titan::sim::SweepCli cli = titan::sim::parse_sweep_cli(argc, argv);
  titan::sim::SweepOptions sweep_options;
  sweep_options.threads = cli.threads;
  titan::sim::SweepRunner runner(sweep_options);

  const auto& table = titan::workloads::benchmark_table();
  const auto start = std::chrono::steady_clock::now();
  const std::vector<Row> rows = runner.run<Row>(
      table.size(), [&table](std::size_t index) {
        const BenchmarkStats& stats = table[index];
        const auto params = titan::workloads::calibrate(stats);
        Row row;
        row.opt = measure(stats, params, titan::workloads::kOptimizedLatency);
        row.poll = measure(stats, params, titan::workloads::kPollingLatency);
        row.irq = measure(stats, params, titan::workloads::kIrqLatency);
        return row;
      });
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::cout << "TABLE III — Statistics and slowdowns of EmBench-IoT and "
               "RISC-V-Tests  (queue depth 8, slowdown %)\n";
  std::cout << "  measured -> paper   ('-' = negligible; IRQ column is the "
               "calibration target, Opt/Poll are predictions)\n\n";
  std::cout << std::left << std::setw(16) << "benchmark" << std::right
            << std::setw(10) << "cycles" << std::setw(10) << "CF"
            << std::setw(14) << "Opt." << std::setw(14) << "Poll."
            << std::setw(16) << "IRQ" << "\n";

  double poll_abs_err = 0;
  double opt_abs_err = 0;
  int scored = 0;
  std::string_view current_suite;

  for (std::size_t index = 0; index < table.size(); ++index) {
    const BenchmarkStats& stats = table[index];
    const Row& row = rows[index];
    if (stats.suite != current_suite) {
      current_suite = stats.suite;
      std::cout << "  [" << current_suite << "]\n";
    }
    std::cout << std::left << std::setw(16) << stats.name << std::right
              << std::setw(10) << static_cast<long long>(stats.cycles)
              << std::setw(10) << static_cast<long long>(stats.cf_count)
              << std::setw(8) << fmt(row.opt) << "->" << std::setw(4)
              << paper_fmt(stats.paper_opt) << std::setw(8) << fmt(row.poll)
              << "->" << std::setw(4) << paper_fmt(stats.paper_poll)
              << std::setw(8) << fmt(row.irq) << "->" << std::setw(5)
              << paper_fmt(stats.paper_irq) << "\n";

    if (stats.paper_poll > 0) {
      poll_abs_err += std::abs(row.poll - stats.paper_poll) / stats.paper_poll;
      opt_abs_err += stats.paper_opt > 0
                         ? std::abs(row.opt - stats.paper_opt) / stats.paper_opt
                         : 0.0;
      ++scored;
    }
  }

  std::cout << "\n  Cross-validation (columns NOT used for calibration):\n"
            << "    mean relative error, Polling: " << std::fixed
            << std::setprecision(1) << 100.0 * poll_abs_err / scored << "%\n"
            << "    mean relative error, Optimized: "
            << 100.0 * opt_abs_err / scored << "%  (over " << scored
            << " benchmarks with published Polling numbers)\n";
  std::cout << "  Headline shape (paper Sec. V-C): most benchmarks show no or "
               "<10% overhead; CF-dense kernels (mm, dhrystone, nbody, cubic, "
               "slre, wikisort) dominate the tail.\n";
  std::cout << "  Sweep: " << table.size() << " points on "
            << runner.threads() << " thread(s) in " << std::setprecision(2)
            << seconds << "s\n";

  if (!cli.json_path.empty()) {
    titan::sim::JsonWriter json;
    json.begin_object()
        .field("bench", std::string_view{"table3"})
        .field("threads", runner.threads())
        .field("points", static_cast<std::uint64_t>(table.size()))
        .field("seconds", seconds)
        .begin_array("rows");
    for (std::size_t index = 0; index < table.size(); ++index) {
      json.begin_object()
          .field("name", table[index].name)
          .field("opt", rows[index].opt)
          .field("poll", rows[index].poll)
          .field("irq", rows[index].irq)
          .end_object();
    }
    json.end_array().end_object();
    if (!json.write_file(cli.json_path)) {
      std::cerr << "cannot write " << cli.json_path << "\n";
      return 1;
    }
  }
  return 0;
}

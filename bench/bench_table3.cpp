// Regenerates paper Table III: statistics and slowdowns of the full
// EmBench-IoT suite and RISC-V-Tests at CFI queue depth 8.
//
// Methodology note (see DESIGN.md): per benchmark, the trace generator is
// calibrated so the IRQ column (at depth 8) matches the paper; the Polling
// and Optimized columns are then *predictions* of the model.  The summary at
// the bottom quantifies that cross-validation.
#include <cmath>
#include <iomanip>
#include <iostream>

#include "titancfi/overhead_model.hpp"
#include "workloads/embench.hpp"

namespace {

using titan::workloads::BenchmarkStats;

std::string fmt(double slowdown) {
  if (slowdown < 0.5) {
    return "-";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.0f", slowdown);
  return buffer;
}

std::string paper_fmt(double value) { return value < 0 ? "-" : fmt(value); }

double measure(const BenchmarkStats& stats,
               const titan::workloads::TraceParams& params,
               std::uint32_t latency) {
  const auto cf = titan::workloads::synthesize_cf_cycles(stats, params);
  titan::cfi::OverheadConfig config;
  config.queue_depth = 8;
  config.check_latency = latency;
  config.transport_cycles = 0;
  return titan::cfi::simulate_cf_cycles(
             cf, static_cast<titan::sim::Cycle>(stats.cycles), config)
      .slowdown_percent();
}

}  // namespace

int main() {
  std::cout << "TABLE III — Statistics and slowdowns of EmBench-IoT and "
               "RISC-V-Tests  (queue depth 8, slowdown %)\n";
  std::cout << "  measured -> paper   ('-' = negligible; IRQ column is the "
               "calibration target, Opt/Poll are predictions)\n\n";
  std::cout << std::left << std::setw(16) << "benchmark" << std::right
            << std::setw(10) << "cycles" << std::setw(10) << "CF"
            << std::setw(14) << "Opt." << std::setw(14) << "Poll."
            << std::setw(16) << "IRQ" << "\n";

  double poll_abs_err = 0;
  double opt_abs_err = 0;
  int scored = 0;
  std::string_view current_suite;

  for (const BenchmarkStats& stats : titan::workloads::benchmark_table()) {
    if (stats.suite != current_suite) {
      current_suite = stats.suite;
      std::cout << "  [" << current_suite << "]\n";
    }
    const auto params = titan::workloads::calibrate(stats);
    const double opt = measure(stats, params, titan::workloads::kOptimizedLatency);
    const double poll = measure(stats, params, titan::workloads::kPollingLatency);
    const double irq = measure(stats, params, titan::workloads::kIrqLatency);

    std::cout << std::left << std::setw(16) << stats.name << std::right
              << std::setw(10) << static_cast<long long>(stats.cycles)
              << std::setw(10) << static_cast<long long>(stats.cf_count)
              << std::setw(8) << fmt(opt) << "->" << std::setw(4)
              << paper_fmt(stats.paper_opt) << std::setw(8) << fmt(poll)
              << "->" << std::setw(4) << paper_fmt(stats.paper_poll)
              << std::setw(8) << fmt(irq) << "->" << std::setw(5)
              << paper_fmt(stats.paper_irq) << "\n";

    if (stats.paper_poll > 0) {
      poll_abs_err += std::abs(poll - stats.paper_poll) / stats.paper_poll;
      opt_abs_err +=
          stats.paper_opt > 0 ? std::abs(opt - stats.paper_opt) / stats.paper_opt
                              : 0.0;
      ++scored;
    }
  }

  std::cout << "\n  Cross-validation (columns NOT used for calibration):\n"
            << "    mean relative error, Polling: " << std::fixed
            << std::setprecision(1) << 100.0 * poll_abs_err / scored << "%\n"
            << "    mean relative error, Optimized: "
            << 100.0 * opt_abs_err / scored << "%  (over " << scored
            << " benchmarks with published Polling numbers)\n";
  std::cout << "  Headline shape (paper Sec. V-C): most benchmarks show no or "
               "<10% overhead; CF-dense kernels (mm, dhrystone, nbody, cubic, "
               "slre, wikisort) dominate the tail.\n";
  return 0;
}

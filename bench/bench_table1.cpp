// Regenerates paper Table I: cycles required to implement the return-address
// protection policy in OpenTitan, for the IRQ / Polling / Optimized firmware
// organisations, split IRQ-vs-CFI and Logic / Mem.RoT / Mem.SoC.
//
// Methodology: the generated RV32 firmware runs on the Ibex model; a host
// emulation writes one commit log into the CFI Mailbox, rings the doorbell,
// and every retired Ibex instruction is attributed by PC section and
// effective address (see firmware/table1.hpp).
#include <iostream>

#include "firmware/table1.hpp"
#include "api/enforce.hpp"

namespace {

struct PaperRow {
  const char* variant;
  const char* op;
  // instructions {irq, cfi}, cycles {irq, cfi}
  int inst_irq, inst_cfi;
  int cyc_irq, cyc_cfi;
};

// Transcribed from the paper's Table I (TOT rows).
constexpr PaperRow kPaper[] = {
    {"IRQ", "CALL", 24, 24, 155, 103},
    {"IRQ", "RET.", 24, 34, 155, 121},
    {"Polling", "CALL", 0, 24, 0, 103},
    {"Polling", "RET.", 0, 34, 0, 121},
    {"Optimized", "CALL", 0, 24, 0, 64},
    {"Optimized", "RET.", 0, 34, 0, 82},
};

}  // namespace

int main() {
  using titan::fw::OpCase;
  using titan::fw::RotVariant;

  titan::fw::print_table1(std::cout);

  std::cout << "\n  Paper-vs-measured (total instructions | total cycles):\n";
  std::cout << "    variant    op     paper          measured\n";
  const auto measure = [](RotVariant variant, OpCase op) {
    return titan::fw::measure_policy_cost(variant, op);
  };
  const RotVariant variants[] = {RotVariant::kIrq, RotVariant::kPolling,
                                 RotVariant::kOptimized};
  const OpCase ops[] = {OpCase::kCall, OpCase::kReturn};
  int row = 0;
  for (const RotVariant variant : variants) {
    for (const OpCase op : ops) {
      const auto breakdown = measure(variant, op);
      const PaperRow& paper = kPaper[row++];
      std::cout << "    " << paper.variant << "\t" << paper.op << "  "
                << (paper.inst_irq + paper.inst_cfi) << " | "
                << (paper.cyc_irq + paper.cyc_cfi) << "\t-> "
                << breakdown.total().instructions << " | "
                << breakdown.total().cycles << "\n";
    }
  }
  std::cout << "\n  Shape checks: Polling saves ~58% vs IRQ; Optimized ~70%"
               " (paper Sec. V-B).\n";
  const auto irq_avg =
      (measure(RotVariant::kIrq, OpCase::kCall).total().cycles +
       measure(RotVariant::kIrq, OpCase::kReturn).total().cycles) /
      2.0;
  const auto poll_avg =
      (measure(RotVariant::kPolling, OpCase::kCall).total().cycles +
       measure(RotVariant::kPolling, OpCase::kReturn).total().cycles) /
      2.0;
  const auto opt_avg =
      (measure(RotVariant::kOptimized, OpCase::kCall).total().cycles +
       measure(RotVariant::kOptimized, OpCase::kReturn).total().cycles) /
      2.0;
  std::cout << "    measured per-op averages: IRQ=" << irq_avg
            << " Polling=" << poll_avg << " (-"
            << static_cast<int>(100 - 100 * poll_avg / irq_avg)
            << "%) Optimized=" << opt_avg << " (-"
            << static_cast<int>(100 - 100 * opt_avg / irq_avg) << "%)\n";
  std::cout << "    paper per-op averages:    IRQ=267 Polling=112 (-58%)"
               " Optimized=73 (-73%)\n";
  return 0;
}

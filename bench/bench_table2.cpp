// Regenerates paper Table II: runtime slowdown comparison with DExIE [8] and
// FIXER [6] on the benchmarks both papers report, with the CFI Queue
// constrained to depth 1 ("to emulate the behaviour of stalling the core as
// soon as a single control flow instruction is retired").
//
// Columns: the comparators' reported numbers, our behavioural models of the
// comparators, and TitanCFI's Optimized / Polling / IRQ firmware through the
// trace-driven overhead model on calibrated synthetic traces.
//
// The point grid is the typed api::OverheadGrid::table2() — its
// serialization is the report identity — run through the one sweep surface
// (threads via sim::SweepRunner, processes via sim::ShardPlanner):
//   bench_table2 [--threads=N] [--json=PATH]
//   bench_table2 --shard=i/K --shard_json=PATH [--threads=N]
// Merging all K partials with tools/bench_merge (or in one command with
// tools/bench_shard_driver) reconstructs the --json output byte-for-byte.
#include <cstdio>
#include <iomanip>
#include <iostream>
#include <optional>

#include "api/api.hpp"
#include "baselines/baselines.hpp"
#include "api/enforce.hpp"

namespace {

using titan::workloads::BenchmarkStats;

std::string fmt(double slowdown) {
  if (slowdown < 0.5) {
    return "-";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.0f", slowdown);
  return buffer;
}

std::string fmt_opt(std::optional<double> value) {
  return value.has_value() ? fmt(*value) : "n.a.";
}

struct Row {
  const BenchmarkStats* stats = nullptr;
  double dexie_model = 0;
  double fixer_model = 0;
  double opt = 0;
  double poll = 0;
  double irq = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const titan::sim::SweepCli cli = titan::sim::parse_sweep_cli(argc, argv);
  if (!cli.error.empty()) {
    std::cerr << "bench_table2: " << cli.error << "\n";
    return 2;
  }
  if (cli.engine_given) {
    std::cerr << "bench_table2: --engine only applies to co-simulating "
                 "benches (this one replays the trace-driven overhead "
                 "model)\n";
    return 2;
  }

  const titan::api::OverheadGrid grid = titan::api::OverheadGrid::table2();

  titan::api::SweepPlan<Row> plan;
  plan.header = grid.header();
  plan.point = [&grid](std::size_t index) {
    const BenchmarkStats& stats = grid.row(index);
    const auto params = titan::workloads::calibrate(stats);
    const titan::baselines::TraceStats trace_stats{
        static_cast<std::uint64_t>(stats.cycles),
        static_cast<std::uint64_t>(stats.cf_count)};
    titan::baselines::DexieModel dexie;
    titan::baselines::FixerModel fixer;
    Row row;
    row.stats = &stats;
    row.dexie_model = dexie.slowdown_percent(trace_stats);
    row.fixer_model = fixer.slowdown_percent(trace_stats);
    row.opt = grid.slowdown(index, params, titan::workloads::kOptimizedLatency);
    row.poll = grid.slowdown(index, params, titan::workloads::kPollingLatency);
    row.irq = grid.slowdown(index, params, titan::workloads::kIrqLatency);
    return row;
  };
  plan.emit = [](titan::sim::JsonWriter& json, const Row& row, std::size_t) {
    json.begin_object()
        .field("name", row.stats->name)
        .field("dexie_model", row.dexie_model)
        .field("fixer_model", row.fixer_model)
        .field("opt", row.opt)
        .field("poll", row.poll)
        .field("irq", row.irq)
        .end_object();
  };

  titan::api::SweepOutcome<Row> outcome;
  const int exit_code = titan::api::run_sweep(plan, cli, &outcome);
  if (exit_code != 0) {
    return exit_code;
  }

  if (cli.shard_given) {
    std::cout << "TABLE II shard " << cli.shard.index << "/" << cli.shard.count
              << ": rows [" << outcome.owned.begin << "," << outcome.owned.end
              << ") of " << grid.size() << " on " << outcome.threads
              << " thread(s) in " << std::fixed << std::setprecision(2)
              << outcome.seconds << "s\n";
    return 0;
  }

  std::cout << "TABLE II — Runtime slowdown comparison with DExIE [8] and "
               "FIXER [6]  (CFI queue depth 1, slowdown %)\n\n";
  std::cout << std::left << std::setw(14) << "benchmark" << std::right
            << std::setw(10) << "[8] rep." << std::setw(10) << "[8] model"
            << std::setw(10) << "[6] rep." << std::setw(10) << "[6] model"
            << std::setw(8) << "Opt." << std::setw(8) << "Poll."
            << std::setw(8) << "IRQ" << "\n";

  for (const Row& row : outcome.rows) {
    const BenchmarkStats& stats = *row.stats;
    const auto dexie_rep = titan::baselines::dexie_reported(stats.name);
    const auto fixer_rep = titan::baselines::fixer_reported(stats.name);
    std::cout << std::left << std::setw(14) << stats.name << std::right
              << std::setw(10) << fmt_opt(dexie_rep) << std::setw(10)
              << (dexie_rep ? fmt(row.dexie_model) : "n.a.") << std::setw(10)
              << fmt_opt(fixer_rep) << std::setw(10)
              << (fixer_rep ? fmt(row.fixer_model) : "n.a.") << std::setw(8)
              << fmt(row.opt) << std::setw(8) << fmt(row.poll) << std::setw(8)
              << fmt(row.irq) << "\n";
  }

  std::cout << "\n  Paper values for TitanCFI columns (Opt/Poll/IRQ):\n";
  for (const Row& row : outcome.rows) {
    const BenchmarkStats& stats = *row.stats;
    const auto show = [](double value) {
      return value <= -2 ? std::string("n.a.")
             : value < 0 ? std::string("-")
                         : fmt(value);
    };
    std::cout << "    " << std::left << std::setw(14) << stats.name
              << show(stats.paper2_opt) << " / " << show(stats.paper2_poll)
              << " / " << show(stats.paper2_irq) << "\n";
  }
  std::cout << "\n  Shape: TitanCFI beats DExIE's ~47-48% on 3 of 4 EmBench "
               "rows; dhrystone remains the outlier, as in the paper.\n";
  std::cout << "  Sweep: " << outcome.rows.size() << " points on "
            << outcome.threads << " thread(s) in " << std::fixed
            << std::setprecision(2) << outcome.seconds << "s\n";
  return 0;
}

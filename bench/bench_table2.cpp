// Regenerates paper Table II: runtime slowdown comparison with DExIE [8] and
// FIXER [6] on the benchmarks both papers report, with the CFI Queue
// constrained to depth 1 ("to emulate the behaviour of stalling the core as
// soon as a single control flow instruction is retired").
//
// Columns: the comparators' reported numbers, our behavioural models of the
// comparators, and TitanCFI's Optimized / Polling / IRQ firmware through the
// trace-driven overhead model on calibrated synthetic traces.
//
// Each benchmark row is an independent simulation point sharded through
// sim::SweepRunner (threads) and, above that, sim::ShardPlanner (processes):
//   bench_table2 [--threads=N] [--json=PATH]
//   bench_table2 --shard=i/K --shard_json=PATH [--threads=N]
// A --shard run evaluates only the owned contiguous slice of the row grid
// and writes a partial report; merging all K partials with tools/bench_merge
// reconstructs the single-process --json output byte-for-byte.
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "baselines/baselines.hpp"
#include "sim/shard_merge.hpp"
#include "sim/sweep.hpp"
#include "sweep_bench_common.hpp"
#include "titancfi/overhead_model.hpp"
#include "workloads/embench.hpp"

namespace {

using titan::workloads::BenchmarkStats;

std::string fmt(double slowdown) {
  if (slowdown < 0.5) {
    return "-";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.0f", slowdown);
  return buffer;
}

std::string fmt_opt(std::optional<double> value) {
  return value.has_value() ? fmt(*value) : "n.a.";
}

/// The one OverheadConfig every Table II point replays with (check_latency
/// varies per column); also the source of the report's config fingerprint.
titan::cfi::OverheadConfig base_config() {
  titan::cfi::OverheadConfig config;
  config.queue_depth = 1;  // Table II constraint
  config.transport_cycles = 0;
  return config;
}

double ours(const BenchmarkStats& stats,
            const titan::workloads::TraceParams& params,
            std::uint32_t latency) {
  const auto cf = titan::workloads::synthesize_cf_cycles(stats, params);
  titan::cfi::OverheadConfig config = base_config();
  config.check_latency = latency;
  return titan::cfi::simulate_cf_cycles(
             cf, static_cast<titan::sim::Cycle>(stats.cycles), config)
      .slowdown_percent();
}

struct Row {
  const BenchmarkStats* stats = nullptr;
  double dexie_model = 0;
  double fixer_model = 0;
  double opt = 0;
  double poll = 0;
  double irq = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const titan::sim::SweepCli cli = titan::sim::parse_sweep_cli(argc, argv);
  if (!cli.error.empty()) {
    std::cerr << "bench_table2: " << cli.error << "\n";
    return 2;
  }
  titan::sim::SweepOptions sweep_options;
  sweep_options.threads = cli.threads;
  titan::sim::SweepRunner runner(sweep_options);

  std::vector<const BenchmarkStats*> selected;
  for (const BenchmarkStats& stats : titan::workloads::benchmark_table()) {
    if (stats.in_table2()) {
      selected.push_back(&stats);
    }
  }

  // Report identity: shards (and the serial witness) must agree on the
  // point grid and the live configuration before their rows may be merged.
  const titan::sim::SweepDocHeader header = titan::bench::overhead_sweep_header(
      "table2", selected, selected.size(), base_config());

  const titan::sim::ShardPlanner planner(selected.size(), cli.shard.count);
  const titan::sim::ShardRange owned = planner.range(cli.shard.index);

  const auto start = std::chrono::steady_clock::now();
  const std::vector<Row> rows = runner.run<Row>(
      owned.size(), [&selected, &owned](std::size_t local) {
        const BenchmarkStats& stats = *selected[owned.begin + local];
        const auto params = titan::workloads::calibrate(stats);
        const titan::baselines::TraceStats trace_stats{
            static_cast<std::uint64_t>(stats.cycles),
            static_cast<std::uint64_t>(stats.cf_count)};
        titan::baselines::DexieModel dexie;
        titan::baselines::FixerModel fixer;
        Row row;
        row.stats = &stats;
        row.dexie_model = dexie.slowdown_percent(trace_stats);
        row.fixer_model = fixer.slowdown_percent(trace_stats);
        row.opt = ours(stats, params, titan::workloads::kOptimizedLatency);
        row.poll = ours(stats, params, titan::workloads::kPollingLatency);
        row.irq = ours(stats, params, titan::workloads::kIrqLatency);
        return row;
      });
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const auto emit_row = [&rows, &owned](titan::sim::JsonWriter& json,
                                        std::size_t index) {
    const Row& row = rows[index - owned.begin];
    json.begin_object()
        .field("name", row.stats->name)
        .field("dexie_model", row.dexie_model)
        .field("fixer_model", row.fixer_model)
        .field("opt", row.opt)
        .field("poll", row.poll)
        .field("irq", row.irq)
        .end_object();
  };

  if (cli.shard_given) {
    std::cout << "TABLE II shard " << cli.shard.index << "/"
              << cli.shard.count << ": rows [" << owned.begin << ","
              << owned.end << ") of " << selected.size() << " on "
              << runner.threads() << " thread(s) in " << std::fixed
              << std::setprecision(2) << seconds << "s\n";
    if (!titan::sim::write_document(
            cli.shard_json_path,
            titan::sim::render_shard_document(header, cli.shard, emit_row))) {
      std::cerr << "cannot write " << cli.shard_json_path << "\n";
      return 1;
    }
    return 0;
  }

  std::cout << "TABLE II — Runtime slowdown comparison with DExIE [8] and "
               "FIXER [6]  (CFI queue depth 1, slowdown %)\n\n";
  std::cout << std::left << std::setw(14) << "benchmark" << std::right
            << std::setw(10) << "[8] rep." << std::setw(10) << "[8] model"
            << std::setw(10) << "[6] rep." << std::setw(10) << "[6] model"
            << std::setw(8) << "Opt." << std::setw(8) << "Poll."
            << std::setw(8) << "IRQ" << "\n";

  for (const Row& row : rows) {
    const BenchmarkStats& stats = *row.stats;
    const auto dexie_rep = titan::baselines::dexie_reported(stats.name);
    const auto fixer_rep = titan::baselines::fixer_reported(stats.name);
    std::cout << std::left << std::setw(14) << stats.name << std::right
              << std::setw(10) << fmt_opt(dexie_rep) << std::setw(10)
              << (dexie_rep ? fmt(row.dexie_model) : "n.a.") << std::setw(10)
              << fmt_opt(fixer_rep) << std::setw(10)
              << (fixer_rep ? fmt(row.fixer_model) : "n.a.") << std::setw(8)
              << fmt(row.opt) << std::setw(8) << fmt(row.poll) << std::setw(8)
              << fmt(row.irq) << "\n";
  }

  std::cout << "\n  Paper values for TitanCFI columns (Opt/Poll/IRQ):\n";
  for (const Row& row : rows) {
    const BenchmarkStats& stats = *row.stats;
    const auto show = [](double value) {
      return value <= -2 ? std::string("n.a.")
             : value < 0 ? std::string("-")
                         : fmt(value);
    };
    std::cout << "    " << std::left << std::setw(14) << stats.name
              << show(stats.paper2_opt) << " / " << show(stats.paper2_poll)
              << " / " << show(stats.paper2_irq) << "\n";
  }
  std::cout << "\n  Shape: TitanCFI beats DExIE's ~47-48% on 3 of 4 EmBench "
               "rows; dhrystone remains the outlier, as in the paper.\n";
  std::cout << "  Sweep: " << rows.size() << " points on " << runner.threads()
            << " thread(s) in " << std::fixed << std::setprecision(2)
            << seconds << "s\n";

  if (!cli.json_path.empty()) {
    // Canonical deterministic report: header + rows only (wall-clock and
    // thread count stay on stdout), so a bench_merge of K shards can
    // reconstruct this file byte-for-byte.
    if (!titan::sim::write_document(
            cli.json_path, titan::sim::render_full_document(header, emit_row))) {
      std::cerr << "cannot write " << cli.json_path << "\n";
      return 1;
    }
  }
  return 0;
}

// Regenerates paper Table II: runtime slowdown comparison with DExIE [8] and
// FIXER [6] on the benchmarks both papers report, with the CFI Queue
// constrained to depth 1 ("to emulate the behaviour of stalling the core as
// soon as a single control flow instruction is retired").
//
// Columns: the comparators' reported numbers, our behavioural models of the
// comparators, and TitanCFI's Optimized / Polling / IRQ firmware through the
// trace-driven overhead model on calibrated synthetic traces.
//
// Each benchmark row is an independent simulation point sharded through
// sim::SweepRunner:
//   bench_table2 [--threads=N] [--json=PATH]
#include <chrono>
#include <iomanip>
#include <iostream>

#include "baselines/baselines.hpp"
#include "sim/sweep.hpp"
#include "titancfi/overhead_model.hpp"
#include "workloads/embench.hpp"

namespace {

using titan::workloads::BenchmarkStats;

std::string fmt(double slowdown) {
  if (slowdown < 0.5) {
    return "-";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.0f", slowdown);
  return buffer;
}

std::string fmt_opt(std::optional<double> value) {
  return value.has_value() ? fmt(*value) : "n.a.";
}

double ours(const BenchmarkStats& stats,
            const titan::workloads::TraceParams& params,
            std::uint32_t latency) {
  const auto cf = titan::workloads::synthesize_cf_cycles(stats, params);
  titan::cfi::OverheadConfig config;
  config.queue_depth = 1;  // Table II constraint
  config.check_latency = latency;
  config.transport_cycles = 0;
  return titan::cfi::simulate_cf_cycles(
             cf, static_cast<titan::sim::Cycle>(stats.cycles), config)
      .slowdown_percent();
}

struct Row {
  const BenchmarkStats* stats = nullptr;
  double dexie_model = 0;
  double fixer_model = 0;
  double opt = 0;
  double poll = 0;
  double irq = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const titan::sim::SweepCli cli = titan::sim::parse_sweep_cli(argc, argv);
  titan::sim::SweepOptions sweep_options;
  sweep_options.threads = cli.threads;
  titan::sim::SweepRunner runner(sweep_options);

  std::vector<const BenchmarkStats*> selected;
  for (const BenchmarkStats& stats : titan::workloads::benchmark_table()) {
    if (stats.in_table2()) {
      selected.push_back(&stats);
    }
  }

  const auto start = std::chrono::steady_clock::now();
  const std::vector<Row> rows = runner.run<Row>(
      selected.size(), [&selected](std::size_t index) {
        const BenchmarkStats& stats = *selected[index];
        const auto params = titan::workloads::calibrate(stats);
        const titan::baselines::TraceStats trace_stats{
            static_cast<std::uint64_t>(stats.cycles),
            static_cast<std::uint64_t>(stats.cf_count)};
        titan::baselines::DexieModel dexie;
        titan::baselines::FixerModel fixer;
        Row row;
        row.stats = &stats;
        row.dexie_model = dexie.slowdown_percent(trace_stats);
        row.fixer_model = fixer.slowdown_percent(trace_stats);
        row.opt = ours(stats, params, titan::workloads::kOptimizedLatency);
        row.poll = ours(stats, params, titan::workloads::kPollingLatency);
        row.irq = ours(stats, params, titan::workloads::kIrqLatency);
        return row;
      });
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::cout << "TABLE II — Runtime slowdown comparison with DExIE [8] and "
               "FIXER [6]  (CFI queue depth 1, slowdown %)\n\n";
  std::cout << std::left << std::setw(14) << "benchmark" << std::right
            << std::setw(10) << "[8] rep." << std::setw(10) << "[8] model"
            << std::setw(10) << "[6] rep." << std::setw(10) << "[6] model"
            << std::setw(8) << "Opt." << std::setw(8) << "Poll."
            << std::setw(8) << "IRQ" << "\n";

  for (const Row& row : rows) {
    const BenchmarkStats& stats = *row.stats;
    const auto dexie_rep = titan::baselines::dexie_reported(stats.name);
    const auto fixer_rep = titan::baselines::fixer_reported(stats.name);
    std::cout << std::left << std::setw(14) << stats.name << std::right
              << std::setw(10) << fmt_opt(dexie_rep) << std::setw(10)
              << (dexie_rep ? fmt(row.dexie_model) : "n.a.") << std::setw(10)
              << fmt_opt(fixer_rep) << std::setw(10)
              << (fixer_rep ? fmt(row.fixer_model) : "n.a.") << std::setw(8)
              << fmt(row.opt) << std::setw(8) << fmt(row.poll) << std::setw(8)
              << fmt(row.irq) << "\n";
  }

  std::cout << "\n  Paper values for TitanCFI columns (Opt/Poll/IRQ):\n";
  for (const Row& row : rows) {
    const BenchmarkStats& stats = *row.stats;
    const auto show = [](double value) {
      return value <= -2 ? std::string("n.a.")
             : value < 0 ? std::string("-")
                         : fmt(value);
    };
    std::cout << "    " << std::left << std::setw(14) << stats.name
              << show(stats.paper2_opt) << " / " << show(stats.paper2_poll)
              << " / " << show(stats.paper2_irq) << "\n";
  }
  std::cout << "\n  Shape: TitanCFI beats DExIE's ~47-48% on 3 of 4 EmBench "
               "rows; dhrystone remains the outlier, as in the paper.\n";
  std::cout << "  Sweep: " << rows.size() << " points on " << runner.threads()
            << " thread(s) in " << std::fixed << std::setprecision(2)
            << seconds << "s\n";

  if (!cli.json_path.empty()) {
    titan::sim::JsonWriter json;
    json.begin_object()
        .field("bench", std::string_view{"table2"})
        .field("threads", runner.threads())
        .field("points", static_cast<std::uint64_t>(rows.size()))
        .field("seconds", seconds)
        .begin_array("rows");
    for (const Row& row : rows) {
      json.begin_object()
          .field("name", row.stats->name)
          .field("dexie_model", row.dexie_model)
          .field("fixer_model", row.fixer_model)
          .field("opt", row.opt)
          .field("poll", row.poll)
          .field("irq", row.irq)
          .end_object();
    }
    json.end_array().end_object();
    if (!json.write_file(cli.json_path)) {
      std::cerr << "cannot write " << cli.json_path << "\n";
      return 1;
    }
  }
  return 0;
}

// Regenerates paper Table II: runtime slowdown comparison with DExIE [8] and
// FIXER [6] on the benchmarks both papers report, with the CFI Queue
// constrained to depth 1 ("to emulate the behaviour of stalling the core as
// soon as a single control flow instruction is retired").
//
// Columns: the comparators' reported numbers, our behavioural models of the
// comparators, and TitanCFI's Optimized / Polling / IRQ firmware through the
// trace-driven overhead model on calibrated synthetic traces.
#include <iomanip>
#include <iostream>

#include "baselines/baselines.hpp"
#include "titancfi/overhead_model.hpp"
#include "workloads/embench.hpp"

namespace {

using titan::workloads::BenchmarkStats;

std::string fmt(double slowdown) {
  if (slowdown < 0.5) {
    return "-";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.0f", slowdown);
  return buffer;
}

std::string fmt_opt(std::optional<double> value) {
  return value.has_value() ? fmt(*value) : "n.a.";
}

double ours(const BenchmarkStats& stats,
            const titan::workloads::TraceParams& params,
            std::uint32_t latency) {
  const auto cf = titan::workloads::synthesize_cf_cycles(stats, params);
  titan::cfi::OverheadConfig config;
  config.queue_depth = 1;  // Table II constraint
  config.check_latency = latency;
  config.transport_cycles = 0;
  return titan::cfi::simulate_cf_cycles(
             cf, static_cast<titan::sim::Cycle>(stats.cycles), config)
      .slowdown_percent();
}

}  // namespace

int main() {
  std::cout << "TABLE II — Runtime slowdown comparison with DExIE [8] and "
               "FIXER [6]  (CFI queue depth 1, slowdown %)\n\n";
  std::cout << std::left << std::setw(14) << "benchmark" << std::right
            << std::setw(10) << "[8] rep." << std::setw(10) << "[8] model"
            << std::setw(10) << "[6] rep." << std::setw(10) << "[6] model"
            << std::setw(8) << "Opt." << std::setw(8) << "Poll."
            << std::setw(8) << "IRQ" << "\n";

  titan::baselines::DexieModel dexie;
  titan::baselines::FixerModel fixer;

  for (const BenchmarkStats& stats : titan::workloads::benchmark_table()) {
    if (!stats.in_table2()) {
      continue;
    }
    const auto params = titan::workloads::calibrate(stats);
    const titan::baselines::TraceStats trace_stats{
        static_cast<std::uint64_t>(stats.cycles),
        static_cast<std::uint64_t>(stats.cf_count)};

    const auto dexie_rep = titan::baselines::dexie_reported(stats.name);
    const auto fixer_rep = titan::baselines::fixer_reported(stats.name);
    std::cout << std::left << std::setw(14) << stats.name << std::right
              << std::setw(10) << fmt_opt(dexie_rep) << std::setw(10)
              << (dexie_rep ? fmt(dexie.slowdown_percent(trace_stats)) : "n.a.")
              << std::setw(10) << fmt_opt(fixer_rep) << std::setw(10)
              << (fixer_rep ? fmt(fixer.slowdown_percent(trace_stats)) : "n.a.")
              << std::setw(8)
              << fmt(ours(stats, params, titan::workloads::kOptimizedLatency))
              << std::setw(8)
              << fmt(ours(stats, params, titan::workloads::kPollingLatency))
              << std::setw(8)
              << fmt(ours(stats, params, titan::workloads::kIrqLatency))
              << "\n";
  }

  std::cout << "\n  Paper values for TitanCFI columns (Opt/Poll/IRQ):\n";
  for (const BenchmarkStats& stats : titan::workloads::benchmark_table()) {
    if (!stats.in_table2()) {
      continue;
    }
    const auto show = [](double value) {
      return value <= -2 ? std::string("n.a.")
             : value < 0 ? std::string("-")
                         : fmt(value);
    };
    std::cout << "    " << std::left << std::setw(14) << stats.name
              << show(stats.paper2_opt) << " / " << show(stats.paper2_poll)
              << " / " << show(stats.paper2_irq) << "\n";
  }
  std::cout << "\n  Shape: TitanCFI beats DExIE's ~47-48% on 3 of 4 EmBench "
               "rows; dhrystone remains the outlier, as in the paper.\n";
  return 0;
}

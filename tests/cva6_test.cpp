// CVA6 host-model tests: functional correctness of hand-assembled programs
// against C++ references, plus timing-model invariants.
#include "cva6/core.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "workloads/programs.hpp"

namespace titan::cva6 {
namespace {

using workloads::kProgramBase;

std::uint64_t run_program(const rv::Image& image, Cva6Core** out = nullptr,
                          std::vector<CommitRecord>* trace = nullptr) {
  static sim::Memory memory;  // reused across calls intentionally? no — fresh:
  sim::Memory fresh;
  fresh.load(image.base, image.bytes);
  Cva6Config config;
  config.reset_pc = image.base;
  Cva6Core core(config, fresh);
  core.set_trace_enabled(trace != nullptr);
  core.run_baseline();
  if (trace != nullptr) {
    *trace = core.trace();
  }
  (void)out;
  (void)memory;
  return core.exit_code();
}

// ---- Functional correctness -------------------------------------------------

unsigned fib_ref(unsigned n) { return n < 2 ? n : fib_ref(n - 1) + fib_ref(n - 2); }

TEST(Cva6, FibRecursive) {
  for (const unsigned n : {0u, 1u, 2u, 7u, 10u, 12u}) {
    EXPECT_EQ(run_program(workloads::fib_recursive(n)), fib_ref(n) & 0xFF)
        << "n=" << n;
  }
}

TEST(Cva6, MatmulChecksum) {
  const unsigned n = 6;
  std::vector<std::int64_t> a(n * n);
  std::vector<std::int64_t> b(n * n);
  for (unsigned i = 0; i < n * n; ++i) {
    a[i] = 3 * static_cast<std::int64_t>(i) + 1;
    b[i] = 5 * static_cast<std::int64_t>(i) + 2;
  }
  std::uint64_t checksum = 0;
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (unsigned k = 0; k < n; ++k) {
        acc += a[i * n + k] * b[k * n + j];
      }
      checksum += static_cast<std::uint64_t>(acc);
    }
  }
  EXPECT_EQ(run_program(workloads::matmul(n)), checksum & 0xFF);
}

TEST(Cva6, Crc32MatchesReference) {
  const unsigned len = 64;
  // Reference byte stream: same LCG as the assembly (32-bit wrap-free in
  // 64-bit regs; the emitted byte is bits 16..23).
  std::vector<std::uint8_t> buffer(len);
  std::uint64_t state = 0x12345678;
  for (unsigned i = 0; i < len; ++i) {
    state = state * 1103515245 + 12345;
    buffer[i] = static_cast<std::uint8_t>(state >> 16);
  }
  std::uint32_t crc = 0xFFFFFFFF;
  for (const std::uint8_t byte : buffer) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0xEDB88320 : crc >> 1;
    }
  }
  EXPECT_EQ(run_program(workloads::crc32(len)), crc & 0xFF);
}

TEST(Cva6, QuicksortSortsCorrectly) {
  EXPECT_EQ(run_program(workloads::quicksort(64)), 1u);
  EXPECT_EQ(run_program(workloads::quicksort(3)), 1u);
  EXPECT_EQ(run_program(workloads::quicksort(128)), 1u);
}

TEST(Cva6, CallChainReturnsDepth) {
  EXPECT_EQ(run_program(workloads::call_chain(50)), 50u);
}

TEST(Cva6, IndirectDispatchAccumulates) {
  // iterations 8: selectors 8..1 -> (8&3..1&3)=0,3,2,1,0,3,2,1 ->
  // 1+7+5+3+1+7+5+3 = 32.
  EXPECT_EQ(run_program(workloads::indirect_dispatch(8)), 32u);
}

TEST(Cva6, RopVictimArchitecturallySucceeds) {
  // Without CFI the hijack "works": the program exits with the attacker's
  // code.  (The co-sim tests prove TitanCFI catches it.)
  EXPECT_EQ(run_program(workloads::rop_victim()), 66u);
}

// ---- Trace & timing invariants ------------------------------------------------

TEST(Cva6, TraceIsCycleMonotoneAndComplete) {
  std::vector<CommitRecord> trace;
  run_program(workloads::fib_recursive(8), nullptr, &trace);
  ASSERT_FALSE(trace.empty());
  for (std::size_t i = 1; i < trace.size(); ++i) {
    ASSERT_GE(trace[i].cycle, trace[i - 1].cycle);
  }
  // Dual commit: no cycle hosts more than 2 commits.
  std::size_t run_length = 1;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    run_length = trace[i].cycle == trace[i - 1].cycle ? run_length + 1 : 1;
    ASSERT_LE(run_length, 2u);
  }
}

TEST(Cva6, TraceContainsBalancedCallsAndReturns) {
  std::vector<CommitRecord> trace;
  run_program(workloads::fib_recursive(10), nullptr, &trace);
  std::uint64_t calls = 0;
  std::uint64_t returns = 0;
  for (const CommitRecord& record : trace) {
    if (record.kind == rv::CfKind::kCall) ++calls;
    if (record.kind == rv::CfKind::kReturn) ++returns;
  }
  EXPECT_EQ(calls, returns);
  EXPECT_GT(calls, 100u);  // fib(10) makes 177 calls
}

TEST(Cva6, CallNextAndTargetSemantics) {
  std::vector<CommitRecord> trace;
  run_program(workloads::fib_recursive(5), nullptr, &trace);
  for (const CommitRecord& record : trace) {
    if (record.kind == rv::CfKind::kCall) {
      EXPECT_EQ(record.next_pc, record.pc + 4);  // return site
      EXPECT_NE(record.target, record.next_pc);  // actually jumps
    }
  }
}

TEST(Cva6, CommitStallFreezesRetirement) {
  const rv::Image image = workloads::fib_recursive(5);
  sim::Memory memory;
  memory.load(image.base, image.bytes);
  Cva6Config config;
  config.reset_pc = image.base;
  Cva6Core core(config, memory);

  // Never allow commits: instret grows (issue runs ahead) but the trace
  // stays empty and the ROB saturates.
  for (int i = 0; i < 100; ++i) {
    (void)core.commit_candidates();
    core.retire(0);
    core.tick();
  }
  EXPECT_TRUE(core.trace().empty());
  EXPECT_GT(core.stall_cycles(), 0u);
  EXPECT_FALSE(core.program_done());

  // Release the stall: the program completes normally.
  core.run_baseline();
  EXPECT_EQ(core.exit_code(), 5u);
}

TEST(Cva6, StallDelaysCompletion) {
  const rv::Image image = workloads::fib_recursive(7);
  const auto run_with_stall = [&](unsigned stall_every) {
    sim::Memory memory;
    memory.load(image.base, image.bytes);
    Cva6Config config;
    config.reset_pc = image.base;
    Cva6Core core(config, memory);
    std::uint64_t counter = 0;
    while (!core.program_done()) {
      const auto ready = core.commit_candidates();
      const bool stall = stall_every != 0 && (++counter % stall_every) == 0;
      core.retire(stall ? 0 : static_cast<unsigned>(ready.size()));
      core.tick();
    }
    return core.cycle();
  };
  const auto baseline = run_with_stall(0);
  const auto stalled = run_with_stall(3);
  EXPECT_GT(stalled, baseline);
}

TEST(Cva6, InstructionBudgetGuard) {
  // An infinite loop must hit the runaway guard, not hang.
  rv::Assembler a(rv::Xlen::k64, kProgramBase);
  auto loop = a.here();
  a.j(loop);
  const rv::Image image = a.finish();
  sim::Memory memory;
  memory.load(image.base, image.bytes);
  Cva6Config config;
  config.reset_pc = image.base;
  config.max_instructions = 10'000;
  Cva6Core core(config, memory);
  EXPECT_THROW(core.run_baseline(), std::runtime_error);
}

}  // namespace
}  // namespace titan::cva6

// Commit-trace CSV serialisation tests.
#include "cva6/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "cva6/core.hpp"
#include "workloads/programs.hpp"

namespace titan::cva6 {
namespace {

std::vector<CommitRecord> real_trace() {
  const auto image = workloads::fib_recursive(7);
  sim::Memory memory;
  memory.load(image.base, image.bytes);
  Cva6Config config;
  config.reset_pc = image.base;
  Cva6Core core(config, memory);
  core.run_baseline();
  return core.trace();
}

TEST(TraceIo, RoundTripRealTrace) {
  const auto trace = real_trace();
  ASSERT_FALSE(trace.empty());
  std::stringstream buffer;
  write_trace_csv(buffer, trace);
  const auto reloaded = read_trace_csv(buffer);
  ASSERT_EQ(reloaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    ASSERT_EQ(reloaded[i].cycle, trace[i].cycle) << i;
    ASSERT_EQ(reloaded[i].pc, trace[i].pc) << i;
    ASSERT_EQ(reloaded[i].encoding, trace[i].encoding) << i;
    ASSERT_EQ(reloaded[i].kind, trace[i].kind) << i;
    ASSERT_EQ(reloaded[i].next_pc, trace[i].next_pc) << i;
    ASSERT_EQ(reloaded[i].target, trace[i].target) << i;
  }
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  std::stringstream buffer;
  write_trace_csv(buffer, {});
  EXPECT_TRUE(read_trace_csv(buffer).empty());
}

TEST(TraceIo, KindTokensRoundTrip) {
  for (const auto kind :
       {rv::CfKind::kNone, rv::CfKind::kCall, rv::CfKind::kReturn,
        rv::CfKind::kIndirectJump, rv::CfKind::kDirectJump,
        rv::CfKind::kBranch}) {
    EXPECT_EQ(kind_from_token(kind_token(kind)), kind);
  }
  EXPECT_THROW((void)kind_from_token("bogus"), std::runtime_error);
}

TEST(TraceIo, RejectsWrongHeader) {
  std::stringstream buffer("oops\n1,0x0,0x0,none,0x0,0x0\n");
  EXPECT_THROW(read_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsShortRow) {
  std::stringstream buffer;
  buffer << "cycle,pc,encoding,kind,next_pc,target\n";
  buffer << "1,0x0,0x0,none\n";
  EXPECT_THROW(read_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsBadNumber) {
  std::stringstream buffer;
  buffer << "cycle,pc,encoding,kind,next_pc,target\n";
  buffer << "xyz,0x0,0x0,none,0x0,0x0\n";
  EXPECT_THROW(read_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, SkipsBlankLines) {
  std::stringstream buffer;
  buffer << "cycle,pc,encoding,kind,next_pc,target\n\n";
  buffer << "5,0x80000000,0x8067,return,0x80000004,0x80001000\n\n";
  const auto trace = read_trace_csv(buffer);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].cycle, 5u);
  EXPECT_EQ(trace[0].kind, rv::CfKind::kReturn);
  EXPECT_EQ(trace[0].target, 0x80001000u);
}

}  // namespace
}  // namespace titan::cva6

// Commit-trace CSV serialisation tests.
#include "cva6/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "cva6/core.hpp"
#include "workloads/programs.hpp"

namespace titan::cva6 {
namespace {

std::vector<CommitRecord> real_trace() {
  const auto image = workloads::fib_recursive(7);
  sim::Memory memory;
  memory.load(image.base, image.bytes);
  Cva6Config config;
  config.reset_pc = image.base;
  Cva6Core core(config, memory);
  core.run_baseline();
  return core.trace();
}

TEST(TraceIo, RoundTripRealTrace) {
  const auto trace = real_trace();
  ASSERT_FALSE(trace.empty());
  std::stringstream buffer;
  write_trace_csv(buffer, trace);
  const auto reloaded = read_trace_csv(buffer);
  ASSERT_EQ(reloaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    ASSERT_EQ(reloaded[i].cycle, trace[i].cycle) << i;
    ASSERT_EQ(reloaded[i].pc, trace[i].pc) << i;
    ASSERT_EQ(reloaded[i].encoding, trace[i].encoding) << i;
    ASSERT_EQ(reloaded[i].kind, trace[i].kind) << i;
    ASSERT_EQ(reloaded[i].next_pc, trace[i].next_pc) << i;
    ASSERT_EQ(reloaded[i].target, trace[i].target) << i;
  }
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  std::stringstream buffer;
  write_trace_csv(buffer, {});
  EXPECT_TRUE(read_trace_csv(buffer).empty());
}

TEST(TraceIo, KindTokensRoundTrip) {
  for (const auto kind :
       {rv::CfKind::kNone, rv::CfKind::kCall, rv::CfKind::kReturn,
        rv::CfKind::kIndirectJump, rv::CfKind::kDirectJump,
        rv::CfKind::kBranch}) {
    EXPECT_EQ(kind_from_token(kind_token(kind)), kind);
  }
  EXPECT_THROW((void)kind_from_token("bogus"), std::runtime_error);
}

TEST(TraceIo, RejectsWrongHeader) {
  std::stringstream buffer("oops\n1,0x0,0x0,none,0x0,0x0\n");
  EXPECT_THROW(read_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsShortRow) {
  std::stringstream buffer;
  buffer << "cycle,pc,encoding,kind,next_pc,target\n";
  buffer << "1,0x0,0x0,none\n";
  EXPECT_THROW(read_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, RejectsBadNumber) {
  std::stringstream buffer;
  buffer << "cycle,pc,encoding,kind,next_pc,target\n";
  buffer << "xyz,0x0,0x0,none,0x0,0x0\n";
  EXPECT_THROW(read_trace_csv(buffer), std::runtime_error);
}

TEST(TraceIo, SkipsBlankLines) {
  std::stringstream buffer;
  buffer << "cycle,pc,encoding,kind,next_pc,target\n\n";
  buffer << "5,0x80000000,0x8067,return,0x80000004,0x80001000\n\n";
  const auto trace = read_trace_csv(buffer);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].cycle, 5u);
  EXPECT_EQ(trace[0].kind, rv::CfKind::kReturn);
  EXPECT_EQ(trace[0].target, 0x80001000u);
}

// ---- Streaming writer -------------------------------------------------------

TEST(TraceCsvWriter, StreamingMatchesBatchWriter) {
  const auto trace = real_trace();
  ASSERT_FALSE(trace.empty());
  std::stringstream batch;
  write_trace_csv(batch, trace);

  // Tiny buffer: many intermediate flushes must not change the bytes.
  std::stringstream streamed;
  {
    TraceCsvWriter writer(streamed, 7);
    for (const CommitRecord& record : trace) {
      writer.append(record);
    }
  }  // destructor flushes the tail
  EXPECT_EQ(streamed.str(), batch.str());
}

TEST(TraceCsvWriter, AttachedWriterStreamsFullTraceInBoundedMemory) {
  const auto image = workloads::fib_recursive(7);

  // Reference: unbounded in-core trace.
  const auto reference = real_trace();
  ASSERT_FALSE(reference.empty());

  // Streaming run: the core keeps only a 16-record ring (it drops most
  // records), but the attached writer observes every retirement.
  sim::Memory memory;
  memory.load(image.base, image.bytes);
  Cva6Config config;
  config.reset_pc = image.base;
  Cva6Core core(config, memory);
  core.set_trace_ring_capacity(16);
  std::stringstream streamed;
  TraceCsvWriter writer(streamed, 32);
  writer.attach(core);
  core.run_baseline();
  writer.flush();
  EXPECT_GT(core.trace_dropped(), 0u);  // the ring really was too small
  EXPECT_EQ(writer.records_written(), reference.size());

  const auto reloaded = read_trace_csv(streamed);
  ASSERT_EQ(reloaded.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(reloaded[i].cycle, reference[i].cycle) << i;
    ASSERT_EQ(reloaded[i].pc, reference[i].pc) << i;
    ASSERT_EQ(reloaded[i].encoding, reference[i].encoding) << i;
    ASSERT_EQ(reloaded[i].kind, reference[i].kind) << i;
  }
}

TEST(TraceCsvWriter, ReplacedWriterDoesNotClobberNewSink) {
  const auto image = workloads::fib_recursive(5);
  sim::Memory memory;
  memory.load(image.base, image.bytes);
  Cva6Config config;
  config.reset_pc = image.base;
  Cva6Core core(config, memory);
  std::stringstream first_out;
  std::stringstream second_out;
  TraceCsvWriter first(first_out, 8);
  TraceCsvWriter second(second_out, 8);
  first.attach(core);
  second.attach(core);  // replaces `first` as the core's sink
  first.detach();       // stale detach must leave `second` connected
  core.run_baseline();
  second.flush();
  EXPECT_EQ(first.records_written(), 0u);
  EXPECT_EQ(second.records_written(), core.instret());
}

TEST(TraceCsvWriter, StreamsEvenWhenTraceStorageDisabled) {
  const auto image = workloads::fib_recursive(6);
  sim::Memory memory;
  memory.load(image.base, image.bytes);
  Cva6Config config;
  config.reset_pc = image.base;
  Cva6Core core(config, memory);
  core.set_trace_enabled(false);  // no in-core storage at all
  std::stringstream streamed;
  TraceCsvWriter writer(streamed, 8);
  writer.attach(core);
  core.run_baseline();
  writer.detach();
  writer.flush();
  EXPECT_TRUE(core.trace().empty());
  EXPECT_EQ(writer.records_written(), core.instret());
}

}  // namespace
}  // namespace titan::cva6

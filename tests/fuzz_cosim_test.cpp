// Fuzz-style end-to-end validation of the whole TitanCFI stack:
//  * any well-formed random program must complete with ZERO violations and
//    the same exit code as a bare (no-CFI) run — no false positives;
//  * any random program with an injected return-address overwrite must be
//    caught at a return — no false negatives;
//  * both properties survive randomized benign fault plans (drops,
//    duplicates, stalls, corrupt MACs, forced overflows) when every
//    degradation mechanism is armed — on both co-simulation engines;
// across random call graphs, both firmware variants, and queue depths.
#include <gtest/gtest.h>

#include "api/api.hpp"
#include "attacks/attack.hpp"
#include "cva6/core.hpp"
#include "firmware/builder.hpp"
#include "sim/fault.hpp"
#include "titancfi/soc_top.hpp"
#include "workloads/programs.hpp"

namespace titan::cfi {
namespace {

std::uint64_t bare_exit(const rv::Image& image) {
  sim::Memory memory;
  memory.load(image.base, image.bytes);
  // Strict mode: a wild read of unmapped memory (which the permissive mode
  // silently satisfies with zero) aborts the run instead of being masked.
  // Well-formed generated programs never read memory they did not write.
  memory.set_strict_unmapped(true);
  cva6::Cva6Config config;
  config.reset_pc = image.base;
  cva6::Cva6Core core(config, memory);
  core.set_trace_enabled(false);
  core.run_baseline();
  EXPECT_EQ(memory.unmapped_reads(), 0u);
  return core.exit_code();
}

struct FuzzCase {
  std::uint64_t seed;
  fw::FwVariant variant;
  std::size_t queue_depth;
};

class CosimFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(CosimFuzzTest, CleanProgramsHaveNoFalsePositives) {
  const FuzzCase fuzz = GetParam();
  const rv::Image program =
      workloads::random_callgraph(fuzz.seed, 10, /*inject_rop=*/false);
  fw::FirmwareConfig fw_config;
  fw_config.variant = fuzz.variant;
  SocConfig config;
  config.queue_depth = fuzz.queue_depth;
  SocTop soc(config, program, fw::build_firmware(fw_config));
  const SocRunResult result = soc.run();
  EXPECT_FALSE(result.cfi_fault);
  EXPECT_EQ(result.violations, 0u);
  EXPECT_EQ(result.exit_code, bare_exit(program));
  EXPECT_GT(result.cf_logs, 0u);
  // No component of the CFI machinery may have issued stray host-memory
  // reads: the counter that used to be silently masked by read8's zero
  // return must stay at zero for clean runs.
  EXPECT_EQ(soc.host_memory().unmapped_reads(), 0u);
}

TEST_P(CosimFuzzTest, InjectedRopIsAlwaysCaught) {
  const FuzzCase fuzz = GetParam();
  const rv::Image program =
      workloads::random_callgraph(fuzz.seed, 10, /*inject_rop=*/true);
  // Sanity: architecturally, the hijack "succeeds" without CFI.
  ASSERT_EQ(bare_exit(program), 66u) << "seed " << fuzz.seed;

  fw::FirmwareConfig fw_config;
  fw_config.variant = fuzz.variant;
  SocConfig config;
  config.queue_depth = fuzz.queue_depth;
  SocTop soc(config, program, fw::build_firmware(fw_config));
  const SocRunResult result = soc.run();
  EXPECT_TRUE(result.cfi_fault) << "seed " << fuzz.seed;
  EXPECT_EQ(result.fault_log.classify(), rv::CfKind::kReturn);
  EXPECT_EQ(result.exit_code, 0xCF1u);  // trapped, not the attacker's 66
}

// ---- Fault-plan fuzz --------------------------------------------------------
//
// A benign-ized random fault plan: every site may appear, but parameters are
// clamped so that an armed degradation stack can always recover.  At most one
// spec per site (stacked MAC corruptions on consecutive ordinals could
// legitimately exhaust the re-request budget, which is a halt, not a recovery)
// and mem-flip syndromes are forced even (single-bit, SECDED-correctable).
sim::FaultPlan benign_plan(std::uint64_t seed) {
  const sim::FaultPlan raw = sim::FaultPlan::random(seed, 6);
  sim::FaultPlan plan;
  bool seen[sim::kFaultSiteCount] = {};
  for (sim::FaultSpec spec : raw.faults) {
    const auto site = static_cast<std::size_t>(spec.site);
    if (seen[site]) {
      continue;
    }
    seen[site] = true;
    if (spec.site == sim::FaultSite::kMemBitFlip) {
      spec.param &= ~std::uint64_t{1};
    }
    plan.faults.push_back(spec);
  }
  return plan;
}

api::Scenario faulted_scenario(const FuzzCase& fuzz, bool inject_rop) {
  return api::ScenarioBuilder()
      .name("cosim_fault_fuzz")
      .workload(api::Workload::random_callgraph(fuzz.seed, 10, inject_rop))
      .firmware(fuzz.variant == fw::FwVariant::kIrq ? api::Firmware::kIrq
                                                    : api::Firmware::kPolling)
      .queue_depth(fuzz.queue_depth)
      .drain_burst(4)
      .batch_mac(true)
      .mac_rerequest(true)
      // Watchdog window above the ~600-cycle healthy round trip, so retries
      // happen only for genuinely dropped doorbells.
      .doorbell_retry(2048, 4)
      .overflow_policy(api::OverflowPolicy::kBackPressure)
      .faults(benign_plan(fuzz.seed * 0x9E37'79B9'7F4A'7C15ull + 1))
      .build();
}

TEST_P(CosimFuzzTest, BenignFaultsNeverCauseFalsePositives) {
  const FuzzCase fuzz = GetParam();
  const rv::Image program =
      workloads::random_callgraph(fuzz.seed, 10, /*inject_rop=*/false);
  const api::Scenario scenario = faulted_scenario(fuzz, /*inject_rop=*/false);
  const api::RunReport lock =
      api::run_scenario(scenario.with_engine(api::Engine::kLockStep));
  const api::RunReport event =
      api::run_scenario(scenario.with_engine(api::Engine::kEventDriven));
  // Degradation must be transparent: same exit code as a bare run, zero
  // violations, no CFI fault — the plan is absorbed, not surfaced.
  EXPECT_FALSE(lock.cfi_fault) << scenario.serialize();
  EXPECT_EQ(lock.violations, 0u);
  EXPECT_EQ(lock.exit_code, bare_exit(program));
  // Whatever the plan actually hit must have been detected or harmless:
  // a benign plan never produces false negatives.
  EXPECT_EQ(lock.resilience.false_negatives, 0u);
  // And both engines must agree on the whole report, resilience included.
  EXPECT_EQ(lock, event) << scenario.serialize();
}

TEST_P(CosimFuzzTest, RopIsStillCaughtUnderBenignFaults) {
  const FuzzCase fuzz = GetParam();
  const rv::Image program =
      workloads::random_callgraph(fuzz.seed, 10, /*inject_rop=*/true);
  ASSERT_EQ(bare_exit(program), 66u) << "seed " << fuzz.seed;
  const api::Scenario scenario = faulted_scenario(fuzz, /*inject_rop=*/true);
  const api::RunReport lock =
      api::run_scenario(scenario.with_engine(api::Engine::kLockStep));
  const api::RunReport event =
      api::run_scenario(scenario.with_engine(api::Engine::kEventDriven));
  // Dropped doorbells, duplicate pulses, RoT stalls, corrupt MACs, forced
  // back-pressure bursts: none of it may mask the hijacked return.
  EXPECT_TRUE(lock.cfi_fault) << scenario.serialize();
  EXPECT_EQ(lock.fault_log.classify(), rv::CfKind::kReturn);
  EXPECT_EQ(lock.exit_code, 0xCF1u);
  EXPECT_EQ(lock, event) << scenario.serialize();
}

// ---- Attack-corpus fuzz -----------------------------------------------------

TEST_P(CosimFuzzTest, RandomAttackPlansAreCaughtWithFullPolicy) {
  const FuzzCase fuzz = GetParam();
  const attacks::AttackPlan plan = attacks::AttackPlan::random(fuzz.seed);
  // Architecturally the attack must succeed on a bare core — otherwise the
  // scenario below would not be testing detection of anything.
  ASSERT_EQ(bare_exit(attacks::generate(plan).image), 66u) << plan.serialize();
  const api::Scenario scenario =
      api::ScenarioBuilder()
          .name("cosim_attack_fuzz")
          .attack(plan)
          .firmware(fuzz.variant == fw::FwVariant::kIrq
                        ? api::Firmware::kIrq
                        : api::Firmware::kPolling)
          .queue_depth(fuzz.queue_depth)
          // Both policy halves armed: the shadow stack covers the backward-
          // edge kinds, the jump table the forward-edge ones — so under the
          // lossless back-pressure policy EVERY random plan must be caught.
          .jump_table(true)
          .build();
  const api::RunReport lock =
      api::run_scenario(scenario.with_engine(api::Engine::kLockStep));
  const api::RunReport event =
      api::run_scenario(scenario.with_engine(api::Engine::kEventDriven));
  EXPECT_TRUE(lock.cfi_fault) << scenario.serialize();
  EXPECT_TRUE(lock.attack.detected) << scenario.serialize();
  EXPECT_EQ(lock.attack.false_negatives, 0u) << scenario.serialize();
  EXPECT_GT(lock.attack.detection_latency, 0u);
  EXPECT_EQ(lock.exit_code, 0xCF1u);  // trapped, not the attacker's 66
  EXPECT_EQ(lock, event) << scenario.serialize();
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    cases.push_back({seed, fw::FwVariant::kIrq, 8});
    cases.push_back({seed, fw::FwVariant::kPolling, seed % 2 ? 1u : 4u});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CosimFuzzTest, ::testing::ValuesIn(fuzz_cases()),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.variant == fw::FwVariant::kIrq ? "_irq" : "_poll") +
             "_q" + std::to_string(info.param.queue_depth);
    });

}  // namespace
}  // namespace titan::cfi

// Fuzz-style end-to-end validation of the whole TitanCFI stack:
//  * any well-formed random program must complete with ZERO violations and
//    the same exit code as a bare (no-CFI) run — no false positives;
//  * any random program with an injected return-address overwrite must be
//    caught at a return — no false negatives;
// across random call graphs, both firmware variants, and queue depths.
#include <gtest/gtest.h>

#include "cva6/core.hpp"
#include "firmware/builder.hpp"
#include "titancfi/soc_top.hpp"
#include "workloads/programs.hpp"

namespace titan::cfi {
namespace {

std::uint64_t bare_exit(const rv::Image& image) {
  sim::Memory memory;
  memory.load(image.base, image.bytes);
  // Strict mode: a wild read of unmapped memory (which the permissive mode
  // silently satisfies with zero) aborts the run instead of being masked.
  // Well-formed generated programs never read memory they did not write.
  memory.set_strict_unmapped(true);
  cva6::Cva6Config config;
  config.reset_pc = image.base;
  cva6::Cva6Core core(config, memory);
  core.set_trace_enabled(false);
  core.run_baseline();
  EXPECT_EQ(memory.unmapped_reads(), 0u);
  return core.exit_code();
}

struct FuzzCase {
  std::uint64_t seed;
  fw::FwVariant variant;
  std::size_t queue_depth;
};

class CosimFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(CosimFuzzTest, CleanProgramsHaveNoFalsePositives) {
  const FuzzCase fuzz = GetParam();
  const rv::Image program =
      workloads::random_callgraph(fuzz.seed, 10, /*inject_rop=*/false);
  fw::FirmwareConfig fw_config;
  fw_config.variant = fuzz.variant;
  SocConfig config;
  config.queue_depth = fuzz.queue_depth;
  SocTop soc(config, program, fw::build_firmware(fw_config));
  const SocRunResult result = soc.run();
  EXPECT_FALSE(result.cfi_fault);
  EXPECT_EQ(result.violations, 0u);
  EXPECT_EQ(result.exit_code, bare_exit(program));
  EXPECT_GT(result.cf_logs, 0u);
  // No component of the CFI machinery may have issued stray host-memory
  // reads: the counter that used to be silently masked by read8's zero
  // return must stay at zero for clean runs.
  EXPECT_EQ(soc.host_memory().unmapped_reads(), 0u);
}

TEST_P(CosimFuzzTest, InjectedRopIsAlwaysCaught) {
  const FuzzCase fuzz = GetParam();
  const rv::Image program =
      workloads::random_callgraph(fuzz.seed, 10, /*inject_rop=*/true);
  // Sanity: architecturally, the hijack "succeeds" without CFI.
  ASSERT_EQ(bare_exit(program), 66u) << "seed " << fuzz.seed;

  fw::FirmwareConfig fw_config;
  fw_config.variant = fuzz.variant;
  SocConfig config;
  config.queue_depth = fuzz.queue_depth;
  SocTop soc(config, program, fw::build_firmware(fw_config));
  const SocRunResult result = soc.run();
  EXPECT_TRUE(result.cfi_fault) << "seed " << fuzz.seed;
  EXPECT_EQ(result.fault_log.classify(), rv::CfKind::kReturn);
  EXPECT_EQ(result.exit_code, 0xCF1u);  // trapped, not the attacker's 66
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    cases.push_back({seed, fw::FwVariant::kIrq, 8});
    cases.push_back({seed, fw::FwVariant::kPolling, seed % 2 ? 1u : 4u});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CosimFuzzTest, ::testing::ValuesIn(fuzz_cases()),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.variant == fw::FwVariant::kIrq ? "_irq" : "_poll") +
             "_q" + std::to_string(info.param.queue_depth);
    });

}  // namespace
}  // namespace titan::cfi

// Attack-corpus validation: the plan grammar, the generator's determinism,
// the scenario-fingerprint wiring, per-kind detection semantics under every
// overflow policy, and registry-wide engine equivalence of the scoring.
//
// Suite names all start with AttackCorpus so CI's TSan sweep can select them
// with a single --gtest_filter pattern.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "api/api.hpp"
#include "attacks/attack.hpp"
#include "cva6/core.hpp"
#include "sim/memory.hpp"

namespace titan::attacks {
namespace {

// ---- Grammar ----------------------------------------------------------------

TEST(AttackCorpusPlan, SerializeParseRoundTrip) {
  const AttackPlan plans[] = {
      {AttackKind::kRop, 0, 1, 0},        // "rop@0#1"
      {AttackKind::kRop, 3, 12, 7},       // "rop@3#12,7"
      {AttackKind::kJop, 1, 0, 0},        // "jop@1" (param elided at 0,0)
      {AttackKind::kJop, 1, 3, 9},        // "jop@1#3,9"
      {AttackKind::kPivot, 5, 16, 0},     // "pivot@5#16"
      {AttackKind::kRetToReg, 4, 0, 11},  // "ret2reg@4#0,11"
      {AttackKind::kPartialOverwrite, 2, 3, 1},  // "partial@2#3,1"
  };
  for (const AttackPlan& plan : plans) {
    const std::string text = plan.serialize();
    EXPECT_EQ(AttackPlan::parse(text), plan) << text;
    EXPECT_EQ(AttackPlan::parse(text).serialize(), text);
  }
  // The elision rules spelled out.
  EXPECT_EQ((AttackPlan{AttackKind::kJop, 1, 0, 0}).serialize(), "jop@1");
  EXPECT_EQ((AttackPlan{AttackKind::kRop, 0, 1, 0}).serialize(), "rop@0#1");
  EXPECT_EQ((AttackPlan{AttackKind::kRetToReg, 4, 0, 11}).serialize(),
            "ret2reg@4#0,11");
}

TEST(AttackCorpusPlan, RejectionMatrix) {
  const char* malformed[] = {
      "",                // no '@'
      "rop",             // no '@'
      "pop@0#1",         // unknown kind
      "rop@x#1",         // bad site number
      "rop@0#z",         // bad param number
      "rop@0#1,x",       // bad seed number
      "rop@6#1",         // site out of range (6 scaffold functions)
      "rop@0#0",         // chain length below 1
      "rop@0#17",        // chain length above 16
      "pivot@0#0",       // chain length below 1
      "jop@0#4",         // slot above 3
      "ret2reg@0#2",     // ret2reg takes no param
      "partial@0#0",     // zero overwritten bytes
      "partial@0#4",     // more bytes than a partial overwrite
  };
  for (const char* text : malformed) {
    EXPECT_THROW((void)AttackPlan::parse(text), std::invalid_argument) << text;
  }
}

TEST(AttackCorpusPlan, RandomIsDeterministicAndDiverse) {
  std::set<std::string> fingerprints;
  std::set<AttackKind> kinds;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const AttackPlan plan = AttackPlan::random(seed);
    EXPECT_EQ(plan, AttackPlan::random(seed));
    EXPECT_NO_THROW(validate(plan));
    EXPECT_EQ(plan.seed, seed);  // distinct seeds → distinct fingerprints
    fingerprints.insert(plan.serialize());
    kinds.insert(plan.kind);
  }
  EXPECT_EQ(fingerprints.size(), 40u);
  EXPECT_EQ(kinds.size(), kAttackKindCount);
}

// ---- Generator --------------------------------------------------------------

TEST(AttackCorpusGenerate, ImagesAreDeterministicAndSeedSensitive) {
  const AttackPlan plan = AttackPlan::parse("rop@2#5,3");
  const AttackImage first = generate(plan);
  const AttackImage second = generate(plan);
  EXPECT_EQ(first.image.bytes, second.image.bytes);
  EXPECT_EQ(first.hijack_pcs, second.hijack_pcs);
  EXPECT_EQ(first.legit_targets, second.legit_targets);
  ASSERT_FALSE(first.hijack_pcs.empty());
  EXPECT_TRUE(std::is_sorted(first.hijack_pcs.begin(),
                             first.hijack_pcs.end()));

  AttackPlan reseeded = plan;
  reseeded.seed = 4;
  EXPECT_NE(generate(reseeded).image.bytes, first.image.bytes);
}

std::uint64_t bare_exit(const rv::Image& image) {
  sim::Memory memory;
  memory.load(image.base, image.bytes);
  cva6::Cva6Config config;
  config.reset_pc = image.base;
  cva6::Cva6Core core(config, memory);
  core.set_trace_enabled(false);
  core.run_baseline();
  return core.exit_code();
}

TEST(AttackCorpusGenerate, EveryKindSucceedsArchitecturally) {
  // Without CFI, every attack's gadget runs and exits with the attacker's 66
  // — that architectural "success" is what makes detection worth scoring.
  const char* plans[] = {"rop@0#4,1", "jop@1#2,1", "pivot@1#3,1",
                         "ret2reg@4#0,1", "partial@2#2,1"};
  for (const char* text : plans) {
    EXPECT_EQ(bare_exit(generate(AttackPlan::parse(text)).image), 66u) << text;
  }
}

// ---- Scenario fingerprint wiring --------------------------------------------

TEST(AttackCorpusScenario, FingerprintRoundTrips) {
  const api::Scenario scenario = api::ScenarioBuilder()
                                     .name("corpus/rt")
                                     .attack(AttackPlan::parse("jop@1#3,9"))
                                     .jump_table(true)
                                     .queue_depth(4)
                                     .build();
  const std::string text = scenario.serialize();
  EXPECT_NE(text.find(";workload=attack;"), std::string::npos) << text;
  EXPECT_NE(text.find(";attack=jop@1#3,9}"), std::string::npos) << text;
  EXPECT_EQ(api::ScenarioBuilder::from_serialized(text).serialize(), text);
  ASSERT_TRUE(scenario.attack().has_value());
  EXPECT_EQ(scenario.attack()->serialize(), "jop@1#3,9");
  // The jump table is provisioned from the generated image's legit targets.
  EXPECT_FALSE(scenario.soc_config().jump_table.empty());
  EXPECT_NE(scenario.soc_config().jump_table_base, 0u);
  EXPECT_FALSE(scenario.soc_config().attack_edges.empty());
}

TEST(AttackCorpusScenario, RejectsBrokenCombinations) {
  // A workload and an attack plan are mutually exclusive.
  EXPECT_THROW((void)api::ScenarioBuilder()
                   .name("corpus/both")
                   .workload(api::Workload::fib(8))
                   .attack(AttackPlan::parse("rop@0#1"))
                   .build(),
               api::ScenarioError);
  // build() re-validates the plan (a hand-built out-of-range plan).
  EXPECT_THROW((void)api::ScenarioBuilder()
                   .name("corpus/badplan")
                   .attack(AttackPlan{AttackKind::kRop, 0, 99, 0})
                   .build(),
               api::ScenarioError);
  // The sentinel and the plan key must pair up in the wire grammar.
  const std::string base = api::ScenarioBuilder()
                               .name("corpus/pair")
                               .attack(AttackPlan::parse("rop@0#1"))
                               .build()
                               .serialize();
  std::string orphan_sentinel = base;
  orphan_sentinel.replace(orphan_sentinel.find(";attack=rop@0#1"),
                          std::string(";attack=rop@0#1").size(), "");
  EXPECT_THROW((void)api::ScenarioBuilder::from_serialized(orphan_sentinel),
               api::ScenarioError);
  std::string orphan_plan = base;
  orphan_plan.replace(orphan_plan.find("workload=attack"),
                      std::string("workload=attack").size(),
                      "workload=fib(8)");
  EXPECT_THROW((void)api::ScenarioBuilder::from_serialized(orphan_plan),
               api::ScenarioError);
}

// ---- Detection semantics ----------------------------------------------------

api::RunReport run_attack(const char* plan, api::OverflowPolicy policy,
                          std::size_t queue_depth, bool jump_table) {
  return api::run_scenario(api::ScenarioBuilder()
                               .name("corpus/detect")
                               .attack(AttackPlan::parse(plan))
                               .overflow_policy(policy)
                               .queue_depth(queue_depth)
                               .jump_table(jump_table)
                               .build());
}

TEST(AttackCorpusDetection, BackwardEdgeKindsUnderEachOverflowPolicy) {
  for (const char* plan : {"rop@0#8,1", "pivot@1#4,2", "partial@2#2,3"}) {
    // Lossless back-pressure: the first hijacked return to reach the RoT is
    // flagged, with a measured latency and a stream ordinal.
    const api::RunReport bp =
        run_attack(plan, api::OverflowPolicy::kBackPressure, 8, false);
    EXPECT_TRUE(bp.attack.detected) << plan;
    EXPECT_TRUE(bp.cfi_fault) << plan;
    EXPECT_GT(bp.attack.detection_latency, 0u) << plan;
    EXPECT_GT(bp.attack.first_fault_ordinal, 0u) << plan;
    EXPECT_EQ(bp.attack.false_negatives, 0u) << plan;
    EXPECT_EQ(bp.exit_code, 0xCF1u) << plan;

    // Fail-closed halts rather than miss a check: possibly before any
    // hijacked edge retires, but never with a false negative.
    const api::RunReport fc =
        run_attack(plan, api::OverflowPolicy::kFailClosed, 2, false);
    EXPECT_TRUE(fc.cfi_fault) << plan;
    EXPECT_EQ(fc.attack.false_negatives, 0u) << plan;

    // Fail-open drops logs under pressure: any hijacked edge that slips
    // through unchecked must be SCORED, not silent.
    const api::RunReport fo =
        run_attack(plan, api::OverflowPolicy::kFailOpen, 2, false);
    EXPECT_GT(fo.attack.hijacks_retired, 0u) << plan;
    EXPECT_TRUE(fo.attack.detected || fo.attack.false_negatives > 0) << plan;
  }
}

TEST(AttackCorpusDetection, ForwardEdgeKindsNeedTheJumpTable) {
  for (const char* plan : {"jop@1#2,5", "ret2reg@4#0,4"}) {
    // Shadow-stack-only: the corrupted forward edge retires unflagged — and
    // the tracker reports it as a false negative instead of staying silent.
    const api::RunReport ss =
        run_attack(plan, api::OverflowPolicy::kBackPressure, 8, false);
    EXPECT_FALSE(ss.attack.detected) << plan;
    EXPECT_FALSE(ss.cfi_fault) << plan;
    EXPECT_GE(ss.attack.false_negatives, 1u) << plan;
    EXPECT_EQ(ss.exit_code, 66u) << plan;  // the attack actually won

    // Armed jump table: the same plan is flagged at the hijacked edge.
    const api::RunReport jt =
        run_attack(plan, api::OverflowPolicy::kBackPressure, 8, true);
    EXPECT_TRUE(jt.attack.detected) << plan;
    EXPECT_TRUE(jt.cfi_fault) << plan;
    EXPECT_EQ(jt.attack.false_negatives, 0u) << plan;
    EXPECT_EQ(jt.exit_code, 0xCF1u) << plan;
  }
}

// ---- Registry matrix --------------------------------------------------------

TEST(AttackCorpusRegistry, MatrixIsEngineInvariantAndScored) {
  const api::ScenarioSet matrix =
      api::ScenarioRegistry::global().query("attack_matrix", "attack_matrix");
  ASSERT_GE(matrix.size(), 24u);
  std::size_t detections = 0;
  std::size_t scored_false_negatives = 0;
  for (const api::Scenario& scenario : matrix) {
    ASSERT_TRUE(scenario.attack().has_value()) << scenario.name();
    // Every matrix point's fingerprint is wire-round-trippable.
    EXPECT_EQ(api::ScenarioBuilder::from_serialized(scenario.serialize())
                  .serialize(),
              scenario.serialize());
    const api::RunReport lock =
        api::run_scenario(scenario.with_engine(api::Engine::kLockStep));
    const api::RunReport event =
        api::run_scenario(scenario.with_engine(api::Engine::kEventDriven));
    EXPECT_EQ(lock, event) << scenario.name();
    // No silent outcome anywhere in the matrix: every scenario either
    // detects, scores a false negative, or fails closed pre-retirement.
    EXPECT_TRUE(event.attack.detected || event.attack.false_negatives > 0 ||
                (event.cfi_fault && event.attack.hijacks_retired == 0))
        << scenario.name();
    detections += event.attack.detected ? 1 : 0;
    scored_false_negatives += event.attack.false_negatives > 0 ? 1 : 0;
  }
  EXPECT_GT(detections, 0u);
  EXPECT_GT(scored_false_negatives, 0u);
}

}  // namespace
}  // namespace titan::attacks

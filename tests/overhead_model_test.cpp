// Trace-driven overhead model tests: closed-form checks in the saturated
// regime (where the paper's own Table III numbers pin the answer), stall-free
// regimes, and monotonicity properties in latency and queue depth.
#include "titancfi/overhead_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "workloads/embench.hpp"

namespace titan::cfi {
namespace {

OverheadConfig config_for(std::uint32_t latency, std::size_t depth) {
  OverheadConfig config;
  config.check_latency = latency;
  config.queue_depth = depth;
  config.transport_cycles = 0;
  return config;
}

std::vector<Cycle> uniform_cfs(std::uint64_t count, Cycle gap, Cycle start = 0) {
  std::vector<Cycle> cycles(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    cycles[i] = start + i * gap;
  }
  return cycles;
}

TEST(OverheadModel, NoCfNoSlowdown) {
  const auto result = simulate_cf_cycles({}, 1000, config_for(267, 8));
  EXPECT_EQ(result.cfi_cycles, 1000u);
  EXPECT_DOUBLE_EQ(result.slowdown_percent(), 0.0);
}

TEST(OverheadModel, SparseCfsNeverStall) {
  // Gap far above the check latency: the queue never backs up.
  const auto cfs = uniform_cfs(100, 10'000);
  const auto result = simulate_cf_cycles(cfs, 1'000'000, config_for(267, 8));
  EXPECT_EQ(result.stall_cycles, 0u);
  EXPECT_DOUBLE_EQ(result.slowdown_percent(), 0.0);
}

TEST(OverheadModel, SaturatedRegimeMatchesClosedForm) {
  // When CF gaps are far below the service time, total time approaches
  // N * L regardless of queue depth: slowdown -> 100 * (N*L/C - 1).
  const std::uint64_t n = 10'000;
  const Cycle gap = 6;
  const Cycle baseline = n * gap;
  const auto cfs = uniform_cfs(n, gap);
  for (const std::size_t depth : {1u, 8u, 64u}) {
    const auto result = simulate_cf_cycles(cfs, baseline, config_for(267, depth));
    const double expected = 100.0 * (267.0 / gap - 1.0);
    EXPECT_NEAR(result.slowdown_percent(), expected, expected * 0.02)
        << "depth=" << depth;
  }
}

TEST(OverheadModel, ReproducesPaperMmRow) {
  // Table III, mm: 1.41e6 cycles, 2.33e5 CF -> 1108/1752/4311 % at depth 8.
  const auto* mm = workloads::find_benchmark("mm");
  ASSERT_NE(mm, nullptr);
  const auto n = static_cast<std::uint64_t>(mm->cf_count);
  const auto baseline = static_cast<Cycle>(mm->cycles);
  const Cycle gap = baseline / n;  // mm is CF-saturated throughout
  const auto cfs = uniform_cfs(n, gap);

  const double irq =
      simulate_cf_cycles(cfs, baseline, config_for(267, 8)).slowdown_percent();
  const double poll =
      simulate_cf_cycles(cfs, baseline, config_for(112, 8)).slowdown_percent();
  const double opt =
      simulate_cf_cycles(cfs, baseline, config_for(73, 8)).slowdown_percent();
  EXPECT_NEAR(irq, 4311, 4311 * 0.05);
  EXPECT_NEAR(poll, 1752, 1752 * 0.05);
  EXPECT_NEAR(opt, 1108, 1108 * 0.05);
}

TEST(OverheadModel, ReproducesPaperDhrystoneRow) {
  const auto* dhry = workloads::find_benchmark("dhrystone");
  ASSERT_NE(dhry, nullptr);
  const auto n = static_cast<std::uint64_t>(dhry->cf_count);
  const auto baseline = static_cast<Cycle>(dhry->cycles);
  const auto cfs = uniform_cfs(n, baseline / n);
  const double irq =
      simulate_cf_cycles(cfs, baseline, config_for(267, 8)).slowdown_percent();
  EXPECT_NEAR(irq, 1215, 1215 * 0.06);
}

TEST(OverheadModel, MonotoneInCheckLatency) {
  const auto cfs = uniform_cfs(1000, 50);
  double previous = -1;
  for (const std::uint32_t latency : {10u, 40u, 73u, 112u, 267u, 500u}) {
    const double slowdown =
        simulate_cf_cycles(cfs, 50'000, config_for(latency, 8))
            .slowdown_percent();
    EXPECT_GE(slowdown, previous);
    previous = slowdown;
  }
}

TEST(OverheadModel, NonIncreasingInQueueDepth) {
  // Bursty arrivals: deeper queues absorb bursts, never hurt.
  std::vector<Cycle> cfs;
  for (int burst = 0; burst < 50; ++burst) {
    for (int j = 0; j < 6; ++j) {
      cfs.push_back(burst * 4000 + j * 8);
    }
  }
  double previous = 1e18;
  for (const std::size_t depth : {1u, 2u, 4u, 8u, 16u, 64u}) {
    const double slowdown =
        simulate_cf_cycles(cfs, 200'000, config_for(267, depth))
            .slowdown_percent();
    EXPECT_LE(slowdown, previous + 1e-9) << "depth=" << depth;
    previous = slowdown;
  }
}

TEST(OverheadModel, DeepQueueAbsorbsShortBursts) {
  // A single burst of 8 with long quiet time after: depth 8 absorbs it.
  std::vector<Cycle> cfs;
  for (int j = 0; j < 8; ++j) {
    cfs.push_back(100 + j);
  }
  const auto result = simulate_cf_cycles(cfs, 100'000, config_for(267, 8));
  // Only the single-write-port constraint applies (1 extra cycle per CF
  // beyond the first when they'd land in the same shifted cycle).
  EXPECT_LE(result.stall_cycles, 8u);
}

TEST(OverheadModel, Depth1SerialisesBursts) {
  std::vector<Cycle> cfs;
  for (int j = 0; j < 8; ++j) {
    cfs.push_back(100 + j * 2);
  }
  const auto result = simulate_cf_cycles(cfs, 100'000, config_for(267, 1));
  // With depth 1, one log can wait while one is in service: every CF beyond
  // the second stalls behind a full check, ~6 * 267 minus the arrival gaps.
  EXPECT_GT(result.stall_cycles, 6u * 267u - 30u);
}

TEST(OverheadModel, DualCommitSameCycleSlips) {
  // Two CFs at the same cycle: the second must slip >= 1 (single push port).
  const std::vector<Cycle> cfs = {1000, 1000};
  const auto result = simulate_cf_cycles(cfs, 10'000, config_for(10, 8));
  EXPECT_GE(result.stall_cycles, 1u);
  EXPECT_GE(result.stall_events, 1u);
}

TEST(OverheadModel, DrainModeExtendsRun) {
  const std::vector<Cycle> cfs = {990};
  OverheadConfig config = config_for(267, 8);
  const auto no_drain = simulate_cf_cycles(cfs, 1000, config);
  config.drain_at_end = true;
  const auto drained = simulate_cf_cycles(cfs, 1000, config);
  EXPECT_EQ(no_drain.cfi_cycles, 1000u);
  EXPECT_GE(drained.cfi_cycles, 990u + 267u);
}

TEST(OverheadModel, TransportAddsToServiceTime) {
  const auto cfs = uniform_cfs(1000, 50);
  OverheadConfig with_transport = config_for(100, 1);
  with_transport.transport_cycles = 20;
  const auto base =
      simulate_cf_cycles(cfs, 50'000, config_for(100, 1)).slowdown_percent();
  const auto heavier =
      simulate_cf_cycles(cfs, 50'000, with_transport).slowdown_percent();
  EXPECT_GT(heavier, base);
}

TEST(OverheadModel, StallShiftsDownstreamUniformly) {
  // Two far-apart saturated phases: the delay accumulated in phase one
  // persists (commit-stage stalls shift the whole program).
  std::vector<Cycle> cfs;
  for (int j = 0; j < 100; ++j) cfs.push_back(j * 5);
  cfs.push_back(50'000);  // lone CF far later: no further stall
  const auto result = simulate_cf_cycles(cfs, 60'000, config_for(267, 1));
  const auto phase1 = simulate_cf_cycles(
      std::vector<Cycle>(cfs.begin(), cfs.end() - 1), 60'000,
      config_for(267, 1));
  EXPECT_EQ(result.stall_cycles, phase1.stall_cycles);
}

}  // namespace
}  // namespace titan::cfi

// The versioned wire envelope (api/wire.hpp), the JSON value parser it sits
// on (sim/json.hpp), and the versioned report schema (api/report_schema.hpp).
#include <string>

#include <gtest/gtest.h>

#include "api/registry.hpp"
#include "api/report_schema.hpp"
#include "api/run.hpp"
#include "api/wire.hpp"
#include "sim/json.hpp"
#include "sim/sweep.hpp"

namespace titan {
namespace {

// ---- sim::JsonValue ---------------------------------------------------------

TEST(JsonValue, ParsesScalarsArraysObjects) {
  const sim::JsonValue v = sim::JsonValue::parse(
      R"({"a":1,"b":-2.5,"c":"x","d":[true,false,null],"e":{"k":"v"}})");
  EXPECT_EQ(v.find("a")->as_int(), 1);
  EXPECT_DOUBLE_EQ(v.find("b")->as_double(), -2.5);
  EXPECT_EQ(v.find("c")->as_string(), "x");
  ASSERT_EQ(v.find("d")->as_array().size(), 3u);
  EXPECT_TRUE(v.find("d")->as_array()[0].as_bool());
  EXPECT_EQ(v.find("d")->as_array()[2].kind(), sim::JsonValue::Kind::kNull);
  EXPECT_EQ(v.find("e")->find("k")->as_string(), "v");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonValue, DecodesStringEscapes) {
  const sim::JsonValue v =
      sim::JsonValue::parse(R"(["a\"b\\c\n\t\u0041\u00e9"])");
  EXPECT_EQ(v.as_array()[0].as_string(), "a\"b\\c\n\tA\xc3\xa9");
}

TEST(JsonValue, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\"}", "{\"a\":1,}", "01", "1 2", "\"\\u12\"",
        "\"\\ud800\"", "tru", "{\"a\":}", "nan"}) {
    EXPECT_THROW((void)sim::JsonValue::parse(bad), sim::JsonParseError)
        << "accepted: " << bad;
  }
}

TEST(JsonValue, EscapeRoundTripsThroughParser) {
  const std::string original = "line1\nline2\t\"quoted\" \\ \x01 end";
  const std::string wire = "\"" + sim::json_escape(original) + "\"";
  // The escaped form must be single-line (the framing invariant)...
  EXPECT_EQ(wire.find('\n'), std::string::npos);
  // ...and decode back to the exact original bytes.
  EXPECT_EQ(sim::JsonValue::parse(wire).as_string(), original);
}

// ---- api::wire request parsing ----------------------------------------------

void expect_wire_error(const std::string& line, api::WireErrorCode code) {
  try {
    (void)api::parse_request(line);
    FAIL() << "accepted: " << line;
  } catch (const api::WireError& error) {
    EXPECT_EQ(api::wire_error_code_name(error.code()),
              api::wire_error_code_name(code))
        << line;
  }
}

TEST(WireRequest, ParsesEveryOp) {
  const api::Request ping =
      api::parse_request(R"({"schema_version":1,"id":"r1","op":"ping"})");
  EXPECT_EQ(ping.op, api::RequestOp::kPing);
  EXPECT_EQ(ping.id, "r1");

  const api::Request list = api::parse_request(
      R"({"schema_version":1,"op":"list","tag":"fault_matrix"})");
  EXPECT_EQ(list.op, api::RequestOp::kList);
  EXPECT_EQ(list.tag, "fault_matrix");
  EXPECT_EQ(list.id, "");  // id is optional

  const api::Request run = api::parse_request(
      R"({"schema_version":1,"id":"r2","op":"run","scenario":"x","engine":"lockstep"})");
  EXPECT_EQ(run.op, api::RequestOp::kRun);
  EXPECT_EQ(run.scenario, "x");
  EXPECT_EQ(run.engine, "lockstep");

  const api::Request spec = api::parse_request(
      R"({"schema_version":1,"op":"run","spec":"scenario{...}"})");
  EXPECT_EQ(spec.spec, "scenario{...}");
}

TEST(WireRequest, ErrorTaxonomy) {
  using Code = api::WireErrorCode;
  expect_wire_error("{not json", Code::kBadFrame);
  expect_wire_error("[1,2,3]", Code::kBadFrame);
  expect_wire_error(R"({"op":"ping"})", Code::kBadRequest);  // version missing
  expect_wire_error(R"({"schema_version":99,"op":"ping"})",
                    Code::kUnsupportedVersion);
  expect_wire_error(R"({"schema_version":1})", Code::kBadRequest);
  expect_wire_error(R"({"schema_version":1,"op":"destroy"})",
                    Code::kUnknownOp);
  // run needs exactly one of scenario/spec.
  expect_wire_error(R"({"schema_version":1,"op":"run"})", Code::kBadRequest);
  expect_wire_error(
      R"({"schema_version":1,"op":"run","scenario":"a","spec":"b"})",
      Code::kBadRequest);
  expect_wire_error(
      R"({"schema_version":1,"op":"run","scenario":"a","engine":"warp"})",
      Code::kBadRequest);
  // Unknown fields fail loudly (typo'd "tga" must not be ignored).
  expect_wire_error(R"({"schema_version":1,"op":"list","tga":"x"})",
                    Code::kBadRequest);
  expect_wire_error(R"({"schema_version":1,"op":"ping","tag":"x"})",
                    Code::kBadRequest);
}

TEST(WireRequest, ParsesRunLimits) {
  // Limits default to "absent" (-1 / 0)...
  const api::Request plain = api::parse_request(
      R"({"schema_version":1,"op":"run","scenario":"x"})");
  EXPECT_EQ(plain.deadline_ms, -1);
  EXPECT_EQ(plain.max_cycles, 0u);

  // ...and parse when present, including the deadline-0 probe.
  const api::Request limited = api::parse_request(
      R"({"schema_version":1,"op":"run","scenario":"x",)"
      R"("deadline_ms":1500,"max_cycles":4096})");
  EXPECT_EQ(limited.deadline_ms, 1500);
  EXPECT_EQ(limited.max_cycles, 4096u);
  const api::Request expired = api::parse_request(
      R"({"schema_version":1,"op":"run","scenario":"x","deadline_ms":0})");
  EXPECT_EQ(expired.deadline_ms, 0);
}

TEST(WireRequest, RejectsInvalidRunLimits) {
  using Code = api::WireErrorCode;
  // Limits only make sense on run requests.
  expect_wire_error(R"({"schema_version":1,"op":"ping","deadline_ms":5})",
                    Code::kBadRequest);
  expect_wire_error(R"({"schema_version":1,"op":"list","max_cycles":5})",
                    Code::kBadRequest);
  // Negative deadline / zero or non-numeric budget are shape violations.
  expect_wire_error(
      R"({"schema_version":1,"op":"run","scenario":"x","deadline_ms":-2})",
      Code::kBadRequest);
  expect_wire_error(
      R"({"schema_version":1,"op":"run","scenario":"x","max_cycles":0})",
      Code::kBadRequest);
  expect_wire_error(
      R"({"schema_version":1,"op":"run","scenario":"x","max_cycles":"9"})",
      Code::kBadRequest);
}

TEST(WireError, LifecycleCodeNamesAreStable) {
  // Wire names are protocol surface — renames are breaking changes.
  EXPECT_EQ(api::wire_error_code_name(api::WireErrorCode::kOverloaded),
            "overloaded");
  EXPECT_EQ(api::wire_error_code_name(api::WireErrorCode::kDeadlineExceeded),
            "deadline_exceeded");
  EXPECT_EQ(api::wire_error_code_name(api::WireErrorCode::kBudgetExceeded),
            "budget_exceeded");
  EXPECT_EQ(api::wire_error_code_name(api::WireErrorCode::kCancelled),
            "cancelled");
  EXPECT_EQ(api::wire_error_code_name(api::WireErrorCode::kShutdown),
            "shutdown");
}

TEST(WireResponse, RendersSingleLineAndRoundTrips) {
  // An id with every hostile character: the response must stay one line and
  // decode back exactly.
  const std::string id = "req\n\"1\"\\\t";
  const std::string line = api::render_error_response(
      id, api::WireErrorCode::kUnknownScenario, "no scenario 'x\ny'");
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const sim::JsonValue v = sim::JsonValue::parse(line);
  EXPECT_EQ(v.find("schema_version")->as_int(), api::kWireSchemaVersion);
  EXPECT_EQ(v.find("id")->as_string(), id);
  EXPECT_FALSE(v.find("ok")->as_bool());
  EXPECT_EQ(v.find("error")->find("code")->as_string(), "unknown_scenario");
  EXPECT_EQ(v.find("error")->find("message")->as_string(),
            "no scenario 'x\ny'");
}

TEST(WireResponse, RunResponseEmbedsReportVerbatim) {
  // The embedded report must survive the escape/parse round trip byte for
  // byte — this is the transport half of the served-vs-batch witness.
  const api::RunReport report = api::run_scenario(
      *api::ScenarioRegistry::global().find("irq/baseline/burst1"));
  const std::string canonical = api::ReportSchema().render(report);
  const std::string line = api::render_run_response(
      "r", "irq/baseline/burst1", /*warm_start=*/false, canonical);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const sim::JsonValue v = sim::JsonValue::parse(line);
  EXPECT_TRUE(v.find("ok")->as_bool());
  EXPECT_FALSE(v.find("warm_start")->as_bool());
  EXPECT_EQ(v.find("report")->as_string(), canonical);
}

TEST(WireResponse, ErrorDetailFieldsRenderOnlyWhenSet) {
  // Detail-free errors keep their historical bytes...
  const std::string bare = api::render_error_response(
      "r", api::WireErrorCode::kShutdown, "draining");
  EXPECT_EQ(bare.find("cycles"), std::string::npos);
  EXPECT_EQ(bare.find("retry_after_ms"), std::string::npos);

  // ...a stopped run reports its partial progress, with cycles==0 (the
  // deadline-0 probe) distinguishable from absent...
  api::ErrorDetail progress;
  progress.has_cycles = true;
  progress.cycles = 0;
  const sim::JsonValue stopped =
      sim::JsonValue::parse(api::render_error_response(
          "r", api::WireErrorCode::kDeadlineExceeded, "expired", progress));
  ASSERT_NE(stopped.find("error")->find("cycles"), nullptr);
  EXPECT_EQ(stopped.find("error")->find("cycles")->as_int(), 0);

  // ...and a shed run carries the backoff hint titanctl's retry loop reads.
  api::ErrorDetail hint;
  hint.retry_after_ms = 125;
  const sim::JsonValue shed = sim::JsonValue::parse(api::render_error_response(
      "r", api::WireErrorCode::kOverloaded, "at capacity", hint));
  EXPECT_EQ(shed.find("error")->find("code")->as_string(), "overloaded");
  ASSERT_NE(shed.find("error")->find("retry_after_ms"), nullptr);
  EXPECT_EQ(shed.find("error")->find("retry_after_ms")->as_int(), 125);
}

// ---- api::ReportSchema versioning -------------------------------------------

TEST(ReportSchema, DefaultRenderingMatchesLegacyEmission) {
  // The flag defaults OFF so committed BENCH_*.json and the shard-merge
  // byte-identity stay unchanged: the default schema must not mention the
  // version field at all.
  const api::RunReport report = api::run_scenario(
      *api::ScenarioRegistry::global().find("irq/baseline/burst1"));
  const std::string rendered = api::ReportSchema().render(report);
  EXPECT_EQ(rendered.find("report_schema_version"), std::string::npos);

  // RunReport::emit_json_fields is the schema's shorthand — same bytes.
  sim::JsonWriter json;
  json.begin_object();
  report.emit_json_fields(json);
  json.end_object();
  EXPECT_EQ(json.str(), rendered);
}

TEST(ReportSchema, VersionFieldLeadsWhenEnabled) {
  const api::RunReport report = api::run_scenario(
      *api::ScenarioRegistry::global().find("irq/baseline/burst1"));
  api::ReportSchema::Options options;
  options.emit_schema_version = true;
  const std::string rendered = api::ReportSchema(options).render(report);
  const std::string expected_head =
      "{\n  \"report_schema_version\": " +
      std::to_string(api::ReportSchema::kVersion) + ",\n  \"scenario\"";
  EXPECT_EQ(rendered.substr(0, expected_head.size()), expected_head);
}

}  // namespace
}  // namespace titan

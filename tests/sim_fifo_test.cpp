// Unit and property tests for the bounded FIFO used as the CFI Queue.
#include "sim/fifo.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "sim/rng.hpp"

namespace titan::sim {
namespace {

TEST(Fifo, RejectsZeroDepth) { EXPECT_THROW(Fifo<int>(0), std::invalid_argument); }

TEST(Fifo, StartsEmpty) {
  Fifo<int> fifo(4);
  EXPECT_TRUE(fifo.empty());
  EXPECT_FALSE(fifo.full());
  EXPECT_EQ(fifo.size(), 0u);
  EXPECT_EQ(fifo.depth(), 4u);
  EXPECT_EQ(fifo.free_slots(), 4u);
  EXPECT_EQ(fifo.pop(), std::nullopt);
  EXPECT_EQ(fifo.front(), nullptr);
}

TEST(Fifo, PushPopFifoOrder) {
  Fifo<int> fifo(3);
  EXPECT_TRUE(fifo.push(1));
  EXPECT_TRUE(fifo.push(2));
  EXPECT_TRUE(fifo.push(3));
  EXPECT_TRUE(fifo.full());
  EXPECT_FALSE(fifo.push(4));
  EXPECT_EQ(fifo.stats().rejected_pushes, 1u);
  EXPECT_EQ(fifo.pop(), 1);
  EXPECT_EQ(fifo.pop(), 2);
  EXPECT_TRUE(fifo.push(4));
  EXPECT_EQ(fifo.pop(), 3);
  EXPECT_EQ(fifo.pop(), 4);
  EXPECT_TRUE(fifo.empty());
}

TEST(Fifo, FrontPeeksWithoutRemoving) {
  Fifo<int> fifo(2);
  fifo.push(7);
  ASSERT_NE(fifo.front(), nullptr);
  EXPECT_EQ(*fifo.front(), 7);
  EXPECT_EQ(fifo.size(), 1u);
}

TEST(Fifo, StatsTrackHighWaterMark) {
  Fifo<int> fifo(8);
  for (int i = 0; i < 5; ++i) fifo.push(i);
  for (int i = 0; i < 3; ++i) fifo.pop();
  for (int i = 0; i < 2; ++i) fifo.push(i);
  EXPECT_EQ(fifo.stats().max_occupancy, 5u);
  EXPECT_EQ(fifo.stats().pushes, 7u);
  EXPECT_EQ(fifo.stats().pops, 3u);
}

TEST(Fifo, OccupancySampling) {
  Fifo<int> fifo(4);
  fifo.push(1);
  fifo.sample();  // occupancy 1
  fifo.push(2);
  fifo.push(3);
  fifo.sample();  // occupancy 3
  EXPECT_DOUBLE_EQ(fifo.stats().mean_occupancy(), 2.0);
}

// Property: under a random push/pop schedule, the FIFO behaves exactly like
// an unbounded std::deque reference truncated by the full/empty rules, for
// several depths.
class FifoPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FifoPropertyTest, MatchesReferenceModel) {
  const std::size_t depth = GetParam();
  Fifo<std::uint64_t> fifo(depth);
  std::deque<std::uint64_t> reference;
  Rng rng(0xF1F0 + depth);

  for (int step = 0; step < 20000; ++step) {
    if (rng.chance(0.55)) {
      const std::uint64_t value = rng.next();
      const bool accepted = fifo.push(value);
      EXPECT_EQ(accepted, reference.size() < depth);
      if (accepted) reference.push_back(value);
    } else {
      const auto popped = fifo.pop();
      if (reference.empty()) {
        EXPECT_EQ(popped, std::nullopt);
      } else {
        ASSERT_TRUE(popped.has_value());
        EXPECT_EQ(*popped, reference.front());
        reference.pop_front();
      }
    }
    ASSERT_EQ(fifo.size(), reference.size());
    ASSERT_EQ(fifo.empty(), reference.empty());
    ASSERT_EQ(fifo.full(), reference.size() >= depth);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, FifoPropertyTest,
                         ::testing::Values(1, 2, 3, 8, 64));

}  // namespace
}  // namespace titan::sim

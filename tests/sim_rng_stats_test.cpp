// Tests for the deterministic RNG and statistics helpers.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace titan::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform(10, 20);
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 20u);
  }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.01);
}

TEST(StatSet, AddAndGet) {
  StatSet stats;
  stats.add("cycles", 10);
  stats.add("cycles", 5);
  stats.set("ipc", 0.8);
  EXPECT_DOUBLE_EQ(stats.get("cycles"), 15.0);
  EXPECT_DOUBLE_EQ(stats.get("ipc"), 0.8);
  EXPECT_DOUBLE_EQ(stats.get("missing"), 0.0);
  EXPECT_TRUE(stats.has("cycles"));
  EXPECT_FALSE(stats.has("missing"));
}

TEST(StatSet, MergeWithPrefix) {
  StatSet child;
  child.add("pushes", 3);
  StatSet parent;
  parent.merge("queue", child);
  EXPECT_DOUBLE_EQ(parent.get("queue.pushes"), 3.0);
}

TEST(StatSet, PrintContainsKeys) {
  StatSet stats;
  stats.add("foo", 1);
  std::ostringstream os;
  stats.print(os);
  EXPECT_NE(os.str().find("foo"), std::string::npos);
}

TEST(Histogram, BasicMoments) {
  Histogram hist(0, 100, 10);
  for (int i = 0; i < 100; ++i) hist.record(i);
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_NEAR(hist.mean(), 49.5, 1e-9);
  EXPECT_DOUBLE_EQ(hist.min(), 0.0);
  EXPECT_DOUBLE_EQ(hist.max(), 99.0);
  EXPECT_NEAR(hist.quantile(0.5), 50.0, 10.0);
}

TEST(Histogram, OutOfRangeValuesCounted) {
  Histogram hist(0, 10, 5);
  hist.record(-5);
  hist.record(100);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_DOUBLE_EQ(hist.min(), -5.0);
  EXPECT_DOUBLE_EQ(hist.max(), 100.0);
}

TEST(Histogram, EmptyHistogramIsSafe) {
  Histogram hist(0, 10, 5);
  EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 0.0);
}

}  // namespace
}  // namespace titan::sim

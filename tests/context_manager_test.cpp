// Per-process CFI context tests (the paper's future-work item: per-thread
// enforcement with selective protection).
#include "firmware/context_manager.hpp"

#include <gtest/gtest.h>

#include "rv/encode.hpp"
#include "sim/rng.hpp"

namespace titan::fw {
namespace {

std::vector<std::uint8_t> key() { return {'c', 't', 'x'}; }

cfi::CommitLog call_log(std::uint64_t pc) {
  cfi::CommitLog log;
  log.pc = pc;
  log.encoding = rv::enc_j(0x6F, 1, 0x40);
  log.next = pc + 4;
  log.target = pc + 0x40;
  return log;
}

cfi::CommitLog return_log(std::uint64_t target) {
  cfi::CommitLog log;
  log.pc = 0x9000'0000;
  log.encoding = 0x00008067;
  log.next = log.pc + 4;
  log.target = target;
  return log;
}

ContextManagerConfig small_config() {
  ContextManagerConfig config;
  config.resident_contexts = 2;
  config.stack.capacity = 16;
  config.stack.spill_block = 8;
  return config;
}

TEST(ContextManager, UnprotectedAsidsPassThrough) {
  sim::Memory memory;
  ContextManager manager(small_config(), memory, key());
  ASSERT_TRUE(manager.switch_to(7));  // never protected
  // Even a bogus return is fine: ASID 7 is outside the protection boundary.
  EXPECT_TRUE(manager.check(return_log(0xDEAD)).ok);
  EXPECT_EQ(manager.resident_count(), 0u);
}

TEST(ContextManager, ProtectedAsidEnforced) {
  sim::Memory memory;
  ContextManager manager(small_config(), memory, key());
  manager.protect(1);
  ASSERT_TRUE(manager.switch_to(1));
  EXPECT_TRUE(manager.check(call_log(0x8000'0000)).ok);
  EXPECT_TRUE(manager.check(return_log(0x8000'0004)).ok);
  EXPECT_FALSE(manager.check(return_log(0xBAD)).ok);  // underflowed now
}

TEST(ContextManager, ContextsAreIsolated) {
  sim::Memory memory;
  ContextManager manager(small_config(), memory, key());
  manager.protect(1);
  manager.protect(2);

  ASSERT_TRUE(manager.switch_to(1));
  EXPECT_TRUE(manager.check(call_log(0x8000'0000)).ok);

  // ASID 2 must not see ASID 1's frame.
  ASSERT_TRUE(manager.switch_to(2));
  const auto verdict = manager.check(return_log(0x8000'0004));
  EXPECT_FALSE(verdict.ok);
  EXPECT_EQ(verdict.reason, "shadow-stack underflow");

  // Back to ASID 1: its frame is still there.
  ASSERT_TRUE(manager.switch_to(1));
  EXPECT_TRUE(manager.check(return_log(0x8000'0004)).ok);
}

TEST(ContextManager, LruSuspensionAndResume) {
  sim::Memory memory;
  ContextManager manager(small_config(), memory, key());  // 2 resident
  for (const Asid asid : {1, 2, 3}) {
    manager.protect(asid);
  }
  ASSERT_TRUE(manager.switch_to(1));
  EXPECT_TRUE(manager.check(call_log(0x8100'0000)).ok);
  ASSERT_TRUE(manager.switch_to(2));
  EXPECT_TRUE(manager.check(call_log(0x8200'0000)).ok);
  EXPECT_EQ(manager.suspends(), 0u);

  // Third protected context evicts the LRU one (ASID 1).
  ASSERT_TRUE(manager.switch_to(3));
  EXPECT_EQ(manager.suspends(), 1u);
  EXPECT_EQ(manager.resident_count(), 2u);
  EXPECT_EQ(manager.depth_of(1), 1u);  // tracked while suspended

  // Returning to ASID 1 resumes (authenticates) it with state intact.
  ASSERT_TRUE(manager.switch_to(1));
  EXPECT_EQ(manager.resumes(), 1u);
  EXPECT_TRUE(manager.check(return_log(0x8100'0004)).ok);
}

TEST(ContextManager, TamperedSuspendedContextRejected) {
  sim::Memory memory;
  ContextManager manager(small_config(), memory, key());
  for (const Asid asid : {1, 2, 3}) {
    manager.protect(asid);
  }
  ASSERT_TRUE(manager.switch_to(1));
  EXPECT_TRUE(manager.check(call_log(0x8100'0000)).ok);
  ASSERT_TRUE(manager.switch_to(2));
  ASSERT_TRUE(manager.switch_to(3));  // suspends ASID 1 to DRAM
  ASSERT_EQ(manager.suspends(), 1u);

  // Attacker edits ASID 1's suspended return address in DRAM.
  const sim::Addr slot = manager.suspend_slot(1);
  ASSERT_NE(slot, 0u);
  memory.write8(slot + 8, memory.read8(slot + 8) ^ 0x01);

  EXPECT_FALSE(manager.switch_to(1));  // MAC verification fails
}

TEST(ContextManager, TamperedLengthFieldRejected) {
  sim::Memory memory;
  ContextManager manager(small_config(), memory, key());
  for (const Asid asid : {1, 2, 3}) {
    manager.protect(asid);
  }
  ASSERT_TRUE(manager.switch_to(1));
  EXPECT_TRUE(manager.check(call_log(0x8100'0000)).ok);
  ASSERT_TRUE(manager.switch_to(2));
  ASSERT_TRUE(manager.switch_to(3));
  const sim::Addr slot = manager.suspend_slot(1);
  memory.write64(slot, 1'000'000);  // absurd entry count
  EXPECT_FALSE(manager.switch_to(1));
}

TEST(ContextManager, DeepContextSurvivesSuspendCycle) {
  sim::Memory memory;
  ContextManager manager(small_config(), memory, key());
  for (const Asid asid : {1, 2, 3}) {
    manager.protect(asid);
  }
  ASSERT_TRUE(manager.switch_to(1));
  std::vector<std::uint64_t> sites;
  for (int depth = 0; depth < 10; ++depth) {
    const auto log = call_log(0x8100'0000 + 0x40u * depth);
    EXPECT_TRUE(manager.check(log).ok);
    sites.push_back(log.next);
  }
  ASSERT_TRUE(manager.switch_to(2));
  ASSERT_TRUE(manager.switch_to(3));  // evict 1
  ASSERT_TRUE(manager.switch_to(1));  // resume 1
  for (int depth = 10; depth-- > 0;) {
    ASSERT_TRUE(manager.check(return_log(sites[depth])).ok) << depth;
  }
}

TEST(ContextManager, RandomMultiProcessWorkload) {
  sim::Memory memory;
  ContextManagerConfig config = small_config();
  config.resident_contexts = 2;
  ContextManager manager(config, memory, key());
  constexpr int kProcesses = 5;
  for (Asid asid = 1; asid <= kProcesses; ++asid) {
    manager.protect(asid);
  }
  std::vector<std::vector<std::uint64_t>> oracles(kProcesses + 1);
  sim::Rng rng(1234);

  for (int step = 0; step < 2000; ++step) {
    const Asid asid = static_cast<Asid>(rng.uniform(1, kProcesses));
    ASSERT_TRUE(manager.switch_to(asid));
    auto& oracle = oracles[asid];
    if (oracle.empty() || rng.chance(0.55)) {
      const auto log = call_log(0x8000'0000 + rng.uniform(0, 1 << 16) * 4);
      ASSERT_TRUE(manager.check(log).ok);
      oracle.push_back(log.next);
    } else {
      const std::uint64_t site = oracle.back();
      oracle.pop_back();
      ASSERT_TRUE(manager.check(return_log(site)).ok) << "asid=" << asid;
    }
    ASSERT_EQ(manager.depth_of(asid), oracle.size());
  }
  EXPECT_GT(manager.suspends(), 10u);
  EXPECT_GT(manager.resumes(), 10u);
}

TEST(ContextManager, RejectsZeroResidency) {
  sim::Memory memory;
  ContextManagerConfig config;
  config.resident_contexts = 0;
  EXPECT_THROW(ContextManager(config, memory, key()), std::invalid_argument);
}

}  // namespace
}  // namespace titan::fw

// Decoder tests: golden encodings cross-checked against binutils output,
// plus an encode→decode round-trip property over every operation.
#include "rv/decode.hpp"

#include <gtest/gtest.h>

#include "rv/encode.hpp"
#include "sim/rng.hpp"

namespace titan::rv {
namespace {

using sim::Rng;

Inst d64(std::uint32_t raw) { return decode(raw, Xlen::k64); }
Inst d32(std::uint32_t raw) { return decode(raw, Xlen::k32); }

// ---- Golden encodings (verified against riscv64 binutils) -----------------

TEST(Decode, GoldenSystemInstructions) {
  EXPECT_EQ(d64(0x00000073).op, Op::kEcall);
  EXPECT_EQ(d64(0x00100073).op, Op::kEbreak);
  EXPECT_EQ(d64(0x30200073).op, Op::kMret);
  EXPECT_EQ(d64(0x10500073).op, Op::kWfi);
}

TEST(Decode, GoldenNop) {
  const Inst inst = d64(0x00000013);  // addi x0, x0, 0
  EXPECT_EQ(inst.op, Op::kAddi);
  EXPECT_EQ(inst.rd, 0);
  EXPECT_EQ(inst.rs1, 0);
  EXPECT_EQ(inst.imm, 0);
}

TEST(Decode, GoldenRet) {
  const Inst inst = d64(0x00008067);  // jalr x0, 0(ra)
  EXPECT_EQ(inst.op, Op::kJalr);
  EXPECT_EQ(inst.rd, 0);
  EXPECT_EQ(inst.rs1, 1);
  EXPECT_EQ(inst.imm, 0);
}

TEST(Decode, GoldenAddi) {
  const Inst inst = d64(0x00310093);  // addi x1, x2, 3
  EXPECT_EQ(inst.op, Op::kAddi);
  EXPECT_EQ(inst.rd, 1);
  EXPECT_EQ(inst.rs1, 2);
  EXPECT_EQ(inst.imm, 3);
}

TEST(Decode, GoldenNegativeImmediate) {
  const Inst inst = d64(0xFF010113);  // addi sp, sp, -16
  EXPECT_EQ(inst.op, Op::kAddi);
  EXPECT_EQ(inst.rd, 2);
  EXPECT_EQ(inst.rs1, 2);
  EXPECT_EQ(inst.imm, -16);
}

TEST(Decode, GoldenLuiSignExtends) {
  const Inst inst = d64(0x800000B7);  // lui ra, 0x80000
  EXPECT_EQ(inst.op, Op::kLui);
  EXPECT_EQ(inst.rd, 1);
  EXPECT_EQ(inst.imm, static_cast<std::int64_t>(0xFFFFFFFF80000000ULL));
}

TEST(Decode, GoldenStore) {
  const Inst inst = d64(0x00113423);  // sd ra, 8(sp)
  EXPECT_EQ(inst.op, Op::kSd);
  EXPECT_EQ(inst.rs1, 2);
  EXPECT_EQ(inst.rs2, 1);
  EXPECT_EQ(inst.imm, 8);
}

TEST(Decode, GoldenJal) {
  // jal ra, +16 from pc
  const std::uint32_t raw = enc_j(0x6F, 1, 16);
  const Inst inst = d64(raw);
  EXPECT_EQ(inst.op, Op::kJal);
  EXPECT_EQ(inst.rd, 1);
  EXPECT_EQ(inst.imm, 16);
}

TEST(Decode, GoldenCsr) {
  const Inst inst = d64(0x34202573);  // csrrs a0, mcause, x0
  EXPECT_EQ(inst.op, Op::kCsrrs);
  EXPECT_EQ(inst.rd, 10);
  EXPECT_EQ(inst.rs1, 0);
  EXPECT_EQ(inst.imm, 0x342);
}

TEST(Decode, GoldenMul) {
  const Inst inst = d64(0x02B50533);  // mul a0, a0, a1
  EXPECT_EQ(inst.op, Op::kMul);
  EXPECT_EQ(inst.rd, 10);
  EXPECT_EQ(inst.rs1, 10);
  EXPECT_EQ(inst.rs2, 11);
}

// ---- XLEN-sensitive decoding ------------------------------------------------

TEST(Decode, Rv64OnlyOpsIllegalOnRv32) {
  const std::uint32_t ld = enc_i(0x03, 3, 5, 6, 0);
  EXPECT_EQ(d64(ld).op, Op::kLd);
  EXPECT_EQ(d32(ld).op, Op::kIllegal);

  const std::uint32_t addiw = enc_i(0x1B, 0, 5, 6, 1);
  EXPECT_EQ(d64(addiw).op, Op::kAddiw);
  EXPECT_EQ(d32(addiw).op, Op::kIllegal);
}

TEST(Decode, ShiftAmountRangesByXlen) {
  // slli with shamt 40 is legal on RV64, illegal on RV32.
  const std::uint32_t slli40 = enc_i(0x13, 1, 5, 5, 40);
  EXPECT_EQ(d64(slli40).op, Op::kSlli);
  EXPECT_EQ(d64(slli40).imm, 40);
  EXPECT_EQ(d32(slli40).op, Op::kIllegal);
}

TEST(Decode, IllegalOpcodeRejected) {
  EXPECT_EQ(d64(0xFFFFFFFF).op, Op::kIllegal);
  EXPECT_EQ(d64(0x0000007F).op, Op::kIllegal);
}

// ---- Round-trip property ------------------------------------------------------
// For every op, generate random well-formed instances, encode, decode, and
// compare all architectural fields.

struct RoundTripCase {
  Op op;
};

class RoundTripTest : public ::testing::TestWithParam<Op> {};

enum class FieldShape {
  kRdRs1Rs2,
  kRdRs1Imm12,
  kRdRs1Shamt6,
  kRdRs1Shamt5,
  kRs1Rs2Imm12,   // stores
  kRs1Rs2Off13,   // branches
  kRdImm20,       // lui/auipc
  kRdOff21,       // jal
  kNone,
  kCsr,
  kCsrImm,
};

FieldShape shape_of(Op op) {
  switch (op) {
    case Op::kLui:
    case Op::kAuipc:
      return FieldShape::kRdImm20;
    case Op::kJal:
      return FieldShape::kRdOff21;
    case Op::kJalr:
    case Op::kLb:
    case Op::kLh:
    case Op::kLw:
    case Op::kLbu:
    case Op::kLhu:
    case Op::kLwu:
    case Op::kLd:
    case Op::kAddi:
    case Op::kSlti:
    case Op::kSltiu:
    case Op::kXori:
    case Op::kOri:
    case Op::kAndi:
    case Op::kAddiw:
      return FieldShape::kRdRs1Imm12;
    case Op::kSlli:
    case Op::kSrli:
    case Op::kSrai:
      return FieldShape::kRdRs1Shamt6;
    case Op::kSlliw:
    case Op::kSrliw:
    case Op::kSraiw:
      return FieldShape::kRdRs1Shamt5;
    case Op::kSb:
    case Op::kSh:
    case Op::kSw:
    case Op::kSd:
      return FieldShape::kRs1Rs2Imm12;
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
      return FieldShape::kRs1Rs2Off13;
    case Op::kFence:
    case Op::kEcall:
    case Op::kEbreak:
    case Op::kMret:
    case Op::kWfi:
    case Op::kIllegal:
      return FieldShape::kNone;
    case Op::kCsrrw:
    case Op::kCsrrs:
    case Op::kCsrrc:
      return FieldShape::kCsr;
    case Op::kCsrrwi:
    case Op::kCsrrsi:
    case Op::kCsrrci:
      return FieldShape::kCsrImm;
    default:
      return FieldShape::kRdRs1Rs2;
  }
}

TEST_P(RoundTripTest, EncodeDecodeIdentity) {
  const Op op = GetParam();
  Rng rng(static_cast<std::uint64_t>(op) * 7919 + 1);
  const FieldShape shape = shape_of(op);

  for (int trial = 0; trial < 300; ++trial) {
    Inst inst;
    inst.op = op;
    switch (shape) {
      case FieldShape::kRdRs1Rs2:
        inst.rd = static_cast<std::uint8_t>(rng.uniform(0, 31));
        inst.rs1 = static_cast<std::uint8_t>(rng.uniform(0, 31));
        inst.rs2 = static_cast<std::uint8_t>(rng.uniform(0, 31));
        break;
      case FieldShape::kRdRs1Imm12:
        inst.rd = static_cast<std::uint8_t>(rng.uniform(0, 31));
        inst.rs1 = static_cast<std::uint8_t>(rng.uniform(0, 31));
        inst.imm = static_cast<std::int64_t>(rng.uniform(0, 4095)) - 2048;
        break;
      case FieldShape::kRdRs1Shamt6:
        inst.rd = static_cast<std::uint8_t>(rng.uniform(0, 31));
        inst.rs1 = static_cast<std::uint8_t>(rng.uniform(0, 31));
        inst.imm = static_cast<std::int64_t>(rng.uniform(0, 63));
        break;
      case FieldShape::kRdRs1Shamt5:
        inst.rd = static_cast<std::uint8_t>(rng.uniform(0, 31));
        inst.rs1 = static_cast<std::uint8_t>(rng.uniform(0, 31));
        inst.imm = static_cast<std::int64_t>(rng.uniform(0, 31));
        break;
      case FieldShape::kRs1Rs2Imm12:
        inst.rs1 = static_cast<std::uint8_t>(rng.uniform(0, 31));
        inst.rs2 = static_cast<std::uint8_t>(rng.uniform(0, 31));
        inst.imm = static_cast<std::int64_t>(rng.uniform(0, 4095)) - 2048;
        break;
      case FieldShape::kRs1Rs2Off13:
        inst.rs1 = static_cast<std::uint8_t>(rng.uniform(0, 31));
        inst.rs2 = static_cast<std::uint8_t>(rng.uniform(0, 31));
        inst.imm = (static_cast<std::int64_t>(rng.uniform(0, 4095)) - 2048) * 2;
        break;
      case FieldShape::kRdImm20:
        inst.rd = static_cast<std::uint8_t>(rng.uniform(0, 31));
        inst.imm = static_cast<std::int64_t>(
                       static_cast<std::int32_t>(rng.next() & 0xFFFFF000u));
        break;
      case FieldShape::kRdOff21:
        inst.rd = static_cast<std::uint8_t>(rng.uniform(0, 31));
        inst.imm = (static_cast<std::int64_t>(rng.uniform(0, (1 << 20) - 1)) -
                    (1 << 19)) * 2;
        break;
      case FieldShape::kNone:
        break;
      case FieldShape::kCsr:
        inst.rd = static_cast<std::uint8_t>(rng.uniform(0, 31));
        inst.rs1 = static_cast<std::uint8_t>(rng.uniform(0, 31));
        inst.imm = static_cast<std::int64_t>(rng.uniform(0, 4095));
        break;
      case FieldShape::kCsrImm:
        inst.rd = static_cast<std::uint8_t>(rng.uniform(0, 31));
        inst.rs1 = static_cast<std::uint8_t>(rng.uniform(0, 31));  // zimm
        inst.imm = static_cast<std::int64_t>(rng.uniform(0, 4095));
        break;
    }
    if (op == Op::kIllegal) {
      continue;
    }

    const std::uint32_t raw = encode(inst);
    const Inst back = decode(raw, Xlen::k64);
    ASSERT_EQ(back.op, inst.op) << "raw=0x" << std::hex << raw;
    if (shape != FieldShape::kNone) {
      ASSERT_EQ(back.rd, inst.rd);
      ASSERT_EQ(back.rs1, inst.rs1);
      if (shape == FieldShape::kRdRs1Rs2 || shape == FieldShape::kRs1Rs2Imm12 ||
          shape == FieldShape::kRs1Rs2Off13) {
        ASSERT_EQ(back.rs2, inst.rs2);
      }
      ASSERT_EQ(back.imm, inst.imm) << "raw=0x" << std::hex << raw;
    }
    ASSERT_EQ(back.len, 4);
    ASSERT_EQ(back.expanded, raw);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, RoundTripTest,
    ::testing::Values(
        Op::kLui, Op::kAuipc, Op::kJal, Op::kJalr, Op::kBeq, Op::kBne,
        Op::kBlt, Op::kBge, Op::kBltu, Op::kBgeu, Op::kLb, Op::kLh, Op::kLw,
        Op::kLbu, Op::kLhu, Op::kLwu, Op::kLd, Op::kSb, Op::kSh, Op::kSw,
        Op::kSd, Op::kAddi, Op::kSlti, Op::kSltiu, Op::kXori, Op::kOri,
        Op::kAndi, Op::kSlli, Op::kSrli, Op::kSrai, Op::kAdd, Op::kSub,
        Op::kSll, Op::kSlt, Op::kSltu, Op::kXor, Op::kSrl, Op::kSra, Op::kOr,
        Op::kAnd, Op::kAddiw, Op::kSlliw, Op::kSrliw, Op::kSraiw, Op::kAddw,
        Op::kSubw, Op::kSllw, Op::kSrlw, Op::kSraw, Op::kCsrrw, Op::kCsrrs,
        Op::kCsrrc, Op::kCsrrwi, Op::kCsrrsi, Op::kCsrrci, Op::kMul,
        Op::kMulh, Op::kMulhsu, Op::kMulhu, Op::kDiv, Op::kDivu, Op::kRem,
        Op::kRemu, Op::kMulw, Op::kDivw, Op::kDivuw, Op::kRemw, Op::kRemuw),
    [](const ::testing::TestParamInfo<Op>& info) {
      std::string name(mnemonic(info.param));
      for (char& ch : name) {
        if (ch == '.') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace titan::rv

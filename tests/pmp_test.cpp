// PMP tests: the paper's Sec.-VI security assumption — host software cannot
// touch the CFI mailbox — enforced and verified end-to-end.
#include "soc/pmp.hpp"

#include <gtest/gtest.h>

#include "cva6/core.hpp"
#include "firmware/builder.hpp"
#include "titancfi/soc_top.hpp"
#include "workloads/programs.hpp"

namespace titan::soc {
namespace {

TEST(Pmp, NoEntriesAllowsEverything) {
  Pmp pmp;
  EXPECT_TRUE(pmp.check(0x1000, PmpAccess::kRead));
  EXPECT_TRUE(pmp.check(kCfiMailbox.base, PmpAccess::kWrite));
}

TEST(Pmp, DenyRegionBlocksAllAccess) {
  Pmp pmp;
  pmp.deny_region(kCfiMailbox, "mailbox");
  EXPECT_FALSE(pmp.check(kCfiMailbox.base, PmpAccess::kRead));
  EXPECT_FALSE(pmp.check(kCfiMailbox.base + 0x40, PmpAccess::kWrite));
  EXPECT_FALSE(pmp.check(kCfiMailbox.base, PmpAccess::kExecute));
  // Just outside the region: unaffected.
  EXPECT_TRUE(pmp.check(kCfiMailbox.base - 1, PmpAccess::kWrite));
  EXPECT_TRUE(pmp.check(kCfiMailbox.end(), PmpAccess::kWrite));
}

TEST(Pmp, LowestMatchingEntryWins) {
  Pmp pmp;
  // Entry 0: read-only window inside a larger denied region.
  pmp.add_entry({{0x1000, 0x100}, true, false, false, "ro-window"});
  pmp.deny_region({0x1000, 0x1000}, "deny-all");
  EXPECT_TRUE(pmp.check(0x1080, PmpAccess::kRead));
  EXPECT_FALSE(pmp.check(0x1080, PmpAccess::kWrite));
  EXPECT_FALSE(pmp.check(0x1200, PmpAccess::kRead));  // outside the window
}

TEST(Pmp, TitancfiDefaultLocksMailboxAndArena) {
  const Pmp pmp = Pmp::titancfi_default();
  EXPECT_FALSE(pmp.check(kCfiMailbox.base, PmpAccess::kRead));
  EXPECT_FALSE(pmp.check(kCfiMailbox.base, PmpAccess::kWrite));
  EXPECT_FALSE(pmp.check(kSpillArena.base + 64, PmpAccess::kWrite));
  EXPECT_TRUE(pmp.check(kDram.base, PmpAccess::kWrite));  // ordinary DRAM ok
  EXPECT_EQ(pmp.entry_count(), 2u);
}

}  // namespace
}  // namespace titan::soc

namespace titan::cfi {
namespace {

/// A malicious guest that tries to forge a "safe" verdict by writing the CFI
/// mailbox result register directly, then reading the doorbell.
rv::Image mailbox_tamper_program(bool read_only) {
  rv::Assembler a(rv::Xlen::k64, workloads::kProgramBase);
  a.li(rv::Reg::kSp, 0x8080'0000);
  a.li(rv::Reg::kT0, static_cast<std::int64_t>(soc::kCfiMailbox.base));
  if (read_only) {
    a.ld(rv::Reg::kT1, rv::Reg::kT0, 0);  // spy on commit logs
  } else {
    a.sd(rv::Reg::kZero, rv::Reg::kT0, 0);  // forge verdict
  }
  a.li(rv::Reg::kA0, 7);
  a.ecall();
  return a.finish();
}

rv::Image firmware() {
  fw::FirmwareConfig config;
  return fw::build_firmware(config);
}

TEST(PmpIntegration, GuestCannotWriteCfiMailbox) {
  SocConfig config;
  SocTop soc(config, mailbox_tamper_program(false), firmware());
  const auto result = soc.run();
  EXPECT_EQ(result.exit_code, 0xACCu);  // access fault, not exit code 7
  EXPECT_TRUE(soc.host().access_fault());
}

TEST(PmpIntegration, GuestCannotReadCfiMailbox) {
  SocConfig config;
  SocTop soc(config, mailbox_tamper_program(true), firmware());
  const auto result = soc.run();
  EXPECT_EQ(result.exit_code, 0xACCu);
}

TEST(PmpIntegration, GuestCannotTamperSpillArena) {
  rv::Assembler a(rv::Xlen::k64, workloads::kProgramBase);
  a.li(rv::Reg::kSp, 0x8080'0000);
  a.li(rv::Reg::kT0, static_cast<std::int64_t>(soc::kSpillArena.base + 32));
  a.sd(rv::Reg::kZero, rv::Reg::kT0, 0);  // corrupt a spilled segment
  a.li(rv::Reg::kA0, 7);
  a.ecall();
  SocConfig config;
  SocTop soc(config, a.finish(), firmware());
  EXPECT_EQ(soc.run().exit_code, 0xACCu);
}

TEST(PmpIntegration, DisablingPmpRestoresOldBehaviour) {
  SocConfig config;
  config.enable_pmp = false;
  SocTop soc(config, mailbox_tamper_program(false), firmware());
  const auto result = soc.run();
  EXPECT_EQ(result.exit_code, 7u);  // tamper "succeeds" without PMP
}

TEST(PmpIntegration, OrdinaryProgramsUnaffected) {
  SocConfig config;
  SocTop soc(config, workloads::fib_recursive(8), firmware());
  const auto result = soc.run();
  EXPECT_EQ(result.exit_code, 21u);
  EXPECT_FALSE(soc.host().access_fault());
  EXPECT_EQ(result.violations, 0u);
}

}  // namespace
}  // namespace titan::cfi

// sim::Snapshot primitives: stream writer/reader bounds and sentinels, the
// versioned blob format (magic / version / fingerprint / payload-shape
// validation), Memory::Image serialization, and the checkpoint file/bundle
// transport — a stale, foreign, truncated, or corrupted checkpoint must fail
// loudly with SnapshotError, never half-restore.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "sim/memory.hpp"
#include "sim/snapshot.hpp"

namespace titan::sim {
namespace {

TEST(SnapshotStreamTest, PrimitivesRoundTrip) {
  SnapshotWriter writer;
  writer.u8(0xAB);
  writer.u32(0xDEADBEEF);
  writer.u64(0x0123'4567'89AB'CDEFull);
  writer.boolean(true);
  writer.boolean(false);
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  writer.bytes(payload);
  writer.raw(payload);
  writer.str("hello snapshot");
  writer.tag(0x534E4150);

  SnapshotReader reader(writer.data());
  EXPECT_EQ(reader.u8(), 0xAB);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.u64(), 0x0123'4567'89AB'CDEFull);
  EXPECT_TRUE(reader.boolean());
  EXPECT_FALSE(reader.boolean());
  EXPECT_EQ(reader.bytes(), payload);
  std::vector<std::uint8_t> raw(payload.size());
  reader.raw(raw);
  EXPECT_EQ(raw, payload);
  EXPECT_EQ(reader.str(), "hello snapshot");
  reader.expect_tag(0x534E4150, "test section");
  EXPECT_TRUE(reader.done());
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(SnapshotStreamTest, TruncationThrows) {
  SnapshotWriter writer;
  writer.u32(42);
  SnapshotReader reader(writer.data());
  (void)reader.u32();
  EXPECT_THROW((void)reader.u8(), SnapshotError);

  SnapshotReader second(writer.data());
  EXPECT_THROW((void)second.u64(), SnapshotError);
}

TEST(SnapshotStreamTest, TagMismatchThrows) {
  SnapshotWriter writer;
  writer.tag(0x11111111);
  SnapshotReader reader(writer.data());
  EXPECT_THROW(reader.expect_tag(0x22222222, "wrong section"), SnapshotError);
}

TEST(SnapshotMemoryImageTest, ImageRoundTripsThroughStream) {
  Memory memory;
  memory.write64(0x1000, 0x1122'3344'5566'7788ull);
  memory.write8(0x5FFF, 0x7F);
  (void)memory.read64(0x1000);
  (void)memory.read8(0x9000);  // unmapped: primes the negative cache

  const Memory::Image image = memory.capture();
  SnapshotWriter writer;
  write_memory_image(writer, image);
  SnapshotReader reader(writer.data());
  const Memory::Image loaded = read_memory_image(reader);
  EXPECT_TRUE(reader.done());

  EXPECT_EQ(loaded.pages.size(), image.pages.size());
  EXPECT_EQ(loaded.stats, image.stats);
  EXPECT_EQ(loaded.way_tags, image.way_tags);
  EXPECT_EQ(loaded.neg_tags, image.neg_tags);
  Memory restored;
  restored.restore(loaded);
  EXPECT_EQ(restored.read64(0x1000), 0x1122'3344'5566'7788ull);
  EXPECT_EQ(restored.read8(0x5FFF), 0x7F);
}

api::Scenario tiny_scenario() {
  return api::ScenarioBuilder()
      .name("snapshot_blob")
      .workload(api::Workload::fib(6))
      .build();
}

TEST(SnapshotBlobTest, BlobRoundTripPreservesFingerprint) {
  const auto snapshot = api::capture_checkpoint(tiny_scenario(), 500);
  ASSERT_NE(snapshot, nullptr);
  EXPECT_NE(snapshot->fingerprint, 0u);

  const std::vector<std::uint8_t> blob = snapshot->to_blob();
  const Snapshot loaded = Snapshot::from_blob(blob);
  EXPECT_EQ(loaded.fingerprint, snapshot->fingerprint);
  EXPECT_EQ(loaded.scenario, snapshot->scenario);
  EXPECT_EQ(loaded.cycle, snapshot->cycle);
  EXPECT_EQ(loaded.state, snapshot->state);
  EXPECT_EQ(loaded.log_words, snapshot->log_words);
  ASSERT_EQ(loaded.memories.size(), snapshot->memories.size());
  for (std::size_t i = 0; i < loaded.memories.size(); ++i) {
    EXPECT_EQ(loaded.memories[i].pages.size(),
              snapshot->memories[i].pages.size());
    EXPECT_EQ(loaded.memories[i].stats, snapshot->memories[i].stats);
  }
  // Serialization is deterministic: a second render is byte-identical.
  EXPECT_EQ(loaded.to_blob(), blob);
}

TEST(SnapshotBlobTest, RejectsTruncatedBlob) {
  const auto snapshot = api::capture_checkpoint(tiny_scenario(), 500);
  std::vector<std::uint8_t> blob = snapshot->to_blob();
  for (const std::size_t keep : {std::size_t{0}, std::size_t{7},
                                 std::size_t{15}, blob.size() - 1}) {
    std::vector<std::uint8_t> cut(blob.begin(),
                                  blob.begin() + static_cast<long>(keep));
    EXPECT_THROW((void)Snapshot::from_blob(cut), SnapshotError)
        << "kept " << keep << " bytes";
  }
}

TEST(SnapshotBlobTest, RejectsBadMagicAndVersion) {
  const auto snapshot = api::capture_checkpoint(tiny_scenario(), 500);
  std::vector<std::uint8_t> bad_magic = snapshot->to_blob();
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW((void)Snapshot::from_blob(bad_magic), SnapshotError);

  std::vector<std::uint8_t> bad_version = snapshot->to_blob();
  bad_version[4] = 0x7F;  // unknown future version
  EXPECT_THROW((void)Snapshot::from_blob(bad_version), SnapshotError);
}

TEST(SnapshotBlobTest, RejectsPayloadCorruption) {
  const auto snapshot = api::capture_checkpoint(tiny_scenario(), 500);
  std::vector<std::uint8_t> blob = snapshot->to_blob();
  // Flip one payload byte (past the 16-byte header): the fingerprint check
  // must catch it no matter which component's bytes were hit.
  blob[16 + blob.size() / 2] ^= 0x01;
  EXPECT_THROW((void)Snapshot::from_blob(blob), SnapshotError);
}

TEST(SnapshotBlobTest, RejectsTrailingBytes) {
  const auto snapshot = api::capture_checkpoint(tiny_scenario(), 500);
  std::vector<std::uint8_t> blob = snapshot->to_blob();
  blob.push_back(0x00);
  EXPECT_THROW((void)Snapshot::from_blob(blob), SnapshotError);
}

TEST(SnapshotFileTest, CheckpointFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "snapshot_file_test.ckpt";
  const auto snapshot = api::capture_checkpoint(tiny_scenario(), 500);
  api::save_checkpoint_file(*snapshot, path);
  const Snapshot loaded = api::load_checkpoint_file(path);
  EXPECT_EQ(loaded.fingerprint, snapshot->fingerprint);
  EXPECT_EQ(loaded.to_blob(), snapshot->to_blob());
  std::remove(path.c_str());
}

TEST(SnapshotFileTest, BundleRoundTripAndRejection) {
  const std::string path = ::testing::TempDir() + "snapshot_bundle_test.ckpt";
  const api::ScenarioSet grid =
      api::ScenarioRegistry::global().query("fig1_liveness", "bundle_test");
  ASSERT_FALSE(grid.empty());
  const auto snapshots = api::capture_grid_checkpoints(grid, 500);
  api::save_checkpoint_bundle(snapshots, path);
  const auto loaded = api::load_checkpoint_bundle(path);
  ASSERT_EQ(loaded.size(), snapshots.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i]->fingerprint, snapshots[i]->fingerprint);
    EXPECT_EQ(loaded[i]->scenario, snapshots[i]->scenario);
  }

  // Truncate the bundle mid-snapshot: loading must throw, not half-load.
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 9));
  }
  EXPECT_THROW((void)api::load_checkpoint_bundle(path), SnapshotError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace titan::sim

// Timing-model invariants of the CVA6 host core.
#include <gtest/gtest.h>

#include "cva6/core.hpp"
#include "workloads/programs.hpp"

namespace titan::cva6 {
namespace {

Cva6Core make_core(const rv::Image& image, sim::Memory& memory,
                   Cva6Config config = {}) {
  memory.load(image.base, image.bytes);
  config.reset_pc = image.base;
  return Cva6Core(config, memory);
}

TEST(Cva6Timing, IpcNeverExceedsCommitWidth) {
  sim::Memory memory;
  Cva6Core core = make_core(workloads::matmul(4), memory);
  core.run_baseline();
  const double ipc = static_cast<double>(core.instret()) /
                     static_cast<double>(core.cycle());
  EXPECT_LE(ipc, 2.0);
  EXPECT_GT(ipc, 0.1);
}

TEST(Cva6Timing, SingleIssueBoundsIpcToOneInSteadyState) {
  // Issue is 1/cycle, so sustained IPC can only approach 1 even though the
  // commit stage is 2-wide (commits catch up after multi-cycle ops).
  sim::Memory memory;
  Cva6Core core = make_core(workloads::crc32(64), memory);
  core.run_baseline();
  const double ipc = static_cast<double>(core.instret()) /
                     static_cast<double>(core.cycle());
  EXPECT_LE(ipc, 1.05);
}

TEST(Cva6Timing, LoadHeavyCodeIsSlowerThanAluCode) {
  const auto build = [](bool loads) {
    rv::Assembler a(rv::Xlen::k64, workloads::kProgramBase);
    a.li(rv::Reg::kSp, 0x8080'0000);
    a.li(rv::Reg::kT0, 0x8010'0000);
    for (int i = 0; i < 200; ++i) {
      if (loads) {
        a.ld(rv::Reg::kT1, rv::Reg::kT0, 0);
      } else {
        a.addi(rv::Reg::kT1, rv::Reg::kT1, 1);
      }
    }
    a.ecall();
    return a.finish();
  };
  sim::Memory mem_a;
  Cva6Core alu_core = make_core(build(false), mem_a);
  alu_core.run_baseline();
  sim::Memory mem_b;
  Cva6Core load_core = make_core(build(true), mem_b);
  load_core.run_baseline();
  EXPECT_GT(load_core.cycle(), alu_core.cycle());
}

TEST(Cva6Timing, DivHeavyCodeIsSlowest) {
  const auto build = [](bool divs) {
    rv::Assembler a(rv::Xlen::k64, workloads::kProgramBase);
    a.li(rv::Reg::kT0, 1000);
    a.li(rv::Reg::kT1, 7);
    for (int i = 0; i < 50; ++i) {
      if (divs) {
        a.div(rv::Reg::kT2, rv::Reg::kT0, rv::Reg::kT1);
      } else {
        a.mul(rv::Reg::kT2, rv::Reg::kT0, rv::Reg::kT1);
      }
    }
    a.ecall();
    return a.finish();
  };
  sim::Memory mem_a;
  Cva6Core mul_core = make_core(build(false), mem_a);
  mul_core.run_baseline();
  sim::Memory mem_b;
  Cva6Core div_core = make_core(build(true), mem_b);
  div_core.run_baseline();
  // Divider is ~10x the multiplier latency in the model.
  EXPECT_GT(div_core.cycle(), mul_core.cycle() * 4);
}

TEST(Cva6Timing, StallCyclesConserveWork) {
  // Same program with and without periodic full commit stalls: the stalled
  // run retires identical instructions, just later.
  const rv::Image image = workloads::fib_recursive(8);
  sim::Memory mem_a;
  Cva6Core free_core = make_core(image, mem_a);
  free_core.run_baseline();

  sim::Memory mem_b;
  Cva6Core stalled_core = make_core(image, mem_b);
  std::uint64_t tick_count = 0;
  while (!stalled_core.program_done()) {
    const auto ready = stalled_core.commit_candidates();
    // Allow commits only every 4th cycle: effective commit bandwidth 0.5
    // inst/cycle, below the program's natural IPC, so stalls must bind.
    const bool stall = (++tick_count % 4) != 0;
    stalled_core.retire(stall ? 0 : static_cast<unsigned>(ready.size()));
    stalled_core.tick();
  }
  EXPECT_EQ(stalled_core.instret(), free_core.instret());
  EXPECT_EQ(stalled_core.exit_code(), free_core.exit_code());
  EXPECT_GT(stalled_core.cycle(), free_core.cycle());
  EXPECT_EQ(stalled_core.trace().size(), free_core.trace().size());
}

TEST(Cva6Timing, TraceDisabledStillCountsInstructions) {
  sim::Memory memory;
  Cva6Core core = make_core(workloads::fib_recursive(8), memory);
  core.set_trace_enabled(false);
  core.run_baseline();
  EXPECT_TRUE(core.trace().empty());
  EXPECT_GT(core.instret(), 100u);
}

TEST(Cva6Timing, RobDepthLimitsCandidates) {
  sim::Memory memory;
  Cva6Config config;
  config.rob_depth = 4;
  Cva6Core core = make_core(workloads::fib_recursive(6), memory, config);
  while (!core.program_done()) {
    const auto ready = core.commit_candidates();
    ASSERT_LE(ready.size(), 2u);  // commit width
    core.retire(static_cast<unsigned>(ready.size()));
    core.tick();
  }
  EXPECT_EQ(core.exit_code(), 8u);
}

}  // namespace
}  // namespace titan::cva6

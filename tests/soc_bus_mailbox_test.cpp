// SoC fabric tests: crossbar decode/latency, mailbox doorbell/completion
// protocol, and PLIC claim/complete semantics.
#include <gtest/gtest.h>

#include "sim/memory.hpp"
#include "soc/bus.hpp"
#include "soc/mailbox.hpp"
#include "soc/memmap.hpp"
#include "soc/plic.hpp"

namespace titan::soc {
namespace {

TEST(Region, ContainsAndEnd) {
  constexpr Region region{0x1000, 0x100};
  EXPECT_TRUE(region.contains(0x1000));
  EXPECT_TRUE(region.contains(0x10FF));
  EXPECT_FALSE(region.contains(0x1100));
  EXPECT_FALSE(region.contains(0xFFF));
  EXPECT_EQ(region.end(), 0x1100u);
}

TEST(Memmap, RotPrivateClassification) {
  EXPECT_TRUE(is_rot_private(kRotSram.base));
  EXPECT_TRUE(is_rot_private(kRotFlash.base + 0x10));
  EXPECT_TRUE(is_rot_private(kRotHmacAccel.base));
  EXPECT_FALSE(is_rot_private(kDram.base));
  EXPECT_FALSE(is_rot_private(kCfiMailbox.base));
  EXPECT_FALSE(is_rot_private(kHostScratchpad.base));
}

TEST(Crossbar, RoutesByRegion) {
  sim::Memory mem_a;
  sim::Memory mem_b;
  MemoryTarget target_a(mem_a);
  MemoryTarget target_b(mem_b);
  Crossbar xbar("axi", 2);
  xbar.map({0x1000, 0x1000}, target_a, 1, "a");
  xbar.map({0x8000, 0x1000}, target_b, 10, "b");

  xbar.write(0x1008, 8, 0xAAAA);
  xbar.write(0x8008, 8, 0xBBBB);
  EXPECT_EQ(mem_a.read64(0x1008), 0xAAAAu);
  EXPECT_EQ(mem_b.read64(0x8008), 0xBBBBu);
  EXPECT_EQ(xbar.read(0x1008, 8).value, 0xAAAAu);
}

TEST(Crossbar, LatencyIsHopPlusDevice) {
  sim::Memory mem;
  MemoryTarget target(mem);
  Crossbar xbar("axi", 2);
  xbar.map({0x0, 0x1000}, target, 10, "spm");
  EXPECT_EQ(xbar.read(0x0, 8).latency, 12u);
  EXPECT_EQ(xbar.write(0x0, 8, 1).latency, 12u);
}

TEST(Crossbar, DecodeErrorOnUnmapped) {
  Crossbar xbar("axi", 2);
  const BusResponse response = xbar.read(0xDEAD0000, 8);
  EXPECT_TRUE(response.decode_error);
}

TEST(Crossbar, RejectsOverlappingRegions) {
  sim::Memory mem;
  MemoryTarget target(mem);
  Crossbar xbar("axi", 1);
  xbar.map({0x1000, 0x1000}, target, 0, "first");
  EXPECT_THROW(xbar.map({0x1800, 0x1000}, target, 0, "second"),
               std::invalid_argument);
}

TEST(Crossbar, DeviceLatencyOverride) {
  sim::Memory mem;
  MemoryTarget target(mem);
  Crossbar xbar("tlul", 3);
  xbar.map({0x0, 0x100}, target, 2, "sram");
  xbar.set_device_latency("sram", 0);
  EXPECT_EQ(xbar.read(0x0, 4).latency, 3u);
  EXPECT_THROW(xbar.set_device_latency("nope", 1), std::invalid_argument);
}

TEST(Crossbar, CountsTransactions) {
  sim::Memory mem;
  MemoryTarget target(mem);
  Crossbar xbar("axi", 1);
  xbar.map({0x0, 0x100}, target, 0, "mem");
  (void)xbar.read(0x0, 4);
  (void)xbar.write(0x0, 4, 1);
  EXPECT_EQ(xbar.transaction_count(), 2u);
}

// ---- Mailbox -----------------------------------------------------------------

TEST(Mailbox, DataRegistersReadWrite) {
  Mailbox mailbox;
  mailbox.write(kCfiMailbox.base + 0x00, 8, 0x1111);
  mailbox.write(kCfiMailbox.base + 0x08, 8, 0x2222);
  EXPECT_EQ(mailbox.read(kCfiMailbox.base + 0x00, 8), 0x1111u);
  EXPECT_EQ(mailbox.read(kCfiMailbox.base + 0x08, 8), 0x2222u);
  EXPECT_EQ(mailbox.data(0), 0x1111u);
  EXPECT_EQ(mailbox.data(1), 0x2222u);
}

TEST(Mailbox, SubWordAccess) {
  Mailbox mailbox;
  mailbox.set_data(0, 0x1122334455667788ULL);
  EXPECT_EQ(mailbox.read(kCfiMailbox.base + 0, 4), 0x55667788u);
  EXPECT_EQ(mailbox.read(kCfiMailbox.base + 4, 4), 0x11223344u);
  mailbox.write(kCfiMailbox.base + 0, 4, 0xAABBCCDD);
  EXPECT_EQ(mailbox.data(0), 0x11223344AABBCCDDULL);
}

TEST(Mailbox, DoorbellTriggersHookOnce) {
  Mailbox mailbox;
  int rings = 0;
  mailbox.set_on_doorbell([&rings] { ++rings; });
  mailbox.write(kCfiMailbox.base + Mailbox::kDoorbellOffset, 8, 1);
  EXPECT_EQ(rings, 1);
  EXPECT_TRUE(mailbox.doorbell_pending());
  EXPECT_EQ(mailbox.read(kCfiMailbox.base + Mailbox::kDoorbellOffset, 8), 1u);
  mailbox.write(kCfiMailbox.base + Mailbox::kDoorbellOffset, 8, 0);
  EXPECT_FALSE(mailbox.doorbell_pending());
  EXPECT_EQ(rings, 1);
}

TEST(Mailbox, CompletionSignalsHostSide) {
  Mailbox mailbox;
  int completions = 0;
  mailbox.set_on_completion([&completions] { ++completions; });
  mailbox.write(kCfiMailbox.base + Mailbox::kCompletionOffset, 8, 1);
  EXPECT_EQ(completions, 1);
  EXPECT_TRUE(mailbox.completion_pending());
  mailbox.clear_completion();
  EXPECT_FALSE(mailbox.completion_pending());
}

TEST(Mailbox, ProtocolRoundTrip) {
  // Full handshake: host writes log words + doorbell; RoT reads, writes
  // verdict to data[0], signals completion; host reads verdict.
  Mailbox mailbox;
  bool rot_woken = false;
  mailbox.set_on_doorbell([&] { rot_woken = true; });

  mailbox.set_data(0, 0xAA);
  mailbox.set_data(1, 0xBB);
  mailbox.ring_doorbell();
  ASSERT_TRUE(rot_woken);

  // RoT side.
  EXPECT_EQ(mailbox.read(kCfiMailbox.base + 0x00, 8), 0xAAu);
  mailbox.write(kCfiMailbox.base + 0x00, 8, 0);  // verdict: ok
  mailbox.clear_doorbell();
  mailbox.write(kCfiMailbox.base + Mailbox::kCompletionOffset, 8, 1);

  EXPECT_TRUE(mailbox.completion_pending());
  EXPECT_EQ(mailbox.data(0), 0u);
  EXPECT_EQ(mailbox.doorbell_count(), 1u);
  EXPECT_EQ(mailbox.completion_count(), 1u);
}

// ---- PLIC --------------------------------------------------------------------

TEST(Plic, ClaimCompleteCycle) {
  Plic plic(4);
  plic.enable(2);
  EXPECT_FALSE(plic.irq_asserted());
  plic.raise(2);
  EXPECT_TRUE(plic.irq_asserted());
  EXPECT_EQ(plic.claim(), 2u);
  EXPECT_FALSE(plic.irq_asserted());  // in service
  plic.complete(2);
  EXPECT_FALSE(plic.irq_asserted());  // pending consumed by claim
  plic.raise(2);
  EXPECT_TRUE(plic.irq_asserted());
}

TEST(Plic, DisabledSourcesDoNotAssert) {
  Plic plic(4);
  plic.raise(1);
  EXPECT_FALSE(plic.irq_asserted());
  plic.enable(1);
  EXPECT_TRUE(plic.irq_asserted());
}

TEST(Plic, LowestIdWinsArbitration) {
  Plic plic(8);
  plic.enable(3);
  plic.enable(5);
  plic.raise(5);
  plic.raise(3);
  EXPECT_EQ(plic.claim(), 3u);
  EXPECT_EQ(plic.claim(), 5u);
  EXPECT_EQ(plic.claim(), 0u);
}

TEST(Plic, MmioInterface) {
  Plic plic(4);
  plic.write(Plic::kEnableOffset, 8, 1u << 2);
  plic.raise(2);
  EXPECT_EQ(plic.read(Plic::kPendingOffset, 8), 1u << 2);
  EXPECT_EQ(plic.read(Plic::kClaimOffset, 8), 2u);  // claim via MMIO
  plic.write(Plic::kClaimOffset, 8, 2);             // complete via MMIO
  EXPECT_EQ(plic.claims(), 1u);
}

TEST(Plic, ClaimWithNothingPendingReturnsZero) {
  Plic plic(2);
  EXPECT_EQ(plic.claim(), 0u);
}

}  // namespace
}  // namespace titan::soc

// Deterministic fault injection and graceful degradation.
//
// Covers the sim::FaultPlan value type (serialize/parse round trip, seeded
// generation), every injection site end to end through a scenario run, each
// overflow policy's loss semantics, the builder's rejection matrix for
// degenerate degradation configs, and the two replay guarantees the ISSUE
// demands: the same plan reproduces a byte-identical RunReport, and the
// fail-closed policy never produces a false negative.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "api/api.hpp"
#include "sim/fault.hpp"

namespace titan {
namespace {

using sim::FaultPlan;
using sim::FaultSite;
using sim::FaultSpec;

// ---- FaultPlan value type ---------------------------------------------------

TEST(FaultPlanTest, SerializeRoundTrip) {
  FaultPlan plan;
  plan.faults.push_back({FaultSite::kDoorbellDrop, 3, 0});
  plan.faults.push_back({FaultSite::kMacCorrupt, 0, 201});
  plan.faults.push_back({FaultSite::kQueueOverflow, 17, 6});
  plan.faults.push_back({FaultSite::kMemBitFlip, 2, 42});
  plan.faults.push_back({FaultSite::kRotStall, 1, 400});
  plan.faults.push_back({FaultSite::kDoorbellDuplicate, 5, 0});

  const std::string text = plan.serialize();
  EXPECT_EQ(FaultPlan::parse(text), plan);
  // Parameterless specs omit the #param suffix.
  EXPECT_NE(text.find("doorbell_drop@3"), std::string::npos);
  EXPECT_EQ(text.find("doorbell_drop@3#"), std::string::npos);
  EXPECT_NE(text.find("mac_corrupt@0#201"), std::string::npos);
}

TEST(FaultPlanTest, EmptyPlanIsEmptyString) {
  EXPECT_EQ(FaultPlan{}.serialize(), "");
  EXPECT_TRUE(FaultPlan::parse("").empty());
}

TEST(FaultPlanTest, ParseRejectsJunk) {
  EXPECT_THROW((void)FaultPlan::parse("not_a_site@0"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("mac_corrupt"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("mac_corrupt@"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("mac_corrupt@x"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("mac_corrupt@1#"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("mac_corrupt@1#2z"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("mac_corrupt@1+"), std::invalid_argument);
}

TEST(FaultPlanTest, SiteNamesRoundTrip) {
  for (std::size_t i = 0; i < sim::kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    const auto back = sim::fault_site_from_name(sim::fault_site_name(site));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, site);
  }
  EXPECT_FALSE(sim::fault_site_from_name("voltage_glitch").has_value());
}

TEST(FaultPlanTest, RandomPlanIsSeedDeterministic) {
  const FaultPlan a = FaultPlan::random(0xFEED, 8);
  const FaultPlan b = FaultPlan::random(0xFEED, 8);
  const FaultPlan c = FaultPlan::random(0xBEEF, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.faults.size(), 8u);
  EXPECT_EQ(FaultPlan::parse(a.serialize()), a);
}

TEST(FaultPlanTest, LatencyBucketsAreLog2) {
  EXPECT_EQ(sim::latency_bucket(0), 0u);
  EXPECT_EQ(sim::latency_bucket(1), 1u);
  EXPECT_EQ(sim::latency_bucket(2), 2u);
  EXPECT_EQ(sim::latency_bucket(3), 2u);
  EXPECT_EQ(sim::latency_bucket(4), 3u);
  EXPECT_EQ(sim::latency_bucket(63), 6u);
  EXPECT_EQ(sim::latency_bucket(64), 7u);
  EXPECT_EQ(sim::latency_bucket(1'000'000), sim::kLatencyBuckets - 1);
}

// ---- Scenario-level helpers -------------------------------------------------

constexpr std::size_t index_of(FaultSite site) {
  return static_cast<std::size_t>(site);
}

api::ScenarioBuilder burst4(const char* name) {
  return api::ScenarioBuilder()
      .name(name)
      .workload(api::Workload::fib(8))
      .drain_burst(4);
}

api::RunReport run(const api::Scenario& scenario) {
  return api::run_scenario(scenario);
}

// ---- Each site, end to end --------------------------------------------------

TEST(FaultSiteTest, DoorbellDropRecoversViaWatchdog) {
  const api::RunReport clean = run(burst4("clean").build());
  const api::RunReport faulted =
      run(burst4("drop")
              .doorbell_retry(2048, 3)
              .faults(FaultPlan::parse("doorbell_drop@1"))
              .build());
  EXPECT_FALSE(faulted.cfi_fault);
  EXPECT_EQ(faulted.exit_code, clean.exit_code);
  EXPECT_EQ(faulted.cf_logs, clean.cf_logs);
  EXPECT_EQ(faulted.resilience.injected[index_of(FaultSite::kDoorbellDrop)],
            1u);
  EXPECT_EQ(faulted.resilience.detected[index_of(FaultSite::kDoorbellDrop)],
            1u);
  EXPECT_EQ(faulted.resilience.doorbell_retries, 1u);
  // The lost pulse costs one full watchdog window of degraded operation.
  EXPECT_GE(faulted.resilience.degraded_cycles, 2048u);
  EXPECT_EQ(faulted.resilience.false_negatives, 0u);
}

TEST(FaultSiteTest, DuplicateDoorbellIsAbsorbed) {
  const api::RunReport clean = run(burst4("clean").build());
  const api::RunReport faulted =
      run(burst4("dup").faults(FaultPlan::parse("doorbell_dup@2")).build());
  EXPECT_FALSE(faulted.cfi_fault);
  EXPECT_EQ(faulted.exit_code, clean.exit_code);
  EXPECT_EQ(faulted.cf_logs, clean.cf_logs);
  // The duplicate pulse reaches the mailbox (one extra ring) but collapses
  // into the already-pending flag.
  EXPECT_EQ(faulted.doorbells, clean.doorbells + 1);
  EXPECT_EQ(
      faulted.resilience.detected[index_of(FaultSite::kDoorbellDuplicate)],
      1u);
  EXPECT_EQ(faulted.violations, 0u);
}

TEST(FaultSiteTest, MacCorruptionFailsClosedWithoutRerequest) {
  const api::RunReport faulted =
      run(api::ScenarioBuilder()
              .name("mac_halt")
              .workload(api::Workload::fib(8))
              .drain_burst(8)
              .batch_mac(true)
              .faults(FaultPlan::parse("mac_corrupt@1#13"))
              .build());
  EXPECT_TRUE(faulted.cfi_fault);
  EXPECT_EQ(faulted.resilience.injected[index_of(FaultSite::kMacCorrupt)], 1u);
  EXPECT_EQ(faulted.resilience.detected[index_of(FaultSite::kMacCorrupt)], 1u);
  EXPECT_EQ(faulted.resilience.false_negatives, 0u);
}

TEST(FaultSiteTest, MacCorruptionRecoversViaRerequest) {
  const api::RunReport clean = run(api::ScenarioBuilder()
                                       .name("clean")
                                       .workload(api::Workload::fib(8))
                                       .drain_burst(8)
                                       .batch_mac(true)
                                       .build());
  const api::RunReport faulted =
      run(api::ScenarioBuilder()
              .name("mac_retry")
              .workload(api::Workload::fib(8))
              .drain_burst(8)
              .batch_mac(true)
              .mac_rerequest(true)
              .faults(FaultPlan::parse("mac_corrupt@1#200"))
              .build());
  EXPECT_FALSE(faulted.cfi_fault);
  EXPECT_EQ(faulted.exit_code, clean.exit_code);
  EXPECT_EQ(faulted.cf_logs, clean.cf_logs);
  EXPECT_EQ(faulted.resilience.mac_retries, 1u);
  EXPECT_EQ(faulted.resilience.detected[index_of(FaultSite::kMacCorrupt)], 1u);
  // The retransmitted burst is one extra mailbox transfer, not extra logs.
  EXPECT_EQ(faulted.batches, clean.batches + 1);
}

TEST(FaultSiteTest, MemFlipSingleBitIsCorrected) {
  const api::RunReport clean =
      run(api::ScenarioBuilder()
              .name("clean")
              .workload(api::Workload::fib(8))
              .build());
  const api::RunReport faulted =
      run(api::ScenarioBuilder()
              .name("flip1")
              .workload(api::Workload::fib(8))
              .faults(FaultPlan::parse("mem_flip@3#42"))
              .build());
  EXPECT_FALSE(faulted.cfi_fault);
  EXPECT_EQ(faulted.exit_code, clean.exit_code);
  EXPECT_EQ(faulted.cf_logs, clean.cf_logs);
  EXPECT_EQ(faulted.resilience.detected[index_of(FaultSite::kMemBitFlip)], 1u);
  EXPECT_EQ(faulted.resilience.dropped_logs, 0u);
}

TEST(FaultSiteTest, MemFlipDoubleBitFailsClosed) {
  const api::RunReport faulted =
      run(api::ScenarioBuilder()
              .name("flip2")
              .workload(api::Workload::fib(8))
              .faults(FaultPlan::parse("mem_flip@3#43"))  // odd = double flip
              .build());
  EXPECT_TRUE(faulted.cfi_fault);
  EXPECT_EQ(faulted.resilience.detected[index_of(FaultSite::kMemBitFlip)], 1u);
  EXPECT_EQ(faulted.resilience.false_negatives, 0u);
}

TEST(FaultSiteTest, RotStallShowsAsDegradedCycles) {
  const api::RunReport clean = run(burst4("clean").build());
  const api::RunReport faulted =
      run(burst4("stall")
              .doorbell_retry(2048, 4)
              .faults(FaultPlan::parse("rot_stall@0#400"))
              .build());
  EXPECT_FALSE(faulted.cfi_fault);
  EXPECT_EQ(faulted.exit_code, clean.exit_code);
  EXPECT_EQ(faulted.resilience.detected[index_of(FaultSite::kRotStall)], 1u);
  EXPECT_EQ(faulted.resilience.degraded_cycles, 400u);
  // Stall (400) < watchdog window (2048): the late service needs no retry.
  EXPECT_EQ(faulted.resilience.doorbell_retries, 0u);
}

// ---- Overflow policies ------------------------------------------------------

api::ScenarioBuilder overflow_scenario(const char* name,
                                       api::OverflowPolicy policy,
                                       std::size_t depth) {
  return api::ScenarioBuilder()
      .name(name)
      .workload(api::Workload::fib(8))
      .queue_depth(depth)
      .overflow_policy(policy)
      .faults(FaultPlan::parse("queue_overflow@5#6"));
}

TEST(OverflowPolicyTest, BackPressureIsLossless) {
  const api::RunReport report = run(
      overflow_scenario("bp", api::OverflowPolicy::kBackPressure, 2).build());
  EXPECT_FALSE(report.cfi_fault);
  EXPECT_EQ(report.resilience.dropped_logs, 0u);
  EXPECT_EQ(report.resilience.false_negatives, 0u);
  EXPECT_EQ(report.resilience.detected[index_of(FaultSite::kQueueOverflow)],
            1u);
  // The forced-full burst stalls commit for (at least) its width.
  EXPECT_GE(report.resilience.degraded_cycles, 6u);
}

TEST(OverflowPolicyTest, FailClosedHaltsWithoutLoss) {
  // Depth 8: the queue still has room at push ordinal 5, so the halt is
  // attributable to the forced burst alone.
  const api::RunReport report = run(
      overflow_scenario("fc", api::OverflowPolicy::kFailClosed, 8).build());
  EXPECT_TRUE(report.cfi_fault);
  EXPECT_EQ(report.resilience.dropped_logs, 0u);
  EXPECT_EQ(report.resilience.false_negatives, 0u);
  EXPECT_EQ(report.resilience.detected[index_of(FaultSite::kQueueOverflow)],
            1u);
}

TEST(OverflowPolicyTest, FailOpenDropsAndCounts) {
  const api::RunReport report = run(
      overflow_scenario("fo", api::OverflowPolicy::kFailOpen, 2).build());
  EXPECT_GT(report.resilience.dropped_logs, 0u);
  EXPECT_GT(report.resilience.false_negatives, 0u);
  // Fail-open is the false-negative window: the forced overflow is
  // deliberately NOT counted as detected.
  EXPECT_EQ(report.resilience.detected[index_of(FaultSite::kQueueOverflow)],
            0u);
}

TEST(OverflowPolicyTest, FailOpenCanMissARealAttack) {
  // Force every push attempt to see a full queue under fail-open: all logs
  // (including the ROP's violating return) retire unchecked.  The attack
  // escapes — and the report says so via false_negatives.
  const api::RunReport report =
      run(api::ScenarioBuilder()
              .name("escape")
              .workload(api::Workload::rop_victim())
              .overflow_policy(api::OverflowPolicy::kFailOpen)
              .faults(FaultPlan::parse("queue_overflow@0#4096"))
              .build());
  EXPECT_FALSE(report.cfi_fault);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_GT(report.resilience.false_negatives, 0u);
}

// ---- ISSUE acceptance: all sites, fail closed, zero false negatives ---------

TEST(ResilienceTest, AllSitesFailClosedHasZeroFalseNegatives) {
  const api::Scenario* scenario =
      api::ScenarioRegistry::global().find("faults/all_sites_closed");
  ASSERT_NE(scenario, nullptr);
  const api::RunReport report = run(*scenario);
  for (std::size_t site = 0; site < sim::kFaultSiteCount; ++site) {
    EXPECT_EQ(report.resilience.injected[site], 1u)
        << "site " << sim::fault_site_name(static_cast<FaultSite>(site));
  }
  EXPECT_EQ(report.resilience.dropped_logs, 0u);
  EXPECT_EQ(report.resilience.false_negatives, 0u);
}

// ---- Replay determinism -----------------------------------------------------

TEST(ResilienceTest, ReplayedPlanIsByteIdentical) {
  const api::Scenario* scenario =
      api::ScenarioRegistry::global().find("faults/all_sites_open");
  ASSERT_NE(scenario, nullptr);
  const api::RunReport first = run(*scenario);
  const api::RunReport second = run(*scenario);
  EXPECT_EQ(first, second);

  sim::JsonWriter json_a, json_b;
  json_a.begin_object();
  first.emit_json_fields(json_a);
  json_a.end_object();
  json_b.begin_object();
  second.emit_json_fields(json_b);
  json_b.end_object();
  EXPECT_EQ(json_a.str(), json_b.str());
}

TEST(ResilienceTest, ParsedPlanReproducesTheOriginalRun) {
  const api::ScenarioBuilder original =
      burst4("replay")
          .doorbell_retry(2048, 3)
          .faults(FaultPlan::parse("doorbell_drop@1+mem_flip@7#42"));
  const api::Scenario built = original.build();
  // Round-trip the plan through the scenario's own serialized identity.
  const std::string serialized = built.serialize();
  const std::size_t at = serialized.find(";faults=");
  ASSERT_NE(at, std::string::npos);
  const std::size_t end = serialized.find(';', at + 8);
  const FaultPlan replay = FaultPlan::parse(
      serialized.substr(at + 8, end == std::string::npos
                                    ? serialized.size() - 1 - (at + 8)
                                    : end - (at + 8)));
  const api::Scenario rebuilt = burst4("replay")
                                    .doorbell_retry(2048, 3)
                                    .faults(replay)
                                    .build();
  EXPECT_EQ(built.serialize(), rebuilt.serialize());
  EXPECT_EQ(run(built), run(rebuilt));
}

TEST(ResilienceTest, FaultFreeFingerprintIsUnchanged) {
  // Fault knobs at their defaults must not perturb existing scenario
  // fingerprints (shard-merge identity stability across this PR).
  const std::string serialized =
      burst4("baseline").build().serialize();
  EXPECT_EQ(serialized.find("faults="), std::string::npos);
  EXPECT_EQ(serialized.find("ofp="), std::string::npos);
  EXPECT_EQ(serialized.find("dbretry="), std::string::npos);
  EXPECT_EQ(serialized.find("macrr="), std::string::npos);

  const std::string faulted = burst4("baseline")
                                  .faults(FaultPlan::parse("mem_flip@1#2"))
                                  .build()
                                  .serialize();
  EXPECT_NE(faulted.find("faults=mem_flip@1#2"), std::string::npos);
  EXPECT_NE(faulted, serialized);
}

// ---- Builder rejection matrix -----------------------------------------------

TEST(FaultBuilderTest, DoorbellDropRequiresWatchdog) {
  EXPECT_THROW(
      (void)burst4("x").faults(FaultPlan::parse("doorbell_drop@0")).build(),
      api::ScenarioError);
}

TEST(FaultBuilderTest, WatchdogRequiresBatchedDrain) {
  EXPECT_THROW((void)api::ScenarioBuilder()
                   .name("x")
                   .workload(api::Workload::fib(8))
                   .drain_burst(1)
                   .doorbell_retry(512, 3)
                   .build(),
               api::ScenarioError);
}

TEST(FaultBuilderTest, WatchdogBoundsEnforced) {
  EXPECT_THROW((void)burst4("x").doorbell_retry(200'000, 3).build(),
               api::ScenarioError);
  EXPECT_THROW((void)burst4("x").doorbell_retry(512, 0).build(),
               api::ScenarioError);
  EXPECT_THROW((void)burst4("x").doorbell_retry(512, 9).build(),
               api::ScenarioError);
}

TEST(FaultBuilderTest, MacRerequestRequiresBatchMac) {
  EXPECT_THROW((void)burst4("x").mac_rerequest(true).build(),
               api::ScenarioError);
}

TEST(FaultBuilderTest, FaultParamBoundsEnforced) {
  EXPECT_THROW(
      (void)burst4("x").faults(FaultPlan::parse("rot_stall@0#200000")).build(),
      api::ScenarioError);
  EXPECT_THROW(
      (void)burst4("x")
          .faults(FaultPlan::parse("queue_overflow@0#5000"))
          .build(),
      api::ScenarioError);
}

}  // namespace
}  // namespace titan

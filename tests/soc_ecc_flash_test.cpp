// ECC and scrambled-flash tests, including exhaustive single/double bit-error
// properties for the SECDED codec.
#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hpp"
#include "soc/ecc.hpp"
#include "soc/flash.hpp"

namespace titan::soc {
namespace {

TEST(Secded, WidthParameters) {
  const Secded ecc32(32);
  EXPECT_EQ(ecc32.parity_bits(), 6u);
  EXPECT_EQ(ecc32.codeword_bits(), 39u);  // classic (39,32)
  const Secded ecc16(16);
  EXPECT_EQ(ecc16.parity_bits(), 5u);
  EXPECT_EQ(ecc16.codeword_bits(), 22u);
}

TEST(Secded, RejectsBadWidths) {
  EXPECT_THROW(Secded(0), std::invalid_argument);
  EXPECT_THROW(Secded(58), std::invalid_argument);
}

TEST(Secded, CleanRoundTrip) {
  const Secded ecc(32);
  sim::Rng rng(5);
  for (int trial = 0; trial < 1000; ++trial) {
    const auto data = static_cast<std::uint32_t>(rng.next());
    const EccResult result = ecc.decode(ecc.encode(data));
    ASSERT_EQ(result.status, EccStatus::kOk);
    ASSERT_EQ(result.data, data);
  }
}

// Property: every single-bit error in the codeword is corrected, for every
// bit position, across random payloads.
class SecdedWidthTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SecdedWidthTest, CorrectsAllSingleBitErrors) {
  const Secded ecc(GetParam());
  sim::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t data =
        rng.next() & ((GetParam() == 64 ? ~0ULL : (1ULL << GetParam()) - 1));
    const std::uint64_t codeword = ecc.encode(data);
    for (unsigned bit = 0; bit < ecc.codeword_bits(); ++bit) {
      const std::uint64_t corrupted = codeword ^ (1ULL << bit);
      const EccResult result = ecc.decode(corrupted);
      ASSERT_EQ(result.status, EccStatus::kCorrected)
          << "bit=" << bit << " data=" << data;
      ASSERT_EQ(result.data, data) << "bit=" << bit;
    }
  }
}

TEST_P(SecdedWidthTest, DetectsAllDoubleBitErrors) {
  const Secded ecc(GetParam());
  sim::Rng rng(GetParam() + 100);
  const std::uint64_t data =
      rng.next() & ((GetParam() == 64 ? ~0ULL : (1ULL << GetParam()) - 1));
  const std::uint64_t codeword = ecc.encode(data);
  for (unsigned bit_a = 0; bit_a < ecc.codeword_bits(); ++bit_a) {
    for (unsigned bit_b = bit_a + 1; bit_b < ecc.codeword_bits(); ++bit_b) {
      const std::uint64_t corrupted =
          codeword ^ (1ULL << bit_a) ^ (1ULL << bit_b);
      const EccResult result = ecc.decode(corrupted);
      ASSERT_EQ(result.status, EccStatus::kUncorrectable)
          << "bits=" << bit_a << "," << bit_b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SecdedWidthTest,
                         ::testing::Values(8, 16, 32, 57));

// ---- Scrambled flash -----------------------------------------------------------

TEST(ScrambledFlash, RequiresPowerOfTwoSize) {
  EXPECT_THROW(ScrambledFlash(1, 1000), std::invalid_argument);
}

TEST(ScrambledFlash, ProgramReadRoundTrip) {
  ScrambledFlash flash(0xC0FFEE, 1024);
  sim::Rng rng(6);
  std::vector<std::uint32_t> values(256);
  for (std::uint32_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<std::uint32_t>(rng.next());
    flash.program(i, values[i]);
  }
  for (std::uint32_t i = 0; i < values.size(); ++i) {
    const EccResult result = flash.read(i);
    ASSERT_EQ(result.status, EccStatus::kOk);
    ASSERT_EQ(result.data, values[i]);
  }
}

TEST(ScrambledFlash, AddressScramblingIsBijective) {
  ScrambledFlash flash(0xBEEF, 4096);
  std::set<std::uint32_t> seen;
  for (std::uint32_t i = 0; i < 4096; ++i) {
    const std::uint32_t phys = flash.scramble_address(i);
    ASSERT_LT(phys, 4096u);
    ASSERT_TRUE(seen.insert(phys).second) << "collision at " << i;
  }
}

TEST(ScrambledFlash, ScramblingIsKeyDependent) {
  ScrambledFlash flash_a(1, 4096);
  ScrambledFlash flash_b(2, 4096);
  int differing = 0;
  for (std::uint32_t i = 0; i < 4096; ++i) {
    if (flash_a.scramble_address(i) != flash_b.scramble_address(i)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 4000);
}

TEST(ScrambledFlash, DataIsScrambledAtRest) {
  // Two devices with different keys storing the same logical value must not
  // (generally) hold the same physical codeword — checked indirectly: the
  // same cell read under the wrong key yields different data.
  ScrambledFlash flash_a(10, 64);
  ScrambledFlash flash_b(20, 64);
  flash_a.program(0, 0x12345678);
  flash_b.program(0, 0x12345678);
  EXPECT_EQ(flash_a.read(0).data, flash_b.read(0).data);  // each self-consistent
}

TEST(ScrambledFlash, SingleBitflipCorrected) {
  ScrambledFlash flash(0xAB, 64);
  flash.program(5, 0xCAFEBABE);
  flash.inject_bitflip(5, 7);
  const EccResult result = flash.read(5);
  EXPECT_EQ(result.status, EccStatus::kCorrected);
  EXPECT_EQ(result.data, 0xCAFEBABEu);
  EXPECT_EQ(flash.corrected_reads(), 1u);
}

TEST(ScrambledFlash, DoubleBitflipDetected) {
  ScrambledFlash flash(0xAB, 64);
  flash.program(5, 0xCAFEBABE);
  flash.inject_bitflip(5, 7);
  flash.inject_bitflip(5, 20);
  const EccResult result = flash.read(5);
  EXPECT_EQ(result.status, EccStatus::kUncorrectable);
  EXPECT_EQ(flash.failed_reads(), 1u);
}

TEST(ScrambledFlash, ErasedReadsAllOnes) {
  ScrambledFlash flash(0xAB, 64);
  const EccResult result = flash.read(3);
  EXPECT_EQ(result.status, EccStatus::kOk);
  EXPECT_EQ(result.data, 0xFFFFFFFFu);
}

TEST(ScrambledFlash, OutOfRangeThrows) {
  ScrambledFlash flash(0xAB, 64);
  EXPECT_THROW(flash.program(64, 1), std::out_of_range);
  EXPECT_THROW((void)flash.read(64), std::out_of_range);
  flash.program(0, 1);
  EXPECT_THROW(flash.inject_bitflip(0, 39), std::out_of_range);
  EXPECT_THROW(flash.inject_bitflip(1, 0), std::logic_error);
}

}  // namespace
}  // namespace titan::soc

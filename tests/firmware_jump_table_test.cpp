// Forward-edge enforcement in the RV32 firmware: the jump-table variant of
// the policy, provisioned through RoT SRAM, end-to-end on the Ibex model and
// through full co-simulation.
#include <gtest/gtest.h>

#include <memory>

#include "firmware/builder.hpp"
#include "rv/encode.hpp"
#include "soc/mailbox.hpp"
#include "titancfi/rot_subsystem.hpp"
#include "titancfi/soc_top.hpp"
#include "workloads/programs.hpp"

namespace titan::fw {
namespace {

struct JtHarness {
  soc::Mailbox mailbox;
  sim::Memory soc_memory;
  std::unique_ptr<cfi::RotSubsystem> rot;

  JtHarness() {
    FirmwareConfig config;
    config.variant = FwVariant::kPolling;
    config.enable_jump_table = true;
    rot = std::make_unique<cfi::RotSubsystem>(
        build_firmware(config), cfi::RotFabric::kBaseline, mailbox, soc_memory);
    for (int i = 0; i < 10000; ++i) {
      if (rot->section_of(rot->core().pc()) == "main") {
        break;
      }
      rot->step();
    }
  }

  void provision(const std::vector<std::uint32_t>& targets) {
    rot->sram().write32(FwLayout::kJumpTable,
                        static_cast<std::uint32_t>(targets.size()));
    for (std::size_t i = 0; i < targets.size(); ++i) {
      rot->sram().write32(FwLayout::kJumpTable + 4 + 4 * i, targets[i]);
    }
  }

  std::uint64_t check(const cfi::CommitLog& log) {
    const auto beats = log.pack();
    for (unsigned i = 0; i < beats.size(); ++i) {
      mailbox.set_data(i, beats[i]);
    }
    mailbox.ring_doorbell();
    for (int guard = 0; guard < 1'000'000; ++guard) {
      if (mailbox.completion_pending() &&
          rot->section_of(rot->core().pc()) == "main") {
        break;
      }
      rot->step();
    }
    EXPECT_TRUE(mailbox.completion_pending());
    const std::uint64_t verdict = mailbox.data(0) & 1;
    mailbox.clear_completion();
    mailbox.set_data(0, 0);
    return verdict;
  }
};

cfi::CommitLog ijump(std::uint64_t target) {
  cfi::CommitLog log;
  log.pc = 0x8000'0000;
  log.encoding = rv::enc_i(0x67, 0, 0, 10, 0);  // jr a0
  log.next = log.pc + 4;
  log.target = target;
  return log;
}

cfi::CommitLog indirect_call(std::uint64_t target) {
  cfi::CommitLog log;
  log.pc = 0x8000'0100;
  log.encoding = rv::enc_i(0x67, 0, 1, 10, 0);  // jalr ra, 0(a0)
  log.next = log.pc + 4;
  log.target = target;
  return log;
}

TEST(FirmwareJumpTable, EmptyTableIsInert) {
  JtHarness harness;
  EXPECT_EQ(harness.check(ijump(0x8000'5000)), 0u);
  EXPECT_EQ(harness.check(indirect_call(0x8000'6000)), 0u);
}

TEST(FirmwareJumpTable, RegisteredTargetsAccepted) {
  JtHarness harness;
  harness.provision({0x8000'5000, 0x8000'6000, 0x8000'7000});
  EXPECT_EQ(harness.check(ijump(0x8000'5000)), 0u);
  EXPECT_EQ(harness.check(ijump(0x8000'7000)), 0u);
  EXPECT_EQ(harness.check(indirect_call(0x8000'6000)), 0u);
}

TEST(FirmwareJumpTable, UnregisteredTargetsRejected) {
  JtHarness harness;
  harness.provision({0x8000'5000});
  EXPECT_EQ(harness.check(ijump(0x8000'5004)), 1u);
  EXPECT_EQ(harness.check(indirect_call(0xDEAD'BEE0)), 1u);
}

TEST(FirmwareJumpTable, DirectCallsUnaffected) {
  JtHarness harness;
  harness.provision({0x8000'5000});  // tiny table
  cfi::CommitLog call;
  call.pc = 0x8000'0000;
  call.encoding = rv::enc_j(0x6F, 1, 0x100);  // jal ra (direct): no jt check
  call.next = call.pc + 4;
  call.target = call.pc + 0x100;  // NOT in the table — still fine
  EXPECT_EQ(harness.check(call), 0u);
  // And the matching return works (shadow stack still active).
  cfi::CommitLog ret;
  ret.pc = 0x8000'0200;
  ret.encoding = 0x00008067;
  ret.next = ret.pc + 4;
  ret.target = call.next;
  EXPECT_EQ(harness.check(ret), 0u);
}

TEST(FirmwareJumpTable, CoSimCatchesCorruptedFunctionPointer) {
  // indirect_dispatch jumps through a function-pointer table in DRAM.
  // Provision the RoT jump table with the four legitimate handlers, then
  // corrupt one DRAM table slot: the CFI fault must fire at the indirect
  // call that consumes it.
  const rv::Image program = workloads::indirect_dispatch(8);

  FirmwareConfig fw_config;
  fw_config.variant = FwVariant::kPolling;
  fw_config.enable_jump_table = true;
  const rv::Image firmware = build_firmware(fw_config);

  // Discover the legitimate handler addresses from a bare run.
  std::vector<std::uint32_t> handlers;
  {
    sim::Memory memory;
    memory.load(program.base, program.bytes);
    cva6::Cva6Config config;
    config.reset_pc = program.base;
    cva6::Cva6Core core(config, memory);
    core.run_baseline();
    for (const auto& record : core.trace()) {
      if (record.kind == rv::CfKind::kCall &&
          (record.encoding & 0x7F) == 0x67) {
        handlers.push_back(static_cast<std::uint32_t>(record.target));
      }
    }
    ASSERT_FALSE(handlers.empty());
  }

  const auto run_once = [&](bool corrupt) {
    cfi::SocConfig config;
    config.queue_depth = 8;
    cfi::SocTop soc(config, program, firmware);
    // Provision the RoT-side table.
    soc.rot().sram().write32(FwLayout::kJumpTable,
                             static_cast<std::uint32_t>(handlers.size()));
    for (std::size_t i = 0; i < handlers.size(); ++i) {
      soc.rot().sram().write32(FwLayout::kJumpTable + 4 + 4 * i, handlers[i]);
    }
    if (corrupt) {
      // The guest's function-pointer table lives right after its handlers;
      // find it by scanning DRAM for the first handler's address.
      const std::uint64_t handler0 = handlers[0];
      for (std::uint64_t addr = program.base;
           addr < program.base + program.bytes.size(); addr += 8) {
        if (soc.host_memory().read64(addr) == handler0) {
          soc.host_memory().write64(addr, handler0 + 2);  // skew the pointer
          break;
        }
      }
    }
    return soc.run();
  };

  const auto clean = run_once(false);
  EXPECT_FALSE(clean.cfi_fault);
  EXPECT_EQ(clean.violations, 0u);

  const auto attacked = run_once(true);
  EXPECT_TRUE(attacked.cfi_fault);
  EXPECT_EQ(attacked.fault_log.classify(), rv::CfKind::kCall);
}

}  // namespace
}  // namespace titan::fw

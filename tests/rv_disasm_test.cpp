// Disassembler golden-string tests (objdump-style syntax).
#include "rv/disasm.hpp"

#include <gtest/gtest.h>

#include "rv/decode.hpp"
#include "rv/encode.hpp"

namespace titan::rv {
namespace {

std::string d64(std::uint32_t raw) { return disasm(decode(raw, Xlen::k64)); }

TEST(Disasm, SystemInstructions) {
  EXPECT_EQ(d64(0x00000073), "ecall");
  EXPECT_EQ(d64(0x00100073), "ebreak");
  EXPECT_EQ(d64(0x30200073), "mret");
  EXPECT_EQ(d64(0x10500073), "wfi");
}

TEST(Disasm, ArithmeticForms) {
  EXPECT_EQ(d64(0x00000013), "addi zero, zero, 0");
  EXPECT_EQ(d64(0xFF010113), "addi sp, sp, -16");
  EXPECT_EQ(d64(enc_r(0x33, 0, 0, 10, 11, 12)), "add a0, a1, a2");
  EXPECT_EQ(d64(enc_r(0x33, 0, 0x20, 5, 6, 7)), "sub t0, t1, t2");
  EXPECT_EQ(d64(enc_r(0x33, 4, 0x01, 28, 29, 30)), "div t3, t4, t5");
}

TEST(Disasm, MemoryForms) {
  EXPECT_EQ(d64(0x00113423), "sd ra, 8(sp)");
  EXPECT_EQ(d64(enc_i(0x03, 3, 8, 2, -24)), "ld s0, -24(sp)");
  EXPECT_EQ(d64(enc_i(0x03, 2, 15, 10, 0)), "lw a5, 0(a0)");
}

TEST(Disasm, BranchAndJumpForms) {
  EXPECT_EQ(d64(enc_b(0x63, 1, 10, 0, -4)), "bne a0, zero, -4");
  EXPECT_EQ(d64(enc_j(0x6F, 1, 16)), "jal ra, 16");
  EXPECT_EQ(d64(0x00008067), "jalr zero, 0(ra)");
}

TEST(Disasm, UpperImmediateShowsPage) {
  EXPECT_EQ(d64(enc_u(0x37, 10, 0x12345000)), "lui a0, 0x12345");
  EXPECT_EQ(d64(enc_u(0x17, 3, 0x1000)), "auipc gp, 0x1");
}

TEST(Disasm, CsrForms) {
  EXPECT_EQ(d64(0x34202573), "csrrs a0, 0x342, zero");
  EXPECT_EQ(d64(enc_i(0x73, 5, 0, 21, 0x340)), "csrrwi zero, 0x340, 21");
}

TEST(Disasm, ShiftImmediates) {
  EXPECT_EQ(d64(enc_i(0x13, 1, 10, 10, 12)), "slli a0, a0, 12");
  EXPECT_EQ(d64(enc_i(0x13, 5, 10, 10, 0x41D)), "srai a0, a0, 29");
}

TEST(Disasm, CompressedDisassemblesAsExpansion) {
  EXPECT_EQ(disasm(decode(0x8082, Xlen::k64)), "jalr zero, 0(ra)");
  EXPECT_EQ(disasm(decode(0x4501, Xlen::k64)), "addi a0, zero, 0");
}

TEST(Disasm, IllegalInstruction) {
  EXPECT_EQ(d64(0xFFFFFFFF), "illegal");
}

TEST(Disasm, EveryRegisterNameRoundTrips) {
  static constexpr const char* kExpected[32] = {
      "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
      "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
      "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
  for (std::uint8_t reg = 0; reg < 32; ++reg) {
    EXPECT_EQ(reg_name(reg), kExpected[reg]);
  }
}

}  // namespace
}  // namespace titan::rv

// Differential tests of the CVA6 (RV64IMC) functional executor: for every
// ALU / M-extension / immediate / memory / branch operation, random operand
// sweeps are run through the ISS (as assembled programs) and compared
// against C++ reference semantics.
#include <gtest/gtest.h>

#include <functional>

#include "cva6/core.hpp"
#include "rv/assembler.hpp"
#include "sim/rng.hpp"

namespace titan::cva6 {
namespace {

using rv::Assembler;
using rv::Reg;
using rv::Xlen;

using u64 = std::uint64_t;
using i64 = std::int64_t;
using u32 = std::uint32_t;
using i32 = std::int32_t;

u64 run(const rv::Image& image) {
  sim::Memory memory;
  memory.load(image.base, image.bytes);
  Cva6Config config;
  config.reset_pc = image.base;
  Cva6Core core(config, memory);
  core.set_trace_enabled(false);
  core.run_baseline();
  return core.exit_code();
}

u64 sext32(u32 value) { return static_cast<u64>(static_cast<i64>(static_cast<i32>(value))); }

/// Interesting operand corpus: boundary values + random fill.
std::vector<u64> corpus(sim::Rng& rng, std::size_t count) {
  std::vector<u64> values = {
      0,
      1,
      2,
      0xFFFFFFFFFFFFFFFFull,                    // -1
      0x8000000000000000ull,                    // INT64_MIN
      0x7FFFFFFFFFFFFFFFull,                    // INT64_MAX
      0x80000000ull,                            // INT32_MIN as u32
      0x7FFFFFFFull,
      0xFFFFFFFFull,
      63,
      64,
  };
  while (values.size() < count) {
    values.push_back(rng.next());
  }
  return values;
}

// ---- Register-register ops -----------------------------------------------------

struct RegRegCase {
  const char* name;
  void (Assembler::*emit)(Reg, Reg, Reg);
  std::function<u64(u64, u64)> reference;
};

class RegRegDiffTest : public ::testing::TestWithParam<RegRegCase> {};

TEST_P(RegRegDiffTest, MatchesReference) {
  const RegRegCase& test_case = GetParam();
  sim::Rng rng(std::hash<std::string>{}(test_case.name));
  const auto values = corpus(rng, 18);
  for (const u64 x : values) {
    for (const u64 y : values) {
      Assembler a(Xlen::k64, 0x8000'0000);
      a.li(Reg::kA1, static_cast<i64>(x));
      a.li(Reg::kA2, static_cast<i64>(y));
      (a.*test_case.emit)(Reg::kA0, Reg::kA1, Reg::kA2);
      a.ecall();
      ASSERT_EQ(run(a.finish()), test_case.reference(x, y))
          << test_case.name << "(0x" << std::hex << x << ", 0x" << y << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rv64Ops, RegRegDiffTest,
    ::testing::Values(
        RegRegCase{"add", &Assembler::add, [](u64 x, u64 y) { return x + y; }},
        RegRegCase{"sub", &Assembler::sub, [](u64 x, u64 y) { return x - y; }},
        RegRegCase{"and", &Assembler::and_, [](u64 x, u64 y) { return x & y; }},
        RegRegCase{"or", &Assembler::or_, [](u64 x, u64 y) { return x | y; }},
        RegRegCase{"xor", &Assembler::xor_, [](u64 x, u64 y) { return x ^ y; }},
        RegRegCase{"sll", &Assembler::sll, [](u64 x, u64 y) { return x << (y & 63); }},
        RegRegCase{"srl", &Assembler::srl, [](u64 x, u64 y) { return x >> (y & 63); }},
        RegRegCase{"sra", &Assembler::sra,
                   [](u64 x, u64 y) {
                     return static_cast<u64>(static_cast<i64>(x) >> (y & 63));
                   }},
        RegRegCase{"slt", &Assembler::slt,
                   [](u64 x, u64 y) {
                     return static_cast<u64>(static_cast<i64>(x) < static_cast<i64>(y));
                   }},
        RegRegCase{"sltu", &Assembler::sltu, [](u64 x, u64 y) { return static_cast<u64>(x < y); }},
        RegRegCase{"mul", &Assembler::mul, [](u64 x, u64 y) { return x * y; }},
        RegRegCase{"mulh", &Assembler::mulh,
                   [](u64 x, u64 y) {
                     return static_cast<u64>(
                         (static_cast<__int128>(static_cast<i64>(x)) *
                          static_cast<i64>(y)) >> 64);
                   }},
        RegRegCase{"mulhu", &Assembler::mulhu,
                   [](u64 x, u64 y) {
                     return static_cast<u64>(
                         (static_cast<unsigned __int128>(x) * y) >> 64);
                   }},
        RegRegCase{"mulhsu", &Assembler::mulhsu,
                   [](u64 x, u64 y) {
                     return static_cast<u64>(
                         (static_cast<__int128>(static_cast<i64>(x)) *
                          static_cast<unsigned __int128>(y)) >> 64);
                   }},
        RegRegCase{"div", &Assembler::div,
                   [](u64 x, u64 y) -> u64 {
                     if (y == 0) return ~u64{0};
                     if (static_cast<i64>(x) == INT64_MIN && static_cast<i64>(y) == -1) return x;
                     return static_cast<u64>(static_cast<i64>(x) / static_cast<i64>(y));
                   }},
        RegRegCase{"divu", &Assembler::divu,
                   [](u64 x, u64 y) { return y == 0 ? ~u64{0} : x / y; }},
        RegRegCase{"rem", &Assembler::rem,
                   [](u64 x, u64 y) -> u64 {
                     if (y == 0) return x;
                     if (static_cast<i64>(x) == INT64_MIN && static_cast<i64>(y) == -1) return 0;
                     return static_cast<u64>(static_cast<i64>(x) % static_cast<i64>(y));
                   }},
        RegRegCase{"remu", &Assembler::remu,
                   [](u64 x, u64 y) { return y == 0 ? x : x % y; }},
        RegRegCase{"addw", &Assembler::addw,
                   [](u64 x, u64 y) { return sext32(static_cast<u32>(x + y)); }},
        RegRegCase{"subw", &Assembler::subw,
                   [](u64 x, u64 y) { return sext32(static_cast<u32>(x - y)); }},
        RegRegCase{"sllw", &Assembler::sllw,
                   [](u64 x, u64 y) { return sext32(static_cast<u32>(x) << (y & 31)); }},
        RegRegCase{"srlw", &Assembler::srlw,
                   [](u64 x, u64 y) { return sext32(static_cast<u32>(x) >> (y & 31)); }},
        RegRegCase{"sraw", &Assembler::sraw,
                   [](u64 x, u64 y) {
                     return sext32(static_cast<u32>(static_cast<i32>(static_cast<u32>(x)) >> (y & 31)));
                   }},
        RegRegCase{"mulw", &Assembler::mulw,
                   [](u64 x, u64 y) {
                     return sext32(static_cast<u32>(x) * static_cast<u32>(y));
                   }},
        RegRegCase{"divw", &Assembler::divw,
                   [](u64 x, u64 y) -> u64 {
                     const auto a = static_cast<i32>(x);
                     const auto b = static_cast<i32>(y);
                     if (b == 0) return ~u64{0};
                     if (a == INT32_MIN && b == -1) return sext32(static_cast<u32>(a));
                     return sext32(static_cast<u32>(a / b));
                   }},
        RegRegCase{"remw", &Assembler::remw,
                   [](u64 x, u64 y) -> u64 {
                     const auto a = static_cast<i32>(x);
                     const auto b = static_cast<i32>(y);
                     if (b == 0) return sext32(static_cast<u32>(a));
                     if (a == INT32_MIN && b == -1) return 0;
                     return sext32(static_cast<u32>(a % b));
                   }}),
    [](const ::testing::TestParamInfo<RegRegCase>& info) {
      return info.param.name;
    });

// ---- Immediate ops -------------------------------------------------------------

struct ImmCase {
  const char* name;
  void (Assembler::*emit)(Reg, Reg, i32);
  std::function<u64(u64, i32)> reference;
};

class ImmDiffTest : public ::testing::TestWithParam<ImmCase> {};

TEST_P(ImmDiffTest, MatchesReference) {
  const ImmCase& test_case = GetParam();
  sim::Rng rng(std::hash<std::string>{}(test_case.name) + 7);
  const auto values = corpus(rng, 14);
  const i32 imms[] = {-2048, -1, 0, 1, 7, 2047};
  for (const u64 x : values) {
    for (const i32 imm : imms) {
      Assembler a(Xlen::k64, 0x8000'0000);
      a.li(Reg::kA1, static_cast<i64>(x));
      (a.*test_case.emit)(Reg::kA0, Reg::kA1, imm);
      a.ecall();
      ASSERT_EQ(run(a.finish()), test_case.reference(x, imm))
          << test_case.name << "(0x" << std::hex << x << ", " << std::dec
          << imm << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rv64ImmOps, ImmDiffTest,
    ::testing::Values(
        ImmCase{"addi", &Assembler::addi,
                [](u64 x, i32 imm) { return x + static_cast<u64>(static_cast<i64>(imm)); }},
        ImmCase{"andi", &Assembler::andi,
                [](u64 x, i32 imm) { return x & static_cast<u64>(static_cast<i64>(imm)); }},
        ImmCase{"ori", &Assembler::ori,
                [](u64 x, i32 imm) { return x | static_cast<u64>(static_cast<i64>(imm)); }},
        ImmCase{"xori", &Assembler::xori,
                [](u64 x, i32 imm) { return x ^ static_cast<u64>(static_cast<i64>(imm)); }},
        ImmCase{"slti", &Assembler::slti,
                [](u64 x, i32 imm) { return static_cast<u64>(static_cast<i64>(x) < imm); }},
        ImmCase{"sltiu", &Assembler::sltiu,
                [](u64 x, i32 imm) {
                  return static_cast<u64>(x < static_cast<u64>(static_cast<i64>(imm)));
                }},
        ImmCase{"addiw", &Assembler::addiw,
                [](u64 x, i32 imm) {
                  return sext32(static_cast<u32>(x + static_cast<u64>(static_cast<i64>(imm))));
                }}),
    [](const ::testing::TestParamInfo<ImmCase>& info) { return info.param.name; });

// ---- Shifts by immediate ----------------------------------------------------------

TEST(ShiftImmDiff, AllShiftsAllAmounts) {
  sim::Rng rng(0x5111);
  const auto values = corpus(rng, 8);
  for (const u64 x : values) {
    for (const u32 shamt : {0u, 1u, 31u, 32u, 63u}) {
      const auto check = [&](auto emit, u64 expected, const char* name) {
        Assembler a(Xlen::k64, 0x8000'0000);
        a.li(Reg::kA1, static_cast<i64>(x));
        emit(a, shamt);
        a.ecall();
        ASSERT_EQ(run(a.finish()), expected)
            << name << "(0x" << std::hex << x << ", " << std::dec << shamt << ")";
      };
      check([&](Assembler& a, u32 s) { a.slli(Reg::kA0, Reg::kA1, s); },
            x << shamt, "slli");
      check([&](Assembler& a, u32 s) { a.srli(Reg::kA0, Reg::kA1, s); },
            x >> shamt, "srli");
      check([&](Assembler& a, u32 s) { a.srai(Reg::kA0, Reg::kA1, s); },
            static_cast<u64>(static_cast<i64>(x) >> shamt), "srai");
      if (shamt < 32) {
        check([&](Assembler& a, u32 s) { a.slliw(Reg::kA0, Reg::kA1, s); },
              sext32(static_cast<u32>(x) << shamt), "slliw");
        check([&](Assembler& a, u32 s) { a.srliw(Reg::kA0, Reg::kA1, s); },
              sext32(static_cast<u32>(x) >> shamt), "srliw");
        check([&](Assembler& a, u32 s) { a.sraiw(Reg::kA0, Reg::kA1, s); },
              sext32(static_cast<u32>(static_cast<i32>(static_cast<u32>(x)) >> shamt)),
              "sraiw");
      }
    }
  }
}

// ---- Memory: width/sign-extension matrix ---------------------------------------------

TEST(MemoryDiff, LoadStoreWidthsAndSignExtension) {
  sim::Rng rng(0x3E3E);
  for (int trial = 0; trial < 40; ++trial) {
    const u64 value = rng.next();
    const i64 addr = 0x8020'0000 + static_cast<i64>(rng.uniform(0, 256)) * 8;

    struct WidthCase {
      void (Assembler::*store)(Reg, Reg, i32);
      void (Assembler::*load)(Reg, Reg, i32);
      std::function<u64(u64)> expected;
    };
    const WidthCase cases[] = {
        {&Assembler::sb, &Assembler::lb,
         [](u64 v) { return static_cast<u64>(static_cast<i64>(static_cast<std::int8_t>(v))); }},
        {&Assembler::sb, &Assembler::lbu, [](u64 v) { return v & 0xFF; }},
        {&Assembler::sh, &Assembler::lh,
         [](u64 v) { return static_cast<u64>(static_cast<i64>(static_cast<std::int16_t>(v))); }},
        {&Assembler::sh, &Assembler::lhu, [](u64 v) { return v & 0xFFFF; }},
        {&Assembler::sw, &Assembler::lw, [](u64 v) { return sext32(static_cast<u32>(v)); }},
        {&Assembler::sw, &Assembler::lwu, [](u64 v) { return v & 0xFFFFFFFF; }},
        {&Assembler::sd, &Assembler::ld, [](u64 v) { return v; }},
    };
    for (const WidthCase& width_case : cases) {
      Assembler a(Xlen::k64, 0x8000'0000);
      a.li(Reg::kA1, static_cast<i64>(value));
      a.li(Reg::kA2, addr);
      (a.*width_case.store)(Reg::kA1, Reg::kA2, 8);
      (a.*width_case.load)(Reg::kA0, Reg::kA2, 8);
      a.ecall();
      ASSERT_EQ(run(a.finish()), width_case.expected(value))
          << "value=0x" << std::hex << value;
    }
  }
}

// ---- Branches: predicate matrix -----------------------------------------------------

TEST(BranchDiff, AllConditionsBothOutcomes) {
  sim::Rng rng(0xB4);
  const auto values = corpus(rng, 10);
  struct BranchCase {
    void (Assembler::*emit)(Reg, Reg, Assembler::Label);
    std::function<bool(u64, u64)> predicate;
  };
  const BranchCase cases[] = {
      {&Assembler::beq, [](u64 x, u64 y) { return x == y; }},
      {&Assembler::bne, [](u64 x, u64 y) { return x != y; }},
      {&Assembler::blt, [](u64 x, u64 y) { return static_cast<i64>(x) < static_cast<i64>(y); }},
      {&Assembler::bge, [](u64 x, u64 y) { return static_cast<i64>(x) >= static_cast<i64>(y); }},
      {&Assembler::bltu, [](u64 x, u64 y) { return x < y; }},
      {&Assembler::bgeu, [](u64 x, u64 y) { return x >= y; }},
  };
  for (const BranchCase& branch_case : cases) {
    for (const u64 x : values) {
      for (const u64 y : values) {
        Assembler a(Xlen::k64, 0x8000'0000);
        auto taken = a.new_label();
        a.li(Reg::kA1, static_cast<i64>(x));
        a.li(Reg::kA2, static_cast<i64>(y));
        (a.*branch_case.emit)(Reg::kA1, Reg::kA2, taken);
        a.li(Reg::kA0, 0);
        a.ecall();
        a.bind(taken);
        a.li(Reg::kA0, 1);
        a.ecall();
        ASSERT_EQ(run(a.finish()),
                  static_cast<u64>(branch_case.predicate(x, y)))
            << "x=0x" << std::hex << x << " y=0x" << y;
      }
    }
  }
}

// ---- Upper-immediate & AUIPC ----------------------------------------------------------

TEST(UpperImmDiff, LuiAndAuipc) {
  for (const i64 imm : {i64{0x1000}, i64{0x7FFFF000}, i64{-0x80000000LL}}) {
    Assembler a(Xlen::k64, 0x8000'0000);
    a.lui(Reg::kA0, imm);
    a.ecall();
    EXPECT_EQ(run(a.finish()), static_cast<u64>(imm));
  }
  // auipc at pc=0x80000000 + 0x5000.
  Assembler a(Xlen::k64, 0x8000'0000);
  a.auipc(Reg::kA0, 0x5000);
  a.ecall();
  EXPECT_EQ(run(a.finish()), 0x8000'5000u);
}

}  // namespace
}  // namespace titan::cva6

// Unit tests for the HMAC MMIO front-end and the RoT subsystem wiring.
#include <gtest/gtest.h>

#include <memory>

#include "crypto/hmac.hpp"
#include "firmware/builder.hpp"
#include "soc/hmac_mmio.hpp"
#include "soc/mailbox.hpp"
#include "titancfi/rot_subsystem.hpp"

namespace titan::soc {
namespace {

struct AccelHarness {
  sim::Memory memory;
  MemoryTarget memory_target{memory};
  Crossbar bus{"tlul", 0};
  std::uint64_t now = 0;
  std::unique_ptr<HmacMmio> accel;

  AccelHarness() {
    bus.map(kRotSram, memory_target, 0, "sram");
    accel = std::make_unique<HmacMmio>(bus, /*device_secret=*/0x1234,
                                       [this] { return now; });
    bus.map(kRotHmacAccel, *accel, 0, "hmac");
  }

  crypto::Digest run_mac(Addr src, std::uint32_t len) {
    accel->write(kRotHmacAccel.base + HmacMmio::kSrc, 4, src);
    accel->write(kRotHmacAccel.base + HmacMmio::kLen, 4, len);
    accel->write(kRotHmacAccel.base + HmacMmio::kKeySel, 4, 0);
    accel->write(kRotHmacAccel.base + HmacMmio::kCmd, 4, 1);
    // Busy-wait, advancing "time".
    while (accel->read(kRotHmacAccel.base + HmacMmio::kStatus, 4) == 0) {
      ++now;
    }
    crypto::Digest digest{};
    for (unsigned word = 0; word < 8; ++word) {
      const auto value = static_cast<std::uint32_t>(accel->read(
          kRotHmacAccel.base + HmacMmio::kDigestBase + 4 * word, 4));
      digest[4 * word] = static_cast<std::uint8_t>(value >> 24);
      digest[4 * word + 1] = static_cast<std::uint8_t>(value >> 16);
      digest[4 * word + 2] = static_cast<std::uint8_t>(value >> 8);
      digest[4 * word + 3] = static_cast<std::uint8_t>(value);
    }
    return digest;
  }
};

TEST(HmacMmio, TimingGatesStatus) {
  AccelHarness harness;
  harness.memory.write32(kRotSram.base, 0xAABBCCDD);
  harness.accel->write(kRotHmacAccel.base + HmacMmio::kSrc, 4, kRotSram.base);
  harness.accel->write(kRotHmacAccel.base + HmacMmio::kLen, 4, 4);
  harness.accel->write(kRotHmacAccel.base + HmacMmio::kCmd, 4, 1);
  // Immediately after start the engine is busy.
  EXPECT_EQ(harness.accel->read(kRotHmacAccel.base + HmacMmio::kStatus, 4), 0u);
  harness.now += 10'000;  // well past any block count
  EXPECT_EQ(harness.accel->read(kRotHmacAccel.base + HmacMmio::kStatus, 4), 1u);
  EXPECT_EQ(harness.accel->starts(), 1u);
}

TEST(HmacMmio, DigestIsDeterministicAndDataDependent) {
  AccelHarness harness;
  for (std::uint32_t i = 0; i < 16; ++i) {
    harness.memory.write8(kRotSram.base + i, static_cast<std::uint8_t>(i));
  }
  const auto digest_a = harness.run_mac(kRotSram.base, 16);
  const auto digest_b = harness.run_mac(kRotSram.base, 16);
  EXPECT_TRUE(crypto::digest_equal(digest_a, digest_b));

  harness.memory.write8(kRotSram.base + 3, 0xFF);
  const auto digest_c = harness.run_mac(kRotSram.base, 16);
  EXPECT_FALSE(crypto::digest_equal(digest_a, digest_c));
}

TEST(HmacMmio, KeySlotsDiffer) {
  AccelHarness harness;
  harness.memory.write32(kRotSram.base, 0x11223344);
  const auto slot0 = harness.run_mac(kRotSram.base, 4);
  harness.accel->write(kRotHmacAccel.base + HmacMmio::kKeySel, 4, 1);
  harness.accel->write(kRotHmacAccel.base + HmacMmio::kCmd, 4, 1);
  harness.now += 100'000;
  crypto::Digest slot1{};
  for (unsigned word = 0; word < 8; ++word) {
    const auto value = static_cast<std::uint32_t>(harness.accel->read(
        kRotHmacAccel.base + HmacMmio::kDigestBase + 4 * word, 4));
    slot1[4 * word] = static_cast<std::uint8_t>(value >> 24);
    slot1[4 * word + 1] = static_cast<std::uint8_t>(value >> 16);
    slot1[4 * word + 2] = static_cast<std::uint8_t>(value >> 8);
    slot1[4 * word + 3] = static_cast<std::uint8_t>(value);
  }
  EXPECT_FALSE(crypto::digest_equal(slot0, slot1));
}

TEST(HmacMmio, RegistersReadBack) {
  AccelHarness harness;
  harness.accel->write(kRotHmacAccel.base + HmacMmio::kSrc, 4, 0x1234);
  harness.accel->write(kRotHmacAccel.base + HmacMmio::kLen, 4, 64);
  EXPECT_EQ(harness.accel->read(kRotHmacAccel.base + HmacMmio::kSrc, 4), 0x1234u);
  EXPECT_EQ(harness.accel->read(kRotHmacAccel.base + HmacMmio::kLen, 4), 64u);
}

}  // namespace
}  // namespace titan::soc

namespace titan::cfi {
namespace {

struct RotFixture {
  soc::Mailbox mailbox;
  sim::Memory soc_memory;
  std::unique_ptr<RotSubsystem> rot;

  explicit RotFixture(RotFabric fabric = RotFabric::kBaseline) {
    fw::FirmwareConfig config;
    rot = std::make_unique<RotSubsystem>(fw::build_firmware(config), fabric,
                                         mailbox, soc_memory);
  }
};

TEST(RotSubsystem, SectionClassification) {
  RotFixture fixture;
  const auto& marks = fixture.rot->firmware().marks;
  ASSERT_TRUE(marks.contains("init"));
  ASSERT_TRUE(marks.contains("irq"));
  ASSERT_TRUE(marks.contains("cfi"));
  EXPECT_EQ(fixture.rot->section_of(
                static_cast<std::uint32_t>(marks.at("cfi"))),
            "cfi");
  EXPECT_EQ(fixture.rot->section_of(
                static_cast<std::uint32_t>(marks.at("cfi")) + 8),
            "cfi");
  EXPECT_EQ(fixture.rot->section_of(
                static_cast<std::uint32_t>(marks.at("init"))),
            "init");
  EXPECT_EQ(fixture.rot->section_of(
                static_cast<std::uint32_t>(marks.at("irq")) + 4),
            "irq");
}

TEST(RotSubsystem, BaselineFabricLatencies) {
  RotFixture fixture(RotFabric::kBaseline);
  // Scratchpad: hop 3 + device 1 = 4 (core adds its 1-cycle base -> 5).
  EXPECT_EQ(fixture.rot->fabric().read(soc::kRotSram.base, 4).latency, 4u);
  // SoC side through the bridge: hop 3 + 8 = 11 (-> 12 with core base).
  EXPECT_EQ(fixture.rot->fabric().read(soc::kCfiMailbox.base, 4).latency, 11u);
}

TEST(RotSubsystem, OptimizedFabricLatencies) {
  RotFixture fixture(RotFabric::kOptimized);
  EXPECT_EQ(fixture.rot->fabric().read(soc::kRotSram.base, 4).latency, 0u);
  EXPECT_EQ(fixture.rot->fabric().read(soc::kCfiMailbox.base, 4).latency, 7u);
}

TEST(RotSubsystem, DoorbellRaisesPlicAndWakesIbex) {
  RotFixture fixture;
  fixture.rot->run_until(200);
  ASSERT_TRUE(fixture.rot->core().sleeping());
  EXPECT_FALSE(fixture.rot->plic().irq_asserted());
  fixture.mailbox.ring_doorbell();
  EXPECT_TRUE(fixture.rot->plic().irq_asserted());
  const auto step = fixture.rot->step();
  EXPECT_TRUE(step.irq_entry);
  EXPECT_FALSE(fixture.rot->core().sleeping());
}

TEST(RotSubsystem, RunUntilFastForwardsSleep) {
  RotFixture fixture;
  fixture.rot->run_until(150);
  ASSERT_TRUE(fixture.rot->core().sleeping());
  const auto before = fixture.rot->core().cycle();
  fixture.rot->run_until(before + 10'000);
  EXPECT_EQ(fixture.rot->core().cycle(), before + 10'000);
  EXPECT_EQ(fixture.rot->core().instret(),
            fixture.rot->core().instret());  // no instructions while asleep
}

}  // namespace
}  // namespace titan::cfi

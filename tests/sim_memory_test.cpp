// Tests for the sparse memory model.
#include "sim/memory.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace titan::sim {
namespace {

TEST(Memory, UntouchedReadsAsZero) {
  Memory mem;
  EXPECT_EQ(mem.read8(0), 0u);
  EXPECT_EQ(mem.read64(0xDEADBEEF), 0u);
  EXPECT_EQ(mem.page_count(), 0u);
}

TEST(Memory, ReadBackAllWidths) {
  Memory mem;
  mem.write8(0x100, 0xAB);
  mem.write16(0x200, 0xCDEF);
  mem.write32(0x300, 0x01234567);
  mem.write64(0x400, 0x0123456789ABCDEFULL);
  EXPECT_EQ(mem.read8(0x100), 0xABu);
  EXPECT_EQ(mem.read16(0x200), 0xCDEFu);
  EXPECT_EQ(mem.read32(0x300), 0x01234567u);
  EXPECT_EQ(mem.read64(0x400), 0x0123456789ABCDEFULL);
}

TEST(Memory, LittleEndianLayout) {
  Memory mem;
  mem.write32(0x10, 0x11223344);
  EXPECT_EQ(mem.read8(0x10), 0x44u);
  EXPECT_EQ(mem.read8(0x11), 0x33u);
  EXPECT_EQ(mem.read8(0x12), 0x22u);
  EXPECT_EQ(mem.read8(0x13), 0x11u);
}

TEST(Memory, CrossPageAccess) {
  Memory mem;
  const Addr boundary = Memory::kPageSize - 2;
  mem.write64(boundary, 0x8877665544332211ULL);
  EXPECT_EQ(mem.read64(boundary), 0x8877665544332211ULL);
  EXPECT_EQ(mem.page_count(), 2u);
}

TEST(Memory, LoadBlobAndDump) {
  Memory mem;
  const std::vector<std::uint8_t> blob = {1, 2, 3, 4, 5};
  mem.load(0x1000, blob);
  EXPECT_EQ(mem.dump(0x1000, 5), blob);
  EXPECT_EQ(mem.read8(0x1004), 5u);
}

TEST(Memory, LoadWords) {
  Memory mem;
  const std::vector<std::uint32_t> words = {0xAABBCCDD, 0x11223344};
  mem.load_words(0x2000, words);
  EXPECT_EQ(mem.read32(0x2000), 0xAABBCCDDu);
  EXPECT_EQ(mem.read32(0x2004), 0x11223344u);
}

TEST(Memory, SparseHighAddresses) {
  Memory mem;
  mem.write64(0xFFFF'FFFF'FFFF'FFF0ULL, 42);
  EXPECT_EQ(mem.read64(0xFFFF'FFFF'FFFF'FFF0ULL), 42u);
  EXPECT_EQ(mem.page_count(), 1u);
}

// Property: random writes followed by read-back match a reference map.
TEST(Memory, RandomWriteReadProperty) {
  Memory mem;
  std::unordered_map<Addr, std::uint8_t> reference;
  Rng rng(123);
  for (int i = 0; i < 50000; ++i) {
    const Addr addr = rng.uniform(0, 1 << 20);
    const auto value = static_cast<std::uint8_t>(rng.next());
    mem.write8(addr, value);
    reference[addr] = value;
  }
  for (const auto& [addr, value] : reference) {
    ASSERT_EQ(mem.read8(addr), value);
  }
}

TEST(Memory, ClearDropsEverything) {
  Memory mem;
  mem.write64(0x123, 99);
  mem.clear();
  EXPECT_EQ(mem.read64(0x123), 0u);
  EXPECT_EQ(mem.page_count(), 0u);
}

// ---- Fast-path / page-straddle coverage ------------------------------------

TEST(Memory, PageStraddlingReadsAllWidths) {
  Memory mem;
  // Fill two adjacent pages with a byte pattern, then read across the seam
  // at every offset a multi-byte access could straddle it.
  for (Addr a = Memory::kPageSize - 8; a < Memory::kPageSize + 8; ++a) {
    mem.write8(a, static_cast<std::uint8_t>(a * 37 + 11));
  }
  auto expect_le = [&](Addr base, unsigned n) {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(mem.read8(base + i)) << (8 * i);
    }
    return v;
  };
  for (Addr a = Memory::kPageSize - 8; a < Memory::kPageSize; ++a) {
    EXPECT_EQ(mem.read16(a), expect_le(a, 2)) << a;
    EXPECT_EQ(mem.read32(a), expect_le(a, 4)) << a;
    EXPECT_EQ(mem.read64(a), expect_le(a, 8)) << a;
  }
  EXPECT_GT(mem.stats().straddles, 0u);
}

TEST(Memory, PageStraddlingWritesAllWidths) {
  for (unsigned width : {2u, 4u, 8u}) {
    for (unsigned back = 1; back < width; ++back) {
      Memory mem;
      const Addr addr = Memory::kPageSize - back;
      const std::uint64_t value = 0xF1E2D3C4B5A69788ULL;
      switch (width) {
        case 2: mem.write16(addr, static_cast<std::uint16_t>(value)); break;
        case 4: mem.write32(addr, static_cast<std::uint32_t>(value)); break;
        default: mem.write64(addr, value); break;
      }
      for (unsigned i = 0; i < width; ++i) {
        EXPECT_EQ(mem.read8(addr + i),
                  static_cast<std::uint8_t>(value >> (8 * i)))
            << "width " << width << " back " << back << " byte " << i;
      }
      EXPECT_EQ(mem.page_count(), 2u);
    }
  }
}

// Property: the fast path and the seed-equivalent slow path are
// indistinguishable over random mixed-width traffic.
TEST(Memory, FastAndSlowPathsAgree) {
  Memory fast;
  Memory slow;
  slow.set_fast_path_enabled(false);
  Rng rng(2024);
  for (int i = 0; i < 20000; ++i) {
    // Cluster around page boundaries to exercise straddles.
    const Addr page = static_cast<Addr>(rng.uniform(0, 8)) << Memory::kPageBits;
    const Addr addr = page + rng.uniform(0, 16) - 8 + Memory::kPageSize;
    const std::uint64_t value = rng.next();
    switch (rng.uniform(0, 4)) {
      case 0: fast.write8(addr, static_cast<std::uint8_t>(value));
              slow.write8(addr, static_cast<std::uint8_t>(value)); break;
      case 1: fast.write16(addr, static_cast<std::uint16_t>(value));
              slow.write16(addr, static_cast<std::uint16_t>(value)); break;
      case 2: fast.write32(addr, static_cast<std::uint32_t>(value));
              slow.write32(addr, static_cast<std::uint32_t>(value)); break;
      default: fast.write64(addr, value); slow.write64(addr, value); break;
    }
    const Addr raddr = page + rng.uniform(0, 16) - 8 + Memory::kPageSize;
    ASSERT_EQ(fast.read64(raddr), slow.read64(raddr));
    ASSERT_EQ(fast.read16(raddr + 1), slow.read16(raddr + 1));
  }
}

// ---- Unmapped-read accounting / strict mode ---------------------------------

TEST(Memory, UnmappedReadsAreCounted) {
  Memory mem;
  EXPECT_EQ(mem.read64(0x5000), 0u);
  EXPECT_EQ(mem.unmapped_reads(), 1u);
  mem.write8(0x5000, 1);
  (void)mem.read64(0x5000);
  EXPECT_EQ(mem.unmapped_reads(), 1u);  // Now mapped: no new events.
}

TEST(Memory, StrictModeThrowsOnUnmappedRead) {
  Memory mem;
  mem.set_strict_unmapped(true);
  mem.write8(0x100, 7);
  EXPECT_EQ(mem.read8(0x100), 7u);   // Mapped reads unaffected.
  EXPECT_EQ(mem.read32(0xF00), 0u);  // Same page: mapped, zero-filled.
  EXPECT_THROW((void)mem.read8(0x10'0000), std::out_of_range);
  EXPECT_THROW((void)mem.read64(0x20'0000), std::out_of_range);
  mem.set_strict_unmapped(false);
  EXPECT_EQ(mem.read8(0x10'0000), 0u);  // Back to permissive zero-fill.
}

TEST(Memory, BlockOpsAreExemptFromStrictMode) {
  Memory mem;
  mem.set_strict_unmapped(true);
  const auto sparse = mem.dump(0x8000, 64);  // Dumping sparse space is legal.
  EXPECT_EQ(sparse, std::vector<std::uint8_t>(64, 0));
  EXPECT_EQ(mem.unmapped_reads(), 0u);
}

// ---- Bulk block operations ---------------------------------------------------

TEST(Memory, BlockRoundTripAcrossPages) {
  Memory mem;
  std::vector<std::uint8_t> blob(3 * Memory::kPageSize + 123);
  Rng rng(7);
  for (auto& byte : blob) byte = static_cast<std::uint8_t>(rng.next());
  const Addr base = Memory::kPageSize - 57;  // Misaligned, multi-page.
  mem.write_block(base, blob);
  EXPECT_EQ(mem.dump(base, blob.size()), blob);
  // Spot-check against scalar reads.
  EXPECT_EQ(mem.read8(base), blob[0]);
  EXPECT_EQ(mem.read8(base + blob.size() - 1), blob.back());
}

TEST(Memory, ReadBlockZeroFillsUnmappedGaps) {
  Memory mem;
  mem.write8(0x10, 0xAA);
  mem.write8(Memory::kPageSize + 0x10, 0xBB);
  std::vector<std::uint8_t> out(2 * Memory::kPageSize);
  mem.read_block(0, out);
  EXPECT_EQ(out[0x10], 0xAA);
  EXPECT_EQ(out[Memory::kPageSize + 0x10], 0xBB);
  EXPECT_EQ(out[0x11], 0);
}

// ---- Instruction-window fetch ------------------------------------------------

TEST(Memory, Fetch32ReadsWindow) {
  Memory mem;
  mem.write32(0x100, 0x00A50513);  // addi a0, a0, 10
  EXPECT_EQ(mem.fetch32(0x100), 0x00A50513u);
  EXPECT_EQ(mem.stats().fetches, 1u);
}

TEST(Memory, Fetch32StraddlesPages) {
  Memory mem;
  const Addr addr = Memory::kPageSize - 2;
  mem.write16(addr, 0x4501);       // Low half on page 0...
  mem.write16(addr + 2, 0x9302);   // ...high half on page 1.
  EXPECT_EQ(mem.fetch32(addr), 0x93024501u);
}

TEST(Memory, Fetch32OvershootDoesNotCountUnmapped) {
  Memory mem;
  // A compressed instruction in the last halfword of the only mapped page:
  // the window overshoots into unmapped space, which must read as zero and
  // not trip the wild-read accounting (the low half decides validity).
  mem.set_strict_unmapped(true);
  const Addr addr = Memory::kPageSize - 2;
  mem.write16(addr, 0x4501);
  EXPECT_EQ(mem.fetch32(addr), 0x4501u);
  EXPECT_EQ(mem.unmapped_reads(), 0u);
  // But a fetch of a fully unmapped pc does count (and throws when strict).
  EXPECT_THROW((void)mem.fetch32(0x70'0000), std::out_of_range);
}

TEST(Memory, MoveInvalidatesSourcePageCache) {
  Memory a;
  a.write64(0x1000, 1);
  (void)a.read64(0x1000);  // Warm a's page-cache ways.
  Memory b = std::move(a);
  EXPECT_EQ(b.read64(0x1000), 1u);
  // The moved-from object must not alias b's pages through stale ways.
  a.write64(0x1000, 2);
  EXPECT_EQ(b.read64(0x1000), 1u);
  EXPECT_EQ(a.read64(0x1000), 2u);
  EXPECT_EQ(a.page_count(), 1u);
}

TEST(Memory, StatsTrackPageCacheEffectiveness) {
  Memory mem;
  mem.write64(0x1000, 1);
  mem.reset_stats();
  for (int i = 0; i < 100; ++i) {
    (void)mem.read64(0x1000);
  }
  EXPECT_EQ(mem.stats().reads, 100u);
  // First access may miss the (cold, just-reset) cache; the rest must hit.
  EXPECT_GE(mem.stats().page_cache_hits, 99u);
}

}  // namespace
}  // namespace titan::sim

// Tests for the sparse memory model.
#include "sim/memory.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace titan::sim {
namespace {

TEST(Memory, UntouchedReadsAsZero) {
  Memory mem;
  EXPECT_EQ(mem.read8(0), 0u);
  EXPECT_EQ(mem.read64(0xDEADBEEF), 0u);
  EXPECT_EQ(mem.page_count(), 0u);
}

TEST(Memory, ReadBackAllWidths) {
  Memory mem;
  mem.write8(0x100, 0xAB);
  mem.write16(0x200, 0xCDEF);
  mem.write32(0x300, 0x01234567);
  mem.write64(0x400, 0x0123456789ABCDEFULL);
  EXPECT_EQ(mem.read8(0x100), 0xABu);
  EXPECT_EQ(mem.read16(0x200), 0xCDEFu);
  EXPECT_EQ(mem.read32(0x300), 0x01234567u);
  EXPECT_EQ(mem.read64(0x400), 0x0123456789ABCDEFULL);
}

TEST(Memory, LittleEndianLayout) {
  Memory mem;
  mem.write32(0x10, 0x11223344);
  EXPECT_EQ(mem.read8(0x10), 0x44u);
  EXPECT_EQ(mem.read8(0x11), 0x33u);
  EXPECT_EQ(mem.read8(0x12), 0x22u);
  EXPECT_EQ(mem.read8(0x13), 0x11u);
}

TEST(Memory, CrossPageAccess) {
  Memory mem;
  const Addr boundary = Memory::kPageSize - 2;
  mem.write64(boundary, 0x8877665544332211ULL);
  EXPECT_EQ(mem.read64(boundary), 0x8877665544332211ULL);
  EXPECT_EQ(mem.page_count(), 2u);
}

TEST(Memory, LoadBlobAndDump) {
  Memory mem;
  const std::vector<std::uint8_t> blob = {1, 2, 3, 4, 5};
  mem.load(0x1000, blob);
  EXPECT_EQ(mem.dump(0x1000, 5), blob);
  EXPECT_EQ(mem.read8(0x1004), 5u);
}

TEST(Memory, LoadWords) {
  Memory mem;
  const std::vector<std::uint32_t> words = {0xAABBCCDD, 0x11223344};
  mem.load_words(0x2000, words);
  EXPECT_EQ(mem.read32(0x2000), 0xAABBCCDDu);
  EXPECT_EQ(mem.read32(0x2004), 0x11223344u);
}

TEST(Memory, SparseHighAddresses) {
  Memory mem;
  mem.write64(0xFFFF'FFFF'FFFF'FFF0ULL, 42);
  EXPECT_EQ(mem.read64(0xFFFF'FFFF'FFFF'FFF0ULL), 42u);
  EXPECT_EQ(mem.page_count(), 1u);
}

// Property: random writes followed by read-back match a reference map.
TEST(Memory, RandomWriteReadProperty) {
  Memory mem;
  std::unordered_map<Addr, std::uint8_t> reference;
  Rng rng(123);
  for (int i = 0; i < 50000; ++i) {
    const Addr addr = rng.uniform(0, 1 << 20);
    const auto value = static_cast<std::uint8_t>(rng.next());
    mem.write8(addr, value);
    reference[addr] = value;
  }
  for (const auto& [addr, value] : reference) {
    ASSERT_EQ(mem.read8(addr), value);
  }
}

TEST(Memory, ClearDropsEverything) {
  Memory mem;
  mem.write64(0x123, 99);
  mem.clear();
  EXPECT_EQ(mem.read64(0x123), 0u);
  EXPECT_EQ(mem.page_count(), 0u);
}

}  // namespace
}  // namespace titan::sim

// Baseline-comparator models (DExIE, FIXER) and the structural area model.
#include <gtest/gtest.h>

#include "area/area_model.hpp"
#include "baselines/baselines.hpp"

namespace titan {
namespace {

// ---- Baselines ------------------------------------------------------------------

TEST(Dexie, ClockDegradationDominates) {
  baselines::DexieModel model;
  // Few CF ops: overhead is still ~ (clock_factor - 1).
  const double slowdown = model.slowdown_percent({2'510'000, 15});
  EXPECT_NEAR(slowdown, 47.0, 1.5);
}

TEST(Dexie, ReportedNumbersLookup) {
  EXPECT_EQ(baselines::dexie_reported("aha-mont64"), 48.0);
  EXPECT_EQ(baselines::dexie_reported("edn"), 47.0);
  EXPECT_EQ(baselines::dexie_reported("dhrystone"), std::nullopt);
}

TEST(Fixer, PerOpCostScalesWithDensity) {
  baselines::FixerModel model;
  const double sparse = model.slowdown_percent({332'000, 11});
  const double dense = model.slowdown_percent({457'000, 22'500});
  EXPECT_LT(sparse, 0.1);
  EXPECT_GT(dense, 5.0);
  EXPECT_GT(dense, sparse);
}

TEST(Fixer, ReportedNumbersLookup) {
  EXPECT_EQ(baselines::fixer_reported("rsort"), 2.0);
  EXPECT_EQ(baselines::fixer_reported("dhrystone"), 2.0);
  EXPECT_EQ(baselines::fixer_reported("aha-mont64"), std::nullopt);
}

TEST(Baselines, ZeroCycleTracesAreSafe) {
  EXPECT_DOUBLE_EQ(baselines::DexieModel{}.slowdown_percent({0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(baselines::FixerModel{}.slowdown_percent({0, 0}), 0.0);
}

// ---- Area model ---------------------------------------------------------------------

TEST(Area, HostDeltaMatchesPaperWithin10Percent) {
  // Paper Table IV: host delta = 1.16e3 LUT, 1.77e3 regs, 0 BRAM.
  const auto report = area::host_delta(1);
  const auto total = report.total();
  EXPECT_NEAR(total.luts, 1.16e3, 1.16e3 * 0.10);
  EXPECT_NEAR(total.regs, 1.77e3, 1.77e3 * 0.10);
  EXPECT_DOUBLE_EQ(total.brams, 0.0);
}

TEST(Area, SocDeltaMatchesPaperWithin10Percent) {
  // Paper Table IV: SoC delta = 1.33e3 LUT, 2.19e3 regs, 0 BRAM.
  const auto total = area::soc_delta(1).total();
  EXPECT_NEAR(total.luts, 1.33e3, 1.33e3 * 0.10);
  EXPECT_NEAR(total.regs, 2.19e3, 2.19e3 * 0.10);
  EXPECT_DOUBLE_EQ(total.brams, 0.0);
}

TEST(Area, RelativeOverheadsMatchPaperHeadline) {
  // "< 1% on the entire SoC, and < 6% considering only the host core".
  const auto& reference = area::paper_reference();
  const double host_regs_pct =
      100.0 * area::host_delta(1).total().regs / reference[0].without_cfi_regs;
  const double soc_luts_pct =
      100.0 * area::soc_delta(1).total().luts / reference[1].without_cfi_luts;
  EXPECT_LT(soc_luts_pct, 1.0);
  EXPECT_LT(host_regs_pct, 6.0);
  EXPECT_GT(host_regs_pct, 4.0);  // and not trivially small either
}

TEST(Area, QueueDepthScalesStorage) {
  const double regs1 = area::host_delta(1).total().regs;
  const double regs8 = area::host_delta(8).total().regs;
  const double regs64 = area::host_delta(64).total().regs;
  EXPECT_GT(regs8, regs1 + 6 * 224);   // ~224 regs per extra entry
  EXPECT_GT(regs64, regs8);
  // Still no BRAM even at depth 64 in this register-file implementation.
  EXPECT_DOUBLE_EQ(area::host_delta(64).total().brams, 0.0);
}

TEST(Area, DexieComparisonFromPaper) {
  // DExIE adds ~72% LUT/regs and 6 BRAMs to its host (Table IV).
  const auto& rows = area::paper_reference();
  const auto& dexie = rows[2];
  EXPECT_NEAR((dexie.with_cfi_luts - dexie.without_cfi_luts) /
                  dexie.without_cfi_luts,
              0.72, 0.01);
  EXPECT_GT(dexie.with_cfi_brams - dexie.without_cfi_brams, 0.0);
  // TitanCFI beats DExIE's absolute LUT cost by >= 60% (paper Sec. V-D).
  const double ours = area::soc_delta(1).total().luts;
  const double theirs = dexie.with_cfi_luts - dexie.without_cfi_luts;
  EXPECT_LT(ours, theirs * 0.45);
}

TEST(Area, ReportPrintsComponents) {
  std::ostringstream os;
  area::host_delta(8).print(os);
  EXPECT_NE(os.str().find("cfi_queue"), std::string::npos);
  EXPECT_NE(os.str().find("TOTAL"), std::string::npos);
}

TEST(Area, EstimatesArePositiveAndAdditive) {
  const auto a = area::fifo(224, 8);
  const auto b = area::cfi_filter();
  EXPECT_GT(a.luts, 0);
  EXPECT_GT(a.regs, 0);
  const auto sum = a + b;
  EXPECT_DOUBLE_EQ(sum.luts, a.luts + b.luts);
  EXPECT_DOUBLE_EQ(sum.regs, a.regs + b.regs);
}

}  // namespace
}  // namespace titan

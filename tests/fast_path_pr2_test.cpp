// PR-2 fast-path satellites: the hoisted fetch-page probe (CVA6 + Ibex),
// the negative (unmapped-page) cache in sim::Memory, and the bounded
// ring-buffer trace mode.
#include <gtest/gtest.h>

#include "cva6/core.hpp"
#include "ibex/core.hpp"
#include "rv/assembler.hpp"
#include "sim/memory.hpp"
#include "soc/bus.hpp"
#include "workloads/programs.hpp"

namespace titan {
namespace {

// ---- Negative page cache ----------------------------------------------------

TEST(NegativeCache, RepeatedUnmappedProbesSkipTheHashWalk) {
  sim::Memory memory;
  memory.write64(0x1000, 42);  // one mapped page
  const sim::Addr unmapped = 0x9'0000;
  EXPECT_EQ(memory.read64(unmapped), 0u);
  const std::uint64_t misses_after_first = memory.stats().page_cache_misses;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(memory.read64(unmapped), 0u);
  }
  // The first probe walked the hash map; the rest hit the negative cache.
  EXPECT_EQ(memory.stats().page_cache_misses, misses_after_first);
  EXPECT_GE(memory.stats().neg_cache_hits, 100u);
}

TEST(NegativeCache, MappingAPageRetiresTheNegativeEntry) {
  sim::Memory memory;
  const sim::Addr addr = 0x5000;
  EXPECT_EQ(memory.read64(addr), 0u);   // cached as unmapped
  EXPECT_EQ(memory.read64(addr), 0u);   // negative-cache hit
  memory.write64(addr, 0xABCD);         // maps the page -> flush
  EXPECT_EQ(memory.read64(addr), 0xABCDu);
}

TEST(NegativeCache, StrictModeStillThrowsOnNegativeHit) {
  sim::Memory memory;
  memory.set_strict_unmapped(true);
  EXPECT_THROW((void)memory.read32(0x7000), std::out_of_range);
  // Second probe answers from the negative cache but must still throw.
  EXPECT_THROW((void)memory.read32(0x7000), std::out_of_range);
}

// ---- Map epoch / PageRef ----------------------------------------------------

TEST(PageRef, EpochAdvancesOnMapShapeChangesOnly) {
  sim::Memory memory;
  memory.write64(0x0, 1);
  const std::uint64_t epoch = memory.map_epoch();
  memory.write64(0x8, 2);        // same page: no shape change
  EXPECT_EQ(memory.map_epoch(), epoch);
  memory.write64(0x2000, 3);     // new page
  EXPECT_GT(memory.map_epoch(), epoch);
  const std::uint64_t before_clear = memory.map_epoch();
  memory.clear();
  EXPECT_GT(memory.map_epoch(), before_clear);
}

TEST(PageRef, SeesInPlaceStoresWithoutRevalidation) {
  sim::Memory memory;
  memory.write32(0x100, 0x11111111);
  const sim::PageRef ref = memory.page_ref(0x100);
  ASSERT_NE(ref.data, nullptr);
  EXPECT_EQ(ref.epoch, memory.map_epoch());
  EXPECT_EQ(ref.window32(0x100), 0x11111111u);
  memory.write32(0x100, 0x22222222);  // store to the same mapped page
  EXPECT_EQ(ref.epoch, memory.map_epoch());  // still valid...
  EXPECT_EQ(ref.window32(0x100), 0x22222222u);  // ...and current
}

// ---- Hoisted fetch on the cores --------------------------------------------

TEST(FetchHoist, Cva6SelfModifyingCodeStillObserved) {
  // Straight-line code; a store rewrites an upcoming instruction in the same
  // page.  The hoisted page pointer reads through to the mutated bytes and
  // the decode cache revalidates on the raw window, so the store must take
  // effect architecturally.
  using rv::Reg;
  rv::Assembler a(rv::Xlen::k64, 0x8000'0000);
  a.li(Reg::kA0, 7);
  auto patch_site = a.new_label();
  // t0 = encoding of "addi a0, a0, 5"; overwrite the patch site (which
  // initially holds "addi a0, a0, 1").
  a.li(Reg::kT0, 0x0055'0513);
  a.li(Reg::kT1, 0);
  a.la(Reg::kT1, patch_site);
  a.sw(Reg::kT0, Reg::kT1, 0);
  a.bind(patch_site);
  a.addi(Reg::kA0, Reg::kA0, 1);
  a.ecall();
  const rv::Image image = a.finish();

  sim::Memory memory;
  memory.load(image.base, image.bytes);
  cva6::Cva6Config config;
  config.reset_pc = image.base;
  cva6::Cva6Core core(config, memory);
  core.run_baseline();
  EXPECT_EQ(core.exit_code(), 12u);  // 7 + 5, not 7 + 1
}

TEST(FetchHoist, Cva6MatchesSeedModeInstructionStream) {
  const rv::Image image = workloads::fib_recursive(10);
  const auto run = [&image](bool fast) {
    sim::Memory memory;
    memory.load(image.base, image.bytes);
    memory.set_fast_path_enabled(fast);
    cva6::Cva6Config config;
    config.reset_pc = image.base;
    cva6::Cva6Core core(config, memory);
    core.set_decode_cache_enabled(fast);
    core.run_baseline();
    return std::pair{core.instret(), core.exit_code()};
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(FetchHoist, IbexRunsFirmwareBehindCrossbar) {
  using rv::Reg;
  rv::Assembler a(rv::Xlen::k32, 0);
  const auto loop = a.new_label();
  a.li(Reg::kA0, 0);
  a.li(Reg::kT0, 1000);
  a.bind(loop);
  a.add(Reg::kA0, Reg::kA0, Reg::kT0);
  a.addi(Reg::kT0, Reg::kT0, -1);
  a.bnez(Reg::kT0, loop);
  a.ecall();
  const rv::Image image = a.finish();

  sim::Memory memory;
  memory.load(image.base, image.bytes);
  soc::MemoryTarget target(memory);
  soc::Crossbar bus("t", 0);
  bus.map(soc::Region{0, 0x1'0000}, target, 0, "ram");
  ibex::IbexConfig config;
  config.reset_sp = 0x8000;
  ibex::IbexCore core(config, bus);
  while (!core.halted()) {
    core.step();
  }
  EXPECT_EQ(core.reg(10), 500500u);  // sum 1..1000
  // Fetches no longer cross the crossbar in steady state: the transaction
  // count stays far below one per retired instruction.
  EXPECT_LT(bus.transaction_count(), core.instret());
}

// ---- Ring-buffer trace mode -------------------------------------------------

TEST(RingTrace, UnboundedModeIsUnchangedByDefault) {
  const rv::Image image = workloads::fib_recursive(8);
  sim::Memory memory;
  memory.load(image.base, image.bytes);
  cva6::Cva6Config config;
  config.reset_pc = image.base;
  cva6::Cva6Core core(config, memory);
  core.run_baseline();
  EXPECT_EQ(core.trace_ring_capacity(), 0u);
  EXPECT_EQ(core.trace_dropped(), 0u);
  EXPECT_EQ(core.trace().size(), core.instret());
  EXPECT_EQ(core.ordered_trace().size(), core.trace().size());
}

TEST(RingTrace, BoundedModeKeepsOnlyTheTailInOrder) {
  const rv::Image image = workloads::fib_recursive(8);

  // Reference: full trace.
  sim::Memory ref_memory;
  ref_memory.load(image.base, image.bytes);
  cva6::Cva6Config config;
  config.reset_pc = image.base;
  cva6::Cva6Core reference(config, ref_memory);
  reference.run_baseline();
  const auto& full = reference.trace();

  constexpr std::size_t kCapacity = 64;
  sim::Memory ring_memory;
  ring_memory.load(image.base, image.bytes);
  cva6::Cva6Core ringed(config, ring_memory);
  ringed.set_trace_ring_capacity(kCapacity);
  ringed.run_baseline();

  EXPECT_EQ(ringed.trace().size(), kCapacity);  // bounded storage
  EXPECT_EQ(ringed.trace_dropped(), full.size() - kCapacity);
  const auto tail = ringed.ordered_trace();
  ASSERT_EQ(tail.size(), kCapacity);
  // The retained records are exactly the last kCapacity of the full trace,
  // in retirement order.
  for (std::size_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(tail[i].pc, full[full.size() - kCapacity + i].pc) << i;
    EXPECT_EQ(tail[i].cycle, full[full.size() - kCapacity + i].cycle) << i;
  }
}

TEST(RingTrace, CapacityLargerThanRunNeverWraps) {
  const rv::Image image = workloads::fib_recursive(5);
  sim::Memory memory;
  memory.load(image.base, image.bytes);
  cva6::Cva6Config config;
  config.reset_pc = image.base;
  cva6::Cva6Core core(config, memory);
  core.set_trace_ring_capacity(1'000'000);
  core.run_baseline();
  EXPECT_EQ(core.trace_dropped(), 0u);
  EXPECT_EQ(core.ordered_trace().size(), core.instret());
}

}  // namespace
}  // namespace titan

// Warm-start correctness: a run forked from a checkpoint must be bit-exact
// versus a from-scratch run — every RunReport field, the ordered commit
// trace, the popped log stream (prefix replay included), the per-component
// statistics, and the whole resilience block — on BOTH co-simulation
// engines, across the entire ScenarioRegistry grid and a randomized fuzz
// set forking at arbitrary cycles (mid-batch, mid-fault-plan).  Also covers
// the checkpoint cache, identity validation, and engine-invariant blobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "sim/cancel.hpp"
#include "sim/rng.hpp"
#include "titancfi/soc_top.hpp"

namespace titan {
namespace {

/// Everything a run exposes, cold or warm (mirrors engine_equivalence_test).
struct Observed {
  cfi::SocRunResult result;
  std::vector<cfi::CommitLog> stream;     ///< Logs popped by the Log Writer.
  std::vector<cva6::CommitRecord> trace;  ///< Host trace, retirement order.
  std::uint64_t filter_scanned[2] = {0, 0};
  std::uint64_t filter_selected[2] = {0, 0};
  std::uint64_t writer_wait_cycles = 0;
  sim::FifoStats queue_stats;
  std::uint64_t host_stall_cycles = 0;
  std::uint64_t rot_instret = 0;
  sim::Cycle rot_cycle = 0;
  std::uint64_t plic_claims = 0;
  std::uint64_t completion_count = 0;
  std::uint64_t hmac_starts = 0;
  sim::MemStats host_memory;
};

void collect(cfi::SocTop& soc, Observed& o) {
  o.trace = soc.host().ordered_trace();
  for (unsigned port = 0; port < 2; ++port) {
    o.filter_scanned[port] = soc.queue_controller().filter(port).scanned();
    o.filter_selected[port] = soc.queue_controller().filter(port).selected();
  }
  o.writer_wait_cycles = soc.log_writer().wait_cycles();
  o.queue_stats = soc.queue_controller().queue().stats();
  o.host_stall_cycles = soc.host().stall_cycles();
  o.rot_instret = soc.rot().core().instret();
  o.rot_cycle = soc.rot().core().cycle();
  o.plic_claims = soc.rot().plic().claims();
  o.completion_count = soc.mailbox().completion_count();
  o.hmac_starts = soc.rot().hmac().starts();
  o.host_memory = soc.host_memory().stats();
}

Observed run_cold(const api::Scenario& scenario, api::Engine engine) {
  const auto soc = scenario.with_engine(engine).make_soc();
  Observed o;
  soc->log_writer().set_log_capture(
      [&o](const cfi::CommitLog& log) { o.stream.push_back(log); });
  soc->host().set_trace_enabled(true);
  o.result = soc->run();
  collect(*soc, o);
  return o;
}

/// Capture with the same configuration the observed runs use (trace on), so
/// the checkpointed trace-ring state matches.
std::shared_ptr<const sim::Snapshot> checkpoint_at(
    const api::Scenario& scenario, sim::Cycle at) {
  api::RunHooks hooks;
  hooks.configure = [](cfi::SocTop& soc) {
    soc.host().set_trace_enabled(true);
  };
  return api::capture_checkpoint(scenario, at, hooks);
}

/// The warm path at SoC level (what run_scenario does for warm scenarios,
/// opened up so the trace and component statistics are observable too):
/// replay the prefix log stream, restore, continue.
Observed run_warm(const api::Scenario& scenario, api::Engine engine,
                  const sim::Snapshot& snapshot) {
  const auto soc = scenario.with_engine(engine).make_soc();
  Observed o;
  std::array<std::uint64_t, cfi::CommitLog::kBeats> beats{};
  for (std::size_t word = 0;
       word + cfi::CommitLog::kBeats <= snapshot.log_words.size();
       word += cfi::CommitLog::kBeats) {
    for (std::size_t i = 0; i < cfi::CommitLog::kBeats; ++i) {
      beats[i] = snapshot.log_words[word + i];
    }
    o.stream.push_back(cfi::CommitLog::unpack(beats));
  }
  soc->log_writer().set_log_capture(
      [&o](const cfi::CommitLog& log) { o.stream.push_back(log); });
  soc->host().set_trace_enabled(true);
  soc->restore(snapshot);
  o.result = soc->run();
  collect(*soc, o);
  return o;
}

void expect_bit_exact(const Observed& cold, const Observed& warm,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(cold.result.cycles, warm.result.cycles);
  EXPECT_EQ(cold.result.instructions, warm.result.instructions);
  EXPECT_EQ(cold.result.cf_logs, warm.result.cf_logs);
  EXPECT_EQ(cold.result.violations, warm.result.violations);
  EXPECT_EQ(cold.result.cfi_fault, warm.result.cfi_fault);
  EXPECT_EQ(cold.result.exit_code, warm.result.exit_code);
  EXPECT_EQ(cold.result.queue_full_stalls, warm.result.queue_full_stalls);
  EXPECT_EQ(cold.result.dual_cf_stalls, warm.result.dual_cf_stalls);
  EXPECT_EQ(cold.result.doorbells, warm.result.doorbells);
  EXPECT_EQ(cold.result.batches, warm.result.batches);
  EXPECT_EQ(cold.result.max_batch, warm.result.max_batch);
  EXPECT_EQ(cold.result.mean_queue_occupancy, warm.result.mean_queue_occupancy);
  EXPECT_EQ(cold.result.fault_log, warm.result.fault_log);
  EXPECT_EQ(cold.result.resilience, warm.result.resilience);

  EXPECT_EQ(cold.stream, warm.stream);

  ASSERT_EQ(cold.trace.size(), warm.trace.size());
  for (std::size_t i = 0; i < cold.trace.size(); ++i) {
    const cva6::CommitRecord& a = cold.trace[i];
    const cva6::CommitRecord& b = warm.trace[i];
    const bool same = a.cycle == b.cycle && a.pc == b.pc &&
                      a.encoding == b.encoding && a.kind == b.kind &&
                      a.next_pc == b.next_pc && a.target == b.target;
    EXPECT_TRUE(same) << "trace diverges at record " << i;
    if (!same) {
      break;
    }
  }

  for (unsigned port = 0; port < 2; ++port) {
    EXPECT_EQ(cold.filter_scanned[port], warm.filter_scanned[port]);
    EXPECT_EQ(cold.filter_selected[port], warm.filter_selected[port]);
  }
  EXPECT_EQ(cold.writer_wait_cycles, warm.writer_wait_cycles);
  EXPECT_EQ(cold.queue_stats, warm.queue_stats);
  EXPECT_EQ(cold.host_stall_cycles, warm.host_stall_cycles);
  EXPECT_EQ(cold.rot_instret, warm.rot_instret);
  EXPECT_EQ(cold.rot_cycle, warm.rot_cycle);
  EXPECT_EQ(cold.plic_claims, warm.plic_claims);
  EXPECT_EQ(cold.completion_count, warm.completion_count);
  EXPECT_EQ(cold.hmac_starts, warm.hmac_starts);
  EXPECT_EQ(cold.host_memory, warm.host_memory);
}

// ---- The full registry grid -------------------------------------------------

class WarmStartRegistry : public ::testing::TestWithParam<std::string> {};

TEST_P(WarmStartRegistry, ForkedRunIsBitExactOnBothEngines) {
  const api::Scenario* scenario =
      api::ScenarioRegistry::global().find(GetParam());
  ASSERT_NE(scenario, nullptr);
  SCOPED_TRACE("scenario: " + scenario->serialize());
  // Fork halfway through: deep enough that every component carries state.
  const Observed cold = run_cold(*scenario, api::Engine::kLockStep);
  const sim::Cycle at = std::max<sim::Cycle>(1, cold.result.cycles / 2);
  const auto snapshot = checkpoint_at(*scenario, at);
  expect_bit_exact(cold,
                   run_warm(*scenario, api::Engine::kLockStep, *snapshot),
                   "lockstep fork @" + std::to_string(at));
  expect_bit_exact(cold,
                   run_warm(*scenario, api::Engine::kEventDriven, *snapshot),
                   "event fork @" + std::to_string(at));
}

std::vector<std::string> registry_scenario_names() {
  std::vector<std::string> names;
  for (const auto name : api::ScenarioRegistry::global().names()) {
    names.emplace_back(name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, WarmStartRegistry,
    ::testing::ValuesIn(registry_scenario_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

// ---- run_scenario()-level warm start (the public API path) ------------------

TEST(WarmStartTest, RunScenarioWarmReportAndStreamMatchCold) {
  const api::Scenario scenario = api::ScenarioBuilder()
                                     .name("warm_public")
                                     .workload(api::Workload::quicksort(24))
                                     .drain_burst(4)
                                     .batch_mac(true)
                                     .build();
  std::vector<cfi::CommitLog> cold_stream;
  api::RunHooks cold_hooks;
  cold_hooks.log_capture = [&](const cfi::CommitLog& log) {
    cold_stream.push_back(log);
  };
  const api::RunReport cold = api::run_scenario(scenario, cold_hooks);

  const auto snapshot = api::capture_checkpoint(scenario, cold.cycles / 2);
  for (const api::Engine engine :
       {api::Engine::kLockStep, api::Engine::kEventDriven}) {
    std::vector<cfi::CommitLog> warm_stream;
    api::RunHooks warm_hooks;
    warm_hooks.log_capture = [&](const cfi::CommitLog& log) {
      warm_stream.push_back(log);
    };
    const api::RunReport warm = api::run_scenario(
        scenario.with_engine(engine).with_warm_start(snapshot), warm_hooks);
    EXPECT_EQ(warm, cold);
    // run_scenario replays the prefix through the same observer, so the
    // warm stream is the full cold stream.
    EXPECT_EQ(warm_stream, cold_stream);
  }
}

TEST(WarmStartTest, BuilderWarmStartMatchesWithWarmStart) {
  const api::Scenario base = api::ScenarioBuilder()
                                 .name("warm_builder")
                                 .workload(api::Workload::fib(8))
                                 .build();
  const auto snapshot = api::capture_checkpoint(base, 400);
  const api::Scenario via_builder = api::ScenarioBuilder()
                                        .name("warm_builder")
                                        .workload(api::Workload::fib(8))
                                        .warm_start(snapshot)
                                        .build();
  ASSERT_EQ(via_builder.warm_start(), snapshot);
  // Warm start is an execution strategy: identity must not change.
  EXPECT_EQ(via_builder.serialize(), base.serialize());
  EXPECT_EQ(api::run_scenario(via_builder), api::run_scenario(base));
}

// ---- Cancellation does not poison shared snapshots ---------------------------
//
// titand forks every request from shared warm checkpoints and cancels runs
// freely (deadlines, disconnects, drain).  That is only sound if a stopped
// warm run cannot leave stale state behind: the snapshot is immutable, so a
// later unlimited fork from the same checkpoint must still reproduce the
// cold report bit for bit.

TEST(WarmStartTest, StoppedWarmRunLeavesSnapshotPristine) {
  const api::Scenario scenario = api::ScenarioBuilder()
                                     .name("warm_cancel")
                                     .workload(api::Workload::fib(12))
                                     .drain_burst(4)
                                     .build();
  const api::RunReport cold = api::run_scenario(scenario);
  const sim::Cycle fork_at = cold.cycles / 2;
  ASSERT_GT(fork_at, 0u);
  const auto snapshot = api::capture_checkpoint(scenario, fork_at);

  for (const api::Engine engine :
       {api::Engine::kLockStep, api::Engine::kEventDriven}) {
    SCOPED_TRACE(engine == api::Engine::kLockStep ? "lockstep" : "event");
    const api::Scenario warm =
        scenario.with_engine(engine).with_warm_start(snapshot);

    // Budget-stop a warm fork three quarters of the way through the run.
    api::RunControl budget;
    budget.cancel = std::make_shared<sim::CancelToken>();
    budget.max_cycles = fork_at + (cold.cycles - fork_at) / 2;
    const api::RunReport stopped = api::run_scenario(warm, {}, budget);
    EXPECT_EQ(stopped.stop, api::RunStop::kBudgetExceeded);
    EXPECT_EQ(stopped.cycles, budget.max_cycles);

    // A fork whose client is already gone stops before simulating at all.
    api::RunControl fired;
    auto token = std::make_shared<sim::CancelToken>();
    token->cancel(sim::CancelToken::Reason::kDisconnect);
    fired.cancel = token;
    const api::RunReport dropped = api::run_scenario(warm, {}, fired);
    EXPECT_EQ(dropped.stop, api::RunStop::kCancelled);

    // The shared checkpoint is untouched: a fresh unlimited fork still
    // matches the cold run exactly.
    EXPECT_EQ(api::run_scenario(warm), cold);
  }
}

// ---- Validation and caching -------------------------------------------------

TEST(WarmStartTest, MismatchedScenarioIsRejected) {
  const api::Scenario captured = api::ScenarioBuilder()
                                     .name("warm_a")
                                     .workload(api::Workload::fib(7))
                                     .build();
  const api::Scenario other = api::ScenarioBuilder()
                                  .name("warm_b")
                                  .workload(api::Workload::fib(8))
                                  .build();
  const auto snapshot = api::capture_checkpoint(captured, 300);
  EXPECT_THROW((void)api::run_scenario(other.with_warm_start(snapshot)),
               api::ScenarioError);
  // The matching scenario still works, whatever the engine.
  EXPECT_NO_THROW((void)api::run_scenario(
      captured.with_engine(api::Engine::kEventDriven)
          .with_warm_start(snapshot)));
}

TEST(WarmStartTest, CheckpointCacheBuildsOnePrefixPerScenario) {
  const api::Scenario a = api::ScenarioBuilder()
                              .name("cache_a")
                              .workload(api::Workload::fib(7))
                              .build();
  const api::Scenario b = api::ScenarioBuilder()
                              .name("cache_b")
                              .workload(api::Workload::crc32(32))
                              .build();
  api::CheckpointCache cache;
  const auto first = cache.warmed(a, 300);
  const auto again = cache.warmed(a, 300);
  EXPECT_EQ(first, again);  // same object, no second prefix simulation
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.warmed(b, 300), first);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find(a), first);
  // Engine is excluded from the identity: one checkpoint serves both.
  EXPECT_EQ(cache.find(a.with_engine(api::Engine::kEventDriven)), first);
  cache.clear();
  EXPECT_EQ(cache.find(a), nullptr);
}

TEST(WarmStartTest, CheckpointBlobIsEngineInvariant) {
  // host_now_ and every other engine-local scratch value is excluded from
  // the snapshot, so capturing the same scenario at the same cycle on the
  // two engines must produce byte-identical blobs.
  const api::Scenario scenario = api::ScenarioBuilder()
                                     .name("engine_invariant")
                                     .workload(api::Workload::call_chain(60))
                                     .drain_burst(2)
                                     .build();
  for (const sim::Cycle at : {sim::Cycle{1}, sim::Cycle{777}}) {
    const auto lock =
        checkpoint_at(scenario.with_engine(api::Engine::kLockStep), at);
    const auto event =
        checkpoint_at(scenario.with_engine(api::Engine::kEventDriven), at);
    EXPECT_EQ(lock->fingerprint, event->fingerprint) << "at cycle " << at;
    EXPECT_EQ(lock->to_blob(), event->to_blob()) << "at cycle " << at;
  }
}

TEST(WarmStartTest, CheckpointPastProgramEndForceFires) {
  // `at` beyond the program's natural end: the checkpoint force-fires at
  // main-loop exit and the warm run replays only the drain, still bit-exact.
  const api::Scenario scenario = api::ScenarioBuilder()
                                     .name("late_checkpoint")
                                     .workload(api::Workload::fib(7))
                                     .build();
  const Observed cold = run_cold(scenario, api::Engine::kLockStep);
  const auto snapshot = checkpoint_at(scenario, cold.result.cycles + 100'000);
  EXPECT_LE(snapshot->cycle, cold.result.cycles);
  expect_bit_exact(cold,
                   run_warm(scenario, api::Engine::kLockStep, *snapshot),
                   "lockstep forced fork");
  expect_bit_exact(cold,
                   run_warm(scenario, api::Engine::kEventDriven, *snapshot),
                   "event forced fork");
}

// ---- Randomized fork-ordinal fuzz -------------------------------------------
//
// Seeded random scenarios — batched drains, MAC batching, fault plans, every
// overflow policy — forked at arbitrary cycles so the checkpoint lands
// mid-batch, mid-burst, and mid-fault-plan.  Whatever the seam cuts
// through, the continuation must be indistinguishable from never stopping.

struct FuzzForkCase {
  std::uint64_t seed;
};

class WarmStartFuzz : public ::testing::TestWithParam<FuzzForkCase> {};

TEST_P(WarmStartFuzz, ForkAtArbitraryCyclesIsBitExact) {
  sim::Rng rng(GetParam().seed);
  constexpr api::OverflowPolicy kPolicies[] = {
      api::OverflowPolicy::kBackPressure, api::OverflowPolicy::kFailClosed,
      api::OverflowPolicy::kFailOpen};
  api::ScenarioBuilder builder;
  builder.name("warm_fuzz_" + std::to_string(GetParam().seed))
      .workload(rng.next() % 2 == 0
                    ? api::Workload::call_chain(30 + rng.next() % 60)
                    : api::Workload::random_callgraph(rng.next(),
                                                      4 + rng.next() % 5,
                                                      rng.next() % 2 == 0))
      .firmware(rng.next() % 2 == 0 ? api::Firmware::kIrq
                                    : api::Firmware::kPolling)
      .queue_depth(2 + rng.next() % 15)
      .drain_burst(4)
      .batch_mac(true)
      .mac_rerequest(rng.next() % 2 == 0)
      .doorbell_retry(1024 + rng.next() % 2048, 2 + rng.next() % 4)
      .overflow_policy(kPolicies[rng.next() % 3]);
  if (rng.next() % 2 == 0) {
    builder.faults(sim::FaultPlan::random(rng.next(), 1 + rng.next() % 4));
  }
  const api::Scenario scenario = builder.build();

  const Observed cold = run_cold(scenario, api::Engine::kLockStep);
  ASSERT_GT(cold.result.cycles, 0u);
  // Three arbitrary ordinals over the run, odd offsets included so forks
  // land mid-batch and mid-fault-plan, plus the cycle-0 edge.
  const sim::Cycle span = cold.result.cycles;
  const sim::Cycle ats[] = {0, 1 + rng.next() % span, 1 + rng.next() % span};
  for (const sim::Cycle at : ats) {
    const auto snapshot = checkpoint_at(scenario, at);
    expect_bit_exact(cold,
                     run_warm(scenario, api::Engine::kLockStep, *snapshot),
                     "lockstep fork @" + std::to_string(at));
    expect_bit_exact(cold,
                     run_warm(scenario, api::Engine::kEventDriven, *snapshot),
                     "event fork @" + std::to_string(at));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, WarmStartFuzz,
    ::testing::Values(FuzzForkCase{0x6B65'7973ull}, FuzzForkCase{0xC0'FFEEull},
                      FuzzForkCase{0x5EED'0001ull}, FuzzForkCase{0x5EED'0002ull},
                      FuzzForkCase{0x5EED'0003ull}, FuzzForkCase{0xF0'F0F0ull}),
    [](const ::testing::TestParamInfo<FuzzForkCase>& info) {
      return "seed_" + std::to_string(info.param.seed);
    });

// ---- Grid helpers -----------------------------------------------------------

TEST(WarmStartTest, WarmStartedGridKeepsIdentityAndRejectsGaps) {
  const api::ScenarioSet grid =
      api::ScenarioRegistry::global().query("fig1_liveness", "warm_grid");
  ASSERT_GE(grid.size(), 2u);

  api::CheckpointCache cache;
  for (const api::Scenario& scenario : grid) {
    (void)cache.warmed(scenario, api::kDefaultWarmupCycle);
  }
  const api::ScenarioSet warm = api::warm_started(grid, cache);
  ASSERT_EQ(warm.size(), grid.size());
  // Identity (header / config fingerprint) unchanged: warm shard partials
  // must merge byte-identically into cold serial documents.
  EXPECT_EQ(warm.header().grid_hash, grid.header().grid_hash);
  EXPECT_EQ(warm.header().config_fingerprint,
            grid.header().config_fingerprint);
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_NE(warm[i].warm_start(), nullptr);
    EXPECT_EQ(warm[i].serialize(), grid[i].serialize());
  }

  // A bundle missing one scenario must fail loudly, not silently run cold.
  api::CheckpointCache partial;
  (void)partial.warmed(grid[0], api::kDefaultWarmupCycle);
  EXPECT_THROW((void)api::warm_started(grid, partial), api::ScenarioError);
}

}  // namespace
}  // namespace titan

// Process-level sweep sharding: ShardPlanner partition properties, the
// --shard CLI surface, and shard-merge aggregation — including the central
// contract that merging K shard partials reconstructs a serial SweepRunner
// run's document byte-for-byte, and that inconsistent shard sets are
// rejected loudly.
#include "sim/shard_merge.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/sweep.hpp"

namespace titan::sim {
namespace {

constexpr unsigned kShardCounts[] = {1, 2, 3, 7};

TEST(ShardPlanner, ExhaustiveCoverageAndNoOverlap) {
  for (const std::size_t total : {std::size_t{0}, std::size_t{1},
                                  std::size_t{2}, std::size_t{3},
                                  std::size_t{5}, std::size_t{6},
                                  std::size_t{7}, std::size_t{8},
                                  std::size_t{13}, std::size_t{21},
                                  std::size_t{32}, std::size_t{100}}) {
    for (const unsigned count : kShardCounts) {
      const ShardPlanner planner(total, count);
      std::vector<int> owners(total, 0);
      std::size_t previous_end = 0;
      std::size_t max_size = 0, min_size = total + 1;
      for (unsigned i = 0; i < count; ++i) {
        const ShardRange range = planner.range(i);
        // Contiguous-by-index: each shard starts where the previous ended.
        EXPECT_EQ(range.begin, previous_end)
            << "total=" << total << " K=" << count << " shard=" << i;
        EXPECT_LE(range.begin, range.end);
        previous_end = range.end;
        max_size = std::max(max_size, range.size());
        min_size = std::min(min_size, range.size());
        for (std::size_t p = range.begin; p < range.end; ++p) {
          ++owners[p];
        }
      }
      EXPECT_EQ(previous_end, total) << "total=" << total << " K=" << count;
      for (std::size_t p = 0; p < total; ++p) {
        EXPECT_EQ(owners[p], 1) << "point " << p << " total=" << total
                                << " K=" << count;
      }
      // Balanced: slice sizes differ by at most one.
      EXPECT_LE(max_size - min_size, 1u) << "total=" << total
                                         << " K=" << count;
    }
  }
}

TEST(ShardSpecParse, AcceptsValidRejectsMalformed) {
  ShardSpec spec;
  EXPECT_TRUE(parse_shard_spec("2/4", &spec));
  EXPECT_EQ(spec.index, 2u);
  EXPECT_EQ(spec.count, 4u);
  EXPECT_TRUE(parse_shard_spec("0/1", &spec));
  for (const char* bad : {"", "/", "3", "3/", "/4", "4/4", "5/4", "0/0",
                          "1/2x", "a/b", "-1/4"}) {
    EXPECT_FALSE(parse_shard_spec(bad, &spec)) << "'" << bad << "'";
  }
}

TEST(SweepCliShard, ParsesShardFlagsAndDiagnosesMisuse) {
  {
    const char* argv[] = {"bench", "--shard=1/4", "--shard_json=p.json"};
    const SweepCli cli = parse_sweep_cli(3, const_cast<char**>(argv));
    EXPECT_TRUE(cli.error.empty()) << cli.error;
    EXPECT_TRUE(cli.shard_given);
    EXPECT_EQ(cli.shard.index, 1u);
    EXPECT_EQ(cli.shard.count, 4u);
    EXPECT_EQ(cli.shard_json_path, "p.json");
  }
  {
    const char* argv[] = {"bench", "--shard=9/4", "--shard_json=p.json"};
    const SweepCli cli = parse_sweep_cli(3, const_cast<char**>(argv));
    EXPECT_NE(cli.error.find("malformed --shard"), std::string::npos)
        << cli.error;
  }
  {
    const char* argv[] = {"bench", "--shard=1/4"};
    const SweepCli cli = parse_sweep_cli(2, const_cast<char**>(argv));
    EXPECT_NE(cli.error.find("--shard_json"), std::string::npos) << cli.error;
  }
  {
    const char* argv[] = {"bench", "--shard_json=p.json"};
    const SweepCli cli = parse_sweep_cli(2, const_cast<char**>(argv));
    EXPECT_NE(cli.error.find("--shard=i/K"), std::string::npos) << cli.error;
  }
  {
    const char* argv[] = {"bench", "--shard=1/4", "--shard_json=p.json",
                          "--json=full.json"};
    const SweepCli cli = parse_sweep_cli(4, const_cast<char**>(argv));
    EXPECT_NE(cli.error.find("--json"), std::string::npos) << cli.error;
  }
}

TEST(Fingerprint, StableAndDiscriminating) {
  EXPECT_EQ(fingerprint_hex("grid-a"), fingerprint_hex("grid-a"));
  EXPECT_NE(fingerprint_hex("grid-a"), fingerprint_hex("grid-b"));
  EXPECT_EQ(fingerprint_hex("x").size(), 16u);
  // FNV-1a 64 published reference value for the empty string.
  EXPECT_EQ(fingerprint64(""), 14695981039346656037ull);
}

// ---- Merge byte-identity ----------------------------------------------------

// The synthetic sweep used below mirrors the real benches: each point is a
// pure function of its grid index (a per-index Rng stream feeding doubles
// and counters), evaluated through SweepRunner.
struct SyntheticRow {
  std::uint64_t ticks = 0;
  double score = 0;
};

SyntheticRow synthetic_point(std::size_t index) {
  Rng rng(0xBEEF + index);
  SyntheticRow row;
  for (int i = 0; i < 50; ++i) {
    row.ticks += rng.next() & 0xFF;
  }
  row.score = static_cast<double>(row.ticks) / (1.0 + static_cast<double>(index));
  return row;
}

SweepDocHeader synthetic_header(std::size_t total) {
  SweepDocHeader header;
  header.bench = "synthetic";
  header.total_points = total;
  header.grid_hash = fingerprint_hex("synthetic-grid");
  header.config_fingerprint = fingerprint_hex("synthetic-config");
  return header;
}

/// Serial single-process document: SweepRunner over the full grid.
std::string render_serial(std::size_t total) {
  SweepOptions options;
  options.threads = 1;
  SweepRunner runner(options);
  const auto rows = runner.run<SyntheticRow>(total, synthetic_point);
  return render_full_document(
      synthetic_header(total), [&rows](JsonWriter& json, std::size_t index) {
        json.begin_object()
            .field("index", static_cast<std::uint64_t>(index))
            .field("ticks", rows[index].ticks)
            .field("score", rows[index].score)
            .end_object();
      });
}

/// One shard's partial document: its own SweepRunner over the owned slice
/// only, exactly like a --shard=i/K bench process.
std::string render_one_shard(std::size_t total, unsigned index,
                             unsigned count) {
  const ShardRange owned = ShardPlanner(total, count).range(index);
  SweepOptions options;
  options.threads = 2;  // Thread-pooled inside the process, like the benches.
  SweepRunner runner(options);
  const auto rows = runner.run<SyntheticRow>(
      owned.size(),
      [&owned](std::size_t local) { return synthetic_point(owned.begin + local); });
  ShardSpec spec;
  spec.index = index;
  spec.count = count;
  return render_shard_document(
      synthetic_header(total), spec,
      [&rows, &owned](JsonWriter& json, std::size_t global) {
        const SyntheticRow& row = rows[global - owned.begin];
        json.begin_object()
            .field("index", static_cast<std::uint64_t>(global))
            .field("ticks", row.ticks)
            .field("score", row.score)
            .end_object();
      });
}

std::vector<std::string> render_all_shards(std::size_t total, unsigned count) {
  std::vector<std::string> documents;
  for (unsigned i = 0; i < count; ++i) {
    documents.push_back(render_one_shard(total, i, count));
  }
  return documents;
}

TEST(ShardMerge, ByteIdenticalToSerialRunForAllShardCounts) {
  for (const std::size_t total : {std::size_t{5}, std::size_t{13},
                                  std::size_t{21}}) {
    const std::string serial = render_serial(total);
    for (const unsigned count : kShardCounts) {
      std::vector<std::string> documents = render_all_shards(total, count);
      // Shard files arrive in arbitrary order in CI; merge must not care.
      std::reverse(documents.begin(), documents.end());
      const MergeResult result = merge_shard_documents(documents);
      ASSERT_TRUE(result.ok) << result.error;
      EXPECT_EQ(result.merged, serial)
          << "total=" << total << " K=" << count;
    }
  }
}

TEST(ShardMerge, EmptyShardsFromOversizedPartitionsMergeFine) {
  // K=7 over 3 points: four shards own nothing and must still merge.
  const std::string serial = render_serial(3);
  const MergeResult result = merge_shard_documents(render_all_shards(3, 7));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.merged, serial);
}

// ---- Merge rejections -------------------------------------------------------

TEST(ShardMerge, RejectsEmptyInput) {
  const MergeResult result = merge_shard_documents({});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no shard files"), std::string::npos)
      << result.error;
}

TEST(ShardMerge, RejectsMissingShard) {
  auto documents = render_all_shards(10, 3);
  documents.erase(documents.begin() + 1);
  const MergeResult result = merge_shard_documents(documents);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("missing shard 1 of 3"), std::string::npos)
      << result.error;
}

TEST(ShardMerge, RejectsOverlappingShards) {
  auto documents = render_all_shards(10, 3);
  documents[2] = documents[1];  // Index 1 twice, index 2 never.
  const MergeResult result = merge_shard_documents(documents);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("overlapping shards: index 1"),
            std::string::npos)
      << result.error;
}

TEST(ShardMerge, RejectsGridHashSkew) {
  auto documents = render_all_shards(10, 2);
  const std::string from = synthetic_header(10).grid_hash;
  const std::size_t at = documents[1].find(from);
  ASSERT_NE(at, std::string::npos);
  documents[1].replace(at, from.size(), fingerprint_hex("other-grid"));
  const MergeResult result = merge_shard_documents(documents);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("grid hash skew"), std::string::npos)
      << result.error;
}

TEST(ShardMerge, RejectsConfigFingerprintSkew) {
  auto documents = render_all_shards(10, 2);
  const std::string from = synthetic_header(10).config_fingerprint;
  const std::size_t at = documents[0].find(from);
  ASSERT_NE(at, std::string::npos);
  documents[0].replace(at, from.size(), fingerprint_hex("other-config"));
  const MergeResult result = merge_shard_documents(documents);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("config fingerprint skew"), std::string::npos)
      << result.error;
}

TEST(ShardMerge, RejectsPointCountMismatch) {
  auto documents = render_all_shards(10, 2);
  const std::size_t at = documents[1].find("\"points\": 10");
  ASSERT_NE(at, std::string::npos);
  documents[1].replace(at, 12, "\"points\": 11");
  const MergeResult result = merge_shard_documents(documents);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("point count mismatch"), std::string::npos)
      << result.error;
}

TEST(ShardMerge, RejectsSkewedShardPlan) {
  auto documents = render_all_shards(10, 2);
  // Shard 0 of 2 over 10 points owns [0,5); claim [0,6) instead.
  const std::size_t at = documents[0].find("\"end\": 5");
  ASSERT_NE(at, std::string::npos);
  documents[0].replace(at, 8, "\"end\": 6");
  const MergeResult result = merge_shard_documents(documents);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("skewed shard plan"), std::string::npos)
      << result.error;
}

TEST(ShardMerge, RejectsRowCountMismatch) {
  // Empty-object rows make element surgery trivial: drop one "{}" element
  // from an otherwise consistent shard.
  const auto emit_empty = [](JsonWriter& json, std::size_t) {
    json.begin_object().end_object();
  };
  const SweepDocHeader header = synthetic_header(6);
  ShardSpec spec0{0, 2}, spec1{1, 2};
  std::string doc0 = render_shard_document(header, spec0, emit_empty);
  const std::string doc1 = render_shard_document(header, spec1, emit_empty);
  const std::size_t at = doc0.find(",\n    {}");
  ASSERT_NE(at, std::string::npos);
  doc0.erase(at, std::string(",\n    {}").size());
  const MergeResult result = merge_shard_documents({doc0, doc1});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("owns 3 points but carries 2 rows"),
            std::string::npos)
      << result.error;
}

TEST(ShardMerge, RejectsDocumentsWithoutManifest) {
  // A canonical full document is not a shard partial.
  const std::string full = render_serial(4);
  const MergeResult result = merge_shard_documents({full});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("shard"), std::string::npos) << result.error;
}

TEST(ShardMerge, RejectsGarbage) {
  const MergeResult result = merge_shard_documents({"not json at all"});
  EXPECT_FALSE(result.ok);
}

TEST(ShardMergeFiles, ReportsUnreadablePath) {
  const MergeResult result =
      merge_shard_files({"/nonexistent/shard.json"});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("cannot read"), std::string::npos)
      << result.error;
}

TEST(ShardMergeFiles, MergesRealFiles) {
  const std::string dir = ::testing::TempDir();
  const auto documents = render_all_shards(9, 3);
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < documents.size(); ++i) {
    paths.push_back(dir + "/shard_merge_test_" + std::to_string(i) + ".json");
    std::ofstream os(paths.back());
    os << documents[i] << "\n";
    ASSERT_TRUE(os.good());
  }
  const MergeResult result = merge_shard_files(paths);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.merged, render_serial(9));
  for (const std::string& path : paths) {
    std::remove(path.c_str());
  }
}

// ---- JsonWriter additions ---------------------------------------------------

TEST(JsonWriter, RawElementSplicesVerbatim) {
  JsonWriter json;
  json.begin_object().begin_array("rows");
  json.raw_element("{\n      \"x\": 1\n    }");
  json.raw_element("{\n      \"x\": 2\n    }");
  json.end_array().end_object();

  JsonWriter reference;
  reference.begin_object().begin_array("rows");
  reference.begin_object().field("x", 1).end_object();
  reference.begin_object().field("x", 2).end_object();
  reference.end_array().end_object();
  EXPECT_EQ(json.str(), reference.str());
}

TEST(JsonWriter, CStringFieldEmitsStringNotBool) {
  JsonWriter json;
  const char* label = "irq/baseline/burst1";
  json.begin_object().field("config", label).end_object();
  EXPECT_NE(json.str().find("\"config\": \"irq/baseline/burst1\""),
            std::string::npos)
      << json.str();
}

}  // namespace
}  // namespace titan::sim

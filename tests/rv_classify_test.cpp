// Control-flow classification tests: the CFI Filter's correctness rests on
// this ABI-convention mapping (calls/returns/indirect jumps vs. plain jumps).
#include <gtest/gtest.h>

#include "rv/decode.hpp"
#include "rv/encode.hpp"
#include "rv/isa.hpp"

namespace titan::rv {
namespace {

Inst jal(std::uint8_t rd) {
  Inst inst;
  inst.op = Op::kJal;
  inst.rd = rd;
  return inst;
}

Inst jalr(std::uint8_t rd, std::uint8_t rs1) {
  Inst inst;
  inst.op = Op::kJalr;
  inst.rd = rd;
  inst.rs1 = rs1;
  return inst;
}

TEST(Classify, JalWithLinkRegIsCall) {
  EXPECT_EQ(classify(jal(1)), CfKind::kCall);   // jal ra, ...
  EXPECT_EQ(classify(jal(5)), CfKind::kCall);   // jal t0, ... (alt link)
}

TEST(Classify, JalWithoutLinkIsDirectJump) {
  EXPECT_EQ(classify(jal(0)), CfKind::kDirectJump);
  EXPECT_EQ(classify(jal(10)), CfKind::kDirectJump);  // unusual but defined
}

TEST(Classify, JalrCallForms) {
  EXPECT_EQ(classify(jalr(1, 10)), CfKind::kCall);  // jalr ra, 0(a0)
  EXPECT_EQ(classify(jalr(5, 10)), CfKind::kCall);
  // Even jalr ra, 0(ra) is a call by the ABI hint table.
  EXPECT_EQ(classify(jalr(1, 1)), CfKind::kCall);
}

TEST(Classify, JalrReturnForms) {
  EXPECT_EQ(classify(jalr(0, 1)), CfKind::kReturn);  // ret
  EXPECT_EQ(classify(jalr(0, 5)), CfKind::kReturn);  // alternate link return
}

TEST(Classify, JalrIndirectJumpForms) {
  EXPECT_EQ(classify(jalr(0, 10)), CfKind::kIndirectJump);  // jr a0
  EXPECT_EQ(classify(jalr(3, 10)), CfKind::kIndirectJump);  // links to gp (!)
}

TEST(Classify, BranchesAreBranches) {
  for (const Op op : {Op::kBeq, Op::kBne, Op::kBlt, Op::kBge, Op::kBltu, Op::kBgeu}) {
    Inst inst;
    inst.op = op;
    EXPECT_EQ(classify(inst), CfKind::kBranch);
  }
}

TEST(Classify, NonControlFlowIsNone) {
  for (const Op op : {Op::kAddi, Op::kLd, Op::kSd, Op::kMul, Op::kLui,
                      Op::kEcall, Op::kCsrrw, Op::kFence}) {
    Inst inst;
    inst.op = op;
    EXPECT_EQ(classify(inst), CfKind::kNone);
  }
}

TEST(Classify, CfiRelevanceMatchesPaperSec4B1) {
  // "Such operations are indirect jumps, function returns, and function
  // calls" — branches and direct jumps are NOT streamed to the RoT.
  EXPECT_TRUE(cfi_relevant(CfKind::kCall));
  EXPECT_TRUE(cfi_relevant(CfKind::kReturn));
  EXPECT_TRUE(cfi_relevant(CfKind::kIndirectJump));
  EXPECT_FALSE(cfi_relevant(CfKind::kDirectJump));
  EXPECT_FALSE(cfi_relevant(CfKind::kBranch));
  EXPECT_FALSE(cfi_relevant(CfKind::kNone));
}

TEST(Classify, ThroughDecoder) {
  // ret == jalr x0, 0(ra)
  EXPECT_EQ(classify(decode(0x00008067, Xlen::k64)), CfKind::kReturn);
  // c.jr ra (compressed ret)
  EXPECT_EQ(classify(decode(0x8082, Xlen::k64)), CfKind::kReturn);
  // c.jalr a5 — indirect call
  EXPECT_EQ(classify(decode(0x9782, Xlen::k64)), CfKind::kCall);
  // jal ra, +0
  EXPECT_EQ(classify(decode(enc_j(0x6F, 1, 0), Xlen::k64)), CfKind::kCall);
}

}  // namespace
}  // namespace titan::rv

// Tests for the shared decoded-instruction cache: hit/miss behaviour, RVC
// window normalisation, and exact invalidation via the raw-encoding tag —
// after self-modifying stores and after Memory::load image replacement —
// at unit level and end-to-end on both core models.
#include "sim/decode_cache.hpp"

#include <gtest/gtest.h>

#include "cva6/core.hpp"
#include "ibex/core.hpp"
#include "rv/assembler.hpp"
#include "sim/memory.hpp"
#include "soc/bus.hpp"

namespace titan {
namespace {

constexpr std::uint32_t kAddiA0A0_1 = 0x00150513;   // addi a0, a0, 1
constexpr std::uint32_t kAddiA0A0_64 = 0x04050513;  // addi a0, a0, 64

TEST(DecodeCache, SecondDecodeOfSameWindowHits) {
  sim::DecodeCache cache(rv::Xlen::k64);
  const rv::Inst& first = cache.decode(0x1000, kAddiA0A0_1);
  EXPECT_EQ(first.op, rv::Op::kAddi);
  EXPECT_EQ(first.imm, 1);
  const rv::Inst& again = cache.decode(0x1000, kAddiA0A0_1);
  EXPECT_EQ(again.imm, 1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.decodes_avoided(), 1u);
}

TEST(DecodeCache, ChangedEncodingAtSamePcRedecodes) {
  sim::DecodeCache cache(rv::Xlen::k64);
  EXPECT_EQ(cache.decode(0x1000, kAddiA0A0_1).imm, 1);
  // A store rewrote the instruction: the raw tag must miss and re-decode.
  EXPECT_EQ(cache.decode(0x1000, kAddiA0A0_64).imm, 64);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(DecodeCache, CompressedWindowIsNormalised) {
  sim::DecodeCache cache(rv::Xlen::k64);
  // c.li a0, 1 == 0x4505; the high half of the fetch window is whatever
  // follows in memory and must not affect hit or decode.
  const rv::Inst& a = cache.decode(0x2000, 0xFFFF'4505u);
  EXPECT_EQ(a.op, rv::Op::kAddi);  // c.li expands to addi a0, x0, 1.
  EXPECT_EQ(a.len, 2);
  const rv::Inst& b = cache.decode(0x2000, 0x1234'4505u);
  EXPECT_EQ(b.imm, 1);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(DecodeCache, FlushForcesRedecode) {
  sim::DecodeCache cache(rv::Xlen::k64);
  (void)cache.decode(0x1000, kAddiA0A0_1);
  cache.flush();
  (void)cache.decode(0x1000, kAddiA0A0_1);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(DecodeCache, MemoryLoadReplacingImageInvalidates) {
  // The documented core usage pattern: fetch window from memory, decode via
  // cache.  Replacing the image with Memory::load changes the window, so the
  // stale decode cannot survive.
  sim::Memory memory;
  sim::DecodeCache cache(rv::Xlen::k64);
  const std::vector<std::uint8_t> image_a = {0x13, 0x05, 0x15, 0x00};  // +1
  const std::vector<std::uint8_t> image_b = {0x13, 0x05, 0x05, 0x04};  // +64
  memory.load(0x8000'0000, image_a);
  EXPECT_EQ(cache.decode(0x8000'0000, memory.fetch32(0x8000'0000)).imm, 1);
  memory.load(0x8000'0000, image_b);
  EXPECT_EQ(cache.decode(0x8000'0000, memory.fetch32(0x8000'0000)).imm, 64);
}

// ---- End-to-end: self-modifying code on the CVA6 model ----------------------

// The program executes a patch site twice; between iterations it stores a
// new encoding over the site.  A decode cache without exact invalidation
// would replay the stale +1 and exit with 2 instead of 65.
rv::Image self_modifying_program() {
  using rv::Reg;
  rv::Assembler a(rv::Xlen::k64, 0x8000'0000);
  auto patch = a.new_label();
  auto loop = a.new_label();
  a.li(Reg::kA0, 0);
  a.li(Reg::kS1, 2);
  a.la(Reg::kT2, patch);
  a.li(Reg::kT1, kAddiA0A0_64);
  a.bind(loop);
  a.bind(patch);
  a.word(kAddiA0A0_1);  // Overwritten with +64 after the first iteration.
  a.sw(Reg::kT1, Reg::kT2, 0);
  a.addi(Reg::kS1, Reg::kS1, -1);
  a.bnez(Reg::kS1, loop);
  a.ecall();
  return a.finish();
}

TEST(DecodeCacheE2E, Cva6SelfModifyingStoreIsHonoured) {
  const rv::Image image = self_modifying_program();
  sim::Memory memory;
  memory.load(image.base, image.bytes);
  cva6::Cva6Config config;
  config.reset_pc = image.base;
  cva6::Cva6Core core(config, memory);
  core.set_trace_enabled(false);
  core.run_baseline();
  EXPECT_EQ(core.exit_code(), 65u);  // 1 (original) + 64 (patched).
  EXPECT_GT(core.decode_cache().misses(), 0u);
}

TEST(DecodeCacheE2E, Cva6MatchesUncachedExecution) {
  const rv::Image image = self_modifying_program();
  auto run = [&](bool cached) {
    sim::Memory memory;
    memory.load(image.base, image.bytes);
    cva6::Cva6Config config;
    config.reset_pc = image.base;
    cva6::Cva6Core core(config, memory);
    core.set_decode_cache_enabled(cached);
    core.set_trace_enabled(false);
    core.run_baseline();
    return std::pair{core.exit_code(), core.cycle()};
  };
  EXPECT_EQ(run(true), run(false));
}

// ---- End-to-end: self-modifying code on the Ibex model ----------------------

TEST(DecodeCacheE2E, IbexSelfModifyingStoreIsHonoured) {
  using rv::Reg;
  rv::Assembler a(rv::Xlen::k32, 0x0);
  auto patch = a.new_label();
  auto loop = a.new_label();
  a.li(Reg::kA0, 0);
  a.li(Reg::kS1, 2);
  a.la(Reg::kT2, patch);
  a.li(Reg::kT1, kAddiA0A0_64);
  a.bind(loop);
  a.bind(patch);
  a.word(kAddiA0A0_1);
  a.sw(Reg::kT1, Reg::kT2, 0);
  a.addi(Reg::kS1, Reg::kS1, -1);
  a.bnez(Reg::kS1, loop);
  a.ecall();
  const rv::Image image = a.finish();

  sim::Memory memory;
  memory.load(image.base, image.bytes);
  soc::MemoryTarget target(memory);
  soc::Crossbar bus("test", 0);
  bus.map(soc::Region{0, 0x1'0000}, target, 0, "ram");
  ibex::IbexConfig config;
  config.reset_sp = 0x8000;
  ibex::IbexCore core(config, bus);
  for (int i = 0; i < 1000 && !core.halted(); ++i) {
    core.step();
  }
  EXPECT_TRUE(core.halted());
  EXPECT_EQ(core.reg(10), 65u);
  EXPECT_GT(core.decode_cache().hits() + core.decode_cache().misses(), 0u);
}

}  // namespace
}  // namespace titan

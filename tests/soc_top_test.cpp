// Full-system co-simulation tests: CVA6 + CFI stage + mailbox + Ibex firmware
// end-to-end, including ROP detection and trace-model cross-validation.
#include "titancfi/soc_top.hpp"

#include <gtest/gtest.h>

#include "firmware/builder.hpp"
#include "titancfi/overhead_model.hpp"
#include "workloads/programs.hpp"

namespace titan::cfi {
namespace {

SocConfig make_config(std::size_t queue_depth = 8,
                      RotFabric fabric = RotFabric::kBaseline) {
  SocConfig config;
  config.queue_depth = queue_depth;
  config.fabric = fabric;
  return config;
}

rv::Image default_firmware() {
  fw::FirmwareConfig config;
  config.variant = fw::FwVariant::kIrq;
  return fw::build_firmware(config);
}

class SocVariantTest : public ::testing::TestWithParam<fw::FwVariant> {
 protected:
  rv::Image firmware() const {
    fw::FirmwareConfig config;
    config.variant = GetParam();
    return fw::build_firmware(config);
  }
};

TEST_P(SocVariantTest, FibRunsCleanlyUnderCfi) {
  SocTop soc(make_config(), workloads::fib_recursive(8), firmware());
  const SocRunResult result = soc.run();
  EXPECT_FALSE(result.cfi_fault);
  EXPECT_EQ(result.violations, 0u);
  EXPECT_EQ(result.exit_code, 21u);  // fib(8)
  EXPECT_GT(result.cf_logs, 100u);   // every call+return checked
  EXPECT_EQ(result.cf_logs, result.doorbells);
}

TEST_P(SocVariantTest, RopAttackIsCaught) {
  SocTop soc(make_config(), workloads::rop_victim(), firmware());
  const SocRunResult result = soc.run();
  EXPECT_TRUE(result.cfi_fault);
  EXPECT_EQ(result.violations, 1u);
  // The faulting log is the victim's hijacked return.
  EXPECT_EQ(result.fault_log.classify(), rv::CfKind::kReturn);
  // The host trapped before (or instead of) finishing with the attacker's
  // exit code path having produced a normal completion.
  EXPECT_EQ(result.exit_code, 0xCF1u);
}

TEST_P(SocVariantTest, IndirectDispatchRunsCleanly) {
  SocTop soc(make_config(), workloads::indirect_dispatch(12), firmware());
  const SocRunResult result = soc.run();
  EXPECT_FALSE(result.cfi_fault);
  EXPECT_GE(result.cf_logs, 24u);  // 12 indirect calls + 12 returns
}

INSTANTIATE_TEST_SUITE_P(Variants, SocVariantTest,
                         ::testing::Values(fw::FwVariant::kIrq,
                                           fw::FwVariant::kPolling),
                         [](const ::testing::TestParamInfo<fw::FwVariant>& info) {
                           return info.param == fw::FwVariant::kIrq ? "irq"
                                                                    : "polling";
                         });

TEST(SocTop, DeepRecursionSpillsAndStaysClean) {
  // Depth 100 >> on-chip capacity 32: firmware spills to DRAM (HMAC) and
  // fills back during unwinding, all while the host keeps committing.
  SocTop soc(make_config(), workloads::call_chain(100), default_firmware());
  const SocRunResult result = soc.run();
  EXPECT_FALSE(result.cfi_fault);
  EXPECT_EQ(result.exit_code, 100u);
  EXPECT_GT(soc.rot().hmac().starts(), 0u);  // spill path exercised
}

TEST(SocTop, QueueDepthReducesStalls) {
  const auto run_depth = [](std::size_t depth) {
    SocTop soc(make_config(depth), workloads::fib_recursive(9),
               default_firmware());
    return soc.run();
  };
  const SocRunResult deep = run_depth(8);
  const SocRunResult shallow = run_depth(1);
  EXPECT_EQ(deep.violations, 0u);
  EXPECT_EQ(shallow.violations, 0u);
  // Same checks either way, but the shallow queue stalls the commit stage
  // more and the program takes at least as long.
  EXPECT_EQ(deep.cf_logs, shallow.cf_logs);
  EXPECT_GE(shallow.cycles, deep.cycles);
  EXPECT_GE(shallow.queue_full_stalls, deep.queue_full_stalls);
}

TEST(SocTop, OptimizedFabricIsFaster) {
  const auto run_fabric = [](RotFabric fabric) {
    fw::FirmwareConfig fw_config;
    fw_config.variant = fw::FwVariant::kPolling;
    SocTop soc(make_config(4, fabric), workloads::fib_recursive(9),
               fw::build_firmware(fw_config));
    return soc.run();
  };
  const SocRunResult baseline = run_fabric(RotFabric::kBaseline);
  const SocRunResult optimized = run_fabric(RotFabric::kOptimized);
  EXPECT_FALSE(baseline.cfi_fault);
  EXPECT_FALSE(optimized.cfi_fault);
  EXPECT_LT(optimized.cycles, baseline.cycles);
}

TEST(SocTop, CleanProgramsAcrossWorkloads) {
  for (const auto& [image, expected] :
       {std::pair{workloads::quicksort(24), std::uint64_t{1}},
        std::pair{workloads::crc32(16), std::uint64_t{0}},
        std::pair{workloads::matmul(4), std::uint64_t{0}},
        std::pair{workloads::stats(48), std::uint64_t{0}}}) {
    SocTop soc(make_config(), image, default_firmware());
    const SocRunResult result = soc.run();
    EXPECT_FALSE(result.cfi_fault);
    if (expected != 0) {
      EXPECT_EQ(result.exit_code, expected);
    }
  }
}

TEST(SocTop, TraceModelMatchesCoSimulation) {
  // The paper's methodology (Sec. V-C) replaces co-simulation with a
  // trace-driven model.  Validate: slowdown predicted from the baseline
  // commit trace must be close to the measured co-sim slowdown.
  const rv::Image program = workloads::fib_recursive(9);

  // Baseline run (no CFI): trace + cycles.
  sim::Memory memory;
  memory.load(program.base, program.bytes);
  cva6::Cva6Config host_config;
  host_config.reset_pc = program.base;
  cva6::Cva6Core baseline(host_config, memory);
  const sim::Cycle baseline_cycles = baseline.run_baseline();

  // Co-sim run with the polling firmware at queue depth 8.
  fw::FirmwareConfig fw_config;
  fw_config.variant = fw::FwVariant::kPolling;
  SocConfig soc_config = make_config(8);
  SocTop soc(soc_config, program, fw::build_firmware(fw_config));
  const SocRunResult cosim = soc.run();
  const double cosim_slowdown =
      100.0 * (static_cast<double>(cosim.cycles) - baseline_cycles) /
      baseline_cycles;

  // Trace model with the measured per-op service time: polling firmware
  // takes ~103-121 cycles (Table I), transport adds the mailbox beats.
  OverheadConfig model_config;
  model_config.queue_depth = 8;
  model_config.check_latency = 112;
  model_config.transport_cycles = 13;
  const OverheadResult predicted =
      simulate_trace(baseline.trace(), baseline_cycles, model_config);

  EXPECT_GT(cosim_slowdown, 0.0);
  EXPECT_NEAR(predicted.slowdown_percent(), cosim_slowdown,
              std::max(10.0, cosim_slowdown * 0.35));
}

}  // namespace
}  // namespace titan::cfi

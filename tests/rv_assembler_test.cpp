// Assembler tests: label fixups, li expansion (verified by symbolic
// evaluation), la PC-relative pairs, and disassembly smoke checks.
#include "rv/assembler.hpp"

#include <gtest/gtest.h>

#include "rv/decode.hpp"
#include "rv/disasm.hpp"
#include "sim/rng.hpp"

namespace titan::rv {
namespace {

using sim::Rng;

std::uint32_t word_at(const Image& image, std::uint64_t addr) {
  const std::size_t offset = addr - image.base;
  return static_cast<std::uint32_t>(image.bytes[offset]) |
         (static_cast<std::uint32_t>(image.bytes[offset + 1]) << 8) |
         (static_cast<std::uint32_t>(image.bytes[offset + 2]) << 16) |
         (static_cast<std::uint32_t>(image.bytes[offset + 3]) << 24);
}

TEST(Assembler, EmitsAtBase) {
  Assembler a(Xlen::k64, 0x80000000);
  a.nop();
  const Image image = a.finish();
  EXPECT_EQ(image.base, 0x80000000u);
  EXPECT_EQ(image.bytes.size(), 4u);
  EXPECT_EQ(word_at(image, 0x80000000), 0x00000013u);
}

TEST(Assembler, BackwardBranchOffset) {
  Assembler a(Xlen::k64, 0x1000);
  const auto loop = a.here();
  a.addi(Reg::kA0, Reg::kA0, -1);
  a.bnez(Reg::kA0, loop);
  const Image image = a.finish();
  const Inst branch = decode(word_at(image, 0x1004), Xlen::k64);
  EXPECT_EQ(branch.op, Op::kBne);
  EXPECT_EQ(branch.imm, -4);
}

TEST(Assembler, ForwardBranchOffset) {
  Assembler a(Xlen::k64, 0x1000);
  const auto skip = a.new_label();
  a.beqz(Reg::kA0, skip);
  a.nop();
  a.nop();
  a.bind(skip);
  a.nop();
  const Image image = a.finish();
  const Inst branch = decode(word_at(image, 0x1000), Xlen::k64);
  EXPECT_EQ(branch.op, Op::kBeq);
  EXPECT_EQ(branch.imm, 12);
}

TEST(Assembler, JalOffsets) {
  Assembler a(Xlen::k64, 0x2000);
  const auto fn = a.new_label();
  a.call(fn);        // 0x2000: jal ra, +8
  a.j(fn);           // 0x2004: jal x0, +4
  a.bind(fn);
  a.ret();
  const Image image = a.finish();
  const Inst call_inst = decode(word_at(image, 0x2000), Xlen::k64);
  EXPECT_EQ(call_inst.op, Op::kJal);
  EXPECT_EQ(call_inst.rd, 1);
  EXPECT_EQ(call_inst.imm, 8);
  const Inst jump_inst = decode(word_at(image, 0x2004), Xlen::k64);
  EXPECT_EQ(jump_inst.rd, 0);
  EXPECT_EQ(jump_inst.imm, 4);
}

TEST(Assembler, UnboundLabelThrows) {
  Assembler a(Xlen::k64, 0);
  const auto label = a.new_label();
  a.j(label);
  EXPECT_THROW(a.finish(), std::logic_error);
}

TEST(Assembler, DoubleBindThrows) {
  Assembler a(Xlen::k64, 0);
  const auto label = a.here();
  EXPECT_THROW(a.bind(label), std::logic_error);
}

TEST(Assembler, BranchOutOfRangeThrows) {
  Assembler a(Xlen::k64, 0);
  const auto far = a.new_label();
  a.beqz(Reg::kA0, far);
  for (int i = 0; i < 1200; ++i) {
    a.nop();  // > 4 KiB: outside the ±4 KiB B-type range
  }
  a.bind(far);
  EXPECT_THROW(a.finish(), std::out_of_range);
}

TEST(Assembler, MarksRecordPositions) {
  Assembler a(Xlen::k32, 0x500);
  a.nop();
  a.mark("policy_start");
  a.nop();
  const Image image = a.finish();
  ASSERT_TRUE(image.marks.contains("policy_start"));
  EXPECT_EQ(image.marks.at("policy_start"), 0x504u);
}

TEST(Assembler, AlignPadsWithNops) {
  Assembler a(Xlen::k64, 0x100);
  a.nop();
  a.align(16);
  EXPECT_EQ(a.pc() % 16, 0u);
  const Image image = a.finish();
  for (std::uint64_t addr = 0x104; addr < a.pc(); addr += 4) {
    EXPECT_EQ(word_at(image, addr), 0x00000013u);
  }
}

// ---- li expansion property --------------------------------------------------
// Evaluate the emitted instruction sequence symbolically (only ops li may
// emit) and check the final register value equals the requested constant.

std::int64_t evaluate_li(const Image& image, Xlen xlen) {
  std::int64_t reg = 0;
  for (std::size_t offset = 0; offset < image.bytes.size(); offset += 4) {
    const Inst inst = decode(word_at(image, image.base + offset), xlen);
    switch (inst.op) {
      case Op::kAddi:
        // Hardware adds wrap; evaluate in unsigned space to model that
        // (and keep UBSan quiet about the intentional overflow).
        reg = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(inst.rs1 == 0 ? 0 : reg) +
            static_cast<std::uint64_t>(inst.imm));
        break;
      case Op::kLui:
        reg = inst.imm;
        break;
      case Op::kAddiw:
        reg = static_cast<std::int32_t>(static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(inst.rs1 == 0 ? 0 : reg) +
            static_cast<std::uint64_t>(inst.imm)));
        break;
      case Op::kSlli:
        reg = static_cast<std::int64_t>(static_cast<std::uint64_t>(reg)
                                        << inst.imm);
        break;
      default:
        ADD_FAILURE() << "unexpected op in li expansion: " << disasm(inst);
        return 0;
    }
    if (xlen == Xlen::k32) {
      reg = static_cast<std::int32_t>(reg);
    }
  }
  return reg;
}

class LiPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LiPropertyTest, Rv64RandomConstants) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 400; ++trial) {
    // Mix of small, 32-bit, and full 64-bit magnitudes.
    std::int64_t value = 0;
    switch (trial % 4) {
      case 0: value = static_cast<std::int64_t>(rng.uniform(0, 4096)) - 2048; break;
      case 1: value = static_cast<std::int32_t>(rng.next()); break;
      case 2: value = static_cast<std::int64_t>(rng.next() & 0xFFFFFFFFFFFFULL); break;
      default: value = static_cast<std::int64_t>(rng.next()); break;
    }
    Assembler a(Xlen::k64, 0);
    a.li(Reg::kA0, value);
    const Image image = a.finish();
    ASSERT_EQ(evaluate_li(image, Xlen::k64), value) << "value=" << value;
    // The expansion must stay within the canonical 8-instruction bound.
    ASSERT_LE(image.bytes.size(), 8u * 4u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LiPropertyTest, ::testing::Values(1, 2, 3, 4));

TEST(Assembler, LiRv32Boundaries) {
  for (const std::int64_t value :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1}, std::int64_t{2047},
        std::int64_t{-2048}, std::int64_t{2048}, std::int64_t{0x7FFFFFFF},
        std::int64_t{-0x80000000LL}, std::int64_t{0x12345678}}) {
    Assembler a(Xlen::k32, 0);
    a.li(Reg::kT0, value);
    const Image image = a.finish();
    EXPECT_EQ(evaluate_li(image, Xlen::k32),
              static_cast<std::int32_t>(value))
        << "value=" << value;
  }
}

TEST(Assembler, LiRv64Boundaries) {
  for (const std::int64_t value :
       {std::int64_t{0x7FFFFFFFFFFFFFFFLL},
        static_cast<std::int64_t>(0x8000000000000000ULL), std::int64_t{2048},
        std::int64_t{-2049}, std::int64_t{0x80000000LL},
        static_cast<std::int64_t>(0xDEADBEEFCAFEF00DULL)}) {
    Assembler a(Xlen::k64, 0);
    a.li(Reg::kT0, value);
    const Image image = a.finish();
    EXPECT_EQ(evaluate_li(image, Xlen::k64), value) << "value=" << value;
  }
}

// ---- la ----------------------------------------------------------------------

TEST(Assembler, LaResolvesPcRelative) {
  Assembler a(Xlen::k64, 0x80000000);
  const auto data = a.new_label();
  a.la(Reg::kA1, data);
  a.ret();
  a.bind(data);
  a.data64(0x1122334455667788ULL);
  const Image image = a.finish();

  const Inst auipc_inst = decode(word_at(image, 0x80000000), Xlen::k64);
  const Inst addi_inst = decode(word_at(image, 0x80000004), Xlen::k64);
  ASSERT_EQ(auipc_inst.op, Op::kAuipc);
  ASSERT_EQ(addi_inst.op, Op::kAddi);
  const std::int64_t resolved =
      static_cast<std::int64_t>(0x80000000) + auipc_inst.imm + addi_inst.imm;
  EXPECT_EQ(resolved, static_cast<std::int64_t>(a.addr_of(data)));
}

TEST(Assembler, DisasmSmoke) {
  EXPECT_EQ(disasm(decode(0xFF010113, Xlen::k64)), "addi sp, sp, -16");
  EXPECT_EQ(disasm(decode(0x00008067, Xlen::k64)), "jalr zero, 0(ra)");
}

}  // namespace
}  // namespace titan::rv

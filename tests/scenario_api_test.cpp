// Scenario API tests: skew-proof construction, build()-time validation,
// deterministic serialization == fingerprint stability, registry queries,
// the unified RunReport, and shard-merge byte-identity of the typed sweep
// surface.  Tests are the one place outside src/ allowed to touch the raw
// SocConfig/FirmwareConfig layer (to prove the facade matches it).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "api/api.hpp"
#include "firmware/builder.hpp"
#include "soc/mailbox.hpp"
#include "titancfi/soc_top.hpp"
#include "workloads/programs.hpp"

namespace titan {
namespace {

api::ScenarioBuilder valid_builder() {
  return api::ScenarioBuilder()
      .name("test")
      .workload(api::Workload::fib(6));
}

TEST(ScenarioBuilder, OneKnobConfiguresBothSides) {
  const api::Scenario scenario =
      valid_builder().drain_burst(8).batch_mac(true).build();
  // The co-designed values exist once in the builder and are derived into
  // both halves — skew is unrepresentable.
  EXPECT_EQ(scenario.soc_config().drain_burst, 8u);
  EXPECT_EQ(scenario.firmware_config().batch_capacity, 8u);
  EXPECT_TRUE(scenario.soc_config().mac_batches);
  EXPECT_TRUE(scenario.firmware_config().batch_mac);

  const api::Scenario single = valid_builder().build();
  EXPECT_EQ(single.soc_config().drain_burst, 1u);
  EXPECT_EQ(single.firmware_config().batch_capacity, 1u);
}

TEST(ScenarioBuilder, BuiltScenarioConstructsWithoutSkewThrow) {
  // SocTop's constructor is the seed's last-resort skew check; a built
  // Scenario must never trip it, for any burst/MAC combination.
  for (const unsigned burst : {1u, 2u, 8u, 16u}) {
    for (const bool mac : {false, true}) {
      if (mac && burst == 1) continue;  // rejected at build(), tested below
      const api::Scenario scenario = valid_builder()
                                         .drain_burst(burst)
                                         .batch_mac(mac)
                                         .build();
      EXPECT_NO_THROW({ auto soc = scenario.make_soc(); })
          << "burst=" << burst << " mac=" << mac;
    }
  }
}

TEST(ScenarioBuilder, RejectsInvalidCombinationsAtBuild) {
  EXPECT_THROW((void)api::ScenarioBuilder()
                   .workload(api::Workload::fib(6))
                   .build(),
               api::ScenarioError);  // no name
  EXPECT_THROW((void)api::ScenarioBuilder().name("x").build(),
               api::ScenarioError);  // no workload
  EXPECT_THROW((void)valid_builder().queue_depth(0).build(),
               api::ScenarioError);
  EXPECT_THROW((void)valid_builder().drain_burst(0).build(),
               api::ScenarioError);
  EXPECT_THROW(
      (void)valid_builder().drain_burst(soc::Mailbox::kBatchSlots + 1).build(),
      api::ScenarioError);
  // MAC without a batch to authenticate.
  EXPECT_THROW((void)valid_builder().drain_burst(1).batch_mac(true).build(),
               api::ScenarioError);
  // Degenerate shadow-stack geometries.
  EXPECT_THROW((void)valid_builder().shadow_stack(0, 0).build(),
               api::ScenarioError);
  EXPECT_THROW((void)valid_builder().shadow_stack(16, 0).build(),
               api::ScenarioError);
  EXPECT_THROW((void)valid_builder().shadow_stack(8, 16).build(),
               api::ScenarioError);
  EXPECT_THROW((void)valid_builder().max_cycles(0).build(),
               api::ScenarioError);
}

TEST(Scenario, SerializationIsDeterministicAndDiscriminating) {
  const auto build = [] {
    return valid_builder()
        .firmware(api::Firmware::kPolling)
        .fabric(api::Fabric::kOptimized)
        .queue_depth(4)
        .drain_burst(8)
        .batch_mac(true)
        .build();
  };
  // Round trip: two independent builds of the same parameters serialize
  // identically (this is what makes the fingerprint stable across shard
  // processes).
  EXPECT_EQ(build().serialize(), build().serialize());
  // Every knob shows up in the identity.
  const std::string base = build().serialize();
  EXPECT_NE(base, valid_builder().build().serialize());
  EXPECT_NE(valid_builder().build().serialize(),
            valid_builder().drain_burst(2).build().serialize());
  EXPECT_NE(valid_builder().build().serialize(),
            valid_builder().firmware(api::Firmware::kPolling).build()
                .serialize());
  EXPECT_NE(valid_builder().build().serialize(),
            valid_builder().workload(api::Workload::fib(7)).build()
                .serialize());
}

TEST(Scenario, ImageWorkloadFingerprintsBytes) {
  rv::Image image_a = workloads::fib_recursive(5);
  rv::Image image_b = workloads::fib_recursive(6);
  const auto wl_a = api::Workload::image("prog", std::move(image_a));
  const auto wl_b = api::Workload::image("prog", std::move(image_b));
  // Same label, different program -> different identity.
  EXPECT_NE(wl_a.serialized(), wl_b.serialized());
}

TEST(Scenario, RunMatchesRawConstructionPath) {
  const api::Scenario scenario = valid_builder().drain_burst(4).build();
  const api::RunReport report = api::run_scenario(scenario);

  // Raw path (allowed in tests): identical configs wired by hand.
  fw::FirmwareConfig fw_config;
  fw_config.batch_capacity = 4;
  fw_config.batch_mac = false;
  cfi::SocConfig soc_config;
  soc_config.queue_depth = 8;
  soc_config.drain_burst = 4;
  soc_config.mac_batches = false;
  cfi::SocTop soc(soc_config, workloads::fib_recursive(6),
                  fw::build_firmware(fw_config));
  const cfi::SocRunResult raw = soc.run();

  EXPECT_EQ(report.cycles, static_cast<std::uint64_t>(raw.cycles));
  EXPECT_EQ(report.instructions, raw.instructions);
  EXPECT_EQ(report.cf_logs, raw.cf_logs);
  EXPECT_EQ(report.doorbells, raw.doorbells);
  EXPECT_EQ(report.violations, raw.violations);
  EXPECT_EQ(report.exit_code, raw.exit_code);
}

TEST(RunReport, CarriesPerfStatsSuperset) {
  const api::RunReport report = api::run_scenario(valid_builder().build());
  EXPECT_GT(report.cf_logs, 0u);
  EXPECT_GT(report.doorbells, 0u);
  // The stats beyond SocRunResult: memory system, decode cache, RoT side.
  EXPECT_GT(report.host_memory.reads, 0u);
  EXPECT_GT(report.host_memory.writes, 0u);
  EXPECT_GT(report.decode_hits + report.decode_misses, 0u);
  EXPECT_GT(report.rot_instructions, 0u);
  EXPECT_NEAR(report.doorbells_per_log(),
              static_cast<double>(report.doorbells) /
                  static_cast<double>(report.cf_logs),
              1e-12);

  // A spill-heavy scenario surfaces the RoT's authenticated-spill MACs.
  const api::RunReport spilling =
      api::run_scenario(api::ScenarioBuilder()
                            .name("spill")
                            .workload(api::Workload::call_chain(40))
                            .shadow_stack(8, 4)
                            .build());
  EXPECT_GT(spilling.rot_hmac_starts, 0u);
  EXPECT_EQ(spilling.violations, 0u);
}

TEST(RunReport, HooksObserveLogsAndSoc) {
  std::size_t captured = 0;
  bool configured = false;
  api::RunHooks hooks;
  hooks.log_capture = [&captured](const cfi::CommitLog&) { ++captured; };
  hooks.configure = [&configured](cfi::SocTop& soc) {
    configured = true;
    EXPECT_EQ(soc.config().queue_depth, 8u);
  };
  const api::RunReport report =
      api::run_scenario(valid_builder().build(), hooks);
  EXPECT_TRUE(configured);
  EXPECT_EQ(captured, report.cf_logs);
}

TEST(ScenarioRegistry, GlobalNamedScenariosAndQueries) {
  const api::ScenarioRegistry& registry = api::ScenarioRegistry::global();
  EXPECT_NE(registry.find("rop_attack"), nullptr);
  EXPECT_NE(registry.find("drain/burst8_mac"), nullptr);
  EXPECT_EQ(registry.find("no_such_scenario"), nullptr);

  const api::ScenarioSet fig1 = registry.query("fig1_liveness", "fig1");
  EXPECT_EQ(fig1.size(), 8u);
  EXPECT_EQ(fig1.bench(), "fig1");
  const api::ScenarioSet drain = registry.query("drain_study", "drain");
  EXPECT_EQ(drain.size(), 3u);

  // Header determinism: two queries produce byte-identical identity.
  const sim::SweepDocHeader a = fig1.header();
  const sim::SweepDocHeader b = registry.query("fig1_liveness", "fig1").header();
  EXPECT_EQ(a.grid_hash, b.grid_hash);
  EXPECT_EQ(a.config_fingerprint, b.config_fingerprint);
  EXPECT_EQ(a.total_points, 8u);

  // The fingerprint is derived from the scenario serializations.
  std::ostringstream config;
  for (const api::Scenario& scenario : fig1) {
    config << scenario.serialize() << ';';
  }
  EXPECT_EQ(a.config_fingerprint, sim::fingerprint_hex(config.str()));
}

TEST(ScenarioRegistry, RejectsDuplicateNames) {
  api::ScenarioRegistry registry;
  registry.add(valid_builder().build());
  EXPECT_THROW(registry.add(valid_builder().build()), api::ScenarioError);
}

TEST(OverheadGrid, NamedGridsMatchLiveConfiguration) {
  const api::OverheadGrid table2 = api::OverheadGrid::table2();
  const api::OverheadGrid table3 = api::OverheadGrid::table3();
  EXPECT_GT(table2.size(), 0u);
  EXPECT_GT(table3.size(), table2.size());
  EXPECT_EQ(table2.base_config().queue_depth, 1u);
  EXPECT_EQ(table3.base_config().queue_depth, 8u);
  for (std::size_t i = 0; i < table2.size(); ++i) {
    EXPECT_TRUE(table2.row(i).in_table2());
  }

  // Identity is stable and distinguishes the grids.
  EXPECT_EQ(table2.header().grid_hash, api::OverheadGrid::table2().header().grid_hash);
  EXPECT_NE(table2.header().grid_hash, table3.header().grid_hash);
  EXPECT_NE(table2.header().config_fingerprint,
            table3.header().config_fingerprint);

  // micro_sweep is the Table III grid reporting under another bench name.
  const api::OverheadGrid micro = api::OverheadGrid::micro_sweep();
  EXPECT_EQ(micro.header().grid_hash, table3.header().grid_hash);
  EXPECT_EQ(micro.bench(), "micro_sweep");

  EXPECT_EQ(api::OverheadGrid::named("table2").header().grid_hash,
            table2.header().grid_hash);
  EXPECT_THROW((void)api::OverheadGrid::named("bogus"), std::invalid_argument);
}

/// End-to-end: the typed sweep surface's shard partials merge back into a
/// document byte-identical to its serial run, for K in {1, 2, 3}.
TEST(ScenarioSweep, ShardMergeByteIdenticalToSerial) {
  std::vector<api::Scenario> scenarios;
  for (const unsigned n : {4u, 5u, 6u}) {
    scenarios.push_back(api::ScenarioBuilder()
                            .name("fib" + std::to_string(n))
                            .workload(api::Workload::fib(n))
                            .build());
  }
  const api::ScenarioSet set("sweep_test", std::move(scenarios));
  const api::SweepPlan<api::RunReport> plan = api::scenario_sweep_plan(set);

  const std::string serial_path = "scenario_sweep_serial.json";
  sim::SweepCli serial_cli;
  serial_cli.json_path = serial_path;
  api::SweepOutcome<api::RunReport> serial_outcome;
  ASSERT_EQ(api::run_sweep(plan, serial_cli, &serial_outcome), 0);
  ASSERT_EQ(serial_outcome.rows.size(), set.size());

  std::ifstream serial_stream(serial_path);
  std::ostringstream serial_doc;
  serial_doc << serial_stream.rdbuf();

  for (const unsigned shard_count : {1u, 2u, 3u}) {
    std::vector<std::string> partial_paths;
    for (unsigned shard = 0; shard < shard_count; ++shard) {
      sim::SweepCli cli;
      cli.shard_given = true;
      cli.shard.index = shard;
      cli.shard.count = shard_count;
      cli.shard_json_path = "scenario_sweep_shard" + std::to_string(shard) +
                            "_of" + std::to_string(shard_count) + ".json";
      partial_paths.push_back(cli.shard_json_path);
      api::SweepOutcome<api::RunReport> outcome;
      ASSERT_EQ(api::run_sweep(plan, cli, &outcome), 0);
    }
    const sim::MergeResult merged = sim::merge_shard_files(partial_paths);
    ASSERT_TRUE(merged.ok) << merged.error;
    EXPECT_EQ(merged.merged + "\n", serial_doc.str())
        << "K=" << shard_count << " merge is not byte-identical";
    for (const std::string& path : partial_paths) {
      std::remove(path.c_str());
    }
  }
  std::remove(serial_path.c_str());
}

}  // namespace
}  // namespace titan

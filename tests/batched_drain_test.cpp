// Batched commit-log drain: equivalence against the paper's one-at-a-time
// path (identical authenticated log stream, same verdicts), doorbell
// amortisation, stall invariants, and burst-MAC tamper detection.
#include <gtest/gtest.h>

#include <vector>

#include "firmware/builder.hpp"
#include "titancfi/rot_subsystem.hpp"
#include "titancfi/soc_top.hpp"
#include "workloads/programs.hpp"

namespace titan::cfi {
namespace {

struct RunCapture {
  SocRunResult result;
  std::vector<CommitLog> stream;  ///< Every log the writer drained, in order.
};

RunCapture run_burst(unsigned burst, const rv::Image& program,
                     fw::FwVariant variant, bool mac = true,
                     std::size_t queue_depth = 8) {
  fw::FirmwareConfig fw_config;
  fw_config.variant = variant;
  fw_config.batch_capacity = burst;
  fw_config.batch_mac = mac;
  SocConfig config;
  config.queue_depth = queue_depth;
  config.drain_burst = burst;
  config.mac_batches = mac;
  SocTop soc(config, program, fw::build_firmware(fw_config));
  RunCapture capture;
  soc.log_writer().set_log_capture(
      [&capture](const CommitLog& log) { capture.stream.push_back(log); });
  capture.result = soc.run();
  return capture;
}

class BatchedVariantTest : public ::testing::TestWithParam<fw::FwVariant> {};

TEST_P(BatchedVariantTest, IdenticalLogStreamAndVerdicts) {
  const rv::Image program = workloads::fib_recursive(8);
  const RunCapture single = run_burst(1, program, GetParam());
  const RunCapture batched = run_burst(8, program, GetParam());

  EXPECT_FALSE(single.result.cfi_fault);
  EXPECT_FALSE(batched.result.cfi_fault);
  EXPECT_EQ(single.result.exit_code, batched.result.exit_code);
  EXPECT_EQ(single.result.cf_logs, batched.result.cf_logs);
  // The authenticated log stream is byte-identical: batching changes when
  // logs cross the mailbox, never which logs or in what order.
  ASSERT_EQ(single.stream.size(), batched.stream.size());
  EXPECT_EQ(single.stream, batched.stream);
}

TEST_P(BatchedVariantTest, DoorbellsPerLogDropAtLeast4x) {
  const rv::Image program = workloads::fib_recursive(9);
  const RunCapture single = run_burst(1, program, GetParam());
  const RunCapture batched = run_burst(8, program, GetParam());

  // One doorbell per log in the paper's mode...
  EXPECT_EQ(single.result.doorbells, single.result.cf_logs);
  // ...and at least 4x fewer per log at burst 8 (acceptance floor; steady
  // state approaches 8x once the queue stays warm).
  EXPECT_GT(batched.result.doorbells, 0u);
  EXPECT_LE(4 * batched.result.doorbells, single.result.doorbells);
  EXPECT_EQ(batched.result.batches, batched.result.doorbells);
  EXPECT_GT(batched.result.max_batch, 1u);
  EXPECT_LE(batched.result.max_batch, 8u);
}

TEST_P(BatchedVariantTest, RopAttackStillCaught) {
  const RunCapture batched =
      run_burst(8, workloads::rop_victim(), GetParam());
  EXPECT_TRUE(batched.result.cfi_fault);
  EXPECT_EQ(batched.result.violations, 1u);
  EXPECT_EQ(batched.result.fault_log.classify(), rv::CfKind::kReturn);
  EXPECT_EQ(batched.result.exit_code, 0xCF1u);
}

TEST_P(BatchedVariantTest, StallInvariantsHold) {
  // Pure batching (MAC off isolates the drain mechanics): amortising the
  // doorbell/IRQ/verdict round-trip over the burst makes per-log service
  // strictly cheaper, so full-queue commit stalls and total cycles can only
  // go down; dual-CF stalls are a property of the commit stream, which is
  // identical.
  const rv::Image program = workloads::fib_recursive(9);
  const RunCapture single = run_burst(1, program, GetParam(), false, 4);
  const RunCapture batched = run_burst(8, program, GetParam(), false, 4);
  EXPECT_LE(batched.result.queue_full_stalls, single.result.queue_full_stalls);
  EXPECT_EQ(batched.result.dual_cf_stalls, single.result.dual_cf_stalls);
  EXPECT_LE(batched.result.cycles, single.result.cycles);
}

TEST_P(BatchedVariantTest, BatchMacCostIsBoundedPerLog) {
  // The burst MAC is defense-in-depth and costs modeled RoT time; what the
  // batch buys is amortisation: one accelerator pass (with the fixed
  // two-block HMAC pad paid once) plus one 8-word verify per *burst*.  Pin
  // the tradeoff: MAC-on is slower than MAC-off, but by a bounded per-log
  // margin far below the cost of MAC'ing every log individually (~400
  // cycles/log on this accelerator model).
  const rv::Image program = workloads::fib_recursive(9);
  const RunCapture without_mac = run_burst(8, program, GetParam(), false);
  const RunCapture with_mac = run_burst(8, program, GetParam(), true);
  ASSERT_GT(with_mac.result.cf_logs, 0u);
  EXPECT_GE(with_mac.result.cycles, without_mac.result.cycles);
  const double extra_per_log =
      static_cast<double>(with_mac.result.cycles - without_mac.result.cycles) /
      static_cast<double>(with_mac.result.cf_logs);
  EXPECT_LT(extra_per_log, 200.0);
}

INSTANTIATE_TEST_SUITE_P(Variants, BatchedVariantTest,
                         ::testing::Values(fw::FwVariant::kIrq,
                                           fw::FwVariant::kPolling),
                         [](const ::testing::TestParamInfo<fw::FwVariant>& info) {
                           return info.param == fw::FwVariant::kIrq ? "irq"
                                                                    : "polling";
                         });

TEST(BatchedDrain, DeepRecursionSpillsStayClean) {
  // Burst drains and the shadow-stack spill/fill slow path compose: the
  // spill path runs inside the per-slot policy call.
  const RunCapture batched =
      run_burst(8, workloads::call_chain(100), fw::FwVariant::kIrq);
  EXPECT_FALSE(batched.result.cfi_fault);
  EXPECT_EQ(batched.result.exit_code, 100u);
}

TEST(BatchedDrain, MacDisabledStillEquivalent) {
  const rv::Image program = workloads::indirect_dispatch(12);
  const RunCapture with_mac =
      run_burst(8, program, fw::FwVariant::kPolling, true);
  const RunCapture without_mac =
      run_burst(8, program, fw::FwVariant::kPolling, false);
  EXPECT_EQ(with_mac.stream, without_mac.stream);
  EXPECT_FALSE(with_mac.result.cfi_fault);
  EXPECT_FALSE(without_mac.result.cfi_fault);
  // Verifying the burst MAC costs RoT cycles but changes no verdict.
  EXPECT_EQ(with_mac.result.violations, without_mac.result.violations);
}

TEST(BatchedDrain, ConfigSkewIsRejectedAtConstruction) {
  // A burst-mode Log Writer paired with single-log firmware (or vice versa,
  // or a MAC mismatch) would silently wave bursts through — SocTop must
  // refuse to build the contract-violating SoC.
  const rv::Image program = workloads::fib_recursive(5);
  const auto firmware = [](unsigned capacity, bool mac) {
    fw::FirmwareConfig fw_config;
    fw_config.batch_capacity = capacity;
    fw_config.batch_mac = mac;
    return fw::build_firmware(fw_config);
  };
  const auto soc_config = [](unsigned burst, bool mac) {
    SocConfig config;
    config.drain_burst = burst;
    config.mac_batches = mac;
    return config;
  };
  // Burst writer + single-log firmware.
  EXPECT_THROW(SocTop(soc_config(8, true), program, firmware(1, true)),
               std::invalid_argument);
  // Single writer + batched firmware.
  EXPECT_THROW(SocTop(soc_config(1, true), program, firmware(8, true)),
               std::invalid_argument);
  // MAC on one side only.
  EXPECT_THROW(SocTop(soc_config(8, false), program, firmware(8, true)),
               std::invalid_argument);
  EXPECT_THROW(SocTop(soc_config(8, true), program, firmware(8, false)),
               std::invalid_argument);
  // Matched configurations construct fine.
  EXPECT_NO_THROW(SocTop(soc_config(8, true), program, firmware(8, true)));
  EXPECT_NO_THROW(SocTop(soc_config(1, false), program, firmware(1, false)));
}

TEST(BatchedDrain, TamperedBatchMacFlagsViolation) {
  // Drive the RoT directly (same harness shape as firmware/table1.cpp):
  // hand-craft a benign batch but corrupt the MAC registers — the firmware
  // must reject the burst without trusting any slot.
  soc::Mailbox mailbox;
  sim::Memory soc_memory;
  fw::FirmwareConfig fw_config;
  fw_config.variant = fw::FwVariant::kPolling;
  fw_config.batch_capacity = 8;
  fw_config.batch_mac = true;
  RotSubsystem rot(fw::build_firmware(fw_config), RotFabric::kBaseline,
                   mailbox, soc_memory);
  for (int guard = 0; guard < 10000; ++guard) {
    if (rot.section_of(rot.core().pc()) == "main") {
      break;
    }
    rot.step();
  }
  ASSERT_EQ(rot.section_of(rot.core().pc()), "main");

  CommitLog benign;
  benign.pc = 0x8000'0000;
  benign.encoding = 0x0100'00EF;  // jal ra, +0x100 (a call: always pushable)
  benign.next = 0x8000'0004;
  benign.target = 0x8000'0100;
  const auto beats = benign.pack();
  for (unsigned slot = 0; slot < 2; ++slot) {
    for (unsigned beat = 0; beat < CommitLog::kBeats; ++beat) {
      mailbox.set_batch_beat(slot, beat, beats[beat]);
    }
  }
  mailbox.set_batch_count(2);
  for (unsigned i = 0; i < soc::Mailbox::kMacRegs; ++i) {
    mailbox.set_batch_mac(i, 0xDEAD'BEEF'DEAD'BEEFULL);  // wrong MAC
  }
  mailbox.ring_doorbell();
  for (int guard = 0; guard < 1'000'000 && !mailbox.completion_pending();
       ++guard) {
    rot.step();
  }
  ASSERT_TRUE(mailbox.completion_pending());
  EXPECT_EQ(mailbox.data(0) & 1, 1u);  // violation verdict
  EXPECT_GT(rot.hmac().starts(), 0u);  // the accelerator actually ran
}

}  // namespace
}  // namespace titan::cfi

// SweepRunner: deterministic ordered aggregation (parallel output
// byte-identical to serial at any thread count), sharding behaviour,
// exception propagation, and the JSON emitter.
#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "sim/rng.hpp"
#include "titancfi/overhead_model.hpp"
#include "workloads/embench.hpp"

namespace titan::sim {
namespace {

SweepRunner make_runner(unsigned threads) {
  SweepOptions options;
  options.threads = threads;
  return SweepRunner(options);
}

TEST(SweepRunner, SerialReferenceProducesIndexOrder) {
  SweepRunner runner = make_runner(1);
  const auto results = runner.run<std::size_t>(
      17, [](std::size_t index) { return index * index; });
  ASSERT_EQ(results.size(), 17u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(SweepRunner, ParallelIdenticalToSerialAtAnyThreadCount) {
  // A job with real data dependence on the index (per-index Rng stream) so
  // any cross-index interference or misordering would change the output.
  const auto job = [](std::size_t index) {
    Rng rng(0xC0FFEE + index);
    std::uint64_t acc = 0;
    for (int i = 0; i < 1000; ++i) {
      acc += rng.next();
    }
    return acc;
  };
  const auto serial = make_runner(1).run<std::uint64_t>(64, job);
  for (const unsigned threads : {2u, 4u, 8u}) {
    const auto parallel = make_runner(threads).run<std::uint64_t>(64, job);
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

TEST(SweepRunner, OverheadModelSweepIsDeterministicAcrossThreads) {
  // The real workload the benches shard: calibrate + replay a benchmark
  // point through the trace-driven overhead model.
  const auto& table = titan::workloads::benchmark_table();
  const std::size_t count = std::min<std::size_t>(table.size(), 6);
  const auto job = [&table](std::size_t index) {
    const auto& stats = table[index];
    const auto params = titan::workloads::calibrate(stats);
    const auto cf = titan::workloads::synthesize_cf_cycles(stats, params);
    titan::cfi::OverheadConfig config;
    config.queue_depth = 8;
    config.check_latency = titan::workloads::kIrqLatency;
    config.transport_cycles = 0;
    return titan::cfi::simulate_cf_cycles(
               cf, static_cast<Cycle>(stats.cycles), config)
        .slowdown_percent();
  };
  const auto serial = make_runner(1).run<double>(count, job);
  const auto parallel = make_runner(4).run<double>(count, job);
  // Bitwise equality, not approximate: determinism is the contract.
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "index " << i;
  }
}

TEST(SweepRunner, AllIndicesRunExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  SweepRunner runner = make_runner(4);
  runner.run_indexed(hits.size(), [&hits](std::size_t index) {
    hits[index].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(SweepRunner, FirstFailingIndexWinsLikeSerial) {
  for (const unsigned threads : {1u, 4u}) {
    SweepRunner runner = make_runner(threads);
    try {
      runner.run_indexed(32, [](std::size_t index) {
        if (index == 7 || index == 23) {
          throw std::runtime_error("boom at " + std::to_string(index));
        }
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "boom at 7") << "threads=" << threads;
    }
  }
}

TEST(SweepRunner, ZeroThreadsMeansHardwareConcurrency) {
  SweepRunner runner = make_runner(0);
  EXPECT_GE(runner.threads(), 1u);
  EXPECT_EQ(runner.threads(), SweepRunner::hardware_threads());
}

TEST(SweepRunner, EmptySweepIsANoOp) {
  SweepRunner runner = make_runner(4);
  const auto results =
      runner.run<int>(0, [](std::size_t) -> int { throw std::logic_error("no"); });
  EXPECT_TRUE(results.empty());
}

TEST(SweepCli, ParsesThreadsAndJsonFlags) {
  const char* argv[] = {"bench", "--threads=6", "--json=out.json", "--other"};
  const SweepCli cli =
      parse_sweep_cli(4, const_cast<char**>(argv), "default.json");
  EXPECT_TRUE(cli.threads_given);
  EXPECT_EQ(cli.threads, 6u);
  EXPECT_EQ(cli.json_path, "out.json");

  const char* bare[] = {"bench"};
  const SweepCli defaults =
      parse_sweep_cli(1, const_cast<char**>(bare), "default.json");
  EXPECT_FALSE(defaults.threads_given);
  EXPECT_EQ(defaults.threads, 1u);
  EXPECT_EQ(defaults.json_path, "default.json");
}

TEST(JsonWriter, EmitsOrderedNestedStructure) {
  JsonWriter json;
  json.begin_object()
      .field("pr", std::uint64_t{2})
      .field("label", std::string_view{"sweep"})
      .begin_object("nested")
      .field("speedup", 3.5)
      .field("ok", true)
      .end_object()
      .begin_array("points")
      .begin_object()
      .field("x", 1)
      .end_object()
      .begin_object()
      .field("x", 2)
      .end_object()
      .end_array()
      .end_object();
  const std::string expected =
      "{\n"
      "  \"pr\": 2,\n"
      "  \"label\": \"sweep\",\n"
      "  \"nested\": {\n"
      "    \"speedup\": 3.5,\n"
      "    \"ok\": true\n"
      "  },\n"
      "  \"points\": [\n"
      "    {\n"
      "      \"x\": 1\n"
      "    },\n"
      "    {\n"
      "      \"x\": 2\n"
      "    }\n"
      "  ]\n"
      "}";
  EXPECT_EQ(json.str(), expected);
}

}  // namespace
}  // namespace titan::sim

// Crypto substrate tests: FIPS-180-4 / RFC-4231 vectors, incremental-update
// equivalence, HMAC tamper detection, and the accelerator cost model.
#include <gtest/gtest.h>

#include <cstring>
#include <string_view>
#include <vector>

#include "crypto/accel.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "sim/rng.hpp"

namespace titan::crypto {
namespace {

std::vector<std::uint8_t> bytes(std::string_view text) {
  return {text.begin(), text.end()};
}

// ---- SHA-256 NIST vectors ----------------------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash(bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash(bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 hasher;
  const std::vector<std::uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    hasher.update(chunk);
  }
  EXPECT_EQ(to_hex(hasher.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  sim::Rng rng(2024);
  std::vector<std::uint8_t> message(4096);
  for (auto& byte : message) {
    byte = static_cast<std::uint8_t>(rng.next());
  }
  // Split at many odd boundaries.
  for (const std::size_t split : {1u, 7u, 63u, 64u, 65u, 1000u, 4095u}) {
    Sha256 hasher;
    hasher.update(std::span(message).first(split));
    hasher.update(std::span(message).subspan(split));
    EXPECT_EQ(hasher.finish(), Sha256::hash(message)) << "split=" << split;
  }
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 hasher;
  hasher.update(bytes("abc"));
  (void)hasher.finish();
  hasher.reset();
  hasher.update(bytes("abc"));
  EXPECT_EQ(to_hex(hasher.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// ---- HMAC RFC 4231 vectors -----------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(bytes("Jefe"),
                               bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> message(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, message)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key, bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, KeySensitivity) {
  const auto mac1 = hmac_sha256(bytes("key-a"), bytes("message"));
  const auto mac2 = hmac_sha256(bytes("key-b"), bytes("message"));
  EXPECT_FALSE(digest_equal(mac1, mac2));
}

TEST(Hmac, TamperDetection) {
  // The exact check the shadow-stack spill path performs: MAC a buffer, flip
  // any single bit, verification must fail.
  sim::Rng rng(99);
  std::vector<std::uint8_t> segment(256);
  for (auto& byte : segment) {
    byte = static_cast<std::uint8_t>(rng.next());
  }
  const auto key = bytes("rot-private-spill-key");
  const Digest mac = hmac_sha256(key, segment);
  for (int trial = 0; trial < 64; ++trial) {
    const std::size_t byte_index = rng.uniform(0, segment.size() - 1);
    const unsigned bit = static_cast<unsigned>(rng.uniform(0, 7));
    segment[byte_index] ^= 1u << bit;
    EXPECT_FALSE(digest_equal(hmac_sha256(key, segment), mac));
    segment[byte_index] ^= 1u << bit;  // restore
  }
  EXPECT_TRUE(digest_equal(hmac_sha256(key, segment), mac));
}

TEST(DigestEqual, SelfAndCopy) {
  const Digest digest = Sha256::hash(bytes("x"));
  Digest copy = digest;
  EXPECT_TRUE(digest_equal(digest, copy));
  copy[31] ^= 1;
  EXPECT_FALSE(digest_equal(digest, copy));
}

// ---- Accelerator cost model -----------------------------------------------------

TEST(HmacAccel, CostScalesWithBlocks) {
  HmacAccel accel;
  const auto key = bytes("k");
  const std::vector<std::uint8_t> small(16);
  const std::vector<std::uint8_t> large(16 + 64 * 10);
  const auto small_result = accel.mac(key, small);
  const auto large_result = accel.mac(key, large);
  EXPECT_EQ(large_result.cycles - small_result.cycles,
            10 * accel.config().cycles_per_block);
}

TEST(HmacAccel, DigestMatchesSoftware) {
  HmacAccel accel;
  const auto key = bytes("key");
  const auto message = bytes("payload");
  EXPECT_TRUE(digest_equal(accel.mac(key, message).digest,
                           hmac_sha256(key, message)));
}

TEST(HmacAccel, AccountingAccumulates) {
  HmacAccel accel;
  const auto key = bytes("key");
  const std::vector<std::uint8_t> message(64);
  const auto first = accel.mac_accounted(key, message);
  const auto second = accel.mac_accounted(key, message);
  EXPECT_EQ(accel.invocations(), 2u);
  EXPECT_EQ(accel.total_cycles(), first.cycles + second.cycles);
}

// ---- Precomputed ipad/opad midstates (HmacKey) -------------------------------

TEST(HmacKey, MatchesOneShotOnRfc4231Vectors) {
  {
    const std::vector<std::uint8_t> key(20, 0x0b);
    EXPECT_EQ(to_hex(HmacKey(key).mac(bytes("Hi There"))),
              to_hex(hmac_sha256(key, bytes("Hi There"))));
  }
  {
    const HmacKey key(bytes("Jefe"));
    EXPECT_EQ(to_hex(key.mac(bytes("what do ya want for nothing?"))),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  }
}

TEST(HmacKey, LongKeyIsHashedFirst) {
  const std::vector<std::uint8_t> key(131, 0xaa);  // > 64-byte block.
  const auto message = bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(HmacKey(key).mac(message), hmac_sha256(key, message));
}

TEST(HmacKey, ReusedKeyMatchesAcrossMessageLengths) {
  sim::Rng rng(99);
  std::vector<std::uint8_t> key(32);
  for (auto& byte : key) byte = static_cast<std::uint8_t>(rng.next());
  const HmacKey prepared(key);
  for (const std::size_t len : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 200u, 4096u}) {
    std::vector<std::uint8_t> message(len);
    for (auto& byte : message) byte = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(prepared.mac(message), hmac_sha256(key, message)) << len;
  }
}

TEST(Sha256, MidstateSeedResumesExactly) {
  sim::Rng rng(5);
  std::vector<std::uint8_t> message(256);
  for (auto& byte : message) byte = static_cast<std::uint8_t>(rng.next());
  // Capture the midstate after the first two blocks, then resume a second
  // hasher from it; the digests must agree bit-for-bit.
  Sha256 first;
  first.update(std::span(message).first(128));
  const Sha256State mid = first.midstate();
  Sha256 resumed;
  resumed.seed(mid, 128);
  resumed.update(std::span(message).subspan(128));
  EXPECT_EQ(resumed.finish(), Sha256::hash(message));
}

TEST(HmacAccel, PreparedKeyCostsAndDigestsMatch) {
  HmacAccel accel;
  const auto key_bytes = bytes("device-secret-slot-0");
  const HmacKey key(key_bytes);
  const std::vector<std::uint8_t> message(192, 0x5A);
  const auto via_key = accel.mac(key, message);
  const auto via_bytes = accel.mac(key_bytes, message);
  EXPECT_TRUE(digest_equal(via_key.digest, via_bytes.digest));
  EXPECT_EQ(via_key.cycles, via_bytes.cycles);  // Same modelled hardware cost.
}

}  // namespace
}  // namespace titan::crypto

// titand's serving stack, driven in-process: a real Server on an ephemeral
// port, real sockets, and the batch run_scenario() path as the witness.
//
// The load-bearing claim is byte-identity: the report a client receives over
// the wire must equal — byte for byte — what a batch caller renders for the
// same scenario.  Everything else (framing resilience, concurrency, metrics)
// protects that claim under adversarial and concurrent traffic.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/registry.hpp"
#include "api/report_schema.hpp"
#include "api/run.hpp"
#include "api/wire.hpp"
#include "serve/chaos.hpp"
#include "serve/metrics.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "sim/json.hpp"
#include "sim/sweep.hpp"

namespace titan {
namespace {

// ---- WorkerPool (the shared substrate SweepRunner and the server run on) ---

TEST(WorkerPool, RunsEverySubmittedTask) {
  sim::WorkerPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
  EXPECT_EQ(pool.queued(), 0u);
  EXPECT_EQ(pool.active(), 0u);
}

TEST(WorkerPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    sim::WorkerPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(WorkerPool, FloorsAtOneThread) {
  sim::WorkerPool pool(0);
  EXPECT_EQ(pool.threads(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

// ---- In-process server fixture ---------------------------------------------

/// A Server plus its service/metrics, bound to an ephemeral port.
class ServeFixture {
 public:
  explicit ServeFixture(serve::WarmMode warm = serve::WarmMode::kOff,
                        std::size_t max_frame = 1 << 20,
                        serve::Server::Options server_options = {}) {
    serve::ScenarioService::Options service_options;
    service_options.warm_mode = warm;
    service_options.warmup = 500;  // short prefix: tests favour wall clock
    service_ = std::make_unique<serve::ScenarioService>(service_options,
                                                        metrics_);
    server_options.threads = 4;
    server_options.max_frame = max_frame;
    server_ = std::make_unique<serve::Server>(server_options, *service_);
    server_->start();
  }
  ~ServeFixture() { server_->stop(); }

  [[nodiscard]] std::uint16_t port() const { return server_->port(); }
  [[nodiscard]] serve::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] serve::Server& server() { return *server_; }

 private:
  serve::MetricsRegistry metrics_;
  std::unique_ptr<serve::ScenarioService> service_;
  std::unique_ptr<serve::Server> server_;
};

/// Blocking client socket with line/EOF reads.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
        0);
  }
  ~Client() { close(); }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void send_text(std::string_view text) {
    ASSERT_EQ(send(fd_, text.data(), text.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(text.size()));
  }

  /// One LF-terminated response line (without the LF).
  [[nodiscard]] std::string read_line() {
    while (buffered_.find('\n') == std::string::npos) {
      char chunk[4096];
      const ssize_t n = recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) {
        ADD_FAILURE() << "connection closed before a full line";
        return {};
      }
      buffered_.append(chunk, static_cast<std::size_t>(n));
    }
    const std::size_t nl = buffered_.find('\n');
    std::string line = buffered_.substr(0, nl);
    buffered_.erase(0, nl + 1);
    return line;
  }

  /// Everything until the peer closes (HTTP exchanges).
  [[nodiscard]] std::string read_all() {
    std::string out = std::move(buffered_);
    buffered_.clear();
    char chunk[4096];
    for (ssize_t n = recv(fd_, chunk, sizeof chunk, 0); n > 0;
         n = recv(fd_, chunk, sizeof chunk, 0)) {
      out.append(chunk, static_cast<std::size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
  std::string buffered_;
};

std::string run_request(std::string_view id, std::string_view name) {
  return "{\"schema_version\":1,\"id\":\"" + std::string(id) +
         "\",\"op\":\"run\",\"scenario\":\"" + std::string(name) + "\"}\n";
}

/// The report string out of an ok run response (fails the test on !ok).
std::string served_report(const std::string& line) {
  const sim::JsonValue v = sim::JsonValue::parse(line);
  EXPECT_TRUE(v.find("ok")->as_bool()) << line;
  return v.find("ok")->as_bool() ? v.find("report")->as_string()
                                 : std::string();
}

std::string batch_report(const api::Scenario& scenario) {
  return api::ReportSchema().render(api::run_scenario(scenario));
}

// ---- Served-vs-batch byte identity, registry-wide ---------------------------

TEST(ServeByteIdentity, EveryRegistryScenarioColdMatchesBatch) {
  ServeFixture fixture(serve::WarmMode::kOff);
  const api::ScenarioRegistry& registry = api::ScenarioRegistry::global();
  Client client(fixture.port());
  std::size_t covered = 0;
  for (const std::string_view name : registry.names()) {
    client.send_text(run_request("rt", name));
    EXPECT_EQ(served_report(client.read_line()),
              batch_report(*registry.find(name)))
        << "scenario " << name;
    ++covered;
  }
  EXPECT_GE(covered, 25u);
}

TEST(ServeByteIdentity, WarmServedRunsMatchColdBatch) {
  // Lazy warm mode: first request captures, later requests fork — and every
  // response must STILL equal the cold batch bytes (PR7's bit-exactness
  // carried through the wire).
  ServeFixture fixture(serve::WarmMode::kLazy);
  const char* name = "faults/doorbell_drop";
  const std::string expected =
      batch_report(*api::ScenarioRegistry::global().find(name));
  Client client(fixture.port());
  for (int i = 0; i < 3; ++i) {
    client.send_text(run_request("warm", name));
    const std::string line = client.read_line();
    EXPECT_EQ(served_report(line), expected) << "iteration " << i;
    // Runs after the capture advertise the fork.
    if (i > 0) {
      EXPECT_TRUE(sim::JsonValue::parse(line).find("warm_start")->as_bool());
    }
  }
}

TEST(ServeByteIdentity, SpecRunMatchesRegistryRun) {
  ServeFixture fixture;
  const char* name = "irq/baseline/burst8";
  const api::Scenario& scenario = *api::ScenarioRegistry::global().find(name);
  Client client(fixture.port());
  client.send_text("{\"schema_version\":1,\"id\":\"s\",\"op\":\"run\","
                   "\"spec\":\"" +
                   sim::json_escape(scenario.serialize()) + "\"}\n");
  EXPECT_EQ(served_report(client.read_line()), batch_report(scenario));
}

// ---- Wire-protocol resilience ----------------------------------------------

TEST(ServeProtocol, MalformedFrameGetsStructuredErrorAndConnectionSurvives) {
  ServeFixture fixture;
  Client client(fixture.port());
  client.send_text("{this is not json\n");
  const sim::JsonValue error = sim::JsonValue::parse(client.read_line());
  EXPECT_FALSE(error.find("ok")->as_bool());
  EXPECT_EQ(error.find("error")->find("code")->as_string(), "bad_frame");
  // Same connection keeps working.
  client.send_text("{\"schema_version\":1,\"id\":\"p\",\"op\":\"ping\"}\n");
  EXPECT_TRUE(sim::JsonValue::parse(client.read_line()).find("ok")->as_bool());
}

TEST(ServeProtocol, ErrorTaxonomyOverTheWire) {
  ServeFixture fixture;
  Client client(fixture.port());
  const auto error_code = [&](const std::string& frame) {
    client.send_text(frame + "\n");
    return sim::JsonValue::parse(client.read_line())
        .find("error")
        ->find("code")
        ->as_string();
  };
  EXPECT_EQ(error_code(R"({"schema_version":9,"op":"ping"})"),
            "unsupported_version");
  EXPECT_EQ(error_code(R"({"schema_version":1,"op":"melt"})"), "unknown_op");
  EXPECT_EQ(error_code(
                R"({"schema_version":1,"op":"run","scenario":"no/such"})"),
            "unknown_scenario");
  EXPECT_EQ(error_code(
                R"({"schema_version":1,"op":"run","spec":"scenario{bad}"})"),
            "invalid_scenario");
}

TEST(ServeProtocol, OversizedFrameIsRejectedAndDiscarded) {
  ServeFixture fixture(serve::WarmMode::kOff, /*max_frame=*/256);
  Client client(fixture.port());
  // Two oversized chunks then the newline, then a valid request: the server
  // must answer oversized_frame once, eat the rest of the line, and serve
  // the next frame normally.
  client.send_text("{\"pad\":\"" + std::string(4096, 'x'));
  client.send_text(std::string(4096, 'y') + "\"}\n");
  const sim::JsonValue error = sim::JsonValue::parse(client.read_line());
  EXPECT_EQ(error.find("error")->find("code")->as_string(),
            "oversized_frame");
  client.send_text("{\"schema_version\":1,\"id\":\"after\",\"op\":\"ping\"}\n");
  const sim::JsonValue ok = sim::JsonValue::parse(client.read_line());
  EXPECT_TRUE(ok.find("ok")->as_bool());
  EXPECT_EQ(ok.find("id")->as_string(), "after");
}

TEST(ServeProtocol, MidFrameDisconnectLeavesServerHealthy) {
  ServeFixture fixture;
  {
    Client client(fixture.port());
    client.send_text("{\"schema_version\":1,\"op\":\"pi");  // no newline
    client.close();  // vanish mid-frame
  }
  // The server must shrug it off and keep serving new connections.
  Client client(fixture.port());
  client.send_text("{\"schema_version\":1,\"id\":\"ok\",\"op\":\"ping\"}\n");
  EXPECT_TRUE(sim::JsonValue::parse(client.read_line()).find("ok")->as_bool());
}

TEST(ServeProtocol, PipelinedRequestsAnswerInOrder) {
  ServeFixture fixture;
  Client client(fixture.port());
  client.send_text("{\"schema_version\":1,\"id\":\"a\",\"op\":\"ping\"}\n"
                   "{\"schema_version\":1,\"id\":\"b\",\"op\":\"ping\"}\n"
                   "{\"schema_version\":1,\"id\":\"c\",\"op\":\"ping\"}\n");
  for (const char* id : {"a", "b", "c"}) {
    EXPECT_EQ(sim::JsonValue::parse(client.read_line()).find("id")->as_string(),
              id);
  }
}

TEST(ServeProtocol, ListMatchesRegistry) {
  ServeFixture fixture;
  Client client(fixture.port());
  client.send_text("{\"schema_version\":1,\"id\":\"l\",\"op\":\"list\","
                   "\"tag\":\"fault_matrix\"}\n");
  const sim::JsonValue v = sim::JsonValue::parse(client.read_line());
  const auto& scenarios = v.find("scenarios")->as_array();
  const api::ScenarioSet matrix =
      api::ScenarioRegistry::global().query("fault_matrix", "fault_matrix");
  ASSERT_EQ(scenarios.size(), matrix.size());
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    EXPECT_EQ(scenarios[i].find("name")->as_string(), matrix[i].name());
    EXPECT_EQ(scenarios[i].find("spec")->as_string(), matrix[i].serialize());
  }
}

// ---- Concurrency ------------------------------------------------------------

TEST(ServeConcurrency, ParallelClientsGetByteIdenticalReports) {
  ServeFixture fixture(serve::WarmMode::kLazy);
  const char* name = "faults/mac_corrupt_halt";
  const std::string expected =
      batch_report(*api::ScenarioRegistry::global().find(name));
  constexpr int kClients = 6;
  std::vector<std::string> reports(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&fixture, &reports, name, i] {
        Client client(fixture.port());
        client.send_text(run_request("c" + std::to_string(i), name));
        reports[static_cast<std::size_t>(i)] =
            served_report(client.read_line());
      });
    }
    for (std::thread& t : clients) {
      t.join();
    }
  }
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(reports[static_cast<std::size_t>(i)], expected)
        << "client " << i;
  }
}

// ---- Metrics ----------------------------------------------------------------

TEST(ServeMetrics, CountersTrackAScriptedSequence) {
  ServeFixture fixture(serve::WarmMode::kLazy);
  Client client(fixture.port());
  // Script: ping, 3 runs of one scenario (1 lazy capture + 2 cache hits;
  // all 3 fork, since the capturing request forks from the snapshot it just
  // built), 2 attack-corpus runs (one detected, one scored false negative),
  // one unknown scenario, one malformed frame.
  client.send_text("{\"schema_version\":1,\"id\":\"p\",\"op\":\"ping\"}\n");
  (void)client.read_line();
  for (int i = 0; i < 3; ++i) {
    client.send_text(run_request("m", "faults/overflow_backpressure"));
    (void)client.read_line();
  }
  client.send_text(run_request("a1", "attacks/rop_L1"));
  (void)client.read_line();
  client.send_text(run_request("a2", "attacks/ret2reg_ssonly"));
  (void)client.read_line();
  client.send_text(
      R"({"schema_version":1,"op":"run","scenario":"no/such"})" "\n");
  (void)client.read_line();
  client.send_text("{oops\n");
  (void)client.read_line();

  // Scrape over the HTTP shim, exactly as Prometheus (and CI) would.
  Client scraper(fixture.port());
  scraper.send_text("GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  const std::string response = scraper.read_all();
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  const auto metric = [&](const std::string& name) {
    const std::size_t at = response.find("\n" + name + " ");
    EXPECT_NE(at, std::string::npos) << name << " missing in\n" << response;
    return at == std::string::npos
               ? std::uint64_t{0}
               : std::strtoull(
                     response.c_str() + at + name.size() + 2, nullptr, 10);
  };
  EXPECT_EQ(metric("titand_requests_total"), 8u);
  EXPECT_EQ(metric("titand_scenarios_served_total"), 5u);
  EXPECT_EQ(metric("titand_errors_total"), 2u);
  EXPECT_EQ(metric("titand_error_unknown_scenario_total"), 1u);
  EXPECT_EQ(metric("titand_checkpoint_cache_misses_total"), 3u);
  EXPECT_EQ(metric("titand_checkpoint_cache_hits_total"), 2u);
  EXPECT_EQ(metric("titand_warm_runs_total"), 5u);
  // Attack-corpus rollup: rop_L1 is detected; ret2reg under the
  // shadow-stack-only policy is the scored false negative.
  EXPECT_EQ(metric("titand_attacks_injected_total"), 2u);
  EXPECT_EQ(metric("titand_attacks_detected_total"), 1u);
  EXPECT_EQ(metric("titand_attack_false_negatives_total"), 1u);
  // Latency histogram: 3 observations for the scenario.
  EXPECT_NE(
      response.find("titand_request_latency_microseconds_count{scenario="
                    "\"faults/overflow_backpressure\"} 3"),
      std::string::npos);
}

TEST(ServeMetrics, RegistryRendersPrometheusShapes) {
  serve::MetricsRegistry metrics;
  metrics.add_counter("c_total", 2);
  metrics.add_counter("c_total");
  metrics.set_counter("mirrored_total", 7);
  metrics.set_gauge("depth", 5);
  metrics.observe_latency("s", 0);
  metrics.observe_latency("s", 3);
  EXPECT_EQ(metrics.counter("c_total"), 3u);
  EXPECT_EQ(metrics.gauge("depth"), 5u);
  const std::string text = metrics.render_prometheus();
  EXPECT_NE(text.find("# TYPE c_total counter\nc_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\ndepth 5\n"), std::string::npos);
  // value 0 → bucket le="0"; value 3 → cumulative at le="3".
  EXPECT_NE(text.find("titand_request_latency_microseconds_bucket{"
                      "scenario=\"s\",le=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("titand_request_latency_microseconds_bucket{"
                      "scenario=\"s\",le=\"3\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("titand_request_latency_microseconds_sum{"
                      "scenario=\"s\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("titand_request_latency_microseconds_count{"
                      "scenario=\"s\"} 2"),
            std::string::npos);
}

// ---- HTTP shim --------------------------------------------------------------

TEST(ServeHttp, ScenariosEndpointListsRegistry) {
  ServeFixture fixture;
  Client client(fixture.port());
  client.send_text("GET /scenarios?tag=fault_matrix HTTP/1.1\r\n\r\n");
  const std::string response = client.read_all();
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("faults/doorbell_drop"), std::string::npos);
}

TEST(ServeHttp, PostRunMatchesBatch) {
  ServeFixture fixture;
  const char* name = "irq/baseline/burst1";
  const std::string body = run_request("http", name);
  Client client(fixture.port());
  client.send_text("POST /run HTTP/1.1\r\nHost: t\r\nContent-Length: " +
                   std::to_string(body.size()) + "\r\n\r\n" + body);
  const std::string response = client.read_all();
  const std::size_t split = response.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  std::string payload = response.substr(split + 4);
  ASSERT_FALSE(payload.empty());
  payload.resize(payload.find('\n'));
  EXPECT_EQ(served_report(payload),
            batch_report(*api::ScenarioRegistry::global().find(name)));
}

TEST(ServeHttp, UnknownEndpointIs404) {
  ServeFixture fixture;
  Client client(fixture.port());
  client.send_text("GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_NE(client.read_all().find("404 Not Found"), std::string::npos);
}

// ---- Production hardening: lifecycle, admission, deadlines, budgets ---------

std::string http_get(std::uint16_t port, const std::string& path) {
  Client client(port);
  client.send_text("GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n");
  return client.read_all();
}

/// A minimal single-run spec whose runtime is controlled by the workload
/// (fib(22) ≈ half a second — long enough that admission/cancellation races
/// cannot slip past it, short enough for test wall-clock).
std::string spec_scaffold(const std::string& name,
                          const std::string& workload) {
  return "scenario{name=" + name + ";workload=" + workload +
         ";fw=irq;fabric=baseline;queue_depth=8;burst=8;mac=0;dwait=0;"
         "dtimeout=0;ss=32;spill=16;jt=0;pmp=1;trace=0}";
}

std::string spec_run_request(const std::string& id, const std::string& spec,
                             long long deadline_ms,
                             unsigned long long max_cycles,
                             const std::string& engine = {}) {
  std::string frame = "{\"schema_version\":1,\"id\":\"" + id +
                      "\",\"op\":\"run\",\"spec\":\"" +
                      sim::json_escape(spec) + "\"";
  if (!engine.empty()) {
    frame += ",\"engine\":\"" + engine + "\"";
  }
  if (deadline_ms >= 0) {
    frame += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  }
  if (max_cycles > 0) {
    frame += ",\"max_cycles\":" + std::to_string(max_cycles);
  }
  frame += "}\n";
  return frame;
}

/// Poll the daemon's own admission-slot gauge over the HTTP shim until it
/// reads `want` (the same signal the chaos harness keys on).
void await_outstanding(std::uint16_t port, std::uint64_t want) {
  for (int i = 0; i < 2000; ++i) {
    const std::string response = http_get(port, "/metrics");
    const std::size_t at = response.find("\ntitand_runs_outstanding ");
    if (at != std::string::npos &&
        std::strtoull(response.c_str() + at + 25, nullptr, 10) == want) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  FAIL() << "outstanding gauge never reached " << want;
}

TEST(ServeLifecycle, HealthzAlwaysAnswersWhileReadyzTracksPhase) {
  ServeFixture fixture;
  // Before set_ready(): alive but warming.
  EXPECT_NE(http_get(fixture.port(), "/healthz").find("200 OK"),
            std::string::npos);
  std::string ready = http_get(fixture.port(), "/readyz");
  EXPECT_NE(ready.find("503"), std::string::npos);
  EXPECT_NE(ready.find("warming"), std::string::npos);

  fixture.server().set_ready();
  ready = http_get(fixture.port(), "/readyz");
  EXPECT_NE(ready.find("200 OK"), std::string::npos);
  EXPECT_NE(ready.find("ready"), std::string::npos);

  fixture.server().request_drain();
  // Liveness survives the drain; readiness flips to draining; new runs are
  // refused with a structured shutdown error (probes still answer).
  EXPECT_NE(http_get(fixture.port(), "/healthz").find("200 OK"),
            std::string::npos);
  ready = http_get(fixture.port(), "/readyz");
  EXPECT_NE(ready.find("503"), std::string::npos);
  EXPECT_NE(ready.find("draining"), std::string::npos);
  Client client(fixture.port());
  client.send_text(run_request("rejected", "irq/baseline/burst1"));
  const sim::JsonValue refused = sim::JsonValue::parse(client.read_line());
  EXPECT_FALSE(refused.find("ok")->as_bool());
  EXPECT_EQ(refused.find("error")->find("code")->as_string(), "shutdown");
  client.send_text("{\"schema_version\":1,\"id\":\"p\",\"op\":\"ping\"}\n");
  EXPECT_TRUE(sim::JsonValue::parse(client.read_line()).find("ok")->as_bool());
}

TEST(ServeLifecycle, DrainWaitsForInflightRunAndIsIdempotent) {
  ServeFixture fixture;
  fixture.server().set_ready();
  Client client(fixture.port());
  client.send_text(spec_run_request(
      "slow", spec_scaffold("drain/slow", "fib(22)"), -1, 0));
  await_outstanding(fixture.port(), 1);

  // Drain must wait for the in-flight run, deliver its full response, and
  // report a clean quiesce.
  EXPECT_TRUE(fixture.server().drain(std::chrono::seconds(30)));
  const std::string line = client.read_line();
  EXPECT_TRUE(sim::JsonValue::parse(line).find("ok")->as_bool()) << line;

  // Double signal (a second SIGTERM in daemon terms): both entry points are
  // idempotent once quiesced.
  fixture.server().request_drain();
  EXPECT_TRUE(fixture.server().drain(std::chrono::milliseconds(100)));
}

TEST(ServeLifecycle, DrainTimeoutCancelsStragglers) {
  ServeFixture fixture;
  fixture.server().set_ready();
  Client client(fixture.port());
  // fib(26) runs for several seconds — far past the drain timeout.
  client.send_text(spec_run_request(
      "straggler", spec_scaffold("drain/straggler", "fib(26)"), -1, 0));
  await_outstanding(fixture.port(), 1);

  // The timeout path must cut the run off through its cancel token and
  // still settle (no leaked runs), reporting the unclean drain.
  EXPECT_FALSE(fixture.server().drain(std::chrono::milliseconds(50)));
  const sim::JsonValue cancelled = sim::JsonValue::parse(client.read_line());
  EXPECT_FALSE(cancelled.find("ok")->as_bool());
  EXPECT_EQ(cancelled.find("error")->find("code")->as_string(), "cancelled");
  EXPECT_EQ(fixture.metrics().counter("titand_cancelled_total"), 1u);
}

TEST(ServeAdmission, ShedsBeyondCapacityWithRetryHint) {
  serve::Server::Options options;
  options.max_inflight = 1;
  options.max_queue = 1;
  options.retry_after_ms = 123;
  ServeFixture fixture(serve::WarmMode::kOff, 1 << 20, options);
  fixture.server().set_ready();

  Client running(fixture.port());
  running.send_text(spec_run_request(
      "running", spec_scaffold("shed/running", "fib(22)"), -1, 0));
  await_outstanding(fixture.port(), 1);
  Client queued(fixture.port());
  queued.send_text(spec_run_request(
      "queued", spec_scaffold("shed/queued", "fib(22)"), -1, 0));
  await_outstanding(fixture.port(), 2);

  // Every slot occupied: the next run is shed immediately with the
  // structured overloaded error and the configured backoff hint...
  Client shed(fixture.port());
  shed.send_text(run_request("shed", "irq/baseline/burst1"));
  const sim::JsonValue overloaded = sim::JsonValue::parse(shed.read_line());
  EXPECT_FALSE(overloaded.find("ok")->as_bool());
  const sim::JsonValue* error = overloaded.find("error");
  EXPECT_EQ(error->find("code")->as_string(), "overloaded");
  EXPECT_EQ(error->find("retry_after_ms")->as_int(), 123);
  EXPECT_EQ(fixture.metrics().counter("titand_shed_total"), 1u);

  // ...while the admitted runs complete normally.
  EXPECT_TRUE(
      sim::JsonValue::parse(running.read_line()).find("ok")->as_bool());
  EXPECT_TRUE(
      sim::JsonValue::parse(queued.read_line()).find("ok")->as_bool());

  // Capacity freed: the same request is admitted and served now.
  shed.send_text(run_request("retried", "irq/baseline/burst1"));
  EXPECT_TRUE(sim::JsonValue::parse(shed.read_line()).find("ok")->as_bool());
}

TEST(ServeDeadline, DeadlineZeroIsDeterministicAndMidRunDeadlineCancels) {
  ServeFixture fixture;
  fixture.server().set_ready();
  Client client(fixture.port());

  // deadline_ms=0 is cancelled before dispatch: exactly zero simulated
  // cycles, every time — the SoC is never even built.
  client.send_text(spec_run_request(
      "zero", spec_scaffold("deadline/zero", "stats(4096)"), 0, 0));
  const sim::JsonValue zero = sim::JsonValue::parse(client.read_line());
  EXPECT_FALSE(zero.find("ok")->as_bool());
  EXPECT_EQ(zero.find("error")->find("code")->as_string(),
            "deadline_exceeded");
  EXPECT_EQ(zero.find("error")->find("cycles")->as_int(), 0);

  // A mid-run deadline stops a long run cooperatively, reporting the
  // cycles completed so far.
  client.send_text(spec_run_request(
      "mid", spec_scaffold("deadline/mid", "fib(24)"), 250, 0));
  const sim::JsonValue mid = sim::JsonValue::parse(client.read_line());
  EXPECT_FALSE(mid.find("ok")->as_bool());
  EXPECT_EQ(mid.find("error")->find("code")->as_string(),
            "deadline_exceeded");
  EXPECT_GT(mid.find("error")->find("cycles")->as_int(), 0);
  EXPECT_EQ(fixture.metrics().counter("titand_deadline_exceeded_total"), 2u);
}

TEST(ServeBudget, StopsAtExactBudgetAndWithinBudgetIsByteIdentical) {
  ServeFixture fixture;
  fixture.server().set_ready();
  Client client(fixture.port());

  // A cold run out of budget stops at exactly max_cycles, on both engines.
  for (const char* engine : {"lockstep", "event"}) {
    client.send_text(spec_run_request(
        "budget", spec_scaffold("budget/exact", "stats(65536)"), -1, 256,
        engine));
    const sim::JsonValue stopped = sim::JsonValue::parse(client.read_line());
    EXPECT_FALSE(stopped.find("ok")->as_bool()) << engine;
    EXPECT_EQ(stopped.find("error")->find("code")->as_string(),
              "budget_exceeded")
        << engine;
    EXPECT_EQ(stopped.find("error")->find("cycles")->as_int(), 256) << engine;
  }

  // A run completing within its budget is byte-identical to the unbudgeted
  // run — the core contract, over the wire, on both engines.
  for (const char* engine : {"lockstep", "event"}) {
    const std::string spec = spec_scaffold("budget/under", "stats(4096)");
    client.send_text(spec_run_request("plain", spec, -1, 0, engine));
    const std::string plain = client.read_line();
    client.send_text(
        spec_run_request("plain", spec, -1, 1ull << 40, engine));
    EXPECT_EQ(client.read_line(), plain) << engine;
  }
}

// ---- The chaos harness, in-process ------------------------------------------
//
// The CI smoke job replays the seeded schedule against a freestanding daemon;
// this is the same claim against an in-process server so plain ctest covers
// it: the harness passes, and two runs with the same seed render byte-equal
// reports (the determinism the twice-run-and-diff CI gate relies on).

TEST(ServeChaosHarness, SeededScheduleSurvivesAndReplaysByteEqual) {
  serve::Server::Options options;
  options.max_inflight = 2;
  options.max_queue = 2;
  options.retry_after_ms = 50;
  ServeFixture fixture(serve::WarmMode::kOff, 1 << 20, options);
  fixture.server().set_ready();

  serve::ChaosConfig config;
  config.port = fixture.port();
  config.seed = 7;
  // fib(22) still outlasts the probe window by ~10x but keeps the flood
  // phase fast enough for sanitizer runs.
  config.filler_workload = "fib(22)";

  const serve::ChaosReport first = serve::run_chaos(config);
  EXPECT_TRUE(first.ok()) << first.render();
  const serve::ChaosReport second = serve::run_chaos(config);
  EXPECT_TRUE(second.ok()) << second.render();
  EXPECT_EQ(first.render(), second.render());
}

}  // namespace
}  // namespace titan

// Zipper-Stack tests: chained-MAC return-address protection with frames in
// untrusted memory (paper reference [15], Sec. VI).
#include "firmware/zipper_stack.hpp"

#include <gtest/gtest.h>

#include "sim/rng.hpp"

namespace titan::fw {
namespace {

std::vector<std::uint8_t> key() { return {'z', 'i', 'p'}; }

TEST(ZipperStack, PushPopMatch) {
  sim::Memory memory;
  ZipperStack stack(memory, key());
  stack.push(0x1000);
  stack.push(0x2000);
  EXPECT_EQ(stack.pop_and_check(0x2000), PopVerdict::kMatch);
  EXPECT_EQ(stack.pop_and_check(0x1000), PopVerdict::kMatch);
  EXPECT_EQ(stack.depth(), 0u);
}

TEST(ZipperStack, MismatchDetected) {
  sim::Memory memory;
  ZipperStack stack(memory, key());
  stack.push(0x1000);
  EXPECT_EQ(stack.pop_and_check(0xBAD0), PopVerdict::kMismatch);
}

TEST(ZipperStack, UnderflowDetected) {
  sim::Memory memory;
  ZipperStack stack(memory, key());
  EXPECT_EQ(stack.pop_and_check(0x1000), PopVerdict::kUnderflow);
}

TEST(ZipperStack, DeepStackUnwinds) {
  sim::Memory memory;
  ZipperStack stack(memory, key());
  for (std::uint64_t i = 0; i < 200; ++i) {
    stack.push(0x4000 + i * 4);
  }
  EXPECT_EQ(stack.depth(), 200u);
  for (std::uint64_t i = 200; i-- > 0;) {
    ASSERT_EQ(stack.pop_and_check(0x4000 + i * 4), PopVerdict::kMatch) << i;
  }
}

TEST(ZipperStack, TamperedAddressBreaksChain) {
  sim::Memory memory;
  ZipperStack stack(memory, key());
  stack.push(0x1000);
  stack.push(0x2000);
  // Flip one bit of the TOP frame's stored address in untrusted memory.
  const sim::Addr top_frame = soc::kSpillArena.base + 1 * (8 + 32);
  memory.write8(top_frame, memory.read8(top_frame) ^ 0x04);
  EXPECT_EQ(stack.pop_and_check(0x2004), PopVerdict::kTampered);
}

TEST(ZipperStack, TamperedDeepFrameBreaksChainAtItsPop) {
  sim::Memory memory;
  ZipperStack stack(memory, key());
  for (std::uint64_t i = 0; i < 8; ++i) {
    stack.push(0x1000 + i * 8);
  }
  // Corrupt frame #2's stored previous-tag: frames above verify fine (their
  // tags chain from the RoT head), but popping into frame #2 must fail.
  const sim::Addr frame2 = soc::kSpillArena.base + 2 * (8 + 32);
  memory.write8(frame2 + 8, memory.read8(frame2 + 8) ^ 0x80);
  for (std::uint64_t i = 8; i-- > 3;) {
    ASSERT_EQ(stack.pop_and_check(0x1000 + i * 8), PopVerdict::kMatch) << i;
  }
  EXPECT_EQ(stack.pop_and_check(0x1000 + 2 * 8), PopVerdict::kTampered);
}

TEST(ZipperStack, AttackerCannotForgeFrameWithoutKey) {
  sim::Memory memory;
  ZipperStack stack(memory, key());
  stack.push(0x1000);
  // Attacker writes a fully attacker-controlled frame at the top slot and
  // "grows" the stack illusion; without the key the RoT-held head cannot be
  // reproduced, so the very next pop fails.
  const sim::Addr forged = soc::kSpillArena.base + 0 * (8 + 32);
  memory.write64(forged, 0x6666'6666);
  EXPECT_EQ(stack.pop_and_check(0x66666666), PopVerdict::kTampered);
}

TEST(ZipperStack, MacCostPerOperation) {
  sim::Memory memory;
  ZipperStack stack(memory, key());
  const auto baseline = stack.mac_operations();  // genesis MAC
  stack.push(0x1000);
  EXPECT_EQ(stack.mac_operations(), baseline + 1);  // one MAC per call
  (void)stack.pop_and_check(0x1000);
  EXPECT_EQ(stack.mac_operations(), baseline + 2);  // one MAC per return
  EXPECT_GT(stack.mac_cycles(), 0u);
}

TEST(ZipperStackPolicy, EndToEndVerdicts) {
  sim::Memory memory;
  ZipperStackPolicy policy(memory, key());
  cfi::CommitLog call;
  call.pc = 0x8000'0000;
  call.encoding = 0x008000EF;  // jal ra, +8 (any call encoding)
  call.next = call.pc + 4;
  call.target = call.pc + 8;
  EXPECT_TRUE(policy.check(call).ok);

  cfi::CommitLog ret;
  ret.pc = 0x8000'0100;
  ret.encoding = 0x00008067;
  ret.next = ret.pc + 4;
  ret.target = call.next;
  EXPECT_TRUE(policy.check(ret).ok);

  // Underflow on a second return.
  const auto verdict = policy.check(ret);
  EXPECT_FALSE(verdict.ok);
  EXPECT_EQ(verdict.reason, "zipper-stack underflow");
  EXPECT_EQ(policy.name(), "zipper-stack");
}

// Property: random call/return streams agree with a reference stack, and
// the zipper and block-spill shadow stacks give identical verdicts.
TEST(ZipperStack, AgreesWithShadowStackOnRandomStreams) {
  sim::Memory zipper_memory;
  sim::Memory shadow_memory;
  ZipperStack zipper(zipper_memory, key());
  ShadowStackConfig config;
  config.capacity = 8;
  config.spill_block = 4;
  ShadowStack shadow(config, shadow_memory, key());
  std::vector<std::uint64_t> oracle;
  sim::Rng rng(404);

  for (int step = 0; step < 3000; ++step) {
    if (oracle.empty() || rng.chance(0.55)) {
      const std::uint64_t addr = 0x8000'0000 + rng.uniform(0, 1 << 18) * 2;
      zipper.push(addr);
      shadow.push(addr);
      oracle.push_back(addr);
    } else {
      std::uint64_t target = oracle.back();
      oracle.pop_back();
      if (rng.chance(0.05)) {
        target ^= 8;
        ASSERT_EQ(zipper.pop_and_check(target), PopVerdict::kMismatch);
        ASSERT_EQ(shadow.pop_and_check(target), PopVerdict::kMismatch);
      } else {
        ASSERT_EQ(zipper.pop_and_check(target), PopVerdict::kMatch);
        ASSERT_EQ(shadow.pop_and_check(target), PopVerdict::kMatch);
      }
    }
    ASSERT_EQ(zipper.depth(), oracle.size());
  }
}

}  // namespace
}  // namespace titan::fw

// ScenarioBuilder::from_serialized — the serialize() grammar as a two-way
// street.  The round-trip identity (parse the fingerprint, rebuild, and get
// the same fingerprint back) must hold for EVERY registered scenario: the
// registry is the living inventory of shapes the grammar can express, so
// covering it wholesale keeps this test honest as future PRs add scenarios.
#include <string>

#include <gtest/gtest.h>

#include "api/registry.hpp"
#include "api/scenario.hpp"
#include "sim/fault.hpp"

namespace titan {
namespace {

using api::Scenario;
using api::ScenarioBuilder;
using api::ScenarioError;
using api::ScenarioRegistry;
using api::Workload;

TEST(FromSerialized, RoundTripsEveryRegistryScenario) {
  const ScenarioRegistry& registry = ScenarioRegistry::global();
  std::size_t covered = 0;
  for (const std::string_view name : registry.names()) {
    const std::string serialized = registry.find(name)->serialize();
    const Scenario rebuilt = ScenarioBuilder::from_serialized(serialized);
    EXPECT_EQ(rebuilt.serialize(), serialized) << "scenario " << name;
    EXPECT_EQ(rebuilt.name(), name);
    ++covered;
  }
  // The registry holds every grid the benches sweep; if it ever shrinks to a
  // handful the round-trip coverage claim is meaningless.
  EXPECT_GE(covered, 25u);
}

TEST(FromSerialized, RoundTripPreservesOptionalKeys) {
  // Exercise every optional key at once: faults, ofp, dbretry, macrr.
  const Scenario scenario =
      ScenarioBuilder()
          .name("optional/kitchen_sink")
          .workload(Workload::random_callgraph(7, 6, true))
          .firmware(api::Firmware::kPolling)
          .fabric(api::Fabric::kOptimized)
          .queue_depth(16)
          .drain_burst(4)
          .batch_mac(true)
          .mac_rerequest(true)
          .drain_wait(3, 400)
          .faults(sim::FaultPlan::parse("doorbell_drop@1"))
          .doorbell_retry(64, 2)
          .overflow_policy(api::OverflowPolicy::kFailOpen)
          .build();
  const std::string serialized = scenario.serialize();
  EXPECT_EQ(ScenarioBuilder::from_serialized(serialized).serialize(),
            serialized);
}

TEST(FromSerialized, WorkloadRoundTripsEveryGenerator) {
  for (const Workload& workload :
       {Workload::fib(8), Workload::matmul(6), Workload::crc32(128),
        Workload::quicksort(24), Workload::stats(32), Workload::call_chain(9),
        Workload::indirect_dispatch(5), Workload::rop_victim(),
        Workload::random_callgraph(42, 12, false)}) {
    EXPECT_EQ(Workload::from_serialized(workload.serialized()).serialized(),
              workload.serialized());
  }
}

// ---- Error taxonomy: every failure names the offending token ---------------

/// Expect `ScenarioError` whose message contains `token`.
void expect_rejected(const std::string& text, const std::string& token) {
  try {
    (void)ScenarioBuilder::from_serialized(text);
    FAIL() << "accepted '" << text << "'";
  } catch (const ScenarioError& error) {
    EXPECT_NE(std::string(error.what()).find(token), std::string::npos)
        << "message '" << error.what() << "' does not name '" << token << "'";
  }
}

std::string valid_spec() {
  return ScenarioBuilder()
      .name("t")
      .workload(Workload::fib(8))
      .build()
      .serialize();
}

TEST(FromSerialized, RejectsNonScenarioText) {
  expect_rejected("", "scenario{");
  expect_rejected("not a scenario", "scenario{");
  expect_rejected("scenario{name=x;workload=fib(8)", "scenario{");
}

TEST(FromSerialized, RejectsUnknownKey) {
  std::string text = valid_spec();
  text.insert(text.size() - 1, ";bogus=1");
  expect_rejected(text, "unknown key 'bogus'");
}

TEST(FromSerialized, RejectsDuplicateKey) {
  std::string text = valid_spec();
  text.insert(text.size() - 1, ";trace=1");
  expect_rejected(text, "duplicate key 'trace'");
}

TEST(FromSerialized, RejectsMissingRequiredKey) {
  // Drop the trailing ";trace=0" (or =1) segment.
  std::string text = valid_spec();
  const std::size_t at = text.rfind(";trace=");
  ASSERT_NE(at, std::string::npos);
  text.erase(at, text.find_first_of(";}", at + 1) - at);
  expect_rejected(text, "missing required key 'trace'");
}

TEST(FromSerialized, RejectsMalformedValues) {
  expect_rejected("scenario{name=x;workload=fib(8);fw=weird;fabric=baseline;"
                  "queue_depth=8;burst=1;mac=0;dwait=0;dtimeout=0;ss=32;"
                  "spill=16;jt=0;pmp=1;trace=0}",
                  "weird");
  expect_rejected("scenario{name=x;workload=fib(8);fw=irq;fabric=baseline;"
                  "queue_depth=abc;burst=1;mac=0;dwait=0;dtimeout=0;ss=32;"
                  "spill=16;jt=0;pmp=1;trace=0}",
                  "abc");
  expect_rejected("scenario{name=x;workload=fib(8);fw=irq;fabric=baseline;"
                  "queue_depth=8;burst=1;mac=2;dwait=0;dtimeout=0;ss=32;"
                  "spill=16;jt=0;pmp=1;trace=0}",
                  "mac");
}

TEST(FromSerialized, RejectsOutOfRangeThroughBuilderValidation) {
  // mac=1 at burst=1 parses fine but must fail build() — the wire surface
  // enforces exactly the programmatic surface's rules.
  expect_rejected("scenario{name=x;workload=fib(8);fw=irq;fabric=baseline;"
                  "queue_depth=8;burst=1;mac=1;dwait=0;dtimeout=0;ss=32;"
                  "spill=16;jt=0;pmp=1;trace=0}",
                  "batch_mac requires drain_burst > 1");
}

TEST(FromSerialized, RejectsUnknownWorkloadGenerator) {
  try {
    (void)Workload::from_serialized("quantum(8)");
    FAIL();
  } catch (const ScenarioError& error) {
    EXPECT_NE(std::string(error.what()).find("quantum"), std::string::npos);
  }
}

TEST(FromSerialized, RejectsWorkloadArityMismatch) {
  try {
    (void)Workload::from_serialized("fib(8,9)");
    FAIL();
  } catch (const ScenarioError& error) {
    EXPECT_NE(std::string(error.what()).find("fib"), std::string::npos);
  }
}

TEST(FromSerialized, RejectsImageWorkloads) {
  try {
    (void)Workload::from_serialized("image:custom:deadbeef");
    FAIL();
  } catch (const ScenarioError& error) {
    EXPECT_NE(std::string(error.what()).find("image"), std::string::npos);
  }
}

}  // namespace
}  // namespace titan

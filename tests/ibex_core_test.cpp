// Ibex (RV32IMC) core tests: differential per-op semantics, the IRQ/WFI
// machinery, the cycle model, and memory-latency attribution.
#include "ibex/core.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "rv/assembler.hpp"
#include "sim/rng.hpp"
#include "soc/memmap.hpp"

namespace titan::ibex {
namespace {

using rv::Assembler;
using rv::Reg;
using rv::Xlen;
using u32 = std::uint32_t;
using i32 = std::int32_t;

/// Minimal RoT-like harness: ROM + SRAM behind a TL-UL crossbar.
struct Harness {
  sim::Memory rom;
  sim::Memory ram;
  soc::MemoryTarget rom_target{rom};
  soc::MemoryTarget ram_target{ram};
  soc::Crossbar bus{"tlul", 3};
  std::unique_ptr<IbexCore> core;

  explicit Harness(const rv::Image& image, IbexConfig config = {}) {
    bus.map(soc::kRotFlash, rom_target, 0, "rom");
    bus.map(soc::kRotSram, ram_target, 1, "sram");
    rom.load(image.base, image.bytes);
    config.reset_pc = static_cast<u32>(image.base);
    config.reset_sp = static_cast<u32>(soc::kRotSram.end() - 16);
    core = std::make_unique<IbexCore>(config, bus);
  }

  u32 run(int max_steps = 100000) {
    for (int i = 0; i < max_steps && !core->halted(); ++i) {
      core->step();
    }
    EXPECT_TRUE(core->halted()) << "program did not halt";
    return core->reg(10);
  }
};

u32 run_program(const std::function<void(Assembler&)>& body) {
  Assembler a(Xlen::k32, soc::kRotFlash.base);
  body(a);
  Harness harness(a.finish());
  return harness.run();
}

// ---- Differential per-op semantics --------------------------------------------

struct RegRegCase {
  const char* name;
  void (Assembler::*emit)(Reg, Reg, Reg);
  std::function<u32(u32, u32)> reference;
};

class IbexRegRegDiffTest : public ::testing::TestWithParam<RegRegCase> {};

TEST_P(IbexRegRegDiffTest, MatchesReference) {
  const RegRegCase& test_case = GetParam();
  sim::Rng rng(std::hash<std::string>{}(test_case.name) + 32);
  std::vector<u32> values = {0,          1,          2,         0xFFFFFFFF,
                             0x80000000, 0x7FFFFFFF, 31,        32,
                             0xDEADBEEF, static_cast<u32>(rng.next()),
                             static_cast<u32>(rng.next())};
  for (const u32 x : values) {
    for (const u32 y : values) {
      const u32 result = run_program([&](Assembler& a) {
        a.li(Reg::kA1, static_cast<i32>(x));
        a.li(Reg::kA2, static_cast<i32>(y));
        (a.*test_case.emit)(Reg::kA0, Reg::kA1, Reg::kA2);
        a.ecall();
      });
      ASSERT_EQ(result, test_case.reference(x, y))
          << test_case.name << "(0x" << std::hex << x << ", 0x" << y << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rv32Ops, IbexRegRegDiffTest,
    ::testing::Values(
        RegRegCase{"add", &Assembler::add, [](u32 x, u32 y) { return x + y; }},
        RegRegCase{"sub", &Assembler::sub, [](u32 x, u32 y) { return x - y; }},
        RegRegCase{"and", &Assembler::and_, [](u32 x, u32 y) { return x & y; }},
        RegRegCase{"or", &Assembler::or_, [](u32 x, u32 y) { return x | y; }},
        RegRegCase{"xor", &Assembler::xor_, [](u32 x, u32 y) { return x ^ y; }},
        RegRegCase{"sll", &Assembler::sll, [](u32 x, u32 y) { return x << (y & 31); }},
        RegRegCase{"srl", &Assembler::srl, [](u32 x, u32 y) { return x >> (y & 31); }},
        RegRegCase{"sra", &Assembler::sra,
                   [](u32 x, u32 y) {
                     return static_cast<u32>(static_cast<i32>(x) >> (y & 31));
                   }},
        RegRegCase{"slt", &Assembler::slt,
                   [](u32 x, u32 y) {
                     return static_cast<u32>(static_cast<i32>(x) < static_cast<i32>(y));
                   }},
        RegRegCase{"sltu", &Assembler::sltu, [](u32 x, u32 y) { return static_cast<u32>(x < y); }},
        RegRegCase{"mul", &Assembler::mul, [](u32 x, u32 y) { return x * y; }},
        RegRegCase{"mulh", &Assembler::mulh,
                   [](u32 x, u32 y) {
                     return static_cast<u32>(
                         (static_cast<std::int64_t>(static_cast<i32>(x)) *
                          static_cast<i32>(y)) >> 32);
                   }},
        RegRegCase{"mulhu", &Assembler::mulhu,
                   [](u32 x, u32 y) {
                     return static_cast<u32>((static_cast<std::uint64_t>(x) * y) >> 32);
                   }},
        RegRegCase{"div", &Assembler::div,
                   [](u32 x, u32 y) -> u32 {
                     if (y == 0) return 0xFFFFFFFF;
                     if (x == 0x80000000 && y == 0xFFFFFFFF) return x;
                     return static_cast<u32>(static_cast<i32>(x) / static_cast<i32>(y));
                   }},
        RegRegCase{"divu", &Assembler::divu,
                   [](u32 x, u32 y) { return y == 0 ? 0xFFFFFFFF : x / y; }},
        RegRegCase{"rem", &Assembler::rem,
                   [](u32 x, u32 y) -> u32 {
                     if (y == 0) return x;
                     if (x == 0x80000000 && y == 0xFFFFFFFF) return 0;
                     return static_cast<u32>(static_cast<i32>(x) % static_cast<i32>(y));
                   }},
        RegRegCase{"remu", &Assembler::remu,
                   [](u32 x, u32 y) { return y == 0 ? x : x % y; }}),
    [](const ::testing::TestParamInfo<RegRegCase>& info) {
      return info.param.name;
    });

// ---- Memory round trips -----------------------------------------------------------

TEST(IbexMemory, WidthAndSignExtension) {
  const u32 addr = soc::kRotSram.base + 0x40;
  const u32 result = run_program([&](Assembler& a) {
    a.li(Reg::kT0, addr);
    a.li(Reg::kT1, static_cast<i32>(0x80C3));
    a.sh(Reg::kT1, Reg::kT0, 0);
    a.lh(Reg::kA0, Reg::kT0, 0);  // sign-extends 0x80C3
    a.ecall();
  });
  EXPECT_EQ(result, 0xFFFF80C3u);

  const u32 unsigned_result = run_program([&](Assembler& a) {
    a.li(Reg::kT0, addr);
    a.li(Reg::kT1, static_cast<i32>(0x80C3));
    a.sh(Reg::kT1, Reg::kT0, 0);
    a.lhu(Reg::kA0, Reg::kT0, 0);
    a.ecall();
  });
  EXPECT_EQ(unsigned_result, 0x80C3u);
}

TEST(IbexMemory, ByteGranularity) {
  const u32 addr = soc::kRotSram.base + 0x80;
  const u32 result = run_program([&](Assembler& a) {
    a.li(Reg::kT0, addr);
    a.li(Reg::kT1, 0x11);
    a.li(Reg::kT2, 0x22);
    a.sb(Reg::kT1, Reg::kT0, 0);
    a.sb(Reg::kT2, Reg::kT0, 1);
    a.lhu(Reg::kA0, Reg::kT0, 0);
    a.ecall();
  });
  EXPECT_EQ(result, 0x2211u);
}

// ---- Cycle model ----------------------------------------------------------------------

TEST(IbexTiming, StraightLineCodeIsOneCyclePerInstruction) {
  Assembler a(Xlen::k32, soc::kRotFlash.base);
  for (int i = 0; i < 10; ++i) {
    a.addi(Reg::kT0, Reg::kT0, 1);
  }
  a.ecall();
  Harness harness(a.finish());
  harness.run();
  // 10 addi + ecall = 11 instructions, all single-cycle.
  EXPECT_EQ(harness.core->cycle(), 11u);
  EXPECT_EQ(harness.core->instret(), 11u);
}

TEST(IbexTiming, TakenBranchesPayThePenalty) {
  // Loop of 5 iterations: addi + bnez(taken x4, not-taken x1).
  Assembler a(Xlen::k32, soc::kRotFlash.base);
  a.li(Reg::kT0, 5);
  auto loop = a.here();
  a.addi(Reg::kT0, Reg::kT0, -1);
  a.bnez(Reg::kT0, loop);
  a.ecall();
  Harness harness(a.finish());
  harness.run();
  // 1 li + 5*(addi+bnez) + ecall = 12 instructions; 4 taken branches add
  // 2 cycles each.
  EXPECT_EQ(harness.core->instret(), 12u);
  EXPECT_EQ(harness.core->cycle(), 12u + 4u * 2u);
}

TEST(IbexTiming, LoadLatencyFollowsBusModel) {
  Assembler a(Xlen::k32, soc::kRotFlash.base);
  a.li(Reg::kT0, static_cast<i32>(soc::kRotSram.base));
  a.lw(Reg::kT1, Reg::kT0, 0);
  a.ecall();
  Harness harness(a.finish());
  IbexStep load_step{};
  while (!harness.core->halted()) {
    const IbexStep step = harness.core->step();
    if (step.mem_addr.has_value()) {
      load_step = step;
    }
  }
  // hop 3 + device 1 = 4 bus cycles + 1 base cycle.
  EXPECT_EQ(load_step.mem_cycles, 4u);
  EXPECT_EQ(load_step.cycles, 5u);
  EXPECT_EQ(*load_step.mem_addr, soc::kRotSram.base);
}

TEST(IbexTiming, DivTakesIterativeCycles) {
  Assembler a(Xlen::k32, soc::kRotFlash.base);
  a.li(Reg::kT0, 100);
  a.li(Reg::kT1, 7);
  a.div(Reg::kT2, Reg::kT0, Reg::kT1);
  a.ecall();
  Harness harness(a.finish());
  harness.run();
  // 2 li + div(37) + ecall = 2 + 37 + 1 = 40.
  EXPECT_EQ(harness.core->cycle(), 40u);
}

// ---- IRQ / WFI machinery -----------------------------------------------------------------

rv::Image irq_demo_firmware() {
  Assembler a(Xlen::k32, soc::kRotFlash.base);
  auto isr = a.new_label();
  auto idle = a.new_label();
  a.la(Reg::kT0, isr);
  a.csrrw(Reg::kZero, rv::csr::kMtvec, Reg::kT0);
  a.li(Reg::kT0, 1 << 11);
  a.csrrw(Reg::kZero, rv::csr::kMie, Reg::kT0);
  a.csrrsi(Reg::kZero, rv::csr::kMstatus, 8);
  a.bind(idle);
  a.wfi();
  a.j(idle);
  a.bind(isr);
  a.addi(Reg::kA0, Reg::kA0, 1);  // count IRQs
  a.mret();
  return a.finish();
}

TEST(IbexIrq, WfiSleepsUntilInterrupt) {
  Harness harness(irq_demo_firmware());
  // Run init + first wfi.
  for (int i = 0; i < 100 && !harness.core->sleeping(); ++i) {
    harness.core->step();
  }
  ASSERT_TRUE(harness.core->sleeping());
  const auto asleep_at = harness.core->cycle();

  // Stays asleep without an IRQ.
  for (int i = 0; i < 10; ++i) {
    harness.core->step();
  }
  EXPECT_TRUE(harness.core->sleeping());
  EXPECT_EQ(harness.core->cycle(), asleep_at + 10);

  // IRQ wakes it with the wake-up latency, runs the ISR once, sleeps again.
  harness.core->set_irq_line(true);
  const IbexStep trap = harness.core->step();
  EXPECT_TRUE(trap.irq_entry);
  EXPECT_EQ(trap.cycles, IbexConfig{}.wakeup_latency);
  harness.core->set_irq_line(false);
  for (int i = 0; i < 100 && !harness.core->sleeping(); ++i) {
    harness.core->step();
  }
  EXPECT_TRUE(harness.core->sleeping());
  EXPECT_EQ(harness.core->reg(10), 1u);  // ISR ran exactly once
}

TEST(IbexIrq, TrapStateSavedAndRestored) {
  Harness harness(irq_demo_firmware());
  for (int i = 0; i < 100 && !harness.core->sleeping(); ++i) {
    harness.core->step();
  }
  const u32 wfi_pc = harness.core->pc();
  harness.core->set_irq_line(true);
  harness.core->step();  // trap entry
  harness.core->set_irq_line(false);
  EXPECT_EQ(harness.core->csr(rv::csr::kMepc), wfi_pc);
  EXPECT_EQ(harness.core->csr(rv::csr::kMcause), kMcauseExtIrq);
  EXPECT_EQ(harness.core->csr(rv::csr::kMstatus) & kMstatusMie, 0u);  // masked
  // ISR body + mret.
  harness.core->step();
  harness.core->step();
  EXPECT_NE(harness.core->csr(rv::csr::kMstatus) & kMstatusMie, 0u);  // restored
  EXPECT_EQ(harness.core->pc(), wfi_pc);
}

TEST(IbexIrq, MaskedInterruptDoesNotTrap) {
  // No MIE: the IRQ line is ignored.
  Assembler a(Xlen::k32, soc::kRotFlash.base);
  for (int i = 0; i < 5; ++i) {
    a.addi(Reg::kT0, Reg::kT0, 1);
  }
  a.ecall();
  Harness harness(a.finish());
  harness.core->set_irq_line(true);
  harness.run();
  EXPECT_EQ(harness.core->instret(), 6u);  // ran straight through
}

TEST(IbexIrq, AwakeTrapUsesShorterLatency) {
  Harness harness(irq_demo_firmware());
  // Interrupt while still executing init (not sleeping).
  harness.core->step();  // first init instruction... enable bits not yet set
  // Finish init up to the csrrsi that sets MIE (7 instructions total:
  // auipc+addi (la), csrrw mtvec, lui+addi (li 0x800), csrrw mie, csrrsi)
  // without executing the wfi, then raise the line.
  for (int i = 0; i < 6; ++i) {
    harness.core->step();
  }
  harness.core->set_irq_line(true);
  const IbexStep trap = harness.core->step();
  harness.core->set_irq_line(false);
  ASSERT_TRUE(trap.irq_entry);
  EXPECT_EQ(trap.cycles, IbexConfig{}.trap_entry_latency);
}

// ---- CSR plumbing ---------------------------------------------------------------------------

TEST(IbexCsr, ReadWriteSetClear) {
  const u32 result = run_program([](Assembler& a) {
    a.li(Reg::kT0, 0xF0);
    a.csrrw(Reg::kZero, rv::csr::kMscratch, Reg::kT0);  // mscratch = 0xF0
    a.li(Reg::kT1, 0x0F);
    a.csrrs(Reg::kZero, rv::csr::kMscratch, Reg::kT1);  // |= 0x0F
    a.li(Reg::kT2, 0xC0);
    a.csrrc(Reg::kZero, rv::csr::kMscratch, Reg::kT2);  // &= ~0xC0
    a.csrrs(Reg::kA0, rv::csr::kMscratch, Reg::kZero);  // read
    a.ecall();
  });
  EXPECT_EQ(result, 0x3Fu);
}

TEST(IbexCsr, ImmediateForms) {
  const u32 result = run_program([](Assembler& a) {
    a.csrrwi(Reg::kZero, rv::csr::kMscratch, 21);
    a.csrrsi(Reg::kZero, rv::csr::kMscratch, 2);
    a.csrrci(Reg::kZero, rv::csr::kMscratch, 1);
    a.csrrs(Reg::kA0, rv::csr::kMscratch, Reg::kZero);
    a.ecall();
  });
  EXPECT_EQ(result, 22u);
}

TEST(IbexCsr, CountersAdvance) {
  Harness harness([] {
    Assembler a(Xlen::k32, soc::kRotFlash.base);
    for (int i = 0; i < 7; ++i) a.nop();
    a.ecall();
    return a.finish();
  }());
  harness.run();
  EXPECT_EQ(harness.core->csr(rv::csr::kMinstret), 8u);
  EXPECT_EQ(harness.core->csr(rv::csr::kMcycle), 8u);
  EXPECT_EQ(harness.core->csr(rv::csr::kMhartid), 0u);
}

// ---- Compressed execution ------------------------------------------------------------------

TEST(IbexRvc, ExecutesCompressedInstructions) {
  // Hand-emit RVC: c.li a0, 21 (0x4555); c.addi a0, 1 (0x0505); ebreak.
  Assembler a(Xlen::k32, soc::kRotFlash.base);
  a.half(0x4555);
  a.half(0x0505);
  a.ecall();
  Harness harness(a.finish());
  EXPECT_EQ(harness.run(), 22u);
  EXPECT_EQ(harness.core->instret(), 3u);
}

}  // namespace
}  // namespace titan::ibex

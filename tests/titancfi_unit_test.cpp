// Unit tests for the TitanCFI hardware-side components: commit-log packing,
// CFI Filter, Queue Controller stall invariants, and the Log Writer FSM.
#include <gtest/gtest.h>

#include <vector>

#include "cva6/scoreboard.hpp"
#include "rv/decode.hpp"
#include "rv/encode.hpp"
#include "sim/rng.hpp"
#include "titancfi/commit_log.hpp"
#include "titancfi/filter.hpp"
#include "titancfi/log_writer.hpp"
#include "titancfi/queue_controller.hpp"

namespace titan::cfi {
namespace {

cva6::ScoreboardEntry make_entry(rv::CfKind kind, std::uint64_t pc = 0x8000'0000) {
  cva6::ScoreboardEntry entry;
  entry.pc = pc;
  entry.next_pc = pc + 4;
  switch (kind) {
    case rv::CfKind::kCall:
      entry.inst = rv::decode(rv::enc_j(0x6F, 1, 0x40), rv::Xlen::k64);
      entry.target = pc + 0x40;
      break;
    case rv::CfKind::kReturn:
      entry.inst = rv::decode(0x00008067, rv::Xlen::k64);
      entry.target = 0x8000'1000;
      break;
    case rv::CfKind::kIndirectJump:
      entry.inst = rv::decode(rv::enc_i(0x67, 0, 0, 10, 0), rv::Xlen::k64);
      entry.target = 0x8000'2000;
      break;
    default:
      entry.inst = rv::decode(0x00000013, rv::Xlen::k64);  // nop
      entry.target = entry.next_pc;
      break;
  }
  entry.kind = rv::classify(entry.inst);
  return entry;
}

// ---- CommitLog ---------------------------------------------------------------

TEST(CommitLog, PackUnpackRoundTripProperty) {
  sim::Rng rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    CommitLog log;
    log.pc = rng.next();
    log.encoding = static_cast<std::uint32_t>(rng.next());
    log.next = rng.next();
    log.target = rng.next();
    EXPECT_EQ(CommitLog::unpack(log.pack()), log);
  }
}

TEST(CommitLog, PacketIs224BitsIn4Beats) {
  EXPECT_EQ(CommitLog::kBits, 224u);
  EXPECT_EQ(CommitLog::kBeats, 4u);
  // Upper 32 bits of beat 3 are unused padding.
  CommitLog log;
  log.pc = ~0ULL;
  log.encoding = ~0u;
  log.next = ~0ULL;
  log.target = ~0ULL;
  EXPECT_EQ(log.pack()[3] >> 32, 0u);
}

TEST(CommitLog, ClassifyRecoversKindFromEncoding) {
  EXPECT_EQ(CommitLog::from_entry(make_entry(rv::CfKind::kCall)).classify(),
            rv::CfKind::kCall);
  EXPECT_EQ(CommitLog::from_entry(make_entry(rv::CfKind::kReturn)).classify(),
            rv::CfKind::kReturn);
  EXPECT_EQ(
      CommitLog::from_entry(make_entry(rv::CfKind::kIndirectJump)).classify(),
      rv::CfKind::kIndirectJump);
}

// ---- CfiFilter ------------------------------------------------------------------

TEST(CfiFilter, SelectsOnlyCfiRelevant) {
  CfiFilter filter;
  EXPECT_TRUE(filter.filter(make_entry(rv::CfKind::kCall)).has_value());
  EXPECT_TRUE(filter.filter(make_entry(rv::CfKind::kReturn)).has_value());
  EXPECT_TRUE(filter.filter(make_entry(rv::CfKind::kIndirectJump)).has_value());
  EXPECT_FALSE(filter.filter(make_entry(rv::CfKind::kNone)).has_value());
  EXPECT_EQ(filter.scanned(), 4u);
  EXPECT_EQ(filter.selected(), 3u);
}

TEST(CfiFilter, LogCarriesEntryFields) {
  CfiFilter filter;
  const auto entry = make_entry(rv::CfKind::kCall, 0x8000'1234);
  const auto log = filter.filter(entry);
  ASSERT_TRUE(log.has_value());
  EXPECT_EQ(log->pc, 0x8000'1234u);
  EXPECT_EQ(log->next, 0x8000'1238u);
  EXPECT_EQ(log->target, 0x8000'1234u + 0x40u);
  EXPECT_EQ(log->encoding, entry.inst.expanded);
}

// ---- QueueController ---------------------------------------------------------------

TEST(QueueController, NonCfEntriesAlwaysRetire) {
  QueueController controller(1);
  const std::vector<cva6::ScoreboardEntry> entries = {
      make_entry(rv::CfKind::kNone), make_entry(rv::CfKind::kNone)};
  EXPECT_EQ(controller.evaluate(entries), 2u);
  EXPECT_TRUE(controller.queue().empty());
}

TEST(QueueController, CfEntryPushesLog) {
  QueueController controller(4);
  const std::vector<cva6::ScoreboardEntry> entries = {
      make_entry(rv::CfKind::kCall)};
  EXPECT_EQ(controller.evaluate(entries), 1u);
  EXPECT_EQ(controller.queue().size(), 1u);
}

TEST(QueueController, DualCfStallsSecondPort) {
  QueueController controller(4);
  const std::vector<cva6::ScoreboardEntry> entries = {
      make_entry(rv::CfKind::kCall, 0x1000),
      make_entry(rv::CfKind::kReturn, 0x2000)};
  EXPECT_EQ(controller.evaluate(entries), 1u);  // only the first retires
  EXPECT_EQ(controller.dual_cf_stalls(), 1u);
  EXPECT_EQ(controller.queue().size(), 1u);
  // Next cycle the second one goes through.
  const std::vector<cva6::ScoreboardEntry> rest = {
      make_entry(rv::CfKind::kReturn, 0x2000)};
  EXPECT_EQ(controller.evaluate(rest), 1u);
  EXPECT_EQ(controller.queue().size(), 2u);
}

TEST(QueueController, FullQueueStallsCfButNotPriorEntries) {
  QueueController controller(1);
  (void)controller.evaluate(
      std::vector<cva6::ScoreboardEntry>{make_entry(rv::CfKind::kCall)});
  ASSERT_TRUE(controller.queue().full());
  const std::vector<cva6::ScoreboardEntry> entries = {
      make_entry(rv::CfKind::kNone), make_entry(rv::CfKind::kReturn)};
  EXPECT_EQ(controller.evaluate(entries), 1u);  // nop retires, CF stalls
  EXPECT_EQ(controller.full_stalls(), 1u);
}

TEST(QueueController, NeverLosesOrReordersLogsProperty) {
  // Random streams of commit candidates; every CF entry that retired must
  // appear in the queue pops exactly once, in program order.
  sim::Rng rng(31);
  QueueController controller(2);
  std::vector<std::uint64_t> pushed_pcs;
  std::vector<std::uint64_t> popped_pcs;
  std::uint64_t next_pc = 0x8000'0000;
  std::vector<cva6::ScoreboardEntry> pending;

  for (int cycle = 0; cycle < 20000; ++cycle) {
    // Refill pending up to 2 candidates.
    while (pending.size() < 2) {
      const double roll = rng.uniform01();
      const rv::CfKind kind = roll < 0.25   ? rv::CfKind::kCall
                              : roll < 0.5  ? rv::CfKind::kReturn
                              : roll < 0.55 ? rv::CfKind::kIndirectJump
                                            : rv::CfKind::kNone;
      pending.push_back(make_entry(kind, next_pc));
      next_pc += 4;
    }
    const unsigned allowed = controller.evaluate(pending);
    ASSERT_LE(allowed, pending.size());
    for (unsigned i = 0; i < allowed; ++i) {
      if (pending[i].cfi_relevant()) {
        pushed_pcs.push_back(pending[i].pc);
      }
    }
    pending.erase(pending.begin(), pending.begin() + allowed);
    // Pop 0..1 logs per cycle (models the writer draining).
    if (rng.chance(0.6)) {
      const auto log = controller.queue().pop();
      if (log.has_value()) {
        popped_pcs.push_back(log->pc);
      }
    }
  }
  while (const auto log = controller.queue().pop()) {
    popped_pcs.push_back(log->pc);
  }
  ASSERT_EQ(popped_pcs.size(), pushed_pcs.size());
  EXPECT_EQ(popped_pcs, pushed_pcs);  // order preserved
}

// ---- LogWriter -----------------------------------------------------------------

struct WriterHarness {
  QueueController controller{4};
  CfiQueue& queue = controller.queue();
  sim::Memory memory;
  soc::MemoryTarget memory_target{memory};
  soc::Crossbar axi{"axi", 1};
  soc::Mailbox mailbox;
  bool faulted = false;
  CommitLog fault_log;
  LogWriter writer{controller, axi, mailbox, [this](const CommitLog& log) {
                     faulted = true;
                     fault_log = log;
                   }};

  WriterHarness() { axi.map(soc::kCfiMailbox, mailbox, 0, "mailbox"); }
};

TEST(LogWriter, TransmitsAllBeatsAndDoorbell) {
  WriterHarness harness;
  CommitLog log;
  log.pc = 0x1111'2222'3333'4444;
  log.encoding = 0xAABBCCDD;
  log.next = 0x5555'6666'7777'8888;
  log.target = 0x9999'AAAA'BBBB'CCCC;
  harness.queue.push(log);

  sim::Cycle cycle = 0;
  while (harness.writer.state() != LogWriter::State::kWaitCompletion &&
         cycle < 1000) {
    harness.writer.tick(cycle++);
  }
  ASSERT_EQ(harness.writer.state(), LogWriter::State::kWaitCompletion);
  EXPECT_TRUE(harness.mailbox.doorbell_pending());
  // The RoT-side view reassembles the exact log.
  const std::array<std::uint64_t, 4> beats = {
      harness.mailbox.data(0), harness.mailbox.data(1),
      harness.mailbox.data(2), harness.mailbox.data(3)};
  EXPECT_EQ(CommitLog::unpack(beats), log);
  EXPECT_EQ(harness.writer.logs_sent(), 1u);
}

TEST(LogWriter, SafeVerdictReturnsToIdle) {
  WriterHarness harness;
  harness.queue.push(CommitLog{.pc = 1, .encoding = 2, .next = 3, .target = 4});
  sim::Cycle cycle = 0;
  while (harness.writer.state() != LogWriter::State::kWaitCompletion) {
    harness.writer.tick(cycle++);
  }
  // RoT: verdict safe + completion.
  harness.mailbox.set_data(0, 0);
  harness.mailbox.signal_completion();
  while (harness.writer.state() != LogWriter::State::kIdle && cycle < 1000) {
    harness.writer.tick(cycle++);
  }
  EXPECT_EQ(harness.writer.state(), LogWriter::State::kIdle);
  EXPECT_FALSE(harness.faulted);
  EXPECT_EQ(harness.writer.violations(), 0u);
  EXPECT_FALSE(harness.mailbox.completion_pending());  // consumed
}

TEST(LogWriter, ViolationTriggersFaultAndLatches) {
  WriterHarness harness;
  const CommitLog bad{.pc = 0xDEAD, .encoding = 0x8067, .next = 1, .target = 2};
  harness.queue.push(bad);
  sim::Cycle cycle = 0;
  while (harness.writer.state() != LogWriter::State::kWaitCompletion) {
    harness.writer.tick(cycle++);
  }
  harness.mailbox.set_data(0, 1);  // violation verdict
  harness.mailbox.signal_completion();
  while (harness.writer.state() != LogWriter::State::kFault && cycle < 1000) {
    harness.writer.tick(cycle++);
  }
  EXPECT_EQ(harness.writer.state(), LogWriter::State::kFault);
  EXPECT_TRUE(harness.faulted);
  EXPECT_EQ(harness.fault_log, bad);
  EXPECT_EQ(harness.writer.violations(), 1u);
  // The FSM stays in the fault state (the host core has trapped).
  harness.writer.tick(cycle + 1);
  EXPECT_EQ(harness.writer.state(), LogWriter::State::kFault);
}

TEST(LogWriter, ProcessesQueueSequentially) {
  WriterHarness harness;
  for (std::uint64_t i = 0; i < 4; ++i) {
    harness.queue.push(CommitLog{.pc = i, .encoding = 0, .next = 0, .target = 0});
  }
  sim::Cycle cycle = 0;
  std::uint64_t completed = 0;
  while (completed < 4 && cycle < 10000) {
    harness.writer.tick(cycle);
    if (harness.writer.state() == LogWriter::State::kWaitCompletion &&
        !harness.mailbox.completion_pending()) {
      EXPECT_EQ(harness.mailbox.data(0), completed);  // beats of log i
      harness.mailbox.set_data(0, 0);
      harness.mailbox.signal_completion();
      ++completed;
    }
    ++cycle;
  }
  EXPECT_EQ(completed, 4u);
  EXPECT_EQ(harness.writer.logs_sent(), 4u);
  EXPECT_TRUE(harness.queue.empty());
}

}  // namespace
}  // namespace titan::cfi

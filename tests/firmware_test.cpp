// Firmware-on-Ibex tests: the generated RV32 shadow-stack firmware processes
// commit logs through the real mailbox/PLIC/bus models, and its verdicts
// agree with the golden C++ policy (differential testing).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "firmware/builder.hpp"
#include "firmware/policy.hpp"
#include "firmware/table1.hpp"
#include "rv/encode.hpp"
#include "sim/rng.hpp"
#include "soc/mailbox.hpp"
#include "titancfi/commit_log.hpp"
#include "titancfi/rot_subsystem.hpp"

namespace titan::fw {
namespace {

/// Drives the RoT standalone: host side emulated by direct mailbox pokes.
struct RotHarness {
  soc::Mailbox mailbox;
  sim::Memory soc_memory;
  std::unique_ptr<cfi::RotSubsystem> rot;
  FwVariant variant;

  explicit RotHarness(FwVariant fw_variant,
                      cfi::RotFabric fabric = cfi::RotFabric::kBaseline,
                      unsigned capacity = 32, unsigned block = 16)
      : variant(fw_variant) {
    FirmwareConfig config;
    config.variant = fw_variant;
    config.ss_capacity = capacity;
    config.spill_block = block;
    rot = std::make_unique<cfi::RotSubsystem>(build_firmware(config), fabric,
                                              mailbox, soc_memory);
    for (int i = 0; i < 10000 && !idle(); ++i) {
      rot->step();
    }
    EXPECT_TRUE(idle());
  }

  [[nodiscard]] bool idle() {
    return variant == FwVariant::kIrq
               ? rot->core().sleeping()
               : rot->section_of(rot->core().pc()) == "main";
  }

  /// Returns the verdict (0 = safe, 1 = violation).
  std::uint64_t check(const cfi::CommitLog& log) {
    const auto beats = log.pack();
    for (unsigned i = 0; i < beats.size(); ++i) {
      mailbox.set_data(i, beats[i]);
    }
    mailbox.ring_doorbell();
    for (int guard = 0; guard < 5'000'000; ++guard) {
      if (mailbox.completion_pending() && idle()) {
        break;
      }
      rot->step();
    }
    EXPECT_TRUE(mailbox.completion_pending()) << "firmware never completed";
    const std::uint64_t verdict = mailbox.data(0) & 1;
    mailbox.clear_completion();
    mailbox.set_data(0, 0);
    return verdict;
  }
};

cfi::CommitLog call_log(std::uint64_t pc, std::int32_t offset = 0x100) {
  cfi::CommitLog log;
  log.pc = pc;
  log.encoding = rv::enc_j(0x6F, 1, offset);
  log.next = pc + 4;
  log.target = pc + static_cast<std::uint64_t>(offset);
  return log;
}

cfi::CommitLog return_log(std::uint64_t pc, std::uint64_t target) {
  cfi::CommitLog log;
  log.pc = pc;
  log.encoding = 0x00008067;
  log.next = pc + 4;
  log.target = target;
  return log;
}

class FirmwareVariantTest : public ::testing::TestWithParam<FwVariant> {};

TEST_P(FirmwareVariantTest, MatchedCallReturnIsSafe) {
  RotHarness harness(GetParam());
  EXPECT_EQ(harness.check(call_log(0x8000'0000)), 0u);
  EXPECT_EQ(harness.check(return_log(0x8000'0200, 0x8000'0004)), 0u);
}

TEST_P(FirmwareVariantTest, MismatchedReturnIsViolation) {
  RotHarness harness(GetParam());
  EXPECT_EQ(harness.check(call_log(0x8000'0000)), 0u);
  EXPECT_EQ(harness.check(return_log(0x8000'0200, 0xDEAD'BEE0)), 1u);
}

TEST_P(FirmwareVariantTest, UnderflowIsViolation) {
  RotHarness harness(GetParam());
  EXPECT_EQ(harness.check(return_log(0x8000'0200, 0x8000'0004)), 1u);
}

TEST_P(FirmwareVariantTest, IndirectJumpIsAllowed) {
  RotHarness harness(GetParam());
  cfi::CommitLog log;
  log.pc = 0x8000'0000;
  log.encoding = rv::enc_i(0x67, 0, 0, 10, 0);  // jr a0
  log.next = log.pc + 4;
  log.target = 0x8000'5000;
  EXPECT_EQ(harness.check(log), 0u);
}

TEST_P(FirmwareVariantTest, NestedCallsLifoOrder) {
  RotHarness harness(GetParam());
  std::vector<std::uint64_t> return_sites;
  for (int depth = 0; depth < 10; ++depth) {
    const std::uint64_t pc = 0x8000'0000 + 0x40u * depth;
    EXPECT_EQ(harness.check(call_log(pc)), 0u);
    return_sites.push_back(pc + 4);
  }
  for (int depth = 10; depth-- > 0;) {
    EXPECT_EQ(harness.check(return_log(0x8001'0000, return_sites[depth])), 0u);
  }
}

TEST_P(FirmwareVariantTest, SpillAndFillThroughHmacArena) {
  // Depth 20 with capacity 8 / block 4: multiple spills, then unwinding
  // exercises authenticated fills.
  RotHarness harness(GetParam(), cfi::RotFabric::kBaseline, 8, 4);
  std::vector<std::uint64_t> return_sites;
  for (int depth = 0; depth < 20; ++depth) {
    const std::uint64_t pc = 0x8000'0000 + 0x40u * depth;
    EXPECT_EQ(harness.check(call_log(pc)), 0u);
    return_sites.push_back(pc + 4);
  }
  EXPECT_GT(harness.rot->hmac().starts(), 0u);
  for (int depth = 20; depth-- > 0;) {
    ASSERT_EQ(harness.check(return_log(0x8001'0000, return_sites[depth])), 0u)
        << "depth=" << depth;
  }
  // And an extra return underflows.
  EXPECT_EQ(harness.check(return_log(0x8001'0000, 0x8000'0004)), 1u);
}

TEST_P(FirmwareVariantTest, TamperedSpillArenaDetected) {
  RotHarness harness(GetParam(), cfi::RotFabric::kBaseline, 8, 4);
  std::vector<std::uint64_t> return_sites;
  for (int depth = 0; depth < 14; ++depth) {
    const std::uint64_t pc = 0x8000'0000 + 0x40u * depth;
    EXPECT_EQ(harness.check(call_log(pc)), 0u);
    return_sites.push_back(pc + 4);
  }
  // Attacker flips a bit in the first spilled segment's payload (in DRAM).
  const sim::Addr segment = soc::kSpillArena.base;
  harness.soc_memory.write8(segment + 32,
                            harness.soc_memory.read8(segment + 32) ^ 1);
  // Unwind: pops served from on-chip entries stay safe; the fill of the
  // tampered segment must be flagged.
  bool tamper_flagged = false;
  for (int depth = 14; depth-- > 0;) {
    if (harness.check(return_log(0x8001'0000, return_sites[depth])) == 1u) {
      tamper_flagged = true;
      break;
    }
  }
  EXPECT_TRUE(tamper_flagged);
}

INSTANTIATE_TEST_SUITE_P(Variants, FirmwareVariantTest,
                         ::testing::Values(FwVariant::kIrq, FwVariant::kPolling),
                         [](const ::testing::TestParamInfo<FwVariant>& info) {
                           return info.param == FwVariant::kIrq ? "irq"
                                                                : "polling";
                         });

// ---- Differential test: firmware vs golden policy ---------------------------

TEST(FirmwareDifferential, AgreesWithGoldenPolicyOnRandomStreams) {
  RotHarness harness(FwVariant::kPolling, cfi::RotFabric::kBaseline, 8, 4);
  sim::Memory golden_memory;
  ShadowStackConfig golden_config;
  golden_config.capacity = 8;
  golden_config.spill_block = 4;
  ShadowStackPolicy golden(golden_config, golden_memory, {'k'});

  sim::Rng rng(2025);
  std::vector<std::uint64_t> stack;  // oracle of live return sites
  int checked = 0;
  for (int step = 0; step < 300; ++step) {
    cfi::CommitLog log;
    const bool do_call = stack.empty() || rng.chance(0.55);
    if (do_call) {
      const std::uint64_t pc = 0x8000'0000 + rng.uniform(0, 1 << 16) * 4;
      log = call_log(pc);
      stack.push_back(pc + 4);
    } else {
      const bool corrupt = rng.chance(0.1);
      std::uint64_t target = stack.back();
      stack.pop_back();
      if (corrupt) {
        target ^= 0x40;
        stack.clear();  // after a violation both models' stacks diverge;
                        // restart the scenario stack
      }
      log = return_log(0x8002'0000, target);
    }
    const std::uint64_t fw_verdict = harness.check(log);
    const Verdict golden_verdict = golden.check(log);
    ASSERT_EQ(fw_verdict, golden_verdict.ok ? 0u : 1u)
        << "step " << step << " (call=" << do_call << ")";
    ++checked;
    if (fw_verdict == 1u) {
      break;  // policies may legitimately diverge after a violation
    }
  }
  EXPECT_GT(checked, 10);
}

// ---- Table I sanity ------------------------------------------------------------

TEST(Table1, VariantOrderingAndMagnitudes) {
  const auto irq_call = measure_policy_cost(RotVariant::kIrq, OpCase::kCall);
  const auto irq_ret = measure_policy_cost(RotVariant::kIrq, OpCase::kReturn);
  const auto poll_call = measure_policy_cost(RotVariant::kPolling, OpCase::kCall);
  const auto poll_ret = measure_policy_cost(RotVariant::kPolling, OpCase::kReturn);
  const auto opt_call = measure_policy_cost(RotVariant::kOptimized, OpCase::kCall);
  const auto opt_ret = measure_policy_cost(RotVariant::kOptimized, OpCase::kReturn);

  // Paper Table I totals: IRQ 258/276, Polling 103/121, Optimized 64/82.
  EXPECT_NEAR(irq_call.total().cycles, 258, 258 * 0.30);
  EXPECT_NEAR(irq_ret.total().cycles, 276, 276 * 0.30);
  EXPECT_NEAR(poll_call.total().cycles, 103, 103 * 0.35);
  EXPECT_NEAR(poll_ret.total().cycles, 121, 121 * 0.35);
  EXPECT_NEAR(opt_call.total().cycles, 64, 64 * 0.40);
  EXPECT_NEAR(opt_ret.total().cycles, 82, 82 * 0.40);

  // Orderings that must hold regardless of calibration.
  EXPECT_GT(irq_call.total().cycles, poll_call.total().cycles);
  EXPECT_GT(poll_call.total().cycles, opt_call.total().cycles);
  EXPECT_GT(irq_ret.total().cycles, poll_ret.total().cycles);
  EXPECT_GT(poll_ret.total().cycles, opt_ret.total().cycles);

  // Polling/Optimized pay no IRQ entry/exit cost.
  EXPECT_EQ(poll_call.irq_total().instructions, 0u);
  EXPECT_EQ(opt_call.irq_total().instructions, 0u);
  EXPECT_GT(irq_call.irq_total().cycles, 100u);  // dominated by wake-up+spill

  // Instruction counts ~ paper (CALL: 24 IRQ + ~24 CFI; RET: ~34 CFI).
  EXPECT_NEAR(irq_call.irq_total().instructions, 24, 6);
  EXPECT_NEAR(irq_call.cfi_total().instructions, 24, 8);
  EXPECT_NEAR(irq_ret.cfi_total().instructions, 34, 9);

  // Returns cost more than calls (longer decode + compare path).
  EXPECT_GT(irq_ret.cfi_total().instructions,
            irq_call.cfi_total().instructions);
}

TEST(Table1, MemorySplitFollowsAddressMap) {
  const auto breakdown = measure_policy_cost(RotVariant::kIrq, OpCase::kCall);
  // CFI part touches the mailbox (SoC) and the shadow stack (RoT).
  EXPECT_GT(breakdown.cfi_mem_soc.instructions, 0u);
  EXPECT_GT(breakdown.cfi_mem_rot.instructions, 0u);
  // SoC accesses are ~12 cycles, RoT ~5+1 (paper Sec. V-B).
  const double soc_per_access =
      static_cast<double>(breakdown.cfi_mem_soc.cycles) /
      static_cast<double>(breakdown.cfi_mem_soc.instructions);
  const double rot_per_access =
      static_cast<double>(breakdown.cfi_mem_rot.cycles) /
      static_cast<double>(breakdown.cfi_mem_rot.instructions);
  EXPECT_NEAR(soc_per_access, 12.0, 2.0);
  EXPECT_NEAR(rot_per_access, 5.0, 1.5);
}

TEST(Table1, OptimizedFabricSingleCycleScratchpad) {
  const auto breakdown = measure_policy_cost(RotVariant::kOptimized, OpCase::kCall);
  const double rot_per_access =
      static_cast<double>(breakdown.cfi_mem_rot.cycles) /
      static_cast<double>(breakdown.cfi_mem_rot.instructions);
  const double soc_per_access =
      static_cast<double>(breakdown.cfi_mem_soc.cycles) /
      static_cast<double>(breakdown.cfi_mem_soc.instructions);
  EXPECT_NEAR(rot_per_access, 1.0, 0.5);
  EXPECT_NEAR(soc_per_access, 8.0, 1.5);
}

}  // namespace
}  // namespace titan::fw

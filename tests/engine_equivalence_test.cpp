// Cross-engine equivalence: the event-driven co-simulation scheduler must be
// bit-exact against the lock-step loop — every SocRunResult field, the
// ordered commit trace, the authenticated log stream the writer pops, and
// the per-component statistics the fast-forward path replays (queue
// occupancy samples, filter scan counters, writer wait cycles, RoT
// instruction/clock counts) — across the entire ScenarioRegistry grid and a
// randomized burst/depth/fabric fuzz set, including fault scenarios where
// the fault cycle must match exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "sim/cancel.hpp"
#include "sim/rng.hpp"
#include "titancfi/soc_top.hpp"

namespace titan {
namespace {

struct Observed {
  cfi::SocRunResult result;
  std::vector<cfi::CommitLog> stream;     ///< Logs popped by the Log Writer.
  std::vector<cva6::CommitRecord> trace;  ///< Host trace, retirement order.
  std::uint64_t filter_scanned[2] = {0, 0};
  std::uint64_t filter_selected[2] = {0, 0};
  std::uint64_t writer_wait_cycles = 0;
  sim::FifoStats queue_stats;
  std::uint64_t host_stall_cycles = 0;
  std::uint64_t rot_instret = 0;
  sim::Cycle rot_cycle = 0;
  std::uint64_t plic_claims = 0;
  std::uint64_t completion_count = 0;
  std::uint64_t hmac_starts = 0;
};

Observed run_with_engine(const api::Scenario& scenario, api::Engine engine) {
  const api::Scenario variant = scenario.with_engine(engine);
  const auto soc = variant.make_soc();
  Observed o;
  soc->log_writer().set_log_capture(
      [&o](const cfi::CommitLog& log) { o.stream.push_back(log); });
  soc->host().set_trace_enabled(true);
  o.result = soc->run();
  o.trace = soc->host().ordered_trace();
  for (unsigned port = 0; port < 2; ++port) {
    o.filter_scanned[port] = soc->queue_controller().filter(port).scanned();
    o.filter_selected[port] = soc->queue_controller().filter(port).selected();
  }
  o.writer_wait_cycles = soc->log_writer().wait_cycles();
  o.queue_stats = soc->queue_controller().queue().stats();
  o.host_stall_cycles = soc->host().stall_cycles();
  o.rot_instret = soc->rot().core().instret();
  o.rot_cycle = soc->rot().core().cycle();
  o.plic_claims = soc->rot().plic().claims();
  o.completion_count = soc->mailbox().completion_count();
  o.hmac_starts = soc->rot().hmac().starts();
  return o;
}

void expect_equivalent(const api::Scenario& scenario) {
  SCOPED_TRACE("scenario: " + scenario.serialize());
  const Observed lock = run_with_engine(scenario, api::Engine::kLockStep);
  const Observed event = run_with_engine(scenario, api::Engine::kEventDriven);

  // Every RunResult field, including the fault log and cycle counts (the
  // fault cycle is part of result.cycles for attack scenarios).
  EXPECT_EQ(lock.result.cycles, event.result.cycles);
  EXPECT_EQ(lock.result.instructions, event.result.instructions);
  EXPECT_EQ(lock.result.cf_logs, event.result.cf_logs);
  EXPECT_EQ(lock.result.violations, event.result.violations);
  EXPECT_EQ(lock.result.cfi_fault, event.result.cfi_fault);
  EXPECT_EQ(lock.result.exit_code, event.result.exit_code);
  EXPECT_EQ(lock.result.queue_full_stalls, event.result.queue_full_stalls);
  EXPECT_EQ(lock.result.dual_cf_stalls, event.result.dual_cf_stalls);
  EXPECT_EQ(lock.result.doorbells, event.result.doorbells);
  EXPECT_EQ(lock.result.batches, event.result.batches);
  EXPECT_EQ(lock.result.max_batch, event.result.max_batch);
  EXPECT_EQ(lock.result.mean_queue_occupancy, event.result.mean_queue_occupancy);
  EXPECT_EQ(lock.result.fault_log, event.result.fault_log);
  // The whole resilience block: per-site injection/detection counts, the
  // detection-latency histogram, and every degradation counter.  Faults are
  // ordinal-indexed, so a plan must perturb both engines identically.
  EXPECT_EQ(lock.result.resilience, event.result.resilience);

  // The authenticated log stream, byte for byte and in pop order.
  EXPECT_EQ(lock.stream, event.stream);

  // The full ordered commit trace (cycle stamps included).
  ASSERT_EQ(lock.trace.size(), event.trace.size());
  for (std::size_t i = 0; i < lock.trace.size(); ++i) {
    const cva6::CommitRecord& a = lock.trace[i];
    const cva6::CommitRecord& b = event.trace[i];
    const bool same = a.cycle == b.cycle && a.pc == b.pc &&
                      a.encoding == b.encoding && a.kind == b.kind &&
                      a.next_pc == b.next_pc && a.target == b.target;
    EXPECT_TRUE(same) << "trace diverges at record " << i << " (lock-step pc 0x"
                      << std::hex << a.pc << " cycle " << std::dec << a.cycle
                      << ", event-driven pc 0x" << std::hex << b.pc
                      << " cycle " << std::dec << b.cycle << ")";
    if (!same) {
      break;
    }
  }

  // Component statistics the fast-forward path replays arithmetically.
  for (unsigned port = 0; port < 2; ++port) {
    EXPECT_EQ(lock.filter_scanned[port], event.filter_scanned[port])
        << "port " << port;
    EXPECT_EQ(lock.filter_selected[port], event.filter_selected[port])
        << "port " << port;
  }
  EXPECT_EQ(lock.writer_wait_cycles, event.writer_wait_cycles);
  EXPECT_EQ(lock.queue_stats, event.queue_stats);
  EXPECT_EQ(lock.host_stall_cycles, event.host_stall_cycles);
  EXPECT_EQ(lock.rot_instret, event.rot_instret);
  EXPECT_EQ(lock.rot_cycle, event.rot_cycle);
  EXPECT_EQ(lock.plic_claims, event.plic_claims);
  EXPECT_EQ(lock.completion_count, event.completion_count);
  EXPECT_EQ(lock.hmac_starts, event.hmac_starts);
}

// ---- The full registry grid -------------------------------------------------

class RegistryEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryEquivalence, BitExactAcrossEngines) {
  const api::Scenario* scenario =
      api::ScenarioRegistry::global().find(GetParam());
  ASSERT_NE(scenario, nullptr);
  expect_equivalent(*scenario);
}

std::vector<std::string> registry_scenario_names() {
  std::vector<std::string> names;
  for (const auto name : api::ScenarioRegistry::global().names()) {
    names.emplace_back(name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, RegistryEquivalence,
    ::testing::ValuesIn(registry_scenario_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

// ---- Randomized burst/depth/fabric/policy fuzz ------------------------------

api::Workload fuzz_workload(sim::Rng& rng) {
  switch (rng.next() % 8) {
    case 0:
      return api::Workload::fib(6 + rng.next() % 4);
    case 1:
      return api::Workload::call_chain(10 + rng.next() % 100);
    case 2:
      return api::Workload::quicksort(8 + rng.next() % 48);
    case 3:
      return api::Workload::crc32(16 + rng.next() % 100);
    case 4:
      return api::Workload::matmul(3 + rng.next() % 5);
    case 5:
      return api::Workload::indirect_dispatch(4 + rng.next() % 30);
    case 6:
      return api::Workload::stats(16 + rng.next() % 200);
    default:
      // One in seven scenarios injects a ROP, so fault-cycle equality is
      // fuzzed too, over random call graphs.
      return api::Workload::random_callgraph(rng.next(), 4 + rng.next() % 6,
                                             rng.next() % 2 == 0);
  }
}

TEST(EngineEquivalenceFuzz, RandomScenarioGrid) {
  sim::Rng rng(0x7175'616E'74756Dull);
  constexpr unsigned kQueueDepths[] = {1, 2, 4, 8, 16};
  constexpr unsigned kBursts[] = {1, 2, 4, 8};
  for (unsigned i = 0; i < 18; ++i) {
    const unsigned queue_depth = kQueueDepths[rng.next() % 5];
    unsigned burst = kBursts[rng.next() % 4];
    api::ScenarioBuilder builder;
    builder.name("fuzz" + std::to_string(i))
        .workload(fuzz_workload(rng))
        .firmware(rng.next() % 2 == 0 ? api::Firmware::kIrq
                                      : api::Firmware::kPolling)
        .fabric(rng.next() % 2 == 0 ? api::Fabric::kBaseline
                                    : api::Fabric::kOptimized)
        .queue_depth(queue_depth)
        .drain_burst(burst);
    if (burst > 1) {
      builder.batch_mac(rng.next() % 2 == 0);
      // Sometimes fuzz the hysteresis policy too (threshold must be
      // reachable: <= burst and <= queue depth).
      if (rng.next() % 3 == 0) {
        const unsigned wait = 2 + rng.next() % std::min(burst, queue_depth);
        if (wait <= burst && wait <= queue_depth) {
          builder.drain_wait(wait, 64 + rng.next() % 512);
        }
      }
    }
    expect_equivalent(builder.build());
  }
}

// ---- Randomized fault-plan fuzz ---------------------------------------------
//
// Seeded random fault plans over a degradation-capable scenario: whatever a
// plan does to the pipeline — drops, duplicates, stalls, corrupt MACs,
// forced overflows under any policy — both engines must tell the identical
// story, down to the detection-latency histogram.

TEST(EngineEquivalenceFuzz, RandomFaultPlans) {
  sim::Rng rng(0x6661'756C'7421ull);
  constexpr api::OverflowPolicy kPolicies[] = {
      api::OverflowPolicy::kBackPressure, api::OverflowPolicy::kFailClosed,
      api::OverflowPolicy::kFailOpen};
  for (unsigned i = 0; i < 10; ++i) {
    sim::FaultPlan plan = sim::FaultPlan::random(rng.next(), 1 + i % 4);
    api::ScenarioBuilder builder;
    builder.name("fault_fuzz" + std::to_string(i))
        .workload(i % 2 == 0 ? api::Workload::fib(7)
                             : api::Workload::call_chain(40 + i))
        .queue_depth(2 + rng.next() % 15)
        .drain_burst(4)
        .batch_mac(true)
        .mac_rerequest(rng.next() % 2 == 0)
        // Always armed: random plans may contain doorbell_drop, which the
        // builder (correctly) refuses without the watchdog.
        .doorbell_retry(1024 + rng.next() % 2048, 2 + rng.next() % 4)
        .overflow_policy(kPolicies[rng.next() % 3])
        .faults(plan);
    expect_equivalent(builder.build());
  }
}

// ---- Guard behaviour --------------------------------------------------------

TEST(EngineEquivalence, CycleGuardFiresOnBothEngines) {
  const auto build = [](api::Engine engine) {
    return api::ScenarioBuilder()
        .name("guard")
        .workload(api::Workload::fib(10))
        .max_cycles(64)
        .engine(engine)
        .build();
  };
  EXPECT_THROW(
      (void)api::run_scenario(build(api::Engine::kLockStep)),
      std::runtime_error);
  EXPECT_THROW(
      (void)api::run_scenario(build(api::Engine::kEventDriven)),
      std::runtime_error);
}

// ---- Cooperative run limits (deadline / budget cancellation) ----------------
//
// The serving layer's contract rests on two sim-level facts proved here:
// a budget-stopped run halts at the same cycle with the same partial state
// on both engines, and a budget generous enough to let the run finish is
// observationally invisible (the report compares equal field-wise).

TEST(EngineEquivalence, BudgetStopIsIdenticalAcrossEngines) {
  const api::Scenario scenario = api::ScenarioBuilder()
                                     .name("budget_stop")
                                     .workload(api::Workload::fib(12))
                                     .queue_depth(8)
                                     .drain_burst(8)
                                     .build();
  const auto run_budgeted = [&](api::Engine engine) {
    api::RunControl control;
    control.cancel = std::make_shared<sim::CancelToken>();
    control.max_cycles = 4096;
    // A prime stride forces the event engine to split quanta at awkward
    // boundaries; the stop cycle must not depend on it.
    control.cancel_check_stride = 257;
    return api::run_scenario(scenario.with_engine(engine), {}, control);
  };
  const api::RunReport lock = run_budgeted(api::Engine::kLockStep);
  const api::RunReport event = run_budgeted(api::Engine::kEventDriven);
  EXPECT_EQ(lock.stop, api::RunStop::kBudgetExceeded);
  EXPECT_EQ(event.stop, api::RunStop::kBudgetExceeded);
  EXPECT_EQ(lock.cycles, 4096u);
  EXPECT_EQ(event.cycles, 4096u);
  EXPECT_EQ(lock, event);
}

TEST(EngineEquivalence, PreCancelledTokenStopsBeforeCycleOneOnBothEngines) {
  const api::Scenario scenario = api::ScenarioBuilder()
                                     .name("precancel")
                                     .workload(api::Workload::fib(12))
                                     .build();
  for (const api::Engine engine :
       {api::Engine::kLockStep, api::Engine::kEventDriven}) {
    api::RunControl control;
    auto token = std::make_shared<sim::CancelToken>();
    token->cancel(sim::CancelToken::Reason::kDeadline);
    control.cancel = token;
    const api::RunReport report =
        api::run_scenario(scenario.with_engine(engine), {}, control);
    EXPECT_EQ(report.stop, api::RunStop::kDeadlineExceeded);
    EXPECT_EQ(report.cycles, 0u);
  }
}

// Registry-wide budget-identity gate: for every registered scenario, on both
// engines, running under an armed cancel token and a budget one cycle past
// the natural stopping point yields a report field-wise equal to the
// unlimited run — arming the machinery must never perturb the simulation.
class RegistryBudgetIdentity : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryBudgetIdentity, ArmedBudgetWithinLimitIsInvisible) {
  const api::Scenario* scenario =
      api::ScenarioRegistry::global().find(GetParam());
  ASSERT_NE(scenario, nullptr);
  SCOPED_TRACE("scenario: " + scenario->serialize());
  for (const api::Engine engine :
       {api::Engine::kLockStep, api::Engine::kEventDriven}) {
    const api::Scenario variant = scenario->with_engine(engine);
    const api::RunReport plain = api::run_scenario(variant);
    api::RunControl control;
    control.cancel = std::make_shared<sim::CancelToken>();
    control.max_cycles = plain.cycles + 1;
    control.cancel_check_stride = 509;
    const api::RunReport limited = api::run_scenario(variant, {}, control);
    EXPECT_EQ(limited.stop, api::RunStop::kCompleted);
    EXPECT_EQ(limited, plain);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, RegistryBudgetIdentity,
    ::testing::ValuesIn(registry_scenario_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace titan

# API-boundary check (run as a ctest: cmake -DSOURCE_DIR=... -P this_file).
#
# Two-layer guarantee that no bench or example constructs the raw
# SocConfig+FirmwareConfig pair by hand anymore:
#   1. src/api/enforce.hpp poisons the raw identifiers at compile time —
#      but only in translation units that include it;
#   2. this script verifies every bench/ and examples/ source actually
#      includes the enforcement header (so deleting the include cannot
#      silently reopen the hole), and greps for the poisoned tokens as a
#      belt-and-braces textual check.
if(NOT DEFINED SOURCE_DIR)
  message(FATAL_ERROR "check_api_boundary: pass -DSOURCE_DIR=<repo root>")
endif()

file(GLOB bench_sources "${SOURCE_DIR}/bench/*.cpp" "${SOURCE_DIR}/bench/*.hpp")
file(GLOB example_sources "${SOURCE_DIR}/examples/*.cpp")
set(checked_files ${bench_sources} ${example_sources})
if(checked_files STREQUAL "")
  message(FATAL_ERROR "check_api_boundary: found no bench/example sources under ${SOURCE_DIR}")
endif()

set(violations "")
foreach(source ${checked_files})
  file(READ "${source}" contents)

  if(NOT contents MATCHES "#include \"api/enforce\\.hpp\"")
    list(APPEND violations "${source}: missing #include \"api/enforce.hpp\" (must be the last include)")
  endif()

  # The poisoned raw-construction surface must not appear textually either
  # (the compile-time poison only bites after the include line).
  foreach(token SocConfig FirmwareConfig build_firmware FwVariant RotFabric
          SocTop)
    if(contents MATCHES "[^A-Za-z0-9_]${token}[^A-Za-z0-9_]")
      list(APPEND violations "${source}: uses raw-construction token '${token}' (go through titan::api)")
    endif()
  endforeach()
endforeach()

if(violations)
  list(JOIN violations "\n  " joined)
  message(FATAL_ERROR "API boundary violations:\n  ${joined}")
endif()
list(LENGTH checked_files file_count)
message(STATUS "check_api_boundary: ${file_count} bench/example sources clean")

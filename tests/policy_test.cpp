// Policy-layer tests: shadow-stack policy semantics, forward-edge jump-table
// policy, and composite conjunction.
#include "firmware/policy.hpp"

#include <gtest/gtest.h>

#include "rv/encode.hpp"

namespace titan::fw {
namespace {

cfi::CommitLog call_log(std::uint64_t pc, std::uint64_t target) {
  cfi::CommitLog log;
  log.pc = pc;
  log.encoding = rv::enc_j(0x6F, 1, 0);  // jal ra (offset in encoding unused)
  log.next = pc + 4;
  log.target = target;
  return log;
}

cfi::CommitLog indirect_call_log(std::uint64_t pc, std::uint64_t target) {
  cfi::CommitLog log;
  log.pc = pc;
  log.encoding = rv::enc_i(0x67, 0, 1, 10, 0);  // jalr ra, 0(a0)
  log.next = pc + 4;
  log.target = target;
  return log;
}

cfi::CommitLog return_log(std::uint64_t pc, std::uint64_t target) {
  cfi::CommitLog log;
  log.pc = pc;
  log.encoding = 0x00008067;
  log.next = pc + 4;
  log.target = target;
  return log;
}

cfi::CommitLog ijump_log(std::uint64_t pc, std::uint64_t target) {
  cfi::CommitLog log;
  log.pc = pc;
  log.encoding = rv::enc_i(0x67, 0, 0, 10, 0);  // jr a0
  log.next = pc + 4;
  log.target = target;
  return log;
}

ShadowStackPolicy make_ss_policy(sim::Memory& memory) {
  return ShadowStackPolicy({}, memory, {'k', 'e', 'y'});
}

TEST(ShadowStackPolicy, CallThenMatchingReturn) {
  sim::Memory memory;
  auto policy = make_ss_policy(memory);
  EXPECT_TRUE(policy.check(call_log(0x1000, 0x2000)).ok);
  EXPECT_TRUE(policy.check(return_log(0x2040, 0x1004)).ok);
}

TEST(ShadowStackPolicy, MismatchedReturnRejected) {
  sim::Memory memory;
  auto policy = make_ss_policy(memory);
  EXPECT_TRUE(policy.check(call_log(0x1000, 0x2000)).ok);
  const Verdict verdict = policy.check(return_log(0x2040, 0x6666));
  EXPECT_FALSE(verdict.ok);
  EXPECT_EQ(verdict.reason, "return-address mismatch");
}

TEST(ShadowStackPolicy, UnderflowRejected) {
  sim::Memory memory;
  auto policy = make_ss_policy(memory);
  const Verdict verdict = policy.check(return_log(0x2040, 0x1004));
  EXPECT_FALSE(verdict.ok);
  EXPECT_EQ(verdict.reason, "shadow-stack underflow");
}

TEST(ShadowStackPolicy, IndirectJumpsUnconstrained) {
  sim::Memory memory;
  auto policy = make_ss_policy(memory);
  EXPECT_TRUE(policy.check(ijump_log(0x1000, 0x12345)).ok);
  EXPECT_TRUE(policy.check(ijump_log(0x1000, 0x99999)).ok);
}

TEST(JumpTablePolicy, RegisteredTargetsAccepted) {
  JumpTablePolicy policy;
  policy.allow_target(0x4000);
  EXPECT_TRUE(policy.check(ijump_log(0x1000, 0x4000)).ok);
  EXPECT_TRUE(policy.check(indirect_call_log(0x1000, 0x4000)).ok);
}

TEST(JumpTablePolicy, UnregisteredTargetsRejected) {
  JumpTablePolicy policy;
  policy.allow_target(0x4000);
  EXPECT_FALSE(policy.check(ijump_log(0x1000, 0x4004)).ok);
  EXPECT_FALSE(policy.check(indirect_call_log(0x1000, 0x5000)).ok);
}

TEST(JumpTablePolicy, DirectCallsAndReturnsIgnored) {
  JumpTablePolicy policy;  // empty table
  EXPECT_TRUE(policy.check(call_log(0x1000, 0x2000)).ok);  // JAL: direct
  EXPECT_TRUE(policy.check(return_log(0x2040, 0x1004)).ok);
}

TEST(CompositePolicy, ConjunctionOfPolicies) {
  sim::Memory memory;
  auto composite = CompositePolicy();
  composite.add(std::make_unique<ShadowStackPolicy>(
      ShadowStackConfig{}, memory, std::vector<std::uint8_t>{'k'}));
  auto jump_table = std::make_unique<JumpTablePolicy>();
  jump_table->allow_target(0x4000);
  composite.add(std::move(jump_table));

  // Call+return pass both policies.
  EXPECT_TRUE(composite.check(call_log(0x1000, 0x2000)).ok);
  EXPECT_TRUE(composite.check(return_log(0x2040, 0x1004)).ok);
  // Indirect jump to unregistered target fails the jump-table policy.
  EXPECT_FALSE(composite.check(ijump_log(0x1000, 0x7777)).ok);
  // Indirect jump to registered target passes both.
  EXPECT_TRUE(composite.check(ijump_log(0x1000, 0x4000)).ok);
}

TEST(PolicyNames, AreStable) {
  sim::Memory memory;
  EXPECT_EQ(make_ss_policy(memory).name(), "shadow-stack");
  EXPECT_EQ(JumpTablePolicy().name(), "jump-table");
  EXPECT_EQ(CompositePolicy().name(), "composite");
}

}  // namespace
}  // namespace titan::fw

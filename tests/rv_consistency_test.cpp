// Cross-layer consistency properties of the ISA layer:
//  * decode->encode canonicality over random fetch words;
//  * decoder totality (never crashes, always classifiable);
//  * assembler output is always decodable.
#include <gtest/gtest.h>

#include "rv/assembler.hpp"
#include "rv/decode.hpp"
#include "rv/encode.hpp"
#include "sim/rng.hpp"

namespace titan::rv {
namespace {

TEST(Consistency, DecodeEncodeCanonicalOnRandomWords) {
  // For every random 32-bit word the decoder accepts, re-encoding the
  // decoded form must reproduce the word bit-exactly — i.e. the decoder
  // never silently ignores architectural bits.  FENCE is excluded (its
  // pred/succ/fm fields are deliberately collapsed by the model).
  sim::Rng rng(0xC0DEC);
  int accepted = 0;
  for (int trial = 0; trial < 500'000; ++trial) {
    const auto word = static_cast<std::uint32_t>(rng.next()) | 3;  // 32-bit
    const Inst inst = decode(word, Xlen::k64);
    if (!inst.valid() || inst.op == Op::kFence) {
      continue;
    }
    ++accepted;
    ASSERT_EQ(encode(inst), word)
        << "op=" << mnemonic(inst.op) << " word=0x" << std::hex << word;
  }
  EXPECT_GT(accepted, 10'000);  // the opcode space is reasonably dense
}

TEST(Consistency, DecoderIsTotal) {
  // Exhaustive over the low 2^16 x upper-sampled space: decode must never
  // misbehave (this is a crash/UB canary; values checked elsewhere).
  sim::Rng rng(7);
  for (int trial = 0; trial < 200'000; ++trial) {
    const auto word = static_cast<std::uint32_t>(rng.next());
    const Inst inst64 = decode(word, Xlen::k64);
    const Inst inst32 = decode(word, Xlen::k32);
    // Classification is defined for every decode result.
    (void)classify(inst64);
    (void)classify(inst32);
    ASSERT_TRUE(inst64.len == 2 || inst64.len == 4);
    ASSERT_TRUE(inst32.len == 2 || inst32.len == 4);
  }
}

TEST(Consistency, CompressedLengthAgreesWithEncodingClass) {
  sim::Rng rng(8);
  for (int trial = 0; trial < 100'000; ++trial) {
    const auto word = static_cast<std::uint32_t>(rng.next());
    const Inst inst = decode(word, Xlen::k64);
    if ((word & 3) == 3) {
      ASSERT_EQ(inst.len, 4);
      ASSERT_EQ(inst.raw, word);
    } else {
      ASSERT_EQ(inst.len, 2);
      ASSERT_EQ(inst.raw, word & 0xFFFF);
    }
  }
}

TEST(Consistency, AssembledProgramsAlwaysDecode) {
  // Every word the assembler can emit must decode to a valid instruction of
  // the same mnemonic class.  Exercise the whole emission surface.
  Assembler a(Xlen::k64, 0x1000);
  auto label = a.new_label();
  a.bind(label);
  a.lui(Reg::kA0, 0x12000);
  a.auipc(Reg::kA1, 0x1000);
  a.jal(Reg::kRa, label);
  a.jalr(Reg::kZero, Reg::kRa, 0);
  a.beq(Reg::kA0, Reg::kA1, label);
  a.bne(Reg::kA0, Reg::kA1, label);
  a.blt(Reg::kA0, Reg::kA1, label);
  a.bge(Reg::kA0, Reg::kA1, label);
  a.bltu(Reg::kA0, Reg::kA1, label);
  a.bgeu(Reg::kA0, Reg::kA1, label);
  a.lb(Reg::kA0, Reg::kSp, -1);
  a.lh(Reg::kA0, Reg::kSp, 2);
  a.lw(Reg::kA0, Reg::kSp, 4);
  a.lbu(Reg::kA0, Reg::kSp, 1);
  a.lhu(Reg::kA0, Reg::kSp, 2);
  a.lwu(Reg::kA0, Reg::kSp, 4);
  a.ld(Reg::kA0, Reg::kSp, 8);
  a.sb(Reg::kA0, Reg::kSp, -1);
  a.sh(Reg::kA0, Reg::kSp, 2);
  a.sw(Reg::kA0, Reg::kSp, 4);
  a.sd(Reg::kA0, Reg::kSp, 8);
  a.addi(Reg::kA0, Reg::kA0, 5);
  a.slti(Reg::kA0, Reg::kA0, 5);
  a.sltiu(Reg::kA0, Reg::kA0, 5);
  a.xori(Reg::kA0, Reg::kA0, 5);
  a.ori(Reg::kA0, Reg::kA0, 5);
  a.andi(Reg::kA0, Reg::kA0, 5);
  a.slli(Reg::kA0, Reg::kA0, 5);
  a.srli(Reg::kA0, Reg::kA0, 5);
  a.srai(Reg::kA0, Reg::kA0, 5);
  a.add(Reg::kA0, Reg::kA1, Reg::kA2);
  a.sub(Reg::kA0, Reg::kA1, Reg::kA2);
  a.sll(Reg::kA0, Reg::kA1, Reg::kA2);
  a.slt(Reg::kA0, Reg::kA1, Reg::kA2);
  a.sltu(Reg::kA0, Reg::kA1, Reg::kA2);
  a.xor_(Reg::kA0, Reg::kA1, Reg::kA2);
  a.srl(Reg::kA0, Reg::kA1, Reg::kA2);
  a.sra(Reg::kA0, Reg::kA1, Reg::kA2);
  a.or_(Reg::kA0, Reg::kA1, Reg::kA2);
  a.and_(Reg::kA0, Reg::kA1, Reg::kA2);
  a.addiw(Reg::kA0, Reg::kA0, 5);
  a.slliw(Reg::kA0, Reg::kA0, 5);
  a.srliw(Reg::kA0, Reg::kA0, 5);
  a.sraiw(Reg::kA0, Reg::kA0, 5);
  a.addw(Reg::kA0, Reg::kA1, Reg::kA2);
  a.subw(Reg::kA0, Reg::kA1, Reg::kA2);
  a.sllw(Reg::kA0, Reg::kA1, Reg::kA2);
  a.srlw(Reg::kA0, Reg::kA1, Reg::kA2);
  a.sraw(Reg::kA0, Reg::kA1, Reg::kA2);
  a.fence();
  a.ecall();
  a.ebreak();
  a.mret();
  a.wfi();
  a.csrrw(Reg::kA0, csr::kMscratch, Reg::kA1);
  a.csrrs(Reg::kA0, csr::kMscratch, Reg::kA1);
  a.csrrc(Reg::kA0, csr::kMscratch, Reg::kA1);
  a.csrrwi(Reg::kA0, csr::kMscratch, 3);
  a.csrrsi(Reg::kA0, csr::kMscratch, 3);
  a.csrrci(Reg::kA0, csr::kMscratch, 3);
  a.mul(Reg::kA0, Reg::kA1, Reg::kA2);
  a.mulh(Reg::kA0, Reg::kA1, Reg::kA2);
  a.mulhsu(Reg::kA0, Reg::kA1, Reg::kA2);
  a.mulhu(Reg::kA0, Reg::kA1, Reg::kA2);
  a.div(Reg::kA0, Reg::kA1, Reg::kA2);
  a.divu(Reg::kA0, Reg::kA1, Reg::kA2);
  a.rem(Reg::kA0, Reg::kA1, Reg::kA2);
  a.remu(Reg::kA0, Reg::kA1, Reg::kA2);
  a.mulw(Reg::kA0, Reg::kA1, Reg::kA2);
  a.divw(Reg::kA0, Reg::kA1, Reg::kA2);
  a.remw(Reg::kA0, Reg::kA1, Reg::kA2);
  a.li(Reg::kA0, 0x123456789ABCDEFLL);
  a.la(Reg::kA1, label);
  a.nop();
  a.mv(Reg::kA0, Reg::kA1);
  a.not_(Reg::kA0, Reg::kA1);
  a.neg(Reg::kA0, Reg::kA1);
  a.seqz(Reg::kA0, Reg::kA1);
  a.snez(Reg::kA0, Reg::kA1);
  a.call(label);
  a.callr(Reg::kA0);
  a.ret();
  a.jr(Reg::kA0);
  a.j(label);
  a.beqz(Reg::kA0, label);
  a.bnez(Reg::kA0, label);
  a.bgez(Reg::kA0, label);
  a.bltz(Reg::kA0, label);

  const Image image = a.finish();
  for (std::size_t offset = 0; offset < image.bytes.size(); offset += 4) {
    const std::uint32_t word =
        static_cast<std::uint32_t>(image.bytes[offset]) |
        (static_cast<std::uint32_t>(image.bytes[offset + 1]) << 8) |
        (static_cast<std::uint32_t>(image.bytes[offset + 2]) << 16) |
        (static_cast<std::uint32_t>(image.bytes[offset + 3]) << 24);
    const Inst inst = decode(word, Xlen::k64);
    ASSERT_TRUE(inst.valid()) << "offset " << offset << " word 0x" << std::hex
                              << word;
  }
}

TEST(Consistency, ImmediateRangeEnforced) {
  Assembler a(Xlen::k64, 0);
  EXPECT_THROW(a.addi(Reg::kA0, Reg::kA0, 2048), std::out_of_range);
  EXPECT_THROW(a.addi(Reg::kA0, Reg::kA0, -2049), std::out_of_range);
  EXPECT_THROW(a.lw(Reg::kA0, Reg::kSp, 4096), std::out_of_range);
  EXPECT_THROW(a.sd(Reg::kA0, Reg::kSp, -3000), std::out_of_range);
  EXPECT_THROW(a.jalr(Reg::kRa, Reg::kA0, 0x900), std::out_of_range);
  EXPECT_NO_THROW(a.addi(Reg::kA0, Reg::kA0, 2047));
  EXPECT_NO_THROW(a.addi(Reg::kA0, Reg::kA0, -2048));
}

}  // namespace
}  // namespace titan::rv

// Workload-layer tests: benchmark table integrity, trace-generator
// properties, and calibration fidelity against the paper's IRQ columns.
#include <gtest/gtest.h>

#include <algorithm>

#include "titancfi/overhead_model.hpp"
#include "workloads/embench.hpp"

namespace titan::workloads {
namespace {

TEST(BenchmarkTable, HasAllTableIiiRows) {
  EXPECT_EQ(benchmark_table().size(), 32u);  // 19 EmBench + 13 RISC-V-Tests
  int embench = 0;
  int riscv = 0;
  for (const BenchmarkStats& stats : benchmark_table()) {
    if (stats.suite == "embench") ++embench;
    if (stats.suite == "riscv-tests") ++riscv;
    EXPECT_GT(stats.cycles, 0);
    EXPECT_GT(stats.cf_count, 0);
  }
  EXPECT_EQ(embench, 19);
  EXPECT_EQ(riscv, 13);
}

TEST(BenchmarkTable, LookupByName) {
  ASSERT_NE(find_benchmark("dhrystone"), nullptr);
  EXPECT_EQ(find_benchmark("dhrystone")->paper_irq, 1215);
  EXPECT_EQ(find_benchmark("nope"), nullptr);
}

TEST(BenchmarkTable, Table2SubsetFlagged) {
  int in_table2 = 0;
  for (const BenchmarkStats& stats : benchmark_table()) {
    if (stats.in_table2()) ++in_table2;
  }
  EXPECT_EQ(in_table2, 9);  // Table II lists 4 EmBench + 5 RISC-V-Tests rows
}

TEST(TraceGen, ProducesExactCountWithinRun) {
  const BenchmarkStats* stats = find_benchmark("picojpeg");
  ASSERT_NE(stats, nullptr);
  const auto cycles = synthesize_cf_cycles(*stats, TraceParams{});
  EXPECT_EQ(cycles.size(), static_cast<std::size_t>(stats->cf_count));
  EXPECT_TRUE(std::is_sorted(cycles.begin(), cycles.end()));
  EXPECT_LT(cycles.back(), static_cast<sim::Cycle>(stats->cycles));
}

TEST(TraceGen, WindowFractionConcentratesActivity) {
  const BenchmarkStats* stats = find_benchmark("wikisort");
  ASSERT_NE(stats, nullptr);
  TraceParams narrow;
  narrow.window_fraction = 0.1;
  const auto cycles = synthesize_cf_cycles(*stats, narrow);
  const double span =
      static_cast<double>(cycles.back() - cycles.front());
  EXPECT_LT(span, 0.15 * stats->cycles);
}

TEST(TraceGen, ClusterSizeCreatesBackToBackOps) {
  const BenchmarkStats* stats = find_benchmark("ud");
  ASSERT_NE(stats, nullptr);
  TraceParams params;
  params.cluster = 4;
  params.intra_gap = 8;
  const auto cycles = synthesize_cf_cycles(*stats, params);
  // Inside a cluster consecutive gaps equal intra_gap.
  int tight_gaps = 0;
  for (std::size_t i = 1; i < cycles.size(); ++i) {
    if (cycles[i] - cycles[i - 1] == 8) ++tight_gaps;
  }
  EXPECT_GT(tight_gaps, static_cast<int>(cycles.size() / 2));
}

TEST(TraceGen, EmptyBenchmarkYieldsEmptyTrace) {
  BenchmarkStats empty{"x", "embench", 0, 0, -1, -1, -1, -2, -2, -2};
  EXPECT_TRUE(synthesize_cf_cycles(empty, TraceParams{}).empty());
}

// Calibration: fitting phi on the IRQ column must reproduce that column; the
// real validation (predicting Poll/Opt) lives in the Table III bench.
class CalibrationTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CalibrationTest, ReproducesIrqColumnAtDepth8) {
  const BenchmarkStats* stats = find_benchmark(GetParam());
  ASSERT_NE(stats, nullptr);
  const TraceParams params = calibrate(*stats);
  const auto cf = synthesize_cf_cycles(*stats, params);
  cfi::OverheadConfig config;
  config.queue_depth = 8;
  config.check_latency = kIrqLatency;
  config.transport_cycles = 0;
  const double predicted =
      cfi::simulate_cf_cycles(cf, static_cast<sim::Cycle>(stats->cycles), config)
          .slowdown_percent();
  if (stats->paper_irq <= 0) {
    EXPECT_LT(predicted, 1.0);
  } else {
    // Within 10% relative or 2 points absolute of the published number.
    EXPECT_NEAR(predicted, stats->paper_irq,
                std::max(2.0, 0.10 * stats->paper_irq));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, CalibrationTest,
    ::testing::Values("cubic", "huffbench", "nbody", "picojpeg", "slre",
                      "wikisort", "dhrystone", "mm", "mt-matmul", "statemate",
                      "edn", "crc32", "qsort", "towers"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name(info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(Calibration, SaturatedBenchmarksInsensitiveToPhi) {
  // mm is CF-saturated: any window gives ~the same slowdown; calibrate()
  // must not produce a degenerate window.
  const BenchmarkStats* mm = find_benchmark("mm");
  ASSERT_NE(mm, nullptr);
  const TraceParams params = calibrate(*mm);
  EXPECT_GT(params.window_fraction, 0.0);
  EXPECT_LE(params.window_fraction, 1.0);
}

TEST(Calibration, QuietBenchmarksGetFullWindow) {
  const BenchmarkStats* edn = find_benchmark("edn");
  ASSERT_NE(edn, nullptr);
  EXPECT_DOUBLE_EQ(calibrate(*edn).window_fraction, 1.0);
}

}  // namespace
}  // namespace titan::workloads

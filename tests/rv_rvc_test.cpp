// Compressed-instruction tests: golden expansions plus an exhaustive sweep of
// the full 16-bit encoding space on both XLENs.
#include <gtest/gtest.h>

#include "rv/decode.hpp"
#include "rv/encode.hpp"

namespace titan::rv {
namespace {

std::uint32_t expand64(std::uint16_t half) {
  const auto expansion = expand_rvc(half, Xlen::k64);
  EXPECT_TRUE(expansion.has_value()) << std::hex << half;
  return expansion.value_or(0);
}

// ---- Golden expansions (cross-checked against binutils disassembly) -------

TEST(Rvc, Nop) {
  EXPECT_EQ(expand64(0x0001), 0x00000013u);  // c.nop -> addi x0, x0, 0
}

TEST(Rvc, LiA0Zero) {
  // c.li a0, 0 -> addi a0, x0, 0
  EXPECT_EQ(expand64(0x4501), enc_i(0x13, 0, 10, 0, 0));
}

TEST(Rvc, JrRaIsRet) {
  // c.jr ra -> jalr x0, 0(ra) == ret
  EXPECT_EQ(expand64(0x8082), 0x00008067u);
}

TEST(Rvc, Ebreak) { EXPECT_EQ(expand64(0x9002), 0x00100073u); }

TEST(Rvc, Addi16Sp) {
  // c.addi16sp sp, 32 -> addi sp, sp, 32
  EXPECT_EQ(expand64(0x6105), enc_i(0x13, 0, 2, 2, 32));
}

TEST(Rvc, AddiSpMinus16) {
  // c.addi16sp sp, -16: imm = -16 -> bits imm[9]=1... binutils: 0x7179 is
  // c.addi16sp sp,-48; use -48 golden instead.
  EXPECT_EQ(expand64(0x7179), enc_i(0x13, 0, 2, 2, -48));
}

TEST(Rvc, MvAndAdd) {
  // c.mv a0, a1 -> add a0, x0, a1 (0x852e)
  EXPECT_EQ(expand64(0x852E), enc_r(0x33, 0, 0, 10, 0, 11));
  // c.add a0, a1 -> add a0, a0, a1 (0x952e)
  EXPECT_EQ(expand64(0x952E), enc_r(0x33, 0, 0, 10, 10, 11));
}

TEST(Rvc, JalrThroughA5) {
  // c.jalr a5 -> jalr ra, 0(a5) (0x9782)
  EXPECT_EQ(expand64(0x9782), enc_i(0x67, 0, 1, 15, 0));
}

TEST(Rvc, LwspAndSwsp) {
  // c.lwsp a0, 0(sp) -> lw a0, 0(sp) (0x4502)
  EXPECT_EQ(expand64(0x4502), enc_i(0x03, 2, 10, 2, 0));
  // c.swsp a0, 0(sp) -> sw a0, 0(sp) (0xc02a)
  EXPECT_EQ(expand64(0xC02A), enc_s(0x23, 2, 2, 10, 0));
}

TEST(Rvc, LdspAndSdsp) {
  // c.ldsp ra, 8(sp) -> ld ra, 8(sp) (0x60a2)
  EXPECT_EQ(expand64(0x60A2), enc_i(0x03, 3, 1, 2, 8));
  // c.sdsp ra, 8(sp) -> sd ra, 8(sp) (0xe406)
  EXPECT_EQ(expand64(0xE406), enc_s(0x23, 3, 2, 1, 8));
}

TEST(Rvc, CompressedLoadsUsePrimeRegs) {
  // c.lw a5, 0(a0) (0x411c) -> lw a5, 0(a0)
  EXPECT_EQ(expand64(0x411C), enc_i(0x03, 2, 15, 10, 0));
  // c.ld a4, 8(a3) -> ld a4, 8(a3) (0x6698)
  EXPECT_EQ(expand64(0x6698), enc_i(0x03, 3, 14, 13, 8));
}

TEST(Rvc, DefinedIllegal) {
  EXPECT_FALSE(expand_rvc(0x0000, Xlen::k64).has_value());
  EXPECT_FALSE(expand_rvc(0x0000, Xlen::k32).has_value());
}

TEST(Rvc, JalOnlyOnRv32) {
  // Quadrant 1, funct3=001 is c.jal on RV32, c.addiw on RV64.
  const std::uint16_t half = 0x2001;  // offset 0 / addiw x0 — x0 reserved
  const auto rv32 = expand_rvc(half, Xlen::k32);
  ASSERT_TRUE(rv32.has_value());
  const Inst jal_inst = decode(*rv32, Xlen::k32);
  EXPECT_EQ(jal_inst.op, Op::kJal);
  EXPECT_EQ(jal_inst.rd, 1);
  // On RV64 rd==x0 for c.addiw is reserved.
  EXPECT_FALSE(expand_rvc(half, Xlen::k64).has_value());
}

TEST(Rvc, AddiwOnRv64) {
  // c.addiw a0, 1 (0x2505)
  const auto expansion = expand_rvc(0x2505, Xlen::k64);
  ASSERT_TRUE(expansion.has_value());
  EXPECT_EQ(*expansion, enc_i(0x1B, 0, 10, 10, 1));
}

// ---- Exhaustive sweep property ---------------------------------------------
// Every 16-bit value that the expander accepts must decode into a valid
// (non-illegal) 32-bit instruction, and decode() must report len==2 with the
// expansion recorded.

class RvcSweepTest : public ::testing::TestWithParam<Xlen> {};

TEST_P(RvcSweepTest, AllExpansionsDecode) {
  const Xlen xlen = GetParam();
  int expanded_count = 0;
  for (std::uint32_t half = 0; half <= 0xFFFF; ++half) {
    if ((half & 3) == 3) {
      continue;  // Not a compressed encoding.
    }
    const auto expansion = expand_rvc(static_cast<std::uint16_t>(half), xlen);
    if (!expansion.has_value()) {
      continue;
    }
    ++expanded_count;
    const Inst inst32 = decode(*expansion, xlen);
    ASSERT_NE(inst32.op, Op::kIllegal)
        << "half=0x" << std::hex << half << " expansion=0x" << *expansion;

    const Inst via_decode = decode(half, xlen);
    ASSERT_EQ(via_decode.op, inst32.op);
    ASSERT_EQ(via_decode.len, 2);
    ASSERT_EQ(via_decode.expanded, *expansion);
    ASSERT_EQ(via_decode.raw, half);
  }
  // Sanity: a healthy fraction of the RVC space must be populated.
  EXPECT_GT(expanded_count, 20000);
}

INSTANTIATE_TEST_SUITE_P(BothXlens, RvcSweepTest,
                         ::testing::Values(Xlen::k32, Xlen::k64),
                         [](const ::testing::TestParamInfo<Xlen>& info) {
                           return info.param == Xlen::k32 ? "rv32" : "rv64";
                         });

}  // namespace
}  // namespace titan::rv

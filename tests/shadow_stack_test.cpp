// Golden shadow-stack tests: LIFO property against a reference stack, spill/
// fill through the HMAC-authenticated arena, and tamper detection.
#include "firmware/shadow_stack.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hpp"

namespace titan::fw {
namespace {

std::vector<std::uint8_t> test_key() { return {'k', 'e', 'y'}; }

TEST(ShadowStack, PushPopMatch) {
  sim::Memory memory;
  ShadowStack stack({}, memory, test_key());
  stack.push(0x1000);
  stack.push(0x2000);
  EXPECT_EQ(stack.pop_and_check(0x2000), PopVerdict::kMatch);
  EXPECT_EQ(stack.pop_and_check(0x1000), PopVerdict::kMatch);
}

TEST(ShadowStack, MismatchDetected) {
  sim::Memory memory;
  ShadowStack stack({}, memory, test_key());
  stack.push(0x1000);
  EXPECT_EQ(stack.pop_and_check(0xBAD), PopVerdict::kMismatch);
}

TEST(ShadowStack, UnderflowDetected) {
  sim::Memory memory;
  ShadowStack stack({}, memory, test_key());
  EXPECT_EQ(stack.pop_and_check(0x1000), PopVerdict::kUnderflow);
}

TEST(ShadowStack, SpillAndFillRoundTrip) {
  sim::Memory memory;
  ShadowStackConfig config;
  config.capacity = 8;
  config.spill_block = 4;
  ShadowStack stack(config, memory, test_key());

  // Push 40 frames: several spills.
  for (std::uint64_t i = 0; i < 40; ++i) {
    stack.push(0x10000 + i * 8);
  }
  EXPECT_GT(stack.spills(), 0u);
  EXPECT_EQ(stack.depth(), 40u);

  // Pop all back in LIFO order: fills must authenticate and restore.
  for (std::uint64_t i = 40; i-- > 0;) {
    ASSERT_EQ(stack.pop_and_check(0x10000 + i * 8), PopVerdict::kMatch)
        << "i=" << i;
  }
  EXPECT_GT(stack.fills(), 0u);
  EXPECT_EQ(stack.pop_and_check(0), PopVerdict::kUnderflow);
}

TEST(ShadowStack, TamperedSpillDetected) {
  sim::Memory memory;
  ShadowStackConfig config;
  config.capacity = 4;
  config.spill_block = 2;
  ShadowStack stack(config, memory, test_key());
  for (std::uint64_t i = 0; i < 6; ++i) {
    stack.push(0x5000 + i * 4);  // one spill of entries {0,1}
  }
  ASSERT_EQ(stack.spills(), 1u);

  // Attacker flips one bit of the spilled segment payload in DRAM.
  const sim::Addr segment = config.spill_base;
  memory.write8(segment + 32, memory.read8(segment + 32) ^ 0x01);

  // Drain the on-chip part (4 entries), then the fill must fail.
  for (std::uint64_t i = 6; i-- > 2;) {
    ASSERT_EQ(stack.pop_and_check(0x5000 + i * 4), PopVerdict::kMatch);
  }
  EXPECT_EQ(stack.pop_and_check(0x5000 + 4), PopVerdict::kTampered);
}

TEST(ShadowStack, TamperedMacDetected) {
  sim::Memory memory;
  ShadowStackConfig config;
  config.capacity = 4;
  config.spill_block = 2;
  ShadowStack stack(config, memory, test_key());
  for (std::uint64_t i = 0; i < 6; ++i) {
    stack.push(i);
  }
  memory.write8(config.spill_base + 3,
                memory.read8(config.spill_base + 3) ^ 0x80);  // MAC byte
  for (std::uint64_t i = 6; i-- > 2;) {
    ASSERT_EQ(stack.pop_and_check(i), PopVerdict::kMatch);
  }
  EXPECT_EQ(stack.pop_and_check(1), PopVerdict::kTampered);
}

// Property: against a reference std::vector stack, a random call/return
// workload always agrees, across several capacity/block geometries.
struct Geometry {
  std::size_t capacity;
  std::size_t block;
};

class ShadowStackPropertyTest
    : public ::testing::TestWithParam<Geometry> {};

TEST_P(ShadowStackPropertyTest, AgreesWithReferenceStack) {
  sim::Memory memory;
  ShadowStackConfig config;
  config.capacity = GetParam().capacity;
  config.spill_block = GetParam().block;
  ShadowStack stack(config, memory, test_key());
  std::vector<std::uint64_t> reference;
  sim::Rng rng(GetParam().capacity * 131 + GetParam().block);

  for (int step = 0; step < 5000; ++step) {
    if (reference.empty() || rng.chance(0.55)) {
      const std::uint64_t addr = 0x8000'0000 + rng.uniform(0, 1 << 20) * 2;
      stack.push(addr);
      reference.push_back(addr);
    } else {
      const std::uint64_t expected = reference.back();
      reference.pop_back();
      if (rng.chance(0.05)) {
        ASSERT_EQ(stack.pop_and_check(expected ^ 0x10), PopVerdict::kMismatch);
        // Re-sync: mismatch consumed the entry in both models.
      } else {
        ASSERT_EQ(stack.pop_and_check(expected), PopVerdict::kMatch);
      }
    }
    ASSERT_EQ(stack.depth(), reference.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, ShadowStackPropertyTest,
                         ::testing::Values(Geometry{4, 2}, Geometry{8, 4},
                                           Geometry{32, 16}, Geometry{64, 8}),
                         [](const ::testing::TestParamInfo<Geometry>& info) {
                           return "cap" + std::to_string(info.param.capacity) +
                                  "_blk" + std::to_string(info.param.block);
                         });

TEST(ShadowStack, MaxDepthTracksHighWater) {
  sim::Memory memory;
  ShadowStack stack({}, memory, test_key());
  for (std::uint64_t i = 0; i < 10; ++i) stack.push(i);
  for (std::uint64_t i = 10; i-- > 5;) {
    ASSERT_EQ(stack.pop_and_check(i), PopVerdict::kMatch);
  }
  EXPECT_EQ(stack.max_depth(), 10u);
}

}  // namespace
}  // namespace titan::fw

// Copy-on-write page sharing between a Memory and its checkpoint images:
// capture() must share pages (not copy), the first post-capture write must
// clone, sibling forks must be isolated, every PageRef / fetch-page cache
// entry taken before a restore must be invalidated by the map-epoch bump
// (the stale-PageRef regression), and the access-statistics lanes — page
// cache and negative cache included — must continue bit-exactly after a
// capture/restore versus an uninterrupted run.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "sim/memory.hpp"

namespace titan::sim {
namespace {

TEST(MemoryCowTest, CaptureSharesPagesAndClonesOnFirstWrite) {
  Memory memory;
  memory.write64(0x1000, 0xAAAA'AAAA'AAAA'AAAAull);
  const Memory::Image image = memory.capture();
  ASSERT_EQ(image.pages.size(), 1u);
  // The live memory and the image hold the same page object — capture copies
  // nothing.
  EXPECT_EQ(image.pages[0].second.use_count(), 2);

  // First write after capture clones: the image's page is released by the
  // live memory and keeps the old contents.
  memory.write64(0x1000, 0xBBBB'BBBB'BBBB'BBBBull);
  EXPECT_EQ(image.pages[0].second.use_count(), 1);
  EXPECT_EQ(memory.read64(0x1000), 0xBBBB'BBBB'BBBB'BBBBull);

  Memory restored;
  restored.restore(image);
  EXPECT_EQ(restored.read64(0x1000), 0xAAAA'AAAA'AAAA'AAAAull);
}

TEST(MemoryCowTest, WriteThroughPrimedWayStillClones) {
  // Regression for the hot-path hazard: a write primes a *writable* cache
  // way; capture() must demote it, or the next write lands directly in the
  // shared page behind the image's back.
  Memory memory;
  memory.write64(0x2000, 1);  // way primed writable
  const Memory::Image image = memory.capture();
  memory.write64(0x2000, 2);  // write hit on the demoted way → must clone

  Memory restored;
  restored.restore(image);
  EXPECT_EQ(restored.read64(0x2000), 1u);
  EXPECT_EQ(memory.read64(0x2000), 2u);
}

TEST(MemoryCowTest, SiblingForksAreIsolated) {
  Memory origin;
  origin.write64(0x3000, 0x1111);
  origin.write64(0x7000, 0x2222);
  const Memory::Image image = origin.capture();

  Memory fork_a;
  Memory fork_b;
  fork_a.restore(image);
  fork_b.restore(image);
  fork_a.write64(0x3000, 0xAAAA);
  fork_b.write64(0x3000, 0xBBBB);

  EXPECT_EQ(fork_a.read64(0x3000), 0xAAAAu);
  EXPECT_EQ(fork_b.read64(0x3000), 0xBBBBu);
  EXPECT_EQ(origin.read64(0x3000), 0x1111u);
  // The untouched page stays shared by all four owners (origin, image, both
  // forks) — the whole point of CoW sweeps.
  ASSERT_EQ(image.pages.size(), 2u);
  EXPECT_EQ(image.pages[1].second.use_count(), 4);

  Memory witness;
  witness.restore(image);
  EXPECT_EQ(witness.read64(0x3000), 0x1111u);
  EXPECT_EQ(witness.read64(0x7000), 0x2222u);
}

TEST(MemoryCowTest, RestoreInvalidatesStalePageRefs) {
  Memory memory;
  memory.write64(0x4000, 0xDEAD);
  const Memory::Image image = memory.capture();

  const PageRef stale = memory.page_ref(0x4000);
  ASSERT_NE(stale.data, nullptr);
  EXPECT_EQ(stale.epoch, memory.map_epoch());

  // restore() bumps the map epoch even when the contents are identical: any
  // PageRef taken before it must fail its revalidation check.
  memory.restore(image);
  EXPECT_NE(stale.epoch, memory.map_epoch());

  const PageRef fresh = memory.page_ref(0x4000);
  ASSERT_NE(fresh.data, nullptr);
  EXPECT_EQ(fresh.epoch, memory.map_epoch());
}

TEST(MemoryCowTest, FetchPageCacheMissesAfterRestore) {
  Memory memory;
  memory.write32(0x5000, 0x00000013);  // nop encoding, any bytes would do
  const Memory::Image image = memory.capture();

  FetchPageCache cache;
  std::uint32_t window = 0;
  ASSERT_TRUE(cache.refill(memory, 0x5000, &window));
  EXPECT_EQ(window, 0x00000013u);
  EXPECT_TRUE(cache.lookup(0x5000, &window));

  memory.restore(image);
  // The cached PageRef's epoch is stale: lookup must miss, never hand out a
  // pointer into a page map that was just rebuilt.
  EXPECT_FALSE(cache.lookup(0x5000, &window));
  ASSERT_TRUE(cache.refill(memory, 0x5000, &window));
  EXPECT_EQ(window, 0x00000013u);
  EXPECT_TRUE(cache.lookup(0x5000, &window));

  cache.invalidate();
  EXPECT_FALSE(cache.lookup(0x5000, &window));
}

/// One fixed access mix: mapped reads/writes (page-cache lanes), unmapped
/// probes of a recurring device page (negative cache), and a fresh unmapped
/// page (negative-cache fill).
void run_suffix_ops(Memory& memory) {
  for (int i = 0; i < 8; ++i) {
    (void)memory.read64(0x1000 + 8 * static_cast<Addr>(i));
    memory.write64(0x1008, 0x5150 + static_cast<std::uint64_t>(i));
    (void)memory.read32(0xF000'0000);  // unmapped MMIO poll, recurring
  }
  (void)memory.read8(0xE000'0000 + 0x123);  // unmapped, first touch
  (void)memory.read8(0xE000'0000 + 0x124);  // …now a negative-cache hit
}

TEST(MemoryCowTest, StatLanesContinueBitExactlyAfterRestore) {
  const auto run_prefix_ops = [](Memory& memory) {
    memory.write64(0x1000, 0x1234);
    memory.write64(0x1040, 0x5678);
    (void)memory.read64(0x1000);
    (void)memory.read32(0xF000'0000);  // primes the negative cache
  };

  // Path A: prefix, capture, suffix on the same memory.
  Memory through;
  run_prefix_ops(through);
  const Memory::Image image = through.capture();
  run_suffix_ops(through);

  // Path B: fork from the image, then the identical suffix.
  Memory forked;
  forked.restore(image);
  run_suffix_ops(forked);

  // Path C: uninterrupted control — no capture at all.
  Memory control;
  run_prefix_ops(control);
  run_suffix_ops(control);

  // The capture/restore seam must be invisible in every counter: same
  // page-cache hits/misses, same negative-cache hits, same unmapped reads.
  EXPECT_EQ(through.stats(), control.stats());
  EXPECT_EQ(forked.stats(), control.stats());
  EXPECT_EQ(forked.read64(0x1008), through.read64(0x1008));
}

TEST(MemoryCowTest, RestoreCarriesFlagsAndStats) {
  Memory memory;
  memory.set_fast_path_enabled(false);
  memory.set_strict_unmapped(true);
  memory.write64(0x6000, 42);
  (void)memory.read64(0x6000);
  const Memory::Image image = memory.capture();
  EXPECT_FALSE(image.fast_path);
  EXPECT_TRUE(image.strict_unmapped);

  Memory restored;
  restored.restore(image);
  EXPECT_FALSE(restored.fast_path_enabled());
  EXPECT_TRUE(restored.strict_unmapped());
  EXPECT_EQ(restored.stats(), memory.stats());
  EXPECT_THROW((void)restored.read64(0xDEAD'0000), std::out_of_range);
}

}  // namespace
}  // namespace titan::sim

// Ibex model: RV32IMC instruction-set simulator with the cycle model of the
// OpenTitan secure microcontroller (paper Sec. III-B).
//
// Timing parameters follow the paper's own measurements:
//   * 45 cycles from doorbell assertion to the first ISR instruction when
//     waking from sleep (Sec. V-B: "it takes 45 cycles from when the host
//     core set the doorbell interrupt bit ... to when the Ibex core wakes
//     up from sleep");
//   * ~5 cycles per RoT-private scratchpad access, ~12 cycles per SoC-memory
//     access through the TL2AXI bridge (both come from the bus model);
//   * 2-stage pipeline: taken branches/jumps refetch (+2 cycles);
//   * single-cycle multiplier, 37-cycle iterative divider (Ibex default).
//
// All memory traffic goes through a soc::Crossbar, so the Mem.RoT / Mem.SoC
// attribution of Table I falls out of the address map.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "rv/isa.hpp"
#include "sim/decode_cache.hpp"
#include "sim/types.hpp"
#include "soc/bus.hpp"

namespace titan::ibex {

using sim::Addr;
using sim::Cycle;

struct IbexConfig {
  std::uint32_t reset_pc = 0;
  std::uint32_t reset_sp = 0;
  /// Doorbell-to-ISR latency when the core sleeps in WFI.
  std::uint32_t wakeup_latency = 45;
  /// Trap entry cost when the core is awake (pipeline flush + vector fetch).
  std::uint32_t trap_entry_latency = 4;
  std::uint32_t taken_cf_penalty = 2;  ///< Extra cycles for taken branch/jump.
  std::uint32_t mul_cycles = 1;
  std::uint32_t div_cycles = 37;
};

/// One retired instruction with its timing, for firmware cost attribution.
struct IbexStep {
  std::uint32_t pc = 0;
  rv::Inst inst;
  Cycle cycles = 0;           ///< Total cycles charged to this step.
  Cycle mem_cycles = 0;       ///< Portion spent on the data-memory access.
  std::optional<Addr> mem_addr;  ///< Effective address of a load/store.
  bool irq_entry = false;     ///< This step was a trap entry, not an insn.
  bool retired = true;
};

class IbexCore {
 public:
  IbexCore(const IbexConfig& config, soc::Crossbar& bus);

  /// Execute one step (instruction or trap entry) and advance the clock.
  IbexStep step();

  /// Level-triggered external interrupt line (from the RoT PLIC).
  void set_irq_line(bool asserted) { irq_line_ = asserted; }
  [[nodiscard]] bool irq_line() const { return irq_line_; }

  [[nodiscard]] bool sleeping() const { return sleeping_; }
  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] Cycle cycle() const { return cycle_; }
  [[nodiscard]] std::uint64_t instret() const { return instret_; }
  [[nodiscard]] std::uint32_t pc() const { return pc_; }
  void set_pc(std::uint32_t pc) { pc_ = pc; }

  [[nodiscard]] std::uint32_t reg(unsigned index) const { return regs_[index]; }
  void set_reg(unsigned index, std::uint32_t value) {
    if (index != 0) regs_[index] = value;
  }

  [[nodiscard]] std::uint32_t csr(std::uint32_t number) const;
  void set_csr(std::uint32_t number, std::uint32_t value);

  /// Fast-forward the clock while asleep (the SoC top level uses this to
  /// skip idle RoT time between doorbells).
  void advance_clock(Cycle cycles) { cycle_ += cycles; }

  /// Decoded-instruction cache (shared design with the CVA6 model; entries
  /// are validated against the raw fetch window, so firmware reload or
  /// self-modifying stores invalidate exactly).
  [[nodiscard]] const sim::DecodeCache& decode_cache() const {
    return decode_cache_;
  }
  void set_decode_cache_enabled(bool enabled) { decode_cache_enabled_ = enabled; }

  /// Checkpoint support: architectural registers, CSRs, clock, sleep/halt
  /// flags and the decode-cache contents.  The fetch-page cache is reset on
  /// load (stat-neutral refill).
  void save_state(sim::SnapshotWriter& writer) const {
    for (const std::uint32_t reg : regs_) {
      writer.u32(reg);
    }
    writer.u32(pc_);
    writer.u64(cycle_);
    writer.u64(instret_);
    writer.u32(mstatus_);
    writer.u32(mie_);
    writer.u32(mtvec_);
    writer.u32(mscratch_);
    writer.u32(mepc_);
    writer.u32(mcause_);
    writer.boolean(irq_line_);
    writer.boolean(sleeping_);
    writer.boolean(halted_);
    decode_cache_.save_state(writer);
    writer.boolean(decode_cache_enabled_);
  }
  void load_state(sim::SnapshotReader& reader) {
    for (std::uint32_t& reg : regs_) {
      reg = reader.u32();
    }
    pc_ = reader.u32();
    cycle_ = reader.u64();
    instret_ = reader.u64();
    mstatus_ = reader.u32();
    mie_ = reader.u32();
    mtvec_ = reader.u32();
    mscratch_ = reader.u32();
    mepc_ = reader.u32();
    mcause_ = reader.u32();
    irq_line_ = reader.boolean();
    sleeping_ = reader.boolean();
    halted_ = reader.boolean();
    decode_cache_.load_state(reader);
    decode_cache_enabled_ = reader.boolean();
    fetch_cache_.invalidate();
  }

 private:
  IbexStep take_trap();
  [[nodiscard]] std::uint32_t fetch_window(std::uint32_t addr);
  void execute(const rv::Inst& inst, IbexStep& info);

  IbexConfig config_;
  soc::Crossbar& bus_;

  std::uint32_t regs_[32]{};
  std::uint32_t pc_;
  Cycle cycle_ = 0;
  std::uint64_t instret_ = 0;

  // Machine-mode CSRs (modelled subset).
  std::uint32_t mstatus_ = 0;
  std::uint32_t mie_ = 0;
  std::uint32_t mtvec_ = 0;
  std::uint32_t mscratch_ = 0;
  std::uint32_t mepc_ = 0;
  std::uint32_t mcause_ = 0;

  bool irq_line_ = false;
  bool sleeping_ = false;
  bool halted_ = false;

  sim::DecodeCache decode_cache_{rv::Xlen::k32, 2048};
  bool decode_cache_enabled_ = true;
  /// Hoisted fetch-page probe (see sim::FetchPageCache): engaged when the
  /// PC's region decodes to plain memory (the firmware ROM) past the
  /// crossbar.  Timing is unchanged — fetch latency is hidden by the
  /// prefetch buffer and charged via the taken-branch penalty.
  sim::FetchPageCache fetch_cache_;
};

/// mstatus/mie bit positions used by the model.
inline constexpr std::uint32_t kMstatusMie = 1u << 3;
inline constexpr std::uint32_t kMstatusMpie = 1u << 7;
inline constexpr std::uint32_t kMieMeie = 1u << 11;
inline constexpr std::uint32_t kMcauseExtIrq = 0x8000000Bu;

}  // namespace titan::ibex

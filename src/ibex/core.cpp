#include "ibex/core.hpp"

#include "rv/decode.hpp"
#include "rv/isa.hpp"

namespace titan::ibex {

namespace {

std::int32_t s32(std::uint32_t value) { return static_cast<std::int32_t>(value); }

}  // namespace

IbexCore::IbexCore(const IbexConfig& config, soc::Crossbar& bus)
    : config_(config), bus_(bus), pc_(config.reset_pc) {
  regs_[2] = config.reset_sp;
}

std::uint32_t IbexCore::csr(std::uint32_t number) const {
  switch (number) {
    case rv::csr::kMstatus: return mstatus_;
    case rv::csr::kMie: return mie_;
    case rv::csr::kMtvec: return mtvec_;
    case rv::csr::kMscratch: return mscratch_;
    case rv::csr::kMepc: return mepc_;
    case rv::csr::kMcause: return mcause_;
    case rv::csr::kMcycle: return static_cast<std::uint32_t>(cycle_);
    case rv::csr::kMinstret: return static_cast<std::uint32_t>(instret_);
    case rv::csr::kMhartid: return 0;
    default: return 0;
  }
}

void IbexCore::set_csr(std::uint32_t number, std::uint32_t value) {
  switch (number) {
    case rv::csr::kMstatus: mstatus_ = value; break;
    case rv::csr::kMie: mie_ = value; break;
    case rv::csr::kMtvec: mtvec_ = value; break;
    case rv::csr::kMscratch: mscratch_ = value; break;
    case rv::csr::kMepc: mepc_ = value; break;
    case rv::csr::kMcause: mcause_ = value; break;
    default: break;
  }
}

IbexStep IbexCore::take_trap() {
  IbexStep info;
  info.pc = pc_;
  info.irq_entry = true;
  info.retired = false;
  info.cycles = sleeping_ ? config_.wakeup_latency : config_.trap_entry_latency;

  mepc_ = pc_;
  mcause_ = kMcauseExtIrq;
  // MPIE <- MIE, MIE <- 0.
  if ((mstatus_ & kMstatusMie) != 0) {
    mstatus_ |= kMstatusMpie;
  } else {
    mstatus_ &= ~kMstatusMpie;
  }
  mstatus_ &= ~kMstatusMie;
  pc_ = mtvec_ & ~0x3u;
  sleeping_ = false;
  cycle_ += info.cycles;
  return info;
}

std::uint32_t IbexCore::fetch_window(std::uint32_t addr) {
  // Hoisted fast path: the window never leaves the cached page (and the
  // page never leaves its mapped region, guarded on refill), which is at
  // least as strict as the per-halfword decode below.
  std::uint32_t window;
  if (fetch_cache_.lookup(addr, &window)) [[likely]] {
    return window;
  }
  const std::uint64_t page_base = addr & ~(sim::Memory::kPageSize - 1);
  const auto target = bus_.fetch_window_target(addr);
  if (target.memory != nullptr && target.region.base <= page_base &&
      page_base + sim::Memory::kPageSize <= target.region.end() &&
      fetch_cache_.refill(*target.memory, addr, &window)) {
    return window;
  }
  // The prefetch buffer hides instruction-fetch latency in steady state; we
  // charge fetch time only through the taken-branch penalty.  The high half
  // is fetched only for uncompressed encodings: a single 4-byte read would
  // be routed by the low address alone and could reach past the end of a
  // mapped region, which the crossbar's per-halfword decode never allows.
  const std::uint32_t low = static_cast<std::uint32_t>(bus_.read(addr, 2).value);
  if ((low & 3) != 3) {
    return low;
  }
  const std::uint32_t high =
      static_cast<std::uint32_t>(bus_.read(addr + 2, 2).value);
  return low | (high << 16);
}

IbexStep IbexCore::step() {
  if (halted_) {
    IbexStep info;
    info.retired = false;
    return info;
  }

  const bool irq_enabled =
      (mstatus_ & kMstatusMie) != 0 && (mie_ & kMieMeie) != 0;
  if (irq_line_ && irq_enabled) {
    return take_trap();
  }
  if (sleeping_) {
    IbexStep info;
    info.retired = false;
    info.cycles = 1;
    cycle_ += 1;
    return info;
  }

  const std::uint32_t window = fetch_window(pc_);
  rv::Inst uncached;
  const rv::Inst* decoded;
  if (decode_cache_enabled_) {
    decoded = &decode_cache_.decode(pc_, window);
  } else {
    uncached = rv::decode(window, rv::Xlen::k32);
    decoded = &uncached;
  }
  const rv::Inst& inst = *decoded;

  IbexStep info;
  info.pc = pc_;
  info.inst = inst;
  info.cycles = 1;

  execute(inst, info);
  ++instret_;
  cycle_ += info.cycles;
  return info;
}

void IbexCore::execute(const rv::Inst& inst, IbexStep& info) {
  using rv::Op;
  const std::uint32_t rs1 = regs_[inst.rs1];
  const std::uint32_t rs2 = regs_[inst.rs2];
  std::uint32_t next_pc = pc_ + inst.len;
  std::uint32_t rd_value = 0;
  bool writes_rd = true;

  auto mem_read = [&](Addr addr, unsigned size) {
    const soc::BusResponse response = bus_.read(addr, size);
    info.mem_addr = addr;
    info.mem_cycles = response.latency;
    info.cycles += response.latency;
    return response.value;
  };
  auto mem_write = [&](Addr addr, unsigned size, std::uint64_t value) {
    const soc::BusResponse response = bus_.write(addr, size, value);
    info.mem_addr = addr;
    info.mem_cycles = response.latency;
    info.cycles += response.latency;
  };
  auto ea = [&] { return rs1 + static_cast<std::uint32_t>(inst.imm); };
  auto take_cf = [&](std::uint32_t target) {
    next_pc = target;
    info.cycles += config_.taken_cf_penalty;
  };

  switch (inst.op) {
    case Op::kLui: rd_value = static_cast<std::uint32_t>(inst.imm); break;
    case Op::kAuipc: rd_value = pc_ + static_cast<std::uint32_t>(inst.imm); break;
    case Op::kJal:
      rd_value = pc_ + inst.len;
      take_cf(pc_ + static_cast<std::uint32_t>(inst.imm));
      break;
    case Op::kJalr:
      rd_value = pc_ + inst.len;
      take_cf((rs1 + static_cast<std::uint32_t>(inst.imm)) & ~1u);
      break;
    case Op::kBeq: writes_rd = false; if (rs1 == rs2) take_cf(pc_ + static_cast<std::uint32_t>(inst.imm)); break;
    case Op::kBne: writes_rd = false; if (rs1 != rs2) take_cf(pc_ + static_cast<std::uint32_t>(inst.imm)); break;
    case Op::kBlt: writes_rd = false; if (s32(rs1) < s32(rs2)) take_cf(pc_ + static_cast<std::uint32_t>(inst.imm)); break;
    case Op::kBge: writes_rd = false; if (s32(rs1) >= s32(rs2)) take_cf(pc_ + static_cast<std::uint32_t>(inst.imm)); break;
    case Op::kBltu: writes_rd = false; if (rs1 < rs2) take_cf(pc_ + static_cast<std::uint32_t>(inst.imm)); break;
    case Op::kBgeu: writes_rd = false; if (rs1 >= rs2) take_cf(pc_ + static_cast<std::uint32_t>(inst.imm)); break;
    case Op::kLb:
      rd_value = static_cast<std::uint32_t>(static_cast<std::int32_t>(
          static_cast<std::int8_t>(mem_read(ea(), 1))));
      break;
    case Op::kLh:
      rd_value = static_cast<std::uint32_t>(static_cast<std::int32_t>(
          static_cast<std::int16_t>(mem_read(ea(), 2))));
      break;
    case Op::kLw:
      rd_value = static_cast<std::uint32_t>(mem_read(ea(), 4));
      break;
    case Op::kLbu: rd_value = static_cast<std::uint32_t>(mem_read(ea(), 1)); break;
    case Op::kLhu: rd_value = static_cast<std::uint32_t>(mem_read(ea(), 2)); break;
    case Op::kSb: writes_rd = false; mem_write(ea(), 1, rs2); break;
    case Op::kSh: writes_rd = false; mem_write(ea(), 2, rs2); break;
    case Op::kSw: writes_rd = false; mem_write(ea(), 4, rs2); break;
    case Op::kAddi: rd_value = rs1 + static_cast<std::uint32_t>(inst.imm); break;
    case Op::kSlti: rd_value = s32(rs1) < inst.imm ? 1 : 0; break;
    case Op::kSltiu: rd_value = rs1 < static_cast<std::uint32_t>(inst.imm) ? 1 : 0; break;
    case Op::kXori: rd_value = rs1 ^ static_cast<std::uint32_t>(inst.imm); break;
    case Op::kOri: rd_value = rs1 | static_cast<std::uint32_t>(inst.imm); break;
    case Op::kAndi: rd_value = rs1 & static_cast<std::uint32_t>(inst.imm); break;
    case Op::kSlli: rd_value = rs1 << (inst.imm & 31); break;
    case Op::kSrli: rd_value = rs1 >> (inst.imm & 31); break;
    case Op::kSrai: rd_value = static_cast<std::uint32_t>(s32(rs1) >> (inst.imm & 31)); break;
    case Op::kAdd: rd_value = rs1 + rs2; break;
    case Op::kSub: rd_value = rs1 - rs2; break;
    case Op::kSll: rd_value = rs1 << (rs2 & 31); break;
    case Op::kSlt: rd_value = s32(rs1) < s32(rs2) ? 1 : 0; break;
    case Op::kSltu: rd_value = rs1 < rs2 ? 1 : 0; break;
    case Op::kXor: rd_value = rs1 ^ rs2; break;
    case Op::kSrl: rd_value = rs1 >> (rs2 & 31); break;
    case Op::kSra: rd_value = static_cast<std::uint32_t>(s32(rs1) >> (rs2 & 31)); break;
    case Op::kOr: rd_value = rs1 | rs2; break;
    case Op::kAnd: rd_value = rs1 & rs2; break;
    case Op::kFence: writes_rd = false; break;
    case Op::kEcall:
    case Op::kEbreak:
      writes_rd = false;
      halted_ = true;
      break;
    case Op::kMret:
      writes_rd = false;
      next_pc = mepc_;
      if ((mstatus_ & kMstatusMpie) != 0) {
        mstatus_ |= kMstatusMie;
      } else {
        mstatus_ &= ~kMstatusMie;
      }
      mstatus_ |= kMstatusMpie;
      info.cycles += config_.taken_cf_penalty;
      break;
    case Op::kWfi:
      writes_rd = false;
      sleeping_ = true;
      break;
    case Op::kCsrrw: {
      const std::uint32_t old = csr(static_cast<std::uint32_t>(inst.imm));
      set_csr(static_cast<std::uint32_t>(inst.imm), rs1);
      rd_value = old;
      break;
    }
    case Op::kCsrrs: {
      const std::uint32_t old = csr(static_cast<std::uint32_t>(inst.imm));
      if (inst.rs1 != 0) {
        set_csr(static_cast<std::uint32_t>(inst.imm), old | rs1);
      }
      rd_value = old;
      break;
    }
    case Op::kCsrrc: {
      const std::uint32_t old = csr(static_cast<std::uint32_t>(inst.imm));
      if (inst.rs1 != 0) {
        set_csr(static_cast<std::uint32_t>(inst.imm), old & ~rs1);
      }
      rd_value = old;
      break;
    }
    case Op::kCsrrwi: {
      const std::uint32_t old = csr(static_cast<std::uint32_t>(inst.imm));
      set_csr(static_cast<std::uint32_t>(inst.imm), inst.rs1);
      rd_value = old;
      break;
    }
    case Op::kCsrrsi: {
      const std::uint32_t old = csr(static_cast<std::uint32_t>(inst.imm));
      if (inst.rs1 != 0) {
        set_csr(static_cast<std::uint32_t>(inst.imm), old | inst.rs1);
      }
      rd_value = old;
      break;
    }
    case Op::kCsrrci: {
      const std::uint32_t old = csr(static_cast<std::uint32_t>(inst.imm));
      if (inst.rs1 != 0) {
        set_csr(static_cast<std::uint32_t>(inst.imm), old & ~static_cast<std::uint32_t>(inst.rs1));
      }
      rd_value = old;
      break;
    }
    case Op::kMul:
      rd_value = rs1 * rs2;
      info.cycles += config_.mul_cycles - 1;
      break;
    case Op::kMulh:
      rd_value = static_cast<std::uint32_t>(
          (static_cast<std::int64_t>(s32(rs1)) * s32(rs2)) >> 32);
      info.cycles += config_.mul_cycles - 1;
      break;
    case Op::kMulhsu:
      rd_value = static_cast<std::uint32_t>(
          (static_cast<std::int64_t>(s32(rs1)) * static_cast<std::uint64_t>(rs2)) >> 32);
      info.cycles += config_.mul_cycles - 1;
      break;
    case Op::kMulhu:
      rd_value = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(rs1) * rs2) >> 32);
      info.cycles += config_.mul_cycles - 1;
      break;
    case Op::kDiv:
      rd_value = rs2 == 0 ? 0xFFFFFFFFu
                 : (rs1 == 0x80000000u && rs2 == 0xFFFFFFFFu)
                     ? 0x80000000u
                     : static_cast<std::uint32_t>(s32(rs1) / s32(rs2));
      info.cycles += config_.div_cycles - 1;
      break;
    case Op::kDivu:
      rd_value = rs2 == 0 ? 0xFFFFFFFFu : rs1 / rs2;
      info.cycles += config_.div_cycles - 1;
      break;
    case Op::kRem:
      rd_value = rs2 == 0 ? rs1
                 : (rs1 == 0x80000000u && rs2 == 0xFFFFFFFFu)
                     ? 0
                     : static_cast<std::uint32_t>(s32(rs1) % s32(rs2));
      info.cycles += config_.div_cycles - 1;
      break;
    case Op::kRemu:
      rd_value = rs2 == 0 ? rs1 : rs1 % rs2;
      info.cycles += config_.div_cycles - 1;
      break;
    default:
      // Illegal instruction or RV64-only op: halt with no architectural
      // effects (the firmware images never contain these).
      writes_rd = false;
      halted_ = true;
      break;
  }

  if (writes_rd && inst.rd != 0) {
    regs_[inst.rd] = rd_value;
  }
  pc_ = next_pc;
}

}  // namespace titan::ibex

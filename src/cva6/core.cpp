#include "cva6/core.hpp"

#include <stdexcept>

#include "rv/decode.hpp"

namespace titan::cva6 {

namespace {

std::int64_t s64(std::uint64_t value) { return static_cast<std::int64_t>(value); }

std::uint64_t sext32(std::uint32_t value) {
  return static_cast<std::uint64_t>(
      static_cast<std::int64_t>(static_cast<std::int32_t>(value)));
}

}  // namespace

Cva6Core::Cva6Core(const Cva6Config& config, sim::Memory& memory)
    : config_(config), memory_(memory), pc_(config.reset_pc) {
  if (config_.rob_depth == 0) {
    throw std::invalid_argument("Cva6Core: rob_depth must be >= 1");
  }
  regs_[2] = config.reset_sp;
  rob_.resize(config_.rob_depth);
}

std::uint32_t Cva6Core::latency_of(const rv::Inst& inst) const {
  using rv::Op;
  switch (inst.op) {
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu:
    case Op::kLhu: case Op::kLwu: case Op::kLd:
      return config_.load_cycles;
    case Op::kSb: case Op::kSh: case Op::kSw: case Op::kSd:
      return config_.store_cycles;
    case Op::kMul: case Op::kMulh: case Op::kMulhsu: case Op::kMulhu:
    case Op::kMulw:
      return config_.mul_cycles;
    case Op::kDiv: case Op::kDivu: case Op::kRem: case Op::kRemu:
    case Op::kDivw: case Op::kDivuw: case Op::kRemw: case Op::kRemuw:
      return config_.div_cycles;
    default:
      return 1;
  }
}

void Cva6Core::issue_one() {
  if (halted_) {
    return;
  }
  if (instret_ >= config_.max_instructions) {
    throw std::runtime_error("Cva6Core: instruction budget exhausted");
  }

  // One instruction-lane page probe yields the whole fetch window; the
  // decode cache skips rv::decode whenever the window's encoding matches.
  const std::uint32_t window = fetch_window(pc_);
  rv::Inst uncached;
  const rv::Inst* decoded;
  if (decode_cache_enabled_) {
    decoded = &decode_cache_.decode(pc_, window);
  } else {
    uncached = rv::decode(window, rv::Xlen::k64);
    decoded = &uncached;
  }
  const rv::Inst& inst = *decoded;

  // Construct the entry in place in its ring slot (issue order == slot
  // order; the caller guarantees a free slot).
  RobEntry& rob_entry = rob_at(rob_size_);
  ScoreboardEntry& entry = rob_entry.entry;
  entry.pc = pc_;
  entry.inst = inst;
  entry.next_pc = pc_ + inst.len;
  entry.kind = rv::classify(inst);

  execute(inst, entry);
  ++instret_;

  std::uint32_t latency = latency_of(inst);
  if (entry.kind != rv::CfKind::kNone && entry.target != entry.next_pc) {
    latency += config_.taken_cf_penalty;
  }

  // In-order single-issue without result pipelining: an instruction holds
  // the execute stage for its full latency (CVA6's in-order back-end stalls
  // on use, and its divider is iterative), so issue serialises by latency.
  issue_ready_ = std::max(issue_ready_, cycle_);
  rob_entry.ready = issue_ready_ + latency - 1;
  issue_ready_ += latency;
  if (rv::cfi_relevant(entry.kind)) {
    ++rob_cfi_count_;
  }
  ++rob_size_;
}

std::uint32_t Cva6Core::fetch_window(std::uint64_t pc) {
  std::uint32_t window;
  if (fetch_cache_.lookup(pc, &window) ||
      fetch_cache_.refill(memory_, pc, &window)) [[likely]] {
    return window;
  }
  // Page straddle, unmapped page, or seed-mode memory: the full probe also
  // handles strict-mode accounting.
  return memory_.fetch32(pc);
}

void Cva6Core::execute(const rv::Inst& inst, ScoreboardEntry& entry) {
  using rv::Op;
  const std::uint64_t rs1 = regs_[inst.rs1];
  const std::uint64_t rs2 = regs_[inst.rs2];
  const std::uint64_t imm = static_cast<std::uint64_t>(inst.imm);
  std::uint64_t next_pc = entry.next_pc;
  std::uint64_t rd_value = 0;
  bool writes_rd = true;

  const std::uint64_t ea = rs1 + imm;

  // PMP check for data accesses (access fault on denial, paper Sec. VI).
  const bool is_load = inst.op >= Op::kLb && inst.op <= Op::kLd;
  const bool is_store = inst.op >= Op::kSb && inst.op <= Op::kSd;
  if (pmp_ != nullptr && (is_load || is_store)) {
    const auto kind = is_load ? soc::PmpAccess::kRead : soc::PmpAccess::kWrite;
    if (!pmp_->check(ea, kind)) {
      access_fault_ = true;
      halted_ = true;
      exit_code_ = 0xACC;
      entry.target = entry.next_pc;
      return;
    }
  }

  switch (inst.op) {
    case Op::kLui: rd_value = imm; break;
    case Op::kAuipc: rd_value = entry.pc + imm; break;
    case Op::kJal:
      rd_value = entry.next_pc;
      next_pc = entry.pc + imm;
      break;
    case Op::kJalr:
      rd_value = entry.next_pc;
      next_pc = ea & ~std::uint64_t{1};
      break;
    case Op::kBeq: writes_rd = false; if (rs1 == rs2) next_pc = entry.pc + imm; break;
    case Op::kBne: writes_rd = false; if (rs1 != rs2) next_pc = entry.pc + imm; break;
    case Op::kBlt: writes_rd = false; if (s64(rs1) < s64(rs2)) next_pc = entry.pc + imm; break;
    case Op::kBge: writes_rd = false; if (s64(rs1) >= s64(rs2)) next_pc = entry.pc + imm; break;
    case Op::kBltu: writes_rd = false; if (rs1 < rs2) next_pc = entry.pc + imm; break;
    case Op::kBgeu: writes_rd = false; if (rs1 >= rs2) next_pc = entry.pc + imm; break;
    case Op::kLb: rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int8_t>(memory_.read8(ea)))); break;
    case Op::kLh: rd_value = static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int16_t>(memory_.read16(ea)))); break;
    case Op::kLw: rd_value = sext32(memory_.read32(ea)); break;
    case Op::kLbu: rd_value = memory_.read8(ea); break;
    case Op::kLhu: rd_value = memory_.read16(ea); break;
    case Op::kLwu: rd_value = memory_.read32(ea); break;
    case Op::kLd: rd_value = memory_.read64(ea); break;
    case Op::kSb: writes_rd = false; memory_.write8(ea, static_cast<std::uint8_t>(rs2)); break;
    case Op::kSh: writes_rd = false; memory_.write16(ea, static_cast<std::uint16_t>(rs2)); break;
    case Op::kSw: writes_rd = false; memory_.write32(ea, static_cast<std::uint32_t>(rs2)); break;
    case Op::kSd: writes_rd = false; memory_.write64(ea, rs2); break;
    case Op::kAddi: rd_value = rs1 + imm; break;
    case Op::kSlti: rd_value = s64(rs1) < inst.imm ? 1 : 0; break;
    case Op::kSltiu: rd_value = rs1 < imm ? 1 : 0; break;
    case Op::kXori: rd_value = rs1 ^ imm; break;
    case Op::kOri: rd_value = rs1 | imm; break;
    case Op::kAndi: rd_value = rs1 & imm; break;
    case Op::kSlli: rd_value = rs1 << (imm & 63); break;
    case Op::kSrli: rd_value = rs1 >> (imm & 63); break;
    case Op::kSrai: rd_value = static_cast<std::uint64_t>(s64(rs1) >> (imm & 63)); break;
    case Op::kAdd: rd_value = rs1 + rs2; break;
    case Op::kSub: rd_value = rs1 - rs2; break;
    case Op::kSll: rd_value = rs1 << (rs2 & 63); break;
    case Op::kSlt: rd_value = s64(rs1) < s64(rs2) ? 1 : 0; break;
    case Op::kSltu: rd_value = rs1 < rs2 ? 1 : 0; break;
    case Op::kXor: rd_value = rs1 ^ rs2; break;
    case Op::kSrl: rd_value = rs1 >> (rs2 & 63); break;
    case Op::kSra: rd_value = static_cast<std::uint64_t>(s64(rs1) >> (rs2 & 63)); break;
    case Op::kOr: rd_value = rs1 | rs2; break;
    case Op::kAnd: rd_value = rs1 & rs2; break;
    case Op::kAddiw: rd_value = sext32(static_cast<std::uint32_t>(rs1 + imm)); break;
    case Op::kSlliw: rd_value = sext32(static_cast<std::uint32_t>(rs1) << (imm & 31)); break;
    case Op::kSrliw: rd_value = sext32(static_cast<std::uint32_t>(rs1) >> (imm & 31)); break;
    case Op::kSraiw: rd_value = sext32(static_cast<std::uint32_t>(static_cast<std::int32_t>(static_cast<std::uint32_t>(rs1)) >> (imm & 31))); break;
    case Op::kAddw: rd_value = sext32(static_cast<std::uint32_t>(rs1 + rs2)); break;
    case Op::kSubw: rd_value = sext32(static_cast<std::uint32_t>(rs1 - rs2)); break;
    case Op::kSllw: rd_value = sext32(static_cast<std::uint32_t>(rs1) << (rs2 & 31)); break;
    case Op::kSrlw: rd_value = sext32(static_cast<std::uint32_t>(rs1) >> (rs2 & 31)); break;
    case Op::kSraw: rd_value = sext32(static_cast<std::uint32_t>(static_cast<std::int32_t>(static_cast<std::uint32_t>(rs1)) >> (rs2 & 31))); break;
    case Op::kFence: writes_rd = false; break;
    case Op::kEcall:
      writes_rd = false;
      halted_ = true;
      exit_code_ = regs_[10];
      break;
    case Op::kEbreak:
      writes_rd = false;
      halted_ = true;
      exit_code_ = 0xDEAD;
      break;
    case Op::kMul: rd_value = rs1 * rs2; break;
    case Op::kMulh: rd_value = static_cast<std::uint64_t>((static_cast<__int128>(s64(rs1)) * s64(rs2)) >> 64); break;
    case Op::kMulhsu: rd_value = static_cast<std::uint64_t>((static_cast<__int128>(s64(rs1)) * static_cast<unsigned __int128>(rs2)) >> 64); break;
    case Op::kMulhu: rd_value = static_cast<std::uint64_t>((static_cast<unsigned __int128>(rs1) * rs2) >> 64); break;
    case Op::kDiv:
      rd_value = rs2 == 0 ? ~std::uint64_t{0}
                 : (s64(rs1) == INT64_MIN && s64(rs2) == -1)
                     ? rs1
                     : static_cast<std::uint64_t>(s64(rs1) / s64(rs2));
      break;
    case Op::kDivu: rd_value = rs2 == 0 ? ~std::uint64_t{0} : rs1 / rs2; break;
    case Op::kRem:
      rd_value = rs2 == 0 ? rs1
                 : (s64(rs1) == INT64_MIN && s64(rs2) == -1)
                     ? 0
                     : static_cast<std::uint64_t>(s64(rs1) % s64(rs2));
      break;
    case Op::kRemu: rd_value = rs2 == 0 ? rs1 : rs1 % rs2; break;
    case Op::kMulw: rd_value = sext32(static_cast<std::uint32_t>(rs1) * static_cast<std::uint32_t>(rs2)); break;
    case Op::kDivw: {
      const auto a = static_cast<std::int32_t>(rs1);
      const auto b = static_cast<std::int32_t>(rs2);
      rd_value = b == 0 ? ~std::uint64_t{0}
                 : (a == INT32_MIN && b == -1) ? sext32(static_cast<std::uint32_t>(a))
                                               : sext32(static_cast<std::uint32_t>(a / b));
      break;
    }
    case Op::kDivuw: {
      const auto a = static_cast<std::uint32_t>(rs1);
      const auto b = static_cast<std::uint32_t>(rs2);
      rd_value = b == 0 ? ~std::uint64_t{0} : sext32(a / b);
      break;
    }
    case Op::kRemw: {
      const auto a = static_cast<std::int32_t>(rs1);
      const auto b = static_cast<std::int32_t>(rs2);
      rd_value = b == 0 ? sext32(static_cast<std::uint32_t>(a))
                 : (a == INT32_MIN && b == -1) ? 0
                                               : sext32(static_cast<std::uint32_t>(a % b));
      break;
    }
    case Op::kRemuw: {
      const auto a = static_cast<std::uint32_t>(rs1);
      const auto b = static_cast<std::uint32_t>(rs2);
      rd_value = b == 0 ? sext32(a) : sext32(a % b);
      break;
    }
    case Op::kCsrrw: case Op::kCsrrs: case Op::kCsrrc:
    case Op::kCsrrwi: case Op::kCsrrsi: case Op::kCsrrci:
      // The host workloads only read hart id / cycle counters; return 0.
      rd_value = 0;
      break;
    case Op::kMret: case Op::kWfi:
      writes_rd = false;
      break;
    case Op::kIllegal:
      writes_rd = false;
      halted_ = true;
      exit_code_ = 0xBAD;
      break;
  }

  if (writes_rd && inst.rd != 0) {
    regs_[inst.rd] = rd_value;
  }
  entry.target = next_pc;
  pc_ = next_pc;
}

std::span<const ScoreboardEntry> Cva6Core::commit_candidates() {
  candidates_.clear();
  for (std::size_t index = 0; index < rob_size_; ++index) {
    const RobEntry& rob_entry = rob_at(index);
    if (rob_entry.ready > cycle_ || candidates_.size() >= config_.commit_width) {
      break;
    }
    candidates_.push_back(rob_entry.entry);
  }
  return candidates_;
}

void Cva6Core::retire(unsigned count) {
  if (count < candidates_.size()) {
    ++stall_cycles_;
  }
  for (unsigned i = 0; i < count; ++i) {
    const RobEntry& front = rob_at(0);
    if (trace_enabled_ || trace_sink_) {
      record_commit(front.entry);
    }
    if (rv::cfi_relevant(front.entry.kind)) {
      --rob_cfi_count_;
    }
    rob_pop_front();
  }
}

void Cva6Core::record_commit(const ScoreboardEntry& entry) {
  CommitRecord record;
  record.cycle = cycle_;
  record.pc = entry.pc;
  record.encoding = entry.inst.expanded;
  record.kind = entry.kind;
  record.next_pc = entry.next_pc;
  record.target = entry.target;
  if (trace_sink_) {
    trace_sink_(record);
  }
  if (!trace_enabled_) {
    return;
  }
  if (trace_ring_capacity_ == 0) {
    trace_.push_back(record);
    return;
  }
  if (trace_.size() < trace_ring_capacity_) {
    trace_.push_back(record);
    return;
  }
  // Ring full: overwrite the oldest record in place, bounded memory.
  trace_[trace_ring_head_] = record;
  trace_ring_head_ = (trace_ring_head_ + 1) % trace_ring_capacity_;
  ++trace_dropped_;
}

void Cva6Core::set_trace_ring_capacity(std::size_t capacity) {
  trace_ring_capacity_ = capacity;
  trace_ring_head_ = 0;
  trace_dropped_ = 0;
  trace_.clear();
  if (capacity != 0) {
    trace_.reserve(capacity);
  }
}

std::vector<CommitRecord> Cva6Core::ordered_trace() const {
  std::vector<CommitRecord> ordered;
  ordered.reserve(trace_.size());
  if (trace_ring_capacity_ == 0 || trace_.size() < trace_ring_capacity_) {
    ordered = trace_;
    return ordered;
  }
  // The ring wrapped: oldest record sits at the head cursor.
  ordered.insert(ordered.end(), trace_.begin() + static_cast<std::ptrdiff_t>(trace_ring_head_),
                 trace_.end());
  ordered.insert(ordered.end(), trace_.begin(),
                 trace_.begin() + static_cast<std::ptrdiff_t>(trace_ring_head_));
  return ordered;
}

void Cva6Core::tick() {
  // Refill the ROB (front-end runs ahead of commit).
  while (rob_size_ < config_.rob_depth && !halted_) {
    issue_one();
  }
  ++cycle_;
}

Cva6Core::FastForwardResult Cva6Core::run_until_event(Cycle limit) {
  FastForwardResult result;
  if (rob_cfi_count_ > 0) {
    return result;  // A CFI entry may already be a commit candidate.
  }
  while (cycle_ < limit) {
    if (halted_ && rob_size_ == 0) {
      break;  // program_done(): the caller's run loop exits here too.
    }
    // Retire the ready prefix (in order, up to commit_width) — every entry
    // is non-CFI by the loop invariant, so the external arbiter would have
    // allowed all of them and recorded no stall.
    unsigned retired = 0;
    while (retired < config_.commit_width && rob_size_ != 0 &&
           rob_at(0).ready <= cycle_) {
      if (trace_enabled_ || trace_sink_) [[unlikely]] {
        record_commit(rob_at(0).entry);
      }
      rob_pop_front();
      ++retired;
    }
    result.port0_scans += (retired + 1) / 2;
    result.port1_scans += retired / 2;
    if (retired == 0 && rob_size_ != 0 &&
        (halted_ || rob_size_ >= config_.rob_depth)) {
      // Nothing retires and nothing can issue until the head entry's latency
      // expires: every intermediate cycle is observably empty, so jump the
      // clock straight to the head's ready cycle (or the limit).
      const Cycle next = std::min(rob_at(0).ready, limit);
      result.cycles += next - cycle_;
      cycle_ = next;
      continue;
    }
    // Refill the ROB exactly as tick() would.  A CFI-relevant instruction
    // issued here only becomes a commit candidate next cycle, so this cycle
    // still completes under the fast path.
    while (rob_size_ < config_.rob_depth && !halted_) {
      issue_one();
    }
    ++cycle_;
    ++result.cycles;
    if (rob_cfi_count_ > 0) {
      break;  // Next cycle needs per-cycle CFI arbitration.
    }
  }
  return result;
}

sim::Cycle Cva6Core::run_baseline() {
  while (!program_done()) {
    const auto ready = commit_candidates();
    retire(static_cast<unsigned>(ready.size()));
    tick();
  }
  return cycle_;
}

void Cva6Core::raise_cfi_fault() {
  cfi_fault_ = true;
  halted_ = true;
  exit_code_ = 0xCF1;
}

namespace {

// Decoded entries are serialized verbatim (not re-decoded from the raw
// encoding): with the decode cache disabled nothing guarantees the captured
// Inst came from rv::decode of a normalised key, so re-deriving it could
// diverge for hand-built entries.  The snapshot fingerprint covers the bytes.
void save_entry(sim::SnapshotWriter& writer, const ScoreboardEntry& entry) {
  writer.u64(entry.pc);
  writer.u8(static_cast<std::uint8_t>(entry.inst.op));
  writer.u8(entry.inst.rd);
  writer.u8(entry.inst.rs1);
  writer.u8(entry.inst.rs2);
  writer.u64(static_cast<std::uint64_t>(entry.inst.imm));
  writer.u32(entry.inst.raw);
  writer.u32(entry.inst.expanded);
  writer.u8(entry.inst.len);
  writer.u64(entry.next_pc);
  writer.u64(entry.target);
  writer.u8(static_cast<std::uint8_t>(entry.kind));
}

ScoreboardEntry load_entry(sim::SnapshotReader& reader) {
  ScoreboardEntry entry;
  entry.pc = reader.u64();
  entry.inst.op = static_cast<rv::Op>(reader.u8());
  entry.inst.rd = reader.u8();
  entry.inst.rs1 = reader.u8();
  entry.inst.rs2 = reader.u8();
  entry.inst.imm = static_cast<std::int64_t>(reader.u64());
  entry.inst.raw = reader.u32();
  entry.inst.expanded = reader.u32();
  entry.inst.len = reader.u8();
  entry.next_pc = reader.u64();
  entry.target = reader.u64();
  entry.kind = static_cast<rv::CfKind>(reader.u8());
  return entry;
}

void save_record(sim::SnapshotWriter& writer, const CommitRecord& record) {
  writer.u64(record.cycle);
  writer.u64(record.pc);
  writer.u32(record.encoding);
  writer.u8(static_cast<std::uint8_t>(record.kind));
  writer.u64(record.next_pc);
  writer.u64(record.target);
}

CommitRecord load_record(sim::SnapshotReader& reader) {
  CommitRecord record;
  record.cycle = reader.u64();
  record.pc = reader.u64();
  record.encoding = reader.u32();
  record.kind = static_cast<rv::CfKind>(reader.u8());
  record.next_pc = reader.u64();
  record.target = reader.u64();
  return record;
}

}  // namespace

void Cva6Core::save_state(sim::SnapshotWriter& writer) const {
  for (const std::uint64_t reg : regs_) {
    writer.u64(reg);
  }
  writer.u64(pc_);
  writer.boolean(halted_);
  writer.boolean(cfi_fault_);
  writer.boolean(access_fault_);
  writer.u64(exit_code_);
  writer.u64(cycle_);
  writer.u64(issue_ready_);
  writer.u64(instret_);
  writer.u64(rob_size_);
  for (std::size_t index = 0; index < rob_size_; ++index) {
    std::size_t slot = rob_head_ + index;
    if (slot >= rob_.size()) {
      slot -= rob_.size();
    }
    save_entry(writer, rob_[slot].entry);
    writer.u64(rob_[slot].ready);
  }
  writer.u64(stall_cycles_);
  writer.boolean(trace_enabled_);
  writer.u64(trace_ring_capacity_);
  writer.u64(trace_ring_head_);
  writer.u64(trace_dropped_);
  writer.u64(trace_.size());
  for (const CommitRecord& record : trace_) {
    save_record(writer, record);
  }
  decode_cache_.save_state(writer);
  writer.boolean(decode_cache_enabled_);
}

void Cva6Core::load_state(sim::SnapshotReader& reader) {
  for (std::uint64_t& reg : regs_) {
    reg = reader.u64();
  }
  pc_ = reader.u64();
  halted_ = reader.boolean();
  cfi_fault_ = reader.boolean();
  access_fault_ = reader.boolean();
  exit_code_ = reader.u64();
  cycle_ = reader.u64();
  issue_ready_ = reader.u64();
  instret_ = reader.u64();
  const std::uint64_t rob_count = reader.u64();
  if (rob_count > rob_.size()) {
    throw sim::SnapshotError("cva6: snapshot ROB exceeds configured depth");
  }
  rob_head_ = 0;
  rob_size_ = static_cast<std::size_t>(rob_count);
  rob_cfi_count_ = 0;
  for (std::size_t index = 0; index < rob_size_; ++index) {
    rob_[index].entry = load_entry(reader);
    rob_[index].ready = reader.u64();
    if (rob_[index].entry.cfi_relevant()) {
      ++rob_cfi_count_;
    }
  }
  // Dead at any cycle boundary: commit_candidates() rebuilds it from the ROB
  // before the next retire looks at it.
  candidates_.clear();
  stall_cycles_ = reader.u64();
  trace_enabled_ = reader.boolean();
  trace_ring_capacity_ = static_cast<std::size_t>(reader.u64());
  trace_ring_head_ = static_cast<std::size_t>(reader.u64());
  trace_dropped_ = reader.u64();
  trace_.clear();
  if (trace_ring_capacity_ != 0) {
    trace_.reserve(trace_ring_capacity_);
  }
  const std::uint64_t trace_count = reader.u64();
  for (std::uint64_t i = 0; i < trace_count; ++i) {
    trace_.push_back(load_record(reader));
  }
  decode_cache_.load_state(reader);
  decode_cache_enabled_ = reader.boolean();
  fetch_cache_.invalidate();
}

}  // namespace titan::cva6

// CVA6 host-core model: functional RV64IMC execution with an in-order,
// single-issue, dual-commit timing model (paper Sec. III-A).
//
// The model separates three concerns:
//   * functional execution — a full RV64IMC interpreter over sim::Memory;
//   * timing — each instruction carries a deterministic execute latency
//     (ALU 1, load/store 2, taken control flow +2, mul 2, div 20) and flows
//     through a reorder buffer; the commit stage retires up to two entries
//     per cycle, exactly like CVA6's two commit ports;
//   * commit gating — an external agent (the TitanCFI Queue Controller) is
//     consulted every cycle and may retire fewer entries than are ready,
//     which back-pressures issue once the ROB fills.  This reproduces the
//     paper's "inhibit the commit stage" stall mechanism (Sec. IV-B2).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "cva6/scoreboard.hpp"
#include "sim/decode_cache.hpp"
#include "sim/memory.hpp"
#include "sim/types.hpp"
#include "soc/pmp.hpp"

namespace titan::cva6 {

struct Cva6Config {
  std::uint64_t reset_pc = 0x8000'0000;
  std::uint64_t reset_sp = 0x8800'0000;
  unsigned commit_width = 2;   ///< CVA6 has two commit ports.
  unsigned rob_depth = 8;      ///< Scoreboard/ROB entries.
  std::uint32_t load_cycles = 2;
  std::uint32_t store_cycles = 1;
  std::uint32_t mul_cycles = 2;
  std::uint32_t div_cycles = 20;
  std::uint32_t taken_cf_penalty = 2;  ///< Front-end refill on taken CF.
  std::uint64_t max_instructions = 500'000'000;  ///< Runaway guard.
};

class Cva6Core {
 public:
  Cva6Core(const Cva6Config& config, sim::Memory& memory);

  // ---- Per-cycle co-simulation interface -----------------------------------

  /// Entries ready to retire this cycle (up to commit_width, in order).
  [[nodiscard]] std::span<const ScoreboardEntry> commit_candidates();

  /// Retire the first `count` candidates (the CFI stage may allow fewer than
  /// are ready; 0 == full commit stall this cycle).
  void retire(unsigned count);

  /// Advance one clock edge: issue/execute bookkeeping, cycle++.
  void tick();

  // ---- Whole-run helpers ------------------------------------------------------

  /// Run with no commit gating until ECALL/halt; returns total cycles.
  Cycle run_baseline();

  // ---- Event-driven co-simulation interface --------------------------------

  /// Outcome of a fast-forward quantum (see run_until_event).
  struct FastForwardResult {
    Cycle cycles = 0;  ///< Host cycles advanced (cycle() moved by this much).
    /// Entries the commit-port CFI filters would have scanned on the even /
    /// odd candidate indices — the external Queue Controller replays these
    /// into its per-port statistics.
    std::uint64_t port0_scans = 0;
    std::uint64_t port1_scans = 0;
  };

  /// Batched fast path for the event-driven SoC scheduler: run whole cycles
  /// (retire the ready prefix, refill the ROB, advance the clock) exactly as
  /// the per-cycle interface would with an external arbiter that allows every
  /// candidate — valid precisely while the ROB holds no CFI-relevant entry,
  /// which is what makes "allow everything" the arbiter's only possible
  /// answer.  Stops BEFORE executing a cycle whose commit candidates could
  /// contain a CFI-relevant entry (i.e. as soon as the issue stage has placed
  /// one in the ROB), on program completion, or at the absolute cycle
  /// `limit`.  Returns zero cycles when the ROB already holds a CFI-relevant
  /// entry.  Cycle numbering, retirement timing, traces, and stall counters
  /// are bit-identical to per-cycle stepping; queue-side statistics for the
  /// skipped evaluate() calls are returned for the caller to replay.
  FastForwardResult run_until_event(Cycle limit);

  /// True while the ROB holds at least one CFI-relevant (call / return /
  /// indirect-jump) entry — the window in which the CFI stage must arbitrate
  /// commit per cycle.
  [[nodiscard]] bool has_pending_cfi() const { return rob_cfi_count_ > 0; }

  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] bool program_done() const {
    return halted_ && rob_size_ == 0;
  }
  [[nodiscard]] std::uint64_t exit_code() const { return exit_code_; }
  [[nodiscard]] bool faulted() const { return cfi_fault_; }
  /// Raise the CFI violation exception (from the CFI Log Writer).
  void raise_cfi_fault();

  /// Install a PMP checker consulted on every data access (paper Sec. VI:
  /// the CFI Mailbox region is inhibited for host software).  Null disables
  /// checking.  A denied access halts the core with an access fault.
  void set_pmp(const soc::Pmp* pmp) { pmp_ = pmp; }
  [[nodiscard]] bool access_fault() const { return access_fault_; }

  [[nodiscard]] Cycle cycle() const { return cycle_; }
  [[nodiscard]] std::uint64_t instret() const { return instret_; }
  [[nodiscard]] std::uint64_t reg(unsigned index) const { return regs_[index]; }
  void set_reg(unsigned index, std::uint64_t value) {
    if (index != 0) regs_[index] = value;
  }
  [[nodiscard]] std::uint64_t pc() const { return pc_; }

  /// Cycle-stamped trace of every retired instruction.  In ring mode the
  /// underlying storage is a circular buffer — use ordered_trace() for the
  /// records in retirement order once the capacity may have been exceeded.
  [[nodiscard]] const std::vector<CommitRecord>& trace() const { return trace_; }
  /// Discard the trace (long co-sim runs that only need statistics).
  void set_trace_enabled(bool enabled) { trace_enabled_ = enabled; }

  /// Bound trace memory: keep only the last `capacity` retired records in a
  /// ring buffer (0 restores the default unbounded vector).  Long sweep
  /// workloads retire hundreds of millions of instructions; an unbounded
  /// `std::vector<CommitRecord>` append per retirement does not survive that.
  void set_trace_ring_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t trace_ring_capacity() const { return trace_ring_capacity_; }
  /// Records discarded because the ring wrapped.
  [[nodiscard]] std::uint64_t trace_dropped() const { return trace_dropped_; }
  /// Observe every retirement as it happens, independent of the trace
  /// storage mode — the streaming hook cva6::TraceCsvWriter attaches to.
  /// The sink sees records even when trace storage is disabled or the ring
  /// has wrapped; pass an empty function to detach.  `owner` is an opaque
  /// tag identifying who installed the sink, so a replaced observer can
  /// tell it no longer owns the slot and must not clear it (see
  /// TraceCsvWriter::detach).
  void set_trace_sink(std::function<void(const CommitRecord&)> sink,
                      const void* owner = nullptr) {
    trace_sink_ = std::move(sink);
    trace_sink_owner_ = owner;
  }
  [[nodiscard]] const void* trace_sink_owner() const {
    return trace_sink_owner_;
  }
  /// The retained trace in retirement order (oldest first).  Equals trace()
  /// in unbounded mode; in ring mode it un-rotates the circular storage.
  [[nodiscard]] std::vector<CommitRecord> ordered_trace() const;

  /// Commit-stall cycles observed (cycles where ready work retired short).
  [[nodiscard]] std::uint64_t stall_cycles() const { return stall_cycles_; }

  /// Decoded-instruction cache (PC-indexed, validated against the raw fetch
  /// window, so self-modifying stores and Memory::load invalidate exactly).
  [[nodiscard]] const sim::DecodeCache& decode_cache() const {
    return decode_cache_;
  }
  /// Disable to force a full rv::decode per fetch (the seed behaviour, kept
  /// for before/after benchmarking).
  void set_decode_cache_enabled(bool enabled) { decode_cache_enabled_ = enabled; }

  /// Checkpoint support.  Serializes architectural state, the ROB in logical
  /// (oldest-first) order with full decoded entries, the commit trace in raw
  /// ring-storage order plus ring cursors, the decode-cache contents, and
  /// every counter a RunReport reads.  Memory is captured separately by the
  /// owning SoC; the fetch-page cache is reset on load (stat-neutral).
  void save_state(sim::SnapshotWriter& writer) const;
  void load_state(sim::SnapshotReader& reader);

 private:
  struct RobEntry {
    ScoreboardEntry entry;
    Cycle ready = 0;
  };

  // The ROB is a fixed-capacity ring (hardware-faithful: rob_depth slots,
  // in-order alloc/retire), which keeps the per-instruction hot path free of
  // deque block management and entry copies — issue_one() constructs each
  // entry in place in its slot.
  [[nodiscard]] RobEntry& rob_at(std::size_t index) {
    std::size_t slot = rob_head_ + index;
    if (slot >= rob_.size()) {
      slot -= rob_.size();
    }
    return rob_[slot];
  }
  void rob_pop_front() {
    if (++rob_head_ >= rob_.size()) {
      rob_head_ = 0;
    }
    --rob_size_;
  }

  /// Functionally execute the next instruction and append it to the ROB.
  void issue_one();
  void execute(const rv::Inst& inst, ScoreboardEntry& entry);
  [[nodiscard]] std::uint32_t latency_of(const rv::Inst& inst) const;
  [[nodiscard]] std::uint32_t fetch_window(std::uint64_t pc);
  void record_commit(const ScoreboardEntry& entry);

  Cva6Config config_;
  sim::Memory& memory_;

  std::uint64_t regs_[32]{};
  std::uint64_t pc_;
  bool halted_ = false;
  bool cfi_fault_ = false;
  bool access_fault_ = false;
  const soc::Pmp* pmp_ = nullptr;
  std::uint64_t exit_code_ = 0;

  Cycle cycle_ = 0;
  Cycle issue_ready_ = 0;  ///< Next cycle the issue stage may accept work.
  std::uint64_t instret_ = 0;
  std::vector<RobEntry> rob_;      ///< Ring storage, rob_depth slots.
  std::size_t rob_head_ = 0;       ///< Slot of the oldest live entry.
  std::size_t rob_size_ = 0;       ///< Live entries.
  std::size_t rob_cfi_count_ = 0;  ///< CFI-relevant entries currently live.
  std::vector<ScoreboardEntry> candidates_;
  std::vector<CommitRecord> trace_;
  std::function<void(const CommitRecord&)> trace_sink_;
  const void* trace_sink_owner_ = nullptr;
  bool trace_enabled_ = true;
  std::size_t trace_ring_capacity_ = 0;  ///< 0 = unbounded.
  std::size_t trace_ring_head_ = 0;      ///< Next slot to overwrite.
  std::uint64_t trace_dropped_ = 0;
  std::uint64_t stall_cycles_ = 0;
  sim::DecodeCache decode_cache_{rv::Xlen::k64};
  bool decode_cache_enabled_ = true;
  /// Hoisted fetch-page probe (see sim::FetchPageCache).
  sim::FetchPageCache fetch_cache_;
};

}  // namespace titan::cva6

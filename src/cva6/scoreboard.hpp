// Scoreboard entry and commit-trace record types for the CVA6 host model.
//
// A scoreboard entry is what a CVA6 commit port emits for one retiring
// instruction (paper Sec. IV-B1: "A valid scoreboard entry represents an
// issued instruction which has been executed, and it is ready to be
// retired"); the CFI Filter consumes these.
#pragma once

#include <cstdint>

#include "rv/isa.hpp"
#include "sim/types.hpp"

namespace titan::cva6 {

using sim::Cycle;

struct ScoreboardEntry {
  std::uint64_t pc = 0;
  rv::Inst inst;            ///< Decoded instruction (carries the encoding).
  std::uint64_t next_pc = 0;  ///< Sequential successor (pc + len) — the
                              ///< return site for calls.
  std::uint64_t target = 0;   ///< Actual control-flow destination (== next_pc
                              ///< for non-taken / non-CF instructions).
  rv::CfKind kind = rv::CfKind::kNone;

  [[nodiscard]] bool cfi_relevant() const { return rv::cfi_relevant(kind); }
};

/// One retired instruction in the cycle-accurate commit trace — the exact
/// artefact the paper extracts from RTL simulation and feeds to its
/// trace-driven CFI latency model (Sec. V-C).
struct CommitRecord {
  Cycle cycle = 0;          ///< Commit cycle in the baseline (no-CFI) run.
  std::uint64_t pc = 0;
  std::uint32_t encoding = 0;  ///< Uncompressed encoding (as the commit log).
  rv::CfKind kind = rv::CfKind::kNone;
  std::uint64_t next_pc = 0;
  std::uint64_t target = 0;

  [[nodiscard]] bool cfi_relevant() const { return rv::cfi_relevant(kind); }
};

}  // namespace titan::cva6

#include "cva6/trace_io.hpp"

#include <array>
#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace titan::cva6 {

namespace {

constexpr std::string_view kHeader = "cycle,pc,encoding,kind,next_pc,target";

std::uint64_t parse_u64(std::string_view field, const char* what) {
  std::uint64_t value = 0;
  const bool hex = field.starts_with("0x");
  const std::string_view digits = hex ? field.substr(2) : field;
  const auto [ptr, ec] = std::from_chars(
      digits.data(), digits.data() + digits.size(), value, hex ? 16 : 10);
  if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
    throw std::runtime_error(std::string("trace csv: bad ") + what +
                             " field '" + std::string(field) + "'");
  }
  return value;
}

}  // namespace

std::string_view kind_token(rv::CfKind kind) {
  switch (kind) {
    case rv::CfKind::kNone: return "none";
    case rv::CfKind::kCall: return "call";
    case rv::CfKind::kReturn: return "return";
    case rv::CfKind::kIndirectJump: return "ijump";
    case rv::CfKind::kDirectJump: return "djump";
    case rv::CfKind::kBranch: return "branch";
  }
  return "none";
}

rv::CfKind kind_from_token(std::string_view token) {
  if (token == "none") return rv::CfKind::kNone;
  if (token == "call") return rv::CfKind::kCall;
  if (token == "return") return rv::CfKind::kReturn;
  if (token == "ijump") return rv::CfKind::kIndirectJump;
  if (token == "djump") return rv::CfKind::kDirectJump;
  if (token == "branch") return rv::CfKind::kBranch;
  throw std::runtime_error("trace csv: unknown kind token '" +
                           std::string(token) + "'");
}

void write_trace_csv_row(std::ostream& os, const CommitRecord& record) {
  os << record.cycle << ",0x" << std::hex << record.pc << ",0x"
     << record.encoding << std::dec << "," << kind_token(record.kind)
     << ",0x" << std::hex << record.next_pc << ",0x" << record.target
     << std::dec << "\n";
}

void write_trace_csv(std::ostream& os,
                     const std::vector<CommitRecord>& trace) {
  os << kHeader << "\n";
  for (const CommitRecord& record : trace) {
    write_trace_csv_row(os, record);
  }
}

// ---- TraceCsvWriter ---------------------------------------------------------

TraceCsvWriter::TraceCsvWriter(std::ostream& os, std::size_t buffer_records)
    : os_(os), buffer_capacity_(buffer_records == 0 ? 1 : buffer_records) {
  buffer_.reserve(buffer_capacity_);
  os_ << kHeader << "\n";
}

TraceCsvWriter::~TraceCsvWriter() {
  detach();
  flush();
}

void TraceCsvWriter::attach(Cva6Core& core) {
  detach();
  core_ = &core;
  core.set_trace_sink([this](const CommitRecord& record) { append(record); },
                      this);
}

void TraceCsvWriter::detach() {
  if (core_ != nullptr) {
    // Only clear the sink while we still own it — another writer may have
    // attached since (attach() replaces the sink), and a stale detach must
    // not silently disconnect it mid-run.
    if (core_->trace_sink_owner() == this) {
      core_->set_trace_sink({});
    }
    core_ = nullptr;
  }
}

void TraceCsvWriter::append(const CommitRecord& record) {
  buffer_.push_back(record);
  if (buffer_.size() >= buffer_capacity_) {
    flush();
  }
}

void TraceCsvWriter::flush() {
  for (const CommitRecord& record : buffer_) {
    write_trace_csv_row(os_, record);
  }
  records_written_ += buffer_.size();
  buffer_.clear();
}

std::vector<CommitRecord> read_trace_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    throw std::runtime_error("trace csv: missing or wrong header");
  }
  std::vector<CommitRecord> trace;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::array<std::string_view, 6> fields;
    std::size_t start = 0;
    for (std::size_t field_index = 0; field_index < 6; ++field_index) {
      const std::size_t comma = line.find(',', start);
      const bool last = field_index == 5;
      if (last != (comma == std::string::npos)) {
        throw std::runtime_error("trace csv: wrong field count in '" + line +
                                 "'");
      }
      fields[field_index] =
          std::string_view(line).substr(start, comma - start);
      start = comma + 1;
    }
    CommitRecord record;
    record.cycle = parse_u64(fields[0], "cycle");
    record.pc = parse_u64(fields[1], "pc");
    record.encoding = static_cast<std::uint32_t>(parse_u64(fields[2], "encoding"));
    record.kind = kind_from_token(fields[3]);
    record.next_pc = parse_u64(fields[4], "next_pc");
    record.target = parse_u64(fields[5], "target");
    trace.push_back(record);
  }
  return trace;
}

}  // namespace titan::cva6

// Commit-trace serialisation (CSV).
//
// The paper's evaluation flow is trace-driven: extract a cycle-accurate
// commit trace once, then replay it against CFI latency models (Sec. V-C).
// These helpers let traces cross tool boundaries — dump a co-sim run,
// archive it, reload it for model sweeps — and double as the archival
// format for EXPERIMENTS.md artefacts.
//
// Format: header line, then one row per retired instruction:
//   cycle,pc,encoding,kind,next_pc,target
// with hex fields 0x-prefixed and `kind` as a stable lowercase token.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cva6/scoreboard.hpp"

namespace titan::cva6 {

void write_trace_csv(std::ostream& os, const std::vector<CommitRecord>& trace);

/// Parses a trace written by write_trace_csv.  Throws std::runtime_error on
/// malformed input (wrong header, bad field count, unknown kind token).
[[nodiscard]] std::vector<CommitRecord> read_trace_csv(std::istream& is);

/// Token mapping used by the CSV format.
[[nodiscard]] std::string_view kind_token(rv::CfKind kind);
[[nodiscard]] rv::CfKind kind_from_token(std::string_view token);

}  // namespace titan::cva6

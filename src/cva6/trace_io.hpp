// Commit-trace serialisation (CSV).
//
// The paper's evaluation flow is trace-driven: extract a cycle-accurate
// commit trace once, then replay it against CFI latency models (Sec. V-C).
// These helpers let traces cross tool boundaries — dump a co-sim run,
// archive it, reload it for model sweeps — and double as the archival
// format for EXPERIMENTS.md artefacts.
//
// Format: header line, then one row per retired instruction:
//   cycle,pc,encoding,kind,next_pc,target
// with hex fields 0x-prefixed and `kind` as a stable lowercase token.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cva6/core.hpp"
#include "cva6/scoreboard.hpp"

namespace titan::cva6 {

void write_trace_csv(std::ostream& os, const std::vector<CommitRecord>& trace);

/// One CSV row in the canonical format (shared by the batch and streaming
/// writers, so the two outputs are byte-identical).
void write_trace_csv_row(std::ostream& os, const CommitRecord& record);

/// Streaming CSV writer over the live commit stream: attach() registers the
/// writer as the core's trace sink, every retirement is buffered, and the
/// buffer flushes to the stream whenever it fills — so an unbounded workload
/// produces its full trace in bounded memory, even when the core's own trace
/// storage is a small ring (set_trace_ring_capacity) or disabled entirely.
/// The output is byte-identical to write_trace_csv over the same records.
///
/// Lifetime: an attached core must outlive the writer (or the writer must
/// detach() first) — the writer deregisters itself from the core on
/// destruction.  Attaching a second writer to the same core replaces the
/// first; the replaced writer notices (owner-tagged sink) and its later
/// detach()/destruction leaves the new writer connected.
class TraceCsvWriter {
 public:
  /// Writes the CSV header immediately.  `buffer_records` bounds memory:
  /// the writer holds at most that many records before flushing.
  explicit TraceCsvWriter(std::ostream& os, std::size_t buffer_records = 4096);
  ~TraceCsvWriter();  ///< Flushes and detaches.

  TraceCsvWriter(const TraceCsvWriter&) = delete;
  TraceCsvWriter& operator=(const TraceCsvWriter&) = delete;

  /// Stream every future retirement of `core` into this writer.  Replaces
  /// any previously attached sink on that core.
  void attach(Cva6Core& core);
  /// Stop observing the attached core (safe to call when not attached).
  void detach();

  /// Append one record (buffered; flushes when the buffer fills).
  void append(const CommitRecord& record);
  /// Drain the buffer to the stream.
  void flush();

  [[nodiscard]] std::uint64_t records_written() const {
    return records_written_;
  }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

 private:
  std::ostream& os_;
  std::size_t buffer_capacity_;
  std::vector<CommitRecord> buffer_;
  std::uint64_t records_written_ = 0;
  Cva6Core* core_ = nullptr;
};

/// Parses a trace written by write_trace_csv.  Throws std::runtime_error on
/// malformed input (wrong header, bad field count, unknown kind token).
[[nodiscard]] std::vector<CommitRecord> read_trace_csv(std::istream& is);

/// Token mapping used by the CSV format.
[[nodiscard]] std::string_view kind_token(rv::CfKind kind);
[[nodiscard]] rv::CfKind kind_from_token(std::string_view token);

}  // namespace titan::cva6

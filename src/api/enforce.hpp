// API-boundary enforcement for bench/ and examples/ translation units.
//
// Include this header LAST in every bench and example.  From this point on
// the compiler rejects any mention of the raw construction surface the
// Scenario API replaces — naming SocConfig, FirmwareConfig, the firmware
// generator, or the config enums after this line is a hard compile error
// (GCC/Clang `#pragma poison`).  That is the "no bench pairs
// SocConfig+FirmwareConfig by hand anymore" guarantee, enforced at compile
// time rather than by review; tests/check_api_boundary.cmake additionally
// verifies every bench/example file actually includes this header.
//
// The poison only applies to tokens AFTER the pragma, so library headers
// included above (which legitimately define and use these names) are
// unaffected.  Tests are exempt: they exercise the raw layer on purpose.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC poison SocConfig
#pragma GCC poison FirmwareConfig
#pragma GCC poison build_firmware
#pragma GCC poison FwVariant
#pragma GCC poison RotFabric
#pragma GCC poison SocTop
#endif

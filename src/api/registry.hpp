// ScenarioRegistry — named scenarios and declarative scenario queries.
//
// Every (workload x firmware x fabric x depth x burst) point the benches and
// examples exercise is registered here once, under a stable name and a set
// of tags.  A bench's point grid is a registry query ("all scenarios tagged
// fig1_liveness"), not a hand-maintained table in the bench source, so
// adding a scenario to a sweep is one registration — not an edit to four
// benches in lock-step.
//
// A ScenarioSet's deterministic serialization IS the sweep-report identity:
// header() hashes the scenario names into the grid hash and the full
// scenario serializations into the config fingerprint, which is what the
// shard-merge skew check compares.  The fingerprint therefore tracks the
// exact configuration objects the simulations ran with.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "api/scenario.hpp"
#include "sim/shard_merge.hpp"

namespace titan::api {

/// An ordered, named collection of scenarios — the typed unit the sweep
/// surface iterates (one grid index per scenario).
class ScenarioSet {
 public:
  ScenarioSet() = default;
  ScenarioSet(std::string bench, std::vector<Scenario> scenarios)
      : bench_(std::move(bench)), scenarios_(std::move(scenarios)) {}

  [[nodiscard]] const std::string& bench() const { return bench_; }
  [[nodiscard]] std::size_t size() const { return scenarios_.size(); }
  [[nodiscard]] bool empty() const { return scenarios_.empty(); }
  [[nodiscard]] const Scenario& operator[](std::size_t index) const {
    return scenarios_[index];
  }
  [[nodiscard]] auto begin() const { return scenarios_.begin(); }
  [[nodiscard]] auto end() const { return scenarios_.end(); }

  /// Report identity derived from the scenarios themselves: grid hash over
  /// the ordered names, config fingerprint over the full serializations.
  [[nodiscard]] sim::SweepDocHeader header() const;

  /// The same set run under `engine`.  Identity (header/fingerprint) is
  /// unchanged — the engine does not alter results — so a lock-step witness
  /// document stays byte-comparable to event-driven shard partials.
  [[nodiscard]] ScenarioSet with_engine(Engine engine) const;

 private:
  std::string bench_;
  std::vector<Scenario> scenarios_;
};

class ScenarioRegistry {
 public:
  ScenarioRegistry() = default;

  /// Register a scenario under its name, with optional query tags.
  /// Registration order is grid order.  Throws ScenarioError on a duplicate
  /// name (two scenarios answering to one name is exactly the ambiguity the
  /// registry exists to remove).
  void add(Scenario scenario, std::vector<std::string> tags = {});

  /// Lookup by exact name; nullptr when unknown.
  [[nodiscard]] const Scenario* find(std::string_view name) const;
  [[nodiscard]] std::vector<std::string_view> names() const;

  /// Declarative grid query: every scenario carrying `tag`, in registration
  /// order, packaged as a set reporting under `bench_name`.
  [[nodiscard]] ScenarioSet query(std::string_view tag,
                                  std::string bench_name) const;

  /// The built-in registry: the paper's liveness grid (tag "fig1_liveness"),
  /// the batched-drain study points (tag "drain_study"), the hysteresis
  /// drain-policy study (tag "drain_hysteresis"), the attack scenarios, the
  /// attack-corpus scoring grid (tag "attack_matrix": generated adversarial
  /// images crossed with chain lengths and enforcement policies), the
  /// ablation co-sim grids (tags "ablation_depth", "ablation_ss"), and the
  /// fault-injection/degradation matrix (tag "fault_matrix").
  [[nodiscard]] static const ScenarioRegistry& global();

 private:
  struct Entry {
    Scenario scenario;
    std::vector<std::string> tags;
  };
  std::vector<Entry> entries_;
};

}  // namespace titan::api

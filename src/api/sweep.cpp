#include "api/sweep.hpp"

#include <iostream>

#include "api/report_schema.hpp"

namespace titan::api {

int write_sweep_documents(const sim::SweepDocHeader& header,
                          const sim::SweepCli& cli,
                          const sim::RowEmitter& emit_row,
                          std::string_view bench_label) {
  if (cli.shard_given) {
    if (!sim::write_document(
            cli.shard_json_path,
            sim::render_shard_document(header, cli.shard, emit_row))) {
      std::cerr << bench_label << ": cannot write " << cli.shard_json_path
                << "\n";
      return 1;
    }
    return 0;
  }
  if (!cli.json_path.empty()) {
    if (!sim::write_document(cli.json_path,
                             sim::render_full_document(header, emit_row))) {
      std::cerr << bench_label << ": cannot write " << cli.json_path << "\n";
      return 1;
    }
  }
  return 0;
}

SweepPlan<RunReport> scenario_sweep_plan(ScenarioSet set) {
  auto shared = std::make_shared<const ScenarioSet>(std::move(set));
  SweepPlan<RunReport> plan;
  plan.header = shared->header();
  plan.point = [shared](std::size_t index) {
    return run_scenario((*shared)[index]);
  };
  plan.emit = [](sim::JsonWriter& json, const RunReport& row, std::size_t) {
    json.begin_object();
    ReportSchema().emit_fields(json, row);
    json.end_object();
  };
  return plan;
}

}  // namespace titan::api

#include "api/run.hpp"

#include <array>

#include "api/report_schema.hpp"

namespace titan::api {

void RunReport::emit_json_fields(sim::JsonWriter& json) const {
  // The field set/order lives in the versioned ReportSchema; this method
  // survives as the schema's default-options shorthand.
  ReportSchema().emit_fields(json, *this);
}

RunReport run_scenario(const Scenario& scenario, const RunHooks& hooks,
                       const RunControl& control) {
  const std::unique_ptr<cfi::SocTop> soc = scenario.make_soc();
  if (hooks.log_capture) {
    soc->log_writer().set_log_capture(hooks.log_capture);
  }
  if (control.cancel != nullptr || control.max_cycles != 0) {
    soc->set_run_limits(control.cancel.get(), control.max_cycles,
                        control.cancel_check_stride);
  }
  if (hooks.configure) {
    hooks.configure(*soc);
  }
  if (const std::shared_ptr<const sim::Snapshot>& snapshot =
          scenario.warm_start()) {
    // A checkpoint is only valid for the exact scenario it was captured
    // from: every config knob, the workload bytes, and the firmware shape
    // are baked into the frozen state.  The embedded identity string makes
    // a mismatch fail loudly instead of silently diverging.
    if (snapshot->scenario != scenario.serialize()) {
      throw ScenarioError(
          "run_scenario: warm-start checkpoint was captured for a different "
          "scenario (" +
          snapshot->scenario + " vs " + scenario.serialize() + ")");
    }
    // Restore AFTER hooks.configure: capture_checkpoint applied the same
    // hooks before its prefix run, and the checkpointed state (e.g. the
    // trace-ring geometry) must win over a fresh configure.
    soc->restore(*snapshot);
    // Replay the prefix's popped log stream so a warm observer sees the
    // identical sequence a cold run's observer would.
    if (hooks.log_capture) {
      std::array<std::uint64_t, cfi::CommitLog::kBeats> beats{};
      for (std::size_t word = 0;
           word + cfi::CommitLog::kBeats <= snapshot->log_words.size();
           word += cfi::CommitLog::kBeats) {
        for (std::size_t beat = 0; beat < beats.size(); ++beat) {
          beats[beat] = snapshot->log_words[word + beat];
        }
        hooks.log_capture(cfi::CommitLog::unpack(beats));
      }
    }
  }
  const cfi::SocRunResult result = soc->run();

  RunReport report;
  report.scenario = scenario.name();
  report.cycles = result.cycles;
  report.instructions = result.instructions;
  report.cf_logs = result.cf_logs;
  report.violations = result.violations;
  report.cfi_fault = result.cfi_fault;
  report.exit_code = result.exit_code;
  report.queue_full_stalls = result.queue_full_stalls;
  report.dual_cf_stalls = result.dual_cf_stalls;
  report.doorbells = result.doorbells;
  report.batches = result.batches;
  report.max_batch = result.max_batch;
  report.mean_queue_occupancy = result.mean_queue_occupancy;
  report.fault_log = result.fault_log;
  report.resilience = result.resilience;
  report.attack = result.attack;
  report.host_memory = soc->host_memory().stats();
  report.decode_hits = soc->host().decode_cache().hits();
  report.decode_misses = soc->host().decode_cache().misses();
  report.rot_instructions = soc->rot().core().instret();
  report.rot_hmac_starts = soc->rot().hmac().starts();
  switch (result.stop) {
    case cfi::StopCause::kCompleted:
      report.stop = RunStop::kCompleted;
      break;
    case cfi::StopCause::kBudget:
      report.stop = RunStop::kBudgetExceeded;
      break;
    case cfi::StopCause::kCancelled:
      report.stop = control.cancel != nullptr &&
                            control.cancel->reason() ==
                                sim::CancelToken::Reason::kDeadline
                        ? RunStop::kDeadlineExceeded
                        : RunStop::kCancelled;
      break;
  }
  return report;
}

}  // namespace titan::api

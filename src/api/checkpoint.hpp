// Checkpoint capture, caching, and file transport for warm-start sweeps.
//
// capture_checkpoint() runs a scenario's prefix once and freezes the full
// SoC state at a loop-top cycle; Scenario::with_warm_start() then forks any
// number of runs from that snapshot, each bit-exact versus a from-scratch
// run on both co-simulation engines.  Memory pages are shared copy-on-write
// between the snapshot and every fork (see sim/snapshot.hpp), so a
// 100-point sweep holds one copy of every page a forked run never writes.
//
// CheckpointCache keys snapshots by Scenario::serialize() — the same
// identity string run_scenario() validates on warm start — so a sweep over
// a mixed grid builds exactly one prefix run per distinct scenario.
//
// The file helpers carry a checkpoint across process boundaries (the
// fork-per-shard driver builds it once in the parent and hands the path to
// its children) in the versioned, fingerprinted blob format; loading a
// truncated, foreign, or version-skewed file throws sim::SnapshotError.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/registry.hpp"
#include "api/run.hpp"
#include "sim/snapshot.hpp"

namespace titan::api {

/// Default warm-up prefix for grid checkpoints: long enough that the RoT has
/// booted and the pipeline carries real state, short enough that the force
/// fire at main-loop exit (programs shorter than the warm-up) stays rare.
inline constexpr sim::Cycle kDefaultWarmupCycle = 2000;

/// Run `scenario` from cycle 0 until the first loop-top cycle >= `at` (or
/// the main-loop exit, if the program finishes first), capture the full SoC
/// state, and stop without draining.  The returned snapshot is sealed
/// (fingerprinted) and carries the scenario identity plus the packed prefix
/// of popped commit logs, which run_scenario() replays on warm start so a
/// forked run's observed log stream matches a cold run's.  `hooks.configure`
/// is applied to the prefix SoC — pass the same hooks the forked runs will
/// use so configuration-dependent state (e.g. trace-ring geometry) matches.
[[nodiscard]] std::shared_ptr<const sim::Snapshot> capture_checkpoint(
    const Scenario& scenario, sim::Cycle at, const RunHooks& hooks = {});

/// Scenario-keyed store of warm-start checkpoints: one prefix simulation per
/// distinct scenario identity, shared by every point forked from it.
class CheckpointCache {
 public:
  /// The cached checkpoint for `scenario`, capturing it (at cycle `at`, with
  /// `hooks`) on first use.  `at` and `hooks` only matter for the capturing
  /// call — later hits return the existing snapshot regardless.
  std::shared_ptr<const sim::Snapshot> warmed(const Scenario& scenario,
                                              sim::Cycle at,
                                              const RunHooks& hooks = {});

  /// The cached checkpoint for `scenario`, or null.
  [[nodiscard]] std::shared_ptr<const sim::Snapshot> find(
      const Scenario& scenario) const;

  /// Add an externally captured (or file-loaded) checkpoint, keyed by its
  /// embedded scenario identity.
  void insert(std::shared_ptr<const sim::Snapshot> snapshot);

  [[nodiscard]] std::size_t size() const { return by_identity_.size(); }
  void clear() { by_identity_.clear(); }

  /// Lookup outcome counters: a hit is a warmed()/find() call answered from
  /// the cache, a miss is one that had to capture (warmed) or came back null
  /// (find).  Atomic so read-side observers (titand's /metrics, bench_micro
  /// --pr7_only) can sample them without synchronising with lookups; note
  /// the map itself is NOT thread-safe — concurrent warmed() calls still
  /// need external locking, which the daemon's service layer provides.
  [[nodiscard]] std::uint64_t hits() const { return hits_.load(); }
  [[nodiscard]] std::uint64_t misses() const { return misses_.load(); }

 private:
  std::map<std::string, std::shared_ptr<const sim::Snapshot>> by_identity_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

/// Write `snapshot` to `path` in the versioned blob format (see
/// sim::Snapshot::to_blob).  Throws std::runtime_error on I/O failure.
void save_checkpoint_file(const sim::Snapshot& snapshot,
                          const std::string& path);

/// Load and fully validate a checkpoint file.  Throws std::runtime_error on
/// I/O failure and sim::SnapshotError on a malformed or corrupted blob.
[[nodiscard]] sim::Snapshot load_checkpoint_file(const std::string& path);

// ---- Grid (sweep) support ---------------------------------------------------

/// Capture one warm-up checkpoint per scenario in `set` (at loop-top cycle
/// `warmup`, or the main-loop exit for shorter programs), in grid order.
[[nodiscard]] std::vector<std::shared_ptr<const sim::Snapshot>>
capture_grid_checkpoints(const ScenarioSet& set, sim::Cycle warmup,
                         const RunHooks& hooks = {});

/// The same set with every scenario forked from its checkpoint in `cache`.
/// Identity (header / config fingerprint) is unchanged — warm start is an
/// execution strategy — so warm shard partials merge byte-identically into a
/// cold serial document.  Throws ScenarioError when `cache` is missing any
/// scenario of the set (a skewed bundle must fail loudly, not silently run
/// that point cold).
[[nodiscard]] ScenarioSet warm_started(const ScenarioSet& set,
                                       const CheckpointCache& cache);

/// Multi-snapshot bundle file: every checkpoint of a sweep grid in one
/// artifact (the fork-per-shard driver builds it once in the parent and
/// hands the path to all K children).  Each entry is a full versioned
/// Snapshot blob, so loading validates every snapshot individually.
void save_checkpoint_bundle(
    const std::vector<std::shared_ptr<const sim::Snapshot>>& snapshots,
    const std::string& path);
[[nodiscard]] std::vector<std::shared_ptr<const sim::Snapshot>>
load_checkpoint_bundle(const std::string& path);

/// Apply the shared checkpoint CLI contract (see sim::SweepCli) to a
/// scenario grid:
///  * --write_checkpoints=PATH: capture the grid's checkpoints at
///    kDefaultWarmupCycle, write the bundle, and return 0 — the bench exits
///    without running the sweep;
///  * --warm_start=PATH: load the bundle and fork every grid point from its
///    checkpoint (replaces `grid`); returns -1 — the bench runs as usual;
///  * neither flag: returns -1 with `grid` untouched.
/// Failures print a message naming `bench_label` and return 1.
[[nodiscard]] int handle_checkpoint_cli(ScenarioSet& grid,
                                        const sim::SweepCli& cli,
                                        std::string_view bench_label);

}  // namespace titan::api

#include "api/registry.hpp"

#include <algorithm>
#include <sstream>

namespace titan::api {

sim::SweepDocHeader ScenarioSet::header() const {
  std::ostringstream grid;
  std::ostringstream config;
  for (const Scenario& scenario : scenarios_) {
    grid << scenario.name() << ';';
    config << scenario.serialize() << ';';
  }
  sim::SweepDocHeader header;
  header.bench = bench_;
  header.total_points = scenarios_.size();
  header.grid_hash = sim::fingerprint_hex(grid.str());
  header.config_fingerprint = sim::fingerprint_hex(config.str());
  return header;
}

ScenarioSet ScenarioSet::with_engine(Engine engine) const {
  std::vector<Scenario> scenarios;
  scenarios.reserve(scenarios_.size());
  for (const Scenario& scenario : scenarios_) {
    scenarios.push_back(scenario.with_engine(engine));
  }
  return ScenarioSet(bench_, std::move(scenarios));
}

void ScenarioRegistry::add(Scenario scenario, std::vector<std::string> tags) {
  if (find(scenario.name()) != nullptr) {
    throw ScenarioError("ScenarioRegistry: duplicate scenario name '" +
                        scenario.name() + "'");
  }
  entries_.push_back(Entry{std::move(scenario), std::move(tags)});
}

const Scenario* ScenarioRegistry::find(std::string_view name) const {
  for (const Entry& entry : entries_) {
    if (entry.scenario.name() == name) {
      return &entry.scenario;
    }
  }
  return nullptr;
}

std::vector<std::string_view> ScenarioRegistry::names() const {
  std::vector<std::string_view> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    names.emplace_back(entry.scenario.name());
  }
  return names;
}

ScenarioSet ScenarioRegistry::query(std::string_view tag,
                                    std::string bench_name) const {
  std::vector<Scenario> scenarios;
  for (const Entry& entry : entries_) {
    if (std::find(entry.tags.begin(), entry.tags.end(), tag) !=
        entry.tags.end()) {
      scenarios.push_back(entry.scenario);
    }
  }
  return ScenarioSet(std::move(bench_name), std::move(scenarios));
}

namespace {

/// Paper Fig. 1 liveness grid: (firmware variant x RoT fabric x drain burst
/// x burst MAC), fib(8) through the full stack at queue depth 8.  The grid
/// the seed kept as a table literal in bench_fig1.
void register_fig1_liveness(ScenarioRegistry& registry) {
  struct Point {
    Firmware firmware;
    Fabric fabric;
    unsigned burst;
    bool mac;
    const char* label;
  };
  constexpr Point kGrid[] = {
      {Firmware::kIrq, Fabric::kBaseline, 1, false, "irq/baseline/burst1"},
      {Firmware::kIrq, Fabric::kBaseline, 8, false, "irq/baseline/burst8"},
      {Firmware::kIrq, Fabric::kBaseline, 8, true, "irq/baseline/burst8+mac"},
      {Firmware::kPolling, Fabric::kBaseline, 1, false,
       "polling/baseline/burst1"},
      {Firmware::kPolling, Fabric::kBaseline, 8, false,
       "polling/baseline/burst8"},
      {Firmware::kPolling, Fabric::kBaseline, 8, true,
       "polling/baseline/burst8+mac"},
      {Firmware::kPolling, Fabric::kOptimized, 1, false,
       "polling/optimized/burst1"},
      {Firmware::kPolling, Fabric::kOptimized, 8, false,
       "polling/optimized/burst8"},
  };
  for (const Point& point : kGrid) {
    registry.add(ScenarioBuilder()
                     .name(point.label)
                     .workload(Workload::fib(8))
                     .firmware(point.firmware)
                     .fabric(point.fabric)
                     .queue_depth(8)
                     .drain_burst(point.burst)
                     .batch_mac(point.mac)
                     .build(),
                 {"fig1_liveness"});
  }
}

/// Batched-drain before/after points (BENCH_PR2.json): fib(10), burst 1 vs 8
/// vs 8+MAC, IRQ firmware at queue depth 8.
void register_drain_study(ScenarioRegistry& registry) {
  struct Point {
    unsigned burst;
    bool mac;
    const char* label;
  };
  constexpr Point kGrid[] = {
      {1, false, "drain/burst1"},
      {8, false, "drain/burst8"},
      {8, true, "drain/burst8_mac"},
  };
  for (const Point& point : kGrid) {
    registry.add(ScenarioBuilder()
                     .name(point.label)
                     .workload(Workload::fib(10))
                     .queue_depth(8)
                     .drain_burst(point.burst)
                     .batch_mac(point.mac)
                     .build(),
                 {"drain_study"});
  }
}

/// Hysteresis drain-policy study (ROADMAP "adaptive drain burst"): fib(10)
/// at burst 8, sweeping the wait-for-k-or-timeout policy against the
/// immediate drain.  Reported by bench_micro --pr5_only as the
/// doorbell/latency trade-off.
void register_drain_hysteresis(ScenarioRegistry& registry) {
  struct Point {
    unsigned wait;
    sim::Cycle timeout;
    const char* label;
  };
  constexpr Point kGrid[] = {
      {0, 0, "hysteresis/off"},
      {4, 256, "hysteresis/w4_t256"},
      {8, 256, "hysteresis/w8_t256"},
      {8, 1024, "hysteresis/w8_t1024"},
  };
  for (const Point& point : kGrid) {
    registry.add(ScenarioBuilder()
                     .name(point.label)
                     .workload(Workload::fib(10))
                     .queue_depth(8)
                     .drain_burst(8)
                     .drain_wait(point.wait, point.timeout)
                     .build(),
                 {"drain_hysteresis"});
  }
}

/// Attack demonstrations.
void register_attacks(ScenarioRegistry& registry) {
  registry.add(ScenarioBuilder()
                   .name("rop_attack")
                   .workload(Workload::rop_victim())
                   .queue_depth(8)
                   .build(),
               {"attack"});
}

/// Ablation co-sim grids (bench_ablation A3/A4): queue-depth cross-check on
/// fib(9) with polling firmware, and shadow-stack geometry on call_chain(120)
/// with IRQ firmware.
void register_ablation(ScenarioRegistry& registry) {
  for (const std::size_t depth : {1u, 2u, 4u, 8u, 16u}) {
    registry.add(ScenarioBuilder()
                     .name("ablation/depth" + std::to_string(depth))
                     .workload(Workload::fib(9))
                     .firmware(Firmware::kPolling)
                     .queue_depth(depth)
                     .build(),
                 {"ablation_depth"});
  }
  struct Geometry {
    unsigned capacity, block;
  };
  constexpr Geometry kGeometries[] = {
      {8, 4}, {16, 8}, {32, 16}, {64, 32}, {128, 64}};
  for (const Geometry& geometry : kGeometries) {
    registry.add(ScenarioBuilder()
                     .name("ablation/ss" + std::to_string(geometry.capacity) +
                           "x" + std::to_string(geometry.block))
                     .workload(Workload::call_chain(120))
                     .shadow_stack(geometry.capacity, geometry.block)
                     .build(),
                 {"ablation_ss"});
  }
}

}  // namespace

const ScenarioRegistry& ScenarioRegistry::global() {
  static const ScenarioRegistry registry = [] {
    ScenarioRegistry built;
    register_fig1_liveness(built);
    register_drain_study(built);
    register_drain_hysteresis(built);
    register_attacks(built);
    register_ablation(built);
    return built;
  }();
  return registry;
}

}  // namespace titan::api

#include "api/registry.hpp"

#include <algorithm>
#include <sstream>

namespace titan::api {

sim::SweepDocHeader ScenarioSet::header() const {
  std::ostringstream grid;
  std::ostringstream config;
  for (const Scenario& scenario : scenarios_) {
    grid << scenario.name() << ';';
    config << scenario.serialize() << ';';
  }
  sim::SweepDocHeader header;
  header.bench = bench_;
  header.total_points = scenarios_.size();
  header.grid_hash = sim::fingerprint_hex(grid.str());
  header.config_fingerprint = sim::fingerprint_hex(config.str());
  return header;
}

ScenarioSet ScenarioSet::with_engine(Engine engine) const {
  std::vector<Scenario> scenarios;
  scenarios.reserve(scenarios_.size());
  for (const Scenario& scenario : scenarios_) {
    scenarios.push_back(scenario.with_engine(engine));
  }
  return ScenarioSet(bench_, std::move(scenarios));
}

void ScenarioRegistry::add(Scenario scenario, std::vector<std::string> tags) {
  if (find(scenario.name()) != nullptr) {
    throw ScenarioError("ScenarioRegistry: duplicate scenario name '" +
                        scenario.name() + "'");
  }
  entries_.push_back(Entry{std::move(scenario), std::move(tags)});
}

const Scenario* ScenarioRegistry::find(std::string_view name) const {
  for (const Entry& entry : entries_) {
    if (entry.scenario.name() == name) {
      return &entry.scenario;
    }
  }
  return nullptr;
}

std::vector<std::string_view> ScenarioRegistry::names() const {
  std::vector<std::string_view> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    names.emplace_back(entry.scenario.name());
  }
  return names;
}

ScenarioSet ScenarioRegistry::query(std::string_view tag,
                                    std::string bench_name) const {
  std::vector<Scenario> scenarios;
  for (const Entry& entry : entries_) {
    if (std::find(entry.tags.begin(), entry.tags.end(), tag) !=
        entry.tags.end()) {
      scenarios.push_back(entry.scenario);
    }
  }
  return ScenarioSet(std::move(bench_name), std::move(scenarios));
}

namespace {

/// Paper Fig. 1 liveness grid: (firmware variant x RoT fabric x drain burst
/// x burst MAC), fib(8) through the full stack at queue depth 8.  The grid
/// the seed kept as a table literal in bench_fig1.
void register_fig1_liveness(ScenarioRegistry& registry) {
  struct Point {
    Firmware firmware;
    Fabric fabric;
    unsigned burst;
    bool mac;
    const char* label;
  };
  constexpr Point kGrid[] = {
      {Firmware::kIrq, Fabric::kBaseline, 1, false, "irq/baseline/burst1"},
      {Firmware::kIrq, Fabric::kBaseline, 8, false, "irq/baseline/burst8"},
      {Firmware::kIrq, Fabric::kBaseline, 8, true, "irq/baseline/burst8+mac"},
      {Firmware::kPolling, Fabric::kBaseline, 1, false,
       "polling/baseline/burst1"},
      {Firmware::kPolling, Fabric::kBaseline, 8, false,
       "polling/baseline/burst8"},
      {Firmware::kPolling, Fabric::kBaseline, 8, true,
       "polling/baseline/burst8+mac"},
      {Firmware::kPolling, Fabric::kOptimized, 1, false,
       "polling/optimized/burst1"},
      {Firmware::kPolling, Fabric::kOptimized, 8, false,
       "polling/optimized/burst8"},
  };
  for (const Point& point : kGrid) {
    registry.add(ScenarioBuilder()
                     .name(point.label)
                     .workload(Workload::fib(8))
                     .firmware(point.firmware)
                     .fabric(point.fabric)
                     .queue_depth(8)
                     .drain_burst(point.burst)
                     .batch_mac(point.mac)
                     .build(),
                 {"fig1_liveness"});
  }
}

/// Batched-drain before/after points (BENCH_PR2.json): fib(10), burst 1 vs 8
/// vs 8+MAC, IRQ firmware at queue depth 8.
void register_drain_study(ScenarioRegistry& registry) {
  struct Point {
    unsigned burst;
    bool mac;
    const char* label;
  };
  constexpr Point kGrid[] = {
      {1, false, "drain/burst1"},
      {8, false, "drain/burst8"},
      {8, true, "drain/burst8_mac"},
  };
  for (const Point& point : kGrid) {
    registry.add(ScenarioBuilder()
                     .name(point.label)
                     .workload(Workload::fib(10))
                     .queue_depth(8)
                     .drain_burst(point.burst)
                     .batch_mac(point.mac)
                     .build(),
                 {"drain_study"});
  }
}

/// Hysteresis drain-policy study (ROADMAP "adaptive drain burst"): fib(10)
/// at burst 8, sweeping the wait-for-k-or-timeout policy against the
/// immediate drain.  Reported by bench_micro --pr5_only as the
/// doorbell/latency trade-off.
void register_drain_hysteresis(ScenarioRegistry& registry) {
  struct Point {
    unsigned wait;
    sim::Cycle timeout;
    const char* label;
  };
  constexpr Point kGrid[] = {
      {0, 0, "hysteresis/off"},
      {4, 256, "hysteresis/w4_t256"},
      {8, 256, "hysteresis/w8_t256"},
      {8, 1024, "hysteresis/w8_t1024"},
  };
  for (const Point& point : kGrid) {
    registry.add(ScenarioBuilder()
                     .name(point.label)
                     .workload(Workload::fib(10))
                     .queue_depth(8)
                     .drain_burst(8)
                     .drain_wait(point.wait, point.timeout)
                     .build(),
                 {"drain_hysteresis"});
  }
}

/// Attack demonstrations.
void register_attacks(ScenarioRegistry& registry) {
  registry.add(ScenarioBuilder()
                   .name("rop_attack")
                   .workload(Workload::rop_victim())
                   .queue_depth(8)
                   .build(),
               {"attack"});
}

/// Attack-corpus scoring matrix (tag "attack_matrix"): generated adversarial
/// images (src/attacks) crossed with chain lengths and enforcement policies.
/// Every point is deterministic (the plan seed fixes the image bit for bit),
/// so the grid doubles as a cross-engine equivalence corpus — replayed under
/// both schedulers by tools/attack_corpus_smoke and AttackCorpus tests.
///
/// Designed coverage, not just detection: the shadow-stack-only jop/ret2reg
/// rows and the fail-open deep-ROP rows are *scored false negatives* — the
/// tracker reports the hijacked edges that retired unflagged instead of
/// letting the miss pass silently.
void register_attack_matrix(ScenarioRegistry& registry) {
  const auto atk = [](const char* name, const char* plan) {
    return ScenarioBuilder().name(name).attack(
        attacks::AttackPlan::parse(plan));
  };
  // ROP chain-length sweep under the paper's lossless back-pressure: the
  // first hijacked return to reach the RoT is flagged regardless of depth.
  registry.add(atk("attacks/rop_L1", "rop@0#1,1").build(), {"attack_matrix"});
  registry.add(atk("attacks/rop_L4", "rop@0#4,1").build(), {"attack_matrix"});
  registry.add(atk("attacks/rop_L8", "rop@0#8,1").build(), {"attack_matrix"});
  registry.add(atk("attacks/rop_L12", "rop@0#12,1").build(),
               {"attack_matrix"});
  // Site / seed diversity: the overwrite lands in a different scaffold
  // function, and a different seed reshapes every function body.
  registry.add(atk("attacks/rop_site3", "rop@3#4,1").build(),
               {"attack_matrix"});
  registry.add(atk("attacks/rop_seed9", "rop@0#4,9").build(),
               {"attack_matrix"});
  // Deep chain against a tiny spilling shadow stack: detection must survive
  // the authenticated spill path.
  registry.add(atk("attacks/rop_L12_ss8x4", "rop@0#12,1")
                   .shadow_stack(8, 4)
                   .build(),
               {"attack_matrix"});
  // Overflow-policy triplet on the deep chain at queue depth 2, where
  // genuine fulls occur.  Fail-open drops hijacked returns unchecked — the
  // scored-false-negative rows — while fail-closed halts before any hijacked
  // edge can slip through.
  registry.add(atk("attacks/rop_L4_failopen", "rop@0#4,1")
                   .queue_depth(2)
                   .overflow_policy(OverflowPolicy::kFailOpen)
                   .build(),
               {"attack_matrix"});
  registry.add(atk("attacks/rop_L12_failopen", "rop@0#12,1")
                   .queue_depth(2)
                   .overflow_policy(OverflowPolicy::kFailOpen)
                   .build(),
               {"attack_matrix"});
  registry.add(atk("attacks/rop_L12_failclosed", "rop@0#12,1")
                   .queue_depth(2)
                   .overflow_policy(OverflowPolicy::kFailClosed)
                   .build(),
               {"attack_matrix"});
  // Stack pivots: the first post-pivot return pops attacker-staged state.
  registry.add(atk("attacks/pivot_L1", "pivot@1#1,2").build(),
               {"attack_matrix"});
  registry.add(atk("attacks/pivot_L6", "pivot@1#6,2").build(),
               {"attack_matrix"});
  registry.add(atk("attacks/pivot_L6_failopen", "pivot@1#6,2")
                   .queue_depth(2)
                   .overflow_policy(OverflowPolicy::kFailOpen)
                   .build(),
               {"attack_matrix"});
  // Partial return-address overwrites: 1-3 corrupted bytes, increasingly
  // far-flung (but always bogus) return targets.
  registry.add(atk("attacks/partial_b1", "partial@2#1,3").build(),
               {"attack_matrix"});
  registry.add(atk("attacks/partial_b2", "partial@2#2,3").build(),
               {"attack_matrix"});
  registry.add(atk("attacks/partial_b3", "partial@2#3,3").build(),
               {"attack_matrix"});
  registry.add(atk("attacks/partial_b3_failopen", "partial@2#3,3")
                   .queue_depth(2)
                   .overflow_policy(OverflowPolicy::kFailOpen)
                   .build(),
               {"attack_matrix"});
  // Forward-edge escapes vs the policy split: the backward-edge shadow stack
  // never sees a corrupted indirect jump (scored false negative), while the
  // jump-table policy — provisioned with the image's legitimate targets —
  // flags it.
  registry.add(atk("attacks/ret2reg_ssonly", "ret2reg@4#0,4").build(),
               {"attack_matrix"});
  registry.add(atk("attacks/ret2reg_jt", "ret2reg@4#0,4")
                   .jump_table(true)
                   .build(),
               {"attack_matrix"});
  registry.add(atk("attacks/jop_s1_ssonly", "jop@1#1,5").build(),
               {"attack_matrix"});
  registry.add(
      atk("attacks/jop_s1_jt", "jop@1#1,5").jump_table(true).build(),
      {"attack_matrix"});
  registry.add(atk("attacks/jop_s3_ssonly", "jop@1#3,5").build(),
               {"attack_matrix"});
  registry.add(
      atk("attacks/jop_s3_jt", "jop@1#3,5").jump_table(true).build(),
      {"attack_matrix"});
  // Firmware / fabric / drain variants: detection is a property of the
  // policy, not of one pipeline configuration.
  registry.add(atk("attacks/rop_L4_polling", "rop@0#4,1")
                   .firmware(Firmware::kPolling)
                   .build(),
               {"attack_matrix"});
  registry.add(atk("attacks/rop_L4_optimized", "rop@0#4,1")
                   .fabric(Fabric::kOptimized)
                   .build(),
               {"attack_matrix"});
  registry.add(atk("attacks/rop_L4_burst8_mac", "rop@0#4,1")
                   .drain_burst(8)
                   .batch_mac(true)
                   .build(),
               {"attack_matrix"});
}

/// Ablation co-sim grids (bench_ablation A3/A4): queue-depth cross-check on
/// fib(9) with polling firmware, and shadow-stack geometry on call_chain(120)
/// with IRQ firmware.
void register_ablation(ScenarioRegistry& registry) {
  for (const std::size_t depth : {1u, 2u, 4u, 8u, 16u}) {
    registry.add(ScenarioBuilder()
                     .name("ablation/depth" + std::to_string(depth))
                     .workload(Workload::fib(9))
                     .firmware(Firmware::kPolling)
                     .queue_depth(depth)
                     .build(),
                 {"ablation_depth"});
  }
  struct Geometry {
    unsigned capacity, block;
  };
  constexpr Geometry kGeometries[] = {
      {8, 4}, {16, 8}, {32, 16}, {64, 32}, {128, 64}};
  for (const Geometry& geometry : kGeometries) {
    registry.add(ScenarioBuilder()
                     .name("ablation/ss" + std::to_string(geometry.capacity) +
                           "x" + std::to_string(geometry.block))
                     .workload(Workload::call_chain(120))
                     .shadow_stack(geometry.capacity, geometry.block)
                     .build(),
                 {"ablation_ss"});
  }
}

/// Fault-injection / graceful-degradation matrix: one scenario per fault
/// site exercising its degradation mechanism, the overflow-policy triplet,
/// and two "all sites at once" stress points (fail-closed vs fail-open).
/// Every point is deterministic (event-ordinal fault plans), so the grid
/// doubles as a cross-engine equivalence corpus: RegistryEquivalence and
/// tools/fault_matrix_smoke replay it under both schedulers and demand
/// bit-identical reports.
void register_fault_matrix(ScenarioRegistry& registry) {
  const auto base = [](const char* name) {
    return ScenarioBuilder().name(name).workload(Workload::fib(8));
  };
  // Doorbell pulse lost in transit: the watchdog re-rings (window 2048 —
  // comfortably above the ~600-cycle healthy round trip, so only the lost
  // pulse retries) and the idempotent BATCH_COUNT handshake absorbs it.
  registry.add(base("faults/doorbell_drop")
                   .drain_burst(4)
                   .doorbell_retry(2048, 3)
                   .faults(sim::FaultPlan::parse("doorbell_drop@1"))
                   .build(),
               {"fault_matrix"});
  // Doorbell duplicated in transit: the second pulse collapses into the
  // pending flag; the writer pairs the injection at verdict read.
  registry.add(base("faults/doorbell_dup")
                   .drain_burst(4)
                   .faults(sim::FaultPlan::parse("doorbell_dup@2"))
                   .build(),
               {"fault_matrix"});
  // Batch-MAC bit corruption without re-request: the RoT blames slot 0 and
  // the pipeline fails closed (cfi_fault, zero false negatives).
  registry.add(base("faults/mac_corrupt_halt")
                   .drain_burst(8)
                   .batch_mac(true)
                   .faults(sim::FaultPlan::parse("mac_corrupt@1#13"))
                   .build(),
               {"fault_matrix"});
  // Same corruption with the re-request protocol: one retransmission, then
  // a clean run.
  registry.add(base("faults/mac_rerequest")
                   .drain_burst(8)
                   .batch_mac(true)
                   .mac_rerequest(true)
                   .faults(sim::FaultPlan::parse("mac_corrupt@1#200"))
                   .build(),
               {"fault_matrix"});
  // Forced-overflow burst (6 push attempts) under each policy.  The lossy
  // policies run at depth 2 where genuine fulls also occur (fail-open's
  // false-negative window is the whole point of that row); fail-closed runs
  // at depth 8 so the *forced* burst — not an incidental early fill — is
  // what trips the halt (ordinal 5 arrives while the queue still has room).
  registry.add(base("faults/overflow_backpressure")
                   .queue_depth(2)
                   .faults(sim::FaultPlan::parse("queue_overflow@5#6"))
                   .build(),
               {"fault_matrix"});
  registry.add(base("faults/overflow_failclosed")
                   .queue_depth(8)
                   .overflow_policy(OverflowPolicy::kFailClosed)
                   .faults(sim::FaultPlan::parse("queue_overflow@5#6"))
                   .build(),
               {"fault_matrix"});
  registry.add(base("faults/overflow_failopen")
                   .queue_depth(2)
                   .overflow_policy(OverflowPolicy::kFailOpen)
                   .faults(sim::FaultPlan::parse("queue_overflow@5#6"))
                   .build(),
               {"fault_matrix"});
  // Queue-word bit flips through the SECDED path: an even param is a
  // single-bit flip (corrected, run unaffected); an odd param adds a second
  // flip (detected-uncorrectable, fails closed).
  registry.add(base("faults/mem_flip_corrected")
                   .faults(sim::FaultPlan::parse("mem_flip@3#42"))
                   .build(),
               {"fault_matrix"});
  registry.add(base("faults/mem_flip_fatal")
                   .faults(sim::FaultPlan::parse("mem_flip@3#43"))
                   .build(),
               {"fault_matrix"});
  // RoT stall (400 cycles) shorter than the watchdog window (2048): the
  // service is late but no retry fires; the injection pairs at verdict
  // read and the stall shows up as degraded cycles.
  registry.add(base("faults/rot_stall")
                   .drain_burst(4)
                   .doorbell_retry(2048, 4)
                   .faults(sim::FaultPlan::parse("rot_stall@0#400"))
                   .build(),
               {"fault_matrix"});
  // Every site in one plan, on a queue deep enough (128 > what the 134-log
  // workload can accumulate) that only the FORCED overflow ever trips the
  // policy.  Timescales force two schedules: the host program retires in
  // ~1k cycles while one RoT round trip costs ~600, so under fail-closed —
  // which never stalls the host — the forced overflow halts the run while
  // batch 0 is still in flight.  The closed plan therefore front-loads
  // every site into batch 0 (ring 0 stalls the RoT, the duplicated pulse
  // is itself dropped in transit and re-rung by the watchdog, MAC transfer
  // 0 is corrupted); nothing is ever dropped, so false negatives are zero
  // by construction, and sites whose pairing needed the verdict read stay
  // injected-but-unpaired when the halt preempts it.  The open plan
  // spreads the same sites across the post-program drain (which fail-open
  // lets finish), so every degradation mechanism runs to completion — and
  // the logs the forced burst drops desynchronise the shadow stack, the
  // honest cost of fail-open on a stateful policy.
  registry.add(base("faults/all_sites_closed")
                   .queue_depth(128)
                   .drain_burst(8)
                   .batch_mac(true)
                   .mac_rerequest(true)
                   .doorbell_retry(512, 4)
                   .overflow_policy(OverflowPolicy::kFailClosed)
                   .faults(sim::FaultPlan::parse(
                       "rot_stall@0#400+doorbell_dup@0+doorbell_drop@1+"
                       "mac_corrupt@0#200+mem_flip@30#42+queue_overflow@120#6"))
                   .build(),
               {"fault_matrix"});
  registry.add(base("faults/all_sites_open")
                   .queue_depth(128)
                   .drain_burst(8)
                   .batch_mac(true)
                   .mac_rerequest(true)
                   .doorbell_retry(512, 4)
                   .overflow_policy(OverflowPolicy::kFailOpen)
                   .faults(sim::FaultPlan::parse(
                       "rot_stall@0#400+doorbell_dup@1+mac_corrupt@2#200+"
                       "doorbell_drop@3+mem_flip@30#42+queue_overflow@120#6"))
                   .build(),
               {"fault_matrix"});
}

}  // namespace

const ScenarioRegistry& ScenarioRegistry::global() {
  static const ScenarioRegistry registry = [] {
    ScenarioRegistry built;
    register_fig1_liveness(built);
    register_drain_study(built);
    register_drain_hysteresis(built);
    register_attacks(built);
    register_attack_matrix(built);
    register_ablation(built);
    register_fault_matrix(built);
    return built;
  }();
  return registry;
}

}  // namespace titan::api

// Scenario deserialization: the inverse of Scenario::serialize() and
// Workload::serialized().
//
// The fingerprint grammar the serializers emit is the repo's canonical
// scenario identity (shard-merge config fingerprints, checkpoint identity
// validation, registry round-trips).  This file makes that grammar a two-way
// street so a wire request can name any buildable scenario by its serialized
// form — and every deserialized scenario flows through ScenarioBuilder's
// build() validation, so the wire surface rejects exactly the combinations
// the programmatic surface rejects, with the same ScenarioError taxonomy.
//
// Strictness rules: every base key must appear exactly once, unknown and
// duplicate keys are errors, and every error message names the offending
// key or token (the wire layer forwards these verbatim in its structured
// `invalid_scenario` responses).
#include <charconv>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "api/scenario.hpp"
#include "attacks/attack.hpp"
#include "sim/fault.hpp"

namespace titan::api {

namespace {

[[noreturn]] void parse_error(const std::string& what) {
  throw ScenarioError("from_serialized: " + what);
}

/// Strict decimal parse; names `what` and the token on failure.
std::uint64_t parse_number(std::string_view what, std::string_view token) {
  std::uint64_t value = 0;
  const auto [end, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || end != token.data() + token.size() ||
      token.empty()) {
    parse_error("malformed number '" + std::string(token) + "' for " +
                std::string(what));
  }
  return value;
}

unsigned parse_unsigned(std::string_view what, std::string_view token) {
  const std::uint64_t value = parse_number(what, token);
  if (value > 0xFFFF'FFFFull) {
    parse_error("value '" + std::string(token) + "' for " + std::string(what) +
                " does not fit 32 bits");
  }
  return static_cast<unsigned>(value);
}

bool parse_flag(std::string_view key, std::string_view token) {
  if (token == "0") {
    return false;
  }
  if (token == "1") {
    return true;
  }
  parse_error("flag '" + std::string(key) + "' must be 0 or 1, got '" +
              std::string(token) + "'");
}

}  // namespace

// ---- Workload ---------------------------------------------------------------

Workload Workload::from_serialized(std::string_view text) {
  if (text.substr(0, 6) == "image:") {
    parse_error(
        "workload '" + std::string(text) +
        "' is an image fingerprint — image workloads carry program bytes the "
        "serialized form only hashes, so they are not wire-constructible");
  }
  const std::size_t open = text.find('(');
  if (open == std::string_view::npos || text.empty() || text.back() != ')') {
    parse_error("malformed workload '" + std::string(text) +
                "' (expected generator(args))");
  }
  const std::string_view generator = text.substr(0, open);
  const std::string_view args_text =
      text.substr(open + 1, text.size() - open - 2);

  std::vector<std::string_view> args;
  if (!args_text.empty()) {
    std::size_t start = 0;
    while (true) {
      const std::size_t comma = args_text.find(',', start);
      if (comma == std::string_view::npos) {
        args.push_back(args_text.substr(start));
        break;
      }
      args.push_back(args_text.substr(start, comma - start));
      start = comma + 1;
    }
  }

  const auto want_args = [&](std::size_t count) {
    if (args.size() != count) {
      parse_error("workload generator '" + std::string(generator) +
                  "' takes " + std::to_string(count) + " argument(s), got " +
                  std::to_string(args.size()) + " in '" + std::string(text) +
                  "'");
    }
  };

  if (generator == "fib") {
    want_args(1);
    return Workload::fib(parse_unsigned("fib argument", args[0]));
  }
  if (generator == "matmul") {
    want_args(1);
    return Workload::matmul(parse_unsigned("matmul argument", args[0]));
  }
  if (generator == "crc32") {
    want_args(1);
    return Workload::crc32(parse_unsigned("crc32 argument", args[0]));
  }
  if (generator == "quicksort") {
    want_args(1);
    return Workload::quicksort(parse_unsigned("quicksort argument", args[0]));
  }
  if (generator == "stats") {
    want_args(1);
    return Workload::stats(parse_unsigned("stats argument", args[0]));
  }
  if (generator == "call_chain") {
    want_args(1);
    return Workload::call_chain(parse_unsigned("call_chain argument", args[0]));
  }
  if (generator == "indirect_dispatch") {
    want_args(1);
    return Workload::indirect_dispatch(
        parse_unsigned("indirect_dispatch argument", args[0]));
  }
  if (generator == "rop_victim") {
    want_args(0);
    return Workload::rop_victim();
  }
  if (generator == "random_callgraph") {
    want_args(3);
    return Workload::random_callgraph(
        parse_number("random_callgraph seed", args[0]),
        parse_unsigned("random_callgraph functions", args[1]),
        parse_flag("random_callgraph inject_rop", args[2]));
  }
  parse_error("unknown workload generator '" + std::string(generator) + "'");
}

// ---- Scenario ---------------------------------------------------------------

Scenario ScenarioBuilder::from_serialized(std::string_view text) {
  constexpr std::string_view kPrefix = "scenario{";
  if (text.substr(0, kPrefix.size()) != kPrefix || text.empty() ||
      text.back() != '}') {
    parse_error("expected 'scenario{...}', got '" + std::string(text) + "'");
  }
  const std::string_view body =
      text.substr(kPrefix.size(), text.size() - kPrefix.size() - 1);

  // Split KEY=VALUE segments on ';'.
  std::vector<std::pair<std::string_view, std::string_view>> fields;
  std::size_t start = 0;
  while (start <= body.size()) {
    std::size_t semi = body.find(';', start);
    if (semi == std::string_view::npos) {
      semi = body.size();
    }
    const std::string_view segment = body.substr(start, semi - start);
    start = semi + 1;
    if (segment.empty()) {
      if (start > body.size()) {
        break;  // Empty body — caught by the missing-key checks below.
      }
      parse_error("empty ';' segment in '" + std::string(text) + "'");
    }
    const std::size_t eq = segment.find('=');
    if (eq == std::string_view::npos) {
      parse_error("segment '" + std::string(segment) +
                  "' is not a key=value pair");
    }
    const std::string_view key = segment.substr(0, eq);
    for (const auto& [seen, unused] : fields) {
      if (seen == key) {
        parse_error("duplicate key '" + std::string(key) + "'");
      }
    }
    fields.emplace_back(key, segment.substr(eq + 1));
    if (start > body.size()) {
      break;
    }
  }

  ScenarioBuilder builder;
  bool macrr = false;
  bool batch_mac = false;
  // `workload=attack` is a sentinel, not a generator: it must pair with an
  // `attack=` key carrying the plan (and vice versa).
  bool attack_workload = false;
  bool have_attack_plan = false;
  // Which of the always-emitted keys have been seen (serialize() emits all
  // of these on every scenario, so a missing one is a malformed identity).
  constexpr std::string_view kRequired[] = {
      "name", "workload", "fw",    "fabric", "queue_depth", "burst", "mac",
      "dwait", "dtimeout", "ss",   "spill",  "jt",          "pmp",   "trace"};
  bool seen[std::size(kRequired)] = {};
  unsigned drain_wait = 0;
  sim::Cycle drain_timeout = 0;
  unsigned ss_capacity = 32;
  unsigned spill_block = 16;
  bool have_geometry = false;

  for (const auto& [key, value] : fields) {
    for (std::size_t i = 0; i < std::size(kRequired); ++i) {
      if (key == kRequired[i]) {
        seen[i] = true;
      }
    }
    if (key == "name") {
      builder.name(std::string(value));
    } else if (key == "workload") {
      if (value == "attack") {
        attack_workload = true;
      } else {
        builder.workload(Workload::from_serialized(value));
      }
    } else if (key == "attack") {
      try {
        builder.attack(attacks::AttackPlan::parse(value));
      } catch (const std::invalid_argument& error) {
        parse_error("malformed attack plan '" + std::string(value) +
                    "': " + error.what());
      }
      have_attack_plan = true;
    } else if (key == "fw") {
      if (value == "irq") {
        builder.firmware(Firmware::kIrq);
      } else if (value == "polling") {
        builder.firmware(Firmware::kPolling);
      } else {
        parse_error("unknown fw '" + std::string(value) +
                    "' (expected irq or polling)");
      }
    } else if (key == "fabric") {
      if (value == "baseline") {
        builder.fabric(Fabric::kBaseline);
      } else if (value == "optimized") {
        builder.fabric(Fabric::kOptimized);
      } else {
        parse_error("unknown fabric '" + std::string(value) +
                    "' (expected baseline or optimized)");
      }
    } else if (key == "queue_depth") {
      builder.queue_depth(parse_unsigned(key, value));
    } else if (key == "burst") {
      builder.drain_burst(parse_unsigned(key, value));
    } else if (key == "mac") {
      batch_mac = parse_flag(key, value);
    } else if (key == "dwait") {
      drain_wait = parse_unsigned(key, value);
    } else if (key == "dtimeout") {
      drain_timeout = parse_number(key, value);
    } else if (key == "ss") {
      ss_capacity = parse_unsigned(key, value);
      have_geometry = true;
    } else if (key == "spill") {
      spill_block = parse_unsigned(key, value);
      have_geometry = true;
    } else if (key == "jt") {
      builder.jump_table(parse_flag(key, value));
    } else if (key == "pmp") {
      builder.pmp(parse_flag(key, value));
    } else if (key == "trace") {
      builder.trace_commits(parse_flag(key, value));
    } else if (key == "faults") {
      try {
        builder.faults(sim::FaultPlan::parse(value));
      } catch (const std::invalid_argument& error) {
        parse_error("malformed fault plan '" + std::string(value) +
                    "': " + error.what());
      }
    } else if (key == "ofp") {
      if (value == "closed") {
        builder.overflow_policy(OverflowPolicy::kFailClosed);
      } else if (value == "open") {
        builder.overflow_policy(OverflowPolicy::kFailOpen);
      } else {
        parse_error("unknown ofp '" + std::string(value) +
                    "' (expected closed or open)");
      }
    } else if (key == "dbretry") {
      const std::size_t slash = value.find('/');
      if (slash == std::string_view::npos) {
        parse_error("malformed dbretry '" + std::string(value) +
                    "' (expected timeout/max_retries)");
      }
      builder.doorbell_retry(parse_number("dbretry timeout",
                                          value.substr(0, slash)),
                             parse_unsigned("dbretry max_retries",
                                            value.substr(slash + 1)));
    } else if (key == "macrr") {
      macrr = parse_flag(key, value);
    } else {
      parse_error("unknown key '" + std::string(key) + "'");
    }
  }

  for (std::size_t i = 0; i < std::size(kRequired); ++i) {
    if (!seen[i]) {
      parse_error("missing required key '" + std::string(kRequired[i]) +
                  "' in '" + std::string(text) + "'");
    }
  }
  if (attack_workload && !have_attack_plan) {
    parse_error("'workload=attack' without an 'attack=' plan in '" +
                std::string(text) + "'");
  }
  if (have_attack_plan && !attack_workload) {
    parse_error("'attack=' plan without 'workload=attack' in '" +
                std::string(text) + "'");
  }
  builder.batch_mac(batch_mac);
  builder.mac_rerequest(macrr);
  builder.drain_wait(drain_wait, drain_timeout);
  if (have_geometry) {
    builder.shadow_stack(ss_capacity, spill_block);
  }
  return builder.build();
}

}  // namespace titan::api

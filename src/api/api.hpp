// Umbrella header for the Scenario API — the public surface benches,
// examples, and external integrators program against:
//
//   * ScenarioBuilder / Scenario  — skew-proof SoC+firmware construction;
//   * ScenarioRegistry / ScenarioSet — named scenarios and declarative grids;
//   * run_scenario() / RunReport  — one unified result type + JSON schema;
//   * OverheadGrid                — typed trace-driven table sweeps;
//   * run_sweep()                 — the one threaded/sharded sweep surface;
//   * ReportSchema                — the versioned RunReport JSON schema;
//   * wire Request/Response       — the versioned scenario-serving envelope.
//
// See README.md "Scenario API" for the quickstart walkthrough.
#pragma once

#include "api/checkpoint.hpp"     // IWYU pragma: export
#include "api/overhead.hpp"       // IWYU pragma: export
#include "api/registry.hpp"       // IWYU pragma: export
#include "api/report_schema.hpp"  // IWYU pragma: export
#include "api/run.hpp"            // IWYU pragma: export
#include "api/scenario.hpp"       // IWYU pragma: export
#include "api/sweep.hpp"          // IWYU pragma: export
#include "api/wire.hpp"           // IWYU pragma: export

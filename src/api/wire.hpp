// Versioned request/response envelope for the scenario-serving wire protocol.
//
// One request per line, one response per line (JSON objects, LF-delimited —
// see src/serve/server.hpp for framing).  The envelope is versioned
// (schema_version, checked on every request) and errors are a closed
// taxonomy of structured codes, not free text: a client can switch on
// `error.code` ("unknown_scenario" vs "invalid_scenario" vs "bad_frame")
// and treat `error.message` as human detail.  The library exceptions map
// onto the taxonomy in one place (error_code_for_exception), so
// api::ScenarioError and sim::SnapshotError surface as the same codes
// everywhere the protocol is spoken.
//
// Request forms (schema_version 1):
//   {"schema_version":1,"id":"r1","op":"ping"}
//   {"schema_version":1,"id":"r2","op":"list"}                 // all scenarios
//   {"schema_version":1,"id":"r3","op":"list","tag":"fault_matrix"}
//   {"schema_version":1,"id":"r4","op":"run","scenario":"drain/burst8"}
//   {"schema_version":1,"id":"r5","op":"run","spec":"scenario{...}"}
//   (optional on run: "engine":"lockstep"|"event")
//
// A "run" response carries the canonical ReportSchema rendering of the
// RunReport as a JSON string field ("report"): the exact bytes a batch
// run_scenario caller would render, JSON-escaped for single-line transport
// and restored verbatim by any JSON parser — which is what keeps the
// served-vs-batch byte-identity witness end to end through the socket.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace titan::api {

/// Wire protocol (envelope) version.  Bump on any incompatible change to
/// the request or response shapes.
inline constexpr int kWireSchemaVersion = 1;

/// Closed error taxonomy of the wire protocol.
enum class WireErrorCode {
  kBadFrame,            ///< Frame is not a parseable JSON object.
  kOversizedFrame,      ///< Frame exceeds the server's size limit.
  kBadRequest,          ///< Valid JSON, invalid envelope (fields/types).
  kUnsupportedVersion,  ///< schema_version this server does not speak.
  kUnknownOp,           ///< op outside {ping, list, run}.
  kUnknownScenario,     ///< run names a scenario the registry lacks.
  kInvalidScenario,     ///< spec rejected by ScenarioBuilder validation.
  kSnapshotError,       ///< warm-start checkpoint invalid or mismatched.
  kShutdown,            ///< server is draining; request not served.
  kInternal,            ///< unexpected server-side failure.
};

/// Stable string form, e.g. "unknown_scenario" (what goes on the wire).
[[nodiscard]] std::string_view wire_error_code_name(WireErrorCode code);

/// Protocol-level failure while parsing or validating a request envelope.
class WireError : public std::runtime_error {
 public:
  WireError(WireErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  [[nodiscard]] WireErrorCode code() const { return code_; }

 private:
  WireErrorCode code_;
};

enum class RequestOp { kPing, kList, kRun };

/// A parsed, validated request envelope.
struct Request {
  int schema_version = kWireSchemaVersion;
  std::string id;        ///< Client-chosen correlation id, echoed verbatim.
  RequestOp op = RequestOp::kPing;
  std::string scenario;  ///< run: registry name (exclusive with spec).
  std::string spec;      ///< run: serialized scenario form.
  std::string engine;    ///< run: "", "lockstep", or "event".
  std::string tag;       ///< list: optional registry tag filter.
};

/// Parse and validate one request line.  Throws WireError with the precise
/// taxonomy code (kBadFrame for non-JSON, kUnsupportedVersion for a version
/// skew, kBadRequest for shape violations — unknown keys included, so a
/// typo'd field fails loudly instead of being silently ignored).
[[nodiscard]] Request parse_request(std::string_view line);

// ---- Response rendering (single-line, no trailing newline) ------------------

/// {"schema_version":1,"id":...,"ok":true,"op":"ping"}
[[nodiscard]] std::string render_ping_response(std::string_view id);

/// {"schema_version":1,...,"op":"list","scenarios":[{"name":...,"spec":...}]}
[[nodiscard]] std::string render_list_response(
    std::string_view id,
    const std::vector<std::pair<std::string, std::string>>& scenarios);

/// {"schema_version":1,...,"op":"run","scenario":...,"warm_start":...,
///  "report":"<json-escaped canonical ReportSchema rendering>"}
[[nodiscard]] std::string render_run_response(std::string_view id,
                                              std::string_view scenario_name,
                                              bool warm_start,
                                              std::string_view report_json);

/// {"schema_version":1,"id":...,"ok":false,"error":{"code":...,"message":...}}
[[nodiscard]] std::string render_error_response(std::string_view id,
                                                WireErrorCode code,
                                                std::string_view message);

}  // namespace titan::api

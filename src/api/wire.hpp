// Versioned request/response envelope for the scenario-serving wire protocol.
//
// One request per line, one response per line (JSON objects, LF-delimited —
// see src/serve/server.hpp for framing).  The envelope is versioned
// (schema_version, checked on every request) and errors are a closed
// taxonomy of structured codes, not free text: a client can switch on
// `error.code` ("unknown_scenario" vs "invalid_scenario" vs "bad_frame")
// and treat `error.message` as human detail.  The library exceptions map
// onto the taxonomy in one place (error_code_for_exception), so
// api::ScenarioError and sim::SnapshotError surface as the same codes
// everywhere the protocol is spoken.
//
// Request forms (schema_version 1):
//   {"schema_version":1,"id":"r1","op":"ping"}
//   {"schema_version":1,"id":"r2","op":"list"}                 // all scenarios
//   {"schema_version":1,"id":"r3","op":"list","tag":"fault_matrix"}
//   {"schema_version":1,"id":"r4","op":"run","scenario":"drain/burst8"}
//   {"schema_version":1,"id":"r5","op":"run","spec":"scenario{...}"}
//   (optional on run: "engine":"lockstep"|"event";
//    "deadline_ms":N   — wall-clock deadline, 0 == already expired;
//    "max_cycles":N    — graceful simulated-cycle budget, N >= 1.
//    Both absent == run to completion, exactly the pre-deadline protocol —
//    the additions are backward-compatible within schema_version 1.)
//
// A "run" response carries the canonical ReportSchema rendering of the
// RunReport as a JSON string field ("report"): the exact bytes a batch
// run_scenario caller would render, JSON-escaped for single-line transport
// and restored verbatim by any JSON parser — which is what keeps the
// served-vs-batch byte-identity witness end to end through the socket.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace titan::api {

/// Wire protocol (envelope) version.  Bump on any incompatible change to
/// the request or response shapes.
inline constexpr int kWireSchemaVersion = 1;

/// Closed error taxonomy of the wire protocol.
enum class WireErrorCode {
  kBadFrame,            ///< Frame is not a parseable JSON object.
  kOversizedFrame,      ///< Frame exceeds the server's size limit.
  kBadRequest,          ///< Valid JSON, invalid envelope (fields/types).
  kUnsupportedVersion,  ///< schema_version this server does not speak.
  kUnknownOp,           ///< op outside {ping, list, run}.
  kUnknownScenario,     ///< run names a scenario the registry lacks.
  kInvalidScenario,     ///< spec rejected by ScenarioBuilder validation.
  kSnapshotError,       ///< warm-start checkpoint invalid or mismatched.
  kOverloaded,          ///< admission control shed the request (retry later).
  kDeadlineExceeded,    ///< per-request deadline expired (cycles so far).
  kBudgetExceeded,      ///< per-request cycle budget reached (cycles so far).
  kCancelled,           ///< run cut off (drain straggler / client vanished).
  kShutdown,            ///< server is draining; request not served.
  kInternal,            ///< unexpected server-side failure.
};

/// Stable string form, e.g. "unknown_scenario" (what goes on the wire).
[[nodiscard]] std::string_view wire_error_code_name(WireErrorCode code);

/// Machine-actionable detail fields on an error response, rendered only
/// when set (old error responses stay byte-identical).
struct ErrorDetail {
  /// Cycles completed before a deadline/budget/cancel stop (has_cycles
  /// gates rendering so "0 cycles" and "absent" stay distinguishable).
  bool has_cycles = false;
  std::uint64_t cycles = 0;
  /// Backoff hint on kOverloaded (0 == absent).
  std::uint64_t retry_after_ms = 0;
};

/// Protocol-level failure while parsing or validating a request envelope.
class WireError : public std::runtime_error {
 public:
  WireError(WireErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  [[nodiscard]] WireErrorCode code() const { return code_; }
  [[nodiscard]] const ErrorDetail& detail() const { return detail_; }

  /// Chainable detail setters (throw WireError(...).with_cycles(n)).
  WireError&& with_cycles(std::uint64_t cycles) && {
    detail_.has_cycles = true;
    detail_.cycles = cycles;
    return std::move(*this);
  }
  WireError&& with_retry_after_ms(std::uint64_t ms) && {
    detail_.retry_after_ms = ms;
    return std::move(*this);
  }

 private:
  WireErrorCode code_;
  ErrorDetail detail_;
};

enum class RequestOp { kPing, kList, kRun };

/// A parsed, validated request envelope.
struct Request {
  int schema_version = kWireSchemaVersion;
  std::string id;        ///< Client-chosen correlation id, echoed verbatim.
  RequestOp op = RequestOp::kPing;
  std::string scenario;  ///< run: registry name (exclusive with spec).
  std::string spec;      ///< run: serialized scenario form.
  std::string engine;    ///< run: "", "lockstep", or "event".
  std::string tag;       ///< list: optional registry tag filter.
  /// run: wall-clock deadline in ms (-1 == none; 0 == already expired, the
  /// canonical "reject unless free" probe).
  std::int64_t deadline_ms = -1;
  /// run: graceful simulated-cycle budget (0 == none).
  std::uint64_t max_cycles = 0;
};

/// Parse and validate one request line.  Throws WireError with the precise
/// taxonomy code (kBadFrame for non-JSON, kUnsupportedVersion for a version
/// skew, kBadRequest for shape violations — unknown keys included, so a
/// typo'd field fails loudly instead of being silently ignored).
[[nodiscard]] Request parse_request(std::string_view line);

// ---- Response rendering (single-line, no trailing newline) ------------------

/// {"schema_version":1,"id":...,"ok":true,"op":"ping"}
[[nodiscard]] std::string render_ping_response(std::string_view id);

/// {"schema_version":1,...,"op":"list","scenarios":[{"name":...,"spec":...}]}
[[nodiscard]] std::string render_list_response(
    std::string_view id,
    const std::vector<std::pair<std::string, std::string>>& scenarios);

/// {"schema_version":1,...,"op":"run","scenario":...,"warm_start":...,
///  "report":"<json-escaped canonical ReportSchema rendering>"}
[[nodiscard]] std::string render_run_response(std::string_view id,
                                              std::string_view scenario_name,
                                              bool warm_start,
                                              std::string_view report_json);

/// {"schema_version":1,"id":...,"ok":false,"error":{"code":...,"message":...
///  [,"cycles":N][,"retry_after_ms":N]}} — detail fields render only when
/// set, so detail-free errors keep their historical bytes.
[[nodiscard]] std::string render_error_response(std::string_view id,
                                                WireErrorCode code,
                                                std::string_view message,
                                                const ErrorDetail& detail = {});

}  // namespace titan::api

#include "api/scenario.hpp"

#include <sstream>

#include "sim/shard_merge.hpp"
#include "soc/mailbox.hpp"
#include "workloads/programs.hpp"

namespace titan::api {

namespace {

cfi::Engine to_cfi(Engine engine) {
  return engine == Engine::kLockStep ? cfi::Engine::kLockStep
                                     : cfi::Engine::kEventDriven;
}

cfi::OverflowPolicy to_cfi(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kFailClosed:
      return cfi::OverflowPolicy::kFailClosed;
    case OverflowPolicy::kFailOpen:
      return cfi::OverflowPolicy::kFailOpen;
    case OverflowPolicy::kBackPressure:
      break;
  }
  return cfi::OverflowPolicy::kBackPressure;
}

}  // namespace

// ---- Workload ---------------------------------------------------------------

Workload Workload::fib(unsigned n) {
  Workload w;
  w.kind_ = Kind::kFib;
  w.param_ = n;
  w.serialized_ = "fib(" + std::to_string(n) + ")";
  return w;
}

Workload Workload::matmul(unsigned n) {
  Workload w;
  w.kind_ = Kind::kMatmul;
  w.param_ = n;
  w.serialized_ = "matmul(" + std::to_string(n) + ")";
  return w;
}

Workload Workload::crc32(unsigned len) {
  Workload w;
  w.kind_ = Kind::kCrc32;
  w.param_ = len;
  w.serialized_ = "crc32(" + std::to_string(len) + ")";
  return w;
}

Workload Workload::quicksort(unsigned n) {
  Workload w;
  w.kind_ = Kind::kQuicksort;
  w.param_ = n;
  w.serialized_ = "quicksort(" + std::to_string(n) + ")";
  return w;
}

Workload Workload::stats(unsigned n) {
  Workload w;
  w.kind_ = Kind::kStats;
  w.param_ = n;
  w.serialized_ = "stats(" + std::to_string(n) + ")";
  return w;
}

Workload Workload::call_chain(unsigned depth) {
  Workload w;
  w.kind_ = Kind::kCallChain;
  w.param_ = depth;
  w.serialized_ = "call_chain(" + std::to_string(depth) + ")";
  return w;
}

Workload Workload::indirect_dispatch(unsigned iterations) {
  Workload w;
  w.kind_ = Kind::kIndirectDispatch;
  w.param_ = iterations;
  w.serialized_ = "indirect_dispatch(" + std::to_string(iterations) + ")";
  return w;
}

Workload Workload::rop_victim() {
  Workload w;
  w.kind_ = Kind::kRopVictim;
  w.serialized_ = "rop_victim()";
  return w;
}

Workload Workload::random_callgraph(std::uint64_t seed, unsigned functions,
                                    bool inject_rop) {
  Workload w;
  w.kind_ = Kind::kRandomCallgraph;
  w.param_ = seed;
  w.functions_ = functions;
  w.inject_rop_ = inject_rop;
  std::ostringstream text;
  text << "random_callgraph(" << seed << ',' << functions << ','
       << (inject_rop ? 1 : 0) << ")";
  w.serialized_ = text.str();
  return w;
}

Workload Workload::image(std::string name, rv::Image image) {
  Workload w;
  w.kind_ = Kind::kImage;
  // Fingerprint the actual bytes (and the base) so the identity follows the
  // program, not just the label.
  std::string blob;
  blob.reserve(image.bytes.size() + 16);
  blob.append(std::to_string(image.base)).push_back(':');
  blob.append(reinterpret_cast<const char*>(image.bytes.data()),
              image.bytes.size());
  w.serialized_ = "image:" + name + ":" + sim::fingerprint_hex(blob);
  w.image_ = std::make_shared<const rv::Image>(std::move(image));
  return w;
}

rv::Image Workload::build() const {
  switch (kind_) {
    case Kind::kFib:
      return workloads::fib_recursive(static_cast<unsigned>(param_));
    case Kind::kMatmul:
      return workloads::matmul(static_cast<unsigned>(param_));
    case Kind::kCrc32:
      return workloads::crc32(static_cast<unsigned>(param_));
    case Kind::kQuicksort:
      return workloads::quicksort(static_cast<unsigned>(param_));
    case Kind::kStats:
      return workloads::stats(static_cast<unsigned>(param_));
    case Kind::kCallChain:
      return workloads::call_chain(static_cast<unsigned>(param_));
    case Kind::kIndirectDispatch:
      return workloads::indirect_dispatch(static_cast<unsigned>(param_));
    case Kind::kRopVictim:
      return workloads::rop_victim();
    case Kind::kRandomCallgraph:
      return workloads::random_callgraph(param_, functions_, inject_rop_);
    case Kind::kImage:
      return *image_;
    case Kind::kUnset:
      break;
  }
  throw ScenarioError("Workload: build() on an unset workload");
}

// ---- Scenario ---------------------------------------------------------------

rv::Image Scenario::workload_image() const {
  if (attack_) {
    return attacks::generate(*attack_).image;
  }
  return workload_.build();
}

rv::Image Scenario::firmware_image() const { return fw::build_firmware(fw_); }

std::unique_ptr<cfi::SocTop> Scenario::make_soc() const {
  return std::make_unique<cfi::SocTop>(soc_, workload_image(),
                                       firmware_image());
}

std::string Scenario::serialize() const {
  std::ostringstream text;
  // An attack scenario has no Workload; the sentinel pairs with the
  // conditional `attack=` key below (from_serialized enforces the pairing).
  text << "scenario{name=" << name_ << ";workload="
       << (attack_ ? std::string_view("attack")
                   : std::string_view(workload_.serialized()))
       << ";fw=" << (fw_.variant == fw::FwVariant::kIrq ? "irq" : "polling")
       << ";fabric="
       << (soc_.fabric == cfi::RotFabric::kBaseline ? "baseline" : "optimized")
       << ";queue_depth=" << soc_.queue_depth << ";burst=" << soc_.drain_burst
       << ";mac=" << (soc_.drain_burst > 1 && soc_.mac_batches ? 1 : 0)
       << ";dwait=" << soc_.drain_wait << ";dtimeout=" << soc_.drain_timeout
       << ";ss=" << fw_.ss_capacity << ";spill=" << fw_.spill_block
       << ";jt=" << (fw_.enable_jump_table ? 1 : 0)
       << ";pmp=" << (soc_.enable_pmp ? 1 : 0)
       << ";trace=" << (soc_.trace_commits ? 1 : 0);
  // Resilience knobs appear only when set, so every pre-existing scenario
  // keeps its fingerprint byte for byte.
  if (!soc_.faults.empty()) {
    text << ";faults=" << soc_.faults.serialize();
  }
  if (soc_.overflow_policy != cfi::OverflowPolicy::kBackPressure) {
    text << ";ofp="
         << (soc_.overflow_policy == cfi::OverflowPolicy::kFailClosed
                 ? "closed"
                 : "open");
  }
  if (soc_.doorbell_timeout > 0) {
    text << ";dbretry=" << soc_.doorbell_timeout << "/"
         << soc_.doorbell_max_retries;
  }
  if (soc_.mac_rerequest) {
    text << ";macrr=1";
  }
  if (attack_) {
    text << ";attack=" << attack_->serialize();
  }
  text << "}";
  return text.str();
}

Scenario Scenario::with_engine(Engine engine) const {
  Scenario copy = *this;
  copy.soc_.engine = to_cfi(engine);
  return copy;
}

Scenario Scenario::with_warm_start(
    std::shared_ptr<const sim::Snapshot> snapshot) const {
  Scenario copy = *this;
  copy.warm_start_ = std::move(snapshot);
  return copy;
}

// ---- ScenarioBuilder --------------------------------------------------------

ScenarioBuilder& ScenarioBuilder::name(std::string value) {
  name_ = std::move(value);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::workload(Workload value) {
  workload_ = std::move(value);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::attack(attacks::AttackPlan plan) {
  attack_ = plan;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::firmware(Firmware value) {
  firmware_ = value;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::fabric(Fabric value) {
  fabric_ = value;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::queue_depth(std::size_t value) {
  queue_depth_ = value;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::drain_burst(unsigned value) {
  drain_burst_ = value;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::batch_mac(bool value) {
  batch_mac_ = value;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::drain_wait(unsigned wait, sim::Cycle timeout) {
  drain_wait_ = wait;
  drain_timeout_ = timeout;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::engine(Engine value) {
  engine_ = value;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::warm_start(
    std::shared_ptr<const sim::Snapshot> snapshot) {
  warm_start_ = std::move(snapshot);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::faults(sim::FaultPlan plan) {
  faults_ = std::move(plan);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::overflow_policy(OverflowPolicy value) {
  overflow_policy_ = value;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::doorbell_retry(sim::Cycle timeout,
                                                 unsigned max_retries) {
  doorbell_timeout_ = timeout;
  doorbell_max_retries_ = max_retries;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::mac_rerequest(bool value) {
  mac_rerequest_ = value;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::shadow_stack(unsigned capacity,
                                               unsigned spill_block) {
  ss_capacity_ = capacity;
  spill_block_ = spill_block;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::jump_table(bool value) {
  jump_table_ = value;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::pmp(bool value) {
  pmp_ = value;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::trace_commits(bool value) {
  trace_commits_ = value;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::max_cycles(sim::Cycle value) {
  max_cycles_ = value;
  return *this;
}

Scenario ScenarioBuilder::build() const {
  if (name_.empty()) {
    throw ScenarioError("ScenarioBuilder: a scenario needs a name");
  }
  if (attack_ && workload_.set()) {
    throw ScenarioError(
        "ScenarioBuilder: scenario '" + name_ +
        "' has both a workload and an attack plan (an attack scenario's "
        "program is generated from the plan)");
  }
  if (!workload_.set() && !attack_) {
    throw ScenarioError("ScenarioBuilder: scenario '" + name_ +
                        "' has no workload");
  }
  if (attack_) {
    try {
      attacks::validate(*attack_);
    } catch (const std::invalid_argument& error) {
      throw ScenarioError("ScenarioBuilder: scenario '" + name_ +
                          "': " + error.what());
    }
  }
  if (queue_depth_ == 0) {
    throw ScenarioError("ScenarioBuilder: scenario '" + name_ +
                        "': queue_depth must be >= 1");
  }
  if (drain_burst_ == 0 || drain_burst_ > soc::Mailbox::kBatchSlots) {
    throw ScenarioError(
        "ScenarioBuilder: scenario '" + name_ + "': drain_burst " +
        std::to_string(drain_burst_) + " outside [1, " +
        std::to_string(soc::Mailbox::kBatchSlots) +
        "] (the mailbox batch register file has kBatchSlots log slots)");
  }
  if (batch_mac_ && drain_burst_ == 1) {
    throw ScenarioError(
        "ScenarioBuilder: scenario '" + name_ +
        "': batch_mac requires drain_burst > 1 (the one-at-a-time drain "
        "has no batch to authenticate)");
  }
  if (drain_wait_ > drain_burst_) {
    throw ScenarioError(
        "ScenarioBuilder: scenario '" + name_ + "': drain_wait " +
        std::to_string(drain_wait_) + " exceeds drain_burst " +
        std::to_string(drain_burst_) +
        " (a wait threshold deeper than one transfer can never be met)");
  }
  if (drain_wait_ > queue_depth_) {
    throw ScenarioError(
        "ScenarioBuilder: scenario '" + name_ + "': drain_wait " +
        std::to_string(drain_wait_) + " exceeds queue_depth " +
        std::to_string(queue_depth_) +
        " (the queue can never accumulate that many logs)");
  }
  if (drain_wait_ > 1 && drain_timeout_ == 0) {
    throw ScenarioError(
        "ScenarioBuilder: scenario '" + name_ +
        "': the hysteresis drain policy needs a nonzero timeout (pending "
        "logs must not wait forever on a quiet program)");
  }
  if (drain_timeout_ > 100'000) {
    throw ScenarioError(
        "ScenarioBuilder: scenario '" + name_ +
        "': drain_timeout above 100000 cycles would dominate the "
        "post-program drain guard");
  }
  if (ss_capacity_ == 0 || spill_block_ == 0 || spill_block_ > ss_capacity_) {
    throw ScenarioError(
        "ScenarioBuilder: scenario '" + name_ +
        "': shadow-stack geometry needs 1 <= spill_block <= capacity (got "
        "capacity " +
        std::to_string(ss_capacity_) + ", spill_block " +
        std::to_string(spill_block_) + ")");
  }
  if (max_cycles_ == 0) {
    throw ScenarioError("ScenarioBuilder: scenario '" + name_ +
                        "': max_cycles must be nonzero");
  }
  if (doorbell_timeout_ > 0) {
    if (drain_burst_ < 2) {
      throw ScenarioError(
          "ScenarioBuilder: scenario '" + name_ +
          "': doorbell_retry requires drain_burst > 1 (the retry protocol "
          "needs the idempotent BATCH_COUNT handshake, which the single-log "
          "register file lacks)");
    }
    if (doorbell_timeout_ > 100'000) {
      throw ScenarioError(
          "ScenarioBuilder: scenario '" + name_ +
          "': doorbell_retry timeout above 100000 cycles would dominate the "
          "post-program drain guard");
    }
    if (doorbell_max_retries_ < 1 || doorbell_max_retries_ > 8) {
      throw ScenarioError(
          "ScenarioBuilder: scenario '" + name_ +
          "': doorbell_retry max_retries must be in [1, 8]");
    }
  }
  if (mac_rerequest_ && !batch_mac_) {
    throw ScenarioError(
        "ScenarioBuilder: scenario '" + name_ +
        "': mac_rerequest requires batch_mac (there is no burst MAC whose "
        "failure could be re-requested)");
  }
  for (const sim::FaultSpec& spec : faults_.faults) {
    if (spec.site == sim::FaultSite::kDoorbellDrop && doorbell_timeout_ == 0) {
      throw ScenarioError(
          "ScenarioBuilder: scenario '" + name_ +
          "': a fault plan with doorbell_drop requires doorbell_retry() — "
          "without the watchdog a dropped doorbell hangs the CFI pipeline "
          "forever");
    }
    if (spec.site == sim::FaultSite::kRotStall && spec.param > 100'000) {
      throw ScenarioError(
          "ScenarioBuilder: scenario '" + name_ +
          "': rot_stall width above 100000 cycles would dominate the "
          "post-program drain guard");
    }
    if (spec.site == sim::FaultSite::kQueueOverflow && spec.param > 4096) {
      throw ScenarioError(
          "ScenarioBuilder: scenario '" + name_ +
          "': queue_overflow burst width above 4096 push attempts is outside "
          "any realistic transient");
    }
  }

  Scenario scenario;
  scenario.name_ = name_;
  scenario.workload_ = workload_;
  scenario.attack_ = attack_;
  if (attack_) {
    // Generate once here for the scoring wiring; workload_image() regenerates
    // the identical bytes on demand (attacks::generate is deterministic).
    const attacks::AttackImage adversarial = attacks::generate(*attack_);
    scenario.soc_.attack_edges = adversarial.hijack_pcs;
    if (jump_table_) {
      // Forward-edge enforcement treats an empty jump table as inert, so an
      // attack scenario with jt=1 provisions the generated image's legitimate
      // indirect targets — the hijacked targets are exactly what's missing.
      scenario.soc_.jump_table.reserve(adversarial.legit_targets.size());
      for (const std::uint64_t target : adversarial.legit_targets) {
        scenario.soc_.jump_table.push_back(
            static_cast<std::uint32_t>(target));
      }
      scenario.soc_.jump_table_base = fw::FwLayout::kJumpTable;
    }
  }

  // The single source of truth for each co-designed knob: both halves are
  // derived here from one builder field, so they cannot disagree.
  scenario.soc_.queue_depth = queue_depth_;
  scenario.soc_.fabric = fabric_ == Fabric::kBaseline
                             ? cfi::RotFabric::kBaseline
                             : cfi::RotFabric::kOptimized;
  scenario.soc_.drain_burst = drain_burst_;
  scenario.soc_.mac_batches = batch_mac_;
  scenario.soc_.drain_wait = drain_wait_;
  scenario.soc_.drain_timeout = drain_timeout_;
  scenario.soc_.enable_pmp = pmp_;
  scenario.soc_.trace_commits = trace_commits_;
  scenario.soc_.max_cycles = max_cycles_;
  scenario.soc_.engine = to_cfi(engine_);
  scenario.soc_.faults = faults_;
  scenario.soc_.overflow_policy = to_cfi(overflow_policy_);
  scenario.soc_.doorbell_timeout = doorbell_timeout_;
  scenario.soc_.doorbell_max_retries = doorbell_max_retries_;
  scenario.soc_.mac_rerequest = mac_rerequest_;

  scenario.fw_.variant = firmware_ == Firmware::kIrq ? fw::FwVariant::kIrq
                                                     : fw::FwVariant::kPolling;
  scenario.fw_.batch_capacity = drain_burst_;
  scenario.fw_.batch_mac = batch_mac_;
  scenario.fw_.ss_capacity = ss_capacity_;
  scenario.fw_.spill_block = spill_block_;
  scenario.fw_.enable_jump_table = jump_table_;
  // The degradation protocols are co-designed like the drain itself: one
  // builder field configures both the Log Writer and the firmware generator.
  scenario.fw_.retry_handshake = doorbell_timeout_ > 0;
  scenario.fw_.mac_rerequest = mac_rerequest_;
  scenario.warm_start_ = warm_start_;
  return scenario;
}

}  // namespace titan::api

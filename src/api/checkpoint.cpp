#include "api/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace titan::api {

std::shared_ptr<const sim::Snapshot> capture_checkpoint(
    const Scenario& scenario, sim::Cycle at, const RunHooks& hooks) {
  const std::unique_ptr<cfi::SocTop> soc = scenario.make_soc();
  auto snapshot = std::make_shared<sim::Snapshot>();

  // Record every log the prefix pops: the warm run replays these through its
  // own observer so the full stream is seen exactly once either way.
  soc->log_writer().set_log_capture([&](const cfi::CommitLog& log) {
    for (const std::uint64_t beat : log.pack()) {
      snapshot->log_words.push_back(beat);
    }
    if (hooks.log_capture) {
      hooks.log_capture(log);
    }
  });
  if (hooks.configure) {
    hooks.configure(*soc);
  }

  bool captured = false;
  soc->set_checkpoint(
      at,
      [&](const sim::Snapshot& state) {
        // Shallow structure copy: the memory images share their pages
        // (shared_ptr), so this does not duplicate page contents.
        snapshot->cycle = state.cycle;
        snapshot->memories = state.memories;
        snapshot->state = state.state;
        captured = true;
      },
      /*stop_after=*/true);
  (void)soc->run();
  if (!captured) {
    throw std::runtime_error(
        "capture_checkpoint: run finished without firing the checkpoint");
  }

  snapshot->scenario = scenario.serialize();
  snapshot->seal();
  return snapshot;
}

std::shared_ptr<const sim::Snapshot> CheckpointCache::warmed(
    const Scenario& scenario, sim::Cycle at, const RunHooks& hooks) {
  const std::string key = scenario.serialize();
  const auto it = by_identity_.find(key);
  if (it != by_identity_.end()) {
    hits_.fetch_add(1);
    return it->second;
  }
  misses_.fetch_add(1);
  std::shared_ptr<const sim::Snapshot> snapshot =
      capture_checkpoint(scenario, at, hooks);
  by_identity_.emplace(key, snapshot);
  return snapshot;
}

std::shared_ptr<const sim::Snapshot> CheckpointCache::find(
    const Scenario& scenario) const {
  const auto it = by_identity_.find(scenario.serialize());
  if (it == by_identity_.end()) {
    misses_.fetch_add(1);
    return nullptr;
  }
  hits_.fetch_add(1);
  return it->second;
}

void CheckpointCache::insert(std::shared_ptr<const sim::Snapshot> snapshot) {
  std::string key = snapshot->scenario;
  by_identity_[std::move(key)] = std::move(snapshot);
}

void save_checkpoint_file(const sim::Snapshot& snapshot,
                          const std::string& path) {
  const std::vector<std::uint8_t> blob = snapshot.to_blob();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("save_checkpoint_file: cannot open " + path);
  }
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  if (!out) {
    throw std::runtime_error("save_checkpoint_file: short write to " + path);
  }
}

sim::Snapshot load_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_checkpoint_file: cannot open " + path);
  }
  std::vector<std::uint8_t> blob((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw std::runtime_error("load_checkpoint_file: read error on " + path);
  }
  return sim::Snapshot::from_blob(blob);
}

// ---- Grid (sweep) support ---------------------------------------------------

std::vector<std::shared_ptr<const sim::Snapshot>> capture_grid_checkpoints(
    const ScenarioSet& set, sim::Cycle warmup, const RunHooks& hooks) {
  std::vector<std::shared_ptr<const sim::Snapshot>> snapshots;
  snapshots.reserve(set.size());
  for (const Scenario& scenario : set) {
    snapshots.push_back(capture_checkpoint(scenario, warmup, hooks));
  }
  return snapshots;
}

ScenarioSet warm_started(const ScenarioSet& set, const CheckpointCache& cache) {
  std::vector<Scenario> scenarios;
  scenarios.reserve(set.size());
  for (const Scenario& scenario : set) {
    std::shared_ptr<const sim::Snapshot> snapshot = cache.find(scenario);
    if (snapshot == nullptr) {
      throw ScenarioError("warm_started: no checkpoint for scenario '" +
                          scenario.name() +
                          "' (stale or mismatched bundle?)");
    }
    scenarios.push_back(scenario.with_warm_start(std::move(snapshot)));
  }
  return ScenarioSet(set.bench(), std::move(scenarios));
}

namespace {

/// Bundle header: magic "TSNB", format version, snapshot count.
constexpr std::uint32_t kBundleMagic = 0x42'4E'53'54;
constexpr std::uint32_t kBundleVersion = 1;

void write_u32(std::ofstream& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.put(static_cast<char>(value >> (8 * i)));
  }
}

void write_u64(std::ofstream& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.put(static_cast<char>(value >> (8 * i)));
  }
}

std::uint64_t read_uint(std::ifstream& in, int bytes, const std::string& path) {
  std::uint64_t value = 0;
  for (int i = 0; i < bytes; ++i) {
    const int byte = in.get();
    if (byte == std::ifstream::traits_type::eof()) {
      throw sim::SnapshotError("checkpoint bundle: truncated header in " +
                               path);
    }
    value |= static_cast<std::uint64_t>(byte & 0xFF) << (8 * i);
  }
  return value;
}

}  // namespace

void save_checkpoint_bundle(
    const std::vector<std::shared_ptr<const sim::Snapshot>>& snapshots,
    const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("save_checkpoint_bundle: cannot open " + path);
  }
  write_u32(out, kBundleMagic);
  write_u32(out, kBundleVersion);
  write_u64(out, snapshots.size());
  for (const std::shared_ptr<const sim::Snapshot>& snapshot : snapshots) {
    const std::vector<std::uint8_t> blob = snapshot->to_blob();
    write_u64(out, blob.size());
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
  }
  if (!out) {
    throw std::runtime_error("save_checkpoint_bundle: short write to " + path);
  }
}

std::vector<std::shared_ptr<const sim::Snapshot>> load_checkpoint_bundle(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_checkpoint_bundle: cannot open " + path);
  }
  if (read_uint(in, 4, path) != kBundleMagic) {
    throw sim::SnapshotError("checkpoint bundle: bad magic in " + path);
  }
  if (read_uint(in, 4, path) != kBundleVersion) {
    throw sim::SnapshotError("checkpoint bundle: unsupported version in " +
                             path);
  }
  const std::uint64_t count = read_uint(in, 8, path);
  std::vector<std::shared_ptr<const sim::Snapshot>> snapshots;
  snapshots.reserve(count);
  for (std::uint64_t index = 0; index < count; ++index) {
    const std::uint64_t size = read_uint(in, 8, path);
    std::vector<std::uint8_t> blob(size);
    in.read(reinterpret_cast<char*>(blob.data()),
            static_cast<std::streamsize>(size));
    if (static_cast<std::uint64_t>(in.gcount()) != size) {
      throw sim::SnapshotError("checkpoint bundle: truncated snapshot " +
                               std::to_string(index) + " in " + path);
    }
    snapshots.push_back(
        std::make_shared<sim::Snapshot>(sim::Snapshot::from_blob(blob)));
  }
  return snapshots;
}

int handle_checkpoint_cli(ScenarioSet& grid, const sim::SweepCli& cli,
                          std::string_view bench_label) {
  const std::string label(bench_label);
  if (cli.write_checkpoints_given) {
    try {
      save_checkpoint_bundle(
          capture_grid_checkpoints(grid, kDefaultWarmupCycle),
          cli.write_checkpoints_path);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "%s: --write_checkpoints failed: %s\n",
                   label.c_str(), error.what());
      return 1;
    }
    std::fprintf(stderr, "%s: wrote %zu checkpoint(s) to %s\n", label.c_str(),
                 grid.size(), cli.write_checkpoints_path.c_str());
    return 0;
  }
  if (cli.warm_start_given) {
    try {
      CheckpointCache cache;
      for (std::shared_ptr<const sim::Snapshot>& snapshot :
           load_checkpoint_bundle(cli.warm_start_path)) {
        cache.insert(std::move(snapshot));
      }
      grid = warm_started(grid, cache);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "%s: --warm_start failed: %s\n", label.c_str(),
                   error.what());
      return 1;
    }
  }
  return -1;
}

}  // namespace titan::api

// Versioned RunReport JSON schema — the ONE place the machine-readable form
// of a co-simulation result is defined.
//
// Every surface that renders a RunReport routes through here: the sweep
// benches (via scenario_sweep_plan), tools/fault_matrix_smoke, the titand
// scenario-serving daemon, and titanctl's local batch witness.  That shared
// path is what makes the daemon's served-vs-batch byte-identity witness
// meaningful: a served response and a batch run_scenario render cannot
// drift apart, because there is only one renderer.
//
// The schema is versioned (kVersion), but the version field is emitted only
// when Options::emit_schema_version is set — committed BENCH_*.json
// artifacts and the shard-merge byte-identity contract predate the field,
// so the default stays byte-for-byte what PR 4 emitted.  Consumers that
// want self-describing documents (the wire protocol's future v2) opt in.
#pragma once

#include <string>

#include "api/run.hpp"
#include "sim/sweep.hpp"

namespace titan::api {

class ReportSchema {
 public:
  /// Version of the report field set/order below.  Bump when a field is
  /// added, removed, or reordered.  v2 added the flat attack-corpus scoring
  /// block (attack_detected .. attack_false_negatives).
  static constexpr unsigned kVersion = 2;

  struct Options {
    /// Emit "report_schema_version" as the first field.  Default off: the
    /// committed bench artifacts and shard-merge byte-identity are defined
    /// without it.
    bool emit_schema_version = false;
  };

  ReportSchema() = default;
  explicit ReportSchema(Options options) : options_(options) {}

  /// Emit the report's fields into an already-open JSON object (the sweep
  /// row form — caller owns begin_object/end_object).
  void emit_fields(sim::JsonWriter& json, const RunReport& report) const;

  /// The canonical standalone rendering: one root-level JSON object.  This
  /// exact byte string is what titand serves for a run request and what
  /// titanctl's local batch witness prints — the served-vs-batch diff
  /// compares two outputs of this function.
  [[nodiscard]] std::string render(const RunReport& report) const;

 private:
  Options options_;
};

}  // namespace titan::api

// Unified Scenario API — the one public way to define a TitanCFI experiment.
//
// The paper's Fig. 1 system is a co-designed pair: the host-side CFI
// machinery (SocConfig) and the RoT firmware (FirmwareConfig) must agree on
// drain burst, batch MAC, and policy, or CFI checking silently degrades.
// The seed API let every bench and example wire the two halves by hand and
// only caught skew at SocTop construction time.  This layer makes skew
// unrepresentable instead: a ScenarioBuilder holds each co-designed knob
// ONCE (drain_burst(n) is the only way to pick a burst, and it configures
// both the Log Writer and the firmware generator), and build() validates the
// whole combination before anything is instantiated.
//
// A Scenario is immutable and deterministically serializable; the serialized
// form is the config fingerprint used by the sweep/shard-merge machinery, so
// the identity that guards a shard merge is derived from the exact object
// the simulation ran with — never from a hand-maintained description.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "attacks/attack.hpp"
#include "firmware/builder.hpp"
#include "rv/assembler.hpp"
#include "titancfi/soc_top.hpp"

namespace titan::api {

/// Invalid scenario combination rejected by ScenarioBuilder::build().
class ScenarioError : public std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

/// Firmware organisation (paper Table I).  The api-level mirror of
/// fw::FwVariant so callers never touch the firmware layer directly.
enum class Firmware { kIrq, kPolling };

/// RoT interconnect generation.  Mirror of cfi::RotFabric.
enum class Fabric { kBaseline, kOptimized };

/// Co-simulation scheduler (mirror of cfi::Engine).  Not part of a
/// scenario's serialized identity: both engines produce bit-identical
/// results (enforced by tests/engine_equivalence_test), so the engine is an
/// execution strategy — like the thread count — not configuration.
enum class Engine { kLockStep, kEventDriven };

/// Response when a commit log cannot enter the CFI Queue (mirror of
/// cfi::OverflowPolicy).  kBackPressure is the paper's lossless stall;
/// kFailClosed halts the host rather than miss a check; kFailOpen drops the
/// log and counts it (dropped returns are reported as false negatives).
enum class OverflowPolicy { kBackPressure, kFailClosed, kFailOpen };

/// Typed, serializable workload descriptor: a named reference to one of the
/// built-in program generators (src/workloads) or a caller-assembled image.
class Workload {
 public:
  Workload() = default;

  static Workload fib(unsigned n);
  static Workload matmul(unsigned n);
  static Workload crc32(unsigned len);
  static Workload quicksort(unsigned n);
  static Workload stats(unsigned n);
  static Workload call_chain(unsigned depth);
  static Workload indirect_dispatch(unsigned iterations);
  static Workload rop_victim();
  static Workload random_callgraph(std::uint64_t seed, unsigned functions = 8,
                                   bool inject_rop = false);
  /// A caller-assembled image.  `name` labels it in the serialized identity;
  /// the image bytes are fingerprinted so two different programs under the
  /// same name cannot alias.
  static Workload image(std::string name, rv::Image image);

  /// Inverse of serialized() for every named generator: "fib(8)" round-trips
  /// to Workload::fib(8), and so on.  Throws ScenarioError naming the
  /// offending token on an unknown generator, malformed argument list, or
  /// out-of-range parameter.  "image:..." workloads are rejected — their
  /// serialized form is a fingerprint of bytes a wire peer does not have, so
  /// they are deliberately not wire-constructible.
  static Workload from_serialized(std::string_view text);

  [[nodiscard]] bool set() const { return !serialized_.empty(); }
  /// Deterministic identity, e.g. "fib(8)" or "image:quickstart:<hash>".
  [[nodiscard]] const std::string& serialized() const { return serialized_; }
  /// Materialise the RV64 program image.
  [[nodiscard]] rv::Image build() const;

 private:
  enum class Kind {
    kUnset,
    kFib,
    kMatmul,
    kCrc32,
    kQuicksort,
    kStats,
    kCallChain,
    kIndirectDispatch,
    kRopVictim,
    kRandomCallgraph,
    kImage,
  };

  Kind kind_ = Kind::kUnset;
  std::uint64_t param_ = 0;       // n / len / depth / iterations / seed
  unsigned functions_ = 0;        // random_callgraph only
  bool inject_rop_ = false;       // random_callgraph only
  std::shared_ptr<const rv::Image> image_;  // kImage only (shared: Workload is a value)
  std::string serialized_;
};

/// A validated, immutable (SocConfig, FirmwareConfig, workload) triple.
/// Only ScenarioBuilder::build() creates one, so a Scenario that exists is a
/// combination the system can actually run without protocol skew.
class Scenario {
 public:
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Workload& workload() const { return workload_; }
  /// Attack-corpus plan (nullopt for benign scenarios).  An attack scenario
  /// has no Workload: its program is generated from the plan.
  [[nodiscard]] const std::optional<attacks::AttackPlan>& attack() const {
    return attack_;
  }
  [[nodiscard]] const cfi::SocConfig& soc_config() const { return soc_; }
  [[nodiscard]] const fw::FirmwareConfig& firmware_config() const { return fw_; }

  // Accessor names deliberately avoid the poisoned raw-surface identifiers
  // (api/enforce.hpp) so benches can call them after the poison pragma.
  /// Attack scenarios regenerate the adversarial image from the plan
  /// (attacks::generate is deterministic), so there are no image bytes to
  /// fingerprint and the serialized plan IS the program identity.
  [[nodiscard]] rv::Image workload_image() const;
  [[nodiscard]] rv::Image firmware_image() const;
  /// Instantiate the full co-simulation (host + CFI stage + RoT) for this
  /// scenario — the only construction path the benches and examples use.
  [[nodiscard]] std::unique_ptr<cfi::SocTop> make_soc() const;

  /// Deterministic serialization of every knob.  This string (hashed) IS the
  /// scenario's config fingerprint — see ScenarioSet::header().  The engine
  /// is deliberately excluded (results are engine-independent), so a
  /// lock-step witness run and an event-driven run share one fingerprint.
  [[nodiscard]] std::string serialize() const;

  /// Copy of this scenario running under `engine` (identity unchanged).
  [[nodiscard]] Scenario with_engine(Engine engine) const;

  /// Warm-start checkpoint to fork from (null == cold run from cycle 0).
  /// Like the engine, this is an execution strategy, not configuration: a
  /// forked run is bit-exact versus a cold run (enforced by
  /// tests/warm_start_test), so the checkpoint is excluded from serialize()
  /// and the config fingerprint.  run_scenario() validates the snapshot's
  /// embedded scenario identity against serialize() and rejects a checkpoint
  /// captured for any other scenario.
  [[nodiscard]] const std::shared_ptr<const sim::Snapshot>& warm_start() const {
    return warm_start_;
  }
  /// Copy of this scenario forking from `snapshot` (identity unchanged).
  [[nodiscard]] Scenario with_warm_start(
      std::shared_ptr<const sim::Snapshot> snapshot) const;

 private:
  friend class ScenarioBuilder;
  Scenario() = default;

  std::string name_;
  Workload workload_;
  std::optional<attacks::AttackPlan> attack_;
  cfi::SocConfig soc_;
  fw::FirmwareConfig fw_;
  std::shared_ptr<const sim::Snapshot> warm_start_;
};

/// Fluent scenario construction.  Every co-designed value is a single
/// setter: drain_burst() and batch_mac() configure the Log Writer AND the
/// firmware generator together, so the two sides cannot disagree.
class ScenarioBuilder {
 public:
  ScenarioBuilder& name(std::string value);
  ScenarioBuilder& workload(Workload value);
  /// Run an adversarial image from the attack corpus instead of a benign
  /// workload (mutually exclusive with workload()).  The plan is validated by
  /// build(), serialized into the scenario fingerprint (`workload=attack` +
  /// `attack=<plan>`), and wired through to the SoC: the generated image's
  /// hijacked PCs become SocConfig::attack_edges, and — when jump_table() is
  /// on — its legitimate indirect targets are provisioned into the RoT jump
  /// table so forward-edge enforcement has real contents to check against.
  ScenarioBuilder& attack(attacks::AttackPlan plan);
  ScenarioBuilder& firmware(Firmware value);
  ScenarioBuilder& fabric(Fabric value);
  ScenarioBuilder& queue_depth(std::size_t value);
  /// Commit logs per doorbell (1 == the paper's one-at-a-time drain).  Sets
  /// both SocConfig::drain_burst and FirmwareConfig::batch_capacity.
  ScenarioBuilder& drain_burst(unsigned value);
  /// HMAC each burst end to end (requires drain_burst > 1).  Sets both
  /// SocConfig::mac_batches and FirmwareConfig::batch_mac.
  ScenarioBuilder& batch_mac(bool value);
  /// Hysteresis drain policy (ROADMAP "adaptive drain burst"): an idle Log
  /// Writer defers its next drain until the queue holds `wait` logs or
  /// `timeout` cycles have elapsed since the first pending log.  wait == 0
  /// (default) drains immediately — the paper's behaviour, which keeps
  /// Table I/II exact.
  ScenarioBuilder& drain_wait(unsigned wait, sim::Cycle timeout);
  /// Deterministic fault schedule (see sim::FaultPlan).  Serialized into the
  /// scenario fingerprint, so faulted sweeps cannot alias fault-free ones.
  /// A plan containing doorbell drops requires doorbell_retry() — without
  /// the watchdog a dropped doorbell would hang the pipeline forever.
  ScenarioBuilder& faults(sim::FaultPlan plan);
  /// Overflow response (default kBackPressure, the paper's behaviour).
  ScenarioBuilder& overflow_policy(OverflowPolicy value);
  /// Doorbell watchdog: re-ring after `timeout` cycles without a completion,
  /// doubling the window each retry; `max_retries` re-rings then fail
  /// closed.  Requires drain_burst > 1 (the firmware side of the retry
  /// handshake is generated automatically).
  ScenarioBuilder& doorbell_retry(sim::Cycle timeout, unsigned max_retries = 3);
  /// RoT-side MAC-failure re-request (requires batch_mac): MAC mismatches
  /// ask the Log Writer to retransmit instead of flagging a violation.
  ScenarioBuilder& mac_rerequest(bool value);
  ScenarioBuilder& shadow_stack(unsigned capacity, unsigned spill_block);
  ScenarioBuilder& jump_table(bool value);
  ScenarioBuilder& pmp(bool value);
  ScenarioBuilder& trace_commits(bool value);
  ScenarioBuilder& max_cycles(sim::Cycle value);
  /// Co-simulation scheduler (default: the event-driven engine; results are
  /// bit-identical to lock-step, which survives as the equivalence witness).
  ScenarioBuilder& engine(Engine value);
  /// Fork the run from a checkpoint instead of simulating from cycle 0 (see
  /// api::capture_checkpoint).  Null clears.  Not part of the scenario
  /// identity; the snapshot must have been captured for this exact scenario.
  ScenarioBuilder& warm_start(std::shared_ptr<const sim::Snapshot> snapshot);

  /// Validate and freeze.  Throws ScenarioError naming the first invalid
  /// combination (empty name, unset workload, zero queue depth, burst out of
  /// [1, soc::Mailbox::kBatchSlots], MAC at burst 1, degenerate shadow-stack
  /// geometry).
  [[nodiscard]] Scenario build() const;

  /// Inverse of Scenario::serialize(): parse the exact fingerprint grammar
  /// serialize() emits, feed every knob through this builder, and build() —
  /// so a deserialized scenario passes the same validation a hand-built one
  /// does, and `from_serialized(s.serialize()).serialize() == s.serialize()`
  /// for every buildable scenario.  This is how a wire request names an
  /// arbitrary scenario (api::wire "spec" requests).  Throws ScenarioError
  /// naming the offending key/token on malformed text, unknown keys,
  /// duplicate keys, missing required keys, or out-of-range values.
  /// Engine, warm-start, and max_cycles are not part of the grammar (they
  /// are execution strategy, excluded from serialize()); the result carries
  /// their defaults.
  [[nodiscard]] static Scenario from_serialized(std::string_view text);

 private:
  std::string name_;
  Workload workload_;
  std::optional<attacks::AttackPlan> attack_;
  Firmware firmware_ = Firmware::kIrq;
  Fabric fabric_ = Fabric::kBaseline;
  std::size_t queue_depth_ = 8;
  unsigned drain_burst_ = 1;
  bool batch_mac_ = false;
  unsigned drain_wait_ = 0;
  sim::Cycle drain_timeout_ = 0;
  sim::FaultPlan faults_;
  OverflowPolicy overflow_policy_ = OverflowPolicy::kBackPressure;
  sim::Cycle doorbell_timeout_ = 0;
  unsigned doorbell_max_retries_ = 3;
  bool mac_rerequest_ = false;
  unsigned ss_capacity_ = 32;
  unsigned spill_block_ = 16;
  bool jump_table_ = false;
  bool pmp_ = true;
  bool trace_commits_ = false;
  sim::Cycle max_cycles_ = 2'000'000'000;
  Engine engine_ = Engine::kEventDriven;
  std::shared_ptr<const sim::Snapshot> warm_start_;
};

}  // namespace titan::api

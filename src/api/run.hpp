// run_scenario(): execute a Scenario end to end and return the unified
// RunReport — a superset of cfi::SocRunResult plus the memory-system,
// decode-cache, and doorbell statistics the perf PRs added.  Every bench and
// example reads its numbers from a RunReport, and every machine-readable row
// is emitted through RunReport::emit_json_fields(), so the JSON schema of a
// co-simulation row has exactly one definition.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "api/scenario.hpp"
#include "sim/cancel.hpp"
#include "sim/memory.hpp"
#include "sim/sweep.hpp"
#include "titancfi/commit_log.hpp"

namespace titan::api {

/// Why a run returned — RunStop refines cfi::StopCause with the cancel
/// token's reason, so the serving layer maps it straight onto the wire
/// error taxonomy.
enum class RunStop {
  kCompleted,         ///< Ran to completion; the report is final.
  kBudgetExceeded,    ///< RunControl::max_cycles reached.
  kDeadlineExceeded,  ///< Cancel token fired with Reason::kDeadline.
  kCancelled,         ///< Cancel token fired (shutdown / disconnect).
};

/// Unified result of one scenario co-simulation.
struct RunReport {
  std::string scenario;  ///< Scenario::name() of the run.

  // -- cfi::SocRunResult superset --------------------------------------------
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cf_logs = 0;
  std::uint64_t violations = 0;
  bool cfi_fault = false;
  std::uint64_t exit_code = 0;
  std::uint64_t queue_full_stalls = 0;
  std::uint64_t dual_cf_stalls = 0;
  std::uint64_t doorbells = 0;
  std::uint64_t batches = 0;
  std::uint64_t max_batch = 0;
  double mean_queue_occupancy = 0.0;
  cfi::CommitLog fault_log{};  ///< Valid when cfi_fault.

  // -- Host memory-system statistics (sim::MemStats snapshot) ----------------
  sim::MemStats host_memory{};

  // -- Host decode-cache statistics ------------------------------------------
  std::uint64_t decode_hits = 0;
  std::uint64_t decode_misses = 0;

  // -- RoT-side counters ------------------------------------------------------
  std::uint64_t rot_instructions = 0;
  std::uint64_t rot_hmac_starts = 0;

  // -- Fault injection / graceful degradation --------------------------------
  /// All-zero on fault-free runs; populated from the FaultInjector pairing
  /// and the per-component degradation counters (see sim::ResilienceStats).
  sim::ResilienceStats resilience{};

  // -- Attack-corpus scoring --------------------------------------------------
  /// All-zero on benign runs; populated from the AttackTracker when the
  /// scenario carries an attacks::AttackPlan (detection yes/no, detection
  /// latency in host cycles, first-faulting CFI event ordinal, and the
  /// false-negative count — hijacked edges that retired unflagged).
  attacks::AttackStats attack{};

  /// Why the run returned.  kCompleted unless RunControl limits were set
  /// and hit.  Deliberately NOT part of the ReportSchema rendering: a run
  /// completing within its limits must render byte-identical to an
  /// unlimited run, and a stopped run's report is partial by definition.
  RunStop stop = RunStop::kCompleted;

  /// Field-wise equality (bit-exact, including the derived statistics) —
  /// what the cross-engine equivalence checks compare.
  bool operator==(const RunReport&) const = default;

  /// Doorbell amortisation achieved by the batched drain (1.0 == one
  /// doorbell per log, the paper's baseline protocol).
  [[nodiscard]] double doorbells_per_log() const {
    return cf_logs == 0 ? 0.0
                        : static_cast<double>(doorbells) /
                              static_cast<double>(cf_logs);
  }

  /// Canonical machine-readable form: every JSON row of every co-sim sweep
  /// flows through here (deterministic field set and order).
  void emit_json_fields(sim::JsonWriter& json) const;
};

/// Optional instrumentation hooks for a scenario run.
struct RunHooks {
  /// Observe every commit log the Log Writer sends (stream-identity checks).
  std::function<void(const cfi::CommitLog&)> log_capture;
  /// Called on the constructed SoC before the run (extra knobs, e.g. trace
  /// ring capacity or a streaming trace writer).
  std::function<void(cfi::SocTop&)> configure;
};

/// Cooperative lifecycle limits for one run (see sim::CancelToken and
/// cfi::SocTop::set_run_limits).  Default-constructed == no limits, and a
/// run finishing under its limits is bit-identical to a limitless run (the
/// registry-wide budget-identity gate in engine_equivalence_test).
struct RunControl {
  /// Fired externally (deadline reaper, disconnect detector, drain); the
  /// run stops at the next loop-top / quantum boundary.  May be null.
  std::shared_ptr<const sim::CancelToken> cancel;
  /// Graceful total-cycle budget (0 == unlimited).  Absolute cycle count:
  /// a warm-started run forked at cycle C >= max_cycles stops immediately.
  sim::Cycle max_cycles = 0;
  /// Event-engine quantum clamp while `cancel` is armed (0 == default).
  /// Tests shrink it to force heavy quantum splitting; services keep 0.
  sim::Cycle cancel_check_stride = 0;
};

/// Build the scenario's SoC, run to completion (or until a RunControl limit
/// stops it — check RunReport::stop), and collect the report.
[[nodiscard]] RunReport run_scenario(const Scenario& scenario,
                                     const RunHooks& hooks = {},
                                     const RunControl& control = {});

}  // namespace titan::api

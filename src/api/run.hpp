// run_scenario(): execute a Scenario end to end and return the unified
// RunReport — a superset of cfi::SocRunResult plus the memory-system,
// decode-cache, and doorbell statistics the perf PRs added.  Every bench and
// example reads its numbers from a RunReport, and every machine-readable row
// is emitted through RunReport::emit_json_fields(), so the JSON schema of a
// co-simulation row has exactly one definition.
#pragma once

#include <functional>
#include <string>

#include "api/scenario.hpp"
#include "sim/memory.hpp"
#include "sim/sweep.hpp"
#include "titancfi/commit_log.hpp"

namespace titan::api {

/// Unified result of one scenario co-simulation.
struct RunReport {
  std::string scenario;  ///< Scenario::name() of the run.

  // -- cfi::SocRunResult superset --------------------------------------------
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cf_logs = 0;
  std::uint64_t violations = 0;
  bool cfi_fault = false;
  std::uint64_t exit_code = 0;
  std::uint64_t queue_full_stalls = 0;
  std::uint64_t dual_cf_stalls = 0;
  std::uint64_t doorbells = 0;
  std::uint64_t batches = 0;
  std::uint64_t max_batch = 0;
  double mean_queue_occupancy = 0.0;
  cfi::CommitLog fault_log{};  ///< Valid when cfi_fault.

  // -- Host memory-system statistics (sim::MemStats snapshot) ----------------
  sim::MemStats host_memory{};

  // -- Host decode-cache statistics ------------------------------------------
  std::uint64_t decode_hits = 0;
  std::uint64_t decode_misses = 0;

  // -- RoT-side counters ------------------------------------------------------
  std::uint64_t rot_instructions = 0;
  std::uint64_t rot_hmac_starts = 0;

  // -- Fault injection / graceful degradation --------------------------------
  /// All-zero on fault-free runs; populated from the FaultInjector pairing
  /// and the per-component degradation counters (see sim::ResilienceStats).
  sim::ResilienceStats resilience{};

  // -- Attack-corpus scoring --------------------------------------------------
  /// All-zero on benign runs; populated from the AttackTracker when the
  /// scenario carries an attacks::AttackPlan (detection yes/no, detection
  /// latency in host cycles, first-faulting CFI event ordinal, and the
  /// false-negative count — hijacked edges that retired unflagged).
  attacks::AttackStats attack{};

  /// Field-wise equality (bit-exact, including the derived statistics) —
  /// what the cross-engine equivalence checks compare.
  bool operator==(const RunReport&) const = default;

  /// Doorbell amortisation achieved by the batched drain (1.0 == one
  /// doorbell per log, the paper's baseline protocol).
  [[nodiscard]] double doorbells_per_log() const {
    return cf_logs == 0 ? 0.0
                        : static_cast<double>(doorbells) /
                              static_cast<double>(cf_logs);
  }

  /// Canonical machine-readable form: every JSON row of every co-sim sweep
  /// flows through here (deterministic field set and order).
  void emit_json_fields(sim::JsonWriter& json) const;
};

/// Optional instrumentation hooks for a scenario run.
struct RunHooks {
  /// Observe every commit log the Log Writer sends (stream-identity checks).
  std::function<void(const cfi::CommitLog&)> log_capture;
  /// Called on the constructed SoC before the run (extra knobs, e.g. trace
  /// ring capacity or a streaming trace writer).
  std::function<void(cfi::SocTop&)> configure;
};

/// Build the scenario's SoC, run to completion, and collect the report.
[[nodiscard]] RunReport run_scenario(const Scenario& scenario,
                                     const RunHooks& hooks = {});

}  // namespace titan::api

#include "api/report_schema.hpp"

namespace titan::api {

void ReportSchema::emit_fields(sim::JsonWriter& json,
                               const RunReport& report) const {
  if (options_.emit_schema_version) {
    json.field("report_schema_version", kVersion);
  }
  const sim::ResilienceStats& resilience = report.resilience;
  json.field("scenario", report.scenario)
      .field("cycles", report.cycles)
      .field("instructions", report.instructions)
      .field("cf_logs", report.cf_logs)
      .field("violations", report.violations)
      .field("cfi_fault", report.cfi_fault)
      .field("exit_code", report.exit_code)
      .field("queue_full_stalls", report.queue_full_stalls)
      .field("dual_cf_stalls", report.dual_cf_stalls)
      .field("doorbells", report.doorbells)
      .field("batches", report.batches)
      .field("max_batch", report.max_batch)
      .field("mean_queue_occupancy", report.mean_queue_occupancy)
      .field("doorbells_per_log", report.doorbells_per_log())
      .field("mem_reads", report.host_memory.reads)
      .field("mem_writes", report.host_memory.writes)
      .field("mem_fetches", report.host_memory.fetches)
      .field("mem_page_cache_hits", report.host_memory.page_cache_hits)
      .field("decode_hits", report.decode_hits)
      .field("decode_misses", report.decode_misses)
      .field("rot_instructions", report.rot_instructions)
      .field("rot_hmac_starts", report.rot_hmac_starts)
      // Flat resilience summary first (easy to column-select in sweeps)...
      .field("faults_injected", resilience.total_injected())
      .field("faults_detected", resilience.total_detected())
      .field("fault_false_negatives", resilience.false_negatives)
      .field("fault_retries",
             resilience.doorbell_retries + resilience.mac_retries)
      .field("degraded_cycles", resilience.degraded_cycles);
  // ...then the full per-site block.
  json.begin_object("resilience");
  for (std::size_t site = 0; site < sim::kFaultSiteCount; ++site) {
    const std::string name(
        sim::fault_site_name(static_cast<sim::FaultSite>(site)));
    json.field("injected_" + name, resilience.injected[site])
        .field("detected_" + name, resilience.detected[site]);
  }
  json.begin_array("detection_latency_hist");
  for (const std::uint64_t count : resilience.detection_latency) {
    json.raw_element(std::to_string(count));
  }
  json.end_array();
  json.field("doorbell_retries", resilience.doorbell_retries)
      .field("mac_retries", resilience.mac_retries)
      .field("spurious_completions", resilience.spurious_completions)
      .field("dropped_logs", resilience.dropped_logs)
      .field("false_negatives", resilience.false_negatives)
      .field("degraded_cycles", resilience.degraded_cycles);
  json.end_object();
  // Attack-corpus scoring (all-zero on benign runs; see attacks::AttackStats).
  const attacks::AttackStats& attack = report.attack;
  json.field("attack_detected", attack.detected)
      .field("attack_detection_latency", attack.detection_latency)
      .field("attack_first_fault_ordinal", attack.first_fault_ordinal)
      .field("attack_hijacks_retired", attack.hijacks_retired)
      .field("attack_hijacks_flagged", attack.hijacks_flagged)
      .field("attack_false_negatives", attack.false_negatives);
}

std::string ReportSchema::render(const RunReport& report) const {
  sim::JsonWriter json;
  json.begin_object();
  emit_fields(json, report);
  json.end_object();
  return json.str();
}

}  // namespace titan::api

#include "api/overhead.hpp"

#include <sstream>
#include <stdexcept>

namespace titan::api {

namespace {

std::vector<const workloads::BenchmarkStats*> all_rows() {
  std::vector<const workloads::BenchmarkStats*> rows;
  for (const workloads::BenchmarkStats& stats : workloads::benchmark_table()) {
    rows.push_back(&stats);
  }
  return rows;
}

cfi::OverheadConfig depth_config(std::size_t queue_depth) {
  cfi::OverheadConfig config;
  config.queue_depth = queue_depth;
  config.transport_cycles = 0;
  return config;
}

}  // namespace

OverheadGrid OverheadGrid::table2() {
  std::vector<const workloads::BenchmarkStats*> rows;
  for (const workloads::BenchmarkStats& stats : workloads::benchmark_table()) {
    if (stats.in_table2()) {
      rows.push_back(&stats);
    }
  }
  // Table II constraint: depth 1 "to emulate stalling the core as soon as a
  // single control flow instruction is retired".
  return OverheadGrid("table2", std::move(rows), depth_config(1));
}

OverheadGrid OverheadGrid::table3() {
  return OverheadGrid("table3", all_rows(), depth_config(8));
}

OverheadGrid OverheadGrid::micro_sweep() {
  return OverheadGrid("micro_sweep", all_rows(), depth_config(8));
}

OverheadGrid OverheadGrid::named(std::string_view name) {
  if (name == "table2") return table2();
  if (name == "table3") return table3();
  if (name == "micro_sweep") return micro_sweep();
  throw std::invalid_argument("OverheadGrid: unknown grid '" +
                              std::string(name) + "'");
}

double OverheadGrid::slowdown(std::size_t index,
                              const workloads::TraceParams& params,
                              std::uint32_t check_latency) const {
  const workloads::BenchmarkStats& stats = *rows_[index];
  const auto cf = workloads::synthesize_cf_cycles(stats, params);
  cfi::OverheadConfig config = config_;
  config.check_latency = check_latency;
  return cfi::simulate_cf_cycles(cf, static_cast<sim::Cycle>(stats.cycles),
                                 config)
      .slowdown_percent();
}

sim::SweepDocHeader OverheadGrid::header() const {
  std::ostringstream grid;
  for (const workloads::BenchmarkStats* stats : rows_) {
    grid << stats->name << ':' << stats->cycles << ':' << stats->cf_count
         << ';';
  }
  std::ostringstream config;
  config << "queue_depth=" << config_.queue_depth
         << ";transport=" << config_.transport_cycles
         << ";lat=" << workloads::kOptimizedLatency << ','
         << workloads::kPollingLatency << ',' << workloads::kIrqLatency;
  sim::SweepDocHeader header;
  header.bench = bench_;
  header.total_points = rows_.size();
  header.grid_hash = sim::fingerprint_hex(grid.str());
  header.config_fingerprint = sim::fingerprint_hex(config.str());
  return header;
}

}  // namespace titan::api

// Typed trace-driven overhead sweeps (paper Tables II/III).
//
// The table benches don't co-simulate the SoC — they replay calibrated
// synthetic commit traces through cfi::simulate_cf_cycles.  OverheadGrid is
// their scenario layer: a named, typed (benchmark rows x queue config x
// firmware latencies) grid whose deterministic serialization becomes the
// sweep-report identity, exactly like ScenarioSet does for co-sim grids.
// This replaces the hand-derived description helpers that used to live in
// bench/sweep_bench_common.hpp.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sim/shard_merge.hpp"
#include "titancfi/overhead_model.hpp"
#include "workloads/embench.hpp"

namespace titan::api {

class OverheadGrid {
 public:
  /// Table II rows (benchmarks both comparator papers report), queue depth 1.
  [[nodiscard]] static OverheadGrid table2();
  /// Full Table III grid (EmBench-IoT + RISC-V-Tests), queue depth 8.
  [[nodiscard]] static OverheadGrid table3();
  /// The Table III grid reporting under bench name "micro_sweep"
  /// (bench_micro's sharded sweep mode).
  [[nodiscard]] static OverheadGrid micro_sweep();
  /// Named lookup ("table2" / "table3" / "micro_sweep") for driver-style
  /// callers; throws std::invalid_argument on an unknown name.
  [[nodiscard]] static OverheadGrid named(std::string_view name);

  [[nodiscard]] const std::string& bench() const { return bench_; }
  [[nodiscard]] std::size_t size() const { return rows_.size(); }
  [[nodiscard]] const workloads::BenchmarkStats& row(std::size_t index) const {
    return *rows_[index];
  }
  [[nodiscard]] const cfi::OverheadConfig& base_config() const {
    return config_;
  }

  /// Evaluate one grid point: calibrated synthetic trace of `row(index)`
  /// replayed at `check_latency`, as percent slowdown.  `params` comes from
  /// calibrate(row(index)) — callers that evaluate several latencies per row
  /// calibrate once and reuse it.
  [[nodiscard]] double slowdown(std::size_t index,
                                const workloads::TraceParams& params,
                                std::uint32_t check_latency) const;

  /// Report identity: grid hash over (name, cycles, cf) of every row, config
  /// fingerprint over the queue/transport values and the three firmware
  /// check latencies — all read from the live objects the sweep runs with.
  [[nodiscard]] sim::SweepDocHeader header() const;

 private:
  OverheadGrid(std::string bench,
               std::vector<const workloads::BenchmarkStats*> rows,
               cfi::OverheadConfig config)
      : bench_(std::move(bench)), rows_(std::move(rows)), config_(config) {}

  std::string bench_;
  std::vector<const workloads::BenchmarkStats*> rows_;
  cfi::OverheadConfig config_;
};

}  // namespace titan::api

#include "api/wire.hpp"

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/json.hpp"

namespace titan::api {

namespace {

[[noreturn]] void bad_request(const std::string& what) {
  throw WireError(WireErrorCode::kBadRequest, what);
}

/// Fetch an optional string field; wrong type is a shape violation.
std::string string_field(const sim::JsonValue& object, std::string_view key) {
  const sim::JsonValue* value = object.find(key);
  if (value == nullptr) {
    return {};
  }
  if (value->kind() != sim::JsonValue::Kind::kString) {
    bad_request("field '" + std::string(key) + "' must be a string");
  }
  return value->as_string();
}

void append_quoted(std::string& out, std::string_view text) {
  out += '"';
  out += sim::json_escape(text);
  out += '"';
}

std::string response_head(std::string_view id, bool ok) {
  std::string out = "{\"schema_version\":";
  out += std::to_string(kWireSchemaVersion);
  out += ",\"id\":";
  append_quoted(out, id);
  out += ok ? ",\"ok\":true" : ",\"ok\":false";
  return out;
}

}  // namespace

std::string_view wire_error_code_name(WireErrorCode code) {
  switch (code) {
    case WireErrorCode::kBadFrame:
      return "bad_frame";
    case WireErrorCode::kOversizedFrame:
      return "oversized_frame";
    case WireErrorCode::kBadRequest:
      return "bad_request";
    case WireErrorCode::kUnsupportedVersion:
      return "unsupported_version";
    case WireErrorCode::kUnknownOp:
      return "unknown_op";
    case WireErrorCode::kUnknownScenario:
      return "unknown_scenario";
    case WireErrorCode::kInvalidScenario:
      return "invalid_scenario";
    case WireErrorCode::kSnapshotError:
      return "snapshot_error";
    case WireErrorCode::kOverloaded:
      return "overloaded";
    case WireErrorCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case WireErrorCode::kBudgetExceeded:
      return "budget_exceeded";
    case WireErrorCode::kCancelled:
      return "cancelled";
    case WireErrorCode::kShutdown:
      return "shutdown";
    case WireErrorCode::kInternal:
      return "internal";
  }
  return "internal";
}

Request parse_request(std::string_view line) {
  sim::JsonValue root;
  try {
    root = sim::JsonValue::parse(line);
  } catch (const sim::JsonParseError& error) {
    throw WireError(WireErrorCode::kBadFrame,
                    std::string("frame is not valid JSON: ") + error.what());
  }
  if (root.kind() != sim::JsonValue::Kind::kObject) {
    throw WireError(WireErrorCode::kBadFrame,
                    "frame must be a JSON object");
  }

  const sim::JsonValue* version = root.find("schema_version");
  if (version == nullptr) {
    bad_request("missing required field 'schema_version'");
  }
  if (version->kind() != sim::JsonValue::Kind::kNumber) {
    bad_request("field 'schema_version' must be an integer");
  }
  const std::int64_t version_value = version->as_int();
  if (version_value != kWireSchemaVersion) {
    throw WireError(WireErrorCode::kUnsupportedVersion,
                    "schema_version " + std::to_string(version_value) +
                        " is not supported (this server speaks " +
                        std::to_string(kWireSchemaVersion) + ")");
  }

  const std::string op_name = [&] {
    const sim::JsonValue* op = root.find("op");
    if (op == nullptr) {
      bad_request("missing required field 'op'");
    }
    if (op->kind() != sim::JsonValue::Kind::kString) {
      bad_request("field 'op' must be a string");
    }
    return op->as_string();
  }();

  Request request;
  request.schema_version = static_cast<int>(version_value);
  request.id = string_field(root, "id");

  if (op_name == "ping") {
    request.op = RequestOp::kPing;
  } else if (op_name == "list") {
    request.op = RequestOp::kList;
    request.tag = string_field(root, "tag");
  } else if (op_name == "run") {
    request.op = RequestOp::kRun;
    request.scenario = string_field(root, "scenario");
    request.spec = string_field(root, "spec");
    request.engine = string_field(root, "engine");
    if (request.scenario.empty() == request.spec.empty()) {
      bad_request("run takes exactly one of 'scenario' or 'spec'");
    }
    if (!request.engine.empty() && request.engine != "lockstep" &&
        request.engine != "event") {
      bad_request("field 'engine' must be 'lockstep' or 'event', got '" +
                  request.engine + "'");
    }
    if (const sim::JsonValue* deadline = root.find("deadline_ms")) {
      if (deadline->kind() != sim::JsonValue::Kind::kNumber) {
        bad_request("field 'deadline_ms' must be an integer");
      }
      const std::int64_t value = deadline->as_int();
      if (value < 0) {
        bad_request("field 'deadline_ms' must be >= 0");
      }
      request.deadline_ms = value;
    }
    if (const sim::JsonValue* budget = root.find("max_cycles")) {
      if (budget->kind() != sim::JsonValue::Kind::kNumber) {
        bad_request("field 'max_cycles' must be an integer");
      }
      const std::int64_t value = budget->as_int();
      if (value < 1) {
        bad_request("field 'max_cycles' must be >= 1");
      }
      request.max_cycles = static_cast<std::uint64_t>(value);
    }
  } else {
    throw WireError(WireErrorCode::kUnknownOp,
                    "unknown op '" + op_name + "'");
  }

  // Unknown keys fail loudly: a typo'd optional field ("tga") must not be
  // silently ignored on a versioned protocol.
  for (const auto& [key, unused] : root.members()) {
    const bool known =
        key == "schema_version" || key == "id" || key == "op" ||
        (request.op == RequestOp::kList && key == "tag") ||
        (request.op == RequestOp::kRun &&
         (key == "scenario" || key == "spec" || key == "engine" ||
          key == "deadline_ms" || key == "max_cycles"));
    if (!known) {
      bad_request("unknown field '" + key + "' for op '" + op_name + "'");
    }
  }
  return request;
}

std::string render_ping_response(std::string_view id) {
  std::string out = response_head(id, /*ok=*/true);
  out += ",\"op\":\"ping\"}";
  return out;
}

std::string render_list_response(
    std::string_view id,
    const std::vector<std::pair<std::string, std::string>>& scenarios) {
  std::string out = response_head(id, /*ok=*/true);
  out += ",\"op\":\"list\",\"scenarios\":[";
  bool first = true;
  for (const auto& [name, spec] : scenarios) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":";
    append_quoted(out, name);
    out += ",\"spec\":";
    append_quoted(out, spec);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string render_run_response(std::string_view id,
                                std::string_view scenario_name,
                                bool warm_start,
                                std::string_view report_json) {
  std::string out = response_head(id, /*ok=*/true);
  out += ",\"op\":\"run\",\"scenario\":";
  append_quoted(out, scenario_name);
  out += warm_start ? ",\"warm_start\":true" : ",\"warm_start\":false";
  out += ",\"report\":";
  append_quoted(out, report_json);
  out += '}';
  return out;
}

std::string render_error_response(std::string_view id, WireErrorCode code,
                                  std::string_view message,
                                  const ErrorDetail& detail) {
  std::string out = response_head(id, /*ok=*/false);
  out += ",\"error\":{\"code\":";
  append_quoted(out, wire_error_code_name(code));
  out += ",\"message\":";
  append_quoted(out, message);
  if (detail.has_cycles) {
    out += ",\"cycles\":" + std::to_string(detail.cycles);
  }
  if (detail.retry_after_ms != 0) {
    out += ",\"retry_after_ms\":" + std::to_string(detail.retry_after_ms);
  }
  out += "}}";
  return out;
}

}  // namespace titan::api

// The one typed sweep surface every bench runs through.
//
// A sweep is (identity header, point function, row emitter).  run_sweep()
// owns everything the benches used to duplicate: thread-pooling the points
// through sim::SweepRunner, slicing the grid with sim::ShardPlanner when the
// CLI asks for `--shard=i/K`, and rendering/writing the canonical full or
// partial report document.  A bench's main() reduces to: build a typed grid
// (ScenarioSet or OverheadGrid), parse the shared CLI, call run_sweep, and
// print its human-readable table from the returned rows.
//
// Shard partials produced here merge byte-identically into the serial
// `--json` document (tools/bench_merge, tools/bench_shard_driver) because
// the header comes from the typed grid's deterministic serialization and
// the rows are pure functions of their grid index.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "api/registry.hpp"
#include "api/run.hpp"
#include "sim/shard_merge.hpp"
#include "sim/sweep.hpp"

namespace titan::api {

template <typename Row>
struct SweepPlan {
  /// Report identity (ScenarioSet::header() / OverheadGrid::header()).
  sim::SweepDocHeader header;
  /// Evaluate one global grid index.  Must be a pure function of the index
  /// (SweepRunner may call it from pool threads).
  std::function<Row(std::size_t)> point;
  /// Emit one rows-array element for (row, global index).
  std::function<void(sim::JsonWriter&, const Row&, std::size_t)> emit;
};

template <typename Row>
struct SweepOutcome {
  std::vector<Row> rows;  ///< Owned slice, local (index - owned.begin) order.
  sim::ShardRange owned;  ///< Global indices this process evaluated.
  unsigned threads = 1;
  double seconds = 0;     ///< Wall clock of the point evaluations.

  [[nodiscard]] const Row& at_global(std::size_t index) const {
    return rows[index - owned.begin];
  }
};

/// Render and write the report documents a sweep run owes: the shard partial
/// when `cli.shard_given`, else the canonical full document when a JSON path
/// was requested.  Returns 0, or 1 after printing a write error mentioning
/// `bench_label`.
[[nodiscard]] int write_sweep_documents(const sim::SweepDocHeader& header,
                                        const sim::SweepCli& cli,
                                        const sim::RowEmitter& emit_row,
                                        std::string_view bench_label);

/// Evaluate the CLI-selected slice of the plan's grid (thread-pooled,
/// index-ordered) and write the owed documents.  Returns 0 on success.
template <typename Row>
[[nodiscard]] int run_sweep(const SweepPlan<Row>& plan,
                            const sim::SweepCli& cli,
                            SweepOutcome<Row>* outcome) {
  sim::SweepOptions options;
  options.threads = cli.threads;
  sim::SweepRunner runner(options);
  const sim::ShardPlanner planner(plan.header.total_points, cli.shard.count);
  outcome->owned = planner.range(cli.shard.index);
  outcome->threads = runner.threads();

  const auto start = std::chrono::steady_clock::now();
  const sim::ShardRange owned = outcome->owned;
  outcome->rows = runner.run<Row>(
      owned.size(),
      [&plan, &owned](std::size_t local) { return plan.point(owned.begin + local); });
  outcome->seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const sim::RowEmitter emit_row = [&plan, outcome](sim::JsonWriter& json,
                                                    std::size_t index) {
    plan.emit(json, outcome->at_global(index), index);
  };
  return write_sweep_documents(plan.header, cli, emit_row, plan.header.bench);
}

/// The canonical co-simulation sweep: one RunReport per scenario, emitted
/// through RunReport::emit_json_fields (all co-sim JSON rows share one
/// schema).  The set is captured by value, so the plan is self-contained.
[[nodiscard]] SweepPlan<RunReport> scenario_sweep_plan(ScenarioSet set);

}  // namespace titan::api

// Behavioural models of the two state-of-the-art comparators in Table II.
//
// DExIE [8] (Spang et al., JSPS 2022) — a hardware monitor with per-cycle
// enforcement FSMs + shadow stack.  Its checks are single-cycle and lockstep,
// but interfacing the monitor reduces the achievable clock of the protected
// core ("the authors of [8] report a reduction in the clock frequency of the
// tested cores"); the reported ~47-48% EmBench overheads are dominated by
// that clock degradation.
//
// FIXER [6] (De et al., DATE 2019) — an ISA-extension shadow stack +
// jump-table module on the Rocket custom-coprocessor port; each protected
// call/return executes extra custom instructions on an otherwise unmodified
// pipeline (reported ~1.5% average overhead).
//
// Both models derive a slowdown from the same trace statistics the TitanCFI
// overhead model consumes, so Table II can show modelled numbers next to the
// constants reported in the respective papers.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace titan::baselines {

struct TraceStats {
  std::uint64_t total_cycles = 0;
  std::uint64_t cf_count = 0;
};

/// DExIE-style hardware monitor.
struct DexieModel {
  /// Clock degradation when the monitor is attached (f_unprotected /
  /// f_protected).  1.47 reproduces DExIE's best reported EmBench overheads.
  double clock_factor = 1.47;
  /// Lockstep check latency (cycles at the degraded clock).
  std::uint32_t check_cycles = 1;

  [[nodiscard]] double slowdown_percent(const TraceStats& stats) const {
    if (stats.total_cycles == 0) {
      return 0.0;
    }
    // Every CF op stalls the core for the (tiny) check; the whole run then
    // executes at the degraded clock.
    const double stretched =
        static_cast<double>(stats.total_cycles) +
        static_cast<double>(stats.cf_count) * check_cycles;
    return 100.0 * (clock_factor * stretched /
                        static_cast<double>(stats.total_cycles) -
                    1.0);
  }
};

/// FIXER-style ISA-extension shadow stack.
struct FixerModel {
  /// Extra instructions executed per protected call/return (push/pop custom
  /// ops on the coprocessor interface).
  std::uint32_t extra_cycles_per_cf = 3;

  [[nodiscard]] double slowdown_percent(const TraceStats& stats) const {
    if (stats.total_cycles == 0) {
      return 0.0;
    }
    return 100.0 * static_cast<double>(stats.cf_count) * extra_cycles_per_cf /
           static_cast<double>(stats.total_cycles);
  }
};

/// Overheads reported by the original papers for Table II's benchmarks
/// (std::nullopt == "n.a." in the paper's table).
[[nodiscard]] std::optional<double> dexie_reported(std::string_view benchmark);
[[nodiscard]] std::optional<double> fixer_reported(std::string_view benchmark);

}  // namespace titan::baselines

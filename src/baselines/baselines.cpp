#include "baselines/baselines.hpp"

#include <array>
#include <utility>

namespace titan::baselines {

namespace {

// Table II, column "[8]" — DExIE's best reported slowdowns.
constexpr std::array<std::pair<std::string_view, double>, 4> kDexie = {{
    {"aha-mont64", 48.0},
    {"edn", 47.0},
    {"matmult-int", 48.0},
    {"ud", 48.0},
}};

// Table II, column "[6]" — FIXER reports a flat ~2% on its RISC-V-Tests
// selection (1.5% average claimed in the paper text).
constexpr std::array<std::string_view, 5> kFixerBenchmarks = {
    "rsort", "median", "qsort", "multiply", "dhrystone"};

}  // namespace

std::optional<double> dexie_reported(std::string_view benchmark) {
  for (const auto& [name, value] : kDexie) {
    if (name == benchmark) {
      return value;
    }
  }
  return std::nullopt;
}

std::optional<double> fixer_reported(std::string_view benchmark) {
  for (const std::string_view name : kFixerBenchmarks) {
    if (name == benchmark) {
      return 2.0;
    }
  }
  return std::nullopt;
}

}  // namespace titan::baselines

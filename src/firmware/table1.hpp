// Table I harness: cost of the return-address-protection firmware in the RoT.
//
// Reproduces the paper's measurement: the host side is emulated by writing a
// commit log into the CFI Mailbox and ringing the doorbell; the Ibex model
// executes the real generated firmware; every retired instruction is
// attributed to
//   IRQ vs CFI       — by PC against the firmware section marks, and
//   Logic / Mem.RoT / Mem.SoC — by the effective address of the access
// exactly as described in Sec. V-B.  The 45-cycle doorbell→ISR wake-up is
// charged to IRQ/Logic (instruction count 0, cycle count 45).
#pragma once

#include <cstdint>
#include <ostream>

#include "firmware/builder.hpp"
#include "titancfi/rot_subsystem.hpp"

namespace titan::fw {

enum class OpCase { kCall, kReturn };

struct CostBucket {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;

  CostBucket& operator+=(const CostBucket& other) {
    instructions += other.instructions;
    cycles += other.cycles;
    return *this;
  }
};

/// One Table-I row group: a 2x3 matrix of buckets plus totals.
struct CostBreakdown {
  CostBucket irq_logic, irq_mem_rot, irq_mem_soc;
  CostBucket cfi_logic, cfi_mem_rot, cfi_mem_soc;

  [[nodiscard]] CostBucket irq_total() const;
  [[nodiscard]] CostBucket cfi_total() const;
  [[nodiscard]] CostBucket total() const;
};

/// Firmware organisations measured by Table I.
enum class RotVariant { kIrq, kPolling, kOptimized };

/// Measure the steady-state cost of checking one CALL or one RETURN.
/// `ops` > 1 averages over several operations (they are deterministic, so
/// the default of 1 after warm-up is exact).
[[nodiscard]] CostBreakdown measure_policy_cost(RotVariant variant,
                                                OpCase op_case,
                                                unsigned ss_capacity = 32);

/// Render the full Table I (all three variants, CALL and RET).
void print_table1(std::ostream& os);

}  // namespace titan::fw

#include "firmware/table1.hpp"

#include <iomanip>
#include <stdexcept>
#include <vector>

#include "rv/encode.hpp"
#include "soc/mailbox.hpp"
#include "soc/memmap.hpp"
#include "titancfi/commit_log.hpp"

namespace titan::fw {

namespace {

struct Bench {
  soc::Mailbox mailbox;
  sim::Memory soc_memory;
  std::unique_ptr<cfi::RotSubsystem> rot;
  FwVariant fw_variant;

  explicit Bench(RotVariant variant) {
    FirmwareConfig config;
    config.variant =
        variant == RotVariant::kIrq ? FwVariant::kIrq : FwVariant::kPolling;
    fw_variant = config.variant;
    const auto fabric = variant == RotVariant::kOptimized
                            ? cfi::RotFabric::kOptimized
                            : cfi::RotFabric::kBaseline;
    rot = std::make_unique<cfi::RotSubsystem>(build_firmware(config), fabric,
                                              mailbox, soc_memory);
    // Run init until the firmware reaches its idle loop.
    for (int guard = 0; guard < 10000; ++guard) {
      if (idle()) {
        return;
      }
      rot->step();
    }
    throw std::runtime_error("Table1: firmware never reached idle");
  }

  [[nodiscard]] bool idle() {
    if (fw_variant == FwVariant::kIrq) {
      return rot->core().sleeping();
    }
    return rot->section_of(rot->core().pc()) == "main";
  }

  /// Send one commit log and process it; optionally collect the breakdown.
  void run_op(const cfi::CommitLog& log, CostBreakdown* breakdown) {
    const auto beats = log.pack();
    for (unsigned i = 0; i < beats.size(); ++i) {
      mailbox.set_data(i, beats[i]);
    }
    mailbox.ring_doorbell();

    bool seen_policy = false;
    for (int guard = 0; guard < 1'000'000; ++guard) {
      // Stop once the op is fully processed and the firmware is idle again.
      if (mailbox.completion_pending() && idle()) {
        break;
      }
      const ibex::IbexStep step = rot->step();
      if (step.irq_entry) {
        if (breakdown != nullptr) {
          breakdown->irq_logic.cycles += step.cycles;
        }
        continue;
      }
      if (!step.retired) {
        continue;
      }
      const std::string section = rot->section_of(step.pc);
      if (section == "main" || section == "init") {
        continue;  // Idle/poll loop: not part of the per-op cost (Sec. V-B).
      }
      seen_policy |= section == "cfi";
      if (breakdown == nullptr) {
        continue;
      }
      const bool is_irq = section == "irq" || section == "irq_exit";
      CostBucket* bucket = nullptr;
      if (step.mem_addr.has_value()) {
        const bool rot_private = soc::is_rot_private(*step.mem_addr);
        bucket = is_irq ? (rot_private ? &breakdown->irq_mem_rot
                                       : &breakdown->irq_mem_soc)
                        : (rot_private ? &breakdown->cfi_mem_rot
                                       : &breakdown->cfi_mem_soc);
      } else {
        bucket = is_irq ? &breakdown->irq_logic : &breakdown->cfi_logic;
      }
      bucket->instructions += 1;
      bucket->cycles += step.cycles;
    }
    if (!seen_policy && breakdown != nullptr) {
      throw std::runtime_error("Table1: policy never executed");
    }
    mailbox.clear_completion();
    mailbox.set_data(0, 0);
  }
};

cfi::CommitLog make_call(std::uint64_t pc) {
  cfi::CommitLog log;
  log.pc = pc;
  log.encoding = rv::enc_j(0x6F, 1, 0x100);  // jal ra, +0x100
  log.next = pc + 4;
  log.target = pc + 0x100;
  return log;
}

cfi::CommitLog make_return(std::uint64_t pc, std::uint64_t target) {
  cfi::CommitLog log;
  log.pc = pc;
  log.encoding = 0x00008067;  // jalr x0, 0(ra)
  log.next = pc + 4;
  log.target = target;
  return log;
}

}  // namespace

CostBucket CostBreakdown::irq_total() const {
  CostBucket bucket;
  bucket += irq_logic;
  bucket += irq_mem_rot;
  bucket += irq_mem_soc;
  return bucket;
}

CostBucket CostBreakdown::cfi_total() const {
  CostBucket bucket;
  bucket += cfi_logic;
  bucket += cfi_mem_rot;
  bucket += cfi_mem_soc;
  return bucket;
}

CostBucket CostBreakdown::total() const {
  CostBucket bucket = irq_total();
  bucket += cfi_total();
  return bucket;
}

CostBreakdown measure_policy_cost(RotVariant variant, OpCase op_case,
                                  unsigned ss_capacity) {
  (void)ss_capacity;
  Bench bench(variant);

  // Warm-up: a couple of call/return pairs keep the shadow stack shallow and
  // the measurement in steady state (no spill/fill traffic).
  const std::uint64_t base = 0x8000'0000;
  bench.run_op(make_call(base), nullptr);
  bench.run_op(make_return(base + 0x100 + 0x40, base + 4), nullptr);

  CostBreakdown breakdown;
  if (op_case == OpCase::kCall) {
    bench.run_op(make_call(base + 0x20), &breakdown);
  } else {
    bench.run_op(make_call(base + 0x20), nullptr);
    bench.run_op(make_return(base + 0x120 + 0x40, base + 0x24), &breakdown);
  }
  return breakdown;
}

void print_table1(std::ostream& os) {
  const auto row = [&os](const char* label, const CostBucket& irq,
                         const CostBucket& cfi) {
    const CostBucket total{irq.instructions + cfi.instructions,
                           irq.cycles + cfi.cycles};
    os << "    " << std::left << std::setw(10) << label << std::right
       << std::setw(6) << irq.instructions << std::setw(6) << cfi.instructions
       << std::setw(6) << total.instructions << "  |" << std::setw(6)
       << irq.cycles << std::setw(6) << cfi.cycles << std::setw(6)
       << total.cycles << "\n";
  };

  os << "TABLE I — Cycles required to implement the return address protection"
        " policy in OpenTitan\n";
  os << "  (columns: instructions IRQ/CFI/TOT | cycles IRQ/CFI/TOT)\n";
  for (const auto& [variant, variant_name] :
       std::vector<std::pair<RotVariant, const char*>>{
           {RotVariant::kIrq, "IRQ"},
           {RotVariant::kPolling, "Polling"},
           {RotVariant::kOptimized, "Optimized"}}) {
    os << "  " << variant_name << ":\n";
    for (const auto& [op, op_name] : std::vector<std::pair<OpCase, const char*>>{
             {OpCase::kCall, "CALL"}, {OpCase::kReturn, "RET."}}) {
      const CostBreakdown breakdown = measure_policy_cost(variant, op);
      os << "   " << op_name << "\n";
      row("Logic", breakdown.irq_logic, breakdown.cfi_logic);
      row("Mem. RoT", breakdown.irq_mem_rot, breakdown.cfi_mem_rot);
      row("Mem. SoC", breakdown.irq_mem_soc, breakdown.cfi_mem_soc);
      row("TOT", breakdown.irq_total(), breakdown.cfi_total());
    }
  }
}

}  // namespace titan::fw

// RV32 CFI-firmware generator for the OpenTitan Ibex core.
//
// Emits, via the built-in assembler, the three firmware organisations the
// paper measures (Table I):
//   * kIrq      — interrupt-driven: WFI idle loop; the CFI mailbox doorbell
//                 wakes Ibex, the ISR spills 6 registers, claims the PLIC,
//                 runs the policy, completes, restores, MRET (Sec. IV-C);
//   * kPolling  — busy-waits on the doorbell register, paying no IRQ
//                 entry/exit cost (Sec. V-B "Polling");
//   * the "Optimized" configuration reuses the kPolling image on the
//     low-latency RoT fabric (RotFabric::kOptimized) — it is an interconnect
//     change, not a firmware change.
//
// The generated policy is the shadow-stack return-address protection with
// HMAC-authenticated spill/fill, mirroring firmware/shadow_stack.hpp
// instruction-for-instruction (differential tests enforce agreement).
//
// Section marks (consumed by Table I attribution and the RotSubsystem):
//   "init"  — reset/bring-up code;
//   "main"  — idle loop (WFI or doorbell poll; excluded from per-op cost);
//   "irq"   — ISR prologue (register spill, PLIC claim, doorbell ack);
//   "cfi"   — the policy body (decode, shadow-stack update, verdict);
//   "spill" / "fill" — overflow/underflow slow paths;
//   "irq_exit" — ISR epilogue (PLIC complete, restore, MRET).
#pragma once

#include "rv/assembler.hpp"

namespace titan::fw {

enum class FwVariant { kIrq, kPolling };

struct FirmwareConfig {
  FwVariant variant = FwVariant::kIrq;
  unsigned ss_capacity = 32;  ///< On-chip shadow-stack entries (words).
  unsigned spill_block = 16;  ///< Entries per spilled segment.
  /// Also enforce forward edges: indirect jumps and register-indirect calls
  /// must target an entry of the jump table at FwLayout::kJumpTable (count
  /// word followed by 32-bit targets, written into RoT SRAM by the host at
  /// protection-domain setup).  An empty table permits everything, so the
  /// feature is inert until provisioned.  Off by default to keep Table I's
  /// fast path identical to the paper's.
  bool enable_jump_table = false;
  /// Commit logs processed per doorbell.  1 (default) emits the paper's
  /// single-log firmware byte-for-byte; > 1 emits the burst loop: per
  /// IRQ/poll the firmware reads BATCH_COUNT, optionally verifies the Log
  /// Writer's burst MAC on the HMAC accelerator, then runs the policy over
  /// every batch slot before writing one verdict + completion.  Must be >=
  /// the Log Writer's configured burst (soc::Mailbox::kBatchSlots at most).
  unsigned batch_capacity = 1;
  /// Verify the burst MAC before trusting the batch slots (batch mode only;
  /// match the Log Writer's mac_batches).  One accelerator pass per burst —
  /// the per-log MAC cost shrinks with the batch thanks to HMAC's fixed
  /// 2-block pad overhead being paid once.
  bool batch_mac = true;
  /// Idempotent doorbell handshake (batch mode only): zero BATCH_COUNT the
  /// moment a burst is serviced, before writing the verdict.  A doorbell
  /// re-rung by the Log Writer's watchdog after a slow-but-successful check
  /// then reads count == 0 and takes the existing spurious-doorbell path
  /// (safe verdict + completion) instead of re-running the policy over a
  /// stale batch — which would corrupt the shadow stack.  Required by (and
  /// cross-checked against) a SocConfig with a doorbell watchdog.
  bool retry_handshake = false;
  /// On a burst-MAC mismatch answer the re-request verdict (2) instead of a
  /// blame-slot-0 violation, asking the Log Writer to retransmit the batch.
  /// Requires batch_mac; cross-checked against SocConfig::mac_rerequest.
  bool mac_rerequest = false;
};

/// Firmware data layout in the RoT private SRAM.
struct FwLayout {
  static constexpr std::uint32_t kVars = 0x2000'0000;       // variable block
  static constexpr std::uint32_t kSsPtr = kVars + 0;        // current top
  static constexpr std::uint32_t kDepth = kVars + 4;        // live entries
  static constexpr std::uint32_t kSpillPtr = kVars + 8;     // next arena slot
  static constexpr std::uint32_t kSpillCount = kVars + 12;  // spilled segments
  static constexpr std::uint32_t kSsBase = 0x2000'0100;     // stack storage
  /// Forward-edge jump table: [count][target0][target1]... (32-bit words).
  static constexpr std::uint32_t kJumpTable = 0x2000'0800;
};

[[nodiscard]] rv::Image build_firmware(const FirmwareConfig& config);

}  // namespace titan::fw

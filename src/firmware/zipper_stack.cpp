#include "firmware/zipper_stack.hpp"

namespace titan::fw {

ZipperStack::ZipperStack(sim::Memory& untrusted_memory,
                         std::vector<std::uint8_t> key, sim::Addr frame_base)
    : memory_(untrusted_memory), key_(std::move(key)), frame_base_(frame_base) {
  // Genesis tag: MAC over the empty chain, so an attacker cannot forge a
  // "bottom of stack" frame either.
  top_tag_ = accel_.mac_accounted(key_, {}).digest;
}

crypto::Digest ZipperStack::chain(std::uint64_t return_address,
                                  const crypto::Digest& previous) {
  std::vector<std::uint8_t> message(8 + previous.size());
  for (unsigned b = 0; b < 8; ++b) {
    message[b] = static_cast<std::uint8_t>(return_address >> (8 * b));
  }
  std::copy(previous.begin(), previous.end(), message.begin() + 8);
  return accel_.mac_accounted(key_, message).digest;
}

void ZipperStack::push(std::uint64_t return_address) {
  // Frame i holds (address_i, tag_{i-1}); the new chain head goes to the
  // RoT register.
  const sim::Addr frame = frame_addr(depth_);
  memory_.write64(frame, return_address);
  for (std::size_t b = 0; b < top_tag_.size(); ++b) {
    memory_.write8(frame + 8 + b, top_tag_[b]);
  }
  top_tag_ = chain(return_address, top_tag_);
  ++depth_;
}

PopVerdict ZipperStack::pop_and_check(std::uint64_t actual_target) {
  if (depth_ == 0) {
    return PopVerdict::kUnderflow;
  }
  const sim::Addr frame = frame_addr(depth_ - 1);
  const std::uint64_t stored_address = memory_.read64(frame);
  crypto::Digest stored_previous;
  for (std::size_t b = 0; b < stored_previous.size(); ++b) {
    stored_previous[b] = memory_.read8(frame + 8 + b);
  }

  // Authenticity first: the frame must reproduce the RoT-held chain head.
  const crypto::Digest recomputed = chain(stored_address, stored_previous);
  if (!crypto::digest_equal(recomputed, top_tag_)) {
    return PopVerdict::kTampered;
  }
  // Then the CFI check proper.
  --depth_;
  top_tag_ = stored_previous;
  return stored_address == actual_target ? PopVerdict::kMatch
                                         : PopVerdict::kMismatch;
}

}  // namespace titan::fw

#include "firmware/shadow_stack.hpp"

#include <algorithm>

namespace titan::fw {

namespace {

/// Bytes per spilled segment: 32-byte HMAC tag + the entries.
std::size_t segment_bytes(const ShadowStackConfig& config) {
  return 32 + config.spill_block * 8;
}

}  // namespace

ShadowStack::ShadowStack(const ShadowStackConfig& config,
                         sim::Memory& soc_memory,
                         std::vector<std::uint8_t> key)
    : config_(config),
      soc_memory_(soc_memory),
      key_(std::move(key)),
      spill_ptr_(config.spill_base) {
  on_chip_.reserve(config_.capacity);
}

void ShadowStack::push(std::uint64_t return_address) {
  if (on_chip_.size() >= config_.capacity) {
    spill_block();
  }
  on_chip_.push_back(return_address);
  max_depth_ = std::max<std::uint64_t>(max_depth_, depth());
}

PopVerdict ShadowStack::pop_and_check(std::uint64_t actual_target) {
  if (on_chip_.empty()) {
    if (spilled_segments_ == 0) {
      return PopVerdict::kUnderflow;
    }
    if (!fill_block()) {
      return PopVerdict::kTampered;
    }
  }
  const std::uint64_t expected = on_chip_.back();
  on_chip_.pop_back();
  return expected == actual_target ? PopVerdict::kMatch : PopVerdict::kMismatch;
}

void ShadowStack::spill_block() {
  // Serialise the oldest `spill_block` entries (bottom of the stack).
  std::vector<std::uint8_t> payload(config_.spill_block * 8);
  for (std::size_t i = 0; i < config_.spill_block; ++i) {
    const std::uint64_t value = on_chip_[i];
    for (unsigned b = 0; b < 8; ++b) {
      payload[8 * i + b] = static_cast<std::uint8_t>(value >> (8 * b));
    }
  }
  const auto mac = accel_.mac_accounted(key_, payload);

  // Segment layout in the (untrusted) arena: [MAC | entries].
  for (std::size_t i = 0; i < mac.digest.size(); ++i) {
    soc_memory_.write8(spill_ptr_ + i, mac.digest[i]);
  }
  for (std::size_t i = 0; i < payload.size(); ++i) {
    soc_memory_.write8(spill_ptr_ + 32 + i, payload[i]);
  }
  spill_ptr_ += segment_bytes(config_);
  ++spilled_segments_;
  ++spill_count_;

  on_chip_.erase(on_chip_.begin(),
                 on_chip_.begin() + static_cast<std::ptrdiff_t>(config_.spill_block));
}

bool ShadowStack::fill_block() {
  spill_ptr_ -= segment_bytes(config_);
  --spilled_segments_;
  ++fill_count_;

  std::vector<std::uint8_t> payload(config_.spill_block * 8);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = soc_memory_.read8(spill_ptr_ + 32 + i);
  }
  crypto::Digest stored;
  for (std::size_t i = 0; i < stored.size(); ++i) {
    stored[i] = soc_memory_.read8(spill_ptr_ + i);
  }
  const auto recomputed = accel_.mac_accounted(key_, payload);
  if (!crypto::digest_equal(recomputed.digest, stored)) {
    return false;
  }

  std::vector<std::uint64_t> restored(config_.spill_block);
  for (std::size_t i = 0; i < config_.spill_block; ++i) {
    std::uint64_t value = 0;
    for (unsigned b = 0; b < 8; ++b) {
      value |= static_cast<std::uint64_t>(payload[8 * i + b]) << (8 * b);
    }
    restored[i] = value;
  }
  on_chip_.insert(on_chip_.begin(), restored.begin(), restored.end());
  return true;
}

}  // namespace titan::fw

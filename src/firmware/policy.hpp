// Software-defined CFI policies (paper Sec. IV-C).
//
// TitanCFI's selling point is that the enforcement policy is firmware, so a
// policy is just code examining a commit log.  This header defines the
// golden-model policy interface used by the trace-driven evaluation, the
// differential tests against the RV32 firmware, and the policy-playground
// example.  Shipping policies:
//   * ShadowStackPolicy — the paper's return-address protection;
//   * JumpTablePolicy   — forward-edge protection (indirect calls/jumps must
//     land on registered entry points), the kind of alternative policy the
//     paper's conclusion calls future work;
//   * CompositePolicy   — conjunction of policies.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "firmware/shadow_stack.hpp"
#include "rv/isa.hpp"
#include "titancfi/commit_log.hpp"

namespace titan::fw {

/// Verdict written back to the first mailbox entry: 0 = safe, 1 = violation.
struct Verdict {
  bool ok = true;
  std::string reason;
};

class Policy {
 public:
  virtual ~Policy() = default;
  [[nodiscard]] virtual Verdict check(const cfi::CommitLog& log) = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Return-address protection via shadow stack (paper's implemented policy).
class ShadowStackPolicy final : public Policy {
 public:
  ShadowStackPolicy(const ShadowStackConfig& config, sim::Memory& soc_memory,
                    std::vector<std::uint8_t> key)
      : stack_(config, soc_memory, std::move(key)) {}

  [[nodiscard]] Verdict check(const cfi::CommitLog& log) override {
    switch (log.classify()) {
      case rv::CfKind::kCall:
        stack_.push(log.next);
        return {};
      case rv::CfKind::kReturn:
        switch (stack_.pop_and_check(log.target)) {
          case PopVerdict::kMatch:
            return {};
          case PopVerdict::kMismatch:
            return {false, "return-address mismatch"};
          case PopVerdict::kUnderflow:
            return {false, "shadow-stack underflow"};
          case PopVerdict::kTampered:
            return {false, "spilled segment failed authentication"};
        }
        return {false, "unreachable"};
      default:
        return {};  // Indirect jumps are not constrained by this policy.
    }
  }

  [[nodiscard]] std::string_view name() const override { return "shadow-stack"; }
  [[nodiscard]] ShadowStack& stack() { return stack_; }

 private:
  ShadowStack stack_;
};

/// Forward-edge protection: indirect calls and jumps must target a registered
/// entry point (coarse-grained CFI label set).
class JumpTablePolicy final : public Policy {
 public:
  void allow_target(std::uint64_t address) { allowed_.insert(address); }

  [[nodiscard]] Verdict check(const cfi::CommitLog& log) override {
    const rv::CfKind kind = log.classify();
    const bool is_indirect =
        kind == rv::CfKind::kIndirectJump ||
        (kind == rv::CfKind::kCall && is_register_call(log.encoding));
    if (!is_indirect) {
      return {};
    }
    if (allowed_.contains(log.target)) {
      return {};
    }
    return {false, "indirect transfer to unregistered target"};
  }

  [[nodiscard]] std::string_view name() const override { return "jump-table"; }

 private:
  static bool is_register_call(std::uint32_t encoding) {
    return (encoding & 0x7F) == 0x67;  // JALR-based call.
  }

  std::unordered_set<std::uint64_t> allowed_;
};

/// Conjunction: every sub-policy must accept.
class CompositePolicy final : public Policy {
 public:
  void add(std::unique_ptr<Policy> policy) {
    policies_.push_back(std::move(policy));
  }

  [[nodiscard]] Verdict check(const cfi::CommitLog& log) override {
    for (const auto& policy : policies_) {
      Verdict verdict = policy->check(log);
      if (!verdict.ok) {
        return verdict;
      }
    }
    return {};
  }

  [[nodiscard]] std::string_view name() const override { return "composite"; }

 private:
  std::vector<std::unique_ptr<Policy>> policies_;
};

}  // namespace titan::fw

// Zipper-Stack return-address protection (Li et al., ESORICS 2020 — the
// paper's reference [15] and the inspiration for TitanCFI's authenticated
// spills, Sec. VI).
//
// Instead of keeping the whole shadow stack in tamper-proof memory, Zipper
// Stack chains MACs: every pushed frame stores
//
//     tag_i = HMAC(key, return_address_i || tag_{i-1})
//
// in ordinary (untrusted) memory, while only the *top* tag lives in the
// RoT.  A return verifies the popped (address, previous-tag) pair by
// recomputing the chain head.  Any modification of any spilled frame breaks
// every tag above it, so integrity of the unbounded in-DRAM stack reduces
// to integrity of one register-sized secret — at the cost of one MAC per
// call and per return (TitanCFI's block-spill scheme amortises MACs over
// spill_block frames instead; the ablation bench quantifies the trade).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/accel.hpp"
#include "firmware/policy.hpp"
#include "sim/memory.hpp"
#include "soc/memmap.hpp"

namespace titan::fw {

class ZipperStack {
 public:
  /// `untrusted_memory`: where the (address, tag) frames live — in TitanCFI
  /// terms, SoC DRAM.  Only `top_tag_` models RoT-private state.
  ZipperStack(sim::Memory& untrusted_memory, std::vector<std::uint8_t> key,
              sim::Addr frame_base = soc::kSpillArena.base);

  void push(std::uint64_t return_address);
  [[nodiscard]] PopVerdict pop_and_check(std::uint64_t actual_target);

  [[nodiscard]] std::size_t depth() const { return depth_; }
  [[nodiscard]] std::uint64_t mac_operations() const {
    return accel_.invocations();
  }
  [[nodiscard]] std::uint64_t mac_cycles() const {
    return accel_.total_cycles();
  }

 private:
  static constexpr std::size_t kFrameBytes = 8 + 32;  // address + tag

  [[nodiscard]] crypto::Digest chain(std::uint64_t return_address,
                                     const crypto::Digest& previous);
  [[nodiscard]] sim::Addr frame_addr(std::size_t index) const {
    return frame_base_ + index * kFrameBytes;
  }

  sim::Memory& memory_;
  std::vector<std::uint8_t> key_;
  sim::Addr frame_base_;
  crypto::HmacAccel accel_;

  crypto::Digest top_tag_{};  ///< RoT-private chain head.
  std::size_t depth_ = 0;
};

/// Policy wrapper so the zipper stack slots into the same enforcement
/// machinery as the paper's shadow stack.
class ZipperStackPolicy final : public Policy {
 public:
  ZipperStackPolicy(sim::Memory& untrusted_memory,
                    std::vector<std::uint8_t> key)
      : stack_(untrusted_memory, std::move(key)) {}

  [[nodiscard]] Verdict check(const cfi::CommitLog& log) override {
    switch (log.classify()) {
      case rv::CfKind::kCall:
        stack_.push(log.next);
        return {};
      case rv::CfKind::kReturn:
        switch (stack_.pop_and_check(log.target)) {
          case PopVerdict::kMatch:
            return {};
          case PopVerdict::kMismatch:
            return {false, "return-address mismatch"};
          case PopVerdict::kUnderflow:
            return {false, "zipper-stack underflow"};
          case PopVerdict::kTampered:
            return {false, "zipper chain broken (frame tampered)"};
        }
        return {false, "unreachable"};
      default:
        return {};
    }
  }

  [[nodiscard]] std::string_view name() const override { return "zipper-stack"; }
  [[nodiscard]] ZipperStack& stack() { return stack_; }

 private:
  ZipperStack stack_;
};

}  // namespace titan::fw

// Golden (C++) model of the TitanCFI shadow-stack policy (paper Sec. V-B).
//
// "Our shadow-stack implementation parses the instruction binary to
//  distinguish call from return instructions. In case of a call, the expected
//  return address is extracted from the commit log and pushed into the shadow
//  stack. If a return is detected, the return address is extracted from the
//  commit log and compared with the value popped from the shadow stack. Any
//  mismatch is reported as a security violation. In both scenarios, the
//  shadow stack is checked for overflow or underflow and eventually saved
//  (or restored) from main memory after having been authenticated using the
//  cryptographic accelerators available in OpenTitan."
//
// The on-chip portion lives in the RoT private scratchpad; overflowing
// segments are HMAC-tagged and spilled to a statically reserved DRAM arena
// (Sec. VI, inspired by Zipper Stack).  The RV32 firmware implements the
// same algorithm instruction-by-instruction; differential tests pin the two
// against each other.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/accel.hpp"
#include "sim/memory.hpp"
#include "soc/memmap.hpp"

namespace titan::fw {

struct ShadowStackConfig {
  std::size_t capacity = 32;     ///< On-chip entries (RoT scratchpad).
  std::size_t spill_block = 16;  ///< Entries per spilled segment.
  sim::Addr spill_base = soc::kSpillArena.base;
};

enum class PopVerdict {
  kMatch,       ///< Return address matches — control flow intact.
  kMismatch,    ///< ROP detected: popped value != actual return target.
  kUnderflow,   ///< Return with an empty shadow stack (and nothing spilled).
  kTampered,    ///< Spilled segment failed HMAC authentication.
};

class ShadowStack {
 public:
  /// `soc_memory`: the DRAM that hosts the spill arena (untrusted).
  ShadowStack(const ShadowStackConfig& config, sim::Memory& soc_memory,
              std::vector<std::uint8_t> key);

  void push(std::uint64_t return_address);
  [[nodiscard]] PopVerdict pop_and_check(std::uint64_t actual_target);

  [[nodiscard]] std::size_t depth() const {
    return on_chip_.size() + spilled_segments_ * config_.spill_block;
  }
  [[nodiscard]] std::size_t on_chip_depth() const { return on_chip_.size(); }
  [[nodiscard]] std::uint64_t spills() const { return spill_count_; }
  [[nodiscard]] std::uint64_t fills() const { return fill_count_; }
  [[nodiscard]] std::uint64_t max_depth() const { return max_depth_; }
  [[nodiscard]] const crypto::HmacAccel& accel() const { return accel_; }

  /// Architectural state needed to suspend/resume a protection context
  /// (paper future work: per-thread CFI).  The on-chip entries are returned
  /// by value so the caller can serialise + authenticate them; already
  /// spilled segments stay in the arena, protected by their own MACs.
  struct PersistedState {
    std::vector<std::uint64_t> on_chip;
    std::size_t spilled_segments = 0;
    sim::Addr spill_ptr = 0;
  };
  [[nodiscard]] PersistedState persist() const {
    return {on_chip_, spilled_segments_, spill_ptr_};
  }
  void restore(const PersistedState& state) {
    on_chip_ = state.on_chip;
    spilled_segments_ = state.spilled_segments;
    spill_ptr_ = state.spill_ptr;
  }

 private:
  void spill_block();
  [[nodiscard]] bool fill_block();  ///< false when authentication fails.

  ShadowStackConfig config_;
  sim::Memory& soc_memory_;
  std::vector<std::uint8_t> key_;
  crypto::HmacAccel accel_;

  std::vector<std::uint64_t> on_chip_;
  std::size_t spilled_segments_ = 0;
  sim::Addr spill_ptr_;
  std::uint64_t spill_count_ = 0;
  std::uint64_t fill_count_ = 0;
  std::uint64_t max_depth_ = 0;
};

}  // namespace titan::fw

#include "firmware/builder.hpp"

#include <stdexcept>

#include "rv/isa.hpp"
#include "soc/hmac_mmio.hpp"
#include "soc/mailbox.hpp"
#include "soc/memmap.hpp"
#include "soc/plic.hpp"
#include "titancfi/rot_subsystem.hpp"

namespace titan::fw {

namespace {

using rv::Assembler;
using rv::Reg;

// Mailbox register byte offsets (see cfi::CommitLog::pack()).  The
// per-field offsets are relative to the log's first beat, so they hold both
// for the legacy single-log area (base + 0) and for every batch slot.
constexpr std::int32_t kMbResult = 0x00;     // verdict goes to data[0] low
constexpr std::int32_t kMbEncoding = 0x08;   // beat1 low  = encoding
constexpr std::int32_t kMbNextLo = 0x0C;     // beat1 high = next[31:0]
constexpr std::int32_t kMbTargetLo = 0x14;   // beat2 high = target[31:0]
constexpr std::int32_t kMbDoorbell = 0x40;
constexpr std::int32_t kMbCompletion = 0x48;
constexpr std::int32_t kMbBatchCount = 0x50;
constexpr std::int32_t kMbBatchMac = 0x60;
constexpr std::int32_t kMbBatchBase = 0x80;
constexpr std::int32_t kMbSlotStride = 0x20;

// Accelerator register byte offsets.
constexpr std::int32_t kAccCmd = 0x00;
constexpr std::int32_t kAccStatus = 0x04;
constexpr std::int32_t kAccSrc = 0x08;
constexpr std::int32_t kAccLen = 0x0C;
constexpr std::int32_t kAccKeySel = 0x10;
constexpr std::int32_t kAccDigest = 0x20;

/// Emit the shadow-stack policy subroutine.  Calling convention: clobbers
/// t0-t5, a0, a1 (the ISR spills this set); returns via ra.
///
/// Register roles in the fast path:
///   t0 = CFI mailbox base      t1 = instruction encoding
///   t2 = variable block base   t3 = bound / scratch
///   a0 = shadow-stack pointer  a1 = return address / target
///
/// `batched` changes the interface, not the checks: the caller preloads t0
/// with the batch-slot base (the per-field offsets are slot-relative either
/// way) and the verdict comes back in a0 (0 = safe, 1 = violation) instead
/// of being written to the mailbox result/completion registers — the burst
/// loop accumulates verdicts and completes once per doorbell.
void emit_policy(Assembler& a, const FirmwareConfig& config,
                 bool batched = false) {
  const std::int32_t ss_end =
      static_cast<std::int32_t>(FwLayout::kSsBase + config.ss_capacity * 4);
  const std::int32_t block_bytes =
      static_cast<std::int32_t>(config.spill_block * 4);
  const std::int32_t segment_bytes = 32 + block_bytes;

  auto policy = a.here();
  (void)policy;
  auto jal_path = a.new_label();
  auto do_call = a.new_label();
  auto call_push = a.new_label();
  auto do_ret = a.new_label();
  auto ret_pop = a.new_label();
  auto do_ijump = a.new_label();
  auto jt_check = a.new_label();
  auto do_spill = a.new_label();
  auto do_fill = a.new_label();
  auto fill_tamper = a.new_label();
  auto verdict_ok = a.new_label();
  auto verdict_bad = a.new_label();

  // ---- Decode the uncompressed encoding (paper Sec. IV-C) -----------------
  if (!batched) {
    a.li(Reg::kT0, soc::kCfiMailbox.base);
  }
  a.lw(Reg::kT1, Reg::kT0, kMbEncoding);       // SoC access
  a.andi(Reg::kT2, Reg::kT1, 0x7F);            // opcode
  a.li(Reg::kA1, 0x6F);
  a.beq(Reg::kT2, Reg::kA1, jal_path);         // JAL
  a.li(Reg::kA1, 0x67);
  a.bne(Reg::kT2, Reg::kA1, verdict_ok);       // not a checked CF op
  // JALR: rd = enc[11:7], rs1 = enc[19:15].
  a.srli(Reg::kA0, Reg::kT1, 7);
  a.andi(Reg::kA0, Reg::kA0, 31);
  a.li(Reg::kA1, 1);
  a.beq(Reg::kA0, Reg::kA1, do_call);          // jalr ra, ...
  a.li(Reg::kA1, 5);
  a.beq(Reg::kA0, Reg::kA1, do_call);          // jalr t0, ...
  a.bnez(Reg::kA0, do_ijump);                  // links elsewhere
  a.srli(Reg::kA0, Reg::kT1, 15);
  a.andi(Reg::kA0, Reg::kA0, 31);
  a.li(Reg::kA1, 1);
  a.beq(Reg::kA0, Reg::kA1, do_ret);           // jalr x0, 0(ra)
  a.li(Reg::kA1, 5);
  a.beq(Reg::kA0, Reg::kA1, do_ret);           // jalr x0, 0(t0)
  a.j(do_ijump);

  a.bind(jal_path);
  a.srli(Reg::kA0, Reg::kT1, 7);
  a.andi(Reg::kA0, Reg::kA0, 31);
  a.li(Reg::kA1, 1);
  a.beq(Reg::kA0, Reg::kA1, do_call);
  a.li(Reg::kA1, 5);
  a.beq(Reg::kA0, Reg::kA1, do_call);
  a.j(verdict_ok);                             // direct jump: not checked

  // ---- CALL: push the return site ------------------------------------------
  a.bind(do_call);
  a.lw(Reg::kA1, Reg::kT0, kMbNextLo);         // SoC: return address
  a.li(Reg::kT2, FwLayout::kVars);
  a.lw(Reg::kA0, Reg::kT2, 0);                 // RoT: ss_ptr
  a.li(Reg::kT3, ss_end);
  a.bgeu(Reg::kA0, Reg::kT3, do_spill);        // overflow -> spill
  a.bind(call_push);
  a.sw(Reg::kA1, Reg::kA0, 0);                 // RoT: push
  a.addi(Reg::kA0, Reg::kA0, 4);
  a.sw(Reg::kA0, Reg::kT2, 0);                 // RoT: ss_ptr
  a.lw(Reg::kT4, Reg::kT2, 4);                 // RoT: depth
  a.addi(Reg::kT4, Reg::kT4, 1);
  a.sw(Reg::kT4, Reg::kT2, 4);                 // RoT: depth
  if (config.enable_jump_table) {
    // Register-indirect calls also get the forward-edge check (the encoding
    // is still live in t1).
    a.andi(Reg::kT3, Reg::kT1, 0x7F);
    a.li(Reg::kT4, 0x67);
    a.beq(Reg::kT3, Reg::kT4, jt_check);
  }
  a.j(verdict_ok);

  // ---- RETURN: pop and compare ----------------------------------------------
  a.bind(do_ret);
  a.lw(Reg::kA1, Reg::kT0, kMbTargetLo);       // SoC: actual target
  a.li(Reg::kT2, FwLayout::kVars);
  a.lw(Reg::kA0, Reg::kT2, 0);                 // RoT: ss_ptr
  a.li(Reg::kT3, FwLayout::kSsBase);
  a.beq(Reg::kA0, Reg::kT3, do_fill);          // empty -> restore from DRAM
  a.bind(ret_pop);
  a.addi(Reg::kA0, Reg::kA0, -4);
  a.lw(Reg::kT4, Reg::kA0, 0);                 // RoT: pop expected
  a.sw(Reg::kA0, Reg::kT2, 0);                 // RoT: ss_ptr
  a.lw(Reg::kT5, Reg::kT2, 4);                 // RoT: depth
  a.addi(Reg::kT5, Reg::kT5, -1);
  a.sw(Reg::kT5, Reg::kT2, 4);                 // RoT: depth
  a.bne(Reg::kT4, Reg::kA1, verdict_bad);      // ROP detected
  a.j(verdict_ok);

  // ---- Indirect jumps -------------------------------------------------------
  // Unconstrained under pure return-address protection; validated against
  // the provisioned jump table when forward-edge enforcement is on.
  a.bind(do_ijump);
  if (!config.enable_jump_table) {
    a.j(verdict_ok);
  } else {
    a.bind(jt_check);
    a.lw(Reg::kA1, Reg::kT0, kMbTargetLo);     // SoC: actual target
    a.li(Reg::kT2, FwLayout::kJumpTable);
    a.lw(Reg::kT3, Reg::kT2, 0);               // RoT: entry count
    a.beqz(Reg::kT3, verdict_ok);              // empty table: inert
    {
      auto scan = a.new_label();
      a.bind(scan);
      a.lw(Reg::kT4, Reg::kT2, 4);             // RoT: next entry
      a.addi(Reg::kT2, Reg::kT2, 4);
      a.beq(Reg::kT4, Reg::kA1, verdict_ok);   // registered target
      a.addi(Reg::kT3, Reg::kT3, -1);
      a.bnez(Reg::kT3, scan);
    }
    a.j(verdict_bad);                          // unregistered forward edge
  }

  // ---- Verdict write-back ------------------------------------------------------
  if (!batched) {
    a.bind(verdict_ok);
    a.sw(Reg::kZero, Reg::kT0, kMbResult);       // SoC: verdict = safe
    a.li(Reg::kA1, 1);
    a.sw(Reg::kA1, Reg::kT0, kMbCompletion);     // SoC: completion
    a.ret();
    a.bind(verdict_bad);
    a.li(Reg::kA1, 1);
    a.sw(Reg::kA1, Reg::kT0, kMbResult);         // SoC: verdict = violation
    a.sw(Reg::kA1, Reg::kT0, kMbCompletion);     // SoC: completion
    a.ret();
  } else {
    a.bind(verdict_ok);
    a.li(Reg::kA0, 0);                           // verdict in a0, no MMIO
    a.ret();
    a.bind(verdict_bad);
    a.li(Reg::kA0, 1);
    a.ret();
  }

  // ---- Overflow spill (slow path) -------------------------------------------
  // Authenticates the oldest `spill_block` entries with the HMAC engine,
  // copies [MAC | entries] into the DRAM arena, slides the remainder down,
  // then resumes the push.  Extra scratch registers are preserved here so the
  // fast path keeps the paper's 6-register ISR frame.
  a.mark("spill");
  a.bind(do_spill);
  a.addi(Reg::kSp, Reg::kSp, -24);
  a.sw(Reg::kA2, Reg::kSp, 0);
  a.sw(Reg::kA3, Reg::kSp, 4);
  a.sw(Reg::kA4, Reg::kSp, 8);
  a.sw(Reg::kA5, Reg::kSp, 12);
  a.sw(Reg::kT6, Reg::kSp, 16);
  a.li(Reg::kA2, soc::kRotHmacAccel.base);
  a.li(Reg::kA3, FwLayout::kSsBase);
  a.sw(Reg::kA3, Reg::kA2, kAccSrc);
  a.li(Reg::kA4, block_bytes);
  a.sw(Reg::kA4, Reg::kA2, kAccLen);
  a.sw(Reg::kZero, Reg::kA2, kAccKeySel);
  a.li(Reg::kA4, 1);
  a.sw(Reg::kA4, Reg::kA2, kAccCmd);
  {
    auto wait = a.here();
    a.lw(Reg::kA4, Reg::kA2, kAccStatus);
    a.beqz(Reg::kA4, wait);
  }
  a.lw(Reg::kA5, Reg::kT2, 8);  // spill_ptr
  // Copy the 8 digest words accel -> arena.
  a.addi(Reg::kA3, Reg::kA2, kAccDigest);
  a.mv(Reg::kA4, Reg::kA5);
  a.li(Reg::kT6, 8);
  {
    auto loop = a.here();
    a.lw(Reg::kT4, Reg::kA3, 0);
    a.sw(Reg::kT4, Reg::kA4, 0);
    a.addi(Reg::kA3, Reg::kA3, 4);
    a.addi(Reg::kA4, Reg::kA4, 4);
    a.addi(Reg::kT6, Reg::kT6, -1);
    a.bnez(Reg::kT6, loop);
  }
  // Copy the spilled entries RoT SRAM -> arena.
  a.li(Reg::kA3, FwLayout::kSsBase);
  a.li(Reg::kT6, static_cast<std::int32_t>(config.spill_block));
  {
    auto loop = a.here();
    a.lw(Reg::kT4, Reg::kA3, 0);
    a.sw(Reg::kT4, Reg::kA4, 0);
    a.addi(Reg::kA3, Reg::kA3, 4);
    a.addi(Reg::kA4, Reg::kA4, 4);
    a.addi(Reg::kT6, Reg::kT6, -1);
    a.bnez(Reg::kT6, loop);
  }
  // Slide the remaining entries to the bottom.
  a.li(Reg::kA3, FwLayout::kSsBase);
  a.li(Reg::kA4, static_cast<std::int64_t>(FwLayout::kSsBase) + block_bytes);
  a.li(Reg::kT6,
       static_cast<std::int32_t>(config.ss_capacity - config.spill_block));
  {
    auto loop = a.here();
    a.lw(Reg::kT4, Reg::kA4, 0);
    a.sw(Reg::kT4, Reg::kA3, 0);
    a.addi(Reg::kA3, Reg::kA3, 4);
    a.addi(Reg::kA4, Reg::kA4, 4);
    a.addi(Reg::kT6, Reg::kT6, -1);
    a.bnez(Reg::kT6, loop);
  }
  // Bump spill_ptr / spill_count, drop ss_ptr by one block.
  a.lw(Reg::kA5, Reg::kT2, 8);
  a.addi(Reg::kA5, Reg::kA5, segment_bytes);
  a.sw(Reg::kA5, Reg::kT2, 8);
  a.lw(Reg::kA5, Reg::kT2, 12);
  a.addi(Reg::kA5, Reg::kA5, 1);
  a.sw(Reg::kA5, Reg::kT2, 12);
  a.lw(Reg::kA0, Reg::kT2, 0);
  a.addi(Reg::kA0, Reg::kA0, -block_bytes);
  a.lw(Reg::kA2, Reg::kSp, 0);
  a.lw(Reg::kA3, Reg::kSp, 4);
  a.lw(Reg::kA4, Reg::kSp, 8);
  a.lw(Reg::kA5, Reg::kSp, 12);
  a.lw(Reg::kT6, Reg::kSp, 16);
  a.addi(Reg::kSp, Reg::kSp, 24);
  a.j(call_push);

  // ---- Underflow fill (slow path) --------------------------------------------
  a.mark("fill");
  a.bind(do_fill);
  a.lw(Reg::kT4, Reg::kT2, 12);                // spill_count
  a.beqz(Reg::kT4, verdict_bad);               // true underflow
  a.addi(Reg::kSp, Reg::kSp, -24);
  a.sw(Reg::kA2, Reg::kSp, 0);
  a.sw(Reg::kA3, Reg::kSp, 4);
  a.sw(Reg::kA4, Reg::kSp, 8);
  a.sw(Reg::kA5, Reg::kSp, 12);
  a.sw(Reg::kT6, Reg::kSp, 16);
  a.lw(Reg::kA5, Reg::kT2, 8);
  a.addi(Reg::kA5, Reg::kA5, -segment_bytes);  // segment base
  // Restore entries arena -> RoT SRAM.
  a.addi(Reg::kA4, Reg::kA5, 32);
  a.li(Reg::kA3, FwLayout::kSsBase);
  a.li(Reg::kT6, static_cast<std::int32_t>(config.spill_block));
  {
    auto loop = a.here();
    a.lw(Reg::kT4, Reg::kA4, 0);
    a.sw(Reg::kT4, Reg::kA3, 0);
    a.addi(Reg::kA4, Reg::kA4, 4);
    a.addi(Reg::kA3, Reg::kA3, 4);
    a.addi(Reg::kT6, Reg::kT6, -1);
    a.bnez(Reg::kT6, loop);
  }
  // Recompute the MAC over the restored block.
  a.li(Reg::kA2, soc::kRotHmacAccel.base);
  a.li(Reg::kA3, FwLayout::kSsBase);
  a.sw(Reg::kA3, Reg::kA2, kAccSrc);
  a.li(Reg::kA4, block_bytes);
  a.sw(Reg::kA4, Reg::kA2, kAccLen);
  a.sw(Reg::kZero, Reg::kA2, kAccKeySel);
  a.li(Reg::kA4, 1);
  a.sw(Reg::kA4, Reg::kA2, kAccCmd);
  {
    auto wait = a.here();
    a.lw(Reg::kA4, Reg::kA2, kAccStatus);
    a.beqz(Reg::kA4, wait);
  }
  // Constant-time compare of the 8 digest words against the stored MAC.
  a.addi(Reg::kA3, Reg::kA2, kAccDigest);
  a.mv(Reg::kA4, Reg::kA5);
  a.li(Reg::kT6, 8);
  a.li(Reg::kT3, 0);                            // accumulated difference
  {
    auto loop = a.here();
    a.lw(Reg::kT4, Reg::kA3, 0);
    a.lw(Reg::kT5, Reg::kA4, 0);
    a.xor_(Reg::kT4, Reg::kT4, Reg::kT5);
    a.or_(Reg::kT3, Reg::kT3, Reg::kT4);
    a.addi(Reg::kA3, Reg::kA3, 4);
    a.addi(Reg::kA4, Reg::kA4, 4);
    a.addi(Reg::kT6, Reg::kT6, -1);
    a.bnez(Reg::kT6, loop);
  }
  // Commit the fill: spill_ptr back, count down, ss_ptr to a full block.
  a.sw(Reg::kA5, Reg::kT2, 8);
  a.lw(Reg::kT4, Reg::kT2, 12);
  a.addi(Reg::kT4, Reg::kT4, -1);
  a.sw(Reg::kT4, Reg::kT2, 12);
  a.li(Reg::kA0, static_cast<std::int64_t>(FwLayout::kSsBase) + block_bytes);
  a.sw(Reg::kA0, Reg::kT2, 0);
  a.lw(Reg::kA2, Reg::kSp, 0);
  a.lw(Reg::kA3, Reg::kSp, 4);
  a.lw(Reg::kA4, Reg::kSp, 8);
  a.lw(Reg::kA5, Reg::kSp, 12);
  a.lw(Reg::kT6, Reg::kSp, 16);
  a.addi(Reg::kSp, Reg::kSp, 24);
  a.bnez(Reg::kT3, fill_tamper);
  a.j(ret_pop);
  a.bind(fill_tamper);
  a.j(verdict_bad);

}

/// Emit the burst-drain entry point (batch mode): verify the Log Writer's
/// burst MAC (one HMAC-accelerator pass over the whole batch, key slot
/// kBatchMacKeySlot), then run the policy over every slot, then write one
/// verdict + completion for the doorbell.  Register roles: s2 = mailbox
/// base, s3 = batch count, s4 = slot index, s5 = slot pointer; the policy
/// subroutine gets the slot base in t0 and returns its verdict in a0.
void emit_batch_entry(Assembler& a, const FirmwareConfig& config,
                      Assembler::Label policy_entry) {
  auto done_ok = a.new_label();
  auto bad = a.new_label();
  auto tamper = a.new_label();
  auto epilogue = a.new_label();
  auto loop = a.new_label();

  a.addi(Reg::kSp, Reg::kSp, -8);
  a.sw(Reg::kRa, Reg::kSp, 0);                  // calls the policy below
  a.li(Reg::kS2, soc::kCfiMailbox.base);
  a.lw(Reg::kS3, Reg::kS2, kMbBatchCount);      // SoC: burst size
  a.beqz(Reg::kS3, done_ok);                    // spurious doorbell
  if (config.batch_mac) {
    // One accelerator pass authenticates count*32 bytes; HMAC's fixed
    // two-block pad cost is paid once per burst instead of once per log.
    a.li(Reg::kA2, soc::kRotHmacAccel.base);
    a.li(Reg::kA3,
         static_cast<std::int64_t>(soc::kCfiMailbox.base) + kMbBatchBase);
    a.sw(Reg::kA3, Reg::kA2, kAccSrc);
    a.slli(Reg::kA4, Reg::kS3, 5);              // bytes = count * 32
    a.sw(Reg::kA4, Reg::kA2, kAccLen);
    a.li(Reg::kA4, static_cast<std::int32_t>(cfi::kBatchMacKeySlot));
    a.sw(Reg::kA4, Reg::kA2, kAccKeySel);
    a.li(Reg::kA4, 1);
    a.sw(Reg::kA4, Reg::kA2, kAccCmd);
    {
      auto wait = a.here();
      a.lw(Reg::kA4, Reg::kA2, kAccStatus);
      a.beqz(Reg::kA4, wait);
    }
    // Constant-time compare: accelerator digest words vs mailbox MAC words.
    a.addi(Reg::kA3, Reg::kA2, kAccDigest);
    a.li(Reg::kA4,
         static_cast<std::int64_t>(soc::kCfiMailbox.base) + kMbBatchMac);
    a.li(Reg::kT6, 8);
    a.li(Reg::kT3, 0);
    {
      auto cmp = a.here();
      a.lw(Reg::kT4, Reg::kA3, 0);              // RoT: digest word
      a.lw(Reg::kT5, Reg::kA4, 0);              // SoC: transmitted MAC word
      a.xor_(Reg::kT4, Reg::kT4, Reg::kT5);
      a.or_(Reg::kT3, Reg::kT3, Reg::kT4);
      a.addi(Reg::kA3, Reg::kA3, 4);
      a.addi(Reg::kA4, Reg::kA4, 4);
      a.addi(Reg::kT6, Reg::kT6, -1);
      a.bnez(Reg::kT6, cmp);
    }
    a.bnez(Reg::kT3, tamper);
  }
  a.li(Reg::kS4, 0);                            // slot index
  a.addi(Reg::kS5, Reg::kS2, kMbBatchBase);     // slot pointer
  a.bind(loop);
  a.mv(Reg::kT0, Reg::kS5);                     // policy: fields at t0+off
  a.jal(Reg::kRa, policy_entry);
  a.bnez(Reg::kA0, bad);                        // a0 = per-log verdict
  a.addi(Reg::kS4, Reg::kS4, 1);
  a.addi(Reg::kS5, Reg::kS5, kMbSlotStride);
  a.blt(Reg::kS4, Reg::kS3, loop);
  a.bind(done_ok);
  if (config.retry_handshake) {
    // Consume the burst before answering: a watchdog re-ring now reads
    // count == 0 and lands on the spurious-doorbell path above.
    a.sw(Reg::kZero, Reg::kS2, kMbBatchCount);
  }
  a.sw(Reg::kZero, Reg::kS2, kMbResult);        // SoC: verdict = safe
  a.li(Reg::kA1, 1);
  a.sw(Reg::kA1, Reg::kS2, kMbCompletion);      // SoC: one completion/burst
  a.j(epilogue);
  a.bind(tamper);
  if (config.mac_rerequest) {
    // Transport corruption, not a violation: ask the Log Writer to resend
    // the burst (it still holds the logs; the retransmission carries a
    // freshly computed MAC and a rewritten BATCH_COUNT).
    if (config.retry_handshake) {
      a.sw(Reg::kZero, Reg::kS2, kMbBatchCount);
    }
    a.li(Reg::kA1, 2);                          // verdict = re-request
    a.sw(Reg::kA1, Reg::kS2, kMbResult);
    a.li(Reg::kA1, 1);
    a.sw(Reg::kA1, Reg::kS2, kMbCompletion);
    a.j(epilogue);
  }
  a.li(Reg::kS4, 0);                            // MAC mismatch: blame slot 0
  a.bind(bad);
  if (config.retry_handshake) {
    a.sw(Reg::kZero, Reg::kS2, kMbBatchCount);
  }
  a.slli(Reg::kA1, Reg::kS4, 1);                // verdict = index << 1 | 1
  a.ori(Reg::kA1, Reg::kA1, 1);
  a.sw(Reg::kA1, Reg::kS2, kMbResult);
  a.li(Reg::kA1, 1);
  a.sw(Reg::kA1, Reg::kS2, kMbCompletion);
  a.bind(epilogue);
  a.lw(Reg::kRa, Reg::kSp, 0);
  a.addi(Reg::kSp, Reg::kSp, 8);
  a.ret();
}

}  // namespace

rv::Image build_firmware(const FirmwareConfig& config) {
  if (config.batch_capacity > soc::Mailbox::kBatchSlots) {
    throw std::invalid_argument(
        "build_firmware: batch_capacity exceeds mailbox batch slots");
  }
  const bool batched = config.batch_capacity > 1;
  if (config.retry_handshake && !batched) {
    throw std::invalid_argument(
        "build_firmware: retry_handshake needs batch mode (only BATCH_COUNT "
        "makes the doorbell handshake idempotent)");
  }
  if (config.mac_rerequest && !(batched && config.batch_mac)) {
    throw std::invalid_argument(
        "build_firmware: mac_rerequest needs batch_mac (there is no burst "
        "MAC to fail without it)");
  }
  Assembler a(rv::Xlen::k32, soc::kRotFlash.base);

  auto isr = a.new_label();
  auto policy_entry = a.new_label();
  auto batch_entry = a.new_label();
  auto main_loop = a.new_label();
  // Per doorbell the firmware services one log (paper) or one burst.
  const Assembler::Label service_entry = batched ? batch_entry : policy_entry;

  // ---- Reset / init -------------------------------------------------------------
  a.mark("init");
  a.li(Reg::kSp, static_cast<std::int64_t>(soc::kRotSram.end() - 16));
  a.li(Reg::kT0, FwLayout::kVars);
  a.li(Reg::kT1, FwLayout::kSsBase);
  a.sw(Reg::kT1, Reg::kT0, 0);   // ss_ptr = base
  a.sw(Reg::kZero, Reg::kT0, 4); // depth = 0
  a.li(Reg::kT1, static_cast<std::int64_t>(soc::kSpillArena.base));
  a.sw(Reg::kT1, Reg::kT0, 8);   // spill_ptr = arena base
  a.sw(Reg::kZero, Reg::kT0, 12);
  if (config.variant == FwVariant::kIrq) {
    a.la(Reg::kT0, isr);
    a.csrrw(Reg::kZero, rv::csr::kMtvec, Reg::kT0);
    a.li(Reg::kT0, 1 << 11);  // MEIE
    a.csrrw(Reg::kZero, rv::csr::kMie, Reg::kT0);
    a.csrrsi(Reg::kZero, rv::csr::kMstatus, 8);  // MIE
  }
  a.j(main_loop);

  // ---- Idle loop ------------------------------------------------------------------
  a.mark("main");
  a.bind(main_loop);
  if (config.variant == FwVariant::kIrq) {
    a.wfi();
    a.j(main_loop);
  } else {
    auto poll = a.here();
    a.li(Reg::kT0, soc::kCfiMailbox.base);
    a.lw(Reg::kT1, Reg::kT0, kMbDoorbell);
    a.beqz(Reg::kT1, poll);
    a.sw(Reg::kZero, Reg::kT0, kMbDoorbell);  // ack
    a.jal(Reg::kRa, service_entry);
    a.j(poll);
  }

  // ---- ISR (IRQ variant only, but always emitted for layout stability) ------------
  a.mark("irq");
  a.bind(isr);
  if (!batched) {
    // Paper frame: exactly six registers (Sec. IV-C).
    a.addi(Reg::kSp, Reg::kSp, -24);
    a.sw(Reg::kRa, Reg::kSp, 0);
    a.sw(Reg::kT0, Reg::kSp, 4);
    a.sw(Reg::kT1, Reg::kSp, 8);
    a.sw(Reg::kT2, Reg::kSp, 12);
    a.sw(Reg::kA0, Reg::kSp, 16);
    a.sw(Reg::kA1, Reg::kSp, 20);
  } else {
    // Burst frame: the batch loop additionally clobbers a2-a4 and s2-s5;
    // the larger spill is amortised over the whole burst.
    a.addi(Reg::kSp, Reg::kSp, -52);
    a.sw(Reg::kRa, Reg::kSp, 0);
    a.sw(Reg::kT0, Reg::kSp, 4);
    a.sw(Reg::kT1, Reg::kSp, 8);
    a.sw(Reg::kT2, Reg::kSp, 12);
    a.sw(Reg::kA0, Reg::kSp, 16);
    a.sw(Reg::kA1, Reg::kSp, 20);
    a.sw(Reg::kA2, Reg::kSp, 24);
    a.sw(Reg::kA3, Reg::kSp, 28);
    a.sw(Reg::kA4, Reg::kSp, 32);
    a.sw(Reg::kS2, Reg::kSp, 36);
    a.sw(Reg::kS3, Reg::kSp, 40);
    a.sw(Reg::kS4, Reg::kSp, 44);
    a.sw(Reg::kS5, Reg::kSp, 48);
  }
  a.li(Reg::kT0, cfi::kRotPlic.base);
  a.lw(Reg::kA0, Reg::kT0, soc::Plic::kClaimOffset);  // RoT: claim
  a.li(Reg::kT1, soc::kCfiMailbox.base);
  a.lw(Reg::kT2, Reg::kT1, kMbDoorbell);              // SoC: spurious-IRQ check
  a.sw(Reg::kZero, Reg::kT1, kMbDoorbell);            // SoC: ack doorbell
  a.jal(Reg::kRa, service_entry);
  a.mark("irq_exit");
  a.li(Reg::kT0, cfi::kRotPlic.base);
  a.li(Reg::kT1, cfi::kCfiDoorbellIrq);
  a.sw(Reg::kT1, Reg::kT0, soc::Plic::kClaimOffset);  // RoT: complete
  a.lw(Reg::kRa, Reg::kSp, 0);
  a.lw(Reg::kT0, Reg::kSp, 4);
  a.lw(Reg::kT1, Reg::kSp, 8);
  a.lw(Reg::kT2, Reg::kSp, 12);
  a.lw(Reg::kA0, Reg::kSp, 16);
  a.lw(Reg::kA1, Reg::kSp, 20);
  if (!batched) {
    a.addi(Reg::kSp, Reg::kSp, 24);
  } else {
    a.lw(Reg::kA2, Reg::kSp, 24);
    a.lw(Reg::kA3, Reg::kSp, 28);
    a.lw(Reg::kA4, Reg::kSp, 32);
    a.lw(Reg::kS2, Reg::kSp, 36);
    a.lw(Reg::kS3, Reg::kSp, 40);
    a.lw(Reg::kS4, Reg::kSp, 44);
    a.lw(Reg::kS5, Reg::kSp, 48);
    a.addi(Reg::kSp, Reg::kSp, 52);
  }
  a.mret();

  // ---- Policy ---------------------------------------------------------------------
  a.mark("cfi");
  if (batched) {
    // Contract marks: SocTop cross-checks these against SocConfig so a
    // burst-mode Log Writer can never be paired with single-log firmware
    // (which would read the never-written legacy registers and wave every
    // burst through) or a MAC mismatch.
    a.mark("batch");
    if (config.batch_mac) {
      a.mark("batch_mac");
    }
    if (config.retry_handshake) {
      a.mark("retry_handshake");
    }
    if (config.mac_rerequest) {
      a.mark("mac_rerequest");
    }
    a.bind(batch_entry);
    emit_batch_entry(a, config, policy_entry);
  }
  a.bind(policy_entry);
  emit_policy(a, config, batched);
  a.mark("end");

  return a.finish();
}

}  // namespace titan::fw

// Per-process CFI contexts (paper Sec. V-C / VII future work):
//
// "TitanCFI should be enhanced to enforc[e] CFI per thread, to selectively
//  protect only the processes exposed at the boundary of the system, dealing
//  with potentially tainted data and inputs."
//
// The ContextManager keeps one shadow stack per protected address-space id
// (ASID).  Only a bounded number of contexts stay resident in the RoT
// scratchpad; switching to a non-resident context suspends the
// least-recently-used one to DRAM behind an HMAC (same trust argument as the
// spill path: integrity reduces to the RoT-held MAC).  Unprotected ASIDs are
// passed through — the selective-protection policy of the paper.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "crypto/accel.hpp"
#include "firmware/policy.hpp"
#include "firmware/shadow_stack.hpp"
#include "sim/memory.hpp"

namespace titan::fw {

using Asid = std::uint16_t;

struct ContextManagerConfig {
  /// Contexts resident in RoT SRAM at once.
  std::size_t resident_contexts = 2;
  /// Per-context shadow-stack geometry.
  ShadowStackConfig stack;
  /// Base of the DRAM region used for suspended contexts (disjoint from the
  /// per-stack spill arena slots carved below it).
  sim::Addr suspend_base = soc::kSpillArena.base + 0x4'0000;
};

class ContextManager {
 public:
  ContextManager(const ContextManagerConfig& config, sim::Memory& soc_memory,
                 std::vector<std::uint8_t> key);

  /// Mark an ASID as protected (boundary process).  Unprotected ASIDs are
  /// never checked — their CF events return "safe" immediately.
  void protect(Asid asid);
  [[nodiscard]] bool is_protected(Asid asid) const;

  /// Switch the active hart context.  May suspend the LRU resident context
  /// to DRAM and resume `asid` from DRAM (verifying its MAC).
  /// Returns false when a resumed context fails authentication.
  [[nodiscard]] bool switch_to(Asid asid);
  [[nodiscard]] Asid active() const { return active_; }

  /// Check one commit log against the active context's policy.
  [[nodiscard]] Verdict check(const cfi::CommitLog& log);

  // Introspection for tests/benches.
  [[nodiscard]] std::size_t resident_count() const { return residents_.size(); }
  [[nodiscard]] std::uint64_t suspends() const { return suspends_; }
  [[nodiscard]] std::uint64_t resumes() const { return resumes_; }
  [[nodiscard]] std::size_t depth_of(Asid asid) const;

  /// Corrupt helper hook is intentionally absent: tests tamper with the DRAM
  /// image directly through the memory they own.
  [[nodiscard]] sim::Addr suspend_slot(Asid asid) const;

 private:
  struct Context {
    std::unique_ptr<ShadowStack> stack;
    sim::Addr spill_slot = 0;
  };

  void touch_lru(Asid asid);
  void suspend(Asid asid);
  [[nodiscard]] bool resume(Asid asid);
  [[nodiscard]] std::vector<std::uint8_t> serialize(const Context& context) const;

  ContextManagerConfig config_;
  sim::Memory& soc_memory_;
  std::vector<std::uint8_t> key_;
  crypto::HmacAccel accel_;

  std::set<Asid> protected_;
  std::map<Asid, Context> residents_;
  std::list<Asid> lru_;  ///< front = most recent
  /// Suspended contexts: serialized entries live in DRAM, the MAC (the only
  /// trusted bytes) stays here — i.e., in RoT SRAM.
  struct Suspended {
    crypto::Digest mac{};
    std::size_t depth = 0;
  };
  std::map<Asid, Suspended> suspended_;
  /// Trusted (RoT-side) spill metadata of suspended contexts:
  /// {spilled_segments, spill_ptr}.
  std::map<Asid, std::pair<std::size_t, sim::Addr>> suspended_meta_;
  std::map<Asid, sim::Addr> slots_;
  sim::Addr next_slot_;
  Asid active_ = 0;
  std::uint64_t suspends_ = 0;
  std::uint64_t resumes_ = 0;
};

}  // namespace titan::fw

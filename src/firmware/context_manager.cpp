#include "firmware/context_manager.hpp"

#include <algorithm>

namespace titan::fw {

namespace {

/// DRAM bytes reserved per suspended context: depth-prefixed entry list.
constexpr std::size_t kSlotBytes = 0x1000;
/// Spill-arena bytes reserved per context's own shadow stack.
constexpr std::size_t kArenaSlotBytes = 0x2000;

}  // namespace

ContextManager::ContextManager(const ContextManagerConfig& config,
                               sim::Memory& soc_memory,
                               std::vector<std::uint8_t> key)
    : config_(config),
      soc_memory_(soc_memory),
      key_(std::move(key)),
      next_slot_(config.suspend_base) {
  if (config_.resident_contexts == 0) {
    throw std::invalid_argument("ContextManager: need >= 1 resident context");
  }
}

void ContextManager::protect(Asid asid) { protected_.insert(asid); }

bool ContextManager::is_protected(Asid asid) const {
  return protected_.contains(asid);
}

sim::Addr ContextManager::suspend_slot(Asid asid) const {
  const auto it = slots_.find(asid);
  return it == slots_.end() ? 0 : it->second;
}

std::size_t ContextManager::depth_of(Asid asid) const {
  const auto it = residents_.find(asid);
  if (it != residents_.end()) {
    return it->second.stack->depth();
  }
  const auto suspended = suspended_.find(asid);
  return suspended == suspended_.end() ? 0 : suspended->second.depth;
}

void ContextManager::touch_lru(Asid asid) {
  lru_.remove(asid);
  lru_.push_front(asid);
}

std::vector<std::uint8_t> ContextManager::serialize(
    const Context& context) const {
  const auto state = context.stack->persist();
  std::vector<std::uint8_t> bytes;
  bytes.reserve(8 + state.on_chip.size() * 8);
  const auto push64 = [&bytes](std::uint64_t value) {
    for (unsigned b = 0; b < 8; ++b) {
      bytes.push_back(static_cast<std::uint8_t>(value >> (8 * b)));
    }
  };
  push64(state.on_chip.size());
  for (const std::uint64_t entry : state.on_chip) {
    push64(entry);
  }
  return bytes;
}

void ContextManager::suspend(Asid asid) {
  auto it = residents_.find(asid);
  if (it == residents_.end()) {
    return;
  }
  const auto state = it->second.stack->persist();
  const auto bytes = serialize(it->second);
  if (bytes.size() > kSlotBytes) {
    throw std::runtime_error("ContextManager: context exceeds suspend slot");
  }

  sim::Addr slot = suspend_slot(asid);
  if (slot == 0) {
    slot = next_slot_;
    next_slot_ += kSlotBytes;
    slots_[asid] = slot;
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    soc_memory_.write8(slot + i, bytes[i]);
  }

  Suspended record;
  record.mac = accel_.mac_accounted(key_, bytes).digest;
  record.depth = it->second.stack->depth();
  // Trusted metadata (segment count / arena pointer) rides along in RoT
  // SRAM; only the entry payload crosses into DRAM.
  suspended_[asid] = record;
  suspended_meta_[asid] = {state.spilled_segments, state.spill_ptr};

  residents_.erase(it);
  lru_.remove(asid);
  ++suspends_;
}

bool ContextManager::resume(Asid asid) {
  const auto suspended = suspended_.find(asid);
  ShadowStackConfig stack_config = config_.stack;
  stack_config.spill_base =
      config_.stack.spill_base + static_cast<sim::Addr>(asid) * kArenaSlotBytes;

  Context context;
  context.stack =
      std::make_unique<ShadowStack>(stack_config, soc_memory_, key_);

  if (suspended != suspended_.end()) {
    const sim::Addr slot = suspend_slot(asid);
    // Re-read and authenticate the serialized entries.
    std::uint64_t count = soc_memory_.read64(slot);
    const std::size_t byte_count = 8 + static_cast<std::size_t>(count) * 8;
    if (byte_count > kSlotBytes) {
      return false;  // corrupted length field
    }
    std::vector<std::uint8_t> bytes(byte_count);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      bytes[i] = soc_memory_.read8(slot + i);
    }
    const auto recomputed = accel_.mac_accounted(key_, bytes).digest;
    if (!crypto::digest_equal(recomputed, suspended->second.mac)) {
      return false;
    }
    ShadowStack::PersistedState state;
    state.on_chip.resize(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      state.on_chip[i] = soc_memory_.read64(slot + 8 + i * 8);
    }
    const auto meta = suspended_meta_.at(asid);
    state.spilled_segments = meta.first;
    state.spill_ptr = meta.second;
    context.stack->restore(state);
    suspended_.erase(suspended);
    suspended_meta_.erase(asid);
    ++resumes_;
  }

  residents_[asid] = std::move(context);
  return true;
}

bool ContextManager::switch_to(Asid asid) {
  active_ = asid;
  if (!is_protected(asid)) {
    return true;  // unprotected: no context needed
  }
  if (residents_.contains(asid)) {
    touch_lru(asid);
    return true;
  }
  if (residents_.size() >= config_.resident_contexts && !lru_.empty()) {
    suspend(lru_.back());
  }
  if (!resume(asid)) {
    return false;
  }
  touch_lru(asid);
  return true;
}

Verdict ContextManager::check(const cfi::CommitLog& log) {
  if (!is_protected(active_)) {
    return {};  // selective protection: pass-through
  }
  auto it = residents_.find(active_);
  if (it == residents_.end()) {
    return {false, "no resident context for protected ASID"};
  }
  switch (log.classify()) {
    case rv::CfKind::kCall:
      it->second.stack->push(log.next);
      return {};
    case rv::CfKind::kReturn:
      switch (it->second.stack->pop_and_check(log.target)) {
        case PopVerdict::kMatch:
          return {};
        case PopVerdict::kMismatch:
          return {false, "return-address mismatch"};
        case PopVerdict::kUnderflow:
          return {false, "shadow-stack underflow"};
        case PopVerdict::kTampered:
          return {false, "spilled segment failed authentication"};
      }
      return {false, "unreachable"};
    default:
      return {};
  }
}

}  // namespace titan::fw

// Daemon lifecycle: run-until-signal for titand.
//
// install_shutdown_handlers() routes SIGINT and SIGTERM through a self-pipe
// (the only async-signal-safe thing a handler can do is write a byte), and
// wait_for_shutdown() blocks until one arrives.  Kept separate from Server
// so tests can drive a Server's full start/serve/stop cycle in-process
// without ever touching process-global signal dispositions.
#pragma once

namespace titan::serve {

/// Install SIGINT/SIGTERM handlers.  Call once, before wait_for_shutdown().
void install_shutdown_handlers();

/// Block until a handled signal arrives; returns the signal number.
[[nodiscard]] int wait_for_shutdown();

}  // namespace titan::serve

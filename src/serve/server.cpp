#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <utility>

#include "api/wire.hpp"

// POLLRDHUP (peer closed its write side) is Linux-specific and hidden
// behind _GNU_SOURCE in glibc headers; define the kernel value directly so
// the build does not depend on feature-macro ordering.
#ifndef POLLRDHUP
#define POLLRDHUP 0x2000
#endif

namespace titan::serve {

namespace {

[[noreturn]] void socket_error(const std::string& what) {
  throw std::runtime_error("titand server: " + what + ": " +
                           std::strerror(errno));
}

std::string http_response(int status, std::string_view reason,
                          std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    std::string(reason) + "\r\n";
  out += "Content-Type: " + std::string(content_type) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    (void)fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// DeadlineReaper

DeadlineReaper::DeadlineReaper() : thread_([this] { loop(); }) {}

DeadlineReaper::~DeadlineReaper() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  thread_.join();
}

void DeadlineReaper::schedule(std::shared_ptr<sim::CancelToken> token,
                              std::chrono::steady_clock::time_point when) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    heap_.push_back(Entry{when, std::move(token)});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }
  wake_.notify_all();
}

void DeadlineReaper::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    if (heap_.empty()) {
      wake_.wait(lock);
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (heap_.front().when > now) {
      wake_.wait_until(lock, heap_.front().when);
      continue;
    }
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const std::shared_ptr<sim::CancelToken> token =
        std::move(heap_.back().token);
    heap_.pop_back();
    lock.unlock();
    token->cancel(sim::CancelToken::Reason::kDeadline);
    lock.lock();
  }
}

// ---------------------------------------------------------------------------
// Server lifecycle

Server::Server(Options options, ScenarioService& service)
    : options_(std::move(options)),
      service_(service),
      pool_(options_.max_inflight != 0 ? options_.max_inflight
                                       : options_.threads) {}

Server::~Server() { stop(); }

void Server::start() {
  if (pipe(wake_pipe_) != 0) {
    socket_error("pipe");
  }
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    socket_error("socket");
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("titand server: bad host '" + options_.host +
                             "'");
  }
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof addr) != 0) {
    socket_error("bind " + options_.host + ":" +
                 std::to_string(options_.port));
  }
  if (listen(listen_fd_, 64) != 0) {
    socket_error("listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) != 0) {
    socket_error("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  set_nonblocking(listen_fd_);

  running_ = true;
  poller_ = std::thread([this] { loop(); });
}

void Server::stop() {
  if (!running_) {
    return;
  }
  stopping_.store(true);
  ring_wake();
  cancel_active(sim::CancelToken::Reason::kShutdown);
  pool_.wait_idle();
  ring_wake();
  poller_.join();
  running_ = false;
  close(listen_fd_);
  listen_fd_ = -1;
  close(wake_pipe_[0]);
  close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  {
    const std::lock_guard<std::mutex> lock(comp_mutex_);
    completions_.clear();
  }
  {
    const std::lock_guard<std::mutex> lock(tokens_mutex_);
    active_tokens_.clear();
  }
}

void Server::set_ready() {
  Readiness expected = Readiness::kWarming;
  phase_.compare_exchange_strong(expected, Readiness::kReady);
}

void Server::request_drain() {
  phase_.store(Readiness::kDraining);
  ring_wake();
}

bool Server::drain(std::chrono::milliseconds timeout) {
  request_drain();
  std::unique_lock<std::mutex> lock(drain_mutex_);
  if (drained_cv_.wait_for(lock, timeout,
                           [this] { return drain_quiesced_; })) {
    return true;
  }
  // Timeout: cut the stragglers off through their tokens.  Cancellation
  // latency is bounded (cancel-check stride), so the settle wait below is a
  // formality with a generous cap; stop() hard-closes whatever remains.
  lock.unlock();
  cancel_active(sim::CancelToken::Reason::kShutdown);
  lock.lock();
  drained_cv_.wait_for(lock, std::chrono::seconds(5),
                       [this] { return drain_settled_; });
  return false;
}

void Server::cancel_active(sim::CancelToken::Reason reason) {
  std::vector<std::shared_ptr<sim::CancelToken>> tokens;
  {
    const std::lock_guard<std::mutex> lock(tokens_mutex_);
    tokens.reserve(active_tokens_.size());
    for (const auto& [conn_id, token] : active_tokens_) {
      tokens.push_back(token);
    }
  }
  for (const std::shared_ptr<sim::CancelToken>& token : tokens) {
    token->cancel(reason);
  }
}

void Server::ring_wake() {
  const char byte = 'w';
  (void)!write(wake_pipe_[1], &byte, 1);
}

// ---------------------------------------------------------------------------
// Poller

void Server::loop() {
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> ids;
  while (true) {
    deliver_completions();
    if (stopping_.load()) {
      for (auto& [conn_id, conn] : conns_) {
        close(conn.fd);
      }
      conns_.clear();
      return;
    }
    if (phase_.load() == Readiness::kDraining && !drain_quiesced_) {
      // Quiescence has two levels: runs settled (nothing outstanding,
      // nothing undelivered) unblocks the post-cancel settle wait; fully
      // flushed output on top of that is the clean-drain signal.
      bool settled = outstanding_runs_.load() == 0;
      if (settled) {
        const std::lock_guard<std::mutex> lock(comp_mutex_);
        settled = completions_.empty();
      }
      bool flushed = settled;
      if (flushed) {
        for (const auto& [conn_id, conn] : conns_) {
          if (!conn.out.empty()) {
            flushed = false;
            break;
          }
        }
      }
      if (settled) {
        const std::lock_guard<std::mutex> lock(drain_mutex_);
        drain_settled_ = true;
        if (flushed) {
          drain_quiesced_ = true;
        }
        drained_cv_.notify_all();
      }
    }

    fds.clear();
    ids.clear();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const auto& [conn_id, conn] : conns_) {
      short events = POLLRDHUP;
      if (!conn.run_inflight) {
        events = static_cast<short>(events | POLLIN);
      }
      if (!conn.out.empty()) {
        events = static_cast<short>(events | POLLOUT);
      }
      fds.push_back(pollfd{conn.fd, events, 0});
      ids.push_back(conn_id);
    }

    if (poll(fds.data(), static_cast<nfds_t>(fds.size()), -1) < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }

    if ((fds[0].revents & POLLIN) != 0) {
      // Drain every pending byte: wakeups are level-edge collapsed, so any
      // number of rings (repeated signals included) costs one drain and can
      // never leave a stale readable byte behind.
      char buf[64];
      while (read(wake_pipe_[0], buf, sizeof buf) > 0) {
      }
    }
    if ((fds[1].revents & POLLIN) != 0) {
      accept_new();
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const auto it = conns_.find(ids[i]);
      if (it == conns_.end() || fds[i + 2].revents == 0) {
        continue;
      }
      handle_events(it, fds[i + 2].revents);
    }
  }
}

void Server::accept_new() {
  while (true) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      return;  // EAGAIN: backlog drained (or transient; poll retries)
    }
    set_nonblocking(fd);
    Connection conn;
    conn.fd = fd;
    conns_.emplace(next_conn_id_++, std::move(conn));
  }
}

void Server::deliver_completions() {
  std::vector<Completion> batch;
  {
    const std::lock_guard<std::mutex> lock(comp_mutex_);
    batch.swap(completions_);
  }
  for (Completion& comp : batch) {
    {
      const std::lock_guard<std::mutex> lock(tokens_mutex_);
      active_tokens_.erase(comp.conn_id);
    }
    const auto it = conns_.find(comp.conn_id);
    if (it == conns_.end()) {
      continue;  // client vanished while its run executed
    }
    Connection& conn = it->second;
    conn.run_inflight = false;
    respond(conn, comp.response);
    if (!conn.http) {
      process_input(it);  // pipelined frames buffered behind the run
    }
    finalize(it);
  }
}

void Server::handle_events(ConnMap::iterator it, short revents) {
  Connection& conn = it->second;
  if ((revents & (POLLERR | POLLNVAL | POLLHUP)) != 0) {
    abort_conn(it);
    return;
  }
  if ((revents & POLLRDHUP) != 0 && conn.run_inflight) {
    // The client went away while its run executes; nobody will read the
    // response, so stop simulating for it.
    abort_conn(it);
    return;
  }
  if ((revents & (POLLIN | POLLRDHUP)) != 0) {
    if (!read_available(conn)) {
      abort_conn(it);
      return;
    }
    process_input(it);
  }
  finalize(it);
}

bool Server::read_available(Connection& conn) {
  char chunk[4096];
  while (true) {
    const ssize_t n = recv(conn.fd, chunk, sizeof chunk, 0);
    if (n > 0) {
      conn.in.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      conn.saw_eof = true;
      return true;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return true;
    }
    if (errno == EINTR) {
      continue;
    }
    return false;  // ECONNRESET and friends
  }
}

void Server::process_input(ConnMap::iterator it) {
  Connection& conn = it->second;
  const auto oversized_error = [this] {
    return service_.error_response(
        "", api::WireError(api::WireErrorCode::kOversizedFrame,
                           "frame exceeds " +
                               std::to_string(options_.max_frame) +
                               " bytes"));
  };
  if (!conn.protocol_known) {
    if (conn.in.empty()) {
      return;
    }
    conn.http = conn.in.front() != '{';
    conn.protocol_known = true;
  }
  if (conn.http) {
    process_http(it);
    return;
  }
  while (!conn.run_inflight && !conn.want_close) {
    const std::size_t nl = conn.in.find('\n');
    if (nl == std::string::npos) {
      break;
    }
    std::string line = conn.in.substr(0, nl);
    conn.in.erase(0, nl + 1);
    if (conn.discarding) {
      conn.discarding = false;  // tail of the oversized line
      continue;
    }
    if (line.size() > options_.max_frame) {
      // A complete line can exceed the bound when the whole flood arrived
      // in one read batch; same verdict as the incremental path below, so
      // the response is identical however the kernel chunked the bytes.
      respond(conn, oversized_error());
      continue;
    }
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    handle_frame(it, line);
  }
  // A no-newline remainder past the bound: reject now, eat to the next LF.
  if (!conn.run_inflight && !conn.discarding &&
      conn.in.size() > options_.max_frame) {
    respond(conn, oversized_error());
    conn.in.clear();
    conn.discarding = true;
  }
}

void Server::handle_frame(ConnMap::iterator it, const std::string& line) {
  Connection& conn = it->second;
  api::Request request;
  try {
    request = api::parse_request(line);
  } catch (const api::WireError& error) {
    // No recoverable id to echo on a frame that does not parse.
    respond(conn, service_.error_response("", error));
    return;
  }

  if (request.op != api::RequestOp::kRun) {
    respond(conn, service_.handle(request));
    return;
  }

  // Runs cost simulation time, so they pass lifecycle + admission gates;
  // everything above stays served inline even while draining.
  if (phase_.load() == Readiness::kDraining || stopping_.load()) {
    respond(conn,
            service_.error_response(
                request.id,
                api::WireError(api::WireErrorCode::kShutdown,
                               "server is draining; run not admitted")));
    return;
  }

  // Admission charges a run against capacity from this decision until its
  // completion is pushed (outstanding_runs_), NOT against the pool queue's
  // instantaneous occupancy: a task sitting in the queue mid-handoff to a
  // worker would otherwise make the shed decision race the workers'
  // dequeue timing.  Only the poller thread admits, so load-then-add needs
  // no CAS; workers only ever decrement.  max_queue == 0 disables
  // shedding entirely (runs queue without bound).
  const std::size_t capacity =
      (options_.max_inflight != 0 ? options_.max_inflight
                                  : options_.threads) +
      options_.max_queue;
  if (options_.max_queue != 0 && outstanding_runs_.load() >= capacity) {
    service_.metrics().add_counter("titand_shed_total");
    respond(conn,
            service_.error_response(
                request.id,
                api::WireError(api::WireErrorCode::kOverloaded,
                               "server at capacity; retry after backoff")
                    .with_retry_after_ms(options_.retry_after_ms)));
    return;
  }

  auto token = std::make_shared<sim::CancelToken>();
  if (request.deadline_ms == 0) {
    // Fire before dispatch: a deadline-0 run must deterministically report
    // zero simulated cycles, never race the worker's first check.
    token->cancel(sim::CancelToken::Reason::kDeadline);
  }

  const std::uint64_t conn_id = it->first;
  outstanding_runs_.fetch_add(1);
  pool_.submit([this, request, token, conn_id] {
    std::string response = service_.execute_run(request, token);
    {
      const std::lock_guard<std::mutex> lock(comp_mutex_);
      completions_.push_back(Completion{conn_id, std::move(response)});
    }
    outstanding_runs_.fetch_sub(1);
    ring_wake();
  });
  conn.run_inflight = true;
  {
    const std::lock_guard<std::mutex> lock(tokens_mutex_);
    active_tokens_[conn_id] = token;
  }
  if (request.deadline_ms > 0) {
    reaper_.schedule(token,
                     std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(request.deadline_ms));
  }
}

void Server::process_http(ConnMap::iterator it) {
  Connection& conn = it->second;
  if (conn.want_close || conn.run_inflight) {
    return;  // one request per connection; its response is already decided
  }
  const std::size_t header_end = conn.in.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    if (conn.in.size() > options_.max_frame) {
      conn.out += http_response(431, "Request Header Fields Too Large",
                                "text/plain", "header too large\n");
      conn.want_close = true;
    }
    return;  // need more header bytes
  }
  const std::string_view head(conn.in.data(), header_end);
  const std::string_view request_line = head.substr(0, head.find("\r\n"));
  const std::size_t space = request_line.find(' ');
  const std::size_t space2 = request_line.find(' ', space + 1);
  if (space == std::string_view::npos || space2 == std::string_view::npos) {
    conn.out += http_response(400, "Bad Request", "text/plain",
                              "malformed request line\n");
    conn.want_close = true;
    return;
  }
  const std::string_view method = request_line.substr(0, space);
  const std::string_view target =
      request_line.substr(space + 1, space2 - space - 1);

  if (method == "GET" && target == "/metrics") {
    service_.sync_cache_metrics();
    render_metrics_gauges();
    conn.out += http_response(200, "OK", "text/plain; version=0.0.4",
                              service_.metrics().render_prometheus());
    conn.want_close = true;
    return;
  }
  if (method == "GET" && target == "/healthz") {
    // Liveness: the poller answering IS the health signal, in every phase.
    conn.out += http_response(200, "OK", "text/plain", "ok\n");
    conn.want_close = true;
    return;
  }
  if (method == "GET" && target == "/readyz") {
    switch (phase_.load()) {
      case Readiness::kReady:
        conn.out += http_response(200, "OK", "text/plain", "ready\n");
        break;
      case Readiness::kWarming:
        conn.out += http_response(503, "Service Unavailable", "text/plain",
                                  "warming\n");
        break;
      case Readiness::kDraining:
        conn.out += http_response(503, "Service Unavailable", "text/plain",
                                  "draining\n");
        break;
    }
    conn.want_close = true;
    return;
  }
  if (method == "GET" && (target == "/scenarios" ||
                          target.substr(0, 15) == "/scenarios?tag=")) {
    api::Request list;
    list.op = api::RequestOp::kList;
    list.id = "http";
    if (target.size() > 15) {
      list.tag = std::string(target.substr(15));
    }
    conn.out += http_response(200, "OK", "application/json",
                              service_.handle(list) + "\n");
    conn.want_close = true;
    return;
  }
  if (method == "POST" && target == "/run") {
    std::size_t content_length = 0;
    // Minimal header scan; titanctl and the CI job send the canonical form.
    for (const std::string_view name :
         {std::string_view("\r\nContent-Length:"),
          std::string_view("\r\ncontent-length:")}) {
      const std::size_t at = head.find(name);
      if (at != std::string_view::npos) {
        content_length = static_cast<std::size_t>(
            std::strtoul(head.data() + at + name.size(), nullptr, 10));
        break;
      }
    }
    if (content_length == 0 || content_length > options_.max_frame) {
      conn.out += http_response(400, "Bad Request", "application/json",
                                "missing or oversized Content-Length\n");
      conn.want_close = true;
      return;
    }
    if (conn.in.size() < header_end + 4 + content_length) {
      return;  // need more body bytes
    }
    const std::string body = conn.in.substr(header_end + 4, content_length);
    // Runs dispatch through the same admission gates as the native
    // protocol; the response is wrapped at completion delivery.
    handle_frame(it, body);
    return;
  }
  conn.out += http_response(404, "Not Found", "text/plain",
                            "unknown endpoint\n");
  conn.want_close = true;
}

void Server::respond(Connection& conn, const std::string& line) {
  if (conn.http) {
    conn.out += http_response(200, "OK", "application/json", line + "\n");
    conn.want_close = true;
  } else {
    conn.out += line;
    conn.out += '\n';
  }
}

bool Server::flush_out(Connection& conn) {
  while (!conn.out.empty()) {
    const ssize_t n =
        send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return true;  // kernel buffer full; POLLOUT resumes the flush
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;  // EPIPE / ECONNRESET: peer gone
  }
  return true;
}

void Server::finalize(ConnMap::iterator it) {
  Connection& conn = it->second;
  if (!flush_out(conn)) {
    abort_conn(it);
    return;
  }
  if (conn.run_inflight) {
    return;
  }
  if ((conn.want_close || conn.saw_eof) && conn.out.empty()) {
    close_conn(it);
  }
}

void Server::abort_conn(ConnMap::iterator it) {
  if (it->second.run_inflight) {
    std::shared_ptr<sim::CancelToken> token;
    {
      const std::lock_guard<std::mutex> lock(tokens_mutex_);
      const auto found = active_tokens_.find(it->first);
      if (found != active_tokens_.end()) {
        token = found->second;
        active_tokens_.erase(found);
      }
    }
    if (token != nullptr) {
      token->cancel(sim::CancelToken::Reason::kDisconnect);
    }
  }
  close_conn(it);
}

void Server::close_conn(ConnMap::iterator it) {
  close(it->second.fd);
  conns_.erase(it);
}

void Server::render_metrics_gauges() {
  MetricsRegistry& metrics = service_.metrics();
  metrics.set_gauge("titand_queue_depth", pool_.queued());
  metrics.set_gauge("titand_active_connections", conns_.size());
  metrics.set_gauge("titand_runs_inflight", pool_.active());
  metrics.set_gauge("titand_runs_queued", pool_.queued());
  // Admission-slot occupancy: counted from the admit decision until the
  // run's completion is pushed, so it is insensitive to worker-handoff
  // transients (a queued-but-ungrabbed task, a finished worker that has
  // not yet decremented active).  The chaos harness keys saturation and
  // quiescence off this gauge.
  metrics.set_gauge("titand_runs_outstanding", outstanding_runs_.load());
  const Readiness phase = phase_.load();
  metrics.set_gauge("titand_ready", phase == Readiness::kReady ? 1 : 0);
  metrics.set_gauge("titand_draining",
                    phase == Readiness::kDraining ? 1 : 0);
}

}  // namespace titan::serve

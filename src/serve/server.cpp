#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "api/wire.hpp"

namespace titan::serve {

namespace {

[[noreturn]] void socket_error(const std::string& what) {
  throw std::runtime_error("titand server: " + what + ": " +
                           std::strerror(errno));
}

std::string http_response(int status, std::string_view reason,
                          std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    std::string(reason) + "\r\n";
  out += "Content-Type: " + std::string(content_type) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

Server::Server(Options options, ScenarioService& service)
    : options_(std::move(options)),
      service_(service),
      pool_(options_.threads) {}

Server::~Server() { stop(); }

void Server::start() {
  if (pipe(wake_pipe_) != 0) {
    socket_error("pipe");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    socket_error("socket");
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("titand server: bad host '" + options_.host +
                             "'");
  }
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof addr) != 0) {
    socket_error("bind " + options_.host + ":" +
                 std::to_string(options_.port));
  }
  if (listen(listen_fd_, 64) != 0) {
    socket_error("listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) != 0) {
    socket_error("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  running_ = true;
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  // One byte wakes the acceptor; the byte is never drained, so every
  // blocked connection reader sees the pipe readable and unwinds too.
  const char byte = 'x';
  (void)!write(wake_pipe_[1], &byte, 1);
  acceptor_.join();
  pool_.wait_idle();
  close(listen_fd_);
  listen_fd_ = -1;
  close(wake_pipe_[0]);
  close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

void Server::accept_loop() {
  while (true) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    if (poll(fds, 2, -1) < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) {
      return;  // stop() rang the wake pipe
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;  // EINTR / ECONNABORTED: transient, keep accepting
    }
    pool_.submit([this, fd] { serve_connection(fd); });
  }
}

int Server::guarded_recv(int fd, char* data, std::size_t size) const {
  pollfd fds[2] = {{fd, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
  while (true) {
    if (poll(fds, 2, -1) < 0) {
      if (errno == EINTR) {
        continue;
      }
      return -1;
    }
    if ((fds[1].revents & POLLIN) != 0) {
      return -1;  // server stopping
    }
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
      continue;
    }
    const ssize_t n = recv(fd, data, size, 0);
    return n < 0 ? -1 : static_cast<int>(n);
  }
}

void Server::send_all(int fd, std::string_view data) const {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return;  // peer gone; nothing useful left to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

void Server::serve_connection(int fd) {
  char chunk[4096];
  const int n = guarded_recv(fd, chunk, sizeof chunk);
  if (n <= 0) {
    close(fd);
    return;
  }
  std::string buffered(chunk, static_cast<std::size_t>(n));
  if (buffered[0] == '{') {
    serve_jsonl(fd, std::move(buffered));
  } else {
    serve_http(fd, std::move(buffered));
  }
  close(fd);
}

void Server::serve_jsonl(int fd, std::string buffered) {
  bool discarding = false;  // inside an oversized line, eating to newline
  while (true) {
    std::size_t start = 0;
    for (std::size_t nl = buffered.find('\n', start);
         nl != std::string::npos; nl = buffered.find('\n', start)) {
      std::string_view line(buffered.data() + start, nl - start);
      start = nl + 1;
      if (discarding) {
        discarding = false;  // tail of the oversized line
        continue;
      }
      if (!line.empty() && line.back() == '\r') {
        line.remove_suffix(1);
      }
      if (line.empty()) {
        continue;
      }
      send_all(fd, service_.handle_line(line));
      send_all(fd, "\n");
    }
    buffered.erase(0, start);
    if (!discarding && buffered.size() > options_.max_frame) {
      send_all(fd, api::render_error_response(
                       "", api::WireErrorCode::kOversizedFrame,
                       "frame exceeds " + std::to_string(options_.max_frame) +
                           " bytes"));
      send_all(fd, "\n");
      buffered.clear();
      discarding = true;
    }
    char chunk[4096];
    const int n = guarded_recv(fd, chunk, sizeof chunk);
    if (n <= 0) {
      return;  // EOF (possibly mid-frame: no complete request to answer)
    }
    if (discarding) {
      // Only the tail beyond the last newline matters while discarding.
      const char* nl = static_cast<const char*>(
          std::memchr(chunk, '\n', static_cast<std::size_t>(n)));
      if (nl == nullptr) {
        continue;
      }
      discarding = false;
      buffered.assign(nl + 1, static_cast<const char*>(chunk) + n);
      continue;
    }
    buffered.append(chunk, static_cast<std::size_t>(n));
  }
}

void Server::serve_http(int fd, std::string buffered) {
  // Read until the end of headers (bounded by max_frame).
  std::size_t header_end;
  while ((header_end = buffered.find("\r\n\r\n")) == std::string::npos) {
    if (buffered.size() > options_.max_frame) {
      send_all(fd, http_response(431, "Request Header Fields Too Large",
                                 "text/plain", "header too large\n"));
      return;
    }
    char chunk[4096];
    const int n = guarded_recv(fd, chunk, sizeof chunk);
    if (n <= 0) {
      return;
    }
    buffered.append(chunk, static_cast<std::size_t>(n));
  }
  const std::string_view head(buffered.data(), header_end);
  const std::string_view request_line = head.substr(0, head.find("\r\n"));
  const std::size_t space = request_line.find(' ');
  const std::size_t space2 = request_line.find(' ', space + 1);
  if (space == std::string_view::npos || space2 == std::string_view::npos) {
    send_all(fd, http_response(400, "Bad Request", "text/plain",
                               "malformed request line\n"));
    return;
  }
  const std::string_view method = request_line.substr(0, space);
  std::string_view target = request_line.substr(space + 1, space2 - space - 1);

  if (method == "GET" && target == "/metrics") {
    service_.sync_cache_metrics();
    service_.metrics().set_gauge("titand_queue_depth", pool_.queued());
    service_.metrics().set_gauge("titand_active_connections",
                                 pool_.active());
    send_all(fd, http_response(200, "OK", "text/plain; version=0.0.4",
                               service_.metrics().render_prometheus()));
    return;
  }
  if (method == "GET" && (target == "/scenarios" ||
                          target.substr(0, 15) == "/scenarios?tag=")) {
    api::Request list;
    list.op = api::RequestOp::kList;
    list.id = "http";
    if (target.size() > 15) {
      list.tag = std::string(target.substr(15));
    }
    send_all(fd, http_response(200, "OK", "application/json",
                               service_.handle(list) + "\n"));
    return;
  }
  if (method == "POST" && target == "/run") {
    std::size_t content_length = 0;
    // Minimal header scan; titanctl and the CI job send the canonical form.
    for (const std::string_view name :
         {std::string_view("\r\nContent-Length:"),
          std::string_view("\r\ncontent-length:")}) {
      const std::size_t at = head.find(name);
      if (at != std::string_view::npos) {
        content_length = static_cast<std::size_t>(
            std::strtoul(head.data() + at + name.size(), nullptr, 10));
        break;
      }
    }
    if (content_length == 0 || content_length > options_.max_frame) {
      send_all(fd, http_response(400, "Bad Request", "application/json",
                                 "missing or oversized Content-Length\n"));
      return;
    }
    std::string body = buffered.substr(header_end + 4);
    while (body.size() < content_length) {
      char chunk[4096];
      const int n = guarded_recv(fd, chunk, sizeof chunk);
      if (n <= 0) {
        return;
      }
      body.append(chunk, static_cast<std::size_t>(n));
    }
    body.resize(content_length);
    send_all(fd, http_response(200, "OK", "application/json",
                               service_.handle_line(body) + "\n"));
    return;
  }
  send_all(fd, http_response(404, "Not Found", "text/plain",
                             "unknown endpoint\n"));
}

}  // namespace titan::serve

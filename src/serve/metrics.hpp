// Daemon observability: a small counter/gauge/histogram registry rendered in
// the Prometheus text exposition format on titand's GET /metrics endpoint.
//
// Scope is deliberately narrow — this is not a general metrics library.  The
// daemon needs monotonic counters (requests served, errors by code,
// checkpoint-cache hits/misses, simulated cycles), point-in-time gauges
// (queue depth, warm cache size), and per-scenario request-latency
// histograms.  The histograms reuse the simulator's log2 bucket machinery
// (sim::latency_bucket, the same binning ResilienceStats uses for detection
// latency), so one bucketing definition serves both the sim-side and the
// service-side latency stories.
//
// Thread model: one mutex guards the whole registry.  Updates happen a
// handful of times per request against simulations that run for millions of
// cycles, so contention is irrelevant — simplicity wins.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace titan::serve {

/// Power-of-two histogram over request latencies (microseconds).  Bucket i
/// counts values with bit_width == i (bucket 0: value 0), the last bucket is
/// the overflow tail — exactly sim::ResilienceStats' binning.
inline constexpr std::size_t kLatencyHistogramBuckets = 20;

class MetricsRegistry {
 public:
  /// Add `delta` to the counter `name` (created at 0 on first touch).
  void add_counter(std::string_view name, std::uint64_t delta = 1);
  /// Overwrite the counter `name` with a monotonic value maintained by an
  /// external source (e.g. CheckpointCache's own hit/miss atomics).
  void set_counter(std::string_view name, std::uint64_t value);
  /// Set the gauge `name` to `value`.
  void set_gauge(std::string_view name, std::uint64_t value);
  /// Record one request latency (µs) for `scenario`.
  void observe_latency(std::string_view scenario, std::uint64_t micros);

  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] std::uint64_t gauge(std::string_view name) const;

  /// Render every metric in the Prometheus text format, deterministically
  /// ordered (counters, gauges, then per-scenario latency series; each group
  /// sorted by name).  Histograms render as cumulative `_bucket{le=...}`
  /// series plus `_sum`/`_count`, with le bounds at the log2 bucket upper
  /// edges (0, 1, 3, 7, 15, ... µs) and a final `+Inf`.
  [[nodiscard]] std::string render_prometheus() const;

 private:
  struct LatencyHistogram {
    std::uint64_t buckets[kLatencyHistogramBuckets] = {};
    std::uint64_t sum = 0;
    std::uint64_t count = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::uint64_t> gauges_;
  std::map<std::string, LatencyHistogram> latency_;
};

}  // namespace titan::serve

// ScenarioService — the daemon's request executor, independent of any
// socket.  The server layer owns framing and transport; this layer owns
// everything between a parsed api::Request and its single-line response:
// registry lookup, spec deserialization, warm-start checkpoint policy,
// running the simulation, rendering the canonical report, and mapping every
// library exception onto the wire error taxonomy.
//
// Determinism contract: the response to a run request embeds the exact
// ReportSchema rendering a batch run_scenario() caller would produce for the
// same scenario — byte for byte.  Warm starts do not weaken this: a forked
// run is bit-exact versus a cold run (PR7's warm_start_test witness), so the
// service is free to answer from a warm checkpoint whenever it has one.
//
// Thread model: handle() is fully thread-safe and is called concurrently
// from the server's worker pool.  The checkpoint cache is guarded by one
// mutex held across lookup AND capture — so concurrent first requests for
// the same scenario run one prefix simulation, not N — which serializes
// warm-up captures (they are one-time costs) but never the simulations
// themselves.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "api/checkpoint.hpp"
#include "api/wire.hpp"
#include "serve/metrics.hpp"
#include "sim/cancel.hpp"

namespace titan::serve {

/// Warm-start policy for served runs.
enum class WarmMode {
  kOff,     ///< Every run simulates from cycle 0.
  kLazy,    ///< Capture a checkpoint on a scenario's first request, fork
            ///< every later request from it.
  kBundle,  ///< Fork from preloaded bundle checkpoints only; scenarios
            ///< outside the bundle run cold (counted as cache misses).
};

class ScenarioService {
 public:
  struct Options {
    WarmMode warm_mode = WarmMode::kLazy;
    /// Warm-up prefix cycle for lazy captures.
    sim::Cycle warmup = api::kDefaultWarmupCycle;
  };

  ScenarioService(Options options, MetricsRegistry& metrics)
      : options_(options), metrics_(metrics) {}

  /// Load a checkpoint bundle (see api::save_checkpoint_bundle) into the
  /// warm cache.  Throws on I/O failure or a malformed bundle.
  void preload_bundle(const std::string& path);

  /// Execute one parsed request; returns the single-line wire response.
  /// Never throws: every failure becomes a structured error response.
  [[nodiscard]] std::string handle(const api::Request& request);

  /// Parse one frame line and execute it (parse failures become bad_frame /
  /// bad_request / unsupported_version error responses).  Never throws.
  [[nodiscard]] std::string handle_line(std::string_view line);

  /// Execute one run request under an optional cancel token (deadline /
  /// drain / disconnect — see sim::CancelToken) and the request's own
  /// max_cycles budget.  A stopped run becomes a structured
  /// deadline_exceeded / budget_exceeded / cancelled error carrying the
  /// cycles completed so far.  Never throws; counts the same metrics
  /// handle() would.  This is the entry the server's worker pool dispatches.
  [[nodiscard]] std::string execute_run(
      const api::Request& request,
      std::shared_ptr<const sim::CancelToken> cancel);

  /// Count and render a structured error produced outside the normal
  /// request pipeline (admission-control shed, drain rejection): increments
  /// requests/errors/per-code counters exactly as a handled request would,
  /// so scripted metric assertions see one coherent accounting.
  [[nodiscard]] std::string error_response(std::string_view id,
                                           const api::WireError& error);

  /// Refresh the cache-derived metrics (cache size/hit/miss series) from the
  /// live CheckpointCache counters.  The server calls this before rendering
  /// /metrics so scrapes see current values without per-request overhead.
  void sync_cache_metrics();

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }

 private:
  /// Shared run path; throws api::WireError on every failure mode
  /// (including cooperative stops, which carry cycles-so-far detail).
  [[nodiscard]] std::string handle_run(
      const api::Request& request,
      const std::shared_ptr<const sim::CancelToken>& cancel);
  [[nodiscard]] std::string handle_list(const api::Request& request);
  /// Count errors_total + the per-code counter and render the response.
  [[nodiscard]] std::string count_error(std::string_view id,
                                        const api::WireError& error);

  Options options_;
  MetricsRegistry& metrics_;
  std::mutex cache_mutex_;
  api::CheckpointCache cache_;
};

}  // namespace titan::serve

#include "serve/service.hpp"

#include <chrono>
#include <utility>
#include <vector>

#include "api/registry.hpp"
#include "api/report_schema.hpp"
#include "api/run.hpp"
#include "sim/snapshot.hpp"

namespace titan::serve {

void ScenarioService::preload_bundle(const std::string& path) {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  for (std::shared_ptr<const sim::Snapshot>& snapshot :
       api::load_checkpoint_bundle(path)) {
    cache_.insert(std::move(snapshot));
  }
}

std::string ScenarioService::handle_line(std::string_view line) {
  try {
    return handle(api::parse_request(line));
  } catch (const api::WireError& error) {
    metrics_.add_counter("titand_requests_total");
    // A frame that does not parse has no recoverable id to echo.
    return count_error("", error);
  }
}

std::string ScenarioService::handle(const api::Request& request) {
  metrics_.add_counter("titand_requests_total");
  try {
    switch (request.op) {
      case api::RequestOp::kPing:
        return api::render_ping_response(request.id);
      case api::RequestOp::kList:
        return handle_list(request);
      case api::RequestOp::kRun:
        return handle_run(request, nullptr);
    }
    throw api::WireError(api::WireErrorCode::kInternal, "unhandled op");
  } catch (const api::WireError& error) {
    return count_error(request.id, error);
  } catch (const std::exception& error) {
    metrics_.add_counter("titand_errors_total");
    metrics_.add_counter("titand_error_internal_total");
    return api::render_error_response(request.id,
                                      api::WireErrorCode::kInternal,
                                      error.what());
  }
}

std::string ScenarioService::execute_run(
    const api::Request& request,
    std::shared_ptr<const sim::CancelToken> cancel) {
  metrics_.add_counter("titand_requests_total");
  try {
    return handle_run(request, cancel);
  } catch (const api::WireError& error) {
    return count_error(request.id, error);
  } catch (const std::exception& error) {
    metrics_.add_counter("titand_errors_total");
    metrics_.add_counter("titand_error_internal_total");
    return api::render_error_response(request.id,
                                      api::WireErrorCode::kInternal,
                                      error.what());
  }
}

std::string ScenarioService::error_response(std::string_view id,
                                            const api::WireError& error) {
  metrics_.add_counter("titand_requests_total");
  return count_error(id, error);
}

std::string ScenarioService::count_error(std::string_view id,
                                         const api::WireError& error) {
  metrics_.add_counter("titand_errors_total");
  metrics_.add_counter("titand_error_" +
                       std::string(api::wire_error_code_name(error.code())) +
                       "_total");
  return api::render_error_response(id, error.code(), error.what(),
                                    error.detail());
}

std::string ScenarioService::handle_list(const api::Request& request) {
  const api::ScenarioRegistry& registry = api::ScenarioRegistry::global();
  std::vector<std::pair<std::string, std::string>> scenarios;
  if (request.tag.empty()) {
    for (const std::string_view name : registry.names()) {
      const api::Scenario* scenario = registry.find(name);
      scenarios.emplace_back(std::string(name), scenario->serialize());
    }
  } else {
    for (const api::Scenario& scenario :
         registry.query(request.tag, "titand")) {
      scenarios.emplace_back(scenario.name(), scenario.serialize());
    }
  }
  return api::render_list_response(request.id, scenarios);
}

std::string ScenarioService::handle_run(
    const api::Request& request,
    const std::shared_ptr<const sim::CancelToken>& cancel) {
  // A cooperative stop is an error response with cycles-so-far detail, plus
  // the daemon-level counter the chaos harness asserts on.
  const auto stop_error = [this](api::RunStop stop,
                                 std::uint64_t cycles) -> api::WireError {
    switch (stop) {
      case api::RunStop::kDeadlineExceeded:
        metrics_.add_counter("titand_deadline_exceeded_total");
        return api::WireError(api::WireErrorCode::kDeadlineExceeded,
                              "deadline expired after " +
                                  std::to_string(cycles) +
                                  " simulated cycles")
            .with_cycles(cycles);
      case api::RunStop::kBudgetExceeded:
        metrics_.add_counter("titand_budget_exceeded_total");
        return api::WireError(api::WireErrorCode::kBudgetExceeded,
                              "cycle budget reached at cycle " +
                                  std::to_string(cycles))
            .with_cycles(cycles);
      default:
        metrics_.add_counter("titand_cancelled_total");
        return api::WireError(api::WireErrorCode::kCancelled,
                              "run cancelled after " + std::to_string(cycles) +
                                  " simulated cycles")
            .with_cycles(cycles);
    }
  };
  // Already cancelled at dispatch (deadline 0, or a drain/disconnect that
  // beat the queue): report without building the SoC.  This is what makes
  // deadline-0 probes deterministic — zero cycles, always.
  if (cancel != nullptr && cancel->cancelled()) {
    throw stop_error(cancel->reason() == sim::CancelToken::Reason::kDeadline
                         ? api::RunStop::kDeadlineExceeded
                         : api::RunStop::kCancelled,
                     0);
  }

  api::Scenario scenario = [&] {
    if (!request.scenario.empty()) {
      const api::Scenario* found =
          api::ScenarioRegistry::global().find(request.scenario);
      if (found == nullptr) {
        throw api::WireError(
            api::WireErrorCode::kUnknownScenario,
            "no registered scenario named '" + request.scenario + "'");
      }
      return *found;
    }
    try {
      return api::ScenarioBuilder::from_serialized(request.spec);
    } catch (const api::ScenarioError& error) {
      throw api::WireError(api::WireErrorCode::kInvalidScenario, error.what());
    }
  }();
  if (request.engine == "lockstep") {
    scenario = scenario.with_engine(api::Engine::kLockStep);
  } else if (request.engine == "event") {
    scenario = scenario.with_engine(api::Engine::kEventDriven);
  }

  bool warm = false;
  if (options_.warm_mode != WarmMode::kOff) {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    std::shared_ptr<const sim::Snapshot> snapshot =
        options_.warm_mode == WarmMode::kLazy
            ? cache_.warmed(scenario, options_.warmup)
            : cache_.find(scenario);
    if (snapshot != nullptr) {
      scenario = scenario.with_warm_start(std::move(snapshot));
      warm = true;
    }
  }

  api::RunControl control;
  control.cancel = cancel;
  control.max_cycles = request.max_cycles;

  const auto start = std::chrono::steady_clock::now();
  api::RunReport report = [&] {
    try {
      return api::run_scenario(scenario, {}, control);
    } catch (const sim::SnapshotError& error) {
      throw api::WireError(api::WireErrorCode::kSnapshotError, error.what());
    } catch (const api::ScenarioError& error) {
      throw api::WireError(api::WireErrorCode::kInvalidScenario, error.what());
    }
  }();
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();

  if (report.stop != api::RunStop::kCompleted) {
    throw stop_error(report.stop, report.cycles);
  }

  metrics_.add_counter("titand_scenarios_served_total");
  metrics_.add_counter("titand_sim_cycles_total", report.cycles);
  if (warm) {
    metrics_.add_counter("titand_warm_runs_total");
  }
  // Attack-corpus scoring rollup: how many adversarial runs this daemon has
  // served, and how the CFI policy fared against them.
  if (scenario.attack()) {
    metrics_.add_counter("titand_attacks_injected_total");
    if (report.attack.detected) {
      metrics_.add_counter("titand_attacks_detected_total");
    }
    metrics_.add_counter("titand_attack_false_negatives_total",
                         report.attack.false_negatives);
  }
  metrics_.observe_latency(scenario.name(),
                           static_cast<std::uint64_t>(micros));

  return api::render_run_response(request.id, scenario.name(), warm,
                                  api::ReportSchema().render(report));
}

void ScenarioService::sync_cache_metrics() {
  metrics_.set_counter("titand_checkpoint_cache_hits_total", cache_.hits());
  metrics_.set_counter("titand_checkpoint_cache_misses_total",
                       cache_.misses());
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  metrics_.set_gauge("titand_checkpoint_cache_size", cache_.size());
}

}  // namespace titan::serve

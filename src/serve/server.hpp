// TCP front end for ScenarioService: line-delimited JSON requests plus a
// minimal HTTP shim, on one listening socket.
//
// Protocol selection is first-byte sniffing: a connection whose first byte
// is '{' speaks the native JSONL protocol (one api::wire request per
// LF-terminated line, one single-line response per request, in order);
// anything else is treated as an HTTP/1.0-style request (GET /metrics,
// GET /healthz, GET /readyz, GET /scenarios, POST /run) answered once and
// closed.  The native protocol requires JSON-object frames anyway, so the
// sniff is unambiguous.
//
// Framing rules (native protocol):
//   * requests on one connection are answered in order, serially;
//   * an unparseable frame gets a structured bad_frame error response — the
//     connection survives;
//   * a frame longer than Options::max_frame gets an oversized_frame error
//     and the remainder of that line is discarded;
//   * EOF mid-frame (client vanished between bytes) just closes the
//     connection — there is no complete request to answer.
//
// Concurrency — request lifecycle control (PR 10): one poller thread owns
// every connection (non-blocking sockets, poll()) and does all framing and
// cheap request handling (ping, list, health, metrics) inline, so the
// daemon stays responsive even when every simulation slot is busy.  run
// requests are dispatched onto a bounded sim::WorkerPool — at most
// max_inflight executing plus max_queue waiting; excess runs are shed
// immediately with a structured `overloaded` error carrying a
// retry_after_ms hint, never queued unboundedly.  Each dispatched run
// carries a sim::CancelToken: a per-request deadline arms the reaper
// thread, a client disconnect observed by the poller (POLLRDHUP/HUP while
// the run executes) fires it with kDisconnect — the daemon stops simulating
// for clients that are gone — and drain()/stop() fire stragglers with
// kShutdown.  Responses flow back to the poller over a completion queue and
// the self-pipe; per-connection ordering is preserved because a connection
// never has more than one run in flight (later pipelined frames wait,
// buffered, until the response is delivered).
//
// Lifecycle: start() serves immediately but reports "warming" on
// GET /readyz until set_ready(); request_drain()/drain() flip it to 503
// "draining", reject new runs with `shutdown` errors while continuing to
// answer health/metrics probes, and wait for in-flight runs to finish —
// drain(timeout) cancels stragglers through their tokens after the
// timeout.  GET /healthz answers 200 for the whole lifetime (liveness).
//
// The wake self-pipe is idempotent: both ends are non-blocking and the
// poller drains every pending byte per wakeup, so any number of
// wake-ups (repeated signals included) can never fill the pipe or leave a
// stale readable byte behind.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "sim/cancel.hpp"
#include "sim/sweep.hpp"

namespace titan::serve {

/// Fires cancel tokens at their wall-clock deadlines.  One thread, a
/// min-heap of (deadline, token); schedule() is thread-safe.  Firing a
/// token whose run already finished is a harmless no-op (the token is
/// one-shot and nothing reads it afterwards), so the reaper never needs to
/// deschedule.
class DeadlineReaper {
 public:
  DeadlineReaper();
  ~DeadlineReaper();

  DeadlineReaper(const DeadlineReaper&) = delete;
  DeadlineReaper& operator=(const DeadlineReaper&) = delete;

  void schedule(std::shared_ptr<sim::CancelToken> token,
                std::chrono::steady_clock::time_point when);

 private:
  struct Entry {
    std::chrono::steady_clock::time_point when;
    std::shared_ptr<sim::CancelToken> token;
    bool operator>(const Entry& other) const { return when > other.when; }
  };

  void loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<Entry> heap_;  ///< Min-heap by deadline.
  bool stopping_ = false;
  std::thread thread_;
};

class Server {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// Port to bind; 0 asks the kernel for a free port (read it back from
    /// port() after start() — how the tests and the CI smoke job bind).
    std::uint16_t port = 0;
    /// Simulation worker threads (and the default in-flight run cap).
    unsigned threads = 4;
    /// Native-protocol frame size limit in bytes.
    std::size_t max_frame = 1 << 20;
    /// Runs executing concurrently (0 == threads).  The worker pool is
    /// sized to exactly this, so the cap needs no separate bookkeeping.
    unsigned max_inflight = 0;
    /// Admitted-but-waiting runs before admission control sheds with an
    /// `overloaded` error (0 == unbounded, the pre-PR10 behaviour).
    /// Enforced against admission-slot occupancy (runs admitted and not
    /// yet completed), not the worker queue's instantaneous size — the
    /// shed decision must not race the workers' dequeue handoff.
    std::size_t max_queue = 64;
    /// Backoff hint attached to `overloaded` errors.
    std::uint64_t retry_after_ms = 50;
  };

  /// What GET /readyz reports.  Orthogonal to liveness: the server accepts
  /// and answers in every state (drain still *rejects runs* with
  /// `shutdown` errors, but health probes keep working — a load balancer
  /// needs /readyz reachable precisely while draining).
  enum class Readiness { kWarming, kReady, kDraining };

  Server(Options options, ScenarioService& service);
  ~Server();  // stop() if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and start serving (readiness kWarming).  Throws
  /// std::runtime_error on any socket failure (named with errno text).
  void start();

  /// Hard stop: cancel every in-flight run (kShutdown), drain the worker
  /// pool, close every connection, join.  Idempotent.  For a graceful
  /// shutdown call drain() first.
  void stop();

  /// Declare warmup finished: GET /readyz flips to 200.
  void set_ready();

  /// Flip to draining without waiting: new runs are rejected with
  /// `shutdown` errors, /readyz answers 503 "draining", in-flight runs
  /// keep going.  Idempotent (double SIGTERM safe).
  void request_drain();

  /// request_drain(), then wait until every in-flight run has finished and
  /// every pending response byte is flushed — up to `timeout`, after which
  /// stragglers are cancelled through their tokens (kShutdown) and the
  /// drain completes within the cancellation latency bound.  Returns true
  /// when everything finished inside the timeout (no run was cut off).
  /// Safe to call concurrently / repeatedly.
  bool drain(std::chrono::milliseconds timeout);

  [[nodiscard]] Readiness readiness() const { return phase_.load(); }

  /// The bound port (valid after start(); resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  /// One client connection, owned exclusively by the poller thread.
  struct Connection {
    int fd = -1;
    bool protocol_known = false;  ///< First byte seen, http decided.
    bool http = false;
    bool discarding = false;   ///< Inside an oversized line, eating to LF.
    bool want_close = false;   ///< Close once `out` is flushed.
    bool saw_eof = false;      ///< Peer sent FIN; finish buffered work, close.
    bool run_inflight = false; ///< A run is on the pool; input processing
                               ///< pauses until its completion arrives.
    std::string in;
    std::string out;
  };
  using ConnMap = std::map<std::uint64_t, Connection>;

  struct Completion {
    std::uint64_t conn_id = 0;
    std::string response;
  };

  void loop();
  void accept_new();
  void deliver_completions();
  void handle_events(ConnMap::iterator it, short revents);
  /// recv until EAGAIN; returns false when the connection died (error or
  /// EOF-with-nothing-recoverable is handled by the caller via saw_eof).
  bool read_available(Connection& conn);
  void process_input(ConnMap::iterator it);
  void process_http(ConnMap::iterator it);
  /// Parse one frame and answer it: inline for ping/list/errors, dispatch
  /// to the pool for runs (admission control, deadline arming).
  void handle_frame(ConnMap::iterator it, const std::string& line);
  /// Queue `line` as the connection's next response (wrapped for HTTP).
  void respond(Connection& conn, const std::string& line);
  /// Write until EAGAIN; false means the peer is gone (caller aborts).
  [[nodiscard]] bool flush_out(Connection& conn);
  /// Close and erase; cancels the in-flight run's token (kDisconnect).
  void abort_conn(ConnMap::iterator it);
  void close_conn(ConnMap::iterator it);
  /// Close-after-flush / EOF bookkeeping shared by every event path.
  void finalize(ConnMap::iterator it);
  void cancel_active(sim::CancelToken::Reason reason);
  /// Write one byte into the wake pipe (non-blocking: a full pipe already
  /// guarantees a pending wakeup, so EAGAIN is success — idempotent).
  void ring_wake();
  void render_metrics_gauges();

  Options options_;
  ScenarioService& service_;
  sim::WorkerPool pool_;
  DeadlineReaper reaper_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // [0] read end, polled by the poller only
  std::uint16_t port_ = 0;
  bool running_ = false;
  std::atomic<Readiness> phase_{Readiness::kWarming};
  std::atomic<bool> stopping_{false};
  std::thread poller_;

  // Poller-owned (no lock): connections and the accept counter.
  ConnMap conns_;
  std::uint64_t next_conn_id_ = 1;

  // Worker -> poller completion queue.
  std::mutex comp_mutex_;
  std::vector<Completion> completions_;

  // Tokens of dispatched runs, keyed by connection id (at most one run per
  // connection).  Written by the poller, swept by drain()/stop().
  std::mutex tokens_mutex_;
  std::map<std::uint64_t, std::shared_ptr<sim::CancelToken>> active_tokens_;

  /// Runs dispatched whose completions have not yet been processed.
  std::atomic<std::size_t> outstanding_runs_{0};

  // drain() rendezvous, two levels both set by the poller: settled == zero
  // outstanding runs and an empty completion queue (what the post-cancel
  // wait needs); quiesced == settled plus every response byte flushed (the
  // clean-drain signal — a client that never reads its response cannot
  // block a drain past its timeout).
  std::mutex drain_mutex_;
  std::condition_variable drained_cv_;
  bool drain_settled_ = false;
  bool drain_quiesced_ = false;
};

}  // namespace titan::serve

// TCP front end for ScenarioService: line-delimited JSON requests plus a
// minimal HTTP shim, on one listening socket.
//
// Protocol selection is first-byte sniffing: a connection whose first byte
// is '{' speaks the native JSONL protocol (one api::wire request per
// LF-terminated line, one single-line response per request, in order);
// anything else is treated as an HTTP/1.0-style request (GET /metrics,
// GET /scenarios, POST /run) answered once and closed.  The native protocol
// requires JSON-object frames anyway, so the sniff is unambiguous.
//
// Framing rules (native protocol):
//   * requests on one connection are answered in order, serially;
//   * an unparseable frame gets a structured bad_frame error response — the
//     connection survives;
//   * a frame longer than Options::max_frame gets an oversized_frame error
//     and the remainder of that line is discarded;
//   * EOF mid-frame (client vanished between bytes) just closes the
//     connection — there is no complete request to answer.
//
// Concurrency: accepted connections are dispatched onto a sim::WorkerPool —
// the same pool substrate SweepRunner runs sweeps on — one task per
// connection, so distinct clients run their simulations concurrently while
// each connection stays strictly ordered.  stop() wakes every blocked
// reader through a self-pipe, so shutdown never waits on a quiet client.
#pragma once

#include <cstdint>
#include <string>
#include <thread>

#include "serve/service.hpp"
#include "sim/sweep.hpp"

namespace titan::serve {

class Server {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// Port to bind; 0 asks the kernel for a free port (read it back from
    /// port() after start() — how the tests and the CI smoke job bind).
    std::uint16_t port = 0;
    /// Connection-handling threads (simulations run on these).
    unsigned threads = 4;
    /// Native-protocol frame size limit in bytes.
    std::size_t max_frame = 1 << 20;
  };

  Server(Options options, ScenarioService& service);
  ~Server();  // stop() if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and start accepting.  Throws std::runtime_error on any
  /// socket failure (named with errno text).
  void start();

  /// Stop accepting, wake and close every in-flight connection, drain the
  /// worker pool, join.  Idempotent.
  void stop();

  /// The bound port (valid after start(); resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  void accept_loop();
  void serve_connection(int fd);
  void serve_jsonl(int fd, std::string buffered);
  void serve_http(int fd, std::string buffered);
  /// poll()-guarded recv: returns bytes read, 0 on orderly EOF, -1 when the
  /// server is stopping or the connection errored.
  [[nodiscard]] int guarded_recv(int fd, char* data, std::size_t size) const;
  void send_all(int fd, std::string_view data) const;

  Options options_;
  ScenarioService& service_;
  sim::WorkerPool pool_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // [0] read end polled by every blocked reader
  std::uint16_t port_ = 0;
  bool running_ = false;
  std::thread acceptor_;
};

}  // namespace titan::serve

#include "serve/daemon.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

namespace titan::serve {

namespace {

int g_signal_pipe[2] = {-1, -1};

void on_signal(int signum) {
  const char byte = static_cast<char>(signum);
  (void)!write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

void install_shutdown_handlers() {
  if (g_signal_pipe[0] < 0 && pipe(g_signal_pipe) != 0) {
    return;  // no pipe, no graceful shutdown — the default disposition wins
  }
  // The write end must never block: once the first byte has started the
  // drain, nothing reads the pipe again, so a signal storm would otherwise
  // eventually fill it and wedge the handler mid-signal.  The read end
  // stays blocking — wait_for_shutdown() wants to sleep on it.
  const int flags = fcntl(g_signal_pipe[1], F_GETFL, 0);
  if (flags >= 0) {
    (void)fcntl(g_signal_pipe[1], F_SETFL, flags | O_NONBLOCK);
  }
  struct sigaction action {};
  action.sa_handler = on_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

int wait_for_shutdown() {
  char byte = 0;
  while (read(g_signal_pipe[0], &byte, 1) != 1) {
  }
  return static_cast<int>(byte);
}

}  // namespace titan::serve

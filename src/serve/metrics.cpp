#include "serve/metrics.hpp"

#include "sim/fault.hpp"

namespace titan::serve {

void MetricsRegistry::add_counter(std::string_view name, std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_[std::string(name)] += delta;
}

void MetricsRegistry::set_counter(std::string_view name, std::uint64_t value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_[std::string(name)] = value;
}

void MetricsRegistry::set_gauge(std::string_view name, std::uint64_t value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  gauges_[std::string(name)] = value;
}

void MetricsRegistry::observe_latency(std::string_view scenario,
                                      std::uint64_t micros) {
  const std::lock_guard<std::mutex> lock(mutex_);
  LatencyHistogram& hist = latency_[std::string(scenario)];
  hist.buckets[sim::latency_bucket(micros, kLatencyHistogramBuckets)] += 1;
  hist.sum += micros;
  hist.count += 1;
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(std::string(name));
  return it == counters_.end() ? 0 : it->second;
}

std::uint64_t MetricsRegistry::gauge(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(std::string(name));
  return it == gauges_.end() ? 0 : it->second;
}

std::string MetricsRegistry::render_prometheus() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges_) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  if (!latency_.empty()) {
    const std::string name = "titand_request_latency_microseconds";
    out += "# TYPE " + name + " histogram\n";
    for (const auto& [scenario, hist] : latency_) {
      // Scenario names may hold '/' and '"'; both are label-safe once '"'
      // and '\' are escaped per the exposition format.
      std::string label;
      for (const char c : scenario) {
        if (c == '"' || c == '\\') {
          label += '\\';
        }
        label += c;
      }
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < kLatencyHistogramBuckets; ++i) {
        cumulative += hist.buckets[i];
        const std::string le =
            i + 1 == kLatencyHistogramBuckets
                ? "+Inf"
                : std::to_string((std::uint64_t{1} << i) - 1);
        out += name + "_bucket{scenario=\"" + label + "\",le=\"" + le + "\"} " +
               std::to_string(cumulative) + "\n";
      }
      out += name + "_sum{scenario=\"" + label + "\"} " +
             std::to_string(hist.sum) + "\n";
      out += name + "_count{scenario=\"" + label + "\"} " +
             std::to_string(hist.count) + "\n";
    }
  }
  return out;
}

}  // namespace titan::serve

#include "serve/chaos.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <random>
#include <sstream>
#include <thread>
#include <utility>

#include "api/wire.hpp"
#include "sim/json.hpp"

namespace titan::serve {

namespace {

/// Counters whose deltas the harness predicts exactly.  Anything tracked
/// here that moves by an unpredicted amount — including counters the
/// schedule should leave at zero, like titand_error_shutdown_total — fails
/// the run.
constexpr const char* kTrackedCounters[] = {
    "titand_requests_total",
    "titand_scenarios_served_total",
    "titand_errors_total",
    "titand_error_bad_frame_total",
    "titand_error_oversized_frame_total",
    "titand_error_unknown_scenario_total",
    "titand_error_overloaded_total",
    "titand_error_deadline_exceeded_total",
    "titand_error_budget_exceeded_total",
    "titand_error_cancelled_total",
    "titand_error_shutdown_total",
    "titand_shed_total",
    "titand_deadline_exceeded_total",
    "titand_budget_exceeded_total",
    "titand_cancelled_total",
};

/// Blocking client socket with per-operation timeouts; every failure mode
/// degrades to an empty read / false send for the harness to report.
class ChaosClient {
 public:
  ChaosClient(const std::string& host, std::uint16_t port, long timeout_ms) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      return;
    }
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
      close(fd_);
      fd_ = -1;
    }
  }
  ~ChaosClient() { close_now(); }
  ChaosClient(const ChaosClient&) = delete;
  ChaosClient& operator=(const ChaosClient&) = delete;

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  bool send_text(std::string_view text) {
    std::size_t sent = 0;
    while (sent < text.size()) {
      const ssize_t n =
          send(fd_, text.data() + sent, text.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// One LF-terminated response line (without the LF); "" on timeout/EOF.
  std::string read_line() {
    while (true) {
      const std::size_t nl = buffered_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffered_.substr(0, nl);
        buffered_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) {
        return {};
      }
      buffered_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::string read_to_eof() {
    std::string out = std::move(buffered_);
    buffered_.clear();
    char chunk[4096];
    while (true) {
      const ssize_t n = recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) {
        return out;
      }
      out.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Abrupt disconnect: exactly what a vanished client looks like.
  void close_now() {
    if (fd_ >= 0) {
      close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  std::string buffered_;
};

/// Parsed wire response, pre-digested for assertions.
struct WireResult {
  bool parsed = false;
  bool ok = false;
  std::string id;
  std::string code;
  bool warm = false;
  bool has_cycles = false;
  std::uint64_t cycles = 0;
  std::uint64_t retry_after_ms = 0;
};

WireResult parse_response(const std::string& line) {
  WireResult result;
  if (line.empty()) {
    return result;
  }
  sim::JsonValue root;
  try {
    root = sim::JsonValue::parse(line);
  } catch (const sim::JsonParseError&) {
    return result;
  }
  const sim::JsonValue* ok = root.find("ok");
  if (ok == nullptr) {
    return result;
  }
  result.parsed = true;
  result.ok = ok->as_bool();
  if (const sim::JsonValue* id = root.find("id")) {
    result.id = id->as_string();
  }
  if (const sim::JsonValue* warm = root.find("warm_start")) {
    result.warm = warm->as_bool();
  }
  if (const sim::JsonValue* error = root.find("error")) {
    if (const sim::JsonValue* code = error->find("code")) {
      result.code = code->as_string();
    }
    if (const sim::JsonValue* cycles = error->find("cycles")) {
      result.has_cycles = true;
      result.cycles = static_cast<std::uint64_t>(cycles->as_int());
    }
    if (const sim::JsonValue* retry = error->find("retry_after_ms")) {
      result.retry_after_ms = static_cast<std::uint64_t>(retry->as_int());
    }
  }
  return result;
}

/// The scenario-spec scaffold every probe uses; only name and workload
/// vary, and the name embeds the seed so probe fingerprints never collide
/// with real scenarios (or with other seeds' probes).
std::string probe_spec(const std::string& name, const std::string& workload) {
  return "scenario{name=" + name + ";workload=" + workload +
         ";fw=irq;fabric=baseline;queue_depth=8;burst=8;mac=0;dwait=0;"
         "dtimeout=0;ss=32;spill=16;jt=0;pmp=1;trace=0}";
}

class ChaosRun {
 public:
  explicit ChaosRun(const ChaosConfig& config)
      : config_(config), rng_(config.seed) {}

  ChaosReport execute() {
    if (config_.check_ready) {
      readiness_phase();
    }
    before_ = scrape();
    if (!scrape_ok_) {
      fail("scrape: cannot read /metrics baseline; aborting schedule");
      return std::move(report_);
    }
    benign_phase();
    slowloris_phase();
    abuse_phase();
    deadline_phase();
    budget_phase();
    flood_phase();
    midframe_phase();
    pipeline_phase();
    quiesce();
    diff_deltas();
    return std::move(report_);
  }

 private:
  // ---- plumbing -----------------------------------------------------------

  void log(const std::string& line) { report_.log.push_back(line); }
  void fail(const std::string& line) { report_.failures.push_back(line); }

  void expect(const std::string& counter, std::uint64_t delta = 1) {
    report_.expected_delta[counter] += delta;
  }

  std::unique_ptr<ChaosClient> connect() {
    auto client = std::make_unique<ChaosClient>(config_.host, config_.port,
                                                config_.io_timeout_ms);
    if (!client->connected()) {
      fail("connect: cannot reach " + config_.host + ":" +
           std::to_string(config_.port));
    }
    return client;
  }

  std::string http_get(const std::string& target) {
    ChaosClient client(config_.host, config_.port, config_.io_timeout_ms);
    if (!client.connected()) {
      return {};
    }
    client.send_text("GET " + target + " HTTP/1.1\r\nHost: " + config_.host +
                     "\r\n\r\n");
    return client.read_to_eof();
  }

  std::map<std::string, std::uint64_t> scrape() {
    const std::string response = http_get("/metrics");
    std::map<std::string, std::uint64_t> values;
    const std::size_t body_at = response.find("\r\n\r\n");
    scrape_ok_ = body_at != std::string::npos;
    if (!scrape_ok_) {
      return values;
    }
    std::istringstream body(response.substr(body_at + 4));
    std::string line;
    while (std::getline(body, line)) {
      if (line.empty() || line[0] == '#' ||
          line.find('{') != std::string::npos) {
        continue;  // comments and labelled (histogram) series
      }
      const std::size_t space = line.rfind(' ');
      if (space == std::string::npos) {
        continue;
      }
      values[line.substr(0, space)] = static_cast<std::uint64_t>(
          std::strtoull(line.c_str() + space + 1, nullptr, 10));
    }
    return values;
  }

  /// Poll the daemon's own gauges until `predicate` holds; the harness
  /// never asserts on elapsed time, so this is its only clock.
  bool poll_gauges(
      long deadline_ms,
      const std::function<bool(
          const std::map<std::string, std::uint64_t>&)>& predicate) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(deadline_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (predicate(scrape())) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

  std::string run_frame(const std::string& id, const std::string& spec,
                        std::int64_t deadline_ms, std::uint64_t max_cycles) {
    std::string frame = "{\"schema_version\":" +
                        std::to_string(api::kWireSchemaVersion) +
                        ",\"id\":\"" + id + "\",\"op\":\"run\",\"spec\":\"" +
                        sim::json_escape(spec) + "\"";
    if (deadline_ms >= 0) {
      frame += ",\"deadline_ms\":" + std::to_string(deadline_ms);
    }
    if (max_cycles != 0) {
      frame += ",\"max_cycles\":" + std::to_string(max_cycles);
    }
    frame += "}\n";
    return frame;
  }

  std::string ping_frame(const std::string& id) {
    return "{\"schema_version\":" + std::to_string(api::kWireSchemaVersion) +
           ",\"id\":\"" + id + "\",\"op\":\"ping\"}\n";
  }

  std::string seed_tag() const { return std::to_string(config_.seed); }

  // ---- phases -------------------------------------------------------------

  void readiness_phase() {
    const std::string health = http_get("/healthz");
    if (health.find("200 OK") == std::string::npos) {
      fail("readiness: /healthz did not answer 200");
    }
    const std::string ready = http_get("/readyz");
    if (ready.find("200 OK") == std::string::npos ||
        ready.find("ready") == std::string::npos) {
      fail("readiness: /readyz did not answer 200 ready");
    }
    log("readiness: /healthz ok, /readyz ready");
  }

  void benign_phase() {
    auto client = connect();
    client->send_text(ping_frame("chaos-ping"));
    expect("titand_requests_total");
    WireResult pong = parse_response(client->read_line());
    if (!pong.ok || pong.id != "chaos-ping") {
      fail("benign: ping did not pong");
    }
    client->send_text("{\"schema_version\":" +
                      std::to_string(api::kWireSchemaVersion) +
                      ",\"id\":\"chaos-list\",\"op\":\"list\"}\n");
    expect("titand_requests_total");
    if (!parse_response(client->read_line()).ok) {
      fail("benign: list failed");
    }
    client->send_text(run_frame(
        "chaos-benign", probe_spec("chaos/benign/" + seed_tag(), "stats(4096)"),
        -1, 0));
    expect("titand_requests_total");
    expect("titand_scenarios_served_total");
    const WireResult run = parse_response(client->read_line());
    if (!run.ok) {
      fail("benign: run failed with code '" + run.code + "'");
    }
    if (config_.expect_cold_runs && run.warm) {
      fail("benign: probe run unexpectedly warm-started");
    }
    log("benign: ping, list, cold spec run all served");
  }

  void slowloris_phase() {
    auto slow = connect();
    const std::string frame = ping_frame("chaos-slow");
    const std::size_t third = frame.size() / 3;
    slow->send_text(frame.substr(0, third));
    // The daemon must keep serving other clients while the drip stalls.
    auto bystander = connect();
    bystander->send_text(ping_frame("chaos-bystander"));
    expect("titand_requests_total");
    if (!parse_response(bystander->read_line()).ok) {
      fail("slowloris: bystander ping starved behind a dripped frame");
    }
    slow->send_text(frame.substr(third, third));
    slow->send_text(frame.substr(2 * third));
    expect("titand_requests_total");
    const WireResult dripped = parse_response(slow->read_line());
    if (!dripped.ok || dripped.id != "chaos-slow") {
      fail("slowloris: dripped ping never answered");
    }
    log("slowloris: dripped ping answered, bystander unaffected");
  }

  void abuse_phase() {
    auto client = connect();
    client->send_text("{this is not json\n");
    expect("titand_requests_total");
    expect("titand_errors_total");
    expect("titand_error_bad_frame_total");
    if (parse_response(client->read_line()).code != "bad_frame") {
      fail("abuse: malformed frame did not come back bad_frame");
    }
    client->send_text("{\"schema_version\":" +
                      std::to_string(api::kWireSchemaVersion) +
                      ",\"id\":\"chaos-noscn\",\"op\":\"run\","
                      "\"scenario\":\"chaos/no_such_scenario\"}\n");
    expect("titand_requests_total");
    expect("titand_errors_total");
    expect("titand_error_unknown_scenario_total");
    if (parse_response(client->read_line()).code != "unknown_scenario") {
      fail("abuse: unknown scenario not rejected as unknown_scenario");
    }
    // Oversized: a line max_frame+64 long; the daemon must reject once,
    // eat the remainder, and serve the next frame on the same connection.
    client->send_text("{\"pad\":\"" +
                      std::string(config_.max_frame + 64, 'x') + "\"}\n");
    expect("titand_requests_total");
    expect("titand_errors_total");
    expect("titand_error_oversized_frame_total");
    if (parse_response(client->read_line()).code != "oversized_frame") {
      fail("abuse: oversized frame not rejected as oversized_frame");
    }
    client->send_text(ping_frame("chaos-after-oversize"));
    expect("titand_requests_total");
    if (!parse_response(client->read_line()).ok) {
      fail("abuse: connection dead after oversized frame");
    }
    log("abuse: bad_frame, unknown_scenario, oversized_frame all "
        "structured; connection survived");
  }

  void deadline_phase() {
    auto client = connect();
    client->send_text(run_frame(
        "chaos-deadline",
        probe_spec("chaos/deadline/" + seed_tag(), "stats(4096)"), 0, 0));
    expect("titand_requests_total");
    expect("titand_errors_total");
    expect("titand_error_deadline_exceeded_total");
    expect("titand_deadline_exceeded_total");
    const WireResult result = parse_response(client->read_line());
    if (result.code != "deadline_exceeded") {
      fail("deadline: deadline_ms=0 run came back '" + result.code +
           "', want deadline_exceeded");
    } else if (!result.has_cycles || result.cycles != 0) {
      fail("deadline: deadline_ms=0 run reported " +
           std::to_string(result.cycles) + " cycles, want exactly 0");
    }
    log("deadline: deadline_ms=0 -> deadline_exceeded at 0 cycles");
  }

  void budget_phase() {
    auto client = connect();
    client->send_text(run_frame(
        "chaos-budget",
        probe_spec("chaos/budget/" + seed_tag(), "stats(65536)"), -1,
        config_.budget_cycles));
    expect("titand_requests_total");
    expect("titand_errors_total");
    expect("titand_error_budget_exceeded_total");
    expect("titand_budget_exceeded_total");
    const WireResult result = parse_response(client->read_line());
    if (result.code != "budget_exceeded") {
      fail("budget: max_cycles run came back '" + result.code +
           "', want budget_exceeded");
    } else if (config_.expect_cold_runs &&
               (!result.has_cycles || result.cycles != config_.budget_cycles)) {
      fail("budget: stopped at " + std::to_string(result.cycles) +
           " cycles, want exactly " + std::to_string(config_.budget_cycles));
    }
    log("budget: max_cycles=" + std::to_string(config_.budget_cycles) +
        " -> budget_exceeded at the exact budget");
  }

  void flood_phase() {
    const unsigned fillers =
        config_.max_inflight + static_cast<unsigned>(config_.max_queue);
    std::vector<std::unique_ptr<ChaosClient>> flood;
    for (unsigned i = 0; i < fillers; ++i) {
      flood.push_back(connect());
      flood.back()->send_text(run_frame(
          "chaos-filler-" + std::to_string(i),
          probe_spec("chaos/filler/" + std::to_string(i) + "/" + seed_tag(),
                     config_.filler_workload),
          -1, 0));
      expect("titand_requests_total");
      // Admission is deterministic because each filler is confirmed to
      // occupy an admission slot (titand_runs_outstanding, charged from
      // the admit decision until completion) before the next is sent.
      // Exact equality, not >=: transient worker-handoff states must be
      // waited out, never mistaken for saturation.
      const std::uint64_t admitted = i + 1;
      if (!poll_gauges(config_.saturate_timeout_ms,
                       [&](const std::map<std::string, std::uint64_t>& m) {
                         const auto outstanding =
                             m.find("titand_runs_outstanding");
                         return outstanding != m.end() &&
                                outstanding->second == admitted;
                       })) {
        fail("flood: filler " + std::to_string(i) +
             " never became visible in the outstanding-runs gauge");
      }
    }
    log("flood: " + std::to_string(fillers) +
        " fillers admitted (inflight+queue saturated)");

    for (unsigned probe = 0; probe < config_.shed_probes; ++probe) {
      auto client = connect();
      client->send_text(run_frame(
          "chaos-shed-" + std::to_string(probe),
          probe_spec("chaos/shed/" + std::to_string(probe) + "/" + seed_tag(),
                     "stats(4096)"),
          -1, 0));
      expect("titand_requests_total");
      expect("titand_errors_total");
      expect("titand_error_overloaded_total");
      expect("titand_shed_total");
      const WireResult result = parse_response(client->read_line());
      if (result.code != "overloaded") {
        fail("flood: shed probe " + std::to_string(probe) + " came back '" +
             result.code + "', want overloaded");
      } else if (result.retry_after_ms != config_.retry_after_ms) {
        fail("flood: shed probe " + std::to_string(probe) +
             " carried retry_after_ms=" +
             std::to_string(result.retry_after_ms) + ", want " +
             std::to_string(config_.retry_after_ms));
      }
    }
    log("flood: " + std::to_string(config_.shed_probes) +
        " probes shed with overloaded + retry_after_ms");

    // Seeded choice of which fillers vanish mid-run (Fisher-Yates prefix).
    std::vector<unsigned> order(fillers);
    for (unsigned i = 0; i < fillers; ++i) {
      order[i] = i;
    }
    for (unsigned i = 0; i < fillers; ++i) {
      std::swap(order[i], order[i + rng_() % (fillers - i)]);
    }
    const unsigned disconnects =
        std::min(config_.disconnect_fillers, fillers);
    std::vector<bool> dropped(fillers, false);
    for (unsigned i = 0; i < disconnects; ++i) {
      dropped[order[i]] = true;
      flood[order[i]]->close_now();
      expect("titand_errors_total");
      expect("titand_error_cancelled_total");
      expect("titand_cancelled_total");
      log("flood: disconnected filler " + std::to_string(order[i]) +
          " mid-run");
    }
    for (unsigned i = 0; i < fillers; ++i) {
      if (dropped[i]) {
        continue;
      }
      expect("titand_scenarios_served_total");
      const WireResult result = parse_response(flood[i]->read_line());
      if (!result.ok) {
        fail("flood: surviving filler " + std::to_string(i) +
             " failed with '" + result.code + "'");
      } else {
        log("flood: surviving filler " + std::to_string(i) + " served");
      }
    }
  }

  void midframe_phase() {
    {
      auto client = connect();
      client->send_text("{\"schema_version\":1,\"op\":\"pi");  // no newline
      client->close_now();
    }
    auto client = connect();
    client->send_text(ping_frame("chaos-after-midframe"));
    expect("titand_requests_total");
    if (!parse_response(client->read_line()).ok) {
      fail("midframe: daemon unhealthy after mid-frame disconnect");
    }
    log("midframe: partial frame dropped silently, daemon healthy");
  }

  void pipeline_phase() {
    auto client = connect();
    std::string burst;
    for (unsigned i = 0; i < config_.pipeline_depth; ++i) {
      burst += ping_frame("chaos-pipe-" + std::to_string(i));
      expect("titand_requests_total");
    }
    client->send_text(burst);
    for (unsigned i = 0; i < config_.pipeline_depth; ++i) {
      const WireResult result = parse_response(client->read_line());
      if (!result.ok || result.id != "chaos-pipe-" + std::to_string(i)) {
        fail("pipeline: response " + std::to_string(i) +
             " out of order or missing (got id '" + result.id + "')");
        return;
      }
    }
    log("pipeline: " + std::to_string(config_.pipeline_depth) +
        " pipelined pings answered in order");
  }

  void quiesce() {
    // All counters are final once no admission slot is occupied: every
    // tracked counter increments inside request execution, before the
    // completion push that releases the slot.
    if (!poll_gauges(config_.io_timeout_ms,
                     [](const std::map<std::string, std::uint64_t>& m) {
                       const auto outstanding =
                           m.find("titand_runs_outstanding");
                       return outstanding != m.end() &&
                              outstanding->second == 0;
                     })) {
      fail("quiesce: daemon never returned to idle after the schedule");
    }
  }

  void diff_deltas() {
    const std::map<std::string, std::uint64_t> after = scrape();
    if (!scrape_ok_) {
      fail("scrape: cannot read /metrics after the schedule");
      return;
    }
    const auto value = [](const std::map<std::string, std::uint64_t>& m,
                          const char* name) -> std::uint64_t {
      const auto it = m.find(name);
      return it == m.end() ? 0 : it->second;
    };
    for (const char* name : kTrackedCounters) {
      const std::uint64_t actual = value(after, name) - value(before_, name);
      const std::uint64_t expected = report_.expected_delta[name];
      report_.actual_delta[name] = actual;
      if (actual != expected) {
        fail(std::string("delta: ") + name + " moved by " +
             std::to_string(actual) + ", want exactly " +
             std::to_string(expected));
      }
    }
  }

  ChaosConfig config_;
  std::mt19937_64 rng_;
  ChaosReport report_;
  std::map<std::string, std::uint64_t> before_;
  bool scrape_ok_ = false;
};

}  // namespace

std::string ChaosReport::render() const {
  std::ostringstream out;
  for (const std::string& line : log) {
    out << line << "\n";
  }
  out << "--- tracked counter deltas ---\n";
  for (const auto& [name, expected] : expected_delta) {
    const auto it = actual_delta.find(name);
    const std::uint64_t actual = it == actual_delta.end() ? 0 : it->second;
    out << name << " expected=" << expected << " actual=" << actual
        << (actual == expected ? "" : "  MISMATCH") << "\n";
  }
  if (failures.empty()) {
    out << "CHAOS PASS\n";
  } else {
    out << "CHAOS FAIL (" << failures.size() << " failures)\n";
    for (const std::string& line : failures) {
      out << "  " << line << "\n";
    }
  }
  return out.str();
}

ChaosReport run_chaos(const ChaosConfig& config) {
  return ChaosRun(config).execute();
}

}  // namespace titan::serve

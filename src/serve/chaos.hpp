// Deterministic socket-chaos harness for titand.
//
// run_chaos() connects to a live daemon and replays a seeded adversarial
// schedule — slow-dripped frames (slowloris), oversized frames, malformed
// frames, deadline-0 and cycle-budget probes, a pipelined flood past the
// admission queue bound, and mid-run client disconnects — asserting not
// just that the daemon survives (keeps answering on fresh connections) but
// that it survives *predictably*: the harness computes the exact delta
// every tracked daemon counter must show (titand_shed_total,
// titand_deadline_exceeded_total, titand_cancelled_total, per-code error
// counters, ...) as it issues each operation, scrapes /metrics before and
// after, and fails on any mismatch.  Same seed + same config ⇒ identical
// operation log and identical expected deltas — the CI chaos-smoke job
// runs the harness twice and diffs the reports byte for byte.
//
// Preconditions the daemon must match (or the deltas will not line up):
//   * max_inflight / max_queue / retry_after_ms / max_frame mirror the
//     daemon's flags — saturation arithmetic depends on them;
//   * expect_cold_runs: spec-named probe runs execute from cycle 0 (true
//     for --warm=off and --warm_start bundle daemons; a lazy-warming
//     daemon captures checkpoints for probe specs, shifting cycle counts).
//
// The harness never asserts on wall-clock timing, only on counters and
// response bytes: saturation is confirmed by polling the daemon's own
// admission-slot gauge (titand_runs_outstanding) for the exact occupancy,
// and filler runs are sized (filler_workload) to outlast the probe window
// by a wide margin.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace titan::serve {

struct ChaosConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Seeds every choice the schedule makes (which fillers to disconnect,
  /// probe ids); identical seeds replay identical schedules.
  std::uint64_t seed = 1;
  /// Mirror of the daemon's --max_frame (oversized-frame probe size).
  std::size_t max_frame = 1 << 20;
  /// Mirrors of the daemon's admission flags; the flood phase opens
  /// max_inflight + max_queue fillers to pin every slot.
  unsigned max_inflight = 2;
  std::size_t max_queue = 2;
  std::uint64_t retry_after_ms = 50;
  /// Runs shed while saturated (each must come back `overloaded`).
  unsigned shed_probes = 3;
  /// Fillers disconnected mid-run (each must count one cancellation).
  unsigned disconnect_fillers = 2;
  /// Pings pipelined in one write (answers must come back in order).
  unsigned pipeline_depth = 8;
  /// Workload of flood fillers; must run long enough to still be executing
  /// when the shed probes and disconnects land (~1s+ simulated).
  std::string filler_workload = "fib(24)";
  /// max_cycles for the budget probe; a cold run must stop at exactly this
  /// cycle (asserted when expect_cold_runs).
  std::uint64_t budget_cycles = 256;
  bool expect_cold_runs = true;
  /// Assert GET /healthz == ok and GET /readyz == ready at entry.
  bool check_ready = true;
  long io_timeout_ms = 20000;       ///< Per-socket-operation timeout.
  long saturate_timeout_ms = 20000; ///< Gauge-poll deadline for the flood.
};

struct ChaosReport {
  /// Deterministic operation log (no timings, no addresses): two runs with
  /// the same seed and config produce identical logs.
  std::vector<std::string> log;
  /// Empty == the daemon survived the schedule with exact metric deltas.
  std::vector<std::string> failures;
  std::map<std::string, std::uint64_t> expected_delta;
  std::map<std::string, std::uint64_t> actual_delta;
  [[nodiscard]] bool ok() const { return failures.empty(); }
  /// Render log + delta table + verdict as printable text.
  [[nodiscard]] std::string render() const;
};

/// Replay the chaos schedule against a live daemon.  Never throws; every
/// anomaly (connect failure, timeout, wrong byte, wrong delta) lands in
/// ChaosReport::failures.
[[nodiscard]] ChaosReport run_chaos(const ChaosConfig& config);

}  // namespace titan::serve

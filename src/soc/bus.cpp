#include "soc/bus.hpp"

#include <stdexcept>

namespace titan::soc {

void Crossbar::map(Region region, BusTarget& target,
                   std::uint32_t device_latency, std::string label) {
  for (const Mapping& existing : mappings_) {
    const bool overlaps = region.base < existing.region.end() &&
                          existing.region.base < region.end();
    if (overlaps) {
      throw std::invalid_argument("Crossbar '" + name_ +
                                  "': overlapping region for " + label);
    }
  }
  mappings_.push_back({region, &target, device_latency, std::move(label)});
}

Crossbar::Mapping* Crossbar::lookup(Addr addr) {
  if (mru_ < mappings_.size() && mappings_[mru_].region.contains(addr)) {
    return &mappings_[mru_];
  }
  for (std::size_t i = 0; i < mappings_.size(); ++i) {
    if (mappings_[i].region.contains(addr)) {
      mru_ = i;
      return &mappings_[i];
    }
  }
  return nullptr;
}

BusResponse Crossbar::read(Addr addr, unsigned size) {
  ++transactions_;
  Mapping* mapping = lookup(addr);
  if (mapping == nullptr) {
    return {.value = 0, .latency = hop_latency_, .decode_error = true};
  }
  BusResponse response;
  response.value = mapping->target->read(addr, size);
  response.latency = hop_latency_ + mapping->device_latency;
  return response;
}

BusResponse Crossbar::write(Addr addr, unsigned size, std::uint64_t value) {
  ++transactions_;
  Mapping* mapping = lookup(addr);
  if (mapping == nullptr) {
    return {.value = 0, .latency = hop_latency_, .decode_error = true};
  }
  mapping->target->write(addr, size, value);
  return {.value = 0,
          .latency = hop_latency_ + mapping->device_latency,
          .decode_error = false};
}

void Crossbar::set_device_latency(const std::string& label,
                                  std::uint32_t cycles) {
  for (Mapping& mapping : mappings_) {
    if (mapping.label == label) {
      mapping.device_latency = cycles;
      return;
    }
  }
  throw std::invalid_argument("Crossbar '" + name_ + "': no region labelled " +
                              label);
}

}  // namespace titan::soc

#include "soc/plic.hpp"

namespace titan::soc {

void Plic::raise(unsigned source) {
  if (source > 0 && source < pending_.size()) {
    pending_[source] = true;
  }
}

void Plic::lower(unsigned source) {
  if (source > 0 && source < pending_.size()) {
    pending_[source] = false;
  }
}

unsigned Plic::pending_source() const {
  for (unsigned source = 1; source < pending_.size(); ++source) {
    if (pending_[source] && enabled_[source] && !in_service_[source]) {
      return source;
    }
  }
  return 0;
}

unsigned Plic::claim() {
  const unsigned source = pending_source();
  if (source != 0) {
    in_service_[source] = true;
    pending_[source] = false;
    ++claims_;
  }
  return source;
}

void Plic::complete(unsigned source) {
  if (source > 0 && source < in_service_.size()) {
    in_service_[source] = false;
  }
}

void Plic::enable(unsigned source, bool on) {
  if (source > 0 && source < enabled_.size()) {
    enabled_[source] = on;
  }
}

std::uint64_t Plic::read(Addr addr, unsigned size) {
  (void)size;
  switch (addr & 0xFF) {
    case kPendingOffset: {
      std::uint64_t bits = 0;
      for (unsigned source = 1; source < pending_.size() && source < 64; ++source) {
        if (pending_[source]) {
          bits |= std::uint64_t{1} << source;
        }
      }
      return bits;
    }
    case kEnableOffset: {
      std::uint64_t bits = 0;
      for (unsigned source = 1; source < enabled_.size() && source < 64; ++source) {
        if (enabled_[source]) {
          bits |= std::uint64_t{1} << source;
        }
      }
      return bits;
    }
    case kClaimOffset:
      return claim();
    default:
      return 0;
  }
}

void Plic::write(Addr addr, unsigned size, std::uint64_t value) {
  (void)size;
  switch (addr & 0xFF) {
    case kEnableOffset:
      for (unsigned source = 1; source < enabled_.size() && source < 64; ++source) {
        enabled_[source] = ((value >> source) & 1) != 0;
      }
      break;
    case kClaimOffset:
      complete(static_cast<unsigned>(value));
      break;
    default:
      break;
  }
}

}  // namespace titan::soc

// Platform-Level Interrupt Controller model (claim/complete protocol).
//
// Both domains own a PLIC in the reference SoC (Fig. 1); the RoT's instance
// forwards the CFI-mailbox doorbell to Ibex as ext-irq.  Only the features
// the firmware exercises are modelled: level-pending sources, per-source
// enables, claim/complete, and a "highest pending" arbitration.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/snapshot.hpp"
#include "soc/bus.hpp"

namespace titan::soc {

class Plic final : public BusTarget {
 public:
  /// MMIO register offsets (one word each).
  static constexpr Addr kPendingOffset = 0x00;
  static constexpr Addr kEnableOffset = 0x08;
  static constexpr Addr kClaimOffset = 0x10;  ///< Read: claim; write: complete.

  explicit Plic(unsigned num_sources) : pending_(num_sources + 1, false),
                                        enabled_(num_sources + 1, false),
                                        in_service_(num_sources + 1, false) {}

  /// Assert a level interrupt from a source (1-based ids, as in the spec).
  void raise(unsigned source);
  void lower(unsigned source);

  /// Highest-priority (lowest id) pending+enabled source, or 0.
  [[nodiscard]] unsigned pending_source() const;
  /// True when any enabled source is pending and not already in service.
  [[nodiscard]] bool irq_asserted() const { return pending_source() != 0; }

  unsigned claim();
  void complete(unsigned source);
  void enable(unsigned source, bool on = true);

  // ---- BusTarget ------------------------------------------------------------
  std::uint64_t read(Addr addr, unsigned size) override;
  void write(Addr addr, unsigned size, std::uint64_t value) override;

  [[nodiscard]] std::uint64_t claims() const { return claims_; }

  /// Checkpoint support: the per-source level/enable/in-service bits and the
  /// claim counter.  Source count is config-derived and only sanity-checked.
  void save_state(sim::SnapshotWriter& writer) const {
    writer.u64(pending_.size());
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      writer.boolean(pending_[i]);
      writer.boolean(enabled_[i]);
      writer.boolean(in_service_[i]);
    }
    writer.u64(claims_);
  }
  void load_state(sim::SnapshotReader& reader) {
    if (reader.u64() != pending_.size()) {
      throw sim::SnapshotError("plic: source count mismatch");
    }
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      pending_[i] = reader.boolean();
      enabled_[i] = reader.boolean();
      in_service_[i] = reader.boolean();
    }
    claims_ = reader.u64();
  }

 private:
  std::vector<bool> pending_;
  std::vector<bool> enabled_;
  std::vector<bool> in_service_;
  std::uint64_t claims_ = 0;
};

}  // namespace titan::soc

// SECDED (single-error-correct, double-error-detect) Hamming code.
//
// OpenTitan's embedded flash and SRAM are ECC-protected (paper Sec. III-B);
// the flash model passes every word through this codec.  The construction is the
// classic extended Hamming code: parity bits at power-of-two positions plus
// one overall parity bit, parameterised over the data width (32 -> (39,32),
// 64 -> (72,64)).
#pragma once

#include <cstdint>

namespace titan::soc {

enum class EccStatus {
  kOk,             ///< Clean codeword.
  kCorrected,      ///< Single-bit error corrected (data valid).
  kUncorrectable,  ///< Double-bit error detected (data invalid).
};

struct EccResult {
  std::uint64_t data = 0;
  EccStatus status = EccStatus::kOk;
  /// 1-based codeword position of the corrected bit (0 when none; the
  /// overall-parity position is reported as the codeword length).
  unsigned corrected_position = 0;
};

/// Extended-Hamming SECDED codec for data widths 1..64.
class Secded {
 public:
  explicit Secded(unsigned data_bits);

  [[nodiscard]] unsigned data_bits() const { return data_bits_; }
  [[nodiscard]] unsigned parity_bits() const { return parity_bits_; }
  /// Total codeword width including the overall parity bit.
  [[nodiscard]] unsigned codeword_bits() const {
    return data_bits_ + parity_bits_ + 1;
  }

  [[nodiscard]] std::uint64_t encode(std::uint64_t data) const;
  [[nodiscard]] EccResult decode(std::uint64_t codeword) const;

 private:
  unsigned data_bits_;
  unsigned parity_bits_;
};

}  // namespace titan::soc

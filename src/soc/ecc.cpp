#include "soc/ecc.hpp"

#include <bit>
#include <stdexcept>

namespace titan::soc {

namespace {

bool is_power_of_two(unsigned x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace

Secded::Secded(unsigned data_bits) : data_bits_(data_bits), parity_bits_(0) {
  if (data_bits == 0 || data_bits > 57) {
    // 57 data bits + 6 parity + 1 overall = 64: the codeword must fit a u64.
    throw std::invalid_argument("Secded: data width must be 1..57 bits");
  }
  while ((1u << parity_bits_) < data_bits_ + parity_bits_ + 1) {
    ++parity_bits_;
  }
}

// Codeword layout: bit index 0 holds the overall parity; Hamming positions
// 1..(data+parity) follow, with parity bits at power-of-two positions and
// data bits filling the rest in increasing order.

std::uint64_t Secded::encode(std::uint64_t data) const {
  const unsigned total = data_bits_ + parity_bits_;
  std::uint64_t codeword = 0;

  unsigned data_index = 0;
  for (unsigned pos = 1; pos <= total; ++pos) {
    if (is_power_of_two(pos)) {
      continue;
    }
    if ((data >> data_index) & 1) {
      codeword |= std::uint64_t{1} << pos;
    }
    ++data_index;
  }

  for (unsigned p = 0; p < parity_bits_; ++p) {
    const unsigned mask = 1u << p;
    unsigned parity = 0;
    for (unsigned pos = 1; pos <= total; ++pos) {
      if ((pos & mask) && ((codeword >> pos) & 1)) {
        parity ^= 1;
      }
    }
    if (parity) {
      codeword |= std::uint64_t{1} << mask;
    }
  }

  // Overall parity across everything (position 0).
  if (std::popcount(codeword) % 2 != 0) {
    codeword |= 1;
  }
  return codeword;
}

EccResult Secded::decode(std::uint64_t codeword) const {
  const unsigned total = data_bits_ + parity_bits_;

  unsigned syndrome = 0;
  for (unsigned p = 0; p < parity_bits_; ++p) {
    const unsigned mask = 1u << p;
    unsigned parity = 0;
    for (unsigned pos = 1; pos <= total; ++pos) {
      if ((pos & mask) && ((codeword >> pos) & 1)) {
        parity ^= 1;
      }
    }
    if (parity) {
      syndrome |= mask;
    }
  }
  const bool overall_ok = std::popcount(codeword) % 2 == 0;

  EccResult result;
  std::uint64_t repaired = codeword;
  if (syndrome == 0 && overall_ok) {
    result.status = EccStatus::kOk;
  } else if (!overall_ok) {
    // Odd number of flipped bits: single-bit error, correctable.
    result.status = EccStatus::kCorrected;
    if (syndrome == 0) {
      // The overall parity bit itself flipped.
      repaired ^= 1;
      result.corrected_position = codeword_bits();
    } else if (syndrome <= total) {
      repaired ^= std::uint64_t{1} << syndrome;
      result.corrected_position = syndrome;
    } else {
      result.status = EccStatus::kUncorrectable;
    }
  } else {
    // syndrome != 0 with even overall parity: double-bit error.
    result.status = EccStatus::kUncorrectable;
  }

  if (result.status == EccStatus::kUncorrectable) {
    result.data = 0;
    return result;
  }

  std::uint64_t data = 0;
  unsigned data_index = 0;
  for (unsigned pos = 1; pos <= total; ++pos) {
    if (is_power_of_two(pos)) {
      continue;
    }
    if ((repaired >> pos) & 1) {
      data |= std::uint64_t{1} << data_index;
    }
    ++data_index;
  }
  result.data = data;
  return result;
}

}  // namespace titan::soc

// SoC physical address map.
//
// Mirrors the reference platform of the paper ([1], Ciani et al. ISCAS'23):
// a CVA6 host domain with scratchpad + DRAM behind an AXI4 crossbar, the
// OpenTitan RoT with its private 128 KiB SRAM and embedded flash behind a
// TileLink-UL fabric, an SCMI mailbox, and the new CFI mailbox added by
// TitanCFI (paper Sec. IV-A).
#pragma once

#include "sim/types.hpp"

namespace titan::soc {

using sim::Addr;

struct Region {
  Addr base = 0;
  Addr size = 0;

  [[nodiscard]] bool contains(Addr addr) const {
    return addr >= base && addr < base + size;
  }
  [[nodiscard]] Addr end() const { return base + size; }
};

// ---- Host domain -----------------------------------------------------------
inline constexpr Region kPlic{0x0C00'0000, 0x0040'0000};
inline constexpr Region kHostScratchpad{0x1000'0000, 0x0010'0000};  // 1 MiB
inline constexpr Region kScmiMailbox{0x1040'0000, 0x0000'1000};
inline constexpr Region kCfiMailbox{0x1041'0000, 0x0000'1000};
inline constexpr Region kDram{0x8000'0000, 0x1000'0000};  // 256 MiB

// ---- OpenTitan RoT domain ---------------------------------------------------
inline constexpr Region kRotSram{0x2000'0000, 0x0002'0000};   // 128 KiB
inline constexpr Region kRotFlash{0x2100'0000, 0x0008'0000};  // 512 KiB
inline constexpr Region kRotHmacAccel{0x2200'0000, 0x0000'1000};
inline constexpr Region kRotPlic{0x2300'0000, 0x0000'1000};

/// Region of DRAM statically reserved (via PMP in the real SoC) for
/// authenticated shadow-stack spills.
inline constexpr Region kSpillArena{0x8F00'0000, 0x0010'0000};

/// True when the address lies in RoT-private storage (used by the Ibex cycle
/// model to pick the scratchpad vs. SoC access latency, Table I's
/// Mem.RoT / Mem.SoC split).
[[nodiscard]] inline bool is_rot_private(Addr addr) {
  return kRotSram.contains(addr) || kRotFlash.contains(addr) ||
         kRotHmacAccel.contains(addr) || kRotPlic.contains(addr);
}

}  // namespace titan::soc

// SCMI-style doorbell/completion mailbox (paper Sec. III-B and IV-A).
//
// "The mailbox consists of a set of general-purpose memory mapped registers
//  meant for data sharing. Additionally, it features two registers, named
//  Doorbell and Completion, which are meant to send an interrupt to the Ibex
//  security microcontroller and to the CVA6 host core."
//
// The CFI Mailbox is the same block with two differences (Sec. IV-A):
//  * the data registers are sized to hold one 224-bit commit log, and
//  * the completion register is wired directly to the CVA6 commit stage
//    (the CFI Log Writer) rather than to the host interrupt controller.
// Both behaviours are expressed through the on_doorbell/on_completion hooks.
//
// Burst extension (this repo, beyond the paper's single-log register file):
// the deeper queue sweeps assume the RoT drains the CFI Queue in bursts, so
// the data register file grows a batch area — BATCH_COUNT at +0x50, an
// optional 256-bit batch MAC at +0x60, and up to kBatchSlots commit-log
// slots of kSlotRegs 64-bit registers each from +0x80.  The legacy one-log
// layout (data 0x00-0x3F, doorbell 0x40, completion 0x48) is untouched, so
// single-drain firmware and Table I/II reproductions see an identical block.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "sim/snapshot.hpp"
#include "soc/bus.hpp"

namespace titan::soc {

class Mailbox final : public BusTarget {
 public:
  /// Register file layout (64-bit registers, byte offsets).
  static constexpr Addr kDataOffset = 0x00;
  static constexpr unsigned kDataRegs = 8;
  static constexpr Addr kDoorbellOffset = 0x40;
  static constexpr Addr kCompletionOffset = 0x48;
  // ---- Burst-drain extension ------------------------------------------------
  static constexpr Addr kBatchCountOffset = 0x50;
  static constexpr Addr kBatchMacOffset = 0x60;   ///< 4 x 64-bit MAC words.
  static constexpr unsigned kMacRegs = 4;
  static constexpr Addr kBatchBase = 0x80;
  static constexpr unsigned kBatchSlots = 16;     ///< Max logs per doorbell.
  static constexpr unsigned kSlotRegs = 4;        ///< 64-bit beats per log.
  static constexpr Addr kSlotStride = 8 * kSlotRegs;
  static constexpr Addr slot_offset(unsigned slot) {
    return kBatchBase + slot * kSlotStride;
  }

  using SignalHook = std::function<void()>;
  using DoorbellFilter = std::function<bool()>;

  /// Hook invoked when the sender rings the doorbell (RoT side interrupt).
  void set_on_doorbell(SignalHook hook) { on_doorbell_ = std::move(hook); }
  /// Hook invoked when the receiver signals completion (host side).
  void set_on_completion(SignalHook hook) { on_completion_ = std::move(hook); }
  /// Fault-injection seam: consulted on each doorbell ring; returning false
  /// drops the ring silently (no flag, no count, no interrupt) — modelling a
  /// doorbell pulse lost on the interconnect.
  void set_doorbell_filter(DoorbellFilter filter) {
    doorbell_filter_ = std::move(filter);
  }

  // ---- BusTarget (MMIO view, used by Ibex firmware / CVA6) -----------------
  std::uint64_t read(Addr addr, unsigned size) override;
  void write(Addr addr, unsigned size, std::uint64_t value) override;

  // ---- Direct port view (used by the hardware-side CFI Log Writer) ---------
  [[nodiscard]] std::uint64_t data(unsigned index) const { return data_.at(index); }
  void set_data(unsigned index, std::uint64_t value) { data_.at(index) = value; }
  [[nodiscard]] std::uint64_t batch_count() const { return batch_count_; }
  void set_batch_count(std::uint64_t count) { batch_count_ = count; }
  [[nodiscard]] std::uint64_t batch_beat(unsigned slot, unsigned beat) const {
    return batch_.at(slot * kSlotRegs + beat);
  }
  void set_batch_beat(unsigned slot, unsigned beat, std::uint64_t value) {
    batch_.at(slot * kSlotRegs + beat) = value;
  }
  [[nodiscard]] std::uint64_t batch_mac(unsigned index) const {
    return mac_.at(index);
  }
  void set_batch_mac(unsigned index, std::uint64_t value) {
    mac_.at(index) = value;
  }

  void ring_doorbell();
  void signal_completion();
  [[nodiscard]] bool doorbell_pending() const { return doorbell_; }
  [[nodiscard]] bool completion_pending() const { return completion_; }
  void clear_doorbell() { doorbell_ = false; }
  void clear_completion() { completion_ = false; }

  [[nodiscard]] std::uint64_t doorbell_count() const { return doorbell_count_; }
  [[nodiscard]] std::uint64_t completion_count() const { return completion_count_; }

  /// Checkpoint support: the full register file, pending interrupt flags and
  /// ring/completion counters.  Hooks are config-wired and not serialized.
  void save_state(sim::SnapshotWriter& writer) const {
    for (const std::uint64_t reg : data_) writer.u64(reg);
    writer.u64(batch_count_);
    for (const std::uint64_t reg : mac_) writer.u64(reg);
    for (const std::uint64_t reg : batch_) writer.u64(reg);
    writer.boolean(doorbell_);
    writer.boolean(completion_);
    writer.u64(doorbell_count_);
    writer.u64(completion_count_);
  }
  void load_state(sim::SnapshotReader& reader) {
    for (std::uint64_t& reg : data_) reg = reader.u64();
    batch_count_ = reader.u64();
    for (std::uint64_t& reg : mac_) reg = reader.u64();
    for (std::uint64_t& reg : batch_) reg = reader.u64();
    doorbell_ = reader.boolean();
    completion_ = reader.boolean();
    doorbell_count_ = reader.u64();
    completion_count_ = reader.u64();
  }

 private:
  /// Resolve a register byte offset to its backing 64-bit register, or null
  /// for unimplemented holes (reads return 0, writes are dropped).
  [[nodiscard]] std::uint64_t* reg_at(Addr offset);

  std::array<std::uint64_t, kDataRegs> data_{};
  std::uint64_t batch_count_ = 0;
  std::array<std::uint64_t, kMacRegs> mac_{};
  std::array<std::uint64_t, kBatchSlots * kSlotRegs> batch_{};
  bool doorbell_ = false;
  bool completion_ = false;
  std::uint64_t doorbell_count_ = 0;
  std::uint64_t completion_count_ = 0;
  SignalHook on_doorbell_;
  SignalHook on_completion_;
  DoorbellFilter doorbell_filter_;
};

}  // namespace titan::soc

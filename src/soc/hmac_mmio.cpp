#include "soc/hmac_mmio.hpp"

#include <span>
#include <vector>

#include "sim/rng.hpp"

namespace titan::soc {

HmacMmio::HmacMmio(Crossbar& data_bus, std::uint64_t device_secret,
                   ClockFn clock)
    : data_bus_(data_bus),
      device_secret_(device_secret),
      clock_(std::move(clock)) {}

crypto::HmacKey derive_slot_key(std::uint64_t device_secret,
                                std::uint32_t key_sel) {
  // Key slots are derived from the device secret, never visible on the bus.
  std::vector<std::uint8_t> key(32);
  sim::SplitMix64 kdf(device_secret ^ key_sel);
  for (std::size_t i = 0; i < key.size(); i += 8) {
    const std::uint64_t chunk = kdf.next();
    for (std::size_t j = 0; j < 8; ++j) {
      key[i + j] = static_cast<std::uint8_t>(chunk >> (8 * j));
    }
  }
  return crypto::HmacKey(key);
}

const crypto::HmacKey& HmacMmio::key_for(std::uint32_t key_sel) {
  const auto it = key_slots_.find(key_sel);
  if (it != key_slots_.end()) {
    return it->second;
  }
  // KEY_SEL is guest-writable; bound the cache so firmware cycling through
  // arbitrary selectors cannot grow host memory without limit (the modelled
  // hardware has a handful of real slots).
  if (key_slots_.size() >= kMaxKeySlots) {
    key_slots_.clear();
  }
  return key_slots_.emplace(key_sel, derive_slot_key(device_secret_, key_sel))
      .first->second;
}

void HmacMmio::start() {
  ++starts_;
  // DMA the source buffer (hardware engine: does not cost core cycles).
  std::vector<std::uint8_t> buffer(len_);
  for (std::uint32_t i = 0; i < len_; ++i) {
    buffer[i] = static_cast<std::uint8_t>(data_bus_.read(src_ + i, 1).value);
  }
  const auto result = engine_.mac_accounted(key_for(key_sel_), buffer);
  digest_ = result.digest;
  done_at_ = clock_() + result.cycles;
}

std::uint64_t HmacMmio::read(Addr addr, unsigned size) {
  (void)size;
  const Addr offset = addr & 0xFF;
  if (offset == kStatus) {
    return clock_() >= done_at_ ? 1 : 0;
  }
  if (offset == kSrc) return src_;
  if (offset == kLen) return len_;
  if (offset == kKeySel) return key_sel_;
  if (offset >= kDigestBase && offset < kDigestBase + 32) {
    const unsigned word = static_cast<unsigned>((offset - kDigestBase) / 4);
    return (std::uint32_t{digest_[4 * word]} << 24) |
           (std::uint32_t{digest_[4 * word + 1]} << 16) |
           (std::uint32_t{digest_[4 * word + 2]} << 8) |
           std::uint32_t{digest_[4 * word + 3]};
  }
  return 0;
}

void HmacMmio::save_state(sim::SnapshotWriter& writer) const {
  writer.u32(src_);
  writer.u32(len_);
  writer.u32(key_sel_);
  writer.u64(done_at_);
  writer.raw(std::span<const std::uint8_t>(digest_.data(), digest_.size()));
  writer.u64(starts_);
  writer.u64(engine_.total_cycles());
  writer.u64(engine_.invocations());
}

void HmacMmio::load_state(sim::SnapshotReader& reader) {
  src_ = reader.u32();
  len_ = reader.u32();
  key_sel_ = reader.u32();
  done_at_ = reader.u64();
  reader.raw(std::span<std::uint8_t>(digest_.data(), digest_.size()));
  starts_ = reader.u64();
  const std::uint64_t total_cycles = reader.u64();
  engine_.restore_usage(total_cycles, reader.u64());
  key_slots_.clear();  // Re-derived on demand; derivation is observably pure.
}

void HmacMmio::write(Addr addr, unsigned size, std::uint64_t value) {
  (void)size;
  const Addr offset = addr & 0xFF;
  switch (offset) {
    case kCmd:
      if ((value & 1) != 0) {
        start();
      }
      break;
    case kSrc:
      src_ = static_cast<std::uint32_t>(value);
      break;
    case kLen:
      len_ = static_cast<std::uint32_t>(value);
      break;
    case kKeySel:
      key_sel_ = static_cast<std::uint32_t>(value);
      break;
    default:
      break;
  }
}

}  // namespace titan::soc

#include "soc/mailbox.hpp"

namespace titan::soc {

namespace {

// Mailboxes are mapped at region bases; only the low offset bits decode.
Addr reg_offset(Addr addr) { return addr & 0xFFF; }

}  // namespace

std::uint64_t* Mailbox::reg_at(Addr offset) {
  if (offset < kDataOffset + 8 * kDataRegs) {
    return &data_[static_cast<unsigned>((offset - kDataOffset) / 8)];
  }
  if (offset >= kBatchCountOffset && offset < kBatchCountOffset + 8) {
    return &batch_count_;
  }
  if (offset >= kBatchMacOffset && offset < kBatchMacOffset + 8 * kMacRegs) {
    return &mac_[static_cast<unsigned>((offset - kBatchMacOffset) / 8)];
  }
  if (offset >= kBatchBase &&
      offset < kBatchBase + kBatchSlots * kSlotStride) {
    return &batch_[static_cast<unsigned>((offset - kBatchBase) / 8)];
  }
  return nullptr;
}

std::uint64_t Mailbox::read(Addr addr, unsigned size) {
  const Addr offset = reg_offset(addr);
  std::uint64_t value = 0;
  if (offset == kDoorbellOffset) {
    value = doorbell_ ? 1 : 0;
  } else if (offset == kCompletionOffset) {
    value = completion_ ? 1 : 0;
  } else if (const std::uint64_t* reg = reg_at(offset); reg != nullptr) {
    const unsigned shift = static_cast<unsigned>((offset % 8) * 8);
    value = *reg >> shift;
  }
  if (size < 8) {
    value &= (std::uint64_t{1} << (8 * size)) - 1;
  }
  return value;
}

void Mailbox::write(Addr addr, unsigned size, std::uint64_t value) {
  const Addr offset = reg_offset(addr);
  if (offset == kDoorbellOffset) {
    if ((value & 1) != 0) {
      ring_doorbell();
    } else {
      clear_doorbell();
    }
    return;
  }
  if (offset == kCompletionOffset) {
    if ((value & 1) != 0) {
      signal_completion();
    } else {
      clear_completion();
    }
    return;
  }
  std::uint64_t* reg = reg_at(offset);
  if (reg == nullptr) {
    return;
  }
  if (size == 8) {
    *reg = value;
  } else {
    const unsigned shift = static_cast<unsigned>((offset % 8) * 8);
    const std::uint64_t mask = ((std::uint64_t{1} << (8 * size)) - 1) << shift;
    *reg = (*reg & ~mask) | ((value << shift) & mask);
  }
}

void Mailbox::ring_doorbell() {
  if (doorbell_filter_ && !doorbell_filter_()) {
    return;  // Pulse lost in transit: the sender observes nothing.
  }
  doorbell_ = true;
  ++doorbell_count_;
  if (on_doorbell_) {
    on_doorbell_();
  }
}

void Mailbox::signal_completion() {
  completion_ = true;
  ++completion_count_;
  if (on_completion_) {
    on_completion_();
  }
}

}  // namespace titan::soc

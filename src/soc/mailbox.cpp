#include "soc/mailbox.hpp"

namespace titan::soc {

namespace {

// Mailboxes are mapped at region bases; only the low offset bits decode.
Addr reg_offset(Addr addr) { return addr & 0xFFF; }

}  // namespace

std::uint64_t Mailbox::read(Addr addr, unsigned size) {
  const Addr offset = reg_offset(addr);
  std::uint64_t value = 0;
  if (offset >= kDataOffset && offset < kDataOffset + 8 * kDataRegs) {
    const unsigned index = static_cast<unsigned>((offset - kDataOffset) / 8);
    const unsigned shift = static_cast<unsigned>((offset % 8) * 8);
    value = data_[index] >> shift;
  } else if (offset == kDoorbellOffset) {
    value = doorbell_ ? 1 : 0;
  } else if (offset == kCompletionOffset) {
    value = completion_ ? 1 : 0;
  }
  if (size < 8) {
    value &= (std::uint64_t{1} << (8 * size)) - 1;
  }
  return value;
}

void Mailbox::write(Addr addr, unsigned size, std::uint64_t value) {
  const Addr offset = reg_offset(addr);
  if (offset >= kDataOffset && offset < kDataOffset + 8 * kDataRegs) {
    const unsigned index = static_cast<unsigned>((offset - kDataOffset) / 8);
    if (size == 8) {
      data_[index] = value;
    } else {
      const unsigned shift = static_cast<unsigned>((offset % 8) * 8);
      const std::uint64_t mask = ((std::uint64_t{1} << (8 * size)) - 1) << shift;
      data_[index] = (data_[index] & ~mask) | ((value << shift) & mask);
    }
    return;
  }
  if (offset == kDoorbellOffset) {
    if ((value & 1) != 0) {
      ring_doorbell();
    } else {
      clear_doorbell();
    }
    return;
  }
  if (offset == kCompletionOffset) {
    if ((value & 1) != 0) {
      signal_completion();
    } else {
      clear_completion();
    }
  }
}

void Mailbox::ring_doorbell() {
  doorbell_ = true;
  ++doorbell_count_;
  if (on_doorbell_) {
    on_doorbell_();
  }
}

void Mailbox::signal_completion() {
  completion_ = true;
  ++completion_count_;
  if (on_completion_) {
    on_completion_();
  }
}

}  // namespace titan::soc
